(* The @lint gate as a test: the formulation-(3) model of every
   bundled benchmark (tiny plus the full Table-I suite) must lint free
   of Error-severity diagnostics. Catches modelling regressions —
   rows made trivially infeasible by a budget bug, broken one-hot
   assignment rows, dangling candidate variables — before any solver
   time is spent on them. *)

open Agingfp_cgrra
module Placer = Agingfp_place.Placer
module Remap = Agingfp_floorplan.Remap
module Ilp_model = Agingfp_floorplan.Ilp_model
module Rotation = Agingfp_floorplan.Rotation
module Analyze = Agingfp_lp.Analyze

let lint_clean design () =
  let baseline = Placer.aging_unaware design in
  let inst, _st = Remap.build_formulation ~mode:Rotation.Freeze design baseline in
  let diags = Analyze.lint (Ilp_model.model inst) in
  match Analyze.errors diags with
  | [] -> ()
  | errs ->
    Alcotest.failf "%s: %d lint error(s), first: %a" (Design.name design)
      (List.length errs) Analyze.pp_diagnostic (List.hd errs)

let () =
  let cases =
    Alcotest.test_case "tiny" `Quick (lint_clean (Benchmarks.tiny ()))
    :: Array.to_list
         (Array.map
            (fun (spec : Benchmarks.spec) ->
              Alcotest.test_case spec.Benchmarks.bname `Quick
                (lint_clean (Benchmarks.generate spec)))
            Benchmarks.table1)
  in
  Alcotest.run "lint" [ ("formulation-3 lints clean", cases) ]
