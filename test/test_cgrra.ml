(* Tests for the CGRRA architecture model: operations, device
   characterization, fabric geometry, DFGs, mappings, stress
   accounting and the Table-I benchmark generator. *)

open Agingfp_cgrra
module Rng = Agingfp_util.Rng
module Coord = Agingfp_util.Coord

(* ---------- Op ---------- *)

let test_op_units () =
  Alcotest.(check bool) "add is ALU" true (Op.unit_of_kind Op.Add = Op.Alu);
  Alcotest.(check bool) "mul is ALU" true (Op.unit_of_kind Op.Mul = Op.Alu);
  Alcotest.(check bool) "mux is DMU" true (Op.unit_of_kind Op.Mux = Op.Dmu);
  Alcotest.(check bool) "shift is DMU" true (Op.unit_of_kind Op.Shift = Op.Dmu);
  Alcotest.(check bool) "load is DMU" true (Op.unit_of_kind Op.Load = Op.Dmu)

let test_op_bitwidth_validation () =
  Alcotest.check_raises "zero bitwidth"
    (Invalid_argument "Op.make: bitwidth must be positive") (fun () ->
      ignore (Op.make ~id:0 ~kind:Op.Add ~bitwidth:0))

let test_op_io () =
  Alcotest.(check bool) "input is io" true (Op.is_io Op.Input);
  Alcotest.(check bool) "add is not io" false (Op.is_io Op.Add)

(* ---------- Chars ---------- *)

let test_chars_paper_anchors () =
  (* The paper's characterization: ALU 0.87 ns, DMU 3.14 ns, 200 MHz. *)
  let c = Chars.default in
  Alcotest.(check (float 1e-9)) "ALU anchor" 0.87 c.Chars.alu_delay_ns;
  Alcotest.(check (float 1e-9)) "DMU anchor" 3.14 c.Chars.dmu_delay_ns;
  Alcotest.(check (float 1e-9)) "200 MHz clock" 5.0 c.Chars.clock_period_ns

let test_chars_stress_rate_range () =
  Array.iter
    (fun kind ->
      List.iter
        (fun bw ->
          let op = Op.make ~id:0 ~kind ~bitwidth:bw in
          let sr = Chars.stress_rate Chars.default op in
          Alcotest.(check bool)
            (Printf.sprintf "SR in (0,1] for %s<%d>" (Op.kind_to_string kind) bw)
            true
            (sr > 0.0 && sr <= 1.0))
        [ 8; 16; 32 ])
    Op.all_kinds

let test_chars_dmu_heavier_than_alu () =
  let alu = Op.make ~id:0 ~kind:Op.Add ~bitwidth:32 in
  let dmu = Op.make ~id:1 ~kind:Op.Shift ~bitwidth:32 in
  Alcotest.(check bool) "DMU stresses more" true
    (Chars.stress_rate Chars.default dmu > Chars.stress_rate Chars.default alu)

let test_chars_bitwidth_monotone () =
  let d bw = Chars.pe_delay_ns Chars.default (Op.make ~id:0 ~kind:Op.Mul ~bitwidth:bw) in
  Alcotest.(check bool) "wider is slower" true (d 32 > d 8)

let test_chars_wire_delay_linear () =
  let c = Chars.default in
  Alcotest.(check (float 1e-9)) "linear"
    (2.0 *. Chars.wire_delay_ns c 3)
    (Chars.wire_delay_ns c 6)

(* ---------- Fabric ---------- *)

let test_fabric_roundtrip () =
  let f = Fabric.create ~dim:5 in
  for pe = 0 to Fabric.num_pes f - 1 do
    Alcotest.(check int) "roundtrip" pe (Fabric.pe_of_coord f (Fabric.coord_of_pe f pe))
  done

let test_fabric_distance () =
  let f = Fabric.create ~dim:4 in
  Alcotest.(check int) "corner to corner" 6 (Fabric.distance f 0 15);
  Alcotest.(check int) "adjacent" 1 (Fabric.distance f 0 1);
  Alcotest.(check int) "self" 0 (Fabric.distance f 7 7)

let test_fabric_pes_within () =
  let f = Fabric.create ~dim:4 in
  let within1 = Fabric.pes_within f 5 1 in
  Alcotest.(check int) "radius 1 from interior" 5 (List.length within1);
  let all = Fabric.pes_within f 0 100 in
  Alcotest.(check int) "radius covers fabric" 16 (List.length all);
  (* Sorted by distance. *)
  let dists = List.map (fun pe -> Fabric.distance f 0 pe) all in
  Alcotest.(check bool) "sorted by distance" true
    (List.sort compare dists = dists)

let test_fabric_bounds () =
  let f = Fabric.create ~dim:4 in
  Alcotest.(check bool) "in bounds" true (Fabric.in_bounds f (Coord.make 3 3));
  Alcotest.(check bool) "out of bounds" false (Fabric.in_bounds f (Coord.make 4 0));
  Alcotest.check_raises "invalid coord"
    (Invalid_argument "Fabric.pe_of_coord: out of bounds") (fun () ->
      ignore (Fabric.pe_of_coord f (Coord.make (-1) 0)))

(* ---------- Dfg ---------- *)

let mk_op id kind = Op.make ~id ~kind ~bitwidth:16

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  let ops = [| mk_op 0 Op.Input; mk_op 1 Op.Add; mk_op 2 Op.Mul; mk_op 3 Op.Output |] in
  Dfg.create ~ops ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_dfg_structure () =
  let d = diamond () in
  Alcotest.(check int) "ops" 4 (Dfg.num_ops d);
  Alcotest.(check int) "edges" 4 (Dfg.num_edges d);
  Alcotest.(check (list int)) "sources" [ 0 ] (Dfg.sources d);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Dfg.sinks d);
  Alcotest.(check (list int)) "preds of 3" [ 1; 2 ]
    (List.sort compare (Dfg.preds d 3));
  Alcotest.(check (list int)) "succs of 0" [ 1; 2 ]
    (List.sort compare (Dfg.succs d 0))

let test_dfg_topo_order () =
  let d = diamond () in
  let topo = Dfg.topological_order d in
  let pos = Array.make 4 0 in
  Array.iteri (fun i v -> pos.(v) <- i) topo;
  Dfg.iter_edges d (fun u v ->
      Alcotest.(check bool) "topo respects edges" true (pos.(u) < pos.(v)))

let test_dfg_cycle_rejected () =
  let ops = [| mk_op 0 Op.Add; mk_op 1 Op.Add |] in
  Alcotest.check_raises "cycle" (Invalid_argument "Dfg.create: graph has a cycle")
    (fun () -> ignore (Dfg.create ~ops ~edges:[ (0, 1); (1, 0) ]))

let test_dfg_bad_edges () =
  let ops = [| mk_op 0 Op.Add |] in
  Alcotest.check_raises "self edge" (Invalid_argument "Dfg.create: self edge")
    (fun () -> ignore (Dfg.create ~ops ~edges:[ (0, 0) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Dfg.create: edge endpoint out of range") (fun () ->
      ignore (Dfg.create ~ops ~edges:[ (0, 1) ]))

let test_dfg_duplicate_edge () =
  let ops = [| mk_op 0 Op.Add; mk_op 1 Op.Add |] in
  Alcotest.check_raises "duplicate" (Invalid_argument "Dfg.create: duplicate edge")
    (fun () -> ignore (Dfg.create ~ops ~edges:[ (0, 1); (0, 1) ]))

(* ---------- Design / Mapping ---------- *)

let small_design () =
  let fabric = Fabric.create ~dim:4 in
  Design.create ~name:"t" ~fabric [| diamond (); diamond () |]

let test_design_accessors () =
  let d = small_design () in
  Alcotest.(check int) "contexts" 2 (Design.num_contexts d);
  Alcotest.(check int) "total ops" 8 (Design.total_ops d);
  Alcotest.(check (float 1e-9)) "utilization" 0.25 (Design.utilization d)

let test_design_too_large_context () =
  let fabric = Fabric.create ~dim:1 in
  Alcotest.check_raises "too large"
    (Invalid_argument "Design.create: context larger than fabric") (fun () ->
      ignore (Design.create ~name:"t" ~fabric [| diamond () |]))

let test_mapping_validate_ok () =
  let d = small_design () in
  let m = Mapping.create (fun _ op -> op) d in
  Alcotest.(check bool) "valid" true (Mapping.validate d m = Ok ())

let test_mapping_validate_collision () =
  let d = small_design () in
  let m = Mapping.create (fun _ _ -> 0) d in
  Alcotest.(check bool) "collision rejected" true (Result.is_error (Mapping.validate d m))

let test_mapping_validate_range () =
  let d = small_design () in
  let m = Mapping.create (fun _ op -> op + 100) d in
  Alcotest.(check bool) "range rejected" true (Result.is_error (Mapping.validate d m))

let test_mapping_set_functional () =
  let d = small_design () in
  let m = Mapping.create (fun _ op -> op) d in
  let m2 = Mapping.set m ~ctx:0 ~op:0 ~pe:9 in
  Alcotest.(check int) "updated" 9 (Mapping.pe_of m2 ~ctx:0 ~op:0);
  Alcotest.(check int) "original untouched" 0 (Mapping.pe_of m ~ctx:0 ~op:0);
  Alcotest.(check int) "other context untouched" 0 (Mapping.pe_of m2 ~ctx:1 ~op:0)

let test_mapping_used_pes () =
  let d = small_design () in
  let m = Mapping.create (fun _ op -> op * 2) d in
  Alcotest.(check (list int)) "used" [ 0; 2; 4; 6 ] (Mapping.used_pes m ~ctx:0)

(* ---------- Stress ---------- *)

let test_stress_conservation () =
  (* Total accumulated stress equals the sum of op stress rates,
     independent of the mapping. *)
  let d = small_design () in
  let total_ops_stress =
    List.fold_left
      (fun acc ctx ->
        List.fold_left
          (fun acc op -> acc +. Stress.op_stress d ~ctx ~op)
          acc
          (List.init (Dfg.num_ops (Design.context d ctx)) (fun i -> i)))
      0.0 [ 0; 1 ]
  in
  List.iter
    (fun m ->
      let acc = Stress.accumulated d m in
      Alcotest.(check (float 1e-9)) "conserved" total_ops_stress
        (Array.fold_left ( +. ) 0.0 acc))
    [ Mapping.create (fun _ op -> op) d; Mapping.create (fun _ op -> 15 - op) d ]

let test_stress_concentration_vs_spread () =
  let d = small_design () in
  let concentrated = Mapping.create (fun _ op -> op) d in
  let spread = Mapping.create (fun ctx op -> (ctx * 8) + op) d in
  Alcotest.(check bool) "spreading lowers max" true
    (Stress.max_accumulated d spread < Stress.max_accumulated d concentrated);
  Alcotest.(check (float 1e-9)) "mean unchanged"
    (Stress.mean_accumulated d concentrated)
    (Stress.mean_accumulated d spread)

let test_stress_per_context_sums () =
  let d = small_design () in
  let m = Mapping.create (fun _ op -> op) d in
  let per = Stress.per_context d m in
  let acc = Stress.accumulated d m in
  Array.iteri
    (fun pe total ->
      let summed = Array.fold_left (fun a ctx_map -> a +. ctx_map.(pe)) 0.0 per in
      Alcotest.(check (float 1e-9)) "per-context sums to accumulated" total summed)
    acc

(* ---------- Benchmarks ---------- *)

let test_benchmarks_table_shape () =
  Alcotest.(check int) "27 rows" 27 (Array.length Benchmarks.table1);
  Array.iter
    (fun (s : Benchmarks.spec) ->
      Alcotest.(check bool) "contexts in {4,8,16}" true
        (List.mem s.Benchmarks.contexts [ 4; 8; 16 ]);
      Alcotest.(check bool) "dim in {4,8,16}" true
        (List.mem s.Benchmarks.dim [ 4; 8; 16 ]);
      Alcotest.(check bool) "rotate >= freeze in paper" true
        (s.Benchmarks.paper_rotate >= s.Benchmarks.paper_freeze))
    Benchmarks.table1

let test_benchmarks_generate_matches_spec () =
  List.iter
    (fun name ->
      let spec = Option.get (Benchmarks.find name) in
      let d = Benchmarks.generate spec in
      Alcotest.(check int) (name ^ " total ops") spec.Benchmarks.total_ops
        (Design.total_ops d);
      Alcotest.(check int) (name ^ " contexts") spec.Benchmarks.contexts
        (Design.num_contexts d);
      Alcotest.(check int) (name ^ " fabric") spec.Benchmarks.dim
        (Fabric.dim (Design.fabric d)))
    [ "B1"; "B10"; "B19"; "B4"; "B13"; "B22"; "B2"; "B11"; "B20" ]

let test_benchmarks_deterministic () =
  let spec = Option.get (Benchmarks.find "B10") in
  let d1 = Benchmarks.generate spec and d2 = Benchmarks.generate spec in
  for c = 0 to Design.num_contexts d1 - 1 do
    let a = Design.context d1 c and b = Design.context d2 c in
    Alcotest.(check int) "same op count" (Dfg.num_ops a) (Dfg.num_ops b);
    Alcotest.(check int) "same edge count" (Dfg.num_edges a) (Dfg.num_edges b);
    Alcotest.(check bool) "same ops" true
      (Array.for_all2 Op.equal (Dfg.ops a) (Dfg.ops b))
  done

let test_benchmarks_usage_bands () =
  (* Within every (contexts, fabric) group, the paper's low / medium /
     high labels must order the utilizations strictly. *)
  List.iter
    (fun contexts ->
      List.iter
        (fun dim ->
          let util usage =
            let spec =
              Array.to_list Benchmarks.table1
              |> List.find (fun (s : Benchmarks.spec) ->
                     s.Benchmarks.contexts = contexts && s.Benchmarks.dim = dim
                     && s.Benchmarks.usage = usage)
            in
            Design.utilization (Benchmarks.generate spec)
          in
          let lo = util Benchmarks.Low
          and mid = util Benchmarks.Medium
          and hi = util Benchmarks.High in
          Alcotest.(check bool)
            (Printf.sprintf "C%dF%d ordered" contexts dim)
            true
            (lo < mid && mid < hi))
        [ 4; 8; 16 ])
    [ 4; 8; 16 ]

let test_benchmarks_unknown () =
  Alcotest.(check bool) "find fails" true (Benchmarks.find "B99" = None)

let prop_benchmark_dfgs_single_dmu_per_path =
  (* The generator guarantees every source->sink path engages at most
     one DMU-class compute op, keeping paths inside the clock. *)
  QCheck2.Test.make ~name:"generated DFG paths contain at most one DMU compute op"
    ~count:12
    QCheck2.Gen.(int_range 0 26)
    (fun idx ->
      let spec = Benchmarks.table1.(idx) in
      if spec.Benchmarks.dim > 8 then true
      else begin
        let d = Benchmarks.generate spec in
        let ok = ref true in
        for c = 0 to Design.num_contexts d - 1 do
          let dfg = Design.context d c in
          (* Longest DMU-count path via DP. *)
          let n = Dfg.num_ops dfg in
          let dmu = Array.make n 0 in
          let topo = Dfg.topological_order dfg in
          Array.iter
            (fun v ->
              let own =
                let o = Dfg.op dfg v in
                if (not (Op.is_io o.Op.kind)) && Op.unit_of_kind o.Op.kind = Op.Dmu
                then 1
                else 0
              in
              let best =
                List.fold_left (fun acc p -> max acc dmu.(p)) 0 (Dfg.preds dfg v)
              in
              dmu.(v) <- own + best)
            topo;
          Array.iter (fun v -> if dmu.(v) > 1 then ok := false) dmu
        done;
        !ok
      end)

let prop_generated_designs_fit_fabric =
  QCheck2.Test.make ~name:"every generated context fits its fabric" ~count:27
    QCheck2.Gen.(int_range 0 26)
    (fun idx ->
      let spec = Benchmarks.table1.(idx) in
      let d = Benchmarks.generate spec in
      let cap = Fabric.num_pes (Design.fabric d) in
      Array.for_all (fun dfg -> Dfg.num_ops dfg <= cap) (Design.contexts d))

(* ---------- Serial ---------- *)

let test_serial_design_roundtrip () =
  let d = Benchmarks.tiny () in
  match Serial.design_of_string (Serial.design_to_string d) with
  | Error msg -> Alcotest.failf "roundtrip failed: %s" msg
  | Ok d2 ->
    Alcotest.(check string) "name" (Design.name d) (Design.name d2);
    Alcotest.(check int) "contexts" (Design.num_contexts d) (Design.num_contexts d2);
    Alcotest.(check int) "total ops" (Design.total_ops d) (Design.total_ops d2);
    for c = 0 to Design.num_contexts d - 1 do
      let a = Design.context d c and b = Design.context d2 c in
      Alcotest.(check bool) "ops equal" true
        (Array.for_all2 Op.equal (Dfg.ops a) (Dfg.ops b));
      Alcotest.(check int) "edges equal" (Dfg.num_edges a) (Dfg.num_edges b)
    done;
    let ca = Design.chars d and cb = Design.chars d2 in
    Alcotest.(check (float 1e-12)) "chars clock" ca.Chars.clock_period_ns
      cb.Chars.clock_period_ns

let test_serial_design_roundtrip_suite () =
  List.iter
    (fun name ->
      let d = Benchmarks.generate (Option.get (Benchmarks.find name)) in
      match Serial.design_of_string (Serial.design_to_string d) with
      | Error msg -> Alcotest.failf "%s roundtrip failed: %s" name msg
      | Ok d2 ->
        Alcotest.(check int) (name ^ " ops") (Design.total_ops d) (Design.total_ops d2))
    [ "B1"; "B13" ]

let test_serial_mapping_roundtrip () =
  let d = Benchmarks.tiny () in
  let m = Mapping.create (fun ctx op -> (op + ctx) mod 16) d in
  match Serial.mapping_of_string (Serial.mapping_to_string m) with
  | Error msg -> Alcotest.failf "roundtrip failed: %s" msg
  | Ok m2 -> Alcotest.(check bool) "equal" true (Mapping.equal m m2)

let test_serial_rejects_garbage () =
  Alcotest.(check bool) "empty" true (Result.is_error (Serial.design_of_string ""));
  Alcotest.(check bool) "wrong header" true
    (Result.is_error (Serial.design_of_string "agingfp-design v9\n"));
  Alcotest.(check bool) "mapping garbage" true
    (Result.is_error (Serial.mapping_of_string "agingfp-mapping v1\ncontexts x\n"))

let test_serial_rejects_truncated () =
  let d = Benchmarks.tiny () in
  let text = Serial.design_to_string d in
  let truncated = String.sub text 0 (String.length text / 2) in
  Alcotest.(check bool) "truncated rejected" true
    (Result.is_error (Serial.design_of_string truncated))

let test_serial_error_mentions_line () =
  match Serial.design_of_string "agingfp-design v1\nname t\nfabric nope\n" with
  | Error msg ->
    Alcotest.(check bool) "line number present" true
      (String.length msg > 5 && String.sub msg 0 5 = "line ")
  | Ok _ -> Alcotest.fail "should fail"

let test_serial_file_roundtrip () =
  let d = Benchmarks.tiny () in
  let path = Filename.temp_file "agingfp" ".design" in
  (match Serial.save_design path d with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "save: %s" msg);
  (match Serial.load_design path with
  | Ok d2 -> Alcotest.(check int) "ops" (Design.total_ops d) (Design.total_ops d2)
  | Error msg -> Alcotest.failf "load: %s" msg);
  Sys.remove path

let prop_serial_mapping_roundtrip =
  QCheck2.Test.make ~name:"mapping serialization round-trips" ~count:100 QCheck2.Gen.int
    (fun seed ->
      let rng = Rng.create seed in
      let d = Benchmarks.tiny () in
      let npes = 16 in
      let m =
        Mapping.of_arrays
          (Array.init (Design.num_contexts d) (fun c ->
               let perm = Array.init npes (fun i -> i) in
               Rng.shuffle rng perm;
               Array.init (Dfg.num_ops (Design.context d c)) (fun op -> perm.(op))))
      in
      match Serial.mapping_of_string (Serial.mapping_to_string m) with
      | Ok m2 -> Mapping.equal m m2
      | Error _ -> false)

(* ---------- Serial hardening (untrusted network input) ---------- *)

(* The remap daemon feeds raw HTTP bodies into these parsers, so the
   failure contract must be total: the [Result] entry points return
   [Ok]/[Error] and never raise, [design_of_string_exn] raises
   {!Serial.Parse_error} and nothing else, and parsing terminates on
   every input. The fuzz below mangles a canonical serialization three
   ways — truncation, duplicated line ranges, random byte flips — and
   lets any other exception escape as a property failure. *)

let tiny_design_text = lazy (Serial.design_to_string (Benchmarks.tiny ()))

let tiny_mapping_text =
  lazy
    (Serial.mapping_to_string
       (Mapping.create (fun ctx op -> (op + ctx) mod 16) (Benchmarks.tiny ())))

let mangle rng text =
  let n = String.length text in
  match Rng.int rng 3 with
  | 0 -> String.sub text 0 (Rng.int rng (n + 1))
  | 1 ->
    let lines = Array.of_list (String.split_on_char '\n' text) in
    let nl = Array.length lines in
    let start = Rng.int rng nl in
    let len = 1 + Rng.int rng (nl - start) in
    let dup = Array.sub lines start len in
    let at = Rng.int rng (nl + 1) in
    let spliced =
      Array.concat [ Array.sub lines 0 at; dup; Array.sub lines at (nl - at) ]
    in
    String.concat "\n" (Array.to_list spliced)
  | _ ->
    let b = Bytes.of_string text in
    for _ = 1 to 1 + Rng.int rng 8 do
      Bytes.set b (Rng.int rng n) (Char.chr (Rng.int rng 256))
    done;
    Bytes.to_string b

let prop_serial_design_fuzz_total =
  QCheck2.Test.make ~name:"mangled design input never raises from design_of_string"
    ~count:500 QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      match Serial.design_of_string (mangle rng (Lazy.force tiny_design_text)) with
      | Ok _ | Error _ -> true)

let prop_serial_mapping_fuzz_total =
  QCheck2.Test.make ~name:"mangled mapping input never raises from mapping_of_string"
    ~count:500 QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      match Serial.mapping_of_string (mangle rng (Lazy.force tiny_mapping_text)) with
      | Ok _ | Error _ -> true)

let prop_serial_exn_contract =
  QCheck2.Test.make
    ~name:"design_of_string_exn raises Parse_error and nothing else" ~count:500
    QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      match Serial.design_of_string_exn (mangle rng (Lazy.force tiny_design_text)) with
      | _ -> true
      | exception Serial.Parse_error (_, _) -> true)

(* Hostile inputs that historically escaped the [Result] contract:
   count fields drive allocation, so they are bounds-checked before
   any [Array.init]; characterization floats must be finite; op
   constructor rejections are rewritten into parse errors. *)
let test_serial_rejects_hostile_counts () =
  let design_with line =
    "agingfp-design v1\nname t\nfabric 4\nchars 1 2 1 5 0.1\ncontexts 1\n" ^ line
  in
  let cases =
    [
      ("negative op count", design_with "context 0 ops -1 edges 0\nend\n");
      ("huge op count", design_with "context 0 ops 999999999 edges 0\nend\n");
      ("huge edge count", design_with "context 0 ops 1 edges 99999999999\nop 0 alu 8\nend\n");
      ("nan chars", "agingfp-design v1\nname t\nfabric 4\nchars nan 2 1 5 0.1\ncontexts 1\ncontext 0 ops 1 edges 0\nop 0 alu 8\nend\n");
      ("negative chars", "agingfp-design v1\nname t\nfabric 4\nchars -1 2 1 5 0.1\ncontexts 1\ncontext 0 ops 1 edges 0\nop 0 alu 8\nend\n");
      ("zero bitwidth", design_with "context 0 ops 1 edges 0\nop 0 alu 0\nend\n");
    ]
  in
  List.iter
    (fun (what, text) ->
      Alcotest.(check bool) what true (Result.is_error (Serial.design_of_string text)))
    cases;
  Alcotest.(check bool) "mapping huge op count" true
    (Result.is_error
       (Serial.mapping_of_string "agingfp-mapping v1\ncontexts 1\ncontext 0 999999999\nend\n"))

let () =
  Alcotest.run "cgrra"
    [
      ( "op",
        [
          Alcotest.test_case "unit classes" `Quick test_op_units;
          Alcotest.test_case "bitwidth validated" `Quick test_op_bitwidth_validation;
          Alcotest.test_case "io predicate" `Quick test_op_io;
        ] );
      ( "chars",
        [
          Alcotest.test_case "paper anchors" `Quick test_chars_paper_anchors;
          Alcotest.test_case "stress rate range" `Quick test_chars_stress_rate_range;
          Alcotest.test_case "DMU heavier" `Quick test_chars_dmu_heavier_than_alu;
          Alcotest.test_case "bitwidth monotone" `Quick test_chars_bitwidth_monotone;
          Alcotest.test_case "wire delay linear" `Quick test_chars_wire_delay_linear;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "coord roundtrip" `Quick test_fabric_roundtrip;
          Alcotest.test_case "distance" `Quick test_fabric_distance;
          Alcotest.test_case "pes_within" `Quick test_fabric_pes_within;
          Alcotest.test_case "bounds" `Quick test_fabric_bounds;
        ] );
      ( "dfg",
        [
          Alcotest.test_case "structure" `Quick test_dfg_structure;
          Alcotest.test_case "topological order" `Quick test_dfg_topo_order;
          Alcotest.test_case "cycle rejected" `Quick test_dfg_cycle_rejected;
          Alcotest.test_case "bad edges rejected" `Quick test_dfg_bad_edges;
          Alcotest.test_case "duplicate edge rejected" `Quick test_dfg_duplicate_edge;
        ] );
      ( "design+mapping",
        [
          Alcotest.test_case "accessors" `Quick test_design_accessors;
          Alcotest.test_case "oversized context" `Quick test_design_too_large_context;
          Alcotest.test_case "validate ok" `Quick test_mapping_validate_ok;
          Alcotest.test_case "collision rejected" `Quick test_mapping_validate_collision;
          Alcotest.test_case "range rejected" `Quick test_mapping_validate_range;
          Alcotest.test_case "functional set" `Quick test_mapping_set_functional;
          Alcotest.test_case "used pes" `Quick test_mapping_used_pes;
        ] );
      ( "stress",
        [
          Alcotest.test_case "conservation" `Quick test_stress_conservation;
          Alcotest.test_case "concentration vs spread" `Quick
            test_stress_concentration_vs_spread;
          Alcotest.test_case "per-context sums" `Quick test_stress_per_context_sums;
        ] );
      ( "benchmarks",
        [
          Alcotest.test_case "table shape" `Quick test_benchmarks_table_shape;
          Alcotest.test_case "generate matches spec" `Quick
            test_benchmarks_generate_matches_spec;
          Alcotest.test_case "deterministic" `Quick test_benchmarks_deterministic;
          Alcotest.test_case "usage bands" `Quick test_benchmarks_usage_bands;
          Alcotest.test_case "unknown benchmark" `Quick test_benchmarks_unknown;
        ] );
      ( "dot",
        [
          Alcotest.test_case "dfg export" `Quick (fun () ->
              let d = Benchmarks.tiny () in
              let text = Dot.dfg (Design.context d 0) in
              Alcotest.(check bool) "digraph" true
                (String.length text > 20 && String.sub text 0 7 = "digraph");
              Alcotest.(check bool) "has edges" true
                (String.contains text '>'));
          Alcotest.test_case "floorplan export" `Quick (fun () ->
              let d = Benchmarks.tiny () in
              let m = Mapping.create (fun _ op -> op) d in
              let text = Dot.floorplan d m in
              Alcotest.(check bool) "graph" true (String.sub text 0 5 = "graph");
              Alcotest.(check bool) "mentions PE0" true
                (let rec go i =
                   i + 3 <= String.length text
                   && (String.sub text i 3 = "PE0" || go (i + 1))
                 in
                 go 0));
          Alcotest.test_case "write file" `Quick (fun () ->
              let path = Filename.temp_file "agingfp" ".dot" in
              (match Dot.write_file path "graph g {}\n" with
              | Ok () -> ()
              | Error e -> Alcotest.fail e);
              Sys.remove path);
        ] );
      ( "serial",
        [
          Alcotest.test_case "design roundtrip" `Quick test_serial_design_roundtrip;
          Alcotest.test_case "design roundtrip suite" `Quick
            test_serial_design_roundtrip_suite;
          Alcotest.test_case "mapping roundtrip" `Quick test_serial_mapping_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_serial_rejects_garbage;
          Alcotest.test_case "rejects truncated" `Quick test_serial_rejects_truncated;
          Alcotest.test_case "error line numbers" `Quick test_serial_error_mentions_line;
          Alcotest.test_case "file roundtrip" `Quick test_serial_file_roundtrip;
          Alcotest.test_case "rejects hostile counts" `Quick
            test_serial_rejects_hostile_counts;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_benchmark_dfgs_single_dmu_per_path;
          QCheck_alcotest.to_alcotest prop_generated_designs_fit_fabric;
          QCheck_alcotest.to_alcotest prop_serial_mapping_roundtrip;
          QCheck_alcotest.to_alcotest prop_serial_design_fuzz_total;
          QCheck_alcotest.to_alcotest prop_serial_mapping_fuzz_total;
          QCheck_alcotest.to_alcotest prop_serial_exn_contract;
        ] );
    ]
