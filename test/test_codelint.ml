(* Fixture tests for the codelint static analyzer (lib/lintcode).
   Every rule gets at least one positive fixture (the rule must fire)
   and one negative fixture (same shape, but compliant — the rule must
   stay quiet), plus waiver coverage: expression, binding and floating
   [@codelint.allow] forms, a missing-justification waiver, and an
   unknown-rule waiver. All fixtures go through [Lintcode.lint_string]
   with paths chosen to land in (or out of) the per-rule scopes of
   [Lintcode.default_config]. *)

module Lintcode = Agingfp_lintcode.Lintcode
module Json = Agingfp_lintcode.Json

let rules_of findings = List.map (fun f -> f.Lintcode.rule) findings

let lint ?config ~file src = Lintcode.lint_string ?config ~file src

let check_fires rule findings =
  if not (List.mem rule (rules_of findings)) then
    Alcotest.failf "expected a %s finding, got [%s]" rule
      (String.concat "; " (rules_of findings))

let check_quiet ?only findings =
  let findings =
    match only with
    | None -> findings
    | Some rule -> List.filter (fun f -> f.Lintcode.rule = rule) findings
  in
  match findings with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "expected no findings, got %d, first: %a"
      (List.length findings) Lintcode.pp_finding f

(* ---------- pool-capture ---------- *)

let pool_capture_positive () =
  check_fires "pool-capture"
    (lint ~file:"lib/place/fixture.ml"
       {|
let total pool xs =
  let acc = ref 0 in
  let _ = Pool.map pool (fun x -> acc := !acc + x) xs in
  !acc
|})

let pool_capture_hashtbl_positive () =
  check_fires "pool-capture"
    (lint ~file:"lib/place/fixture.ml"
       {|
let index pool xs =
  let seen = Hashtbl.create 16 in
  let _ = Pool.map_budgeted pool (fun x -> Hashtbl.replace seen x true) xs in
  seen
|})

let pool_capture_negative_local_ref () =
  (* The ref is bound inside the closure: no sharing across tasks. *)
  check_quiet
    (lint ~file:"lib/place/fixture.ml"
       {|
let total pool xs =
  Pool.map pool
    (fun x ->
      let acc = ref 0 in
      acc := !acc + x;
      !acc)
    xs
|})

let pool_capture_negative_mutex () =
  check_quiet ~only:"pool-capture"
    (lint ~file:"lib/place/fixture.ml"
       {|
let total pool xs =
  let acc = ref 0 in
  let m = Mutex.create () in
  let _ =
    Pool.map pool
      (fun x -> Mutex.protect m (fun () -> acc := !acc + x))
      xs
  in
  !acc
|})

let pool_capture_negative_array_slot () =
  (* Per-index array writes are the blessed result-collection pattern. *)
  check_quiet
    (lint ~file:"lib/place/fixture.ml"
       {|
let collect pool xs =
  let out = Array.make (Array.length xs) 0 in
  let _ = Pool.map pool (fun i -> out.(i) <- i * i) xs in
  out
|})

(* ---------- budget-poll ---------- *)

(* Default threshold is 100 expression nodes; fixtures stay small, so
   drop it to make the recursion fixture "long-running". *)
let tiny_threshold = { Lintcode.default_config with recursion_threshold = 5 }

let budget_poll_while_positive () =
  check_fires "budget-poll"
    (lint ~file:"lib/lp/fixture.ml"
       {|
let spin state =
  while not state.converged do
    improve state
  done
|})

let budget_poll_while_negative () =
  check_quiet
    (lint ~file:"lib/lp/fixture.ml"
       {|
let spin budget state =
  while not state.converged do
    Budget.checkpoint budget;
    improve state
  done
|})

let budget_poll_rec_positive () =
  check_fires "budget-poll"
    (lint ~config:tiny_threshold ~file:"lib/floorplan/fixture.ml"
       {|
let rec descend node best =
  match node.children with
  | [] -> min best node.cost
  | kids -> List.fold_left (fun acc k -> descend k acc) best kids
|})

let budget_poll_rec_negative_budget () =
  check_quiet
    (lint ~config:tiny_threshold ~file:"lib/floorplan/fixture.ml"
       {|
let rec descend budget node best =
  if Budget.expired budget then best
  else
    match node.children with
    | [] -> min best node.cost
    | kids -> List.fold_left (fun acc k -> descend budget k acc) best kids
|})

let budget_poll_negative_scope () =
  (* Same unpolled loop, but outside the solver prefixes. *)
  check_quiet
    (lint ~file:"lib/util/fixture.ml"
       {|
let spin state =
  while not state.converged do
    improve state
  done
|})

(* ---------- no-failwith ---------- *)

let no_failwith_positive () =
  check_fires "no-failwith"
    (lint ~file:"lib/cgrra/fixture.ml" {|let f () = failwith "broken"|})

let no_failwith_invalid_arg_positive () =
  check_fires "no-failwith"
    (lint ~file:"lib/cgrra/fixture.ml" {|let f () = invalid_arg "f: bad"|})

let no_failwith_assert_false_positive () =
  check_fires "no-failwith"
    (lint ~file:"lib/cgrra/fixture.ml"
       {|let f = function Some x -> x | None -> assert false|})

let no_failwith_negative_invariant () =
  check_quiet
    (lint ~file:"lib/cgrra/fixture.ml"
       {|let f () = Invariant.fail ~where:"Fixture.f" "broken"|})

let no_failwith_negative_scope () =
  (* bin/ and bench/ may use bare failwith (CLI arg errors, etc.). *)
  check_quiet (lint ~file:"bin/fixture.ml" {|let f () = failwith "usage"|})

(* ---------- det-order ---------- *)

let det_order_fold_positive () =
  check_fires "det-order"
    (lint ~file:"lib/lp/fixture.ml"
       {|let names tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []|})

let det_order_fold_negative_sorted () =
  check_quiet ~only:"det-order"
    (lint ~file:"lib/lp/fixture.ml"
       {|
let names tbl =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])
|})

let det_order_fold_negative_pipeline_sorted () =
  (* |> desugars to a nested apply; the ancestor walk must still see
     the sort downstream. *)
  check_quiet ~only:"det-order"
    (lint ~file:"lib/lp/fixture.ml"
       {|
let names tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort_uniq compare
|})

let det_order_self_init_positive () =
  check_fires "det-order"
    (lint ~file:"lib/util/fixture.ml" {|let seed () = Random.self_init ()|})

let det_order_wall_clock_positive () =
  check_fires "det-order"
    (lint ~file:"lib/lp/fixture.ml"
       {|let stamp () = Unix.gettimeofday ()|})

let det_order_wall_clock_negative_scope () =
  (* Wall-clock reads are only flagged inside solver modules. *)
  check_quiet
    (lint ~file:"lib/util/fixture.ml"
       {|let stamp () = Unix.gettimeofday ()|})

(* ---------- float-eq ---------- *)

let float_eq_positive_literal () =
  check_fires "float-eq"
    (lint ~file:"lib/lp/fixture.ml" {|let zeroish x = x = 0.0|})

let float_eq_positive_compare () =
  (* Floatness is expression-syntactic: a constraint on the argument
     expression is visible, one buried in the function pattern is not. *)
  check_fires "float-eq"
    (lint ~file:"lib/linalg/fixture.ml"
       {|let order a b = compare (a : float) b|})

let float_eq_negative_float_equal () =
  check_quiet
    (lint ~file:"lib/lp/fixture.ml"
       {|let zeroish x = Float.equal x 0.0|})

let float_eq_negative_ints () =
  check_quiet (lint ~file:"lib/lp/fixture.ml" {|let same a b = a = b + 1|})

let float_eq_negative_scope () =
  (* Only numeric modules (lib/lp, lib/linalg) are in scope. *)
  check_quiet (lint ~file:"lib/cgrra/fixture.ml" {|let zeroish x = x = 0.0|})

(* ---------- waivers ---------- *)

let waiver_expression () =
  check_quiet
    (lint ~file:"lib/lp/fixture.ml"
       {|let zeroish x = (x = 0.0) [@codelint.allow "float-eq" "fixture"]|})

let waiver_binding () =
  check_quiet
    (lint ~file:"lib/lp/fixture.ml"
       {|let zeroish x = x = 0.0 [@@codelint.allow "float-eq" "fixture"]|})

let waiver_floating () =
  check_quiet
    (lint ~file:"lib/lp/fixture.ml"
       {|
[@@@codelint.allow "float-eq" "fixture-wide waiver"]

let zeroish x = x = 0.0
let oneish x = x = 1.0
|})

let waiver_wrong_rule_does_not_mask () =
  (* A waiver for one rule must not suppress a different rule. *)
  check_fires "float-eq"
    (lint ~file:"lib/lp/fixture.ml"
       {|let zeroish x = (x = 0.0) [@codelint.allow "det-order" "fixture"]|})

let waiver_missing_justification () =
  let findings =
    lint ~file:"lib/lp/fixture.ml"
      {|let zeroish x = (x = 0.0) [@codelint.allow "float-eq"]|}
  in
  check_fires "waiver" findings;
  (* A malformed waiver must not suppress the underlying finding. *)
  check_fires "float-eq" findings

let waiver_unknown_rule () =
  check_fires "waiver"
    (lint ~file:"lib/lp/fixture.ml"
       {|let f () = () [@codelint.allow "no-such-rule" "oops"]|})

(* ---------- parse errors and output plumbing ---------- *)

let parse_error_reported () =
  check_fires "parse-error" (lint ~file:"lib/lp/fixture.ml" "let let let")

let json_roundtrip_shape () =
  let findings = lint ~file:"lib/lp/fixture.ml" {|let zeroish x = x = 0.0|} in
  let s = Json.to_string (Lintcode.findings_json findings) in
  List.iter
    (fun needle ->
      let present =
        let n = String.length needle and len = String.length s in
        let rec at i = i + n <= len && (String.sub s i n = needle || at (i + 1)) in
        at 0
      in
      if not present then
        Alcotest.failf "JSON output %s missing field %s" s needle)
    [ {|"tool"|}; {|"findings"|}; {|"rule"|}; {|"severity"|}; {|"file"|};
      {|"line"|}; {|"col"|}; {|"message"|} ]

let every_rule_documented () =
  List.iter
    (fun (id, doc) ->
      if String.length doc = 0 then Alcotest.failf "rule %s has no blurb" id)
    Lintcode.rules

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "codelint"
    [
      ( "pool-capture",
        [
          tc "ref capture fires" pool_capture_positive;
          tc "hashtbl capture fires" pool_capture_hashtbl_positive;
          tc "closure-local ref quiet" pool_capture_negative_local_ref;
          tc "mutex in scope quiet" pool_capture_negative_mutex;
          tc "array slot writes quiet" pool_capture_negative_array_slot;
        ] );
      ( "budget-poll",
        [
          tc "unpolled while fires" budget_poll_while_positive;
          tc "checkpointed while quiet" budget_poll_while_negative;
          tc "unpolled recursion fires" budget_poll_rec_positive;
          tc "budget-guarded recursion quiet" budget_poll_rec_negative_budget;
          tc "outside solver scope quiet" budget_poll_negative_scope;
        ] );
      ( "no-failwith",
        [
          tc "failwith fires" no_failwith_positive;
          tc "invalid_arg fires" no_failwith_invalid_arg_positive;
          tc "assert false fires" no_failwith_assert_false_positive;
          tc "Invariant.fail quiet" no_failwith_negative_invariant;
          tc "bin/ out of scope" no_failwith_negative_scope;
        ] );
      ( "det-order",
        [
          tc "bare Hashtbl.fold fires" det_order_fold_positive;
          tc "sorted fold quiet" det_order_fold_negative_sorted;
          tc "piped sort quiet" det_order_fold_negative_pipeline_sorted;
          tc "Random.self_init fires" det_order_self_init_positive;
          tc "solver wall-clock fires" det_order_wall_clock_positive;
          tc "util wall-clock quiet" det_order_wall_clock_negative_scope;
        ] );
      ( "float-eq",
        [
          tc "= on float literal fires" float_eq_positive_literal;
          tc "compare on floats fires" float_eq_positive_compare;
          tc "Float.equal quiet" float_eq_negative_float_equal;
          tc "int comparison quiet" float_eq_negative_ints;
          tc "outside numeric scope quiet" float_eq_negative_scope;
        ] );
      ( "waivers",
        [
          tc "expression attribute" waiver_expression;
          tc "binding attribute" waiver_binding;
          tc "floating attribute" waiver_floating;
          tc "wrong rule does not mask" waiver_wrong_rule_does_not_mask;
          tc "missing justification flagged" waiver_missing_justification;
          tc "unknown rule flagged" waiver_unknown_rule;
        ] );
      ( "plumbing",
        [
          tc "parse error reported" parse_error_reported;
          tc "json has shared fields" json_roundtrip_shape;
          tc "every rule documented" every_rule_documented;
        ] );
    ]
