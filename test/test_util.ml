(* Unit and property tests for the util library: deterministic RNG,
   coordinate geometry (the 8 orientations), stats, table rendering. *)

module Rng = Agingfp_util.Rng
module Coord = Agingfp_util.Coord
module Stats = Agingfp_util.Stats
module Ascii_table = Agingfp_util.Ascii_table
module Heap = Agingfp_util.Heap
module Bipartite = Agingfp_util.Bipartite
module Rat = Agingfp_util.Rat
module Invariant = Agingfp_util.Invariant

let check_float = Alcotest.(check (float 1e-9))

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_rng_int_range () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.int r 13 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 13)
  done

let test_rng_float_range () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.float r 2.5 in
    Alcotest.(check bool) "in range" true (x >= 0.0 && x < 2.5)
  done

let test_rng_copy_independent () =
  let a = Rng.create 5 in
  let _ = Rng.int a 100 in
  let b = Rng.copy a in
  Alcotest.(check int) "copy continues identically" (Rng.int a 9999) (Rng.int b 9999)

let test_rng_split () =
  let a = Rng.create 11 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 10 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_shuffle_permutation () =
  let r = Rng.create 3 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_uniformity () =
  (* Coarse chi-square style sanity check on bucket counts. *)
  let r = Rng.create 99 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int r 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "bucket within 5% of uniform" true
        (abs (c - (n / 10)) < n / 20))
    buckets

(* ---------- Coord ---------- *)

let test_manhattan () =
  Alcotest.(check int) "dist" 7 (Coord.manhattan (Coord.make 0 0) (Coord.make 3 4));
  Alcotest.(check int) "symmetric" 7 (Coord.manhattan (Coord.make 3 4) (Coord.make 0 0));
  Alcotest.(check int) "zero" 0 (Coord.manhattan (Coord.make 2 2) (Coord.make 2 2))

let test_orientation_count () =
  Alcotest.(check int) "8 orientations" 8 (Array.length Coord.all_orientations)

let test_transform_preserves_distance () =
  let p = Coord.make 2 5 and q = Coord.make 7 1 in
  Array.iter
    (fun o ->
      let p' = Coord.transform o p and q' = Coord.transform o q in
      Alcotest.(check int)
        (Printf.sprintf "distance preserved under %s" (Coord.orientation_to_string o))
        (Coord.manhattan p q) (Coord.manhattan p' q'))
    Coord.all_orientations

let test_transform_distinct () =
  (* On an asymmetric shape the 8 orientations are pairwise distinct
     (after normalization) — the paper's "8 unique orientations". *)
  let shape = [ Coord.make 0 0; Coord.make 1 0; Coord.make 2 0; Coord.make 2 1 ] in
  let images =
    Array.to_list Coord.all_orientations
    |> List.map (fun o ->
           let ps, _ = Coord.normalize (Coord.transform_all o shape) in
           List.sort Coord.compare ps)
  in
  let distinct = List.sort_uniq compare images in
  Alcotest.(check int) "8 distinct images" 8 (List.length distinct)

let test_r180_is_involution () =
  let p = Coord.make 3 (-2) in
  let q = Coord.transform Coord.R180 (Coord.transform Coord.R180 p) in
  Alcotest.(check bool) "R180 twice = id" true (Coord.equal p q)

let test_mirror_is_involution () =
  let p = Coord.make 3 (-2) in
  let q = Coord.transform Coord.MR0 (Coord.transform Coord.MR0 p) in
  Alcotest.(check bool) "MR0 twice = id" true (Coord.equal p q)

let test_normalize () =
  let ps, off = Coord.normalize [ Coord.make 3 4; Coord.make 5 4; Coord.make 3 7 ] in
  let mn, _ = Coord.bounding_box ps in
  Alcotest.(check bool) "min corner at origin" true (Coord.equal mn (Coord.make 0 0));
  Alcotest.(check bool) "offset recorded" true (Coord.equal off (Coord.make 3 4))

let test_bounding_box () =
  let mn, mx = Coord.bounding_box [ Coord.make 1 5; Coord.make 4 2; Coord.make 0 3 ] in
  Alcotest.(check bool) "min" true (Coord.equal mn (Coord.make 0 2));
  Alcotest.(check bool) "max" true (Coord.equal mx (Coord.make 4 5))

(* ---------- Stats ---------- *)

let test_mean () = check_float "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |])
let test_mean_empty () = check_float "empty mean" 0.0 (Stats.mean [||])

let test_geomean () = check_float "geomean" 2.0 (Stats.geomean [| 1.; 2.; 4. |])

let test_max_by () =
  Alcotest.(check int) "max_by" 3 (Stats.max_by float_of_int [| 1; 3; 2 |])

let test_stddev () =
  check_float "stddev" 2.0 (Stats.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_histogram () =
  let h = Stats.histogram ~bins:2 [| 0.; 1.; 2.; 3. |] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  Alcotest.(check int) "counts sum" 4 (Array.fold_left (fun a (_, c) -> a + c) 0 h)

(* ---------- Ascii_table ---------- *)

let test_table_alignment () =
  let s =
    Ascii_table.render ~header:[| "a"; "long" |] [ [| "10"; "x" |]; [| "2"; "yy" |] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  let widths = List.map String.length lines in
  Alcotest.(check bool) "uniform width" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_short_row_padded () =
  let s = Ascii_table.render ~header:[| "a"; "b" |] [ [| "1" |] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_table_wide_row_rejected () =
  Alcotest.check_raises "too wide" (Invalid_argument "Ascii_table.render: row too wide")
    (fun () -> ignore (Ascii_table.render ~header:[| "a" |] [ [| "1"; "2" |] ]))

let test_render_grid () =
  let s = Ascii_table.render_grid ~w:3 ~h:2 (fun x y -> string_of_int ((y * 3) + x)) in
  Alcotest.(check string) "grid" "0 1 2\n3 4 5" s

(* ---------- Heap ---------- *)

let test_heap_basic () =
  let h = Heap.create Int.compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check int) "size" 5 (Heap.size h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop 1 again" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Heap.pop h);
  Alcotest.(check (option int)) "pop 4" (Some 4) (Heap.pop h);
  Alcotest.(check (option int)) "pop 5" (Some 5) (Heap.pop h);
  Alcotest.(check (option int)) "exhausted" None (Heap.pop h)

let test_heap_max_mode () =
  let h = Heap.create (fun a b -> Int.compare b a) in
  List.iter (Heap.push h) [ 2; 9; 4 ];
  Alcotest.(check (option int)) "max first" (Some 9) (Heap.pop h)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck2.Gen.(list_size (int_range 0 50) (int_bound 1000))
    (fun xs ->
      let h = Heap.create Int.compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

let prop_heap_interleaved =
  QCheck2.Test.make ~name:"heap invariant survives interleaved push/pop" ~count:200
    QCheck2.Gen.(list_size (int_range 1 60) (int_bound 100))
    (fun ops ->
      let h = Heap.create Int.compare in
      let model = ref [] in
      List.for_all
        (fun x ->
          if x mod 3 = 0 && !model <> [] then begin
            let sorted = List.sort Int.compare !model in
            let expected = List.hd sorted in
            model := List.tl sorted;
            Heap.pop h = Some expected
          end
          else begin
            Heap.push h x;
            model := x :: !model;
            true
          end)
        ops)

(* ---------- Bipartite matching ---------- *)

let test_matching_perfect () =
  let g = Bipartite.create ~n_left:3 ~n_right:3 in
  (* 0-{0,1}, 1-{0}, 2-{2}: perfect matching exists (0->1, 1->0, 2->2). *)
  Bipartite.add_edge g 0 0;
  Bipartite.add_edge g 0 1;
  Bipartite.add_edge g 1 0;
  Bipartite.add_edge g 2 2;
  let m = Bipartite.solve g in
  Alcotest.(check int) "perfect" 3 (Bipartite.matching_size m);
  Alcotest.(check int) "1 forced to 0" 0 m.(1)

let test_matching_deficient () =
  (* Two lefts both only reach right 0: max matching 1 (Hall violation). *)
  let g = Bipartite.create ~n_left:2 ~n_right:2 in
  Bipartite.add_edge g 0 0;
  Bipartite.add_edge g 1 0;
  let m = Bipartite.solve g in
  Alcotest.(check int) "deficient" 1 (Bipartite.matching_size m)

let test_matching_empty () =
  let g = Bipartite.create ~n_left:0 ~n_right:5 in
  Alcotest.(check int) "empty" 0 (Bipartite.matching_size (Bipartite.solve g))

let test_matching_validity () =
  let g = Bipartite.create ~n_left:4 ~n_right:4 in
  for l = 0 to 3 do
    for r = 0 to 3 do
      if (l + r) mod 2 = 0 then Bipartite.add_edge g l r
    done
  done;
  let m = Bipartite.solve g in
  (* Matched rights must be distinct and edges must exist. *)
  let seen = Hashtbl.create 4 in
  Array.iteri
    (fun l r ->
      if r >= 0 then begin
        Alcotest.(check bool) "edge exists" true ((l + r) mod 2 = 0);
        Alcotest.(check bool) "right distinct" false (Hashtbl.mem seen r);
        Hashtbl.add seen r ()
      end)
    m

(* Brute-force max matching by trying all assignments (small). *)
let brute_matching n_left n_right edges =
  let best = ref 0 in
  let used = Array.make n_right false in
  let rec go l count =
    if l = n_left then best := max !best count
    else begin
      go (l + 1) count;
      List.iter
        (fun (a, r) ->
          if a = l && not used.(r) then begin
            used.(r) <- true;
            go (l + 1) (count + 1);
            used.(r) <- false
          end)
        edges
    end
  in
  go 0 0;
  !best

let prop_matching_matches_brute_force =
  QCheck2.Test.make ~name:"Hopcroft-Karp matches brute force on random graphs"
    ~count:150 QCheck2.Gen.int
    (fun seed ->
      let rng = Rng.create seed in
      let n_left = 1 + Rng.int rng 6 and n_right = 1 + Rng.int rng 6 in
      let edges = ref [] in
      for l = 0 to n_left - 1 do
        for r = 0 to n_right - 1 do
          if Rng.int rng 3 = 0 then edges := (l, r) :: !edges
        done
      done;
      let g = Bipartite.create ~n_left ~n_right in
      List.iter (fun (l, r) -> Bipartite.add_edge g l r) !edges;
      Bipartite.matching_size (Bipartite.solve g)
      = brute_matching n_left n_right !edges)

(* ---------- Rat ---------- *)

let test_rat_of_float_exact () =
  (* 0.1 is not 1/10 in binary: the exact sum of ten copies of the
     double 0.1 is NOT 1 (while the rounded float sum famously drifts).
     Exactness also means repeated addition agrees with
     multiplication, which float fold-left does not. *)
  let tenth = Rat.of_float 0.1 in
  let sum = ref Rat.zero in
  for _ = 1 to 10 do
    sum := Rat.add !sum tenth
  done;
  Alcotest.(check bool) "10 * double(0.1) is not exactly 1" false
    (Rat.equal !sum Rat.one);
  Alcotest.(check bool) "repeated add = mul" true
    (Rat.equal !sum (Rat.mul (Rat.of_int 10) tenth));
  (* ...but within one float ulp of 1 when rounded back. *)
  check_float "to_float close to 1" 1.0 (Rat.to_float !sum)

let test_rat_ring_ops () =
  let q = Rat.of_float in
  Alcotest.(check string) "add" "2" (Rat.to_string (Rat.add (q 0.75) (q 1.25)));
  Alcotest.(check string) "sub" "-1/2" (Rat.to_string (Rat.sub (q 0.25) (q 0.75)));
  Alcotest.(check string) "mul" "3/8" (Rat.to_string (Rat.mul (q 0.75) (q 0.5)));
  Alcotest.(check string) "neg" "-3/4" (Rat.to_string (Rat.neg (q 0.75)));
  Alcotest.(check int) "sign" (-1) (Rat.sign (Rat.sub (q 1.0) (q 1.5)))

let test_rat_compare () =
  let xs = [ -3.5; -1.0; -0.125; 0.0; 1e-9; 0.3; 1.0; 1024.0 ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check int)
            (Printf.sprintf "compare %g %g" a b)
            (Float.compare a b)
            (Rat.compare (Rat.of_float a) (Rat.of_float b)))
        xs)
    xs

let test_rat_is_integer () =
  Alcotest.(check bool) "42" true (Rat.is_integer (Rat.of_float 42.0));
  Alcotest.(check bool) "0" true (Rat.is_integer Rat.zero);
  Alcotest.(check bool) "-7" true (Rat.is_integer (Rat.of_int (-7)));
  Alcotest.(check bool) "0.5" false (Rat.is_integer (Rat.of_float 0.5));
  Alcotest.(check bool) "2^60" true (Rat.is_integer (Rat.of_float (Float.ldexp 1.0 60)))

let test_rat_large_magnitude () =
  (* (2^60 + 1)^2 needs > 64 bits; check against the algebraic identity
     2^120 + 2^61 + 1 computed piecewise. *)
  let a = Rat.add (Rat.of_float (Float.ldexp 1.0 60)) Rat.one in
  let sq = Rat.mul a a in
  let expect =
    Rat.add
      (Rat.add
         (Rat.mul (Rat.of_float (Float.ldexp 1.0 60)) (Rat.of_float (Float.ldexp 1.0 60)))
         (Rat.of_float (Float.ldexp 1.0 61)))
      Rat.one
  in
  Alcotest.(check bool) "(2^60+1)^2 = 2^120 + 2^61 + 1" true (Rat.equal sq expect);
  Alcotest.(check bool) "bigger than 2^120" true
    (Rat.compare sq (Rat.mul (Rat.of_float (Float.ldexp 1.0 60))
                       (Rat.of_float (Float.ldexp 1.0 60))) > 0)

let test_rat_to_float_roundtrip () =
  List.iter
    (fun x -> check_float "roundtrip" x (Rat.to_float (Rat.of_float x)))
    [ 0.0; 1.0; -1.0; 0.1; -0.3; 1e-30; 1e30; Float.ldexp 1.0 60; 5.128 ]

let test_rat_of_float_rejects () =
  Alcotest.check_raises "nan" (Invalid_argument "Rat.of_float: not a finite value")
    (fun () -> ignore (Rat.of_float Float.nan));
  Alcotest.check_raises "inf" (Invalid_argument "Rat.of_float: not a finite value")
    (fun () -> ignore (Rat.of_float Float.infinity))

let test_invariant_message () =
  Alcotest.check_raises "fail raises Violation"
    (Invariant.Violation "invariant violated in Here: x = 3") (fun () ->
      Invariant.fail ~where:"Here" "x = %d" 3)

(* ---------- Properties ---------- *)

let rat_float_gen =
  (* Finite doubles across magnitudes, including negatives and exact
     small integers. *)
  QCheck2.Gen.(
    oneof
      [
        float_bound_inclusive 1e6;
        map (fun x -> -.x) (float_bound_inclusive 1e6);
        map float_of_int (int_range (-1000) 1000);
        map (fun (m, e) -> Float.ldexp m (e - 30)) (tup2 (float_bound_inclusive 1.0) (int_bound 60));
      ])

let prop_rat_add_sub_cancel =
  QCheck2.Test.make ~name:"rat: (a + b) - b = a exactly" ~count:1000
    QCheck2.Gen.(tup2 rat_float_gen rat_float_gen)
    (fun (a, b) ->
      let qa = Rat.of_float a and qb = Rat.of_float b in
      Rat.equal (Rat.sub (Rat.add qa qb) qb) qa)

let prop_rat_mul_distributes =
  QCheck2.Test.make ~name:"rat: a*(b + c) = a*b + a*c exactly" ~count:1000
    QCheck2.Gen.(tup3 rat_float_gen rat_float_gen rat_float_gen)
    (fun (a, b, c) ->
      let qa = Rat.of_float a and qb = Rat.of_float b and qc = Rat.of_float c in
      Rat.equal (Rat.mul qa (Rat.add qb qc)) (Rat.add (Rat.mul qa qb) (Rat.mul qa qc)))

let prop_rat_compare_matches_float =
  (* Dyadic comparison must agree with IEEE comparison on exact
     conversions. *)
  QCheck2.Test.make ~name:"rat: compare agrees with Float.compare" ~count:1000
    QCheck2.Gen.(tup2 rat_float_gen rat_float_gen)
    (fun (a, b) -> Rat.compare (Rat.of_float a) (Rat.of_float b) = Float.compare a b)

let prop_manhattan_triangle =
  QCheck2.Test.make ~name:"manhattan satisfies triangle inequality" ~count:500
    QCheck2.Gen.(
      tup3
        (tup2 (int_bound 100) (int_bound 100))
        (tup2 (int_bound 100) (int_bound 100))
        (tup2 (int_bound 100) (int_bound 100)))
    (fun ((ax, ay), (bx, by), (cx, cy)) ->
      let a = Coord.make ax ay and b = Coord.make bx by and c = Coord.make cx cy in
      Coord.manhattan a c <= Coord.manhattan a b + Coord.manhattan b c)

let prop_orientations_preserve_pairwise_distances =
  QCheck2.Test.make ~name:"all orientations preserve pairwise Manhattan distances"
    ~count:300
    QCheck2.Gen.(
      tup2 (int_bound 7)
        (list_size (int_range 2 6) (tup2 (int_bound 20) (int_bound 20))))
    (fun (oi, pts) ->
      let o = Coord.all_orientations.(oi) in
      let ps = List.map (fun (x, y) -> Coord.make x y) pts in
      let qs = Coord.transform_all o ps in
      List.for_all2
        (fun p q ->
          List.for_all2
            (fun p' q' -> Coord.manhattan p p' = Coord.manhattan q q')
            ps qs)
        ps qs)

let prop_shuffle_preserves_multiset =
  QCheck2.Test.make ~name:"shuffle preserves multiset" ~count:200
    QCheck2.Gen.(tup2 int (list_size (int_range 0 30) (int_bound 10)))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      Rng.shuffle (Rng.create seed) arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

(* ---------- Budget ---------- *)

module Budget = Agingfp_util.Budget

(* A fake monotonic clock the test advances by hand (nanoseconds). *)
let fake_clock () =
  let t = ref 0L in
  let advance_s s = t := Int64.add !t (Int64.of_float (s *. 1e9)) in
  ((fun () -> !t), advance_s)

let test_budget_unlimited () =
  Alcotest.(check bool) "never expires" false (Budget.expired Budget.unlimited);
  Alcotest.(check bool) "is unlimited" true (Budget.is_unlimited Budget.unlimited);
  Alcotest.(check bool)
    "status optimal" true
    (Budget.status Budget.unlimited = Budget.Optimal)

let test_budget_deadline () =
  let clock, advance = fake_clock () in
  let b = Budget.create ~clock ~deadline_s:1.0 () in
  Alcotest.(check bool) "fresh not expired" false (Budget.expired b);
  Alcotest.(check bool) "not unlimited" false (Budget.is_unlimited b);
  advance 0.5;
  Alcotest.(check bool) "halfway not expired" false (Budget.expired b);
  check_float "remaining halfway" 0.5 (Budget.remaining_s b);
  advance 0.6;
  Alcotest.(check bool) "past deadline expired" true (Budget.expired b);
  Alcotest.(check bool) "status deadline" true (Budget.status b = Budget.Deadline);
  check_float "remaining clamps at 0" 0.0 (Budget.remaining_s b);
  check_float "elapsed" 1.1 (Budget.elapsed_s b)

let test_budget_allowance () =
  let b = Budget.create ~allowance:10 () in
  Alcotest.(check bool) "fresh not expired" false (Budget.expired b);
  Budget.spend b 4;
  Alcotest.(check bool) "partial not expired" false (Budget.expired b);
  Budget.spend b 6;
  Alcotest.(check bool) "drained expired" true (Budget.expired b);
  Alcotest.(check bool)
    "status iteration-limit" true
    (Budget.status b = Budget.Iteration_limit)

let test_budget_slice_stricter () =
  let clock, advance = fake_clock () in
  let parent = Budget.create ~clock ~deadline_s:1.0 () in
  advance 0.5;
  (* Half the parent's remaining 0.5 s. *)
  let child = Budget.slice parent ~fraction:0.5 in
  check_float "child gets fraction of remaining" 0.25 (Budget.remaining_s child);
  (* A huge with_deadline child is clamped to the parent's deadline. *)
  let greedy = Budget.with_deadline parent ~deadline_s:100.0 in
  check_float "child clamped to parent" 0.5 (Budget.remaining_s greedy);
  advance 0.3;
  Alcotest.(check bool) "child expired first" true (Budget.expired child);
  Alcotest.(check bool) "parent still alive" false (Budget.expired parent);
  advance 0.3;
  Alcotest.(check bool) "parent expired" true (Budget.expired parent);
  Alcotest.(check bool) "greedy child expired with parent" true (Budget.expired greedy)

let test_budget_spend_propagates () =
  let parent = Budget.create ~allowance:5 () in
  let child = Budget.slice parent ~fraction:0.5 in
  Budget.spend child 5;
  Alcotest.(check bool) "parent drained via child" true (Budget.expired parent);
  Alcotest.(check bool) "child sees inherited dryness" true (Budget.expired child)

(* A budget carved from an already-expired parent must be born expired
   — the daemon relies on this: a request whose deadline passed while
   it queued falls straight down the degradation ladder instead of
   starting an open-ended solve. *)
let test_budget_child_of_expired_parent () =
  let clock, advance = fake_clock () in
  let parent = Budget.create ~clock ~deadline_s:1.0 () in
  advance 2.0;
  Alcotest.(check bool) "parent expired" true (Budget.expired parent);
  let sliced = Budget.slice parent ~fraction:0.5 in
  Alcotest.(check bool) "slice born expired" true (Budget.expired sliced);
  check_float "slice has nothing left" 0.0 (Budget.remaining_s sliced);
  let capped = Budget.with_deadline parent ~deadline_s:10.0 in
  Alcotest.(check bool) "with_deadline born expired" true (Budget.expired capped);
  check_float "with_deadline has nothing left" 0.0 (Budget.remaining_s capped)

let test_budget_worst () =
  let open Budget in
  Alcotest.(check bool) "fault beats deadline" true
    (worst Deadline (Fault "x") = Fault "x");
  Alcotest.(check bool) "deadline beats iteration" true
    (worst (Fault "x") Deadline = Fault "x");
  Alcotest.(check bool) "iteration beats node" true
    (worst Node_limit Iteration_limit = Iteration_limit);
  Alcotest.(check bool) "optimal loses to all" true (worst Optimal Node_limit = Node_limit);
  Alcotest.(check bool) "optimal vs optimal" true (worst Optimal Optimal = Optimal)

(* ---------- Pool lifecycle ---------- *)

module Pool = Agingfp_util.Pool

let test_pool_shutdown_idempotent () =
  let p = Pool.create ~domains:2 in
  let hits = Atomic.make 0 in
  Pool.run p (Array.init 4 (fun _ () -> Atomic.incr hits));
  Alcotest.(check int) "batch ran" 4 (Atomic.get hits);
  Pool.shutdown p;
  Pool.shutdown p;
  Alcotest.(check pass) "double shutdown is a no-op" () ()

let test_pool_get_after_shutdown () =
  let p = Pool.get 2 in
  Pool.shutdown p;
  let q = Pool.get 2 in
  Alcotest.(check bool) "registry replaces a drained pool" true (p != q);
  let doubled = Pool.map q (fun x -> 2 * x) [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "replacement pool works" [| 2; 4; 6 |] doubled;
  Pool.shutdown q

(* The daemon's drain path: a signal handler may only flip the atomic
   ([request_stop]); the joining shutdown happens later from normal
   context and must still work (and stay idempotent). *)
let test_pool_request_stop_then_shutdown () =
  let p = Pool.create ~domains:2 in
  Pool.run p (Array.init 2 (fun _ () -> ()));
  Pool.request_stop p;
  Pool.shutdown p;
  Pool.shutdown p;
  Alcotest.(check pass) "stop then shutdown drains cleanly" () ()

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
        ] );
      ( "coord",
        [
          Alcotest.test_case "manhattan" `Quick test_manhattan;
          Alcotest.test_case "orientation count" `Quick test_orientation_count;
          Alcotest.test_case "transform preserves distance" `Quick
            test_transform_preserves_distance;
          Alcotest.test_case "8 distinct images" `Quick test_transform_distinct;
          Alcotest.test_case "R180 involution" `Quick test_r180_is_involution;
          Alcotest.test_case "mirror involution" `Quick test_mirror_is_involution;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "bounding box" `Quick test_bounding_box;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "mean empty" `Quick test_mean_empty;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "max_by" `Quick test_max_by;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "ascii_table",
        [
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "short row padded" `Quick test_table_short_row_padded;
          Alcotest.test_case "wide row rejected" `Quick test_table_wide_row_rejected;
          Alcotest.test_case "render grid" `Quick test_render_grid;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "max mode" `Quick test_heap_max_mode;
        ] );
      ( "bipartite",
        [
          Alcotest.test_case "perfect" `Quick test_matching_perfect;
          Alcotest.test_case "deficient" `Quick test_matching_deficient;
          Alcotest.test_case "empty" `Quick test_matching_empty;
          Alcotest.test_case "validity" `Quick test_matching_validity;
        ] );
      ( "rat",
        [
          Alcotest.test_case "of_float exact" `Quick test_rat_of_float_exact;
          Alcotest.test_case "ring ops" `Quick test_rat_ring_ops;
          Alcotest.test_case "compare" `Quick test_rat_compare;
          Alcotest.test_case "is_integer" `Quick test_rat_is_integer;
          Alcotest.test_case "large magnitude" `Quick test_rat_large_magnitude;
          Alcotest.test_case "to_float roundtrip" `Quick test_rat_to_float_roundtrip;
          Alcotest.test_case "rejects nan/inf" `Quick test_rat_of_float_rejects;
          Alcotest.test_case "invariant message" `Quick test_invariant_message;
        ] );
      ( "budget",
        [
          Alcotest.test_case "unlimited" `Quick test_budget_unlimited;
          Alcotest.test_case "deadline" `Quick test_budget_deadline;
          Alcotest.test_case "allowance" `Quick test_budget_allowance;
          Alcotest.test_case "slice stricter than parent" `Quick
            test_budget_slice_stricter;
          Alcotest.test_case "spend propagates upward" `Quick
            test_budget_spend_propagates;
          Alcotest.test_case "child of expired parent born expired" `Quick
            test_budget_child_of_expired_parent;
          Alcotest.test_case "worst stop reason" `Quick test_budget_worst;
        ] );
      ( "pool",
        [
          Alcotest.test_case "shutdown idempotent" `Quick test_pool_shutdown_idempotent;
          Alcotest.test_case "get after shutdown" `Quick test_pool_get_after_shutdown;
          Alcotest.test_case "request_stop then shutdown" `Quick
            test_pool_request_stop_then_shutdown;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_rat_add_sub_cancel;
          QCheck_alcotest.to_alcotest prop_rat_mul_distributes;
          QCheck_alcotest.to_alcotest prop_rat_compare_matches_float;
          QCheck_alcotest.to_alcotest prop_matching_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
          QCheck_alcotest.to_alcotest prop_heap_interleaved;
          QCheck_alcotest.to_alcotest prop_manhattan_triangle;
          QCheck_alcotest.to_alcotest prop_orientations_preserve_pairwise_distances;
          QCheck_alcotest.to_alcotest prop_shuffle_preserves_multiset;
        ] );
    ]
