(* Presolve rule pipeline: deterministic per-rule regressions on
   handcrafted models, a planted-witness soundness property (every
   rule must preserve the full integer feasible set, so a model built
   around a known integer point can never presolve to infeasibility),
   and the pinned Eq.(3)-shaped reduction guard run by @ci. *)

module Expr = Agingfp_lp.Expr
module Model = Agingfp_lp.Model
module Simplex = Agingfp_lp.Simplex
module Basis = Agingfp_lp.Basis
module Milp = Agingfp_lp.Milp
module Presolve = Agingfp_lp.Presolve
module Certify = Agingfp_lp.Certify
module Rng = Agingfp_util.Rng

let get_reduced = function
  | Presolve.Reduced t -> t
  | Presolve.Proven_infeasible r -> Alcotest.failf "unexpected infeasibility: %s" r

let get_optimal = function
  | Simplex.Optimal s -> s
  | st -> Alcotest.failf "expected optimal, got %a" Simplex.pp_status st

let rule_apps t name =
  let r = Presolve.reductions t in
  match List.assoc_opt name r.Presolve.per_rule with
  | Some s -> s.Presolve.applications
  | None -> Alcotest.failf "unknown rule %s" name

(* Solve the reduced model, postsolve, and exact-check the point
   against the original model. Returns the original-space values. *)
let solve_and_certify ?(relaxation = true) m t =
  let s = get_optimal (Simplex.solve (Presolve.reduced t)) in
  let values = Presolve.postsolve t s.Simplex.values in
  (match Certify.solution ~relaxation m { s with Simplex.values } with
  | Certify.Certified -> ()
  | v -> Alcotest.failf "postsolved point rejected: %a" Certify.pp_verdict v);
  ignore relaxation;
  values

(* ---------- per-rule regressions ---------- *)

let test_redundant_row () =
  (* x + y <= 100 can never bind under the bounds; it must vanish
     without touching the optimum. *)
  let m = Model.create () in
  let x = Model.add_var ~ub:3.0 m and y = Model.add_var ~ub:4.0 m in
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Le 100.0);
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Le 5.0);
  Model.set_objective m Model.Maximize (Expr.add (Expr.var x) (Expr.var y));
  let t = get_reduced (Presolve.run m) in
  Alcotest.(check bool) "redundant row fired" true (rule_apps t "redundant_row" >= 1);
  Alcotest.(check int) "one row left" 1 (Model.num_constraints (Presolve.reduced t));
  let values = solve_and_certify m t in
  Alcotest.(check (float 1e-6)) "optimum unchanged" 5.0 (values.(x) +. values.(y))

let test_forcing_row () =
  (* x + y >= 7 with x <= 3, y <= 4 forces both to their upper
     bounds; everything is decided by presolve alone. *)
  let m = Model.create () in
  let x = Model.add_var ~ub:3.0 m and y = Model.add_var ~ub:4.0 m in
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Ge 7.0);
  Model.set_objective m Model.Minimize (Expr.add (Expr.var x) (Expr.var y));
  let t = get_reduced (Presolve.run m) in
  Alcotest.(check bool) "forcing row fired" true (rule_apps t "forcing_row" >= 1);
  Alcotest.(check int) "no vars left" 0 (Model.num_vars (Presolve.reduced t));
  let values = solve_and_certify m t in
  Alcotest.(check (float 1e-6)) "x forced" 3.0 values.(x);
  Alcotest.(check (float 1e-6)) "y forced" 4.0 values.(y)

let test_bound_tighten_integer_rounding () =
  (* 2x + 2y <= 5 on binaries admits x = y = 1 fractionally but the
     activity-tightened integer bound cuts nothing integral. *)
  let m = Model.create () in
  let x = Model.add_binary m and y = Model.add_binary m in
  let z = Model.add_var ~kind:Model.Integer ~lb:0.0 ~ub:9.0 m in
  ignore
    (Model.add_constraint m
       (Expr.add (Expr.var ~coef:4.0 z) (Expr.add (Expr.var x) (Expr.var y)))
       Model.Le 11.0);
  Model.set_objective m Model.Maximize
    (Expr.add (Expr.var ~coef:3.0 z) (Expr.add (Expr.var x) (Expr.var y)));
  let t = get_reduced (Presolve.run m) in
  Alcotest.(check bool) "bound tightening fired" true (rule_apps t "bound_tighten" >= 1);
  (* z <= floor(11/4) = 2 after rounding. *)
  let params = { Milp.default_params with Milp.first_solution = false } in
  (match Milp.solve ~params m with
  | Milp.Feasible sol ->
    Alcotest.(check (float 1e-6)) "optimal objective" 8.0 sol.Simplex.objective
  | _ -> Alcotest.fail "expected feasible")

let test_synonym_subst () =
  (* 2x - 4y = 0 makes x and 2y synonyms; one survives. *)
  let m = Model.create () in
  let x = Model.add_var ~ub:10.0 m and y = Model.add_var ~ub:3.0 m in
  ignore
    (Model.add_constraint m
       (Expr.add (Expr.var ~coef:2.0 x) (Expr.var ~coef:(-4.0) y))
       Model.Eq 0.0);
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Le 9.0);
  Model.set_objective m Model.Maximize (Expr.add (Expr.var x) (Expr.var y));
  let t = get_reduced (Presolve.run m) in
  let r = Presolve.reductions t in
  Alcotest.(check bool) "synonym fired" true (rule_apps t "synonym_subst" >= 1);
  Alcotest.(check bool) "a variable was substituted" true (r.Presolve.vars_substituted >= 1);
  let values = solve_and_certify m t in
  Alcotest.(check (float 1e-6)) "synonym relation holds" values.(x) (2.0 *. values.(y))

let test_synonym_subst_infinite_bound () =
  (* x - y = 0 with both variables unbounded above (the Model.add_var
     default) and opposite-sign coefficients: the bound fold divides
     by a negative ratio, so the eliminated variable's infinite upper
     bound must map to an infinite (i.e. non-restricting) endpoint for
     the survivor — not to a wrong-signed infinity that collapses its
     domain. Both ubs stay infinite through activity tightening (each
     would need the other's finite ub), so synonym_subst is the first
     rule to look at them. The model is plainly feasible; presolve
     must never prove it infeasible. *)
  let m = Model.create () in
  let x = Model.add_var ~lb:1.0 m and y = Model.add_var m in
  ignore
    (Model.add_constraint m
       (Expr.add (Expr.var x) (Expr.var ~coef:(-1.0) y))
       Model.Eq 0.0);
  Model.set_objective m Model.Minimize (Expr.add (Expr.var x) (Expr.var y));
  let t = get_reduced (Presolve.run m) in
  Alcotest.(check bool) "synonym fired" true (rule_apps t "synonym_subst" >= 1);
  let values = solve_and_certify m t in
  Alcotest.(check (float 1e-6)) "x = y" values.(x) values.(y);
  Alcotest.(check (float 1e-6)) "optimum" 2.0 (values.(x) +. values.(y))

let test_free_col_subst () =
  (* s appears only in the equality s = 3x + y and its own (loose)
     bounds: implied-free, so the equality defines it away. *)
  let m = Model.create () in
  let x = Model.add_var ~ub:2.0 m and y = Model.add_var ~ub:2.0 m in
  let s = Model.add_var ~lb:(-100.0) ~ub:100.0 m in
  ignore
    (Model.add_constraint m
       (Expr.add (Expr.var s)
          (Expr.add (Expr.var ~coef:(-3.0) x) (Expr.var ~coef:(-1.0) y)))
       Model.Eq 0.0);
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Le 3.0);
  Model.set_objective m Model.Minimize (Expr.var s);
  let t = get_reduced (Presolve.run m) in
  Alcotest.(check bool) "free column fired" true (rule_apps t "free_col_subst" >= 1);
  let values = solve_and_certify m t in
  Alcotest.(check (float 1e-6)) "s reconstructed from the equality"
    ((3.0 *. values.(x)) +. values.(y))
    values.(s)

let test_coef_strengthen () =
  (* 3x + 2y <= 4 on binaries: x's coefficient tightens to 2 (setting
     x = 1 leaves room for nothing anyway). Integer points are
     untouched; the LP corner (1, 1/2) is cut. *)
  let m = Model.create () in
  let x = Model.add_binary m and y = Model.add_binary m in
  ignore
    (Model.add_constraint m
       (Expr.add (Expr.var ~coef:3.0 x) (Expr.var ~coef:2.0 y))
       Model.Le 4.0);
  Model.set_objective m Model.Maximize (Expr.add (Expr.var x) (Expr.var y));
  let t = get_reduced (Presolve.run m) in
  Alcotest.(check bool) "strengthening fired" true (rule_apps t "coef_strengthen" >= 1);
  let params = { Milp.default_params with Milp.first_solution = false } in
  (match Milp.solve ~params m with
  | Milp.Feasible sol ->
    Alcotest.(check (float 1e-6)) "integer optimum intact" 1.0 sol.Simplex.objective;
    (match Certify.solution m sol with
    | Certify.Certified -> ()
    | v -> Alcotest.failf "rejected: %a" Certify.pp_verdict v)
  | _ -> Alcotest.fail "expected feasible")

let test_clique_reduce () =
  (* A path-budget row dominated by the one-hot structure: with
     sum x = 1 and sum y = 1 (3 members each, wide enough that
     synonym substitution cannot pre-empt the cliques), the row
     sum x + sum y <= 2 is redundant although its plain activity
     bound (6) overshoots. *)
  let m = Model.create () in
  let xs = Array.init 3 (fun _ -> Model.add_binary m) in
  let ys = Array.init 3 (fun _ -> Model.add_binary m) in
  let sum vs = Expr.sum (Array.to_list (Array.map Expr.var vs)) in
  ignore (Model.add_constraint m (sum xs) Model.Eq 1.0);
  ignore (Model.add_constraint m (sum ys) Model.Eq 1.0);
  ignore (Model.add_constraint m (Expr.add (sum xs) (sum ys)) Model.Le 2.0);
  Model.set_objective m Model.Maximize (Expr.add (Expr.var xs.(0)) (Expr.var ys.(0)));
  let t = get_reduced (Presolve.run m) in
  Alcotest.(check bool) "clique reduction fired" true (rule_apps t "clique_reduce" >= 1);
  ignore (solve_and_certify m t)

let test_probe () =
  (* Setting v = 1 forces its one-hot mate w = 0, which starves
     z + w >= 1 given z <= 0 — so v must be 0. *)
  let m = Model.create () in
  let v = Model.add_binary m and w = Model.add_binary m in
  let z = Model.add_var ~ub:0.0 m in
  ignore (Model.add_constraint m (Expr.add (Expr.var v) (Expr.var w)) Model.Eq 1.0);
  ignore (Model.add_constraint m (Expr.add (Expr.var z) (Expr.var w)) Model.Ge 1.0);
  Model.set_objective m Model.Maximize (Expr.var v);
  let t = get_reduced (Presolve.run m) in
  let r = Presolve.reductions t in
  Alcotest.(check bool) "probe or forcing fixed v" true
    (r.Presolve.probe_fixings >= 1 || r.Presolve.vars_fixed >= 1);
  Alcotest.(check int) "probe applications equal probe fixings"
    r.Presolve.probe_fixings (rule_apps t "probe");
  let values = solve_and_certify m t in
  Alcotest.(check (float 1e-6)) "v off" 0.0 values.(v);
  Alcotest.(check (float 1e-6)) "w on" 1.0 values.(w)

let test_empty_row_infeasibility () =
  let m = Model.create () in
  let x = Model.add_binary m in
  ignore (Model.add_constraint m (Expr.var ~coef:0.0 x) Model.Ge 1.0);
  match Presolve.run m with
  | Presolve.Proven_infeasible _ -> ()
  | Presolve.Reduced _ -> Alcotest.fail "0 >= 1 must be proven infeasible"

(* ---------- planted-witness soundness ---------- *)

(* Build a random Eq.(3)-shaped model TOGETHER with an integer point
   that satisfies it by construction. Since every presolve rule
   preserves the full integer feasible set, presolve may never prove
   such a model infeasible, and the reduced LP relaxation must stay
   feasible. This is the property that catches unsound reductions on
   structured (one-hot + knapsack) instances that uniform-random
   models never exercise. *)
let planted_model seed =
  let rng = Rng.create seed in
  let m = Model.create () in
  let ngroups = 2 + Rng.int rng 4 in
  let groups =
    Array.init ngroups (fun _ ->
        let size = 2 + Rng.int rng 3 in
        let vars = Array.init size (fun _ -> Model.add_binary m) in
        let pick = Rng.int rng size in
        (* exactly-one row: the witness picks one member. *)
        ignore
          (Model.add_constraint m
             (Expr.sum (Array.to_list (Array.map Expr.var vars)))
             Model.Eq 1.0);
        (vars, pick))
  in
  let witness = Hashtbl.create 16 in
  Array.iter
    (fun (vars, pick) ->
      Array.iteri (fun i v -> Hashtbl.replace witness v (if i = pick then 1.0 else 0.0)) vars)
    groups;
  let wval v = try Hashtbl.find witness v with Not_found -> 0.0 in
  (* Knapsack rows over random binaries, rhs = witness activity plus
     nonnegative slack: satisfiable by construction. *)
  let all_bins =
    Array.concat (Array.to_list (Array.map (fun (vs, _) -> vs) groups))
  in
  let nknap = 1 + Rng.int rng 3 in
  for _ = 1 to nknap do
    let terms = ref [] and act = ref 0.0 in
    Array.iter
      (fun v ->
        if Rng.int rng 3 = 0 then begin
          let c = float_of_int (1 + Rng.int rng 5) in
          terms := Expr.var ~coef:c v :: !terms;
          act := !act +. (c *. wval v)
        end)
      all_bins;
    if !terms <> [] then begin
      let slack = float_of_int (Rng.int rng 3) in
      ignore (Model.add_constraint m (Expr.sum !terms) Model.Le (!act +. slack))
    end
  done;
  (* A continuous aggregate pinned to its defining equality, like the
     per-PE wear columns: s - sum c_i x_i = 0. *)
  let s = Model.add_var ~lb:0.0 ~ub:1000.0 m in
  let terms = ref [ Expr.var s ] and act = ref 0.0 in
  Array.iter
    (fun v ->
      if Rng.int rng 2 = 0 then begin
        let c = float_of_int (1 + Rng.int rng 4) in
        terms := Expr.var ~coef:(-.c) v :: !terms;
        act := !act +. (c *. wval v)
      end)
    all_bins;
  ignore (Model.add_constraint m (Expr.sum !terms) Model.Eq 0.0);
  let sval = !act in
  (* An occasional covering row, again anchored on the witness. *)
  if Rng.int rng 2 = 0 then begin
    let terms = ref [] and act = ref 0.0 in
    Array.iter
      (fun v ->
        if Rng.int rng 3 = 0 then begin
          terms := Expr.var v :: !terms;
          act := !act +. wval v
        end)
      all_bins;
    if !terms <> [] && !act > 0.0 then
      ignore (Model.add_constraint m (Expr.sum !terms) Model.Ge !act)
  end;
  Model.set_objective m Model.Minimize
    (Expr.add (Expr.var ~coef:0.01 s)
       (Expr.sum (Array.to_list (Array.map (fun v -> Expr.var v) all_bins))));
  let check = Model.check_feasible m (fun v -> if v = s then sval else wval v) in
  (match check with
  | Ok () -> ()
  | Error e -> Alcotest.failf "seed %d: witness violates its own model: %s" seed e);
  m

let prop_planted_never_infeasible =
  QCheck2.Test.make ~name:"presolve keeps planted-witness models feasible" ~count:150
    QCheck2.Gen.int (fun seed ->
      let m = planted_model seed in
      match Presolve.run m with
      | Presolve.Proven_infeasible r ->
        QCheck2.Test.fail_reportf "falsely proven infeasible: %s" r
      | Presolve.Reduced t -> (
        match Simplex.solve (Presolve.reduced t) with
        | Simplex.Infeasible -> QCheck2.Test.fail_reportf "reduced LP infeasible"
        | Simplex.Optimal s ->
          let values = Presolve.postsolve t s.Simplex.values in
          (match Certify.solution ~relaxation:true m { s with Simplex.values } with
          | Certify.Certified -> true
          | Certify.Rejected es ->
            QCheck2.Test.fail_reportf "postsolve rejected: %s" (String.concat "; " es)
          | Certify.Unsupported e -> QCheck2.Test.fail_reportf "unsupported: %s" e)
        | st ->
          QCheck2.Test.fail_reportf "reduced LP: %s"
            (Format.asprintf "%a" Simplex.pp_status st)))

(* presolve ∘ postsolve preserves the MILP verdict and objective,
   across basis kernels and warm/cold node starts. *)
let prop_milp_presolve_equivalence =
  QCheck2.Test.make
    ~name:"MILP with presolve matches MILP without, all kernels, warm and cold"
    ~count:40 QCheck2.Gen.int (fun seed ->
      let m = planted_model seed in
      let base =
        { Milp.default_params with Milp.first_solution = false; node_limit = 4000 }
      in
      let variants =
        [
          { base with Milp.presolve = false };
          { base with Milp.presolve = true };
          { base with Milp.presolve = true; warm_start = false };
          {
            base with
            Milp.presolve = true;
            warm_start = false;
            lp_params = { base.Milp.lp_params with Simplex.kernel = Basis.Dense };
          };
          {
            base with
            Milp.presolve = true;
            lp_params = { base.Milp.lp_params with Simplex.kernel = Basis.Dense };
          };
        ]
      in
      let solve p = Milp.solve ~params:p m in
      match List.map solve variants with
      | Milp.Feasible a :: rest ->
        List.for_all
          (function
            | Milp.Feasible b ->
              abs_float (a.Simplex.objective -. b.Simplex.objective) < 1e-6
              && Model.check_feasible m (fun v -> b.Simplex.values.(v)) = Ok ()
              && Certify.solution m b = Certify.Certified
            | _ -> false)
          rest
      | _ ->
        (* The planted witness guarantees feasibility. *)
        false)

(* ---------- pinned Eq.(3)-shaped CI guard ---------- *)

(* A fixed miniature of formulation (3): 3 contexts x 4 operations x
   4 PEs with one-hot assignment rows, per-(context, PE) capacity
   rows, per-PE stress knapsacks and wear-aggregation equalities. The
   guard pins the *engine actually firing*: nonzero row removals and
   variable fixings on this instance, every round bounded, and the
   reduced solve certifying against the original. A presolve
   regression that silently stops reducing Eq.(3) fails here, not in
   a benchmark nobody re-runs. *)
let eq3_pinned_model () =
  let m = Model.create () in
  let nctx = 3 and nops = 4 and npes = 4 in
  let x = Array.init nctx (fun _ -> Array.make_matrix nops npes (-1)) in
  for c = 0 to nctx - 1 do
    for o = 0 to nops - 1 do
      (* operation o in context c may sit on its home PE o or on PE
         (o+1) mod npes: a pruned candidate set, as after §IV.C. *)
      let cands = [ o; (o + 1) mod npes ] in
      List.iter
        (fun pe -> x.(c).(o).(pe) <- Model.add_binary ~name:(Printf.sprintf "OP_%d_%d_%d" c o pe) m)
        cands;
      ignore
        (Model.add_constraint m
           (Expr.sum (List.map (fun pe -> Expr.var x.(c).(o).(pe)) cands))
           Model.Eq 1.0)
    done;
    for pe = 0 to npes - 1 do
      let users =
        List.filter_map
          (fun o -> if x.(c).(o).(pe) >= 0 then Some (Expr.var x.(c).(o).(pe)) else None)
          (List.init nops Fun.id)
      in
      if users <> [] then ignore (Model.add_constraint m (Expr.sum users) Model.Le 1.0)
    done
  done;
  (* Per-PE stress knapsack and wear aggregate across contexts. *)
  for pe = 0 to npes - 1 do
    let terms = ref [] in
    for c = 0 to nctx - 1 do
      for o = 0 to nops - 1 do
        if x.(c).(o).(pe) >= 0 then
          terms := Expr.var ~coef:1.5 x.(c).(o).(pe) :: !terms
      done
    done;
    ignore (Model.add_constraint m (Expr.sum !terms) Model.Le 4.6);
    let s = Model.add_var ~name:(Printf.sprintf "wear_%d" pe) ~lb:0.0 ~ub:100.0 m in
    ignore
      (Model.add_constraint m
         (Expr.sub (Expr.var s) (Expr.sum !terms))
         Model.Eq 0.0)
  done;
  m

let test_ci_guard_eq3_reductions () =
  let m = eq3_pinned_model () in
  let t = get_reduced (Presolve.run m) in
  let r = Presolve.reductions t in
  Alcotest.(check bool) "rows removed" true (r.Presolve.rows_removed > 0);
  Alcotest.(check bool) "vars eliminated" true
    (r.Presolve.vars_fixed + r.Presolve.vars_substituted > 0);
  Alcotest.(check bool) "rounds bounded" true (r.Presolve.rounds <= 10);
  Alcotest.(check bool) "nnz accounting nonnegative" true
    (r.Presolve.nnz_removed >= 0 && r.Presolve.nnz_fillin >= 0);
  Alcotest.(check bool) "nnz removed and fill-in are exclusive" true
    (r.Presolve.nnz_removed = 0 || r.Presolve.nnz_fillin = 0);
  (* Per-rule table is consistent with the aggregates. *)
  let total_apps =
    List.fold_left (fun a (_, s) -> a + s.Presolve.applications) 0 r.Presolve.per_rule
  in
  Alcotest.(check bool) "some rule fired" true (total_apps > 0);
  let params = { Milp.default_params with Milp.first_solution = false } in
  match Milp.solve ~params m with
  | Milp.Feasible sol -> (
    match Certify.solution m sol with
    | Certify.Certified -> ()
    | v -> Alcotest.failf "pinned instance rejected: %a" Certify.pp_verdict v)
  | _ -> Alcotest.fail "pinned Eq.(3) instance must be feasible"

let test_postsolve_identity_on_no_reduction () =
  (* A model presolve cannot touch: dense, all bounds active, no
     singletons. Postsolve must then be the identity embedding. *)
  let m = Model.create () in
  let x = Model.add_var ~ub:1.0 m and y = Model.add_var ~ub:1.0 m in
  ignore
    (Model.add_constraint m
       (Expr.add (Expr.var ~coef:0.7 x) (Expr.var ~coef:0.3 y))
       Model.Le 0.5);
  ignore
    (Model.add_constraint m
       (Expr.add (Expr.var ~coef:0.3 x) (Expr.var ~coef:0.7 y))
       Model.Le 0.5);
  Model.set_objective m Model.Maximize (Expr.add (Expr.var x) (Expr.var y));
  let t = get_reduced (Presolve.run m) in
  let values = solve_and_certify m t in
  Alcotest.(check (float 1e-6)) "symmetric optimum" 1.0 (values.(x) +. values.(y))

let () =
  Alcotest.run "presolve"
    [
      ( "rules",
        [
          Alcotest.test_case "redundant row" `Quick test_redundant_row;
          Alcotest.test_case "forcing row" `Quick test_forcing_row;
          Alcotest.test_case "integer bound tightening" `Quick
            test_bound_tighten_integer_rounding;
          Alcotest.test_case "synonym substitution" `Quick test_synonym_subst;
          Alcotest.test_case "synonym substitution, infinite bound" `Quick
            test_synonym_subst_infinite_bound;
          Alcotest.test_case "implied-free column" `Quick test_free_col_subst;
          Alcotest.test_case "coefficient strengthening" `Quick test_coef_strengthen;
          Alcotest.test_case "clique reduction" `Quick test_clique_reduce;
          Alcotest.test_case "clique probing" `Quick test_probe;
          Alcotest.test_case "empty-row infeasibility" `Quick
            test_empty_row_infeasibility;
          Alcotest.test_case "postsolve identity" `Quick
            test_postsolve_identity_on_no_reduction;
        ] );
      ( "soundness",
        [
          QCheck_alcotest.to_alcotest prop_planted_never_infeasible;
          QCheck_alcotest.to_alcotest prop_milp_presolve_equivalence;
        ] );
      ( "ci-guard",
        [ Alcotest.test_case "pinned Eq.(3) reductions" `Quick test_ci_guard_eq3_reductions ] );
    ]
