(* Tests for the domain-parallel solve layer: the work-sharing pool,
   per-task Rng streams, parallel branch & bound agreeing with the
   sequential search, and parallel per-context remap passing the same
   audit gate as the sequential pipeline. *)

open Agingfp_cgrra
module Pool = Agingfp_util.Pool
module Budget = Agingfp_util.Budget
module Rng = Agingfp_util.Rng
module Expr = Agingfp_lp.Expr
module Model = Agingfp_lp.Model
module Simplex = Agingfp_lp.Simplex
module Milp = Agingfp_lp.Milp
module Placer = Agingfp_place.Placer
module Rotation = Agingfp_floorplan.Rotation
module Remap = Agingfp_floorplan.Remap
module Audit = Agingfp_floorplan.Audit

(* Pools in the test process: size 4 exercises real cross-domain
   hand-off even on a single-core host (domains still interleave).
   [~clamp:false] opts out of the core-count clamp on purpose — these
   tests are about cross-domain correctness, not throughput. *)
let pool4 = Pool.get ~clamp:false 4

(* ---------- Pool ---------- *)

let test_pool_map_ordering () =
  let xs = Array.init 100 (fun i -> i) in
  let ys = Pool.map pool4 (fun i -> i * i) xs in
  Alcotest.(check (array int)) "results land at input index"
    (Array.map (fun i -> i * i) xs)
    ys

let test_pool_map_empty () =
  Alcotest.(check (array int)) "empty batch" [||] (Pool.map pool4 (fun i -> i) [||])

let test_pool_size_one_sequential () =
  (* A size-1 pool runs everything on the submitter, in order. *)
  let p = Pool.create ~domains:1 in
  let order = ref [] in
  let ys = Pool.map p (fun i -> order := i :: !order; i + 1) (Array.init 10 (fun i -> i)) in
  Pool.shutdown p;
  Alcotest.(check (array int)) "results" (Array.init 10 (fun i -> i + 1)) ys;
  Alcotest.(check (list int)) "executed in submission order"
    (List.init 10 (fun i -> 9 - i))
    !order

exception Boom of int

let test_pool_exception_propagation () =
  let ran = Array.make 8 false in
  let raised =
    try
      ignore
        (Pool.map pool4
           (fun i ->
             ran.(i) <- true;
             if i = 3 || i = 5 then raise (Boom i))
           (Array.init 8 (fun i -> i)));
      None
    with Boom i -> Some i
  in
  (* First failure by input index wins, and no task was abandoned. *)
  Alcotest.(check (option int)) "first exception by index" (Some 3) raised;
  Alcotest.(check bool) "every task still ran" true (Array.for_all Fun.id ran)

let test_pool_nested_submission () =
  (* Tasks submitting to the same pool must not deadlock: the waiting
     submitter helps execute. *)
  let outer =
    Pool.map pool4
      (fun i ->
        let inner = Pool.map pool4 (fun j -> j * 10) (Array.init 5 (fun j -> j)) in
        i + Array.fold_left ( + ) 0 inner)
      (Array.init 6 (fun i -> i))
  in
  Alcotest.(check (array int)) "nested sums"
    (Array.init 6 (fun i -> i + 100))
    outer

let test_pool_run_counter () =
  let counter = Atomic.make 0 in
  Pool.run pool4 (Array.init 32 (fun _ () -> Atomic.incr counter));
  Alcotest.(check int) "all bodies ran" 32 (Atomic.get counter)

let test_pool_budget_drain () =
  (* An already-expired budget starts nothing... *)
  let expired = Budget.create ~deadline_s:0.0 () in
  let r = Pool.map_budgeted pool4 ~budget:expired (fun i -> i) (Array.init 16 (fun i -> i)) in
  Alcotest.(check bool) "nothing started" true (Array.for_all (( = ) None) r);
  (* ...an unlimited one runs everything... *)
  let r =
    Pool.map_budgeted pool4 ~budget:Budget.unlimited (fun i -> i * 2)
      (Array.init 16 (fun i -> i))
  in
  Alcotest.(check bool) "all ran" true
    (Array.for_all (( <> ) None) r);
  Alcotest.(check (option int)) "values kept" (Some 30) r.(15);
  (* ...and one that dies mid-batch drains the tail as [None] while
     keeping every result that did complete. *)
  let allowance = Budget.create ~allowance:6 () in
  let r =
    Pool.map_budgeted pool4 ~budget:allowance
      (fun i -> Budget.spend allowance 1; i)
      (Array.init 64 (fun i -> i))
  in
  let completed = Array.to_list r |> List.filter_map Fun.id in
  Alcotest.(check bool) "some completed" true (List.length completed > 0);
  Alcotest.(check bool) "tail drained" true
    (Array.exists (( = ) None) r);
  List.iter (fun i -> Alcotest.(check bool) "value intact" true (i >= 0 && i < 64)) completed

let test_pool_get_memoized () =
  Alcotest.(check bool) "same pool returned" true (Pool.get ~clamp:false 4 == pool4);
  Alcotest.(check int) "size" 4 (Pool.size pool4);
  (* The default path clamps to the core count: never larger than the
     recommendation, and a request within it is honoured exactly. *)
  let rec_jobs = Pool.default_jobs () in
  Alcotest.(check int) "effective_jobs clamps" rec_jobs
    (Pool.effective_jobs (rec_jobs + 7));
  Alcotest.(check int) "effective_jobs floors at 1" 1 (Pool.effective_jobs (-3));
  Alcotest.(check bool) "default get is clamped" true
    (Pool.size (Pool.get (rec_jobs + 7)) = rec_jobs);
  Alcotest.(check int) "in-range request honoured" 1 (Pool.size (Pool.get 1))

(* ---------- Rng splitting ---------- *)

let test_rng_split_n_deterministic () =
  let streams seed =
    Rng.split_n (Rng.create seed) 8 |> Array.map (fun g -> List.init 5 (fun _ -> Rng.int g 1000))
  in
  Alcotest.(check bool) "same seed, same per-task streams" true (streams 42 = streams 42);
  Alcotest.(check bool) "different tasks, different streams" true
    (let s = streams 42 in s.(0) <> s.(1));
  (* Execution order must not matter: drawing from the splits on the
     pool gives the same values as drawing sequentially. *)
  let gens = Rng.split_n (Rng.create 7) 16 in
  let seq = Array.map (fun g -> Rng.int (Rng.copy g) 1_000_000) gens in
  let par = Pool.map pool4 (fun g -> Rng.int g 1_000_000) gens in
  Alcotest.(check (array int)) "pool draws match sequential draws" seq par

(* ---------- parallel branch & bound ---------- *)

let random_ilp seed =
  let rng = Rng.create seed in
  let nvars = 3 + Rng.int rng 5 in
  let ncons = 1 + Rng.int rng 4 in
  let m = Model.create () in
  let vars = Array.init nvars (fun _ -> Model.add_binary m) in
  for _ = 1 to ncons do
    let lhs =
      Expr.sum
        (List.init nvars (fun v ->
             Expr.var ~coef:(float_of_int (Rng.int rng 7 - 3)) vars.(v)))
    in
    let rhs = float_of_int (Rng.int rng 8 - 2) in
    let rel = if Rng.int rng 3 = 0 then Model.Ge else Model.Le in
    ignore (Model.add_constraint m lhs rel rhs)
  done;
  Model.set_objective m Model.Maximize
    (Expr.sum
       (List.init nvars (fun v ->
            Expr.var ~coef:(float_of_int (Rng.int rng 11 - 5)) vars.(v))));
  m

let prop_parallel_milp_agrees =
  (* With [first_solution = false] both searches prove optimality, so
     status and objective must coincide; node order and the reported
     optimal point may not. *)
  QCheck2.Test.make ~name:"parallel B&B matches sequential status and objective"
    ~count:120 QCheck2.Gen.int (fun seed ->
      let seq_params = { Milp.default_params with first_solution = false } in
      let par_params = { seq_params with Milp.jobs = 4 } in
      let m = random_ilp seed in
      match (Milp.solve ~params:seq_params m, Milp.solve ~params:par_params (random_ilp seed)) with
      | Milp.Feasible a, Milp.Feasible b ->
        abs_float (a.Simplex.objective -. b.Simplex.objective) < 1e-6
        && Model.check_feasible m (fun v -> b.Simplex.values.(v)) = Ok ()
        && List.for_all
             (fun v ->
               let x = b.Simplex.values.(v) in
               x = Float.round x)
             (Model.integer_vars m)
      | Milp.Infeasible, Milp.Infeasible -> true
      | _ -> false)

let test_parallel_milp_first_solution () =
  (* first_solution + parallel must still return some feasible point. *)
  let m = random_ilp 1234 in
  let params = { Milp.default_params with Milp.jobs = 4 } in
  match Milp.solve ~params m with
  | Milp.Feasible sol ->
    Alcotest.(check bool) "feasible in original model" true
      (Model.check_feasible m (fun v -> sol.Simplex.values.(v)) = Ok ())
  | Milp.Infeasible -> ()
  | Milp.Unknown -> Alcotest.fail "unexpected Unknown with unlimited budget"

let test_parallel_milp_node_limit () =
  (* The shared node counter must respect the limit and report it. *)
  let m = random_ilp 99 in
  let params =
    { Milp.default_params with Milp.jobs = 4; first_solution = false; node_limit = 1 }
  in
  let _, stats = Milp.solve_with_stats ~params m in
  Alcotest.(check bool) "at most node_limit + jobs nodes" true (stats.Milp.nodes <= 5)

(* ---------- parallel remap ---------- *)

let bench_placed name =
  let design = Benchmarks.generate (Option.get (Benchmarks.find name)) in
  (design, Placer.aging_unaware design)

let check_remap design baseline (r : Remap.result) =
  Alcotest.(check bool) "mapping valid" true (Mapping.validate design r.Remap.mapping = Ok ());
  Alcotest.(check bool) "audit clean" true (Audit.ok r.Remap.audit);
  Alcotest.(check bool) "cpd not worse" true
    (r.Remap.new_cpd_ns <= r.Remap.baseline_cpd_ns +. 1e-9);
  ignore baseline

let test_parallel_remap_audit_clean () =
  List.iter
    (fun name ->
      let design, baseline = bench_placed name in
      let params = { Remap.default_params with Remap.jobs = 4 } in
      check_remap design baseline (Remap.solve ~params ~mode:Rotation.Freeze design baseline);
      check_remap design baseline (Remap.solve ~params ~mode:Rotation.Rotate design baseline))
    [ "B3"; "B10" ]

let test_parallel_remap_tiny () =
  let design = Benchmarks.tiny () in
  let baseline = Placer.aging_unaware design in
  let params = { Remap.default_params with Remap.jobs = 2 } in
  check_remap design baseline (Remap.solve ~params ~mode:Rotation.Rotate design baseline)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map ordering" `Quick test_pool_map_ordering;
          Alcotest.test_case "map empty" `Quick test_pool_map_empty;
          Alcotest.test_case "size-1 sequential" `Quick test_pool_size_one_sequential;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception_propagation;
          Alcotest.test_case "nested submission" `Quick test_pool_nested_submission;
          Alcotest.test_case "run counter" `Quick test_pool_run_counter;
          Alcotest.test_case "budget drain" `Quick test_pool_budget_drain;
          Alcotest.test_case "get memoized" `Quick test_pool_get_memoized;
        ] );
      ( "rng",
        [ Alcotest.test_case "split_n determinism" `Quick test_rng_split_n_deterministic ] );
      ( "milp",
        [
          QCheck_alcotest.to_alcotest prop_parallel_milp_agrees;
          Alcotest.test_case "first solution" `Quick test_parallel_milp_first_solution;
          Alcotest.test_case "node limit" `Quick test_parallel_milp_node_limit;
        ] );
      ( "remap",
        [
          Alcotest.test_case "tiny rotate" `Quick test_parallel_remap_tiny;
          Alcotest.test_case "table-i audit clean" `Slow test_parallel_remap_audit_clean;
        ] );
    ]
