(* Tests for the paper's contribution: rotation, path budgets,
   candidate pruning, the MILP model for formulation (3), Step 1,
   Algorithm 1 end-to-end invariants, the naive strawman and the
   primary ILP. *)

open Agingfp_cgrra
module Placer = Agingfp_place.Placer
module Analysis = Agingfp_timing.Analysis
module Mttf = Agingfp_aging.Mttf
module Rotation = Agingfp_floorplan.Rotation
module Paths = Agingfp_floorplan.Paths
module Candidates = Agingfp_floorplan.Candidates
module Ilp_model = Agingfp_floorplan.Ilp_model
module Remap = Agingfp_floorplan.Remap
module Naive = Agingfp_floorplan.Naive
module Primary_ilp = Agingfp_floorplan.Primary_ilp
module Refine = Agingfp_floorplan.Refine
module Related = Agingfp_floorplan.Related
module Lifetime = Agingfp_floorplan.Lifetime
module Mttf_mod = Agingfp_aging.Mttf
module Simplex = Agingfp_lp.Simplex
module Audit = Agingfp_floorplan.Audit

let tiny_placed () =
  let design = Benchmarks.tiny () in
  (design, Placer.aging_unaware design)

let bench_placed name =
  let design = Benchmarks.generate (Option.get (Benchmarks.find name)) in
  (design, Placer.aging_unaware design)

(* ---------- rotation ---------- *)

let test_orientation_counts_rule () =
  (* C <= 8: all distinct; C = 16: exactly twice each; C = 12: 1..2. *)
  Alcotest.(check (pair int int)) "C=4" (0, 1)
    (Rotation.allowed_orientation_counts ~contexts:4);
  Alcotest.(check (pair int int)) "C=8" (0, 1)
    (Rotation.allowed_orientation_counts ~contexts:8);
  Alcotest.(check (pair int int)) "C=16" (2, 2)
    (Rotation.allowed_orientation_counts ~contexts:16);
  Alcotest.(check (pair int int)) "C=12" (1, 2)
    (Rotation.allowed_orientation_counts ~contexts:12)

let test_freeze_plan_pins_original () =
  let design, baseline = tiny_placed () in
  let plan = Rotation.freeze_plan design baseline in
  Array.iteri
    (fun ctx pins ->
      List.iter
        (fun (op, pe) ->
          Alcotest.(check int) "original PE" (Mapping.pe_of baseline ~ctx ~op) pe)
        pins)
    plan

let test_freeze_plan_covers_critical_ops () =
  let design, baseline = tiny_placed () in
  let plan = Rotation.freeze_plan design baseline in
  for ctx = 0 to Design.num_contexts design - 1 do
    let crit = Rotation.critical_ops design baseline ~ctx in
    Alcotest.(check int) "all critical ops pinned" (List.length crit)
      (List.length plan.(ctx))
  done

let test_rotate_reference_valid_and_cpd_preserving () =
  let design, baseline = tiny_placed () in
  let reference, _pins = Rotation.rotate_reference design baseline in
  Alcotest.(check bool) "valid" true (Mapping.validate design reference = Ok ());
  Alcotest.(check (float 1e-9)) "identical CPD" (Analysis.cpd design baseline)
    (Analysis.cpd design reference);
  (* Per-context CPDs preserved too (rigid transform). *)
  for ctx = 0 to Design.num_contexts design - 1 do
    Alcotest.(check (float 1e-9)) "ctx cpd"
      (Analysis.context_cpd design baseline ctx)
      (Analysis.context_cpd design reference ctx)
  done

let test_rotate_pins_match_reference () =
  let design, baseline = tiny_placed () in
  let reference, pins = Rotation.rotate_reference design baseline in
  Array.iteri
    (fun ctx ctx_pins ->
      List.iter
        (fun (op, pe) ->
          Alcotest.(check int) "pin = reference position"
            (Mapping.pe_of reference ~ctx ~op) pe)
        ctx_pins)
    pins

let test_rotate_reduces_cp_overlap () =
  (* The greedy selection should not increase max pin stacking vs the
     freeze plan on a corner-packed baseline. *)
  let design, baseline = bench_placed "B10" in
  let stack plan =
    let acc = Array.make (Fabric.num_pes (Design.fabric design)) 0 in
    Array.iter (fun pins -> List.iter (fun (_, pe) -> acc.(pe) <- acc.(pe) + 1) pins) plan;
    Array.fold_left max 0 acc
  in
  let freeze = Rotation.freeze_plan design baseline in
  let _, rotated = Rotation.rotate_reference design baseline in
  Alcotest.(check bool) "overlap not worse" true (stack rotated <= stack freeze)

(* ---------- paths ---------- *)

let test_budgets_cover_baseline () =
  let design, baseline = tiny_placed () in
  let monitored = Paths.monitored design baseline in
  Array.iter
    (fun budgeted ->
      List.iter
        (fun (b : Paths.budgeted) ->
          Alcotest.(check bool) "baseline within budget" true
            (b.Paths.baseline_wire <= b.Paths.wire_budget);
          Alcotest.(check bool) "slack non-negative" true (Paths.slack b >= 0))
        budgeted)
    monitored

let test_critical_path_slack_zero () =
  (* The slack of a path achieving the design CPD is (near) zero in
     wire-length units. *)
  let design, baseline = tiny_placed () in
  let cpd = Analysis.cpd design baseline in
  let monitored = Paths.monitored design baseline in
  let found = ref false in
  Array.iter
    (fun budgeted ->
      List.iter
        (fun (b : Paths.budgeted) ->
          if abs_float (b.Paths.path.Analysis.delay_ns -. cpd) < 1e-9 then begin
            found := true;
            Alcotest.(check bool) "critical slack < 1 pitch" true (Paths.slack b <= 1)
          end)
        budgeted)
    monitored;
  Alcotest.(check bool) "found the critical path" true !found

let test_budget_respects_eq5 () =
  (* Recompute Eq. (5) by hand for every monitored path. *)
  let design, baseline = tiny_placed () in
  let chars = Design.chars design in
  let cpd = Analysis.cpd design baseline in
  let monitored = Paths.monitored design baseline in
  Array.iter
    (fun budgeted ->
      List.iter
        (fun (b : Paths.budgeted) ->
          let pe_sum = Analysis.pe_delay_sum design b.Paths.path in
          let expected =
            int_of_float (floor (((cpd -. pe_sum) /. chars.Chars.unit_wire_delay_ns) +. 1e-9))
          in
          Alcotest.(check int) "Eq. 5" (max expected b.Paths.baseline_wire)
            b.Paths.wire_budget)
        budgeted)
    monitored

(* ---------- candidates ---------- *)

let build_candidates design baseline mode =
  let reference, frozen = Rotation.reference mode design baseline in
  let monitored = Paths.monitored design baseline in
  (Candidates.build design reference ~frozen ~monitored, reference, frozen, monitored)

let test_candidates_frozen_singleton () =
  let design, baseline = tiny_placed () in
  let cands, _, frozen, _ = build_candidates design baseline Rotation.Freeze in
  Array.iteri
    (fun ctx pins ->
      List.iter
        (fun (op, pe) ->
          Alcotest.(check bool) "frozen" true (Candidates.is_frozen cands ~ctx ~op);
          Alcotest.(check (list int)) "singleton" [ pe ] (Candidates.get cands ~ctx ~op))
        pins)
    frozen

let test_candidates_contain_reference_position () =
  let design, baseline = tiny_placed () in
  let cands, reference, _, _ = build_candidates design baseline Rotation.Rotate in
  for ctx = 0 to Design.num_contexts design - 1 do
    let dfg = Design.context design ctx in
    for op = 0 to Dfg.num_ops dfg - 1 do
      if not (Candidates.is_frozen cands ~ctx ~op) then begin
        let set = Candidates.get cands ~ctx ~op in
        Alcotest.(check bool) "non-empty" true (set <> []);
        let home = Mapping.pe_of reference ~ctx ~op in
        (* Home position included unless a pin claimed it. *)
        let pinned_pes =
          List.concat_map (fun pins -> List.map snd pins)
            [ (Rotation.freeze_plan design reference).(ctx) ]
        in
        ignore pinned_pes;
        Alcotest.(check bool) "home or fallback" true
          (List.mem home set || List.length set >= 1)
      end
    done
  done

let test_candidates_capped () =
  let design, baseline = bench_placed "B10" in
  let params = { Candidates.default_params with max_candidates = 6 } in
  let reference, frozen = Rotation.reference Rotation.Freeze design baseline in
  let monitored = Paths.monitored design baseline in
  let cands = Candidates.build ~params design reference ~frozen ~monitored in
  for ctx = 0 to Design.num_contexts design - 1 do
    let dfg = Design.context design ctx in
    for op = 0 to Dfg.num_ops dfg - 1 do
      if not (Candidates.is_frozen cands ~ctx ~op) then begin
        (* The cap may be exceeded only by force-included pin-adjacent
           PEs; with Freeze pins sit at their original spots, so allow
           a small margin. *)
        Alcotest.(check bool) "roughly capped" true
          (List.length (Candidates.get cands ~ctx ~op) <= 6 + 13)
      end
    done
  done

let test_candidates_distinct () =
  let design, baseline = tiny_placed () in
  let cands, _, _, _ = build_candidates design baseline Rotation.Freeze in
  for ctx = 0 to Design.num_contexts design - 1 do
    let dfg = Design.context design ctx in
    for op = 0 to Dfg.num_ops dfg - 1 do
      let set = Candidates.get cands ~ctx ~op in
      Alcotest.(check int) "no duplicates"
        (List.length (List.sort_uniq Int.compare set))
        (List.length set)
    done
  done

(* ---------- ILP model ---------- *)

let test_model_feasible_at_st_up () =
  let design, baseline = tiny_placed () in
  let cands, reference, _, monitored = build_candidates design baseline Rotation.Freeze in
  let st_up = Stress.max_accumulated design baseline in
  let committed = Array.make (Fabric.num_pes (Design.fabric design)) 0.0 in
  (* Commit the frozen pins' stress, as Remap does. *)
  Array.iteri
    (fun ctx pins ->
      List.iter
        (fun (op, pe) -> committed.(pe) <- committed.(pe) +. Stress.op_stress design ~ctx ~op)
        pins)
    (Rotation.freeze_plan design baseline);
  let contexts = List.init (Design.num_contexts design) (fun i -> i) in
  let inst =
    Ilp_model.build design ~baseline:reference ~st_target:st_up ~candidates:cands
      ~monitored ~contexts ~committed
  in
  match Simplex.solve (Ilp_model.model inst) with
  | Simplex.Optimal _ -> ()
  | st -> Alcotest.failf "expected feasible at ST_up, got %a" Simplex.pp_status st

let test_model_infeasible_below_floor () =
  (* Below the per-op stress floor no assignment can exist. *)
  let design, baseline = tiny_placed () in
  let cands, reference, _, monitored = build_candidates design baseline Rotation.Freeze in
  let committed = Array.make (Fabric.num_pes (Design.fabric design)) 0.0 in
  let contexts = List.init (Design.num_contexts design) (fun i -> i) in
  let inst =
    Ilp_model.build design ~baseline:reference ~st_target:1e-6 ~candidates:cands
      ~monitored ~contexts ~committed
  in
  match Simplex.solve (Ilp_model.model inst) with
  | Simplex.Infeasible -> ()
  | st -> Alcotest.failf "expected infeasible, got %a" Simplex.pp_status st

let test_model_extract_valid () =
  let design, baseline = tiny_placed () in
  let cands, reference, _, monitored = build_candidates design baseline Rotation.Freeze in
  let st_up = Stress.max_accumulated design baseline in
  let committed = Array.make (Fabric.num_pes (Design.fabric design)) 0.0 in
  Array.iteri
    (fun ctx pins ->
      List.iter
        (fun (op, pe) -> committed.(pe) <- committed.(pe) +. Stress.op_stress design ~ctx ~op)
        pins)
    (Rotation.freeze_plan design baseline);
  let contexts = List.init (Design.num_contexts design) (fun i -> i) in
  let inst =
    Ilp_model.build design ~baseline:reference ~st_target:st_up ~candidates:cands
      ~monitored ~contexts ~committed
  in
  match Agingfp_lp.Milp.relax_and_fix (Ilp_model.model inst) with
  | Agingfp_lp.Milp.Feasible sol ->
    let mapping =
      Ilp_model.extract inst
        ~values:(fun v -> sol.Agingfp_lp.Simplex.values.(v))
        baseline
    in
    Alcotest.(check bool) "valid mapping" true (Mapping.validate design mapping = Ok ())
  | r -> Alcotest.failf "expected feasible, got %a" Agingfp_lp.Milp.pp_result r

(* ---------- Step 1 ---------- *)

let test_step1_between_mean_and_max () =
  let design, baseline = tiny_placed () in
  let lb = Remap.step1_lower_bound design baseline in
  Alcotest.(check bool) "lb >= mean" true
    (lb >= Stress.mean_accumulated design baseline -. 1e-9);
  Alcotest.(check bool) "lb <= max" true
    (lb <= Stress.max_accumulated design baseline +. 1e-9)

let test_step1_milp_not_above_greedy () =
  (* The MILP probe explores at least as much as greedy packing, so
     its lower bound can only be tighter (or equal). *)
  let design, baseline = tiny_placed () in
  let greedy = Remap.step1_lower_bound design baseline in
  let milp =
    Remap.step1_lower_bound
      ~params:{ Remap.default_params with step1 = Remap.Milp_relax }
      design baseline
  in
  Alcotest.(check bool) "milp <= greedy + eps" true (milp <= greedy +. 0.15)

(* ---------- Algorithm 1 end-to-end invariants ---------- *)

let check_result design baseline (r : Remap.result) =
  Alcotest.(check bool) "mapping valid" true (Mapping.validate design r.Remap.mapping = Ok ());
  Alcotest.(check bool) "CPD not increased" true
    (r.Remap.new_cpd_ns <= r.Remap.baseline_cpd_ns +. 1e-9);
  Alcotest.(check (float 1e-9)) "baseline CPD reported" (Analysis.cpd design baseline)
    r.Remap.baseline_cpd_ns;
  Alcotest.(check (float 1e-6)) "new CPD reported"
    (Analysis.cpd design r.Remap.mapping)
    r.Remap.new_cpd_ns;
  if r.Remap.improved then
    Alcotest.(check bool) "stress not increased" true
      (Stress.max_accumulated design r.Remap.mapping
      <= Stress.max_accumulated design baseline +. 1e-9)

let test_remap_freeze_invariants () =
  let design, baseline = tiny_placed () in
  check_result design baseline (Remap.solve ~mode:Rotation.Freeze design baseline)

let test_remap_rotate_invariants () =
  let design, baseline = tiny_placed () in
  check_result design baseline (Remap.solve ~mode:Rotation.Rotate design baseline)

let test_remap_improves_tiny () =
  let design, baseline = tiny_placed () in
  let r = Remap.solve ~mode:Rotation.Rotate design baseline in
  Alcotest.(check bool) "improved" true r.Remap.improved;
  let imp = Mttf.improvement design ~baseline ~remapped:r.Remap.mapping in
  Alcotest.(check bool) "MTTF grows" true (imp > 1.3)

let test_remap_freeze_pins_hold () =
  let design, baseline = tiny_placed () in
  let r = Remap.solve ~mode:Rotation.Freeze design baseline in
  for ctx = 0 to Design.num_contexts design - 1 do
    List.iter
      (fun op ->
        Alcotest.(check int) "critical op frozen"
          (Mapping.pe_of baseline ~ctx ~op)
          (Mapping.pe_of r.Remap.mapping ~ctx ~op))
      (Rotation.critical_ops design baseline ~ctx)
  done

let test_rotate_not_worse_than_freeze () =
  List.iter
    (fun name ->
      let design, baseline = bench_placed name in
      let freeze_res, rotate_res = Remap.solve_both design baseline in
      Alcotest.(check bool)
        (name ^ ": rotate levels at least as well")
        true
        (Stress.max_accumulated design rotate_res.Remap.mapping
        <= Stress.max_accumulated design freeze_res.Remap.mapping +. 1e-9))
    [ "B1"; "B10" ]

let test_remap_monolithic_strategy () =
  let design, baseline = tiny_placed () in
  let params = { Remap.default_params with strategy = Remap.Monolithic } in
  check_result design baseline (Remap.solve ~params ~mode:Rotation.Freeze design baseline)

let test_remap_per_context_strategy () =
  let design, baseline = tiny_placed () in
  let params = { Remap.default_params with strategy = Remap.Per_context } in
  check_result design baseline (Remap.solve ~params ~mode:Rotation.Freeze design baseline)

let test_remap_null_objective () =
  let design, baseline = tiny_placed () in
  let params = { Remap.default_params with objective = Ilp_model.Null } in
  check_result design baseline (Remap.solve ~params ~mode:Rotation.Freeze design baseline)

let test_remap_exact_encoding () =
  let design, baseline = tiny_placed () in
  let params = { Remap.default_params with encoding = Ilp_model.Exact_abs } in
  check_result design baseline (Remap.solve ~params ~mode:Rotation.Rotate design baseline)

let test_remap_rejects_invalid_baseline () =
  let design, _ = tiny_placed () in
  let bad = Mapping.create (fun _ _ -> 0) design in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Remap.solve ~mode:Rotation.Freeze design bad);
       false
     with Invalid_argument _ -> true)

(* ---------- naive strawman ---------- *)

let test_naive_levels_but_valid () =
  let design, baseline = bench_placed "B10" in
  let naive = Naive.spread design baseline in
  Alcotest.(check bool) "valid" true (Mapping.validate design naive = Ok ());
  Alcotest.(check bool) "levels stress" true
    (Stress.max_accumulated design naive < Stress.max_accumulated design baseline)

let test_naive_breaks_cpd () =
  (* The whole point of the paper: naive spreading increases delay. *)
  let design, baseline = bench_placed "B10" in
  let naive = Naive.spread design baseline in
  Alcotest.(check bool) "CPD increased" true
    (Analysis.cpd design naive > Analysis.cpd design baseline +. 1e-9)

(* ---------- primary ILP ---------- *)

let test_primary_ilp_small_instance () =
  let design, baseline = tiny_placed () in
  let r = Primary_ilp.solve design baseline in
  Alcotest.(check bool) "has many binaries" true (r.Primary_ilp.binaries > 100);
  match r.Primary_ilp.mapping with
  | Some m ->
    Alcotest.(check bool) "valid" true (Mapping.validate design m = Ok ());
    Alcotest.(check bool) "objective sane" true
      (r.Primary_ilp.max_stress <= Stress.max_accumulated design baseline +. 1e-6)
  | None ->
    (* Budget exhaustion is an acceptable outcome for the unrelaxed
       formulation — that is the paper's point — but tiny should solve. *)
    Alcotest.fail "tiny primary ILP should solve"

let test_primary_ilp_larger_than_pruned () =
  let design, baseline = tiny_placed () in
  let full = Primary_ilp.solve design baseline in
  let _, frozen = Rotation.reference Rotation.Freeze design baseline in
  let monitored = Paths.monitored design baseline in
  let params = { Candidates.default_params with max_candidates = 6 } in
  let cands = Candidates.build ~params design baseline ~frozen ~monitored in
  let committed = Array.make 16 0.0 in
  let inst =
    Ilp_model.build design ~baseline ~st_target:10.0 ~candidates:cands ~monitored
      ~contexts:(List.init (Design.num_contexts design) (fun i -> i))
      ~committed
  in
  Alcotest.(check bool) "full formulation is bigger" true
    (full.Primary_ilp.binaries > Ilp_model.num_binaries inst)

(* ---------- refine ---------- *)

let refine_inputs design baseline =
  let reference, frozen = Rotation.reference Rotation.Freeze design baseline in
  ignore reference;
  let monitored = Paths.monitored design baseline in
  (frozen, monitored, Analysis.cpd design baseline)

let test_refine_never_worse () =
  let design, baseline = tiny_placed () in
  let frozen, monitored, baseline_cpd = refine_inputs design baseline in
  let refined, stats =
    Refine.improve design ~baseline_cpd ~frozen ~monitored baseline
  in
  Alcotest.(check bool) "valid" true (Mapping.validate design refined = Ok ());
  Alcotest.(check bool) "max stress not increased" true
    (stats.Refine.st_after <= stats.Refine.st_before +. 1e-9);
  Alcotest.(check bool) "reported st matches" true
    (abs_float (stats.Refine.st_after -. Stress.max_accumulated design refined) < 1e-9)

let test_refine_keeps_cpd () =
  let design, baseline = tiny_placed () in
  let frozen, monitored, baseline_cpd = refine_inputs design baseline in
  let refined, _ = Refine.improve design ~baseline_cpd ~frozen ~monitored baseline in
  Alcotest.(check bool) "CPD guarded" true
    (Analysis.cpd design refined <= baseline_cpd +. 1e-9)

let test_refine_keeps_pins () =
  let design, baseline = tiny_placed () in
  let frozen, monitored, baseline_cpd = refine_inputs design baseline in
  let refined, _ = Refine.improve design ~baseline_cpd ~frozen ~monitored baseline in
  Array.iteri
    (fun ctx pins ->
      List.iter
        (fun (op, pe) ->
          Alcotest.(check int) "pin kept" pe (Mapping.pe_of refined ~ctx ~op))
        pins)
    frozen

let test_refine_improves_concentrated () =
  (* On a freshly placed (concentrated) baseline refine should find
     at least one improving move. *)
  let design, baseline = bench_placed "B10" in
  let frozen, monitored, baseline_cpd = refine_inputs design baseline in
  let _, stats = Refine.improve design ~baseline_cpd ~frozen ~monitored baseline in
  Alcotest.(check bool) "made progress" true (stats.Refine.moves_accepted > 0);
  Alcotest.(check bool) "lowered hotspot" true
    (stats.Refine.st_after < stats.Refine.st_before -. 1e-9)

let test_refine_move_budget () =
  let design, baseline = bench_placed "B10" in
  let frozen, monitored, baseline_cpd = refine_inputs design baseline in
  let params = { Refine.default_params with max_moves = 3 } in
  let _, stats =
    Refine.improve ~params design ~baseline_cpd ~frozen ~monitored baseline
  in
  Alcotest.(check bool) "within budget" true (stats.Refine.moves_accepted <= 3)

(* ---------- related-work strategies ---------- *)

let test_related_configurations_preserve_cpd () =
  let design, baseline = tiny_placed () in
  let cpd = Analysis.cpd design baseline in
  let configs = Related.configurations design baseline ~n:8 in
  Alcotest.(check bool) "several configs" true (List.length configs >= 2);
  List.iter
    (fun m ->
      Alcotest.(check bool) "valid" true (Mapping.validate design m = Ok ());
      Alcotest.(check (float 1e-9)) "CPD preserved" cpd (Analysis.cpd design m))
    configs

let test_related_duty_conserves_total () =
  let design, baseline = tiny_placed () in
  let duty = Related.rotation_cycling_duty design baseline in
  let c = float_of_int (Design.num_contexts design) in
  let direct =
    Array.fold_left ( +. ) 0.0 (Stress.accumulated design baseline) /. c
  in
  Alcotest.(check (float 1e-9)) "total duty conserved" direct
    (Array.fold_left ( +. ) 0.0 duty)

let test_related_cycling_levels () =
  (* Averaging permutations of the same stress multiset can never
     raise the peak; on a low-utilization fabric (spare PEs to rotate
     into) it strictly lowers it. *)
  List.iter
    (fun (name, strict) ->
      let design, baseline = bench_placed name in
      let single =
        Array.map
          (fun s -> s /. float_of_int (Design.num_contexts design))
          (Stress.accumulated design baseline)
      in
      let cycled = Related.rotation_cycling_duty design baseline in
      let peak_single = Agingfp_util.Stats.fmax single in
      let peak_cycled = Agingfp_util.Stats.fmax cycled in
      Alcotest.(check bool) (name ^ " peak never raised") true
        (peak_cycled <= peak_single +. 1e-9);
      if strict then
        Alcotest.(check bool) (name ^ " strictly lowered") true
          (peak_cycled < peak_single -. 1e-9))
    [ ("B1", true); ("B10", false) ]

let test_related_milp_beats_cycling () =
  let design, baseline = bench_placed "B13" in
  let base = (Mttf_mod.of_mapping design baseline).Mttf_mod.mttf_s in
  let cycled =
    (Mttf_mod.of_duty design (Related.rotation_cycling_duty design baseline)).Mttf_mod.mttf_s
  in
  let r = Remap.solve ~mode:Rotation.Rotate design baseline in
  let ours = (Mttf_mod.of_mapping design r.Remap.mapping).Mttf_mod.mttf_s in
  Alcotest.(check bool) "MILP wins on spare fabric" true (ours > cycled);
  Alcotest.(check bool) "cycling still helps" true (cycled > base)

(* ---------- lifetime simulation ---------- *)

let test_lifetime_orderings () =
  let design, baseline = tiny_placed () in
  let remapped = (Remap.solve ~mode:Rotation.Rotate design baseline).Remap.mapping in
  let years o =
    match o.Lifetime.failed_at_years with Some y -> y | None -> infinity
  in
  let base = Lifetime.simulate design ~epochs:400 ~epoch_years:2.0 (Lifetime.Static baseline) in
  let aware = Lifetime.simulate design ~epochs:400 ~epoch_years:2.0 (Lifetime.Static remapped) in
  let periodic =
    Lifetime.simulate design ~epochs:400 ~epoch_years:2.0
      (Lifetime.wear_aware_strategy design ~baseline ~start:remapped)
  in
  Alcotest.(check bool) "aware outlives baseline" true (years aware > years base);
  Alcotest.(check bool) "periodic at least as good" true
    (years periodic >= years aware -. 2.0)

let test_lifetime_static_matches_mttf () =
  (* The epoch simulation of a static mapping must agree with the
     closed-form MTTF solve (up to epoch granularity). *)
  let design, baseline = tiny_placed () in
  let closed = (Mttf.of_mapping design baseline).Mttf.mttf_s /. 3.156e7 in
  let o =
    Lifetime.simulate design ~epochs:2000 ~epoch_years:0.5 (Lifetime.Static baseline)
  in
  match o.Lifetime.failed_at_years with
  | None -> Alcotest.fail "should fail within horizon"
  | Some y -> Alcotest.(check bool) "within 1%" true (abs_float (y -. closed) /. closed < 0.01)

let test_lifetime_survives_short_horizon () =
  let design, baseline = tiny_placed () in
  let o = Lifetime.simulate design ~epochs:2 ~epoch_years:0.5 (Lifetime.Static baseline) in
  Alcotest.(check bool) "survives" true (o.Lifetime.failed_at_years = None);
  Alcotest.(check int) "ran all epochs" 2 o.Lifetime.epochs_run;
  Alcotest.(check bool) "some wear accumulated" true
    (Array.fold_left ( +. ) 0.0 o.Lifetime.final_wear > 0.0)

let test_lifetime_periodic_mappings_delay_clean () =
  (* Every epoch's re-mapped floorplan must keep the CPD guarantee. *)
  let design, baseline = tiny_placed () in
  let remapped = (Remap.solve ~mode:Rotation.Rotate design baseline).Remap.mapping in
  let cpd0 = Analysis.cpd design baseline in
  let strategy = Lifetime.wear_aware_strategy design ~baseline ~start:remapped in
  (match strategy with
  | Lifetime.Periodic f ->
    let wear = Array.init 16 (fun i -> float_of_int i *. 1e7) in
    let m = f ~epoch:3 ~wear in
    Alcotest.(check bool) "valid" true (Mapping.validate design m = Ok ());
    Alcotest.(check bool) "delay clean" true (Analysis.cpd design m <= cpd0 +. 1e-9)
  | Lifetime.Static _ -> Alcotest.fail "expected periodic")

(* ---------- audit ---------- *)

let audit_has (r : Audit.report) code =
  List.exists (fun (v : Audit.violation) -> v.Audit.code = code) r.Audit.violations

(* Audit inputs matching what [Remap.solve] itself audits with. *)
let audit_inputs design baseline ~mode =
  let _, frozen = Rotation.reference mode design baseline in
  let monitored = Paths.monitored design baseline in
  (Analysis.cpd design baseline, frozen, monitored)

let test_audit_clean_remap () =
  let design, baseline = tiny_placed () in
  let r = Remap.solve ~mode:Rotation.Freeze design baseline in
  Alcotest.(check bool) "remap result carries a clean audit" true (Audit.ok r.Remap.audit);
  Alcotest.(check bool) "cpd recomputed" true
    (abs_float (r.Remap.audit.Audit.cpd_ns -. r.Remap.new_cpd_ns) < 1e-9)

let test_audit_baseline_against_own_figures () =
  (* The baseline audited against its own CPD and stress is clean. *)
  let design, baseline = tiny_placed () in
  let cpd = Analysis.cpd design baseline in
  let st = Stress.max_accumulated design baseline in
  let frozen = Array.make (Design.num_contexts design) [] in
  let monitored = Paths.monitored design baseline in
  let report = Audit.run design ~baseline_cpd:cpd ~st_target:st ~frozen ~monitored baseline in
  Alcotest.(check bool) "clean" true (Audit.ok report);
  Alcotest.(check bool) "paths were checked" true (report.Audit.paths_checked > 0)

let test_audit_rejects_double_bound_op () =
  (* Hand-break the mapping: put op 1 of context 0 on op 0's PE. *)
  let design, baseline = tiny_placed () in
  let cpd, frozen, monitored = audit_inputs design baseline ~mode:Rotation.Freeze in
  let st = Stress.max_accumulated design baseline in
  let broken =
    Mapping.set baseline ~ctx:0 ~op:1 ~pe:(Mapping.pe_of baseline ~ctx:0 ~op:0)
  in
  let report = Audit.run design ~baseline_cpd:cpd ~st_target:st ~frozen ~monitored broken in
  Alcotest.(check bool) "rejected" false (Audit.ok report);
  Alcotest.(check bool) "as Invalid_mapping" true (audit_has report Audit.Invalid_mapping)

let test_audit_rejects_out_of_range_pe () =
  let design, baseline = tiny_placed () in
  let cpd, frozen, monitored = audit_inputs design baseline ~mode:Rotation.Freeze in
  let st = Stress.max_accumulated design baseline in
  let broken = Mapping.set baseline ~ctx:0 ~op:0 ~pe:999 in
  let report = Audit.run design ~baseline_cpd:cpd ~st_target:st ~frozen ~monitored broken in
  Alcotest.(check bool) "rejected" false (Audit.ok report);
  Alcotest.(check bool) "as Invalid_mapping" true (audit_has report Audit.Invalid_mapping)

let test_audit_rejects_moved_pin_and_blown_path () =
  (* Swap a frozen critical op with whichever occupant stretches a
     monitored path through the op the most: still a valid
     permutation, but the pin is violated and the path's wire budget
     breaks. Picking the farthest PE *from the pin* is not enough —
     the far corner can be equidistant from the op's path neighbours,
     leaving the path length unchanged. *)
  let design, baseline = tiny_placed () in
  let cpd, frozen, monitored = audit_inputs design baseline ~mode:Rotation.Freeze in
  let st = Stress.max_accumulated design baseline in
  let fabric = Design.fabric design in
  (* The permutation-preserving swap of [op] (ctx [ctx], home [pe])
     onto PE [q]. *)
  let swap ctx op pe q =
    let occupant = ref None in
    Array.iteri
      (fun o p -> if p = q then occupant := Some o)
      (Mapping.context_array baseline ctx);
    let m = Mapping.set baseline ~ctx ~op ~pe:q in
    match !occupant with
    | Some o when o <> op -> Mapping.set m ~ctx ~op:o ~pe
    | _ -> m
  in
  (* Over every frozen pin on a multi-op monitored path, find the swap
     with the largest wire-budget overshoot. *)
  let best = ref None in
  Array.iteri
    (fun ctx pins ->
      List.iter
        (fun (op, pe) ->
          List.iter
            (fun (b : Paths.budgeted) ->
              let nodes = b.Paths.path.Analysis.nodes in
              if Array.length nodes >= 2 && Array.exists (( = ) op) nodes then
                for q = 0 to Fabric.num_pes fabric - 1 do
                  let over =
                    Analysis.wire_length design (swap ctx op pe q) b.Paths.path
                    - b.Paths.wire_budget
                  in
                  match !best with
                  | Some (_, best_over) when best_over >= over -> ()
                  | _ -> best := Some ((ctx, op, pe, q), over)
                done)
            monitored.(ctx))
        pins)
    frozen;
  let (ctx, op, pe, q), overshoot =
    match !best with
    | Some x -> x
    | None -> Alcotest.fail "no frozen pin on a monitored path in tiny"
  in
  Alcotest.(check bool) "a swap exceeding the wire budget exists" true (overshoot > 0);
  let broken = swap ctx op pe q in
  let report = Audit.run design ~baseline_cpd:cpd ~st_target:st ~frozen ~monitored broken in
  Alcotest.(check bool) "rejected" false (Audit.ok report);
  Alcotest.(check bool) "pin violation reported" true
    (audit_has report Audit.Frozen_pin_moved);
  Alcotest.(check bool) "path or CPD violation reported" true
    (audit_has report Audit.Path_over_budget || audit_has report Audit.Cpd_increased)

let test_audit_rejects_stress_over_budget () =
  (* An absurdly tight ST_target must be flagged, with the true max
     stress reported. *)
  let design, baseline = tiny_placed () in
  let cpd, frozen, monitored = audit_inputs design baseline ~mode:Rotation.Freeze in
  let report =
    Audit.run design ~baseline_cpd:cpd ~st_target:1e-6 ~frozen ~monitored baseline
  in
  Alcotest.(check bool) "rejected" false (Audit.ok report);
  Alcotest.(check bool) "as Stress_over_budget" true
    (audit_has report Audit.Stress_over_budget);
  Alcotest.(check (float 1e-9)) "true stress reported"
    (Stress.max_accumulated design baseline)
    report.Audit.max_stress

let test_remap_certify_clean () =
  (* The flow's own certificates: every LP/MILP check passes on tiny. *)
  let design, baseline = tiny_placed () in
  Remap.reset_certification ();
  let params = { Remap.default_params with Remap.certify = true } in
  let r = Remap.solve ~params ~mode:Rotation.Rotate design baseline in
  let c = Remap.certification () in
  Alcotest.(check int) "no rejections" 0 c.Remap.rejected;
  Alcotest.(check bool) "something was checked" true
    (c.Remap.lp_checked + c.Remap.milp_checked > 0);
  Alcotest.(check bool) "audit clean" true (Audit.ok r.Remap.audit)

(* ---------- properties ---------- *)

let prop_remap_never_breaks_cpd =
  QCheck2.Test.make ~name:"remap never increases CPD (random tiny designs)" ~count:8
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let spec =
        {
          Benchmarks.bname = "rand";
          contexts = 4;
          dim = 4;
          total_ops = 24 + (seed mod 16);
          usage = Benchmarks.Low;
          paper_freeze = 0.0;
          paper_rotate = 0.0;
        }
      in
      let design = Benchmarks.generate ~seed spec in
      let baseline = Placer.aging_unaware design in
      let r = Remap.solve ~mode:Rotation.Rotate design baseline in
      Mapping.validate design r.Remap.mapping = Ok ()
      && r.Remap.new_cpd_ns <= r.Remap.baseline_cpd_ns +. 1e-9)

let prop_rotation_reference_preserves_all_path_delays =
  QCheck2.Test.make ~name:"rotation reference preserves every monitored path delay"
    ~count:8
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let spec =
        {
          Benchmarks.bname = "rand";
          contexts = 4;
          dim = 4;
          total_ops = 28;
          usage = Benchmarks.Low;
          paper_freeze = 0.0;
          paper_rotate = 0.0;
        }
      in
      let design = Benchmarks.generate ~seed spec in
      let baseline = Placer.aging_unaware design in
      let reference, _ = Rotation.rotate_reference ~seed design baseline in
      let ok = ref true in
      for ctx = 0 to Design.num_contexts design - 1 do
        List.iter
          (fun (p : Analysis.path) ->
            if
              abs_float (Analysis.path_delay design reference p -. p.Analysis.delay_ns)
              > 1e-9
            then ok := false)
          (Analysis.monitored_paths design baseline ~ctx ())
      done;
      !ok)

let () =
  Alcotest.run "floorplan"
    [
      ( "rotation",
        [
          Alcotest.test_case "orientation counts rule" `Quick test_orientation_counts_rule;
          Alcotest.test_case "freeze pins original" `Quick test_freeze_plan_pins_original;
          Alcotest.test_case "freeze covers critical ops" `Quick
            test_freeze_plan_covers_critical_ops;
          Alcotest.test_case "rotate reference valid + CPD" `Quick
            test_rotate_reference_valid_and_cpd_preserving;
          Alcotest.test_case "pins match reference" `Quick test_rotate_pins_match_reference;
          Alcotest.test_case "overlap reduced" `Quick test_rotate_reduces_cp_overlap;
        ] );
      ( "paths",
        [
          Alcotest.test_case "budgets cover baseline" `Quick test_budgets_cover_baseline;
          Alcotest.test_case "critical slack zero" `Quick test_critical_path_slack_zero;
          Alcotest.test_case "Eq. 5 budgets" `Quick test_budget_respects_eq5;
        ] );
      ( "candidates",
        [
          Alcotest.test_case "frozen singleton" `Quick test_candidates_frozen_singleton;
          Alcotest.test_case "reference position present" `Quick
            test_candidates_contain_reference_position;
          Alcotest.test_case "cap respected" `Quick test_candidates_capped;
          Alcotest.test_case "no duplicates" `Quick test_candidates_distinct;
        ] );
      ( "ilp-model",
        [
          Alcotest.test_case "feasible at ST_up" `Quick test_model_feasible_at_st_up;
          Alcotest.test_case "infeasible below floor" `Quick
            test_model_infeasible_below_floor;
          Alcotest.test_case "extract valid" `Quick test_model_extract_valid;
        ] );
      ( "step1",
        [
          Alcotest.test_case "between mean and max" `Quick test_step1_between_mean_and_max;
          Alcotest.test_case "milp vs greedy" `Quick test_step1_milp_not_above_greedy;
        ] );
      ( "algorithm1",
        [
          Alcotest.test_case "freeze invariants" `Quick test_remap_freeze_invariants;
          Alcotest.test_case "rotate invariants" `Quick test_remap_rotate_invariants;
          Alcotest.test_case "improves tiny" `Quick test_remap_improves_tiny;
          Alcotest.test_case "freeze pins hold" `Quick test_remap_freeze_pins_hold;
          Alcotest.test_case "rotate >= freeze" `Slow test_rotate_not_worse_than_freeze;
          Alcotest.test_case "monolithic strategy" `Quick test_remap_monolithic_strategy;
          Alcotest.test_case "per-context strategy" `Quick test_remap_per_context_strategy;
          Alcotest.test_case "null objective" `Quick test_remap_null_objective;
          Alcotest.test_case "exact encoding" `Quick test_remap_exact_encoding;
          Alcotest.test_case "invalid baseline rejected" `Quick
            test_remap_rejects_invalid_baseline;
        ] );
      ( "naive",
        [
          Alcotest.test_case "levels but valid" `Quick test_naive_levels_but_valid;
          Alcotest.test_case "breaks CPD" `Quick test_naive_breaks_cpd;
        ] );
      ( "primary-ilp",
        [
          Alcotest.test_case "small instance" `Slow test_primary_ilp_small_instance;
          Alcotest.test_case "bigger than pruned" `Quick test_primary_ilp_larger_than_pruned;
        ] );
      ( "refine",
        [
          Alcotest.test_case "never worse" `Quick test_refine_never_worse;
          Alcotest.test_case "keeps CPD" `Quick test_refine_keeps_cpd;
          Alcotest.test_case "keeps pins" `Quick test_refine_keeps_pins;
          Alcotest.test_case "improves concentrated" `Quick
            test_refine_improves_concentrated;
          Alcotest.test_case "move budget" `Quick test_refine_move_budget;
        ] );
      ( "audit",
        [
          Alcotest.test_case "clean remap" `Quick test_audit_clean_remap;
          Alcotest.test_case "baseline self-consistent" `Quick
            test_audit_baseline_against_own_figures;
          Alcotest.test_case "double-bound op rejected" `Quick
            test_audit_rejects_double_bound_op;
          Alcotest.test_case "out-of-range PE rejected" `Quick
            test_audit_rejects_out_of_range_pe;
          Alcotest.test_case "moved pin + blown path rejected" `Quick
            test_audit_rejects_moved_pin_and_blown_path;
          Alcotest.test_case "stress over budget rejected" `Quick
            test_audit_rejects_stress_over_budget;
          Alcotest.test_case "remap --certify clean" `Quick test_remap_certify_clean;
        ] );
      ( "related",
        [
          Alcotest.test_case "configs preserve CPD" `Quick
            test_related_configurations_preserve_cpd;
          Alcotest.test_case "duty conserved" `Quick test_related_duty_conserves_total;
          Alcotest.test_case "cycling levels" `Quick test_related_cycling_levels;
          Alcotest.test_case "MILP beats cycling" `Slow test_related_milp_beats_cycling;
        ] );
      ( "lifetime",
        [
          Alcotest.test_case "strategy ordering" `Quick test_lifetime_orderings;
          Alcotest.test_case "static matches closed form" `Quick
            test_lifetime_static_matches_mttf;
          Alcotest.test_case "short horizon" `Quick test_lifetime_survives_short_horizon;
          Alcotest.test_case "periodic delay-clean" `Quick
            test_lifetime_periodic_mappings_delay_clean;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_remap_never_breaks_cpd;
          QCheck_alcotest.to_alcotest prop_rotation_reference_preserves_all_path_delays;
        ] );
    ]
