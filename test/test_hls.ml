(* Tests for the HLS front-end: parser, elaboration (constant folding,
   error reporting) and the context scheduler. *)

open Agingfp_cgrra
module Parser = Agingfp_hls.Parser
module Compile = Agingfp_hls.Compile
module Ast = Agingfp_hls.Ast
module Techmap = Agingfp_hls.Techmap
module Graph = Agingfp_hls.Graph

let ok_parse src =
  match Parser.parse src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "parse error: %s" msg

let ok_graph src =
  match Compile.elaborate (ok_parse src) with
  | Ok g -> g
  | Error msg -> Alcotest.failf "elaborate error: %s" msg

let count_kind (g : Compile.graph) kind =
  Array.fold_left (fun acc (o : Op.t) -> if o.Op.kind = kind then acc + 1 else acc) 0 g.ops

(* ---------- parser ---------- *)

let test_parse_inputs () =
  match ok_parse "input a, b : 16, c;" with
  | [ Ast.Input ("a", 32); Ast.Input ("b", 16); Ast.Input ("c", 32) ] -> ()
  | _ -> Alcotest.fail "unexpected AST"

let test_parse_precedence () =
  (* a + b * c parses as a + (b * c). *)
  match ok_parse "input a, b, c; output y = a + b * c;" with
  | [ _; _; _; Ast.Output ("y", Ast.Binop (Ast.Add, Ast.Var "a", Ast.Binop (Ast.Mul, _, _))) ]
    -> ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parse_parentheses () =
  match ok_parse "input a, b, c; output y = (a + b) * c;" with
  | [ _; _; _; Ast.Output (_, Ast.Binop (Ast.Mul, Ast.Binop (Ast.Add, _, _), _)) ] -> ()
  | _ -> Alcotest.fail "parentheses ignored"

let test_parse_ternary () =
  match ok_parse "input a, b; output y = a > b ? a : b;" with
  | [ _; _; Ast.Output (_, Ast.Select (Ast.Binop (Ast.Gt, _, _), _, _)) ] -> ()
  | _ -> Alcotest.fail "ternary wrong"

let test_parse_shift_ops () =
  match ok_parse "input a; output y = a << 2 >> 1;" with
  | [ _; Ast.Output (_, Ast.Binop (Ast.Shr, Ast.Binop (Ast.Shl, _, _), _)) ] -> ()
  | _ -> Alcotest.fail "shift associativity wrong"

let test_parse_comments () =
  let p = ok_parse "// leading comment\ninput a; // trailing\noutput y = a + 1;" in
  Alcotest.(check int) "two stmts" 2 (List.length p)

let test_parse_negative_literal () =
  match ok_parse "input a; output y = a + -3;" with
  | [ _; Ast.Output (_, Ast.Binop (Ast.Add, _, Ast.Int (-3))) ] -> ()
  | _ -> Alcotest.fail "negative literal"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_parse_error_line_number () =
  match Parser.parse "input a;\noutput y = ;" with
  | Error msg ->
    Alcotest.(check bool) "mentions line 2" true (contains msg "line 2")
  | Ok _ -> Alcotest.fail "should fail"

let test_parse_unknown_char () =
  Alcotest.(check bool) "rejects @" true (Result.is_error (Parser.parse "input a @;"))

(* ---------- elaboration ---------- *)

let test_elab_counts () =
  let g = ok_graph "input a, b; let t = a * b; output y = t + 1;" in
  Alcotest.(check int) "inputs" 2 (count_kind g Op.Input);
  Alcotest.(check int) "outputs" 1 (count_kind g Op.Output);
  Alcotest.(check int) "muls" 1 (count_kind g Op.Mul);
  Alcotest.(check int) "adds" 1 (count_kind g Op.Add)

let test_elab_constant_folding () =
  (* 2 * 3 + 4 folds away entirely; only the op consuming `a` remains. *)
  let g = ok_graph "input a; output y = a + (2 * 3 + 4);" in
  Alcotest.(check int) "single add" 1 (count_kind g Op.Add);
  Alcotest.(check int) "no mul nodes" 0 (count_kind g Op.Mul)

let test_elab_select_const_cond () =
  let g = ok_graph "input a, b; output y = 1 ? a : b;" in
  Alcotest.(check int) "no mux" 0 (count_kind g Op.Mux)

let test_elab_select_dynamic () =
  let g = ok_graph "input a, b; output y = (a > b) ? a : b;" in
  Alcotest.(check int) "one mux" 1 (count_kind g Op.Mux);
  Alcotest.(check int) "one cmp" 1 (count_kind g Op.Cmp)

let test_elab_undefined () =
  match Compile.elaborate (ok_parse "output y = q + 1;") with
  | Error msg -> Alcotest.(check bool) "mentions q" true (contains msg "q")
  | Ok _ -> Alcotest.fail "should fail"

let test_elab_duplicate () =
  Alcotest.(check bool) "duplicate rejected" true
    (Result.is_error (Compile.elaborate (ok_parse "input a; let a = 1;")))

let test_elab_constant_output () =
  Alcotest.(check bool) "constant output rejected" true
    (Result.is_error (Compile.elaborate (ok_parse "input a; output y = 2 + 3;")))

let test_elab_bitwidths_propagate () =
  let g = ok_graph "input a : 8, b : 24; output y = a + b;" in
  let add =
    Array.to_list g.Compile.ops |> List.find (fun (o : Op.t) -> o.Op.kind = Op.Add)
  in
  Alcotest.(check int) "max width" 24 add.Op.bitwidth

(* ---------- scheduling ---------- *)

let compile_ok ?(dim = 4) src =
  match Compile.compile ~fabric:(Fabric.create ~dim) ~name:"t" src with
  | Ok d -> d
  | Error msg -> Alcotest.failf "compile error: %s" msg

let test_schedule_respects_capacity () =
  (* 20 independent adds cannot fit a 2x2 fabric in one context. *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf "input a, b;\n";
  for i = 0 to 19 do
    Buffer.add_string buf (Printf.sprintf "output y%d = a + b;\n" i)
  done;
  let d = compile_ok ~dim:2 (Buffer.contents buf) in
  Alcotest.(check bool) "multiple contexts" true (Design.num_contexts d > 1);
  Array.iter
    (fun dfg ->
      Alcotest.(check bool) "fits" true (Dfg.num_ops dfg <= 4))
    (Design.contexts d)

let test_schedule_respects_clock () =
  (* A long dependent chain must split across contexts: each context's
     internal path delay stays within the clock period. *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf "input a;\nlet t0 = a + 1;\n";
  for i = 1 to 14 do
    Buffer.add_string buf (Printf.sprintf "let t%d = t%d * 3;\n" i (i - 1))
  done;
  Buffer.add_string buf "output y = t14;\n";
  let d = compile_ok ~dim:4 (Buffer.contents buf) in
  Alcotest.(check bool) "chain split" true (Design.num_contexts d > 1);
  (* Static bound: per-context PE delays along any path fit the clock. *)
  let chars = Design.chars d in
  Array.iter
    (fun dfg ->
      let n = Dfg.num_ops dfg in
      let delay = Array.make n 0.0 in
      Array.iter
        (fun v ->
          let own = Chars.pe_delay_ns chars (Dfg.op dfg v) in
          let best =
            List.fold_left (fun acc p -> max acc delay.(p)) 0.0 (Dfg.preds dfg v)
          in
          delay.(v) <- own +. best)
        (Dfg.topological_order dfg);
      Array.iter
        (fun dl ->
          Alcotest.(check bool) "PE delays within clock" true
            (dl <= chars.Chars.clock_period_ns))
        delay)
    (Design.contexts d)

let test_schedule_dependencies_ordered () =
  (* A consumer never lands in an earlier context than its producer:
     verified structurally — every context DFG is acyclic (guaranteed)
     and the design compiles; spot-check edge counts. *)
  let d = compile_ok "input a, b; let t = a * b; let u = t + a; output y = u >> 1;" in
  let total_edges =
    Array.fold_left (fun acc dfg -> acc + Dfg.num_edges dfg) 0 (Design.contexts d)
  in
  Alcotest.(check bool) "has intra-context edges" true (total_edges > 0)

let test_schedule_single_context_small () =
  let d = compile_ok "input a, b; output y = a + b;" in
  Alcotest.(check int) "one context" 1 (Design.num_contexts d)

let test_compile_parse_error_propagates () =
  Alcotest.(check bool) "propagates" true
    (Result.is_error
       (Compile.compile ~fabric:(Fabric.create ~dim:4) ~name:"t" "output y = ;"))

(* ---------- technology mapping ---------- *)

let test_techmap_fuses_alu_into_dmu () =
  (* a * b feeds only a shift: one fusible pair. *)
  let g = ok_graph "input a, b; output y = (a * b) >> 3;" in
  let pairs = Techmap.fusible_pairs g in
  Alcotest.(check int) "one pair" 1 (List.length pairs);
  let g2, fused = Techmap.fuse g in
  Alcotest.(check int) "fused count" 1 fused;
  Alcotest.(check int) "one op fewer"
    (Array.length g.Graph.ops - 1)
    (Array.length g2.Graph.ops);
  Alcotest.(check int) "fused node present" 1 (count_kind g2 Op.Fused);
  Alcotest.(check int) "mul gone" 0 (count_kind g2 Op.Mul)

let test_techmap_multi_consumer_not_fused () =
  (* The product feeds two consumers: fusing would duplicate it. *)
  let g = ok_graph "input a, b; let t = a * b; output y = t >> 1; output z = t >> 2;" in
  Alcotest.(check int) "no pairs" 0 (List.length (Techmap.fusible_pairs g))

let test_techmap_alu_to_alu_not_fused () =
  let g = ok_graph "input a, b; output y = (a + b) * 3;" in
  (* add feeds mul (both ALU): not fusible; output is IO so mul->output
     is not fusible either. *)
  Alcotest.(check int) "no pairs" 0 (List.length (Techmap.fusible_pairs g))

let test_techmap_preserves_io_counts () =
  let g = ok_graph "input a, b, c; output y = ((a + b) >> 1) ^ c;" in
  let g2, _ = Techmap.fuse g in
  Alcotest.(check int) "inputs kept" (count_kind g Op.Input) (count_kind g2 Op.Input);
  Alcotest.(check int) "outputs kept" (count_kind g Op.Output) (count_kind g2 Op.Output)

let test_techmap_compile_end_to_end () =
  let src = "input a : 16, b : 16; output y = (a * b) >> 4;" in
  let plain =
    Result.get_ok (Compile.compile ~fabric:(Fabric.create ~dim:4) ~name:"t" src)
  in
  let mapped =
    Result.get_ok
      (Compile.compile ~techmap:true ~fabric:(Fabric.create ~dim:4) ~name:"t" src)
  in
  Alcotest.(check bool) "fewer ops" true
    (Design.total_ops mapped < Design.total_ops plain)

let test_techmap_fused_delay_in_series () =
  let c = Chars.default in
  let fused = Op.make ~id:0 ~kind:Op.Fused ~bitwidth:32 in
  Alcotest.(check (float 1e-9)) "alu + dmu in series"
    (c.Chars.alu_delay_ns +. c.Chars.dmu_delay_ns)
    (Chars.pe_delay_ns c fused)

(* ---------- properties ---------- *)

(* Random program generator: a chain of lets over two inputs. *)
let random_program seed =
  let rng = Agingfp_util.Rng.create seed in
  let ops = [| "+"; "-"; "*"; "&"; "|"; "^" |] in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "input a : 16, b : 16;\n";
  let nlets = 1 + Agingfp_util.Rng.int rng 12 in
  for i = 0 to nlets - 1 do
    let prev1 = if i = 0 then "a" else Printf.sprintf "t%d" (Agingfp_util.Rng.int rng i) in
    let prev2 = if Agingfp_util.Rng.bool rng then "b" else prev1 in
    Buffer.add_string buf
      (Printf.sprintf "let t%d = %s %s %s;\n" i prev1
         (Agingfp_util.Rng.pick rng ops)
         prev2)
  done;
  Buffer.add_string buf (Printf.sprintf "output y = t%d;\n" (nlets - 1));
  Buffer.contents buf

let prop_random_programs_compile =
  QCheck2.Test.make ~name:"random straight-line programs compile to valid designs"
    ~count:100 QCheck2.Gen.int (fun seed ->
      let src = random_program seed in
      match Compile.compile ~fabric:(Fabric.create ~dim:4) ~name:"rand" src with
      | Error _ -> false
      | Ok d ->
        Design.num_contexts d >= 1
        && Array.for_all
             (fun dfg -> Dfg.num_ops dfg <= 16 && Dfg.num_ops dfg > 0)
             (Design.contexts d))

let prop_parse_print_parse_roundtrip =
  QCheck2.Test.make ~name:"parse . print . parse is identity" ~count:100 QCheck2.Gen.int
    (fun seed ->
      let src = random_program seed in
      match Parser.parse src with
      | Error _ -> false
      | Ok p1 -> (
        let printed = Format.asprintf "%a" Ast.pp_program p1 in
        match Parser.parse printed with Ok p2 -> p1 = p2 | Error _ -> false))

let () =
  Alcotest.run "hls"
    [
      ( "parser",
        [
          Alcotest.test_case "inputs" `Quick test_parse_inputs;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "parentheses" `Quick test_parse_parentheses;
          Alcotest.test_case "ternary" `Quick test_parse_ternary;
          Alcotest.test_case "shifts" `Quick test_parse_shift_ops;
          Alcotest.test_case "comments" `Quick test_parse_comments;
          Alcotest.test_case "negative literal" `Quick test_parse_negative_literal;
          Alcotest.test_case "error line number" `Quick test_parse_error_line_number;
          Alcotest.test_case "unknown char" `Quick test_parse_unknown_char;
        ] );
      ( "elaboration",
        [
          Alcotest.test_case "op counts" `Quick test_elab_counts;
          Alcotest.test_case "constant folding" `Quick test_elab_constant_folding;
          Alcotest.test_case "const select" `Quick test_elab_select_const_cond;
          Alcotest.test_case "dynamic select" `Quick test_elab_select_dynamic;
          Alcotest.test_case "undefined name" `Quick test_elab_undefined;
          Alcotest.test_case "duplicate name" `Quick test_elab_duplicate;
          Alcotest.test_case "constant output" `Quick test_elab_constant_output;
          Alcotest.test_case "bitwidth propagation" `Quick test_elab_bitwidths_propagate;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "capacity respected" `Quick test_schedule_respects_capacity;
          Alcotest.test_case "clock respected" `Quick test_schedule_respects_clock;
          Alcotest.test_case "dependencies ordered" `Quick
            test_schedule_dependencies_ordered;
          Alcotest.test_case "small fits one context" `Quick
            test_schedule_single_context_small;
          Alcotest.test_case "parse errors propagate" `Quick
            test_compile_parse_error_propagates;
        ] );
      ( "techmap",
        [
          Alcotest.test_case "fuses ALU into DMU" `Quick test_techmap_fuses_alu_into_dmu;
          Alcotest.test_case "multi-consumer kept" `Quick
            test_techmap_multi_consumer_not_fused;
          Alcotest.test_case "ALU->ALU kept" `Quick test_techmap_alu_to_alu_not_fused;
          Alcotest.test_case "io preserved" `Quick test_techmap_preserves_io_counts;
          Alcotest.test_case "end to end" `Quick test_techmap_compile_end_to_end;
          Alcotest.test_case "fused delay" `Quick test_techmap_fused_delay_in_series;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_random_programs_compile;
          QCheck_alcotest.to_alcotest prop_parse_print_parse_roundtrip;
        ] );
    ]
