(* Integration tests: the whole pipeline (DSL/HLS or generated
   benchmarks -> placement -> timing -> Algorithm 1 -> thermal ->
   MTTF), cross-checking module contracts against each other. *)

open Agingfp_cgrra
module Compile = Agingfp_hls.Compile
module Placer = Agingfp_place.Placer
module Analysis = Agingfp_timing.Analysis
module Thermal = Agingfp_thermal.Model
module Mttf = Agingfp_aging.Mttf
module Remap = Agingfp_floorplan.Remap
module Rotation = Agingfp_floorplan.Rotation

let pipeline design =
  let baseline = Placer.aging_unaware design in
  let freeze_res, rotate_res = Remap.solve_both design baseline in
  (baseline, freeze_res, rotate_res)

let full_check name design =
  let baseline, freeze_res, rotate_res = pipeline design in
  List.iter
    (fun (mname, (r : Remap.result)) ->
      let tag = Printf.sprintf "%s/%s" name mname in
      Alcotest.(check bool) (tag ^ " mapping valid") true
        (Mapping.validate design r.Remap.mapping = Ok ());
      Alcotest.(check bool) (tag ^ " CPD guarded") true
        (Analysis.cpd design r.Remap.mapping <= Analysis.cpd design baseline +. 1e-9);
      let imp = Mttf.improvement design ~baseline ~remapped:r.Remap.mapping in
      Alcotest.(check bool) (tag ^ " MTTF not reduced") true (imp >= 1.0 -. 1e-9))
    [ ("freeze", freeze_res); ("rotate", rotate_res) ];
  (baseline, rotate_res)

(* ---------- end-to-end on the DSL path ---------- *)

let dsl_kernel =
  {|
input a : 16, b : 16, c : 16, d : 16;
let s1 = a * 3 + b * 5;
let s2 = c * 7 + d * 9;
let m = (s1 > s2) ? s1 : s2;
let f = (s1 & s2) ^ (s1 | s2);
output hi = m >> 1;
output lo = f + m;
|}

let test_dsl_to_mttf () =
  match Compile.compile ~fabric:(Fabric.create ~dim:4) ~name:"kernel" dsl_kernel with
  | Error msg -> Alcotest.failf "compile: %s" msg
  | Ok design ->
    let _, rotate_res = full_check "dsl" design in
    Alcotest.(check bool) "some improvement attempted" true
      (rotate_res.Remap.st_target <= rotate_res.Remap.st_up +. 1e-9)

let test_generated_suite_small () =
  List.iter
    (fun name ->
      let design = Benchmarks.generate (Option.get (Benchmarks.find name)) in
      ignore (full_check name design))
    [ "B1"; "B10"; "B19" ]

let test_eight_context_benchmark () =
  let design = Benchmarks.generate (Option.get (Benchmarks.find "B13")) in
  let baseline, rotate_res = full_check "B13" design in
  let imp = Mttf.improvement design ~baseline ~remapped:rotate_res.Remap.mapping in
  (* The paper reports 2.36x; the shape target is >1.5x on this class. *)
  Alcotest.(check bool) "C8 medium improves >1.5x" true (imp > 1.5)

(* ---------- cross-module consistency ---------- *)

let test_stress_thermal_mttf_chain () =
  (* Reducing max accumulated stress must not raise the peak
     temperature or reduce MTTF. *)
  let design = Benchmarks.tiny () in
  let baseline = Placer.aging_unaware design in
  let r = Remap.solve ~mode:Rotation.Rotate design baseline in
  let peak m = Agingfp_util.Stats.fmax (Thermal.pe_temperatures design m) in
  Alcotest.(check bool) "peak temperature drops" true
    (peak r.Remap.mapping <= peak baseline +. 1e-9);
  let before = (Mttf.of_mapping design baseline).Mttf.mttf_s in
  let after = (Mttf.of_mapping design r.Remap.mapping).Mttf.mttf_s in
  Alcotest.(check bool) "MTTF extends" true (after >= before)

let test_improvement_matches_breakdowns () =
  let design = Benchmarks.tiny () in
  let baseline = Placer.aging_unaware design in
  let r = Remap.solve ~mode:Rotation.Freeze design baseline in
  let imp = Mttf.improvement design ~baseline ~remapped:r.Remap.mapping in
  let before = (Mttf.of_mapping design baseline).Mttf.mttf_s in
  let after = (Mttf.of_mapping design r.Remap.mapping).Mttf.mttf_s in
  Alcotest.(check (float 1e-9)) "ratio consistent" (after /. before) imp

let test_determinism_end_to_end () =
  let run () =
    let design = Benchmarks.generate (Option.get (Benchmarks.find "B1")) in
    let baseline = Placer.aging_unaware design in
    let r = Remap.solve ~mode:Rotation.Rotate design baseline in
    (Stress.max_accumulated design r.Remap.mapping, r.Remap.st_target)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "deterministic" true (a = b)

let test_remap_conserves_stress_total () =
  (* Re-binding moves stress around; it cannot create or destroy it. *)
  let design = Benchmarks.tiny () in
  let baseline = Placer.aging_unaware design in
  let r = Remap.solve ~mode:Rotation.Rotate design baseline in
  let total m = Array.fold_left ( +. ) 0.0 (Stress.accumulated design m) in
  Alcotest.(check (float 1e-9)) "conserved" (total baseline) (total r.Remap.mapping)

let test_remap_respects_st_target () =
  let design = Benchmarks.tiny () in
  let baseline = Placer.aging_unaware design in
  let r = Remap.solve ~mode:Rotation.Rotate design baseline in
  if r.Remap.improved then
    Alcotest.(check bool) "max stress within accepted target" true
      (Stress.max_accumulated design r.Remap.mapping <= r.Remap.st_target +. 1e-6)

let test_techmap_pipeline () =
  (* Technology-mapped designs run the whole flow too; fusion reduces
     the op count, and the delay guarantee still holds. *)
  let src =
    "input a : 16, b : 16, c : 16; let t = (a * b) >> 3; let u = (b + c) >> 2;\n\
     output y = t + u;"
  in
  let fabric () = Fabric.create ~dim:4 in
  let plain = Result.get_ok (Compile.compile ~fabric:(fabric ()) ~name:"k" src) in
  let mapped =
    Result.get_ok (Compile.compile ~techmap:true ~fabric:(fabric ()) ~name:"k" src)
  in
  Alcotest.(check bool) "fusion shrinks design" true
    (Design.total_ops mapped < Design.total_ops plain);
  let baseline = Placer.aging_unaware mapped in
  let r = Remap.solve ~mode:Rotation.Freeze mapped baseline in
  Alcotest.(check bool) "valid" true (Mapping.validate mapped r.Remap.mapping = Ok ());
  Alcotest.(check bool) "delay clean" true
    (r.Remap.new_cpd_ns <= r.Remap.baseline_cpd_ns +. 1e-9)

let test_serialization_through_flow () =
  (* Archive the accepted floorplan, reload it, and get the exact same
     MTTF — the workflow a production tool needs. *)
  let design = Benchmarks.tiny () in
  let baseline = Placer.aging_unaware design in
  let r = Remap.solve ~mode:Rotation.Rotate design baseline in
  let text = Serial.mapping_to_string r.Remap.mapping in
  match Serial.mapping_of_string text with
  | Error msg -> Alcotest.fail msg
  | Ok reloaded ->
    Alcotest.(check bool) "valid against design" true
      (Mapping.validate design reloaded = Ok ());
    let m1 = (Mttf.of_mapping design r.Remap.mapping).Mttf.mttf_s in
    let m2 = (Mttf.of_mapping design reloaded).Mttf.mttf_s in
    Alcotest.(check (float 1e-9)) "identical MTTF" m1 m2

(* ---------- properties ---------- *)

let prop_pipeline_on_random_dsl =
  QCheck2.Test.make ~name:"random DSL programs survive the full pipeline" ~count:20
    QCheck2.Gen.int
    (fun seed ->
      let rng = Agingfp_util.Rng.create seed in
      let buf = Buffer.create 256 in
      Buffer.add_string buf "input a : 16, b : 16;\n";
      let n = 2 + Agingfp_util.Rng.int rng 8 in
      for i = 0 to n - 1 do
        let src1 = if i = 0 then "a" else Printf.sprintf "t%d" (Agingfp_util.Rng.int rng i) in
        let op = Agingfp_util.Rng.pick rng [| "+"; "*"; "&"; "^" |] in
        Buffer.add_string buf (Printf.sprintf "let t%d = %s %s b;\n" i src1 op)
      done;
      Buffer.add_string buf (Printf.sprintf "output y = t%d;\n" (n - 1));
      match
        Compile.compile ~fabric:(Fabric.create ~dim:4) ~name:"p" (Buffer.contents buf)
      with
      | Error _ -> false
      | Ok design ->
        let baseline = Placer.aging_unaware design in
        let r = Remap.solve ~mode:Rotation.Freeze design baseline in
        Mapping.validate design r.Remap.mapping = Ok ()
        && Analysis.cpd design r.Remap.mapping
           <= Analysis.cpd design baseline +. 1e-9)

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "DSL to MTTF" `Quick test_dsl_to_mttf;
          Alcotest.test_case "generated suite (4x4)" `Slow test_generated_suite_small;
          Alcotest.test_case "eight contexts" `Slow test_eight_context_benchmark;
        ] );
      ( "tooling",
        [
          Alcotest.test_case "techmap pipeline" `Quick test_techmap_pipeline;
          Alcotest.test_case "serialize/reload floorplan" `Quick
            test_serialization_through_flow;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "stress->thermal->mttf chain" `Quick
            test_stress_thermal_mttf_chain;
          Alcotest.test_case "improvement ratio" `Quick test_improvement_matches_breakdowns;
          Alcotest.test_case "determinism" `Quick test_determinism_end_to_end;
          Alcotest.test_case "stress conserved" `Quick test_remap_conserves_stress_total;
          Alcotest.test_case "ST_target respected" `Quick test_remap_respects_st_target;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_pipeline_on_random_dsl ] );
    ]
