(* Tests for the LP/MILP substrate: hand-checked LPs, brute-force
   cross-validation on random instances, and the paper's two-step
   relax-and-fix driver. *)

module Expr = Agingfp_lp.Expr
module Model = Agingfp_lp.Model
module Simplex = Agingfp_lp.Simplex
module Milp = Agingfp_lp.Milp
module Presolve = Agingfp_lp.Presolve
module Basis = Agingfp_lp.Basis
module Lp_format = Agingfp_lp.Lp_format
module Analyze = Agingfp_lp.Analyze
module Certify = Agingfp_lp.Certify
module Cuts = Agingfp_lp.Cuts
module Heuristics = Agingfp_lp.Heuristics
module Rng = Agingfp_util.Rng

let get_optimal = function
  | Simplex.Optimal s -> s
  | st -> Alcotest.failf "expected optimal, got %a" Simplex.pp_status st

let get_feasible = function
  | Milp.Feasible s -> s
  | r -> Alcotest.failf "expected feasible, got %a" Milp.pp_result r

let check_obj msg expected sol =
  Alcotest.(check (float 1e-6)) msg expected sol.Simplex.objective

(* ---------- Expr ---------- *)

let test_expr_algebra () =
  let e = Expr.add (Expr.var ~coef:2.0 0) (Expr.var ~coef:3.0 1) in
  let e = Expr.add_term e 1.0 0 in
  Alcotest.(check (float 0.)) "coef 0" 3.0 (Expr.coef e 0);
  Alcotest.(check (float 0.)) "coef 1" 3.0 (Expr.coef e 1);
  Alcotest.(check (float 0.)) "coef absent" 0.0 (Expr.coef e 5);
  let e2 = Expr.sub e (Expr.var ~coef:3.0 1) in
  Alcotest.(check int) "term dropped" 1 (List.length (Expr.terms e2))

let test_expr_eval () =
  let e = Expr.add (Expr.var ~coef:2.0 0) (Expr.const 5.0) in
  Alcotest.(check (float 0.)) "eval" 11.0 (Expr.eval (fun _ -> 3.0) e)

let test_expr_scale () =
  let e = Expr.scale 2.0 (Expr.add (Expr.var 0) (Expr.const 1.0)) in
  Alcotest.(check (float 0.)) "coef" 2.0 (Expr.coef e 0);
  Alcotest.(check (float 0.)) "const" 2.0 (Expr.constant e)

(* ---------- Simplex: textbook cases ---------- *)

(* max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> obj 36 at (2,6) *)
let test_lp_dantzig () =
  let m = Model.create () in
  let x = Model.add_var m and y = Model.add_var m in
  ignore (Model.add_constraint m (Expr.var x) Model.Le 4.0);
  ignore (Model.add_constraint m (Expr.var ~coef:2.0 y) Model.Le 12.0);
  ignore
    (Model.add_constraint m
       (Expr.add (Expr.var ~coef:3.0 x) (Expr.var ~coef:2.0 y))
       Model.Le 18.0);
  Model.set_objective m Model.Maximize
    (Expr.add (Expr.var ~coef:3.0 x) (Expr.var ~coef:5.0 y));
  let s = get_optimal (Simplex.solve m) in
  check_obj "objective" 36.0 s;
  Alcotest.(check (float 1e-6)) "x" 2.0 s.values.(x);
  Alcotest.(check (float 1e-6)) "y" 6.0 s.values.(y)

(* min x + y s.t. x + 2y >= 4, 3x + y >= 6 -> (1.6, 1.2), obj 2.8 *)
let test_lp_ge_rows () =
  let m = Model.create () in
  let x = Model.add_var m and y = Model.add_var m in
  ignore
    (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var ~coef:2.0 y)) Model.Ge 4.0);
  ignore
    (Model.add_constraint m (Expr.add (Expr.var ~coef:3.0 x) (Expr.var y)) Model.Ge 6.0);
  Model.set_objective m Model.Minimize (Expr.add (Expr.var x) (Expr.var y));
  let s = get_optimal (Simplex.solve m) in
  check_obj "objective" 2.8 s

(* Equality rows: min 2x + y s.t. x + y = 3, x - y = 1 -> x=2, y=1, obj 5 *)
let test_lp_eq_rows () =
  let m = Model.create () in
  let x = Model.add_var m and y = Model.add_var m in
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Eq 3.0);
  ignore (Model.add_constraint m (Expr.sub (Expr.var x) (Expr.var y)) Model.Eq 1.0);
  Model.set_objective m Model.Minimize (Expr.add (Expr.var ~coef:2.0 x) (Expr.var y));
  let s = get_optimal (Simplex.solve m) in
  check_obj "objective" 5.0 s;
  Alcotest.(check (float 1e-6)) "x" 2.0 s.values.(x)

let test_lp_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m in
  ignore (Model.add_constraint m (Expr.var x) Model.Le 1.0);
  ignore (Model.add_constraint m (Expr.var x) Model.Ge 2.0);
  match Simplex.solve m with
  | Simplex.Infeasible -> ()
  | st -> Alcotest.failf "expected infeasible, got %a" Simplex.pp_status st

let test_lp_unbounded () =
  let m = Model.create () in
  let x = Model.add_var m in
  ignore (Model.add_constraint m (Expr.var x) Model.Ge 1.0);
  Model.set_objective m Model.Maximize (Expr.var x);
  match Simplex.solve m with
  | Simplex.Unbounded -> ()
  | st -> Alcotest.failf "expected unbounded, got %a" Simplex.pp_status st

let test_lp_bounded_vars () =
  (* Bounds are handled implicitly, not as rows. max x + y with
     x in [1, 2], y in [0, 3], x + y <= 4 -> obj 4 precisely. *)
  let m = Model.create () in
  let x = Model.add_var ~lb:1.0 ~ub:2.0 m in
  let y = Model.add_var ~lb:0.0 ~ub:3.0 m in
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Le 4.0);
  Model.set_objective m Model.Maximize (Expr.add (Expr.var x) (Expr.var y));
  let s = get_optimal (Simplex.solve m) in
  check_obj "objective" 4.0 s

let test_lp_fixed_var () =
  let m = Model.create () in
  let x = Model.add_var ~ub:10.0 m and y = Model.add_var ~ub:10.0 m in
  Model.fix_var m x 3.0;
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Le 5.0);
  Model.set_objective m Model.Maximize (Expr.add (Expr.var x) (Expr.var y));
  let s = get_optimal (Simplex.solve m) in
  Alcotest.(check (float 1e-6)) "x pinned" 3.0 s.values.(x);
  check_obj "objective" 5.0 s

let test_lp_negative_rhs () =
  (* -x <= -2 i.e. x >= 2; min x -> 2. *)
  let m = Model.create () in
  let x = Model.add_var m in
  ignore (Model.add_constraint m (Expr.var ~coef:(-1.0) x) Model.Le (-2.0));
  Model.set_objective m Model.Minimize (Expr.var x);
  let s = get_optimal (Simplex.solve m) in
  check_obj "objective" 2.0 s

let test_lp_free_variable () =
  (* Free variable can go negative: min y s.t. y >= x - 4, x = 1 -> y = -3. *)
  let m = Model.create () in
  let x = Model.add_var m in
  let y = Model.add_var ~lb:neg_infinity m in
  ignore (Model.add_constraint m (Expr.var x) Model.Eq 1.0);
  ignore (Model.add_constraint m (Expr.sub (Expr.var y) (Expr.var x)) Model.Ge (-4.0));
  Model.set_objective m Model.Minimize (Expr.var y);
  let s = get_optimal (Simplex.solve m) in
  check_obj "objective" (-3.0) s

let test_lp_no_constraints () =
  let m = Model.create () in
  let x = Model.add_var ~lb:(-1.0) ~ub:5.0 m in
  Model.set_objective m Model.Maximize (Expr.var x);
  let s = get_optimal (Simplex.solve m) in
  check_obj "objective" 5.0 s

let test_lp_degenerate () =
  (* Degenerate vertex: several constraints meet at the optimum. *)
  let m = Model.create () in
  let x = Model.add_var m and y = Model.add_var m in
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Le 2.0);
  ignore (Model.add_constraint m (Expr.var x) Model.Le 2.0);
  ignore (Model.add_constraint m (Expr.var y) Model.Le 2.0);
  ignore
    (Model.add_constraint m (Expr.add (Expr.var ~coef:2.0 x) (Expr.var y)) Model.Le 4.0);
  Model.set_objective m Model.Maximize (Expr.add (Expr.var x) (Expr.var y));
  let s = get_optimal (Simplex.solve m) in
  check_obj "objective" 2.0 s

let test_lp_objective_constant () =
  let m = Model.create () in
  let x = Model.add_var ~ub:1.0 m in
  ignore (Model.add_constraint m (Expr.var x) Model.Le 1.0);
  Model.set_objective m Model.Maximize (Expr.add (Expr.var x) (Expr.const 10.0));
  let s = get_optimal (Simplex.solve m) in
  check_obj "objective includes constant" 11.0 s

(* ---------- Simplex vs brute force on 2-variable LPs ---------- *)

(* Exact 2-var LP solver by vertex enumeration: intersect every pair
   of (constraint or bound) lines, keep feasible points, take best. *)
let brute_force_2var ~cons ~bounds ~obj =
  (* cons: (a, b, rel, c) meaning a*x + b*y rel c; bounds: (lo, hi) per var. *)
  let lines =
    List.concat
      [
        List.map (fun (a, b, _, c) -> (a, b, c)) cons;
        (let (l0, h0), (l1, h1) = bounds in
         [ (1.0, 0.0, l0); (1.0, 0.0, h0); (0.0, 1.0, l1); (0.0, 1.0, h1) ]);
      ]
  in
  let feasible (x, y) =
    let (l0, h0), (l1, h1) = bounds in
    x >= l0 -. 1e-7 && x <= h0 +. 1e-7 && y >= l1 -. 1e-7 && y <= h1 +. 1e-7
    && List.for_all
         (fun (a, b, rel, c) ->
           let v = (a *. x) +. (b *. y) in
           match rel with
           | Model.Le -> v <= c +. 1e-7
           | Model.Ge -> v >= c -. 1e-7
           | Model.Eq -> abs_float (v -. c) <= 1e-7)
         cons
  in
  let candidates = ref [] in
  List.iteri
    (fun i (a1, b1, c1) ->
      List.iteri
        (fun j (a2, b2, c2) ->
          if j > i then begin
            let det = (a1 *. b2) -. (a2 *. b1) in
            if abs_float det > 1e-9 then begin
              let x = ((c1 *. b2) -. (c2 *. b1)) /. det in
              let y = ((a1 *. c2) -. (a2 *. c1)) /. det in
              if feasible (x, y) then candidates := (x, y) :: !candidates
            end
          end)
        lines)
    lines;
  let ox, oy = obj in
  match !candidates with
  | [] -> None
  | cs ->
    Some
      (List.fold_left
         (fun acc (x, y) -> max acc ((ox *. x) +. (oy *. y)))
         neg_infinity cs)

let random_2var_lp seed =
  let rng = Rng.create seed in
  let ncons = 1 + Rng.int rng 5 in
  let cons =
    List.init ncons (fun _ ->
        let a = Rng.float rng 4.0 -. 2.0 in
        let b = Rng.float rng 4.0 -. 2.0 in
        let c = Rng.float rng 10.0 -. 2.0 in
        let rel = if Rng.int rng 4 = 0 then Model.Ge else Model.Le in
        (a, b, rel, c))
  in
  let bounds = ((0.0, 10.0), (0.0, 10.0)) in
  let obj = (Rng.float rng 4.0 -. 2.0, Rng.float rng 4.0 -. 2.0) in
  (cons, bounds, obj)

let prop_simplex_matches_brute_force =
  QCheck2.Test.make ~name:"simplex matches vertex enumeration on 2-var LPs"
    ~count:300 QCheck2.Gen.int (fun seed ->
      let cons, bounds, obj = random_2var_lp seed in
      let m = Model.create () in
      let (l0, h0), (l1, h1) = bounds in
      let x = Model.add_var ~lb:l0 ~ub:h0 m in
      let y = Model.add_var ~lb:l1 ~ub:h1 m in
      List.iter
        (fun (a, b, rel, c) ->
          ignore
            (Model.add_constraint m
               (Expr.add (Expr.var ~coef:a x) (Expr.var ~coef:b y))
               rel c))
        cons;
      let ox, oy = obj in
      Model.set_objective m Model.Maximize
        (Expr.add (Expr.var ~coef:ox x) (Expr.var ~coef:oy y));
      match (Simplex.solve m, brute_force_2var ~cons ~bounds ~obj) with
      | Simplex.Optimal s, Some best -> abs_float (s.objective -. best) < 1e-4
      | Simplex.Infeasible, None -> true
      | Simplex.Optimal s, None ->
        (* Brute force only samples vertices from line pairs; an LP
           feasible region can exist without such vertices only if it
           has interior — then brute force missed it. Accept when the
           simplex point is genuinely feasible. *)
        Model.check_feasible m (fun v -> s.values.(v)) = Ok ()
      | Simplex.Infeasible, Some _ -> false
      | (Simplex.Unbounded | Simplex.Iteration_limit | Simplex.Deadline | Simplex.Fault _), _
        -> false)

let prop_simplex_solution_feasible =
  QCheck2.Test.make ~name:"simplex solutions satisfy the model" ~count:300
    QCheck2.Gen.int (fun seed ->
      let cons, bounds, obj = random_2var_lp seed in
      let m = Model.create () in
      let (l0, h0), (l1, h1) = bounds in
      let x = Model.add_var ~lb:l0 ~ub:h0 m in
      let y = Model.add_var ~lb:l1 ~ub:h1 m in
      List.iter
        (fun (a, b, rel, c) ->
          ignore
            (Model.add_constraint m
               (Expr.add (Expr.var ~coef:a x) (Expr.var ~coef:b y))
               rel c))
        cons;
      let ox, oy = obj in
      Model.set_objective m Model.Maximize
        (Expr.add (Expr.var ~coef:ox x) (Expr.var ~coef:oy y));
      match Simplex.solve m with
      | Simplex.Optimal s -> Model.check_feasible m (fun v -> s.values.(v)) = Ok ()
      | Simplex.Infeasible -> true
      | Simplex.Unbounded | Simplex.Iteration_limit | Simplex.Deadline | Simplex.Fault _
        -> false)

(* Assignment-polytope shaped LP, like the per-context models of the
   floorplanner: n ops x m PEs, one-hot rows, capacity columns, a
   budget row. The relaxation must solve and respect every row. *)
let test_lp_assignment_shaped () =
  let rng = Rng.create 4242 in
  let nops = 12 and npes = 16 in
  let m = Model.create () in
  let x = Array.init nops (fun _ -> Array.init npes (fun _ -> Model.add_var ~ub:1.0 m)) in
  for i = 0 to nops - 1 do
    ignore
      (Model.add_constraint m
         (Expr.sum (List.init npes (fun k -> Expr.var x.(i).(k))))
         Model.Eq 1.0)
  done;
  for k = 0 to npes - 1 do
    ignore
      (Model.add_constraint m
         (Expr.sum (List.init nops (fun i -> Expr.var x.(i).(k))))
         Model.Le 1.0)
  done;
  let weights = Array.init nops (fun _ -> 0.1 +. Rng.float rng 0.5) in
  for k = 0 to npes - 1 do
    ignore
      (Model.add_constraint m
         (Expr.sum (List.init nops (fun i -> Expr.var ~coef:weights.(i) x.(i).(k))))
         Model.Le 0.6)
  done;
  Model.set_objective m Model.Minimize Expr.zero;
  match Simplex.solve m with
  | Simplex.Optimal s ->
    Alcotest.(check bool) "feasible point" true
      (Model.check_feasible m (fun v -> s.values.(v)) = Ok ())
  | st -> Alcotest.failf "expected optimal, got %a" Simplex.pp_status st

(* Classic cycling-prone instance (Beale): must terminate and find the
   optimum thanks to the Bland fallback. *)
let test_lp_beale_cycling () =
  let m = Model.create () in
  let x1 = Model.add_var m and x2 = Model.add_var m in
  let x3 = Model.add_var m and x4 = Model.add_var m in
  ignore
    (Model.add_constraint m
       (Expr.sum
          [ Expr.var ~coef:0.25 x1; Expr.var ~coef:(-8.0) x2;
            Expr.var ~coef:(-1.0) x3; Expr.var ~coef:9.0 x4 ])
       Model.Le 0.0);
  ignore
    (Model.add_constraint m
       (Expr.sum
          [ Expr.var ~coef:0.5 x1; Expr.var ~coef:(-12.0) x2;
            Expr.var ~coef:(-0.5) x3; Expr.var ~coef:3.0 x4 ])
       Model.Le 0.0);
  ignore (Model.add_constraint m (Expr.var x3) Model.Le 1.0);
  Model.set_objective m Model.Maximize
    (Expr.sum
       [ Expr.var ~coef:0.75 x1; Expr.var ~coef:(-20.0) x2;
         Expr.var ~coef:0.5 x3; Expr.var ~coef:(-6.0) x4 ]);
  match Simplex.solve m with
  | Simplex.Optimal s -> Alcotest.(check (float 1e-6)) "Beale optimum" 1.25 s.objective
  | st -> Alcotest.failf "expected optimal, got %a" Simplex.pp_status st

(* ---------- Basis kernel: dense reference vs sparse LU ---------- *)

(* Random multi-variable LP with sparse rows — wider than the 2-var
   instances, so the LU kernel actually pivots, fills, and absorbs
   etas. Finite bounds keep every instance bounded, so the two kernels
   must agree Optimal-vs-Infeasible exactly. *)
let random_sparse_lp seed =
  let rng = Rng.create seed in
  let nvars = 3 + Rng.int rng 8 in
  let m = Model.create () in
  let vars =
    Array.init nvars (fun _ -> Model.add_var ~ub:(1.0 +. Rng.float rng 9.0) m)
  in
  for _ = 1 to 2 + Rng.int rng 7 do
    let terms = ref [] in
    Array.iter
      (fun v ->
        if Rng.int rng 3 > 0 then
          terms := Expr.var ~coef:(Rng.float rng 4.0 -. 2.0) v :: !terms)
      vars;
    match !terms with
    | [] -> ()
    | ts ->
      let rel =
        match Rng.int rng 6 with 0 -> Model.Ge | 1 -> Model.Eq | _ -> Model.Le
      in
      ignore (Model.add_constraint m (Expr.sum ts) rel (Rng.float rng 12.0 -. 2.0))
  done;
  Model.set_objective m Model.Maximize
    (Expr.sum
       (Array.to_list
          (Array.map (fun v -> Expr.var ~coef:(Rng.float rng 4.0 -. 2.0) v) vars)));
  m

let solve_with_kernel kind m =
  Simplex.solve ~params:{ Simplex.default_params with Simplex.kernel = kind } m

let prop_kernels_agree =
  QCheck2.Test.make
    ~name:"sparse LU and dense reference kernels agree on status and objective"
    ~count:300 QCheck2.Gen.int (fun seed ->
      let m = random_sparse_lp seed in
      match (solve_with_kernel Basis.Dense m, solve_with_kernel Basis.Sparse_lu m) with
      | Simplex.Optimal a, Simplex.Optimal b ->
        abs_float (a.Simplex.objective -. b.Simplex.objective) < 1e-6
        && Model.check_feasible m (fun v -> b.Simplex.values.(v)) = Ok ()
      | Simplex.Infeasible, Simplex.Infeasible -> true
      | _ -> false)

let test_kernel_counters () =
  let m = random_sparse_lp 20240805 in
  let nrows = Model.num_constraints m in
  Alcotest.(check bool) "instance has rows" true (nrows > 0);
  let st = Simplex.assemble m in
  (match Simplex.solve_state st with
  | Simplex.Optimal _ | Simplex.Infeasible -> ()
  | s -> Alcotest.failf "unexpected status %a" Simplex.pp_status s);
  let s = Simplex.state_stats st in
  Alcotest.(check int) "one cold solve" 1 s.Simplex.cold_solves;
  Alcotest.(check bool) "factorized at least once" true (s.Simplex.refactorizations >= 1);
  Alcotest.(check bool) "pivoted" true (s.Simplex.lp_iterations > 0);
  Alcotest.(check bool) "fill tracked" true (s.Simplex.fill_in > 0);
  let dense_params = { Simplex.default_params with Simplex.kernel = Basis.Dense } in
  let std = Simplex.assemble ~params:dense_params m in
  (match Simplex.solve_state std with
  | Simplex.Optimal _ | Simplex.Infeasible -> ()
  | s -> Alcotest.failf "unexpected dense status %a" Simplex.pp_status s);
  let sd = Simplex.state_stats std in
  (* On an instance this small the sparse factors + eta file need not
     undercut m² — the footprint win is asserted at scale by the
     smoke-lp benchmark, not here. *)
  Alcotest.(check int) "dense footprint is the full inverse" (nrows * nrows)
    sd.Simplex.fill_in;
  Alcotest.(check bool) "dense kernel also counts factorizations" true
    (sd.Simplex.refactorizations >= 1)

(* ---------- Presolve ---------- *)

let get_reduced = function
  | Presolve.Reduced t -> t
  | Presolve.Proven_infeasible r -> Alcotest.failf "unexpected infeasibility: %s" r

let test_presolve_singleton_row () =
  (* 2x <= 8 becomes the bound x <= 4; the row disappears. *)
  let m = Model.create () in
  let x = Model.add_var m in
  ignore (Model.add_constraint m (Expr.var ~coef:2.0 x) Model.Le 8.0);
  Model.set_objective m Model.Maximize (Expr.var x);
  let t = get_reduced (Presolve.run m) in
  let red = Presolve.reductions t in
  Alcotest.(check bool) "singleton row counted" true (red.Presolve.singleton_rows >= 1);
  Alcotest.(check int) "no rows left" 0 (Model.num_constraints (Presolve.reduced t));
  let s = get_optimal (Simplex.solve (Presolve.reduced t)) in
  let values = Presolve.postsolve t s.Simplex.values in
  Alcotest.(check (float 1e-6)) "x at implied bound" 4.0 values.(x);
  Alcotest.(check bool) "feasible on original" true
    (Model.check_feasible m (fun v -> values.(v)) = Ok ())

let test_presolve_fixed_substitution () =
  (* 3x = 6 pins x = 2; the second row shrinks to a bound on y. *)
  let m = Model.create () in
  let x = Model.add_var ~ub:10.0 m and y = Model.add_var ~ub:10.0 m in
  ignore (Model.add_constraint m (Expr.var ~coef:3.0 x) Model.Eq 6.0);
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Le 5.0);
  Model.set_objective m Model.Maximize (Expr.add (Expr.var x) (Expr.var y));
  let t = get_reduced (Presolve.run m) in
  let red = Presolve.reductions t in
  Alcotest.(check bool) "x fixed" true (red.Presolve.vars_fixed >= 1);
  let s = get_optimal (Simplex.solve (Presolve.reduced t)) in
  (* Objective of the reduced model folds in the fixed contribution. *)
  check_obj "objective carries fixed part" 5.0 s;
  let values = Presolve.postsolve t s.Simplex.values in
  Alcotest.(check (float 1e-6)) "x restored" 2.0 values.(x);
  Alcotest.(check bool) "feasible on original" true
    (Model.check_feasible m (fun v -> values.(v)) = Ok ())

let test_presolve_redundant_row () =
  (* x, y in [0,1]: x + y <= 5 can never bind. *)
  let m = Model.create () in
  let x = Model.add_var ~ub:1.0 m and y = Model.add_var ~ub:1.0 m in
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Le 5.0);
  Model.set_objective m Model.Maximize (Expr.add (Expr.var x) (Expr.var y));
  let t = get_reduced (Presolve.run m) in
  Alcotest.(check bool) "row removed" true
    ((Presolve.reductions t).Presolve.rows_removed >= 1);
  Alcotest.(check int) "no rows left" 0 (Model.num_constraints (Presolve.reduced t))

let test_presolve_forcing_row () =
  (* x + y <= 0 with x, y >= 0 forces both to zero. *)
  let m = Model.create () in
  let x = Model.add_var ~ub:1.0 m and y = Model.add_var ~ub:1.0 m in
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Le 0.0);
  Model.set_objective m Model.Maximize (Expr.add (Expr.var x) (Expr.var y));
  let t = get_reduced (Presolve.run m) in
  Alcotest.(check bool) "both fixed" true ((Presolve.reductions t).Presolve.vars_fixed >= 2);
  let s = get_optimal (Simplex.solve (Presolve.reduced t)) in
  let values = Presolve.postsolve t s.Simplex.values in
  Alcotest.(check (float 0.)) "x = 0" 0.0 values.(x);
  Alcotest.(check (float 0.)) "y = 0" 0.0 values.(y)

let test_presolve_probing () =
  (* One-hot a + b + c = 1 with b + c >= 1: setting a = 1 zeroes its
     row-mates and contradicts the second row, so probing fixes a = 0. *)
  let m = Model.create () in
  let a = Model.add_binary m and b = Model.add_binary m and c = Model.add_binary m in
  ignore
    (Model.add_constraint m (Expr.sum [ Expr.var a; Expr.var b; Expr.var c ]) Model.Eq 1.0);
  ignore (Model.add_constraint m (Expr.add (Expr.var b) (Expr.var c)) Model.Ge 1.0);
  Model.set_objective m Model.Maximize
    (Expr.sum [ Expr.var ~coef:5.0 a; Expr.var b; Expr.var c ]);
  let t = get_reduced (Presolve.run m) in
  Alcotest.(check bool) "probe fixed a" true
    ((Presolve.reductions t).Presolve.probe_fixings >= 1);
  let params = { Milp.default_params with first_solution = false } in
  let s = get_feasible (Milp.solve ~params (Presolve.reduced t)) in
  let values = Presolve.postsolve t s.Simplex.values in
  Alcotest.(check (float 0.)) "a = 0" 0.0 values.(a);
  Alcotest.(check (float 1e-6)) "objective" 1.0 s.Simplex.objective;
  Alcotest.(check bool) "feasible on original" true
    (Model.check_feasible m (fun v -> values.(v)) = Ok ())

let test_presolve_detects_infeasible () =
  (* x <= 1 as a bound but a row demands x >= 2. *)
  let m = Model.create () in
  let x = Model.add_var ~ub:1.0 m in
  ignore (Model.add_constraint m (Expr.var x) Model.Ge 2.0);
  match Presolve.run m with
  | Presolve.Proven_infeasible _ -> ()
  | Presolve.Reduced _ -> Alcotest.fail "expected Proven_infeasible"

let build_2var_lp ?bounds:(b' = None) (cons, bounds, obj) =
  let bounds = match b' with Some b -> b | None -> bounds in
  let m = Model.create () in
  let (l0, h0), (l1, h1) = bounds in
  let x = Model.add_var ~lb:l0 ~ub:h0 m in
  let y = Model.add_var ~lb:l1 ~ub:h1 m in
  List.iter
    (fun (a, b, rel, c) ->
      ignore
        (Model.add_constraint m
           (Expr.add (Expr.var ~coef:a x) (Expr.var ~coef:b y))
           rel c))
    cons;
  let ox, oy = obj in
  Model.set_objective m Model.Maximize
    (Expr.add (Expr.var ~coef:ox x) (Expr.var ~coef:oy y));
  m

let prop_presolve_lp_roundtrip =
  QCheck2.Test.make ~name:"presolve -> solve -> postsolve matches direct solve"
    ~count:300 QCheck2.Gen.int (fun seed ->
      let spec = random_2var_lp seed in
      let m = build_2var_lp spec in
      let direct = Simplex.solve (build_2var_lp spec) in
      match Presolve.run m with
      | Presolve.Proven_infeasible _ -> direct = Simplex.Infeasible
      | Presolve.Reduced t -> (
        match (Simplex.solve (Presolve.reduced t), direct) with
        | Simplex.Optimal s, Simplex.Optimal d ->
          let values = Presolve.postsolve t s.Simplex.values in
          abs_float (s.objective -. d.objective) < 1e-6
          && Model.check_feasible m (fun v -> values.(v)) = Ok ()
        | Simplex.Infeasible, Simplex.Infeasible -> true
        | _ -> false))

(* ---------- Simplex warm start ---------- *)

let prop_reoptimize_bound_change_matches_cold =
  (* B&B-style usage: solve, branch on x's value, re-solve warm from
     the parent basis; a cold solve of the modified model must agree. *)
  QCheck2.Test.make ~name:"warm reoptimize after bound change matches cold solve"
    ~count:200 QCheck2.Gen.int (fun seed ->
      let ((_, bounds, _) as spec) = random_2var_lp seed in
      let st = Simplex.assemble (build_2var_lp spec) in
      match Simplex.solve_state st with
      | Simplex.Optimal s ->
        let v = s.Simplex.values.(0) in
        let (l0, h0), b1 = bounds in
        let bounds' =
          if seed land 1 = 0 then ((l0, Float.of_int (int_of_float v)), b1)
          else ((Float.of_int (int_of_float (ceil v)), h0), b1)
        in
        let ((l0', h0'), _) = bounds' in
        Simplex.set_var_bounds st 0 ~lb:l0' ~ub:h0';
        let warm = Simplex.reoptimize st in
        let cold = Simplex.solve (build_2var_lp ~bounds:(Some bounds') spec) in
        (match (warm, cold) with
        | Simplex.Optimal w, Simplex.Optimal c ->
          abs_float (w.Simplex.objective -. c.Simplex.objective) < 1e-6
        | Simplex.Infeasible, Simplex.Infeasible -> true
        | _ -> false)
      | Simplex.Infeasible -> true
      | _ -> false)

let prop_reoptimize_rhs_change_matches_cold =
  (* Remap-style usage: only the stress-budget RHS moves between
     solves; the assembled state is reused with [set_rhs]. *)
  QCheck2.Test.make ~name:"warm reoptimize after rhs change matches cold solve"
    ~count:200 QCheck2.Gen.int (fun seed ->
      let ((cons, bounds, obj) as spec) = random_2var_lp seed in
      match cons with
      | [] -> true
      | (a, b, rel, c) :: rest ->
        let st = Simplex.assemble (build_2var_lp spec) in
        (match Simplex.solve_state st with
        | Simplex.Optimal _ ->
          let delta = if rel = Model.Le then -1.0 else 1.0 in
          let c' = c +. delta in
          Simplex.set_rhs st 0 c';
          let warm = Simplex.reoptimize st in
          let cold = Simplex.solve (build_2var_lp ((a, b, rel, c') :: rest, bounds, obj)) in
          (match (warm, cold) with
          | Simplex.Optimal w, Simplex.Optimal cs ->
            abs_float (w.Simplex.objective -. cs.Simplex.objective) < 1e-6
          | Simplex.Infeasible, Simplex.Infeasible -> true
          | _ -> false)
        | Simplex.Infeasible -> true
        | _ -> false))

let test_reoptimize_restored_bounds_interior () =
  (* B&B unwind regression: max 2x + y, x,y in [0,10], x + y <= 12.
     Cold optimum is x = 10 (nonbasic at ub). Tightening x to [0,4]
     clamps the nonbasic to 4; restoring [0,10] then leaves it
     strictly between its bounds, so the next warm solve must step x
     by its distance to the bound (6), not the full range (10) —
     the latter drove x to 12 > ub and certified an infeasible point. *)
  let build () =
    let m = Model.create () in
    let x = Model.add_var ~ub:10.0 m in
    let y = Model.add_var ~ub:10.0 m in
    ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Le 12.0);
    Model.set_objective m Model.Maximize (Expr.add (Expr.var ~coef:2.0 x) (Expr.var y));
    m
  in
  let m = build () in
  let st = Simplex.assemble m in
  let s = get_optimal (Simplex.solve_state st) in
  Alcotest.(check (float 1e-6)) "cold objective" 22.0 s.Simplex.objective;
  Simplex.set_var_bounds st 0 ~lb:0.0 ~ub:4.0;
  let s = get_optimal (Simplex.reoptimize st) in
  Alcotest.(check (float 1e-6)) "tightened objective" 16.0 s.Simplex.objective;
  Simplex.set_var_bounds st 0 ~lb:0.0 ~ub:10.0;
  let s = get_optimal (Simplex.reoptimize st) in
  Alcotest.(check (float 1e-6)) "restored objective" 22.0 s.Simplex.objective;
  Alcotest.(check bool) "restored solution feasible" true
    (Model.check_feasible m (fun v -> s.Simplex.values.(v)) = Ok ())

(* ---------- MILP ---------- *)

let test_milp_knapsack () =
  (* max 10a + 6b + 4c s.t. a+b+c <= 2 (binaries) -> 16. *)
  let m = Model.create () in
  let a = Model.add_binary m and b = Model.add_binary m and c = Model.add_binary m in
  ignore
    (Model.add_constraint m
       (Expr.sum [ Expr.var a; Expr.var b; Expr.var c ])
       Model.Le 2.0);
  Model.set_objective m Model.Maximize
    (Expr.sum [ Expr.var ~coef:10.0 a; Expr.var ~coef:6.0 b; Expr.var ~coef:4.0 c ]);
  let params = { Milp.default_params with first_solution = false } in
  let s = get_feasible (Milp.solve ~params m) in
  Alcotest.(check (float 1e-6)) "objective" 16.0 s.objective

let test_milp_fractional_lp_integer_gap () =
  (* LP relaxation is fractional; ILP optimum differs.
     max x + y s.t. 2x + 2y <= 3, binaries -> LP 1.5, ILP 1. *)
  let m = Model.create () in
  let x = Model.add_binary m and y = Model.add_binary m in
  ignore
    (Model.add_constraint m
       (Expr.add (Expr.var ~coef:2.0 x) (Expr.var ~coef:2.0 y))
       Model.Le 3.0);
  Model.set_objective m Model.Maximize (Expr.add (Expr.var x) (Expr.var y));
  let params = { Milp.default_params with first_solution = false } in
  let s = get_feasible (Milp.solve ~params m) in
  Alcotest.(check (float 1e-6)) "ILP optimum" 1.0 s.objective

let test_milp_infeasible () =
  let m = Model.create () in
  let x = Model.add_binary m and y = Model.add_binary m in
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Ge 3.0);
  match Milp.solve m with
  | Milp.Infeasible -> ()
  | r -> Alcotest.failf "expected infeasible, got %a" Milp.pp_result r

let test_milp_assignment () =
  (* 3x3 assignment: each row/col exactly one. Feasibility with null
     objective — the paper's formulation shape. *)
  let m = Model.create () in
  let v = Array.init 3 (fun _ -> Array.init 3 (fun _ -> Model.add_binary m)) in
  for i = 0 to 2 do
    ignore
      (Model.add_constraint m (Expr.sum (List.init 3 (fun j -> Expr.var v.(i).(j)))) Model.Eq 1.0);
    ignore
      (Model.add_constraint m (Expr.sum (List.init 3 (fun j -> Expr.var v.(j).(i)))) Model.Eq 1.0)
  done;
  let s = get_feasible (Milp.solve m) in
  Alcotest.(check unit) "valid"
    (match Model.check_feasible m (fun x -> s.values.(x)) with
    | Ok () -> ()
    | Error e -> Alcotest.fail e)
    ()

let test_relax_and_fix_matches_bb () =
  let build () =
    let m = Model.create () in
    let xs = Array.init 6 (fun _ -> Model.add_binary m) in
    ignore
      (Model.add_constraint m
         (Expr.sum (Array.to_list (Array.map Expr.var xs)))
         Model.Eq 3.0);
    ignore
      (Model.add_constraint m
         (Expr.sum [ Expr.var xs.(0); Expr.var xs.(1) ])
         Model.Le 1.0);
    Model.set_objective m Model.Maximize
      (Expr.sum (Array.to_list (Array.mapi (fun i x -> Expr.var ~coef:(float_of_int (i + 1)) x) xs)));
    m
  in
  let params = { Milp.default_params with first_solution = false } in
  let s1 = get_feasible (Milp.solve ~params (build ())) in
  let s2 = get_feasible (Milp.relax_and_fix ~params (build ())) in
  Alcotest.(check (float 1e-6)) "same optimum" s1.objective s2.objective

let test_milp_mixed_integer_continuous () =
  (* max 2x + y with x binary, y continuous <= 1.5, x + y <= 2. *)
  let m = Model.create () in
  let x = Model.add_binary m in
  let y = Model.add_var ~ub:1.5 m in
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Le 2.0);
  Model.set_objective m Model.Maximize (Expr.add (Expr.var ~coef:2.0 x) (Expr.var y));
  let params = { Milp.default_params with first_solution = false } in
  let s = get_feasible (Milp.solve ~params m) in
  Alcotest.(check (float 1e-6)) "objective" 3.0 s.objective;
  Alcotest.(check (float 1e-6)) "x integral" 1.0 s.values.(x)

let test_milp_stats_warm_branching () =
  (* A knapsack with a fractional LP vertex: the search must branch,
     and every node after the root must reuse the warm state. *)
  let m = Model.create () in
  let w = [| 5.0; 7.0; 11.0; 13.0; 3.0; 17.0; 19.0; 23.0; 9.0; 15.0 |] in
  let xs = Array.map (fun _ -> Model.add_binary m) w in
  let total = Array.fold_left ( +. ) 0.0 w in
  ignore
    (Model.add_constraint m
       (Expr.sum (Array.to_list (Array.mapi (fun i x -> Expr.var ~coef:w.(i) x) xs)))
       Model.Le (total /. 2.0));
  Model.set_objective m Model.Maximize
    (Expr.sum
       (Array.to_list
          (Array.mapi (fun i x -> Expr.var ~coef:(w.(i) +. float_of_int (i mod 3)) x) xs)));
  (* Cuts and heuristics would close this instance at the root; this
     test is about the branching machinery, so pin them off. *)
  let params =
    {
      Milp.default_params with
      first_solution = false;
      cuts = Cuts.off;
      heuristics = Heuristics.off;
    }
  in
  let result, stats = Milp.solve_with_stats ~params m in
  let s = get_feasible result in
  Alcotest.(check bool) "search branched" true (stats.Milp.nodes > 1);
  Alcotest.(check bool) "warm solves happened" true (stats.Milp.warm_solves > 0);
  Alcotest.(check bool) "iterations counted" true (stats.Milp.lp_iterations > 0);
  Array.iter
    (fun v ->
      let x = s.Simplex.values.(v) in
      Alcotest.(check (float 0.)) "exactly integral" (Float.round x) x)
    xs

let prop_milp_modes_agree =
  (* Presolve + warm start are pure accelerations: switching both off
     must not change the optimum, and the returned incumbent must be
     feasible for and exactly integral in the original model. *)
  QCheck2.Test.make ~name:"presolve/warm-start do not change the B&B optimum"
    ~count:120 QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      let nvars = 3 + Rng.int rng 5 in
      let ncons = 1 + Rng.int rng 4 in
      let cons =
        List.init ncons (fun _ ->
            let coefs = List.init nvars (fun v -> (v, float_of_int (Rng.int rng 7 - 3))) in
            let rhs = float_of_int (Rng.int rng 8 - 2) in
            let rel = if Rng.int rng 3 = 0 then Model.Ge else Model.Le in
            (coefs, rel, rhs))
      in
      let obj = List.init nvars (fun v -> (v, float_of_int (Rng.int rng 11 - 5))) in
      let build () =
        let m = Model.create () in
        let vars = Array.init nvars (fun _ -> Model.add_binary m) in
        List.iter
          (fun (coefs, rel, rhs) ->
            let lhs = Expr.sum (List.map (fun (v, c) -> Expr.var ~coef:c vars.(v)) coefs) in
            ignore (Model.add_constraint m lhs rel rhs))
          cons;
        Model.set_objective m Model.Maximize
          (Expr.sum (List.map (fun (v, c) -> Expr.var ~coef:c vars.(v)) obj));
        m
      in
      let fast = { Milp.default_params with first_solution = false } in
      let plain = { fast with Milp.presolve = false; warm_start = false } in
      let m = build () in
      match (Milp.solve ~params:fast m, Milp.solve ~params:plain (build ())) with
      | Milp.Feasible a, Milp.Feasible b ->
        abs_float (a.Simplex.objective -. b.Simplex.objective) < 1e-6
        && Model.check_feasible m (fun v -> a.Simplex.values.(v)) = Ok ()
        && List.for_all
             (fun v ->
               let x = a.Simplex.values.(v) in
               x = Float.round x)
             (Model.integer_vars m)
      | Milp.Infeasible, Milp.Infeasible -> true
      | _ -> false)

(* Brute force 0/1 enumeration for small random ILPs. *)
let brute_force_ilp nvars cons obj =
  let best = ref None in
  for mask = 0 to (1 lsl nvars) - 1 do
    let value v = if mask land (1 lsl v) <> 0 then 1.0 else 0.0 in
    let ok =
      List.for_all
        (fun (coefs, rel, rhs) ->
          let lhs = List.fold_left (fun acc (v, c) -> acc +. (c *. value v)) 0.0 coefs in
          match rel with
          | Model.Le -> lhs <= rhs +. 1e-9
          | Model.Ge -> lhs >= rhs -. 1e-9
          | Model.Eq -> abs_float (lhs -. rhs) <= 1e-9)
        cons
    in
    if ok then begin
      let o = List.fold_left (fun acc (v, c) -> acc +. (c *. value v)) 0.0 obj in
      match !best with Some b when b >= o -> () | _ -> best := Some o
    end
  done;
  !best

let prop_milp_matches_brute_force =
  QCheck2.Test.make ~name:"branch & bound matches 0/1 enumeration" ~count:150
    QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      let nvars = 3 + Rng.int rng 5 in
      let ncons = 1 + Rng.int rng 4 in
      let cons =
        List.init ncons (fun _ ->
            let coefs =
              List.init nvars (fun v -> (v, float_of_int (Rng.int rng 7 - 3)))
            in
            let rhs = float_of_int (Rng.int rng 8 - 2) in
            let rel = if Rng.int rng 3 = 0 then Model.Ge else Model.Le in
            (coefs, rel, rhs))
      in
      let obj = List.init nvars (fun v -> (v, float_of_int (Rng.int rng 11 - 5))) in
      let m = Model.create () in
      let vars = Array.init nvars (fun _ -> Model.add_binary m) in
      List.iter
        (fun (coefs, rel, rhs) ->
          let lhs =
            Expr.sum (List.map (fun (v, c) -> Expr.var ~coef:c vars.(v)) coefs)
          in
          ignore (Model.add_constraint m lhs rel rhs))
        cons;
      Model.set_objective m Model.Maximize
        (Expr.sum (List.map (fun (v, c) -> Expr.var ~coef:c vars.(v)) obj));
      let params = { Milp.default_params with first_solution = false } in
      match (Milp.solve ~params m, brute_force_ilp nvars cons obj) with
      | Milp.Feasible s, Some best -> abs_float (s.objective -. best) < 1e-6
      | Milp.Infeasible, None -> true
      | Milp.Feasible _, None -> false
      | Milp.Infeasible, Some _ -> false
      | Milp.Unknown, _ -> false)

let prop_relax_and_fix_feasible =
  QCheck2.Test.make ~name:"relax-and-fix solutions are feasible" ~count:100
    QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      let nvars = 4 + Rng.int rng 6 in
      let m = Model.create () in
      let vars = Array.init nvars (fun _ -> Model.add_binary m) in
      (* Assignment-flavoured random instance: partition vars in pairs,
         each pair sums to 1, plus a random knapsack row. *)
      Array.iteri
        (fun i _ ->
          if i mod 2 = 0 && i + 1 < nvars then
            ignore
              (Model.add_constraint m
                 (Expr.add (Expr.var vars.(i)) (Expr.var vars.(i + 1)))
                 Model.Eq 1.0))
        vars;
      let coefs = Array.map (fun v -> Expr.var ~coef:(1.0 +. Rng.float rng 3.0) v) vars in
      ignore
        (Model.add_constraint m
           (Expr.sum (Array.to_list coefs))
           Model.Le (2.0 +. Rng.float rng (float_of_int nvars)));
      match Milp.relax_and_fix m with
      | Milp.Feasible s -> Model.check_feasible m (fun v -> s.values.(v)) = Ok ()
      | Milp.Infeasible | Milp.Unknown -> true)

(* ---------- budget-limited branch & bound ---------- *)

module Budget = Agingfp_util.Budget

(* A knapsack whose LP relaxation stays fractional down every branch,
   so the full proof of optimality needs many nodes while incumbents
   appear early. Presolve off: probing must not shrink the search. *)
let budget_knapsack () =
  let m = Model.create () in
  let values = [| 10.0; 9.0; 8.0; 7.0; 6.0; 5.0; 4.0; 3.0 |] in
  let weights = [| 4.0; 3.0; 3.0; 2.0; 2.0; 1.0; 3.0; 2.0 |] in
  let vars = Array.map (fun _ -> Model.add_binary m) values in
  ignore
    (Model.add_constraint m
       (Expr.sum (Array.to_list (Array.mapi (fun i v -> Expr.var ~coef:weights.(i) v) vars)))
       Model.Le 9.0);
  Model.set_objective m Model.Maximize
    (Expr.sum (Array.to_list (Array.mapi (fun i v -> Expr.var ~coef:values.(i) v) vars)));
  m

let test_milp_node_limit_incumbent () =
  (* Node-limit semantics need a search that actually visits nodes:
     root cuts and heuristics close the knapsack before branching. *)
  let base =
    {
      Milp.default_params with
      first_solution = false;
      presolve = false;
      cuts = Cuts.off;
      heuristics = Heuristics.off;
    }
  in
  (* Full run: how many nodes a complete proof takes, and the optimum. *)
  let full_result, full_stats = Milp.solve_with_stats ~params:base (budget_knapsack ()) in
  let full = get_feasible full_result in
  Alcotest.(check bool) "full search ran to completion" true
    (full_stats.Milp.stop = Budget.Optimal);
  Alcotest.(check bool)
    (Printf.sprintf "full search needs several nodes (got %d)" full_stats.Milp.nodes)
    true
    (full_stats.Milp.nodes > 6);
  (* Cut the node budget well short of the proof: the best incumbent
     found so far must still come back (not Unknown), and the stats
     must say the solve was budget-limited. *)
  let limited = { base with Milp.node_limit = 6 } in
  let result, stats = Milp.solve_with_stats ~params:limited (budget_knapsack ()) in
  let sol = get_feasible result in
  Alcotest.(check bool) "stats mark the solve budget-limited" true
    (stats.Milp.stop = Budget.Node_limit);
  Alcotest.(check bool) "node budget respected" true (stats.Milp.nodes <= 6);
  Alcotest.(check bool) "incumbent no better than the optimum" true
    (sol.Simplex.objective <= full.Simplex.objective +. 1e-9);
  Alcotest.(check bool) "incumbent satisfies the model" true
    (Model.check_feasible (budget_knapsack ()) (fun v -> sol.Simplex.values.(v)) = Ok ())

let test_milp_deadline_stops_search () =
  (* An already-expired wall-clock budget: the search must stop at the
     first node checkpoint and say Deadline — never hang, never lie
     about why it stopped. *)
  let params =
    {
      Milp.default_params with
      first_solution = false;
      presolve = false;
      budget = Budget.create ~deadline_s:0.0 ();
    }
  in
  let result, stats = Milp.solve_with_stats ~params (budget_knapsack ()) in
  Alcotest.(check bool) "stopped for the deadline" true
    (stats.Milp.stop = Budget.Deadline);
  Alcotest.(check bool) "no nodes explored" true (stats.Milp.nodes = 0);
  Alcotest.(check bool) "no incumbent -> Unknown, not Infeasible" true
    (result = Milp.Unknown)

(* With identical parameters and deterministic DFS, the nodes explored
   under a smaller node budget are a prefix of those explored under a
   larger one — so tightening the budget can never produce a better
   incumbent. *)
let prop_milp_tighter_budget_never_better =
  QCheck2.Test.make ~name:"tighter node budget never yields a better objective"
    ~count:150
    QCheck2.Gen.(tup3 int (int_range 1 12) (int_range 0 30))
    (fun (seed, small_limit, extra) ->
      let rng = Rng.create seed in
      let nvars = 3 + Rng.int rng 5 in
      let ncons = 1 + Rng.int rng 4 in
      let cons =
        List.init ncons (fun _ ->
            let coefs = List.init nvars (fun v -> (v, float_of_int (Rng.int rng 7 - 3))) in
            let rhs = float_of_int (Rng.int rng 8 - 2) in
            let rel = if Rng.int rng 3 = 0 then Model.Ge else Model.Le in
            (coefs, rel, rhs))
      in
      let obj = List.init nvars (fun v -> (v, float_of_int (Rng.int rng 11 - 5))) in
      let build () =
        let m = Model.create () in
        let vars = Array.init nvars (fun _ -> Model.add_binary m) in
        List.iter
          (fun (coefs, rel, rhs) ->
            let lhs = Expr.sum (List.map (fun (v, c) -> Expr.var ~coef:c vars.(v)) coefs) in
            ignore (Model.add_constraint m lhs rel rhs))
          cons;
        Model.set_objective m Model.Maximize
          (Expr.sum (List.map (fun (v, c) -> Expr.var ~coef:c vars.(v)) obj));
        m
      in
      let params limit =
        { Milp.default_params with first_solution = false; node_limit = limit }
      in
      let tight = Milp.solve ~params:(params small_limit) (build ()) in
      let loose = Milp.solve ~params:(params (small_limit + extra)) (build ()) in
      match (tight, loose) with
      | Milp.Feasible a, Milp.Feasible b ->
        a.Simplex.objective <= b.Simplex.objective +. 1e-9
      | Milp.Feasible _, (Milp.Infeasible | Milp.Unknown) ->
        (* The prefix property makes this impossible. *)
        false
      | (Milp.Infeasible | Milp.Unknown), _ -> true)

(* ---------- LP-format export ---------- *)

let lp_contains text sub =
  let n = String.length text and m = String.length sub in
  let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
  go 0

let test_lp_format_sections () =
  let m = Model.create () in
  let x = Model.add_var ~ub:4.0 m in
  let b = Model.add_binary m in
  let free = Model.add_var ~lb:neg_infinity m in
  ignore free;
  ignore
    (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var ~coef:2.0 b)) Model.Le 5.0);
  ignore (Model.add_constraint m (Expr.var x) Model.Ge 1.0);
  Model.set_objective m Model.Maximize (Expr.add (Expr.var x) (Expr.var b));
  let text = Lp_format.to_string m in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "contains %S" sub) true (lp_contains text sub))
    [
      "Maximize"; "Subject To"; "Bounds"; "Binary"; "End"; "x0 <= 4"; "x2 free";
      "c0:"; "<= 5"; ">= 1"; "x0 + 2 x1 <= 5";
    ]

let test_lp_format_negative_coefs () =
  let m = Model.create () in
  let x = Model.add_var m and y = Model.add_var m in
  ignore
    (Model.add_constraint m
       (Expr.add (Expr.var ~coef:(-1.0) x) (Expr.var ~coef:(-2.5) y))
       Model.Eq (-3.0));
  let text = Lp_format.to_string m in
  Alcotest.(check bool) "minus rendering" true (lp_contains text "- x0 - 2.5 x1 = -3")

let test_lp_format_fixed_var () =
  let m = Model.create () in
  let x = Model.add_var m in
  Model.fix_var m x 2.0;
  ignore (Model.add_constraint m (Expr.var x) Model.Le 5.0);
  let text = Lp_format.to_string m in
  Alcotest.(check bool) "fixed bound" true (lp_contains text "x0 = 2")

let test_lp_format_file_roundtrip () =
  let m = Model.create () in
  let x = Model.add_var ~ub:1.0 m in
  ignore (Model.add_constraint m (Expr.var x) Model.Le 1.0);
  let path = Filename.temp_file "agingfp" ".lp" in
  (match Lp_format.write_file path m with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let content = In_channel.with_open_text path In_channel.input_all in
  Alcotest.(check bool) "written" true (lp_contains content "End");
  Sys.remove path

(* ---------- Analyze (static linter) ---------- *)

let has_code diags code =
  List.exists (fun (d : Analyze.diagnostic) -> d.Analyze.code = code) diags

let test_analyze_clean_model () =
  (* A healthy assignment-shaped model must produce no diagnostics of
     Error or Warning severity. *)
  let m = Model.create () in
  let xs = Array.init 4 (fun i -> Model.add_binary ~name:(Printf.sprintf "b%d" i) m) in
  ignore
    (Model.add_constraint ~name:"onehot" m
       (Expr.sum (Array.to_list (Array.map Expr.var xs)))
       Model.Eq 1.0);
  Model.set_objective m Model.Minimize
    (Expr.sum (Array.to_list (Array.mapi (fun i x -> Expr.var ~coef:(float_of_int (i + 1)) x) xs)));
  let diags = Analyze.lint m in
  Alcotest.(check int) "no errors" 0 (List.length (Analyze.errors diags));
  Alcotest.(check bool) "no warnings" false
    (List.exists (fun (d : Analyze.diagnostic) -> d.Analyze.severity = Analyze.Warning) diags)

let test_analyze_bad_bounds () =
  (* [add_var]/[set_bounds] reject [lb > ub] up front, but NaN slips
     through every float comparison and [fix_var] never validates —
     exactly the holes the linter exists to close. *)
  let m = Model.create () in
  let x = Model.add_var m in
  Model.fix_var m x Float.nan;
  let inf_lb = Model.add_var ~lb:infinity m in
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var inf_lb)) Model.Le 5.0);
  let diags = Analyze.lint m in
  Alcotest.(check bool) "nonfinite flagged" true (has_code diags Analyze.Nonfinite_bound);
  Alcotest.(check bool) "is an error" true (Analyze.errors diags <> [])

let test_analyze_duplicate_row () =
  let m = Model.create () in
  let x = Model.add_var ~ub:1.0 m and y = Model.add_var ~ub:1.0 m in
  let lhs () = Expr.add (Expr.var x) (Expr.var ~coef:2.0 y) in
  ignore (Model.add_constraint m (lhs ()) Model.Le 3.0);
  ignore (Model.add_constraint m (lhs ()) Model.Le 3.0);
  Model.set_objective m Model.Maximize (Expr.var x);
  Alcotest.(check bool) "duplicate flagged" true
    (has_code (Analyze.lint m) Analyze.Duplicate_row)

let test_analyze_dangling_var () =
  let m = Model.create () in
  let x = Model.add_var ~ub:1.0 m in
  let _orphan = Model.add_var ~ub:1.0 m in
  ignore (Model.add_constraint m (Expr.var x) Model.Le 1.0);
  Model.set_objective m Model.Maximize (Expr.var x);
  let diags = Analyze.lint m in
  Alcotest.(check bool) "dangling flagged" true (has_code diags Analyze.Dangling_var);
  Alcotest.(check bool) "points at var 1" true
    (List.exists
       (fun (d : Analyze.diagnostic) ->
         d.Analyze.code = Analyze.Dangling_var && d.Analyze.var = Some 1)
       diags)

let test_analyze_row_infeasible_by_bounds () =
  (* x + y <= -1 with x, y in [0,1]: min activity 0 > -1. *)
  let m = Model.create () in
  let x = Model.add_var ~ub:1.0 m and y = Model.add_var ~ub:1.0 m in
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Le (-1.0));
  Model.set_objective m Model.Maximize (Expr.var x);
  let diags = Analyze.lint m in
  Alcotest.(check bool) "bound-infeasible flagged" true
    (has_code diags Analyze.Row_infeasible_by_bounds);
  Alcotest.(check bool) "is an error" true (Analyze.errors diags <> [])

let test_analyze_row_forced_by_bounds () =
  (* x + y <= 5 with x, y in [0,1]: max activity 2, row constrains
     nothing. *)
  let m = Model.create () in
  let x = Model.add_var ~ub:1.0 m and y = Model.add_var ~ub:1.0 m in
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Le 5.0);
  Model.set_objective m Model.Maximize (Expr.var x);
  let diags = Analyze.lint m in
  Alcotest.(check bool) "forced flagged" true (has_code diags Analyze.Row_forced_by_bounds);
  Alcotest.(check int) "but not an error" 0 (List.length (Analyze.errors diags))

let test_analyze_nonbinary_in_one_hot () =
  let m = Model.create () in
  let a = Model.add_binary m in
  let b = Model.add_var ~ub:1.0 m in
  (* continuous *)
  ignore (Model.add_constraint m (Expr.add (Expr.var a) (Expr.var b)) Model.Eq 1.0);
  Model.set_objective m Model.Maximize (Expr.var a);
  Alcotest.(check bool) "one-hot violation flagged" true
    (has_code (Analyze.lint m) Analyze.Nonbinary_in_one_hot)

let test_analyze_empty_contradictory_row () =
  let m = Model.create () in
  let x = Model.add_var ~ub:1.0 m in
  ignore (Model.add_constraint m (Expr.const 0.0) Model.Ge 1.0);
  ignore (Model.add_constraint m (Expr.var x) Model.Le 1.0);
  Model.set_objective m Model.Maximize (Expr.var x);
  let diags = Analyze.lint m in
  Alcotest.(check bool) "empty row flagged" true (has_code diags Analyze.Empty_row);
  Alcotest.(check bool) "contradictory -> error" true (Analyze.errors diags <> [])

(* ---------- Certify (exact certificate checking) ---------- *)

let certified = function Certify.Certified -> true | _ -> false
let rejected = function Certify.Rejected _ -> true | _ -> false

let small_lp () =
  (* max x + 2y s.t. x + y <= 4, y <= 3, x,y in [0,10] -> (1,3), obj 7. *)
  let m = Model.create () in
  let x = Model.add_var ~ub:10.0 m and y = Model.add_var ~ub:10.0 m in
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Le 4.0);
  ignore (Model.add_constraint m (Expr.var y) Model.Le 3.0);
  Model.set_objective m Model.Maximize
    (Expr.add (Expr.var x) (Expr.var ~coef:2.0 y));
  m

let test_certify_accepts_true_optimum () =
  let m = small_lp () in
  match Simplex.solve m with
  | Simplex.Optimal s ->
    Alcotest.(check bool) "certified" true (certified (Certify.solution m s))
  | _ -> Alcotest.fail "expected optimal"

let test_certify_rejects_nudged_solution () =
  (* The acceptance-criterion test: corrupt an optimal solution by
     nudging one variable off its value and the certificate checker
     must reject it against the original model. *)
  let m = small_lp () in
  match Simplex.solve m with
  | Simplex.Optimal s ->
    let corrupt = { s with Simplex.values = Array.copy s.Simplex.values } in
    corrupt.Simplex.values.(0) <- corrupt.Simplex.values.(0) +. 0.5;
    Alcotest.(check bool) "corrupted solution rejected" true
      (rejected (Certify.solution m corrupt));
    Alcotest.(check bool) "original still certified" true
      (certified (Certify.solution m s))
  | _ -> Alcotest.fail "expected optimal"

let test_certify_rejects_wrong_objective () =
  let m = small_lp () in
  match Simplex.solve m with
  | Simplex.Optimal s ->
    let lie = { s with Simplex.objective = s.Simplex.objective +. 1.0 } in
    Alcotest.(check bool) "objective lie rejected" true
      (rejected (Certify.solution m lie))
  | _ -> Alcotest.fail "expected optimal"

let test_certify_rejects_fractional_integer () =
  let m = Model.create () in
  let x = Model.add_binary m in
  ignore (Model.add_constraint m (Expr.var x) Model.Le 1.0);
  Model.set_objective m Model.Maximize (Expr.var x);
  let s = { Simplex.values = [| 0.5 |]; objective = 0.5; iterations = 0 } in
  Alcotest.(check bool) "fractional rejected as MILP point" true
    (rejected (Certify.solution m s));
  Alcotest.(check bool) "but fine as LP relaxation point" true
    (certified (Certify.solution ~relaxation:true m s))

let test_certify_milp_result () =
  let m = Model.create () in
  let a = Model.add_binary m and b = Model.add_binary m in
  ignore (Model.add_constraint m (Expr.add (Expr.var a) (Expr.var b)) Model.Le 1.0);
  Model.set_objective m Model.Maximize
    (Expr.add (Expr.var ~coef:3.0 a) (Expr.var ~coef:2.0 b));
  let r = Milp.solve ~params:{ Milp.default_params with first_solution = false } m in
  Alcotest.(check bool) "feasible result certified" true
    (certified (Certify.result m r))

let test_certify_infeasible_by_bound () =
  (* x >= 2 with x in [0,1]: a single row proves infeasibility, and
     [Certify.result] must find and verify that bound certificate. *)
  let m = Model.create () in
  let x = Model.add_binary m in
  ignore (Model.add_constraint m (Expr.var x) Model.Ge 2.0);
  (match Certify.find_bound_certificate m with
  | Some 0 -> ()
  | Some r -> Alcotest.failf "wrong certificate row %d" r
  | None -> Alcotest.fail "no bound certificate found");
  Alcotest.(check bool) "Infeasible verdict certified" true
    (certified (Certify.result m Milp.Infeasible))

let test_certify_farkas () =
  (* x + y <= 1 and x + y >= 3 (both in [0,10]): y = (1, -1) aggregates
     to 0 <= -2, an exact contradiction. *)
  let m = Model.create () in
  let x = Model.add_var ~ub:10.0 m and y = Model.add_var ~ub:10.0 m in
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Le 1.0);
  ignore (Model.add_constraint m (Expr.add (Expr.var x) (Expr.var y)) Model.Ge 3.0);
  Alcotest.(check bool) "farkas vector certified" true
    (certified (Certify.farkas m [| 1.0; -1.0 |]));
  (* A sign-violating or non-contradicting vector must be rejected. *)
  Alcotest.(check bool) "bad multiplier rejected" true
    (rejected (Certify.farkas m [| -1.0; -1.0 |]));
  Alcotest.(check bool) "trivial vector rejected" true
    (rejected (Certify.farkas m [| 0.0; 0.0 |]))

(* ---------- LP-format parser round-trip ---------- *)

let test_lp_format_parse_simple () =
  let text =
    "Maximize\n obj: 3 x0 + 2 x1\nSubject To\n c0: x0 + x1 <= 4\n r1: x1 >= 1\n\
     Bounds\n x0 <= 10\n x1 <= 5\nEnd\n"
  in
  match Lp_format.of_string text with
  | Error e -> Alcotest.fail e
  | Ok m ->
    Alcotest.(check int) "vars" 2 (Model.num_vars m);
    Alcotest.(check int) "rows" 2 (Model.num_constraints m);
    Alcotest.(check string) "row name kept" "c0" (Model.row_name m 0);
    let _, rel, rhs = Model.constraint_row m 0 in
    Alcotest.(check bool) "relation" true (rel = Model.Le);
    Alcotest.(check (float 1e-9)) "rhs" 4.0 rhs;
    Alcotest.(check (float 1e-9)) "ub x0" 10.0 (Model.var_ub m 0);
    let dir, _ = Model.objective m in
    Alcotest.(check bool) "maximize" true (dir = Model.Maximize)

let test_lp_format_parse_rejects_garbage () =
  (match Lp_format.of_string "Maximize\n obj: x0 +\nEnd\n" with
  | Ok _ -> Alcotest.fail "dangling '+' accepted"
  | Error _ -> ());
  match Lp_format.of_string "Subject To\n c0: <= 3\nEnd\n" with
  | Ok _ -> Alcotest.fail "empty lhs accepted"
  | Error _ -> ()

let exprs_close a b =
  let ta = Expr.terms a and tb = Expr.terms b in
  List.length ta = List.length tb
  && List.for_all2
       (fun (v1, c1) (v2, c2) -> v1 = v2 && abs_float (c1 -. c2) < 1e-9)
       (List.sort compare ta) (List.sort compare tb)

let bound_close a b = a = b || abs_float (a -. b) < 1e-9

let models_equivalent m m' =
  Model.num_vars m = Model.num_vars m'
  && Model.num_constraints m = Model.num_constraints m'
  && List.for_all
       (fun v ->
         Model.var_kind m v = Model.var_kind m' v
         && bound_close (Model.var_lb m v) (Model.var_lb m' v)
         && bound_close (Model.var_ub m v) (Model.var_ub m' v))
       (List.init (Model.num_vars m) (fun v -> v))
  && List.for_all
       (fun r ->
         let lhs, rel, rhs = Model.constraint_row m r in
         let lhs', rel', rhs' = Model.constraint_row m' r in
         rel = rel' && abs_float (rhs -. rhs') < 1e-9 && exprs_close lhs lhs')
       (List.init (Model.num_constraints m) (fun r -> r))
  &&
  let dir, obj = Model.objective m and dir', obj' = Model.objective m' in
  dir = dir' && exprs_close obj obj'

let prop_lp_format_roundtrip =
  (* Writer -> parser round-trip: counts, kinds, bounds and relations
     survive exactly; coefficients within the %.12g print precision. *)
  QCheck2.Test.make ~name:"lp-format write/parse round-trip" ~count:300
    QCheck2.Gen.int (fun seed ->
      let m = build_2var_lp (random_2var_lp seed) in
      match Lp_format.of_string (Lp_format.to_string m) with
      | Error _ -> false
      | Ok m' -> models_equivalent m m')

let test_lp_format_roundtrip_integer_model () =
  (* Binary + general-integer + free + fixed vars all surviving. *)
  let m = Model.create () in
  let b = Model.add_binary ~name:"pick" m in
  let g = Model.add_var ~kind:Model.Integer ~lb:0.0 ~ub:7.0 m in
  let f = Model.add_var ~lb:neg_infinity m in
  let x = Model.add_var m in
  Model.fix_var m x 2.5;
  ignore
    (Model.add_constraint ~name:"cap" m
       (Expr.sum [ Expr.var b; Expr.var ~coef:2.0 g; Expr.var f ])
       Model.Le 9.0);
  ignore (Model.add_constraint m (Expr.add (Expr.var f) (Expr.var x)) Model.Ge (-2.0));
  Model.set_objective m Model.Maximize (Expr.add (Expr.var b) (Expr.var g));
  match Lp_format.of_string (Lp_format.to_string m) with
  | Error e -> Alcotest.fail e
  | Ok m' ->
    Alcotest.(check bool) "equivalent" true (models_equivalent m m');
    Alcotest.(check string) "row label kept" "cap" (Model.row_name m' 0)

let () =
  Alcotest.run "lp"
    [
      ( "expr",
        [
          Alcotest.test_case "algebra" `Quick test_expr_algebra;
          Alcotest.test_case "eval" `Quick test_expr_eval;
          Alcotest.test_case "scale" `Quick test_expr_scale;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "dantzig example" `Quick test_lp_dantzig;
          Alcotest.test_case "ge rows" `Quick test_lp_ge_rows;
          Alcotest.test_case "eq rows" `Quick test_lp_eq_rows;
          Alcotest.test_case "infeasible" `Quick test_lp_infeasible;
          Alcotest.test_case "unbounded" `Quick test_lp_unbounded;
          Alcotest.test_case "bounded vars" `Quick test_lp_bounded_vars;
          Alcotest.test_case "fixed var" `Quick test_lp_fixed_var;
          Alcotest.test_case "negative rhs" `Quick test_lp_negative_rhs;
          Alcotest.test_case "free variable" `Quick test_lp_free_variable;
          Alcotest.test_case "no constraints" `Quick test_lp_no_constraints;
          Alcotest.test_case "degenerate" `Quick test_lp_degenerate;
          Alcotest.test_case "objective constant" `Quick test_lp_objective_constant;
          Alcotest.test_case "assignment-shaped" `Quick test_lp_assignment_shaped;
          Alcotest.test_case "Beale anti-cycling" `Quick test_lp_beale_cycling;
          Alcotest.test_case "warm restore leaves interior nonbasic" `Quick
            test_reoptimize_restored_bounds_interior;
          Alcotest.test_case "kernel counters" `Quick test_kernel_counters;
        ] );
      ( "presolve",
        [
          Alcotest.test_case "singleton row to bound" `Quick test_presolve_singleton_row;
          Alcotest.test_case "fixed-var substitution" `Quick test_presolve_fixed_substitution;
          Alcotest.test_case "redundant row removal" `Quick test_presolve_redundant_row;
          Alcotest.test_case "forcing row" `Quick test_presolve_forcing_row;
          Alcotest.test_case "binary probing" `Quick test_presolve_probing;
          Alcotest.test_case "detects infeasibility" `Quick test_presolve_detects_infeasible;
        ] );
      ( "milp",
        [
          Alcotest.test_case "knapsack" `Quick test_milp_knapsack;
          Alcotest.test_case "integrality gap" `Quick test_milp_fractional_lp_integer_gap;
          Alcotest.test_case "infeasible" `Quick test_milp_infeasible;
          Alcotest.test_case "assignment" `Quick test_milp_assignment;
          Alcotest.test_case "relax-and-fix matches B&B" `Quick test_relax_and_fix_matches_bb;
          Alcotest.test_case "mixed integer/continuous" `Quick
            test_milp_mixed_integer_continuous;
          Alcotest.test_case "stats show warm branching" `Quick
            test_milp_stats_warm_branching;
          Alcotest.test_case "node limit returns best incumbent" `Quick
            test_milp_node_limit_incumbent;
          Alcotest.test_case "deadline stops the search" `Quick
            test_milp_deadline_stops_search;
        ] );
      ( "lp-format",
        [
          Alcotest.test_case "sections" `Quick test_lp_format_sections;
          Alcotest.test_case "negative coefs" `Quick test_lp_format_negative_coefs;
          Alcotest.test_case "fixed var" `Quick test_lp_format_fixed_var;
          Alcotest.test_case "file write" `Quick test_lp_format_file_roundtrip;
          Alcotest.test_case "parse simple" `Quick test_lp_format_parse_simple;
          Alcotest.test_case "parse rejects garbage" `Quick
            test_lp_format_parse_rejects_garbage;
          Alcotest.test_case "integer-model round-trip" `Quick
            test_lp_format_roundtrip_integer_model;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "clean model" `Quick test_analyze_clean_model;
          Alcotest.test_case "bad bounds" `Quick test_analyze_bad_bounds;
          Alcotest.test_case "duplicate row" `Quick test_analyze_duplicate_row;
          Alcotest.test_case "dangling var" `Quick test_analyze_dangling_var;
          Alcotest.test_case "row infeasible by bounds" `Quick
            test_analyze_row_infeasible_by_bounds;
          Alcotest.test_case "row forced by bounds" `Quick
            test_analyze_row_forced_by_bounds;
          Alcotest.test_case "non-binary in one-hot" `Quick
            test_analyze_nonbinary_in_one_hot;
          Alcotest.test_case "empty contradictory row" `Quick
            test_analyze_empty_contradictory_row;
        ] );
      ( "certify",
        [
          Alcotest.test_case "accepts true optimum" `Quick test_certify_accepts_true_optimum;
          Alcotest.test_case "rejects nudged solution" `Quick
            test_certify_rejects_nudged_solution;
          Alcotest.test_case "rejects wrong objective" `Quick
            test_certify_rejects_wrong_objective;
          Alcotest.test_case "integrality vs relaxation" `Quick
            test_certify_rejects_fractional_integer;
          Alcotest.test_case "milp result" `Quick test_certify_milp_result;
          Alcotest.test_case "infeasible by bound certificate" `Quick
            test_certify_infeasible_by_bound;
          Alcotest.test_case "farkas certificate" `Quick test_certify_farkas;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_simplex_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_simplex_solution_feasible;
          QCheck_alcotest.to_alcotest prop_kernels_agree;
          QCheck_alcotest.to_alcotest prop_presolve_lp_roundtrip;
          QCheck_alcotest.to_alcotest prop_reoptimize_bound_change_matches_cold;
          QCheck_alcotest.to_alcotest prop_reoptimize_rhs_change_matches_cold;
          QCheck_alcotest.to_alcotest prop_milp_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_milp_modes_agree;
          QCheck_alcotest.to_alcotest prop_relax_and_fix_feasible;
          QCheck_alcotest.to_alcotest prop_milp_tighter_budget_never_better;
          QCheck_alcotest.to_alcotest prop_lp_format_roundtrip;
        ] );
    ]
