(* Integration tests for the remap daemon (`agingfp serve`): loopback
   round-trips, the 4xx error matrix, 429 load shedding at capacity,
   SIGTERM drain, and one audit-clean response per injected fault
   class. Every test binds an ephemeral port, runs the server on a
   background thread and drives it through the real socket stack. *)

open Agingfp_cgrra
module Server = Agingfp_serve.Server
module Client = Agingfp_serve.Client
module Inject = Agingfp_serve.Inject
module Http = Agingfp_serve.Http

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let tiny = lazy (Benchmarks.tiny ())
let tiny_text = lazy (Serial.design_to_string (Lazy.force tiny))

let with_server ?config f =
  let base = Option.value config ~default:Server.default_config in
  let server = Server.create ~config:{ base with Server.port = 0 } () in
  let th = Thread.create Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop server;
      Thread.join th)
    (fun () -> f server)

let request ?headers ?(meth = "POST") ?(body = "") ?slow_write_delay_s server path =
  match
    Client.request ?headers ~meth ~body ?slow_write_delay_s ~host:"127.0.0.1"
      ~port:(Server.port server) path
  with
  | Ok r -> r
  | Error msg -> Alcotest.failf "request %s failed: %s" path msg

(* ---------- round trip + warm cache ---------- *)

let test_round_trip () =
  with_server (fun server ->
      let body = Lazy.force tiny_text in
      (* format=mapping: floorplan text in the body, metadata in
         headers — parse and validate it like a downstream tool. *)
      let r = request server ~body "/remap?deadline=5&format=mapping" in
      Alcotest.(check int) "status" 200 r.Client.status;
      Alcotest.(check (option string))
        "audited" (Some "pass")
        (Client.header "x-agingfp-audit" r);
      (match Serial.mapping_of_string r.Client.body with
      | Error msg -> Alcotest.failf "response mapping unparsable: %s" msg
      | Ok m -> (
        match Mapping.validate (Lazy.force tiny) m with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "response mapping invalid: %s" msg));
      Alcotest.(check (option string))
        "first solve is cold" (Some "miss")
        (Client.header "x-agingfp-cache" r);
      (* Same design again: the warm state must be found. *)
      let r2 = request server ~body "/remap?deadline=5" in
      Alcotest.(check int) "repeat status" 200 r2.Client.status;
      Alcotest.(check bool) "repeat audited" true (contains r2.Client.body "\"audit_ok\":true");
      Alcotest.(check (option string))
        "repeat hits warm cache" (Some "hit")
        (Client.header "x-agingfp-cache" r2))

let test_health_and_stats () =
  with_server (fun server ->
      let h = request server ~meth:"GET" "/healthz" in
      Alcotest.(check int) "healthz" 200 h.Client.status;
      let s = request server ~meth:"GET" "/stats" in
      Alcotest.(check int) "stats" 200 s.Client.status;
      Alcotest.(check bool) "stats shape" true (contains s.Client.body "\"cache\":"))

(* ---------- 4xx matrix ---------- *)

let test_client_errors () =
  let config =
    {
      Server.default_config with
      Server.limits = { Http.default_limits with Http.max_body_bytes = 4096 };
    }
  in
  with_server ~config (fun server ->
      let check_status what expect (r : Client.response) =
        Alcotest.(check int) what expect r.Client.status;
        Alcotest.(check bool)
          (what ^ " structured") true
          (contains r.Client.body "\"status\":\"error\"")
      in
      check_status "garbage design" 400 (request server ~body:"garbage" "/remap");
      check_status "bad deadline" 400
        (request server ~body:(Lazy.force tiny_text) "/remap?deadline=banana");
      check_status "oversized deadline" 400
        (request server ~body:(Lazy.force tiny_text) "/remap?deadline=1e9");
      check_status "bad mode" 400
        (request server ~body:(Lazy.force tiny_text) "/remap?mode=melt");
      check_status "unknown endpoint" 404 (request server ~meth:"GET" "/nope");
      check_status "bad method" 405 (request server ~meth:"PUT" "/remap");
      check_status "oversized body" 413
        (request server ~body:(String.make 8192 'x') "/remap");
      (* Truncated mapping section parses as a mapping error, not a
         design error, and never kills the worker. *)
      let broken = Lazy.force tiny_text ^ "agingfp-mapping v1\ncontexts 4\n" in
      check_status "truncated mapping" 400 (request server ~body:broken "/remap");
      (* The server is still healthy after the whole barrage. *)
      let ok = request server ~body:(Lazy.force tiny_text) "/remap?deadline=5" in
      Alcotest.(check int) "still serving" 200 ok.Client.status)

(* ---------- 429 shedding at capacity ---------- *)

let test_shedding () =
  let config =
    {
      Server.default_config with
      Server.workers = 1;
      queue_capacity = 1;
      limits = { Http.default_limits with Http.read_timeout_s = 0.5 };
    }
  in
  with_server ~config (fun server ->
      (* Two idle connections: the first parks the lone worker in its
         read budget, the second fills the queue. *)
      let idle () =
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port server));
        fd
      in
      let a = idle () in
      Thread.delay 0.15;
      let b = idle () in
      Thread.delay 0.15;
      let shed = request server ~meth:"GET" "/healthz" in
      Alcotest.(check int) "shed with 429" 429 shed.Client.status;
      (match Client.header "retry-after" shed with
      | Some v ->
        Alcotest.(check bool) "retry-after positive" true (int_of_string v >= 1)
      | None -> Alcotest.fail "429 without Retry-After");
      Unix.close a;
      Unix.close b;
      (* The idle sockets 408 out of the worker within its read budget;
         afterwards the server accepts work again. *)
      Thread.delay 0.8;
      let ok = request server ~meth:"GET" "/healthz" in
      Alcotest.(check int) "recovers after shed" 200 ok.Client.status)

(* ---------- SIGTERM drain ---------- *)

let test_sigterm_drain () =
  let server = Server.create ~config:{ Server.default_config with Server.port = 0 } () in
  let previous =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Server.request_stop server))
  in
  Fun.protect
    ~finally:(fun () -> Sys.set_signal Sys.sigterm previous)
    (fun () ->
      let th = Thread.create Server.run server in
      let port = Server.port server in
      let r =
        match
          Client.request ~body:(Lazy.force tiny_text) ~host:"127.0.0.1" ~port
            "/remap?deadline=5"
        with
        | Ok r -> r
        | Error msg -> Alcotest.failf "pre-drain request failed: %s" msg
      in
      Alcotest.(check int) "served before drain" 200 r.Client.status;
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      (* [run] returning proves the drain: acceptor gone, queue empty,
         every worker domain joined, pool deregistered. *)
      Thread.join th;
      match
        Client.request ~timeout_s:2.0 ~meth:"GET" ~host:"127.0.0.1" ~port "/healthz"
      with
      | Error _ -> ()
      | Ok r ->
        (* A connection that raced the drain may still be answered —
           but only with the draining 503, never with service. *)
        Alcotest.(check int) "post-drain refusal" 503 r.Client.status)

(* ---------- fault injection: audit-clean under every class ---------- *)

let test_fault_worker_raise () =
  with_server (fun server ->
      Inject.with_spec
        { Inject.none with Inject.seed = 7; p_worker_raise = 1.0 }
        (fun () ->
          let r = request server ~body:(Lazy.force tiny_text) "/remap?deadline=5" in
          Alcotest.(check int) "injected raise -> 500" 500 r.Client.status;
          Alcotest.(check bool) "names the injection" true (contains r.Client.body "injected");
          Alcotest.(check bool)
            "no floorplan shipped" false
            (contains r.Client.body "\"mapping\""));
      (* The worker survived its own explosion. *)
      let r = request server ~body:(Lazy.force tiny_text) "/remap?deadline=5" in
      Alcotest.(check int) "serves after the raise" 200 r.Client.status;
      Alcotest.(check bool) "audited" true (contains r.Client.body "\"audit_ok\":true"))

let test_fault_cache_poison () =
  with_server (fun server ->
      let body = Lazy.force tiny_text in
      let warmup = request server ~body "/remap?deadline=5" in
      Alcotest.(check int) "warmup" 200 warmup.Client.status;
      Inject.with_spec
        { Inject.none with Inject.seed = 7; p_cache_poison = 1.0 }
        (fun () ->
          (* The checked-out entry is corrupted; the server must detect
             the digest mismatch, discard it and solve cold — response
             indistinguishable from a miss, and still audited. *)
          let r = request server ~body "/remap?deadline=5" in
          Alcotest.(check int) "poisoned hit still serves" 200 r.Client.status;
          Alcotest.(check bool) "audited" true (contains r.Client.body "\"audit_ok\":true");
          Alcotest.(check (option string))
            "poisoned entry discarded" (Some "miss")
            (Client.header "x-agingfp-cache" r);
          let s = request server ~meth:"GET" "/stats" in
          Alcotest.(check bool)
            "poison detection counted" true
            (contains s.Client.body "\"poisoned\":1")))

let test_fault_mid_deadline () =
  with_server (fun server ->
      Inject.with_spec
        { Inject.none with Inject.seed = 7; p_mid_deadline = 1.0 }
        (fun () ->
          (* The remaining budget collapses to ~0 just before the
             solve: the ladder must fall to the audited baseline and
             report the degradation honestly — never hang, never ship
             an unaudited floorplan. *)
          let r = request server ~body:(Lazy.force tiny_text) "/remap?deadline=5" in
          Alcotest.(check int) "deadline-forced baseline -> 503" 503 r.Client.status;
          Alcotest.(check bool) "audited" true (contains r.Client.body "\"audit_ok\":true");
          Alcotest.(check bool) "baseline rung" true
            (contains r.Client.body "\"rung\":\"baseline\"");
          Alcotest.(check bool)
            "degradation trail present" true
            (contains r.Client.body "\"degradation\":[{");
          match Client.header "retry-after" r with
          | Some _ -> ()
          | None -> Alcotest.fail "degraded 503 without Retry-After"))

let test_fault_slow_loris () =
  let config =
    {
      Server.default_config with
      Server.limits = { Http.default_limits with Http.read_timeout_s = 0.3 };
    }
  in
  with_server ~config (fun server ->
      let r =
        request server ~body:(Lazy.force tiny_text) ~slow_write_delay_s:0.02
          "/remap?deadline=5"
      in
      Alcotest.(check int) "slow-loris cut off with 408" 408 r.Client.status;
      (* The dawdling client never occupied the worker past its budget:
         a prompt client is served immediately afterwards. *)
      let ok = request server ~meth:"GET" "/healthz" in
      Alcotest.(check int) "healthy after slow-loris" 200 ok.Client.status)

let () =
  Alcotest.run "serve"
    [
      ( "loopback",
        [
          Alcotest.test_case "remap round trip + warm cache" `Quick test_round_trip;
          Alcotest.test_case "health and stats" `Quick test_health_and_stats;
        ] );
      ("errors", [ Alcotest.test_case "4xx matrix" `Quick test_client_errors ]);
      ("overload", [ Alcotest.test_case "429 shedding at capacity" `Quick test_shedding ]);
      ("drain", [ Alcotest.test_case "SIGTERM" `Quick test_sigterm_drain ]);
      ( "faults",
        [
          Alcotest.test_case "worker raise" `Quick test_fault_worker_raise;
          Alcotest.test_case "cache poisoning" `Quick test_fault_cache_poison;
          Alcotest.test_case "mid-request deadline" `Quick test_fault_mid_deadline;
          Alcotest.test_case "slow loris" `Quick test_fault_slow_loris;
        ] );
    ]
