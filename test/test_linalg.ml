(* Tests for dense matrices, the linear solvers backing the thermal
   model, and the sparse LU basis kernel shared with the simplex. *)

module Matrix = Agingfp_linalg.Matrix
module Solve = Agingfp_linalg.Solve
module Lu = Agingfp_linalg.Lu
module Rng = Agingfp_util.Rng

let check_vec msg expected actual =
  Alcotest.(check (array (float 1e-7))) msg expected actual

(* ---------- Matrix ---------- *)

let test_create_zero () =
  let m = Matrix.create ~rows:2 ~cols:3 in
  Alcotest.(check (float 0.)) "zero" 0.0 (Matrix.get m 1 2)

let test_identity () =
  let m = Matrix.identity 3 in
  Alcotest.(check (float 0.)) "diag" 1.0 (Matrix.get m 1 1);
  Alcotest.(check (float 0.)) "off-diag" 0.0 (Matrix.get m 0 2)

let test_of_arrays_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_arrays: ragged rows")
    (fun () -> ignore (Matrix.of_arrays [| [| 1. |]; [| 1.; 2. |] |]))

let test_mul_vec () =
  let m = Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_vec "product" [| 5.; 11. |] (Matrix.mul_vec m [| 1.; 2. |])

let test_transpose () =
  let m = Matrix.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Matrix.transpose m in
  Alcotest.(check int) "rows" 3 (Matrix.rows t);
  Alcotest.(check (float 0.)) "entry" 6.0 (Matrix.get t 2 1)

let test_row_ops () =
  let m = Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Matrix.swap_rows m 0 1;
  Alcotest.(check (float 0.)) "swapped" 3.0 (Matrix.get m 0 0);
  Matrix.scale_row m 0 2.0;
  Alcotest.(check (float 0.)) "scaled" 6.0 (Matrix.get m 0 0);
  Matrix.axpy_row m ~src:0 ~dst:1 1.0;
  Alcotest.(check (float 0.)) "axpy" 7.0 (Matrix.get m 1 0)

(* ---------- Solvers ---------- *)

let random_spd rng n =
  (* A = M^T M + n*I is symmetric positive definite. *)
  let m = Matrix.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Matrix.set m i j (Rng.float rng 2.0 -. 1.0)
    done
  done;
  let a = Matrix.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (Matrix.get m k i *. Matrix.get m k j)
      done;
      Matrix.set a i j (!acc +. if i = j then float_of_int n else 0.0)
    done
  done;
  a

let test_lu_known () =
  let a = Matrix.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  check_vec "solution" [| 1.; 2. |] (Solve.lu a [| 4.; 7. |])

let test_lu_pivoting () =
  (* Zero leading pivot forces a row swap. *)
  let a = Matrix.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_vec "solution" [| 2.; 1. |] (Solve.lu a [| 1.; 2. |])

let test_lu_singular () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Solve.Singular (fun () ->
      ignore (Solve.lu a [| 1.; 2. |]))

let test_cholesky_known () =
  let a = Matrix.of_arrays [| [| 4.; 2. |]; [| 2.; 3. |] |] in
  let x = Solve.cholesky a [| 8.; 7. |] in
  check_vec "solution" [| 1.25; 1.5 |] x

let test_cholesky_not_pd () =
  let a = Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  Alcotest.check_raises "not PD" Solve.Singular (fun () ->
      ignore (Solve.cholesky a [| 1.; 1. |]))

let test_gauss_seidel_grid () =
  (* A small diagonally dominant grid Laplacian, as in the thermal model. *)
  let a =
    Matrix.of_arrays
      [|
        [| 3.; -1.; -1.; 0. |];
        [| -1.; 3.; 0.; -1. |];
        [| -1.; 0.; 3.; -1. |];
        [| 0.; -1.; -1.; 3. |];
      |]
  in
  let b = [| 1.; 2.; 3.; 4. |] in
  let x = Solve.gauss_seidel a b in
  Alcotest.(check bool) "residual small" true (Solve.residual_norm a x b < 1e-6)

let test_solvers_agree () =
  let rng = Rng.create 12 in
  for n = 2 to 12 do
    let a = random_spd rng n in
    let b = Array.init n (fun _ -> Rng.float rng 10.0) in
    let x1 = Solve.lu a b in
    let x2 = Solve.cholesky a b in
    let x3 = Solve.gauss_seidel ~tol:1e-12 a b in
    Array.iteri
      (fun i v ->
        Alcotest.(check (float 1e-5)) "lu vs cholesky" v x2.(i);
        Alcotest.(check (float 1e-4)) "lu vs gauss-seidel" v x3.(i))
      x1
  done

(* ---------- Sparse LU kernel ---------- *)

(* Strictly diagonally dominant, hence nonsingular, and deliberately
   nonsymmetric: the sparse kernel must agree with the dense reference
   on general matrices, not just SPD ones. *)
let random_dd rng n =
  let a = Matrix.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Matrix.set a i j (Rng.float rng 2.0 -. 1.0)
    done;
    Matrix.set a i i (Matrix.get a i i +. float_of_int n)
  done;
  a

let dense_with_column a r col =
  let n = Matrix.rows a in
  let a' = Matrix.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Matrix.set a' i j (if j = r then col.(i) else Matrix.get a i j)
    done
  done;
  a'

let test_sparse_lu_known () =
  let t = Lu.of_matrix (Matrix.of_arrays [| [| 2.; 1. |]; [| 1.; 3. |] |]) in
  check_vec "ftran" [| 1.; 2. |] (Lu.solve t [| 4.; 7. |])

let test_sparse_lu_pivoting () =
  let t = Lu.of_matrix (Matrix.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |]) in
  check_vec "permuted" [| 2.; 1. |] (Lu.solve t [| 1.; 2. |])

let test_sparse_lu_singular () =
  Alcotest.check_raises "singular" Lu.Singular (fun () ->
      ignore (Lu.of_matrix (Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |])))

let test_sparse_lu_btran () =
  (* Aᵀ y = c through the sparse kernel vs the dense LU on Aᵀ. *)
  let a = Matrix.of_arrays [| [| 3.; 1.; 0. |]; [| 0.; 2.; 1. |]; [| 1.; 0.; 4. |] |] in
  let c = [| 1.; -2.; 3. |] in
  check_vec "btran" (Solve.lu (Matrix.transpose a) c)
    (Lu.solve_transposed (Lu.of_matrix a) c)

let test_sparse_lu_update () =
  (* Replace column 1 via a product-form eta; solves must then match
     the dense LU of the explicitly rebuilt matrix. *)
  let a = Matrix.of_arrays [| [| 4.; 1.; 0. |]; [| 1.; 3.; 1. |]; [| 0.; 1.; 5. |] |] in
  let t = Lu.of_matrix a in
  let col = [| 2.; 5.; 1. |] in
  let w = Lu.solve t col in
  Lu.update t ~r:1 ~w;
  Alcotest.(check int) "eta recorded" 1 (Lu.eta_count t);
  let a' = dense_with_column a 1 col in
  let b = [| 1.; 2.; 3. |] in
  check_vec "ftran after eta" (Solve.lu a' b) (Lu.solve t b);
  check_vec "btran after eta"
    (Solve.lu (Matrix.transpose a') b)
    (Lu.solve_transposed t b)

let test_sparse_lu_accounting () =
  let t = Lu.of_matrix (random_dd (Rng.create 7) 6) in
  Alcotest.(check bool) "fill counted" true (Lu.fill t >= 6);
  Alcotest.(check int) "one factorization" 1 (Lu.factor_count t);
  Alcotest.(check int) "no etas yet" 0 (Lu.eta_count t);
  Alcotest.(check int) "eta file empty" 0 (Lu.eta_nnz t)

let prop_sparse_lu_matches_dense =
  QCheck2.Test.make
    ~name:"sparse LU ftran/btran match the dense reference on random systems"
    ~count:200
    QCheck2.Gen.(tup2 int (int_range 1 20))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let a = random_dd rng n in
      let b = Array.init n (fun _ -> Rng.float rng 10.0 -. 5.0) in
      let t = Lu.of_matrix a in
      let close x y = Array.for_all2 (fun u v -> abs_float (u -. v) < 1e-7) x y in
      close (Lu.solve t b) (Solve.lu a b)
      && close (Lu.solve_transposed t b) (Solve.lu (Matrix.transpose a) b))

let prop_sparse_lu_eta_chain =
  QCheck2.Test.make
    ~name:"eta-updated factors track the explicitly refactored matrix" ~count:100
    QCheck2.Gen.(tup3 int (int_range 2 12) (int_range 1 4))
    (fun (seed, n, nup) ->
      let rng = Rng.create seed in
      let a = ref (random_dd rng n) in
      let t = Lu.of_matrix !a in
      for _ = 1 to nup do
        let r = Rng.int rng n in
        let col = Array.init n (fun _ -> Rng.float rng 2.0 -. 1.0) in
        (* Keep the replacement well-conditioned: a dominant entry in
           the pivot row guarantees |w.(r)| clears the tolerance. *)
        col.(r) <- col.(r) +. float_of_int n;
        let w = Lu.solve t col in
        if abs_float w.(r) > 0.01 then begin
          Lu.update t ~r ~w;
          a := dense_with_column !a r col
        end
      done;
      let b = Array.init n (fun _ -> Rng.float rng 6.0 -. 3.0) in
      let x = Lu.solve t b and x_ref = Solve.lu !a b in
      let y = Lu.solve_transposed t b
      and y_ref = Solve.lu (Matrix.transpose !a) b in
      Array.for_all2 (fun u v -> abs_float (u -. v) < 1e-6) x x_ref
      && Array.for_all2 (fun u v -> abs_float (u -. v) < 1e-6) y y_ref)

let prop_lu_solves =
  QCheck2.Test.make ~name:"LU residual is small on random SPD systems" ~count:100
    QCheck2.Gen.(tup2 int (int_range 2 15))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let a = random_spd rng n in
      let b = Array.init n (fun _ -> Rng.float rng 10.0 -. 5.0) in
      let x = Solve.lu a b in
      Solve.residual_norm a x b < 1e-6)

let prop_cholesky_matches_lu =
  QCheck2.Test.make ~name:"Cholesky matches LU on SPD systems" ~count:100
    QCheck2.Gen.(tup2 int (int_range 2 15))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let a = random_spd rng n in
      let b = Array.init n (fun _ -> Rng.float rng 4.0) in
      let x1 = Solve.lu a b and x2 = Solve.cholesky a b in
      Array.for_all2 (fun u v -> abs_float (u -. v) < 1e-5) x1 x2)

let () =
  Alcotest.run "linalg"
    [
      ( "matrix",
        [
          Alcotest.test_case "create zero" `Quick test_create_zero;
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "ragged rejected" `Quick test_of_arrays_ragged;
          Alcotest.test_case "mul_vec" `Quick test_mul_vec;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "row ops" `Quick test_row_ops;
        ] );
      ( "solve",
        [
          Alcotest.test_case "lu known" `Quick test_lu_known;
          Alcotest.test_case "lu pivoting" `Quick test_lu_pivoting;
          Alcotest.test_case "lu singular" `Quick test_lu_singular;
          Alcotest.test_case "cholesky known" `Quick test_cholesky_known;
          Alcotest.test_case "cholesky not PD" `Quick test_cholesky_not_pd;
          Alcotest.test_case "gauss-seidel grid" `Quick test_gauss_seidel_grid;
          Alcotest.test_case "solvers agree" `Quick test_solvers_agree;
        ] );
      ( "sparse-lu",
        [
          Alcotest.test_case "known system" `Quick test_sparse_lu_known;
          Alcotest.test_case "pivoting" `Quick test_sparse_lu_pivoting;
          Alcotest.test_case "singular" `Quick test_sparse_lu_singular;
          Alcotest.test_case "btran" `Quick test_sparse_lu_btran;
          Alcotest.test_case "eta update" `Quick test_sparse_lu_update;
          Alcotest.test_case "accounting" `Quick test_sparse_lu_accounting;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_lu_solves;
          QCheck_alcotest.to_alcotest prop_cholesky_matches_lu;
          QCheck_alcotest.to_alcotest prop_sparse_lu_matches_dense;
          QCheck_alcotest.to_alcotest prop_sparse_lu_eta_chain;
        ] );
    ]
