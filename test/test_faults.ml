(* Fault-injection suite: the seeded injector itself (spec parsing,
   determinism, each class actually firing at the solver layer), and
   the headline robustness property — with a 1 s deadline and any
   single fault class armed, [Remap.solve] on every bundled benchmark
   returns an audit-clean mapping within 2x the deadline, with the
   degradation trail explaining any downgrade.

   The whole suite runs under one fixed seed so a failure reproduces
   bit-for-bit; the [@faults] dune alias runs exactly this binary. *)

open Agingfp_cgrra
module Budget = Agingfp_util.Budget
module Model = Agingfp_lp.Model
module Expr = Agingfp_lp.Expr
module Simplex = Agingfp_lp.Simplex
module Milp = Agingfp_lp.Milp
module Faults = Agingfp_lp.Faults
module Placer = Agingfp_place.Placer
module Remap = Agingfp_floorplan.Remap
module Rotation = Agingfp_floorplan.Rotation
module Audit = Agingfp_floorplan.Audit

let seed = 1729

(* ---------- spec parsing ---------- *)

let test_spec_parse () =
  match Faults.of_string "seed=42,infeas=0.5,raise=0.05" with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check int) "seed" 42 s.Faults.seed;
    Alcotest.(check (float 0.0)) "infeas" 0.5 s.Faults.p_infeasible;
    Alcotest.(check (float 0.0)) "raise" 0.05 s.Faults.p_exception;
    Alcotest.(check (float 0.0)) "iter defaults to 0" 0.0 s.Faults.p_iteration_limit;
    Alcotest.(check (float 0.0)) "pivot defaults to 0" 0.0 s.Faults.p_perturb

let test_spec_rejects_garbage () =
  let bad spec =
    match Faults.of_string spec with
    | Ok _ -> Alcotest.failf "accepted %S" spec
    | Error _ -> ()
  in
  bad "bogus=1";
  bad "iter=notafloat";
  bad "seed=1.5";
  bad "iter"

let test_spec_roundtrip () =
  let spec =
    {
      Faults.seed = 42;
      p_iteration_limit = 0.25;
      p_perturb = 0.125;
      perturb_mag = 0.05;
      p_infeasible = 0.5;
      p_exception = 0.0625;
    }
  in
  match Faults.of_string (Faults.to_string spec) with
  | Error e -> Alcotest.fail e
  | Ok s -> Alcotest.(check bool) "round-trips" true (s = spec)

(* ---------- the injector at the solver layer ---------- *)

(* A small LP with enough pivots that per-pivot fault classes get a
   chance to fire. *)
let pivoty_lp () =
  let m = Model.create () in
  let n = 6 in
  let vars = Array.init n (fun _ -> Model.add_var ~ub:4.0 m) in
  for i = 0 to n - 2 do
    ignore
      (Model.add_constraint m
         (Expr.add (Expr.var vars.(i)) (Expr.var ~coef:2.0 vars.(i + 1)))
         Model.Le
         (5.0 +. float_of_int i))
  done;
  Model.set_objective m Model.Maximize
    (Expr.sum (Array.to_list (Array.mapi (fun i v -> Expr.var ~coef:(1.0 +. float_of_int i) v) vars)));
  m

let test_spurious_iteration_limit_fires () =
  Faults.with_spec { Faults.none with seed; p_iteration_limit = 1.0 } (fun () ->
      match Simplex.solve (pivoty_lp ()) with
      | Simplex.Iteration_limit -> ()
      | s -> Alcotest.failf "expected Iteration_limit, got %a" Simplex.pp_status s)

let test_forged_infeasibility_fires () =
  Faults.with_spec { Faults.none with seed; p_infeasible = 1.0 } (fun () ->
      match Simplex.solve (pivoty_lp ()) with
      | Simplex.Infeasible -> ()
      | s -> Alcotest.failf "expected forged Infeasible, got %a" Simplex.pp_status s)

let test_injected_exception_escapes_simplex () =
  let raised =
    try
      Faults.with_spec { Faults.none with seed; p_exception = 1.0 } (fun () ->
          ignore (Simplex.solve (pivoty_lp ()));
          false)
    with Faults.Injected _ -> true
  in
  Alcotest.(check bool) "Injected escapes a bare Simplex.solve" true raised

let test_perturbed_pivots_still_terminate () =
  (* Perturbed step lengths corrupt the numerics, not the control
     flow: the solve must still return some status, and the counter
     must prove perturbations actually happened. *)
  let status, fired =
    Faults.with_spec { Faults.none with seed; p_perturb = 1.0; perturb_mag = 0.05 }
      (fun () ->
        let s = Simplex.solve (pivoty_lp ()) in
        (s, Faults.fired ()))
  in
  Alcotest.(check bool) "pivots were perturbed" true (fired.Faults.perturbations > 0);
  Alcotest.(check bool) "solve returned a status" true
    (match status with
    | Simplex.Optimal _ | Simplex.Infeasible | Simplex.Unbounded
    | Simplex.Iteration_limit | Simplex.Deadline | Simplex.Fault _ ->
      true)

let test_injection_deterministic () =
  let spec =
    {
      Faults.seed;
      p_iteration_limit = 0.3;
      p_perturb = 0.2;
      perturb_mag = 0.05;
      p_infeasible = 0.2;
      p_exception = 0.05;
    }
  in
  let run () =
    Faults.with_spec spec (fun () ->
        let tags =
          List.init 20 (fun _ ->
              try
                match Simplex.solve (pivoty_lp ()) with
                | Simplex.Optimal s -> Printf.sprintf "optimal %.9f" s.Simplex.objective
                | Simplex.Infeasible -> "infeasible"
                | Simplex.Unbounded -> "unbounded"
                | Simplex.Iteration_limit -> "iteration-limit"
                | Simplex.Deadline -> "deadline"
                | Simplex.Fault w -> "fault " ^ w
              with Faults.Injected w -> "raised " ^ w)
        in
        (tags, Faults.fired ()))
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "same seed, same fault stream, same outcomes" true (a = b)

let test_mid_solve_fault_keeps_milp_incumbent () =
  (* Milp converts an escaped Injected into a Fault stop but must not
     lose an incumbent it already has. Force the fault late by arming
     the injector low-probability: across the node sequence a fault
     eventually fires, and whenever the result is Feasible the stats
     stop reason reflects the interruption honestly. *)
  let m = Model.create () in
  let vars = Array.init 8 (fun _ -> Model.add_binary m) in
  ignore
    (Model.add_constraint m
       (Expr.sum (Array.to_list (Array.mapi (fun i v -> Expr.var ~coef:(float_of_int (1 + (i mod 4))) v) vars)))
       Model.Le 7.0);
  Model.set_objective m Model.Maximize
    (Expr.sum (Array.to_list (Array.mapi (fun i v -> Expr.var ~coef:(float_of_int (8 - i)) v) vars)));
  let spec = { Faults.none with seed; p_exception = 0.02 } in
  let params = { Milp.default_params with first_solution = false; presolve = false } in
  Faults.with_spec spec (fun () ->
      let result, stats = Milp.solve_with_stats ~params m in
      match (result, stats.Milp.stop) with
      | _, Budget.Optimal ->
        (* The fault stream happened not to fire before the proof
           finished — legal; the solve must then be a normal one. *)
        Alcotest.(check bool) "completed solve is feasible" true
          (match result with Milp.Feasible _ -> true | _ -> false)
      | Milp.Feasible _, Budget.Fault _ -> ()
      | Milp.Unknown, Budget.Fault _ -> ()
      | r, stop ->
        Alcotest.failf "unexpected (result, stop) = (%s, %s)"
          (match r with
          | Milp.Feasible _ -> "Feasible"
          | Milp.Infeasible -> "Infeasible"
          | Milp.Unknown -> "Unknown")
          (Budget.stop_reason_to_string stop))

(* ---------- the deadline at the simplex layer ---------- *)

let test_simplex_expired_budget_stops () =
  let params =
    { Simplex.default_params with Simplex.budget = Budget.create ~deadline_s:0.0 () }
  in
  match Simplex.solve ~params (pivoty_lp ()) with
  | Simplex.Deadline -> ()
  | s -> Alcotest.failf "expected Deadline, got %a" Simplex.pp_status s

(* ---------- the headline property: the ladder survives ---------- *)

let deadline_s = 1.0

let fault_classes =
  [
    ("none", Faults.none);
    ("iter", { Faults.none with seed; p_iteration_limit = 1.0 });
    ("pivot", { Faults.none with seed; p_perturb = 1.0; perturb_mag = 0.05 });
    ("infeas", { Faults.none with seed; p_infeasible = 1.0 });
    ("raise", { Faults.none with seed; p_exception = 0.1 });
  ]

let benchmarks =
  lazy
    (("tiny", Benchmarks.tiny ())
    :: Array.to_list
         (Array.map
            (fun (s : Benchmarks.spec) -> (s.Benchmarks.bname, Benchmarks.generate s))
            Benchmarks.table1))

let survives name design spec () =
  let baseline = Placer.aging_unaware design in
  let params = { Remap.default_params with Remap.deadline_s = Some deadline_s } in
  let wall = Budget.create () in
  let r =
    Faults.with_spec spec (fun () ->
        Remap.solve ~params ~mode:Rotation.Freeze design baseline)
  in
  let elapsed = Budget.elapsed_s wall in
  Alcotest.(check bool)
    (Printf.sprintf "%s finished within 2x deadline (%.2fs)" name elapsed)
    true
    (elapsed <= 2.0 *. deadline_s);
  Alcotest.(check bool) (name ^ " audit clean") true (Audit.ok r.Remap.audit);
  Alcotest.(check bool) (name ^ " mapping valid") true
    (Mapping.validate design r.Remap.mapping = Ok ());
  Alcotest.(check bool) (name ^ " stress never above baseline") true
    (Stress.max_accumulated design r.Remap.mapping <= r.Remap.st_up +. 1e-6);
  if r.Remap.rung <> Remap.Full_milp then
    Alcotest.(check bool) (name ^ " degradation trail populated") true
      (r.Remap.degradation <> [])

let ladder_tests =
  List.concat_map
    (fun (cname, spec) ->
      List.map
        (fun (bname, design) ->
          let name = Printf.sprintf "%s/%s" cname bname in
          Alcotest.test_case name `Slow (survives name design spec))
        (Lazy.force benchmarks))
    fault_classes

let () =
  Alcotest.run "faults"
    [
      ( "spec",
        [
          Alcotest.test_case "parse" `Quick test_spec_parse;
          Alcotest.test_case "rejects garbage" `Quick test_spec_rejects_garbage;
          Alcotest.test_case "round-trip" `Quick test_spec_roundtrip;
        ] );
      ( "injector",
        [
          Alcotest.test_case "spurious iteration limit" `Quick
            test_spurious_iteration_limit_fires;
          Alcotest.test_case "forged infeasibility" `Quick
            test_forged_infeasibility_fires;
          Alcotest.test_case "mid-solve exception escapes simplex" `Quick
            test_injected_exception_escapes_simplex;
          Alcotest.test_case "perturbed pivots terminate" `Quick
            test_perturbed_pivots_still_terminate;
          Alcotest.test_case "deterministic per seed" `Quick
            test_injection_deterministic;
          Alcotest.test_case "milp converts fault, keeps incumbent" `Quick
            test_mid_solve_fault_keeps_milp_incumbent;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "expired budget stops simplex" `Quick
            test_simplex_expired_budget_stops;
        ] );
      ("ladder", ladder_tests);
    ]
