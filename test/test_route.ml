(* Tests for the PathFinder-style channel router. *)

open Agingfp_cgrra
module Router = Agingfp_route.Router
module Placer = Agingfp_place.Placer
module Analysis = Agingfp_timing.Analysis
module Rng = Agingfp_util.Rng

let mk_op id kind = Op.make ~id ~kind ~bitwidth:16

(* A context with [edges] as the netlist, placed by [place : op -> pe]. *)
let design_of ~dim ops edges =
  Design.create ~name:"r" ~fabric:(Fabric.create ~dim) [| Dfg.create ~ops ~edges |]

let chain_design dim =
  (* input -> add -> output in one row. *)
  let ops = [| mk_op 0 Op.Input; mk_op 1 Op.Add; mk_op 2 Op.Output |] in
  design_of ~dim ops [ (0, 1); (1, 2) ]

let route_valid design (r : Router.result) =
  Array.iteri
    (fun i route ->
      let net = r.Router.nets.(i) in
      Alcotest.(check int) "starts at src" net.Router.src_pe route.(0);
      Alcotest.(check int) "ends at dst" net.Router.dst_pe route.(Array.length route - 1);
      let fabric = Design.fabric design in
      for k = 0 to Array.length route - 2 do
        Alcotest.(check int) "consecutive cells adjacent" 1
          (Fabric.distance fabric route.(k) route.(k + 1))
      done)
    r.Router.routes

let test_route_simple_chain () =
  let design = chain_design 4 in
  let m = Mapping.create (fun _ op -> op) design in
  let r = Router.route_context design m ~ctx:0 in
  Alcotest.(check int) "2 nets" 2 (Array.length r.Router.nets);
  Alcotest.(check int) "wirelength = manhattan" r.Router.total_manhattan
    r.Router.total_routed_length;
  Alcotest.(check (float 1e-9)) "detour 1.0" 1.0 (Router.detour_factor r);
  route_valid design r

let test_route_length_lower_bound () =
  let design = chain_design 4 in
  let m = Mapping.create (fun _ op -> op * 5) design in
  let r = Router.route_context design m ~ctx:0 in
  Alcotest.(check bool) "routed >= manhattan" true
    (r.Router.total_routed_length >= r.Router.total_manhattan);
  route_valid design r

let test_route_congestion_forces_detour () =
  (* Several parallel nets across the same cut with capacity 1: at
     least one must detour, but all must still complete legally. *)
  let ops =
    Array.init 8 (fun i -> mk_op i (if i < 4 then Op.Input else Op.Output))
  in
  let edges = [ (0, 4); (1, 5); (2, 6); (3, 7) ] in
  let design = design_of ~dim:4 ops edges in
  (* Sources in column 0, sinks in column 2, all in row 0..3 -> the
     vertical cut between columns has to carry all four nets. *)
  let m =
    Mapping.create
      (fun _ op ->
        let fabric = Design.fabric design in
        if op < 4 then Fabric.pe_of_coord fabric (Agingfp_util.Coord.make 0 op)
        else Fabric.pe_of_coord fabric (Agingfp_util.Coord.make 2 (op - 4)))
      design
  in
  let params = { Router.default_params with Router.capacity = 1 } in
  let r = Router.route_context ~params design m ~ctx:0 in
  route_valid design r;
  Alcotest.(check int) "no overuse with capacity 1" 0 r.Router.overused_channels;
  Alcotest.(check bool) "usage within capacity" true (r.Router.max_channel_usage <= 1)

let test_route_zero_length_net_rejected () =
  let design = chain_design 4 in
  let m = Mapping.of_arrays [| [| 0; 0; 1 |] |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Router.route_context design m ~ctx:0);
       false
     with Invalid_argument _ -> true)

let test_route_all_contexts () =
  let design = Benchmarks.tiny () in
  let m = Placer.aging_unaware design in
  let results = Router.route_all design m in
  Alcotest.(check int) "one per context" (Design.num_contexts design)
    (Array.length results);
  Array.iter (fun r -> route_valid design r) results

let test_routed_cpd_ge_manhattan_cpd () =
  let design = Benchmarks.tiny () in
  let m = Placer.aging_unaware design in
  let results = Router.route_all design m in
  Alcotest.(check bool) "routed CPD >= model CPD" true
    (Router.routed_cpd design results >= Analysis.cpd design m -. 1e-9)

let test_route_deterministic () =
  let design = Benchmarks.tiny () in
  let m = Placer.aging_unaware design in
  let a = Router.route_all design m and b = Router.route_all design m in
  Array.iteri
    (fun i ra ->
      Alcotest.(check bool) "same routes" true (ra.Router.routes = b.(i).Router.routes))
    a

let test_route_generous_capacity_shortest () =
  (* With very generous channels every net routes at Manhattan length. *)
  let design = Benchmarks.tiny () in
  let m = Placer.aging_unaware design in
  let params = { Router.default_params with Router.capacity = 64 } in
  Array.iter
    (fun r -> Alcotest.(check (float 1e-9)) "no detours" 1.0 (Router.detour_factor r))
    (Router.route_all ~params design m)

let prop_random_placements_route =
  QCheck2.Test.make ~name:"random valid placements route legally" ~count:40
    QCheck2.Gen.int
    (fun seed ->
      let rng = Rng.create seed in
      let design = Benchmarks.tiny () in
      let npes = 16 in
      let m =
        Mapping.of_arrays
          (Array.init (Design.num_contexts design) (fun c ->
               let perm = Array.init npes (fun i -> i) in
               Rng.shuffle rng perm;
               Array.init (Dfg.num_ops (Design.context design c)) (fun op -> perm.(op))))
      in
      let results = Router.route_all design m in
      Array.for_all
        (fun (r : Router.result) ->
          r.Router.total_routed_length >= r.Router.total_manhattan
          && Array.for_all (fun route -> Array.length route >= 2) r.Router.routes)
        results)

let () =
  Alcotest.run "route"
    [
      ( "router",
        [
          Alcotest.test_case "simple chain" `Quick test_route_simple_chain;
          Alcotest.test_case "length lower bound" `Quick test_route_length_lower_bound;
          Alcotest.test_case "congestion detour" `Quick test_route_congestion_forces_detour;
          Alcotest.test_case "zero-length net rejected" `Quick
            test_route_zero_length_net_rejected;
          Alcotest.test_case "all contexts" `Quick test_route_all_contexts;
          Alcotest.test_case "routed CPD bound" `Quick test_routed_cpd_ge_manhattan_cpd;
          Alcotest.test_case "deterministic" `Quick test_route_deterministic;
          Alcotest.test_case "generous capacity" `Quick test_route_generous_capacity_shortest;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_random_placements_route ]);
    ]
