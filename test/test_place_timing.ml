(* Tests for the baseline placer and the static timing analyzer. *)

open Agingfp_cgrra
module Placer = Agingfp_place.Placer
module Analysis = Agingfp_timing.Analysis
module Rng = Agingfp_util.Rng

let mk_op id kind = Op.make ~id ~kind ~bitwidth:16

(* A 2-in 2-out two-layer DFG with known structure. *)
let small_dfg () =
  let ops =
    [|
      mk_op 0 Op.Input; mk_op 1 Op.Input; mk_op 2 Op.Add; mk_op 3 Op.Shift;
      mk_op 4 Op.Output; mk_op 5 Op.Output;
    |]
  in
  Dfg.create ~ops ~edges:[ (0, 2); (1, 2); (1, 3); (2, 4); (3, 5) ]

let small_design () =
  Design.create ~name:"pt" ~fabric:(Fabric.create ~dim:8) [| small_dfg (); small_dfg () |]

(* ---------- placer ---------- *)

let test_greedy_valid () =
  let d = small_design () in
  let m = Placer.greedy d in
  Alcotest.(check bool) "valid" true (Mapping.validate d m = Ok ())

let test_greedy_valid_on_suite () =
  List.iter
    (fun name ->
      let spec = Option.get (Benchmarks.find name) in
      let d = Benchmarks.generate spec in
      let m = Placer.greedy d in
      Alcotest.(check bool) (name ^ " greedy valid") true (Mapping.validate d m = Ok ()))
    [ "B1"; "B10"; "B19"; "B13" ]

let test_anneal_valid_and_no_worse () =
  let d = small_design () in
  let g = Placer.greedy d in
  let a = Placer.anneal d g in
  Alcotest.(check bool) "valid" true (Mapping.validate d a = Ok ());
  for c = 0 to Design.num_contexts d - 1 do
    Alcotest.(check bool) "cost not much worse" true
      (Placer.context_cost d a c <= Placer.context_cost d g c +. 1e-6)
  done

let test_anneal_deterministic () =
  let d = small_design () in
  let m1 = Placer.aging_unaware d in
  let m2 = Placer.aging_unaware d in
  Alcotest.(check bool) "same result" true (Mapping.equal m1 m2)

let test_baseline_compact () =
  (* The aging-unaware baseline concentrates usage: its max accumulated
     stress must clearly exceed the fabric mean (that concentration is
     what the paper's method repairs). *)
  let spec = Option.get (Benchmarks.find "B10") in
  let d = Benchmarks.generate spec in
  let m = Placer.aging_unaware d in
  Alcotest.(check bool) "concentrated" true
    (Stress.max_accumulated d m > 1.5 *. Stress.mean_accumulated d m)

let test_placer_seed_changes_layout () =
  let d = small_design () in
  let p1 = { Placer.default_params with seed = 1 } in
  let p2 = { Placer.default_params with seed = 2 } in
  let m1 = Placer.aging_unaware ~params:p1 d in
  let m2 = Placer.aging_unaware ~params:p2 d in
  (* Not guaranteed different in principle, but with these seeds it is;
     catching accidental seed-ignoring regressions. *)
  Alcotest.(check bool) "different layouts" true (not (Mapping.equal m1 m2))

(* ---------- timing ---------- *)

let line_mapping d =
  (* Place ops left-to-right on row 0/1: op i of ctx c at (i, c). *)
  Mapping.create
    (fun c op -> Fabric.pe_of_coord (Design.fabric d) (Agingfp_util.Coord.make op c))
    d

let test_node_delay_matches_chars () =
  let d = small_design () in
  let dfg = Design.context d 0 in
  for op = 0 to Dfg.num_ops dfg - 1 do
    Alcotest.(check (float 1e-9)) "node delay"
      (Chars.pe_delay_ns (Design.chars d) (Dfg.op dfg op))
      (Analysis.node_delay d ~ctx:0 ~op)
  done

let test_cpd_hand_computed () =
  let d = small_design () in
  let m = line_mapping d in
  let chars = Design.chars d in
  let delay op = Chars.pe_delay_ns chars (Dfg.op (Design.context d 0) op) in
  let wire len = Chars.wire_delay_ns chars len in
  (* Paths in ctx 0 (ops at x = op index, row 0):
     0->2->4: d0 + w(2) + d2 + w(2) + d4
     1->2->4: d1 + w(1) + d2 + w(2) + d4
     1->3->5: d1 + w(2) + d3 + w(2) + d5 *)
  let p1 = delay 0 +. wire 2 +. delay 2 +. wire 2 +. delay 4 in
  let p2 = delay 1 +. wire 1 +. delay 2 +. wire 2 +. delay 4 in
  let p3 = delay 1 +. wire 2 +. delay 3 +. wire 2 +. delay 5 in
  let expected = max p1 (max p2 p3) in
  Alcotest.(check (float 1e-9)) "cpd" expected (Analysis.context_cpd d m 0);
  Alcotest.(check (float 1e-9)) "design cpd = max over ctx" expected (Analysis.cpd d m)

let test_k_longest_ordering_and_count () =
  let d = small_design () in
  let m = line_mapping d in
  let paths = Analysis.k_longest d m ~ctx:0 10 in
  Alcotest.(check int) "3 paths total" 3 (List.length paths);
  let delays = List.map (fun (p : Analysis.path) -> p.Analysis.delay_ns) paths in
  Alcotest.(check bool) "non-increasing" true
    (List.sort (fun a b -> Float.compare b a) delays = delays);
  (* Each reported delay is the exact re-computed path delay. *)
  List.iter
    (fun (p : Analysis.path) ->
      Alcotest.(check (float 1e-9)) "consistent" p.Analysis.delay_ns
        (Analysis.path_delay d m p))
    paths

let test_k_longest_respects_k () =
  let d = small_design () in
  let m = line_mapping d in
  Alcotest.(check int) "k=2" 2 (List.length (Analysis.k_longest d m ~ctx:0 2))

let test_k_longest_min_delay_filter () =
  let d = small_design () in
  let m = line_mapping d in
  let cpd = Analysis.context_cpd d m 0 in
  let paths = Analysis.k_longest d m ~ctx:0 ~min_delay:(cpd -. 1e-9) 10 in
  Alcotest.(check bool) "only critical" true
    (List.for_all (fun (p : Analysis.path) -> p.Analysis.delay_ns >= cpd -. 1e-9) paths);
  Alcotest.(check bool) "at least one" true (paths <> [])

let test_critical_paths () =
  let d = small_design () in
  let m = line_mapping d in
  let cpd = Analysis.context_cpd d m 0 in
  let crit = Analysis.critical_paths d m ~ctx:0 in
  Alcotest.(check bool) "non-empty" true (crit <> []);
  List.iter
    (fun (p : Analysis.path) ->
      Alcotest.(check (float 1e-9)) "achieves cpd" cpd p.Analysis.delay_ns)
    crit

let test_wire_length () =
  let d = small_design () in
  let m = line_mapping d in
  let paths = Analysis.k_longest d m ~ctx:0 1 in
  match paths with
  | [ p ] ->
    let len = Analysis.wire_length d m p in
    Alcotest.(check bool) "positive" true (len > 0);
    (* Re-derive: delay = pe sum + unit * len. *)
    Alcotest.(check (float 1e-9)) "consistent decomposition" p.Analysis.delay_ns
      (Analysis.pe_delay_sum d p
      +. Chars.wire_delay_ns (Design.chars d) len)
  | _ -> Alcotest.fail "expected one path"

let test_monitored_paths_within () =
  let spec = Option.get (Benchmarks.find "B1") in
  let d = Benchmarks.generate spec in
  let m = Placer.aging_unaware d in
  let cpd = Analysis.cpd d m in
  for ctx = 0 to Design.num_contexts d - 1 do
    let paths = Analysis.monitored_paths d m ~ctx () in
    List.iter
      (fun (p : Analysis.path) ->
        Alcotest.(check bool) "within 20% of CPD" true
          (p.Analysis.delay_ns >= (0.8 *. cpd) -. 1e-9))
      paths
  done

(* ---------- properties ---------- *)

let prop_cpd_invariant_under_translation =
  (* Translating a whole context rigidly cannot change its CPD. *)
  QCheck2.Test.make ~name:"CPD invariant under rigid translation" ~count:100
    QCheck2.Gen.(tup2 (int_bound 1) (int_bound 1))
    (fun (dx, dy) ->
      let d = small_design () in
      let m = line_mapping d in
      let translated =
        Mapping.create
          (fun c op ->
            let fabric = Design.fabric d in
            let p = Fabric.coord_of_pe fabric (Mapping.pe_of m ~ctx:c ~op) in
            Fabric.pe_of_coord fabric
              (Agingfp_util.Coord.make (p.Agingfp_util.Coord.x + dx)
                 (p.Agingfp_util.Coord.y + dy)))
          d
      in
      abs_float (Analysis.cpd d m -. Analysis.cpd d translated) < 1e-9)

let prop_k_longest_monotone_in_k =
  QCheck2.Test.make ~name:"k-longest: larger k extends the same prefix" ~count:50
    QCheck2.Gen.(int_range 1 3)
    (fun k ->
      let d = small_design () in
      let m = line_mapping d in
      let a = Analysis.k_longest d m ~ctx:0 k in
      let b = Analysis.k_longest d m ~ctx:0 (k + 1) in
      let delays l = List.map (fun (p : Analysis.path) -> p.Analysis.delay_ns) l in
      let da = delays a and db = delays b in
      List.length da <= List.length db
      && List.for_all2 (fun x y -> abs_float (x -. y) < 1e-9) da
           (List.filteri (fun i _ -> i < List.length da) db))

let prop_random_mapping_cpd_ge_pe_delays =
  QCheck2.Test.make ~name:"CPD at least the PE-delay-only bound" ~count:100
    QCheck2.Gen.int
    (fun seed ->
      let d = small_design () in
      let rng = Rng.create seed in
      (* Random valid mapping: shuffle PEs per context. *)
      let npes = Fabric.num_pes (Design.fabric d) in
      let m =
        Mapping.of_arrays
          (Array.init (Design.num_contexts d) (fun c ->
               let perm = Array.init npes (fun i -> i) in
               Rng.shuffle rng perm;
               Array.init (Dfg.num_ops (Design.context d c)) (fun op -> perm.(op))))
      in
      match Mapping.validate d m with
      | Error _ -> false
      | Ok () ->
        (* Wireless lower bound: longest chain of PE delays. *)
        let bound ctx =
          let dfg = Design.context d ctx in
          let n = Dfg.num_ops dfg in
          let dp = Array.make n 0.0 in
          Array.iter
            (fun v ->
              let own = Analysis.node_delay d ~ctx ~op:v in
              let best =
                List.fold_left (fun acc p -> max acc dp.(p)) 0.0 (Dfg.preds dfg v)
              in
              dp.(v) <- own +. best)
            (Dfg.topological_order dfg);
          Array.fold_left max 0.0 dp
        in
        Analysis.cpd d m >= max (bound 0) (bound 1) -. 1e-9)

let () =
  Alcotest.run "place+timing"
    [
      ( "placer",
        [
          Alcotest.test_case "greedy valid" `Quick test_greedy_valid;
          Alcotest.test_case "greedy valid on suite" `Quick test_greedy_valid_on_suite;
          Alcotest.test_case "anneal valid, no worse" `Quick test_anneal_valid_and_no_worse;
          Alcotest.test_case "deterministic" `Quick test_anneal_deterministic;
          Alcotest.test_case "baseline concentrates stress" `Quick test_baseline_compact;
          Alcotest.test_case "seed changes layout" `Quick test_placer_seed_changes_layout;
        ] );
      ( "timing",
        [
          Alcotest.test_case "node delay" `Quick test_node_delay_matches_chars;
          Alcotest.test_case "hand-computed CPD" `Quick test_cpd_hand_computed;
          Alcotest.test_case "k-longest order/count" `Quick
            test_k_longest_ordering_and_count;
          Alcotest.test_case "k-longest respects k" `Quick test_k_longest_respects_k;
          Alcotest.test_case "min-delay filter" `Quick test_k_longest_min_delay_filter;
          Alcotest.test_case "critical paths" `Quick test_critical_paths;
          Alcotest.test_case "wire length decomposition" `Quick test_wire_length;
          Alcotest.test_case "monitored within 20%" `Quick test_monitored_paths_within;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_cpd_invariant_under_translation;
          QCheck_alcotest.to_alcotest prop_k_longest_monotone_in_k;
          QCheck_alcotest.to_alcotest prop_random_mapping_cpd_ge_pe_delays;
        ] );
    ]
