(* Tests for the explicit branch & bound tree: traversal strategies,
   pseudocost vs most-fractional branching, the global dual bound and
   gap termination, and the node store's deterministic ordering. *)

module Expr = Agingfp_lp.Expr
module Model = Agingfp_lp.Model
module Simplex = Agingfp_lp.Simplex
module Milp = Agingfp_lp.Milp
module Node_store = Agingfp_lp.Node_store
module Brancher = Agingfp_lp.Brancher
module Budget = Agingfp_util.Budget
module Rng = Agingfp_util.Rng
module Cuts = Agingfp_lp.Cuts
module Heuristics = Agingfp_lp.Heuristics
module Certify = Agingfp_lp.Certify

let get_feasible = function
  | Milp.Feasible s -> s
  | r -> Alcotest.failf "expected feasible, got %a" Milp.pp_result r

(* Random binary Maximize models, same family as test_lp's brute-force
   cross-check: small enough to enumerate, contested enough to branch. *)
let random_model rng =
  let nvars = 3 + Rng.int rng 5 in
  let ncons = 1 + Rng.int rng 4 in
  let cons =
    List.init ncons (fun _ ->
        let coefs = List.init nvars (fun v -> (v, float_of_int (Rng.int rng 7 - 3))) in
        let rhs = float_of_int (Rng.int rng 8 - 2) in
        let rel = if Rng.int rng 3 = 0 then Model.Ge else Model.Le in
        (coefs, rel, rhs))
  in
  let obj = List.init nvars (fun v -> (v, float_of_int (Rng.int rng 11 - 5))) in
  let m = Model.create () in
  let vars = Array.init nvars (fun _ -> Model.add_binary m) in
  List.iter
    (fun (coefs, rel, rhs) ->
      let lhs = Expr.sum (List.map (fun (v, c) -> Expr.var ~coef:c vars.(v)) coefs) in
      ignore (Model.add_constraint m lhs rel rhs))
    cons;
  Model.set_objective m Model.Maximize
    (Expr.sum (List.map (fun (v, c) -> Expr.var ~coef:c vars.(v)) obj));
  m

let base_params = { Milp.default_params with Milp.first_solution = false }

(* A fixed Eq.(3)-flavoured knapsack/assignment mix big enough that the
   search actually builds a tree (the tiny random models often solve at
   the root). *)
let structured_model () =
  let m = Model.create () in
  let n_ops = 7 and n_pes = 4 in
  let x = Array.init n_ops (fun _ -> Array.init n_pes (fun _ -> Model.add_binary m)) in
  for op = 0 to n_ops - 1 do
    ignore
      (Model.add_constraint m
         (Expr.sum (List.init n_pes (fun pe -> Expr.var x.(op).(pe))))
         Model.Eq 1.0)
  done;
  let stress op = 1.0 +. float_of_int ((op * 7) mod 5) /. 4.0 in
  for pe = 0 to n_pes - 1 do
    ignore
      (Model.add_constraint m
         (Expr.sum (List.init n_ops (fun op -> Expr.var ~coef:(stress op) x.(op).(pe))))
         Model.Le 3.6)
  done;
  Model.set_objective m Model.Minimize
    (Expr.sum
       (List.concat
          (List.init n_ops (fun op ->
               List.init n_pes (fun pe ->
                   Expr.var
                     ~coef:(float_of_int (((op * 13) + (pe * 5)) mod 7) /. 7.0)
                     x.(op).(pe))))));
  m

(* ---------- traversal / branching equivalence ---------- *)

let prop_traversals_agree =
  QCheck2.Test.make ~name:"traversal strategies agree at mip_gap = 0" ~count:120
    QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      let m = random_model rng in
      let solve traversal =
        Milp.solve ~params:{ base_params with Milp.traversal } m
      in
      match
        (solve Node_store.Dfs, solve Node_store.Best_first, solve Node_store.Hybrid)
      with
      | Milp.Feasible a, Milp.Feasible b, Milp.Feasible c ->
        abs_float (a.Simplex.objective -. b.Simplex.objective) < 1e-6
        && abs_float (a.Simplex.objective -. c.Simplex.objective) < 1e-6
      | Milp.Infeasible, Milp.Infeasible, Milp.Infeasible -> true
      | _ -> false)

let prop_branching_rules_agree =
  QCheck2.Test.make ~name:"pseudocost and most-fractional agree" ~count:120
    QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      let m = random_model rng in
      let solve branching =
        Milp.solve ~params:{ base_params with Milp.branching } m
      in
      match (solve Brancher.Pseudocost, solve Brancher.Most_fractional) with
      | Milp.Feasible a, Milp.Feasible b ->
        abs_float (a.Simplex.objective -. b.Simplex.objective) < 1e-6
      | Milp.Infeasible, Milp.Infeasible -> true
      | _ -> false)

(* Every traversal x branching x jobs combination lands on the same
   optimum of the structured instance. *)
let test_combination_matrix () =
  let m = structured_model () in
  let reference =
    (get_feasible (Milp.solve ~params:base_params m)).Simplex.objective
  in
  List.iter
    (fun traversal ->
      List.iter
        (fun branching ->
          List.iter
            (fun jobs ->
              let params = { base_params with Milp.traversal; branching; jobs } in
              let sol = get_feasible (Milp.solve ~params m) in
              Alcotest.(check (float 1e-6))
                (Printf.sprintf "%s/%s/jobs=%d"
                   (Node_store.strategy_to_string traversal)
                   (Brancher.rule_to_string branching)
                   jobs)
                reference sol.Simplex.objective)
            [ 1; 2 ])
        [ Brancher.Pseudocost; Brancher.Most_fractional ])
    [ Node_store.Dfs; Node_store.Best_first; Node_store.Hybrid ]

(* jobs = 1 must be the sequential search itself, bit for bit. *)
let test_jobs1_identical_to_sequential () =
  let m = structured_model () in
  let solve () =
    Milp.solve_with_stats ~params:{ base_params with Milp.jobs = 1 } m
  in
  let r1, s1 = solve () in
  let r2, s2 = solve () in
  let a = get_feasible r1 and b = get_feasible r2 in
  Alcotest.(check (array (float 0.0))) "values" a.Simplex.values b.Simplex.values;
  Alcotest.(check int) "nodes" s1.Milp.nodes s2.Milp.nodes;
  Alcotest.(check (float 0.0)) "dual bound" s1.Milp.dual_bound s2.Milp.dual_bound

(* ---------- dual bound and gap ---------- *)

let test_proof_closes_gap () =
  let m = structured_model () in
  let result, stats = Milp.solve_with_stats ~params:base_params m in
  let sol = get_feasible result in
  Alcotest.(check (float 1e-9)) "gap closed" 0.0 stats.Milp.gap;
  Alcotest.(check (float 1e-6)) "dual bound = objective" sol.Simplex.objective
    stats.Milp.dual_bound;
  match stats.Milp.stop with
  | Budget.Optimal -> ()
  | r -> Alcotest.failf "expected optimal stop, got %a" Budget.pp_stop_reason r

(* Gap-tolerance stops are certified: the reported gap respects the
   tolerance and the incumbent is within gap * scale of the true
   optimum. *)
let prop_gap_stop_certified =
  QCheck2.Test.make ~name:"gap-limit stops are within tolerance" ~count:120
    QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      let m = random_model rng in
      let tol = 0.05 in
      let exact = Milp.solve ~params:base_params m in
      let gapped, stats =
        Milp.solve_with_stats ~params:{ base_params with Milp.mip_gap = tol } m
      in
      match (exact, gapped) with
      | Milp.Feasible e, Milp.Feasible g ->
        let scale =
          Float.max (Float.max (abs_float e.Simplex.objective) 1e-9)
            (abs_float stats.Milp.dual_bound)
        in
        let within_proof =
          match stats.Milp.stop with
          | Budget.Gap_limit -> stats.Milp.gap <= tol +. 1e-9
          | Budget.Optimal -> stats.Milp.gap <= 1e-9
          | _ -> false
        in
        within_proof
        && abs_float (g.Simplex.objective -. e.Simplex.objective)
           <= (tol *. scale) +. 1e-6
      | Milp.Infeasible, Milp.Infeasible -> true
      | _ -> false)

(* Reported gaps never tighten as the tolerance loosens, and a looser
   tolerance never spends more nodes. *)
let prop_gap_monotone =
  QCheck2.Test.make ~name:"looser gap never searches more" ~count:80
    QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      let m = random_model rng in
      let run tol =
        snd (Milp.solve_with_stats ~params:{ base_params with Milp.mip_gap = tol } m)
      in
      let tight = run 0.01 and loose = run 0.25 in
      loose.Milp.nodes <= tight.Milp.nodes)

(* An interrupted search must not claim a proof: gap stays honest
   (positive or infinite) when the node budget cut the search and a
   better point was still reachable. *)
let test_node_limit_gap_honest () =
  (* Deterministically find an instance whose proof needs real
     branching — the structured model and many random ones close at
     the root, where a node limit can never fire. *)
  (* Cuts and root heuristics close almost every random instance at
     the root — the node limit can only fire on a bare tree search. *)
  let bare = { base_params with Milp.cuts = Cuts.off; heuristics = Heuristics.off } in
  let rec find seed =
    if seed > 500 then Alcotest.fail "no branching instance in 500 seeds"
    else
      let m = random_model (Rng.create seed) in
      let _, full = Milp.solve_with_stats ~params:bare m in
      if full.Milp.nodes >= 5 then (m, full) else find (seed + 1)
  in
  let m, full = find 0 in
  let limited = { bare with Milp.node_limit = 2 } in
  let result, stats = Milp.solve_with_stats ~params:limited m in
  (match stats.Milp.stop with
  | Budget.Node_limit -> ()
  | r -> Alcotest.failf "expected node-limit stop, got %a" Budget.pp_stop_reason r);
  (match result with
  | Milp.Feasible sol ->
    if
      stats.Milp.gap < 1e-9
      && abs_float (sol.Simplex.objective -. full.Milp.dual_bound) > 1e-6
    then Alcotest.fail "cut search claimed a zero gap on a suboptimal incumbent"
  | Milp.Infeasible | Milp.Unknown -> ());
  Alcotest.(check bool) "nodes within limit" true (stats.Milp.nodes <= 2)

(* ---------- cuts and heuristics ---------- *)

(* Separation and incumbent seeding are pure accelerations: every leg
   (off, Gomory only, cover only, both; heuristics off) must agree
   with the bare tree search on status and objective at mip_gap = 0. *)
let prop_cuts_agree =
  QCheck2.Test.make ~name:"cuts/heuristics legs agree with bare search" ~count:100
    QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      let m = random_model rng in
      let bare =
        { base_params with Milp.cuts = Cuts.off; heuristics = Heuristics.off }
      in
      let legs =
        [
          base_params;
          { base_params with Milp.cuts = { Cuts.default_config with Cuts.cover = false } };
          { base_params with Milp.cuts = { Cuts.default_config with Cuts.gomory = false } };
          { base_params with Milp.heuristics = Heuristics.off };
        ]
      in
      let reference = Milp.solve ~params:bare m in
      List.for_all
        (fun params ->
          match (reference, Milp.solve ~params m) with
          | Milp.Feasible a, Milp.Feasible b ->
            abs_float (a.Simplex.objective -. b.Simplex.objective) <= 1e-6
          | Milp.Infeasible, Milp.Infeasible -> true
          | _ -> false)
        legs)

(* A heuristic incumbent short-circuits the tree, so it must never be
   able to smuggle an infeasible or fractional point out of the solver:
   whatever comes back feasible is feasible for and integral in the
   ORIGINAL model. *)
let prop_heuristic_incumbents_feasible =
  QCheck2.Test.make ~name:"heuristic incumbents are audit-feasible" ~count:150
    QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      let m = random_model rng in
      let params = { Milp.default_params with Milp.first_solution = true } in
      match Milp.solve ~params m with
      | Milp.Feasible sol ->
        Model.check_feasible m (fun v -> sol.Simplex.values.(v)) = Ok ()
        && List.for_all
             (fun v -> Float.round sol.Simplex.values.(v) = sol.Simplex.values.(v))
             (Model.integer_vars m)
      | Milp.Infeasible | Milp.Unknown -> true)

(* Valid cut rows can only tighten an LP relaxation, so the root bound
   after separation is never further from the final objective than
   before: the reported fraction closed is nan (no root phase) or in
   [0, 1] — Milp only absorbs sub-1e-9 rounding noise at 0. *)
let prop_root_gap_closed_bounded =
  QCheck2.Test.make ~name:"cut rounds never widen the root gap" ~count:120
    QCheck2.Gen.int (fun seed ->
      let rng = Rng.create seed in
      let m = random_model rng in
      let _, stats = Milp.solve_with_stats ~params:base_params m in
      let g = stats.Milp.root_gap_closed in
      Float.is_nan g || (g >= 0.0 && g <= 1.0))

let test_cut_pool_aging () =
  let cfg = { Cuts.default_config with Cuts.age_limit = 1; max_cuts = 4 } in
  let pool = Cuts.create_pool cfg in
  let id =
    match
      Cuts.admit pool ~provenance:(Cuts.Gomory { basic_var = 0 }) ~terms:[ (0, 1.0) ]
        ~rhs:0.0
    with
    | Some id -> id
    | None -> Alcotest.fail "pool rejected the first cut"
  in
  Alcotest.(check bool) "duplicate rejected" true
    (Cuts.admit pool ~provenance:(Cuts.Cover { row = 0 }) ~terms:[ (0, 1.0) ] ~rhs:0.0
    = None);
  Alcotest.(check bool) "fresh cut active" true (Cuts.is_active pool id);
  (* Slack observations age the cut past the limit and deactivate it. *)
  Cuts.observe pool (fun _ -> -1.0);
  Cuts.observe pool (fun _ -> -1.0);
  Alcotest.(check bool) "aged out" false (Cuts.is_active pool id);
  Alcotest.(check int) "aged-out counted" 1 (Cuts.pool_stats pool).Cuts.aged_out;
  (* A violating point reactivates it. *)
  Cuts.observe pool (fun _ -> 1.0);
  Alcotest.(check bool) "reactivated" true (Cuts.is_active pool id);
  Alcotest.(check int) "reactivation counted" 1 (Cuts.pool_stats pool).Cuts.reactivated

let test_certify_cuts_verdicts () =
  let pool = Cuts.create_pool Cuts.default_config in
  ignore
    (Cuts.admit pool ~provenance:(Cuts.Cover { row = 3 })
       ~terms:[ (0, 1.0); (1, 1.0) ]
       ~rhs:1.0);
  let sol values = { Simplex.values; objective = 0.0; iterations = 0 } in
  (match Certify.cuts pool (sol [| 1.0; 0.0 |]) with
  | Certify.Certified -> ()
  | v -> Alcotest.failf "expected certified, got %a" Certify.pp_verdict v);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  match Certify.cuts pool (sol [| 1.0; 1.0 |]) with
  | Certify.Rejected [ msg ] ->
    Alcotest.(check bool) "provenance reported" true (contains msg "cover")
  | v -> Alcotest.failf "expected one rejection, got %a" Certify.pp_verdict v

(* In-place row append + dual-simplex repair must agree exactly with
   assembling the extended model from scratch. *)
let test_add_row_warm_matches_cold () =
  let base () =
    let m = Model.create () in
    let x = Model.add_var ~lb:0.0 ~ub:10.0 m in
    let y = Model.add_var ~lb:0.0 ~ub:10.0 m in
    ignore
      (Model.add_constraint m
         (Expr.add (Expr.var x) (Expr.var ~coef:2.0 y))
         Model.Le 14.0);
    Model.set_objective m Model.Maximize
      (Expr.add (Expr.var ~coef:3.0 x) (Expr.var ~coef:2.0 y));
    (m, x, y)
  in
  let m, x, y = base () in
  let st = Simplex.assemble ~extra_rows:2 m in
  (match Simplex.solve_state st with
  | Simplex.Optimal _ -> ()
  | s -> Alcotest.failf "base LP not optimal: %a" Simplex.pp_status s);
  ignore (Simplex.add_row st ~terms:[ (x, 1.0); (y, 1.0) ] ~rel:Model.Le ~rhs:8.0);
  let warm =
    match Simplex.reoptimize st with
    | Simplex.Optimal s -> s
    | s -> Alcotest.failf "warm repair failed: %a" Simplex.pp_status s
  in
  let m2, x2, y2 = base () in
  ignore
    (Model.add_constraint m2 (Expr.add (Expr.var x2) (Expr.var y2)) Model.Le 8.0);
  let cold =
    match Simplex.solve m2 with
    | Simplex.Optimal s -> s
    | s -> Alcotest.failf "cold solve failed: %a" Simplex.pp_status s
  in
  Alcotest.(check (float 1e-9)) "objective" cold.Simplex.objective warm.Simplex.objective;
  Alcotest.(check (float 1e-9)) "x" cold.Simplex.values.(x2) warm.Simplex.values.(x);
  Alcotest.(check (float 1e-9)) "y" cold.Simplex.values.(y2) warm.Simplex.values.(y)

(* The fixed Eq.(3)-flavoured instance: the full cut + heuristic stack
   must cost no more tree nodes than the bare search, at the same
   optimum, and its gap-closed statistic must stay in range. *)
let test_cuts_reduce_work () =
  let bare =
    { base_params with Milp.cuts = Cuts.off; heuristics = Heuristics.off }
  in
  let r0, s0 = Milp.solve_with_stats ~params:bare (structured_model ()) in
  let r1, s1 = Milp.solve_with_stats ~params:base_params (structured_model ()) in
  match (r0, r1) with
  | Milp.Feasible a, Milp.Feasible b ->
    Alcotest.(check (float 1e-6)) "same optimum" a.Simplex.objective b.Simplex.objective;
    Alcotest.(check bool)
      (Printf.sprintf "no more nodes with cuts (%d vs %d)" s1.Milp.nodes s0.Milp.nodes)
      true
      (s1.Milp.nodes <= s0.Milp.nodes);
    let g = s1.Milp.root_gap_closed in
    Alcotest.(check bool) "gap closed in range" true
      (Float.is_nan g || (g >= 0.0 && g <= 1.0))
  | _ -> Alcotest.fail "structured model should be feasible"

(* ---------- node store determinism ---------- *)

let test_node_store_order () =
  let mk () =
    let t = Node_store.create ~workers:1 in
    ignore
      (Node_store.add t ~parent:(-1) ~depth:0 ~bound:neg_infinity ~fixes:[] ~branch:None);
    List.iter
      (fun bound ->
        ignore (Node_store.add t ~parent:0 ~depth:1 ~bound ~fixes:[] ~branch:None))
      [ 3.0; 1.0; 2.0 ];
    t
  in
  let drain strategy =
    let t = mk () in
    let rec go acc =
      match Node_store.take t ~wid:0 strategy with
      | None -> List.rev acc
      | Some n ->
        Node_store.finish t ~wid:0;
        go (n.Node_store.id :: acc)
    in
    go []
  in
  Alcotest.(check (list int)) "dfs is LIFO" [ 3; 2; 1; 0 ] (drain Node_store.Dfs);
  Alcotest.(check (list int))
    "best-first by (bound, id)" [ 0; 2; 3; 1 ] (drain Node_store.Best_first)

let test_node_store_dual_bound () =
  let t = Node_store.create ~workers:1 in
  ignore
    (Node_store.add t ~parent:(-1) ~depth:0 ~bound:neg_infinity ~fixes:[] ~branch:None);
  Alcotest.(check (float 0.0)) "root bound" neg_infinity (Node_store.dual_bound t);
  (match Node_store.take t ~wid:0 Node_store.Best_first with
  | Some n -> Alcotest.(check int) "root popped" 0 n.Node_store.id
  | None -> Alcotest.fail "empty store");
  (* In flight: the root's bound still anchors the dual bound. *)
  Alcotest.(check (float 0.0)) "in-flight bound" neg_infinity (Node_store.dual_bound t);
  ignore (Node_store.add t ~parent:0 ~depth:1 ~bound:5.0 ~fixes:[] ~branch:None);
  ignore (Node_store.add t ~parent:0 ~depth:1 ~bound:7.0 ~fixes:[] ~branch:None);
  Node_store.finish t ~wid:0;
  Alcotest.(check (float 0.0)) "frontier min" 5.0 (Node_store.dual_bound t);
  (match Node_store.take t ~wid:0 Node_store.Best_first with
  | Some n -> Alcotest.(check (float 0.0)) "best child" 5.0 n.Node_store.bound
  | None -> Alcotest.fail "empty store");
  Node_store.finish t ~wid:0;
  (match Node_store.take t ~wid:0 Node_store.Best_first with
  | Some _ -> Node_store.finish t ~wid:0
  | None -> Alcotest.fail "empty store");
  Alcotest.(check (float 0.0)) "drained" infinity (Node_store.dual_bound t)

(* ---------- brancher ---------- *)

let test_brancher_pseudocost_prefers_observed () =
  let b = Brancher.create Brancher.Pseudocost ~nvars:3 in
  (* Variable 1 has hurt both children before; variable 0 never
     observed. At equal fractions the observed degrader must win. *)
  Brancher.observe b ~var:1 ~dir:Node_store.Down ~frac:0.5 ~delta:10.0;
  Brancher.observe b ~var:1 ~dir:Node_store.Up ~frac:0.5 ~delta:10.0;
  (match Brancher.select b [ (0, 0.5); (1, 0.5) ] with
  | Some 1 -> ()
  | Some v -> Alcotest.failf "expected var 1, got %d" v
  | None -> Alcotest.fail "no selection");
  Alcotest.(check bool) "var 0 unreliable" true (Brancher.unreliable b ~var:0);
  Alcotest.(check bool) "var 1 reliable" false (Brancher.unreliable b ~var:1)

let test_brancher_most_fractional_order () =
  let b = Brancher.create Brancher.Most_fractional ~nvars:4 in
  (match Brancher.select b [ (0, 0.9); (1, 0.5); (2, 0.5) ] with
  | Some 1 -> ()
  | Some v -> Alcotest.failf "expected var 1 (first maximum), got %d" v
  | None -> Alcotest.fail "no selection")

let () =
  Alcotest.run "milp-tree"
    [
      ( "tree",
        [
          Alcotest.test_case "combination matrix" `Quick test_combination_matrix;
          Alcotest.test_case "jobs=1 deterministic" `Quick
            test_jobs1_identical_to_sequential;
          Alcotest.test_case "proof closes gap" `Quick test_proof_closes_gap;
          Alcotest.test_case "node-limit gap honest" `Quick test_node_limit_gap_honest;
        ] );
      ( "node-store",
        [
          Alcotest.test_case "traversal order" `Quick test_node_store_order;
          Alcotest.test_case "dual bound" `Quick test_node_store_dual_bound;
        ] );
      ( "brancher",
        [
          Alcotest.test_case "pseudocost prefers observed" `Quick
            test_brancher_pseudocost_prefers_observed;
          Alcotest.test_case "most-fractional order" `Quick
            test_brancher_most_fractional_order;
        ] );
      ( "cuts",
        [
          Alcotest.test_case "pool aging + reactivation" `Quick test_cut_pool_aging;
          Alcotest.test_case "certify cut verdicts" `Quick test_certify_cuts_verdicts;
          Alcotest.test_case "add-row warm matches cold" `Quick
            test_add_row_warm_matches_cold;
          Alcotest.test_case "cuts reduce tree work" `Quick test_cuts_reduce_work;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_traversals_agree;
          QCheck_alcotest.to_alcotest prop_branching_rules_agree;
          QCheck_alcotest.to_alcotest prop_gap_stop_certified;
          QCheck_alcotest.to_alcotest prop_gap_monotone;
          QCheck_alcotest.to_alcotest prop_cuts_agree;
          QCheck_alcotest.to_alcotest prop_heuristic_incumbents_feasible;
          QCheck_alcotest.to_alcotest prop_root_gap_closed_bounded;
        ] );
    ]
