(* Tests for the compact thermal model and the NBTI/MTTF computation. *)

open Agingfp_cgrra
module Thermal = Agingfp_thermal.Model
module Nbti = Agingfp_aging.Nbti
module Mttf = Agingfp_aging.Mttf
module Placer = Agingfp_place.Placer

(* ---------- thermal ---------- *)

let test_zero_power_is_ambient () =
  let p = Thermal.default_params in
  let t = Thermal.steady_state ~dim:4 (Array.make 16 0.0) in
  Array.iter
    (fun temp -> Alcotest.(check (float 1e-6)) "ambient" p.Thermal.ambient_k temp)
    t

let test_uniform_power_uniform_temp () =
  let t = Thermal.steady_state ~dim:4 (Array.make 16 0.1) in
  let t0 = t.(0) in
  Array.iter (fun temp -> Alcotest.(check (float 1e-6)) "uniform" t0 temp) t;
  (* Uniform power: no lateral flow, so T = T_amb + P / g_v exactly. *)
  let p = Thermal.default_params in
  Alcotest.(check (float 1e-6)) "analytic"
    (p.Thermal.ambient_k +. (0.1 /. p.Thermal.g_vertical))
    t0

let test_hotspot_peaks_at_source () =
  let power = Array.make 16 0.0 in
  power.(5) <- 0.2;
  let t = Thermal.steady_state ~dim:4 power in
  Array.iteri
    (fun i temp ->
      if i <> 5 then Alcotest.(check bool) "peak at source" true (temp < t.(5)))
    t

let test_hotspot_decays_with_distance () =
  let power = Array.make 25 0.0 in
  power.(12) <- 0.2;
  (* center of 5x5 *)
  let t = Thermal.steady_state ~dim:5 power in
  Alcotest.(check bool) "neighbour hotter than corner" true (t.(11) > t.(0))

let test_energy_balance () =
  (* Steady state: total power in = total vertical flow out. *)
  let p = Thermal.default_params in
  let power = Array.init 16 (fun i -> 0.01 *. float_of_int i) in
  let t = Thermal.steady_state ~dim:4 power in
  let inflow = Array.fold_left ( +. ) 0.0 power in
  let outflow =
    Array.fold_left (fun acc temp -> acc +. (p.Thermal.g_vertical *. (temp -. p.Thermal.ambient_k))) 0.0 t
  in
  Alcotest.(check (float 1e-6)) "conserved" inflow outflow

let test_transient_approaches_steady_state () =
  let p = Thermal.default_params in
  let power = Array.make 16 0.0 in
  power.(0) <- 0.15;
  let steady = Thermal.steady_state ~dim:4 power in
  let t0 = Array.make 16 p.Thermal.ambient_k in
  let dt = 0.9 *. p.Thermal.capacitance /. ((4.0 *. p.Thermal.g_lateral) +. p.Thermal.g_vertical) in
  let final = Thermal.transient ~dim:4 ~power ~t0 ~dt 200_000 in
  Array.iteri
    (fun i temp -> Alcotest.(check (float 0.05)) "converges" steady.(i) temp)
    final

let test_transient_stability_guard () =
  let p = Thermal.default_params in
  let dt = 10.0 *. p.Thermal.capacitance /. p.Thermal.g_vertical in
  Alcotest.check_raises "unstable dt"
    (Invalid_argument "Thermal.transient: dt violates stability bound") (fun () ->
      ignore
        (Thermal.transient ~dim:2 ~power:(Array.make 4 0.0)
           ~t0:(Array.make 4 300.0) ~dt 1))

let test_power_map_tracks_stress () =
  let design = Benchmarks.tiny () in
  let m = Placer.aging_unaware design in
  let power = Thermal.power_map design m in
  let acc = Stress.accumulated design m in
  let p = Thermal.default_params in
  Array.iteri
    (fun pe pw ->
      if acc.(pe) = 0.0 then
        Alcotest.(check (float 1e-9)) "idle PE leaks only" p.Thermal.p_leak pw
      else Alcotest.(check bool) "active PE above leakage" true (pw > p.Thermal.p_leak))
    power

let test_per_context_maps_shape () =
  let design = Benchmarks.tiny () in
  let m = Placer.aging_unaware design in
  let maps = Thermal.per_context_temperatures design m in
  Alcotest.(check int) "one map per context" (Design.num_contexts design)
    (Array.length maps);
  Array.iter
    (fun map ->
      Alcotest.(check int) "PE-sized" (Fabric.num_pes (Design.fabric design))
        (Array.length map))
    maps

(* ---------- NBTI ---------- *)

let test_vth_shift_zero_cases () =
  Alcotest.(check (float 0.)) "zero duty" 0.0
    (Nbti.vth_shift ~duty:0.0 ~temp_k:350.0 1e8);
  Alcotest.(check (float 0.)) "zero time" 0.0
    (Nbti.vth_shift ~duty:0.5 ~temp_k:350.0 0.0)

let test_vth_shift_monotone_in_time () =
  let s t = Nbti.vth_shift ~duty:0.5 ~temp_k:350.0 t in
  Alcotest.(check bool) "monotone" true (s 2e8 > s 1e8)

let test_vth_shift_monotone_in_duty () =
  let s d = Nbti.vth_shift ~duty:d ~temp_k:350.0 1e8 in
  Alcotest.(check bool) "monotone" true (s 0.8 > s 0.4)

let test_vth_shift_monotone_in_temp () =
  let s t = Nbti.vth_shift ~duty:0.5 ~temp_k:t 1e8 in
  Alcotest.(check bool) "hotter ages faster" true (s 360.0 > s 330.0)

let test_time_to_fail_inverse_of_shift () =
  (* At the failure time, the shift equals the threshold exactly. *)
  let params = Nbti.default_params in
  List.iter
    (fun (duty, temp_k) ->
      let t = Nbti.time_to_fail ~temp_k duty in
      let shift = Nbti.vth_shift ~duty ~temp_k t in
      Alcotest.(check (float 1e-6)) "consistent"
        (params.Nbti.fail_frac *. params.Nbti.vth0)
        shift)
    [ (1.0, 353.0); (0.5, 330.0); (0.25, 320.0); (0.05, 400.0) ]

let test_time_to_fail_halved_duty_doubles_life () =
  (* From Eq. (1): t_fail is proportional to 1/duty at fixed T. *)
  let t1 = Nbti.time_to_fail ~temp_k:350.0 0.5 in
  let t2 = Nbti.time_to_fail ~temp_k:350.0 0.25 in
  Alcotest.(check (float 1e-3)) "2x duty reduction = 2x life" 2.0 (t2 /. t1)

let test_time_to_fail_zero_duty () =
  Alcotest.(check bool) "immortal when idle" true
    (Nbti.time_to_fail ~temp_k:350.0 0.0 = infinity)

let test_calibration_decade_scale () =
  (* The calibration promise in the doc: a fully stressed PE at 80 C
     lives on the order of a decade. *)
  let t = Nbti.time_to_fail ~temp_k:353.15 1.0 in
  let years = t /. 3.156e7 in
  Alcotest.(check bool) "decade order" true (years > 2.0 && years < 50.0)

let test_shift_curve_matches_pointwise () =
  let times = [| 1e7; 1e8; 1e9 |] in
  let curve = Nbti.shift_curve ~duty:0.4 ~temp_k:345.0 times in
  Array.iteri
    (fun i t ->
      Alcotest.(check (float 1e-12)) "pointwise" (Nbti.vth_shift ~duty:0.4 ~temp_k:345.0 t)
        curve.(i))
    times

(* ---------- MTTF ---------- *)

let test_mttf_breakdown_consistent () =
  let design = Benchmarks.tiny () in
  let m = Placer.aging_unaware design in
  let b = Mttf.of_mapping design m in
  Alcotest.(check bool) "finite" true (b.Mttf.mttf_s < infinity);
  Alcotest.(check bool) "critical PE in range" true
    (b.Mttf.critical_pe >= 0 && b.Mttf.critical_pe < 16);
  (* The breakdown must reproduce the NBTI solve for its own PE. *)
  Alcotest.(check (float 1e-3)) "self-consistent" b.Mttf.mttf_s
    (Nbti.time_to_fail ~temp_k:b.Mttf.critical_temp_k b.Mttf.critical_duty)

let test_mttf_min_over_pes () =
  let design = Benchmarks.tiny () in
  let m = Placer.aging_unaware design in
  let b = Mttf.of_mapping design m in
  let temps = Thermal.pe_temperatures design m in
  let acc = Stress.accumulated design m in
  let c = float_of_int (Design.num_contexts design) in
  Array.iteri
    (fun pe stress ->
      if stress > 0.0 then begin
        let t = Nbti.time_to_fail ~temp_k:temps.(pe) (stress /. c) in
        Alcotest.(check bool) "no PE fails earlier" true (t >= b.Mttf.mttf_s -. 1e-6)
      end)
    acc

let test_mttf_improvement_of_leveling () =
  (* Hand-built comparison: concentrating two heavy ops on one PE vs
     spreading them must strictly reduce MTTF. *)
  let mk_ctx () =
    let ops = [| Op.make ~id:0 ~kind:Op.Shift ~bitwidth:32 |] in
    Dfg.create ~ops ~edges:[]
  in
  let design =
    Design.create ~name:"lvl" ~fabric:(Fabric.create ~dim:2) [| mk_ctx (); mk_ctx () |]
  in
  let concentrated = Mapping.create (fun _ _ -> 0) design in
  let spread = Mapping.create (fun ctx _ -> ctx) design in
  let imp = Mttf.improvement design ~baseline:concentrated ~remapped:spread in
  Alcotest.(check bool) "leveling helps" true (imp > 1.5)

let test_mttf_paper_variant_agrees_roughly () =
  (* On strongly concentrated baselines, the hottest PE is the most
     stressed one, so the paper's variant matches min-over-PEs. *)
  let design = Benchmarks.tiny () in
  let m = Placer.aging_unaware design in
  let a = Mttf.of_mapping design m in
  let b = Mttf.of_mapping_paper_variant design m in
  Alcotest.(check bool) "same order of magnitude" true
    (b.Mttf.mttf_s /. a.Mttf.mttf_s < 3.0 && b.Mttf.mttf_s >= a.Mttf.mttf_s -. 1e-6)

(* ---------- properties ---------- *)

let prop_steady_state_monotone_in_power =
  QCheck2.Test.make ~name:"more power => nowhere cooler" ~count:100 QCheck2.Gen.int
    (fun seed ->
      let rng = Agingfp_util.Rng.create seed in
      let p1 = Array.init 16 (fun _ -> Agingfp_util.Rng.float rng 0.1) in
      let p2 = Array.mapi (fun i p -> if i mod 3 = 0 then p +. 0.05 else p) p1 in
      let t1 = Thermal.steady_state ~dim:4 p1 in
      let t2 = Thermal.steady_state ~dim:4 p2 in
      Array.for_all2 (fun a b -> b >= a -. 1e-9) t1 t2)

let prop_mttf_decreases_with_added_stress =
  QCheck2.Test.make ~name:"adding stress never extends device life" ~count:50
    QCheck2.Gen.(tup2 (float_range 0.1 0.9) (float_range 0.01 0.1))
    (fun (duty, extra) ->
      let t1 = Nbti.time_to_fail ~temp_k:345.0 duty in
      let t2 = Nbti.time_to_fail ~temp_k:345.0 (duty +. extra) in
      t2 <= t1)

let () =
  Alcotest.run "thermal+aging"
    [
      ( "thermal",
        [
          Alcotest.test_case "zero power ambient" `Quick test_zero_power_is_ambient;
          Alcotest.test_case "uniform power" `Quick test_uniform_power_uniform_temp;
          Alcotest.test_case "hotspot peak" `Quick test_hotspot_peaks_at_source;
          Alcotest.test_case "distance decay" `Quick test_hotspot_decays_with_distance;
          Alcotest.test_case "energy balance" `Quick test_energy_balance;
          Alcotest.test_case "transient converges" `Slow
            test_transient_approaches_steady_state;
          Alcotest.test_case "stability guard" `Quick test_transient_stability_guard;
          Alcotest.test_case "power map" `Quick test_power_map_tracks_stress;
          Alcotest.test_case "per-context maps" `Quick test_per_context_maps_shape;
        ] );
      ( "nbti",
        [
          Alcotest.test_case "zero cases" `Quick test_vth_shift_zero_cases;
          Alcotest.test_case "monotone in time" `Quick test_vth_shift_monotone_in_time;
          Alcotest.test_case "monotone in duty" `Quick test_vth_shift_monotone_in_duty;
          Alcotest.test_case "monotone in temp" `Quick test_vth_shift_monotone_in_temp;
          Alcotest.test_case "failure-time inverse" `Quick test_time_to_fail_inverse_of_shift;
          Alcotest.test_case "1/duty scaling" `Quick test_time_to_fail_halved_duty_doubles_life;
          Alcotest.test_case "zero duty immortal" `Quick test_time_to_fail_zero_duty;
          Alcotest.test_case "decade calibration" `Quick test_calibration_decade_scale;
          Alcotest.test_case "curve pointwise" `Quick test_shift_curve_matches_pointwise;
        ] );
      ( "mttf",
        [
          Alcotest.test_case "breakdown consistent" `Quick test_mttf_breakdown_consistent;
          Alcotest.test_case "min over PEs" `Quick test_mttf_min_over_pes;
          Alcotest.test_case "leveling helps" `Quick test_mttf_improvement_of_leveling;
          Alcotest.test_case "paper variant" `Quick test_mttf_paper_variant_agrees_roughly;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_steady_state_monotone_in_power;
          QCheck_alcotest.to_alcotest prop_mttf_decreases_with_added_stress;
        ] );
    ]
