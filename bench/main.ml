(* Benchmark harness: regenerates every table and figure of the paper
   plus the ablations called out in DESIGN.md.

     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- table1       -- one experiment
     dune exec bench/main.exe -- table1 --quick   -- 4x4 + 8x8 rows only

   Experiments: table1, fig2a, fig2b, fig4, fig5, ablation-ilp,
   ablation-naive, ablation-encoding, ablation-decomp, micro.

   Absolute MTTF factors depend on technology constants the paper
   does not publish; the *shape* — Rotate >= Freeze, low utilization
   leveling better than high, more contexts giving more headroom, a
   ~2-2.5x overall average — is the reproduction target (see
   EXPERIMENTS.md). *)

open Agingfp_cgrra
module Placer = Agingfp_place.Placer
module Analysis = Agingfp_timing.Analysis
module Thermal = Agingfp_thermal.Model
module Nbti = Agingfp_aging.Nbti
module Mttf = Agingfp_aging.Mttf
module Remap = Agingfp_floorplan.Remap
module Rotation = Agingfp_floorplan.Rotation
module Naive = Agingfp_floorplan.Naive
module Primary_ilp = Agingfp_floorplan.Primary_ilp
module Related = Agingfp_floorplan.Related
module Lifetime = Agingfp_floorplan.Lifetime
module Router = Agingfp_route.Router
module Ilp_model = Agingfp_floorplan.Ilp_model
module Ascii_table = Agingfp_util.Ascii_table
module Stats = Agingfp_util.Stats
module Coord = Agingfp_util.Coord
module Milp = Agingfp_lp.Milp
module Node_store = Agingfp_lp.Node_store
module Brancher = Agingfp_lp.Brancher
module LpModel = Agingfp_lp.Model
module LpExpr = Agingfp_lp.Expr
module Simplex = Agingfp_lp.Simplex
module Basis = Agingfp_lp.Basis
module Cuts = Agingfp_lp.Cuts
module Heuristics = Agingfp_lp.Heuristics
module Pool = Agingfp_util.Pool

let quick = ref false

let header title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n%!"

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ---------- Table I (and the data behind Fig. 5) ---------- *)

type row_result = {
  spec : Benchmarks.spec;
  freeze_x : float;
  rotate_x : float;
  seconds : float;
}

let table1_results : row_result list ref = ref []

let run_suite () =
  if !table1_results = [] then begin
    let specs =
      Array.to_list Benchmarks.table1
      |> List.filter (fun (s : Benchmarks.spec) -> (not !quick) || s.Benchmarks.dim <= 8)
    in
    table1_results :=
      List.map
        (fun (spec : Benchmarks.spec) ->
          let design = Benchmarks.generate spec in
          let baseline = Placer.aging_unaware design in
          let (freeze_res, rotate_res), seconds =
            time_it (fun () -> Remap.solve_both design baseline)
          in
          let imp r = Mttf.improvement design ~baseline ~remapped:r.Remap.mapping in
          let row =
            { spec; freeze_x = imp freeze_res; rotate_x = imp rotate_res; seconds }
          in
          Printf.printf "  %-4s done in %6.1fs: freeze %.2fx rotate %.2fx\n%!"
            spec.Benchmarks.bname seconds row.freeze_x row.rotate_x;
          row)
        specs
  end;
  !table1_results

let bench_table1 () =
  header "Table I: MTTF increase for B1-B27 (Freeze / Rotate vs paper)";
  let results = run_suite () in
  let rows =
    List.map
      (fun r ->
        let s = r.spec in
        [|
          s.Benchmarks.bname;
          string_of_int s.Benchmarks.contexts;
          Printf.sprintf "%dx%d" s.Benchmarks.dim s.Benchmarks.dim;
          string_of_int s.Benchmarks.total_ops;
          Benchmarks.usage_to_string s.Benchmarks.usage;
          Printf.sprintf "%.2f" r.freeze_x;
          Printf.sprintf "%.2f" s.Benchmarks.paper_freeze;
          Printf.sprintf "%.2f" r.rotate_x;
          Printf.sprintf "%.2f" s.Benchmarks.paper_rotate;
          Printf.sprintf "%.1f" r.seconds;
        |])
      results
  in
  print_endline
    (Ascii_table.render
       ~header:
         [|
           "bench"; "ctx"; "fabric"; "PE#"; "usage"; "freeze"; "(paper)"; "rotate";
           "(paper)"; "sec";
         |]
       rows);
  (* Per-usage-class averages, as in the paper's Avg. row. *)
  List.iter
    (fun usage ->
      let xs = List.filter (fun r -> r.spec.Benchmarks.usage = usage) results in
      if xs <> [] then begin
        let avg f = Stats.mean (Array.of_list (List.map f xs)) in
        Printf.printf "Avg %-6s: freeze %.2f (paper %.2f)   rotate %.2f (paper %.2f)\n"
          (Benchmarks.usage_to_string usage)
          (avg (fun r -> r.freeze_x))
          (avg (fun r -> r.spec.Benchmarks.paper_freeze))
          (avg (fun r -> r.rotate_x))
          (avg (fun r -> r.spec.Benchmarks.paper_rotate))
      end)
    [ Benchmarks.Low; Benchmarks.Medium; Benchmarks.High ];
  Printf.printf "Overall rotate average: %.2fx (paper: 2.50x)\n"
    (Stats.mean (Array.of_list (List.map (fun r -> r.rotate_x) results)))

let bench_fig5 () =
  header "Fig. 5: MTTF increase grouped by fabric size (CxFy)";
  let results = run_suite () in
  let rows =
    List.concat_map
      (fun contexts ->
        List.filter_map
          (fun dim ->
            let group =
              List.filter
                (fun r ->
                  r.spec.Benchmarks.contexts = contexts && r.spec.Benchmarks.dim = dim)
                results
            in
            if group = [] then None
            else begin
              let pick usage =
                match List.find_opt (fun r -> r.spec.Benchmarks.usage = usage) group with
                | Some r -> Printf.sprintf "%.2f" r.rotate_x
                | None -> "-"
              in
              Some
                [|
                  Printf.sprintf "C%dF%d" contexts dim;
                  pick Benchmarks.Low;
                  pick Benchmarks.Medium;
                  pick Benchmarks.High;
                |]
            end)
          [ 4; 8; 16 ])
      [ 4; 8; 16 ]
  in
  print_endline
    (Ascii_table.render ~header:[| "group"; "low util"; "medium util"; "high util" |] rows);
  print_endline
    "(series shape to check: bars fall with utilization and rise with context count)"

(* ---------- Fig. 2a: stress maps ---------- *)

let bench_fig2a () =
  header "Fig. 2a: accumulated stress before/after aging-aware re-mapping";
  let design = Benchmarks.tiny () in
  let baseline = Placer.aging_unaware design in
  let result = Remap.solve ~mode:Rotation.Rotate design baseline in
  Printf.printf "aging-unaware floorplan (max %.2f):\n%s\n\n"
    (Stress.max_accumulated design baseline)
    (Stress.heatmap design baseline);
  Printf.printf "aging-aware floorplan (max %.2f):\n%s\n"
    (Stress.max_accumulated design result.Remap.mapping)
    (Stress.heatmap design result.Remap.mapping);
  Printf.printf "\nmax accumulated stress ratio: %.2f (paper's example: 4 -> 2)\n"
    (Stress.max_accumulated design baseline
    /. Stress.max_accumulated design result.Remap.mapping)

(* ---------- Fig. 2b: V_th shift curves ---------- *)

let bench_fig2b () =
  header "Fig. 2b: V_th shift vs time, original vs re-mapped";
  let design = Benchmarks.generate (Option.get (Benchmarks.find "B10")) in
  let baseline = Placer.aging_unaware design in
  let result = Remap.solve ~mode:Rotation.Rotate design baseline in
  let before = Mttf.of_mapping design baseline in
  let after = Mttf.of_mapping design result.Remap.mapping in
  let params = Nbti.default_params in
  let year = 3.156e7 in
  let fail_mv = 1000.0 *. params.Nbti.fail_frac *. params.Nbti.vth0 in
  Printf.printf "failure threshold: %.1f mV (10%% of V_th0)\n\n" fail_mv;
  Printf.printf "%8s  %14s  %14s\n" "years" "original (mV)" "re-mapped (mV)";
  List.iter
    (fun years ->
      let t = years *. year in
      let shift (b : Mttf.breakdown) =
        1000.0
        *. Nbti.vth_shift ~duty:b.Mttf.critical_duty ~temp_k:b.Mttf.critical_temp_k t
      in
      Printf.printf "%8.0f  %14.2f  %14.2f\n" years (shift before) (shift after))
    [ 5.; 10.; 20.; 40.; 60.; 80.; 120.; 160.; 240. ];
  Printf.printf "\nMTTF: %.1f years -> %.1f years (%.2fx)\n"
    (before.Mttf.mttf_s /. year)
    (after.Mttf.mttf_s /. year)
    (after.Mttf.mttf_s /. before.Mttf.mttf_s);
  Printf.printf
    "(shape: re-mapped curve has the lower slope, crossing the threshold later)\n"

(* ---------- Fig. 4: rotation ---------- *)

let bench_fig4 () =
  header "Fig. 4: critical-path orientations and delay-aware re-mapping";
  let path = [ Coord.make 0 0; Coord.make 1 0; Coord.make 2 0; Coord.make 2 1 ] in
  let wire ps =
    let rec total = function
      | a :: (b :: _ as tl) -> Coord.manhattan a b + total tl
      | _ -> 0
    in
    total ps
  in
  Printf.printf "intra-path wire length of an L-shaped path under the 8 orientations:\n";
  Array.iter
    (fun o ->
      Printf.printf "  %-6s %d\n"
        (Coord.orientation_to_string o)
        (wire (Coord.transform_all o path)))
    Coord.all_orientations;
  let images =
    Array.to_list Coord.all_orientations
    |> List.map (fun o ->
           List.sort Coord.compare (fst (Coord.normalize (Coord.transform_all o path))))
  in
  Printf.printf "distinct orientation images: %d (paper: 8 unique orientations)\n"
    (List.length (List.sort_uniq compare images));
  (* Freeze vs Rotate on one benchmark: rotation lowers the frozen
     stress floor, which is the whole point of step 2.1. *)
  let design = Benchmarks.generate (Option.get (Benchmarks.find "B13")) in
  let baseline = Placer.aging_unaware design in
  let freeze_res, rotate_res = Remap.solve_both design baseline in
  Printf.printf "\nB13: freeze ST_target %.3f vs rotate ST_target %.3f (lower is better)\n"
    freeze_res.Remap.st_target rotate_res.Remap.st_target;
  Printf.printf "B13: freeze MTTF %.2fx vs rotate MTTF %.2fx\n"
    (Mttf.improvement design ~baseline ~remapped:freeze_res.Remap.mapping)
    (Mttf.improvement design ~baseline ~remapped:rotate_res.Remap.mapping)

(* ---------- Ablation: primary ILP vs two-step MILP (paper par. V.A) ---------- *)

let bench_ablation_ilp () =
  header "Ablation (par. V.A): primary monolithic ILP vs two-step MILP";
  Milp.reset_cumulative ();
  Printf.printf "%-22s %9s %6s | %9s %8s | %9s %8s\n" "instance" "binaries" "rows"
    "ILP sec" "solved" "MILP sec" "MTTFx";
  let cases =
    [
      ("tiny", None);
      ("B1", Benchmarks.find "B1");
      ("B10", Benchmarks.find "B10");
      ("B19", Benchmarks.find "B19");
      ("B4", Benchmarks.find "B4");
    ]
  in
  List.iter
    (fun (name, spec) ->
      let design =
        match spec with Some s -> Benchmarks.generate s | None -> Benchmarks.tiny ()
      in
      let baseline = Placer.aging_unaware design in
      let ilp_result, ilp_time = time_it (fun () -> Primary_ilp.solve design baseline) in
      let solved =
        match ilp_result.Primary_ilp.mapping with Some _ -> "yes" | None -> "NO"
      in
      let milp, milp_time =
        time_it (fun () -> Remap.solve ~mode:Rotation.Rotate design baseline)
      in
      let imp = Mttf.improvement design ~baseline ~remapped:milp.Remap.mapping in
      Printf.printf "%-22s %9d %6d | %9.2f %8s | %9.2f %8.2f\n%!" name
        ilp_result.Primary_ilp.binaries ilp_result.Primary_ilp.rows ilp_time solved
        milp_time imp)
    cases;
  Printf.printf
    "\n(the primary ILP's binaries grow as ops x PEs x contexts; the paper reports\n";
  Printf.printf
    " it failed to finish within 5 days on larger benchmarks — here it hits the\n";
  Printf.printf " node budget while the two-step MILP finishes every instance)\n";
  Printf.printf "\nsolver stats: %s\n"
    (Format.asprintf "%a" Milp.pp_stats (Milp.cumulative ()))

(* ---------- Ablation: naive spreading (paper par. IV) ---------- *)

let bench_ablation_naive () =
  header "Ablation (par. IV): naive delay-unaware spreading increases CPD";
  Printf.printf "%-6s | %9s %9s %9s | %9s %9s\n" "bench" "base CPD" "naiveCPD" "increase"
    "naive ST" "remap ST";
  List.iter
    (fun name ->
      let design = Benchmarks.generate (Option.get (Benchmarks.find name)) in
      let baseline = Placer.aging_unaware design in
      let naive = Naive.spread design baseline in
      let remap = Remap.solve ~mode:Rotation.Rotate design baseline in
      let cpd0 = Analysis.cpd design baseline in
      let cpd1 = Analysis.cpd design naive in
      Printf.printf "%-6s | %8.2fns %8.2fns %8.1f%% | %9.3f %9.3f\n%!" name cpd0 cpd1
        (100.0 *. ((cpd1 /. cpd0) -. 1.0))
        (Stress.max_accumulated design naive)
        (Stress.max_accumulated design remap.Remap.mapping))
    [ "B1"; "B10"; "B19"; "B13" ];
  Printf.printf
    "\n(naive spreading levels stress slightly better but breaks the CPD guarantee;\n";
  Printf.printf " the paper's method levels almost as far at zero delay cost)\n"

(* ---------- Ablation: path-constraint encodings ---------- *)

let bench_ablation_encoding () =
  header "Ablation: path-constraint encoding (displacement vs exact vs hybrid)";
  let design = Benchmarks.generate (Option.get (Benchmarks.find "B13")) in
  let baseline = Placer.aging_unaware design in
  Printf.printf "%-14s | %9s %9s %7s\n" "encoding" "sec" "ST" "MTTFx";
  List.iter
    (fun (name, enc) ->
      let params = { Remap.default_params with encoding = enc } in
      let r, dt =
        time_it (fun () -> Remap.solve ~params ~mode:Rotation.Rotate design baseline)
      in
      let imp = Mttf.improvement design ~baseline ~remapped:r.Remap.mapping in
      Printf.printf "%-14s | %9.2f %9.3f %7.2f\n%!" name dt r.Remap.st_target imp)
    [
      ("displacement", Ilp_model.Displacement);
      ("exact-abs", Ilp_model.Exact_abs);
      ("hybrid", Ilp_model.Hybrid);
    ]

(* ---------- Ablation: monolithic vs per-context decomposition ---------- *)

let bench_ablation_decomp () =
  header "Ablation (DESIGN.md par. 5): monolithic MILP vs per-context decomposition";
  Milp.reset_cumulative ();
  Printf.printf "%-6s %-12s | %9s %9s %7s\n" "bench" "strategy" "sec" "ST" "MTTFx";
  List.iter
    (fun name ->
      let design = Benchmarks.generate (Option.get (Benchmarks.find name)) in
      let baseline = Placer.aging_unaware design in
      List.iter
        (fun (sname, strategy) ->
          let params = { Remap.default_params with strategy } in
          let r, dt =
            time_it (fun () -> Remap.solve ~params ~mode:Rotation.Rotate design baseline)
          in
          let imp = Mttf.improvement design ~baseline ~remapped:r.Remap.mapping in
          Printf.printf "%-6s %-12s | %9.2f %9.3f %7.2f\n%!" name sname dt
            r.Remap.st_target imp)
        [ ("monolithic", Remap.Monolithic); ("per-context", Remap.Per_context) ])
    [ "B1"; "B10"; "B13" ];
  Printf.printf "\nsolver stats: %s\n"
    (Format.asprintf "%a" Milp.pp_stats (Milp.cumulative ()))

(* ---------- Ablation: related-work strategies (paper refs [4],[8],[10]) ---------- *)

let bench_ablation_related () =
  header "Ablation: prior aging-mitigation strategies vs the MILP floorplanner";
  Printf.printf "%-6s | %10s %10s %10s %10s\n" "bench" "baseline" "mod-div[4]"
    "rot-cyc[10]" "MILP(ours)";
  List.iter
    (fun name ->
      let design = Benchmarks.generate (Option.get (Benchmarks.find name)) in
      let baseline = Placer.aging_unaware design in
      let base = (Mttf.of_mapping design baseline).Mttf.mttf_s in
      let diversified =
        (Mttf.of_duty design (Related.module_diversification_duty design baseline)).Mttf.mttf_s
      in
      let cycled =
        (Mttf.of_duty design (Related.rotation_cycling_duty design baseline)).Mttf.mttf_s
      in
      let remapped = Remap.solve ~mode:Rotation.Rotate design baseline in
      let ours = (Mttf.of_mapping design remapped.Remap.mapping).Mttf.mttf_s in
      Printf.printf "%-6s | %9.2fx %9.2fx %9.2fx %9.2fx\n%!" name 1.0
        (diversified /. base) (cycled /. base) (ours /. base))
    [ "B1"; "B10"; "B19"; "B13" ];
  Printf.printf
    "\n(periodic configuration swapping time-shares stress without re-optimizing\n";
  Printf.printf
    " the floorplan; with spare PEs the MILP re-binding levels further — the\n";
  Printf.printf " paper's core argument against refs [4], [8], [10])\n"

(* ---------- Ablation: periodic wear-aware re-mapping (extension) ---------- *)

let bench_ablation_lifetime () =
  header "Extension: lifetime simulation with periodic wear-aware re-mapping";
  Printf.printf "%-6s | %14s %14s %14s\n" "bench" "static base" "static aware"
    "periodic aware";
  List.iter
    (fun name ->
      let design = Benchmarks.generate (Option.get (Benchmarks.find name)) in
      let baseline = Placer.aging_unaware design in
      let remapped = (Remap.solve ~mode:Rotation.Rotate design baseline).Remap.mapping in
      let horizon_epochs = 600 and epoch_years = 2.0 in
      let run strategy =
        let o = Lifetime.simulate design ~epochs:horizon_epochs ~epoch_years strategy in
        match o.Lifetime.failed_at_years with
        | Some y -> Printf.sprintf "%8.1f yrs" y
        | None -> Printf.sprintf ">%7.0f yrs" (float_of_int horizon_epochs *. epoch_years)
      in
      Printf.printf "%-6s | %14s %14s %14s\n%!" name
        (run (Lifetime.Static baseline))
        (run (Lifetime.Static remapped))
        (run (Lifetime.wear_aware_strategy design ~baseline ~start:remapped)))
    [ "B1"; "B10"; "B13" ];
  Printf.printf
    "\n(re-leveling against accumulated wear at every epoch boundary extends life\n";
  Printf.printf
    " beyond any static floorplan — the regime the paper's refs [3], [8] target,\n";
  Printf.printf " here with the delay guarantee preserved at every epoch)\n"

(* ---------- Table I robustness: multiple generator seeds ---------- *)

let bench_table1_seeds () =
  header "Table I robustness: MTTF increase across 5 benchmark-generator seeds";
  Printf.printf
    "(the paper's B1-B27 are unpublished C programs; our stand-ins are seeded\n";
  Printf.printf
    " synthetic designs, so the result must be stable across the seed choice)\n\n";
  Printf.printf "%-6s | %8s %8s %8s | %8s\n" "bench" "mean" "min" "max" "paper";
  List.iter
    (fun name ->
      let spec = Option.get (Benchmarks.find name) in
      let xs =
        List.map
          (fun seed ->
            let design = Benchmarks.generate ~seed spec in
            let baseline = Placer.aging_unaware design in
            let r = Remap.solve ~mode:Rotation.Rotate design baseline in
            Mttf.improvement design ~baseline ~remapped:r.Remap.mapping)
          [ 11; 23; 37; 51; 77 ]
      in
      let arr = Array.of_list xs in
      Printf.printf "%-6s | %7.2fx %7.2fx %7.2fx | %7.2fx\n%!" name (Stats.mean arr)
        (Stats.fmin arr) (Stats.fmax arr) spec.Benchmarks.paper_rotate)
    [ "B1"; "B10"; "B19"; "B4"; "B13"; "B22" ]

(* ---------- Ablation: physical routing check ---------- *)

let bench_ablation_routing () =
  header "Physical check: routing the floorplans (PathFinder, 2 tracks/channel)";
  let params = { Router.default_params with Router.capacity = 2 } in
  Printf.printf "%-6s %-10s | %8s %8s %8s | %10s %10s\n" "bench" "floorplan" "detour"
    "maxuse" "overuse" "manh. CPD" "routed CPD";
  List.iter
    (fun name ->
      let design = Benchmarks.generate (Option.get (Benchmarks.find name)) in
      let baseline = Placer.aging_unaware design in
      let remapped = (Remap.solve ~mode:Rotation.Rotate design baseline).Remap.mapping in
      List.iter
        (fun (label, mapping) ->
          let results = Router.route_all ~params design mapping in
          let detour =
            Stats.mean (Array.map Router.detour_factor results)
          in
          let maxuse =
            Array.fold_left (fun a r -> max a r.Router.max_channel_usage) 0 results
          in
          let overuse =
            Array.fold_left (fun a r -> a + r.Router.overused_channels) 0 results
          in
          Printf.printf "%-6s %-10s | %8.3f %8d %8d | %8.2fns %8.2fns\n%!" name label
            detour maxuse overuse
            (Analysis.cpd design mapping)
            (Router.routed_cpd design results))
        [ ("baseline", baseline); ("remapped", remapped) ])
    [ "B1"; "B10"; "B13" ];
  Printf.printf
    "\n(the re-mapped floorplans stay congestion-free and their routed CPD matches\n";
  Printf.printf
    " the Manhattan wire model the MILP reasons with, so the no-delay-increase\n";
  Printf.printf " guarantee survives physical routing)\n"

(* ---------- Ablation: NBTI technology-constant sensitivity ---------- *)

let bench_ablation_nbti () =
  header "Sensitivity: MTTF improvement vs unpublished NBTI constants";
  let design = Benchmarks.generate (Option.get (Benchmarks.find "B13")) in
  let baseline = Placer.aging_unaware design in
  let remapped = (Remap.solve ~mode:Rotation.Rotate design baseline).Remap.mapping in
  Printf.printf "%8s %8s | %12s\n" "n" "Ea (eV)" "MTTF factor";
  List.iter
    (fun n_exp ->
      List.iter
        (fun ea_ev ->
          let nbti = { Nbti.default_params with Nbti.n_exp; ea_ev } in
          let imp = Mttf.improvement ~nbti design ~baseline ~remapped in
          Printf.printf "%8.2f %8.2f | %11.2fx\n%!" n_exp ea_ev imp)
        [ 0.05; 0.10; 0.15 ])
    [ 0.16; 0.20; 0.25; 0.30 ];
  Printf.printf
    "\n(from Eq. (1), t_fail scales as 1/duty independent of n; the constants only\n";
  Printf.printf
    " modulate the thermal coupling, so the reported improvement factors are\n";
  Printf.printf " robust to the technology parameters the paper does not publish)\n"

(* ---------- Bechamel micro-benchmarks ---------- *)

let bench_micro () =
  header "Bechamel micro-benchmarks (one per table/figure pipeline stage)";
  let open Bechamel in
  let tiny = Benchmarks.tiny () in
  let tiny_baseline = Placer.aging_unaware tiny in
  let b1 = Benchmarks.generate (Option.get (Benchmarks.find "B1")) in
  let b1_baseline = Placer.aging_unaware b1 in
  let tests =
    [
      (* Table I inner loop: the full Algorithm-1 flow. *)
      Test.make ~name:"table1/remap-B1"
        (Staged.stage (fun () -> ignore (Remap.solve ~mode:Rotation.Freeze b1 b1_baseline)));
      (* Fig. 2a: stress accounting. *)
      Test.make ~name:"fig2a/stress-accumulate"
        (Staged.stage (fun () -> ignore (Stress.accumulated tiny tiny_baseline)));
      (* Fig. 2b: NBTI curve + MTTF solve. *)
      Test.make ~name:"fig2b/mttf-eval"
        (Staged.stage (fun () -> ignore (Mttf.of_mapping tiny tiny_baseline)));
      (* Fig. 4: rotation planning. *)
      Test.make ~name:"fig4/rotate-plan"
        (Staged.stage (fun () -> ignore (Rotation.rotate_reference tiny tiny_baseline)));
      (* Fig. 5 regroups Table I; its unit of work is the thermal solve. *)
      Test.make ~name:"fig5/thermal-steady-state"
        (Staged.stage (fun () -> ignore (Thermal.pe_temperatures tiny tiny_baseline)));
      (* Substrates: timing analysis and baseline placement. *)
      Test.make ~name:"substrate/timing-cpd"
        (Staged.stage (fun () -> ignore (Analysis.cpd b1 b1_baseline)));
      Test.make ~name:"substrate/placer-greedy"
        (Staged.stage (fun () -> ignore (Placer.greedy b1)));
    ]
  in
  List.iter
    (fun test ->
      let instances = [ Toolkit.Instance.monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      List.iter
        (fun (name, result) ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-32s %14.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "%-32s (no estimate)\n%!" name)
        (List.sort
           (fun (a, _) (b, _) -> compare a b)
           (Hashtbl.fold (fun name r acc -> (name, r) :: acc) analyzed [])))
    tests

(* ---------- presolve: reductions over the 28 Table-I formulations ---------- *)

(* For every benchmark: build the full Eq.(3) formulation, presolve
   it, and solve the MILP twice (presolve off/on, shared node and
   wall-clock budget). The presolved solve's solution — postsolved
   back to the original variable space by [Milp] — is certified
   against the ORIGINAL model by the exact-rational [Certify] layer,
   which is what "the reductions are sound" means operationally. *)
let bench_presolve () =
  header "presolve: Eq.(3) reductions + certified postsolve, 28 benchmarks";
  let module Presolve = Agingfp_lp.Presolve in
  let module Certify = Agingfp_lp.Certify in
  let module Budget = Agingfp_util.Budget in
  let designs =
    Benchmarks.tiny ()
    :: (Array.to_list Benchmarks.table1
       |> List.filter (fun s -> (not !quick) || s.Benchmarks.dim <= 8)
       |> List.map (fun s -> Benchmarks.generate s))
  in
  let nnz_of model =
    let n = ref 0 in
    LpModel.iter_constraints model (fun _ lhs _ _ ->
        n := !n + List.length (LpExpr.terms lhs));
    !n
  in
  let certified = ref 0 and attempted = ref 0 and status_mismatches = ref 0 in
  let agg = ref Presolve.no_reductions in
  let table = ref [] in
  List.iter
    (fun design ->
      let name = Design.name design in
      let baseline = Placer.aging_unaware design in
      let inst, _st = Remap.build_formulation ~mode:Rotation.Freeze design baseline in
      let model = Ilp_model.model inst in
      let rows0 = LpModel.num_constraints model and vars0 = LpModel.num_vars model in
      let nnz0 = nnz_of model in
      let out, pre_dt = time_it (fun () -> Presolve.run model) in
      match out with
      | Presolve.Proven_infeasible msg ->
        (* Some Freeze-mode joint formulations are genuinely infeasible
           (Remap's degradation ladder handles those downstream); the
           claim counts as certified when the plain solver agrees. *)
        let params =
          {
            Milp.default_params with
            Milp.presolve = false;
            Milp.node_limit = 150;
            budget = Budget.create ~deadline_s:10.0 ();
          }
        in
        incr attempted;
        (match Milp.solve ~params model with
        | Milp.Infeasible ->
          incr certified;
          Printf.printf "%-5s presolve proved infeasible (%s); solver agrees\n%!" name
            msg
        | Milp.Feasible _ ->
          incr status_mismatches;
          Printf.printf "%-5s STATUS MISMATCH: presolve says infeasible (%s), solver found a point\n%!"
            name msg
        | Milp.Unknown ->
          Printf.printf "%-5s presolve proved infeasible (%s); solver ran out of budget\n%!"
            name msg)
      | Presolve.Reduced p ->
        let r = Presolve.reductions p in
        agg := Presolve.add_reductions !agg r;
        let solve presolve =
          let params =
            {
              Milp.default_params with
              Milp.node_limit = 150;
              presolve;
              budget = Budget.create ~deadline_s:3.0 ();
            }
          in
          fst (time_it (fun () -> Milp.solve_with_stats ~params model))
        in
        let res_off, s_off = solve false in
        let res_on, s_on = solve true in
        incr attempted;
        (match (res_off, res_on) with
        | Milp.Feasible _, Milp.Infeasible | Milp.Infeasible, Milp.Feasible _ ->
          incr status_mismatches;
          Printf.printf "%-5s STATUS MISMATCH: presolve off/on disagree\n%!" name
        | _ -> ());
        (match res_on with
        | Milp.Feasible _ -> (
          match Certify.result model res_on with
          | Certify.Certified -> incr certified
          | v ->
            Printf.printf "%-5s certify FAILED: %s\n%!" name
              (Format.asprintf "%a" Certify.pp_verdict v))
        | Milp.Infeasible | Milp.Unknown -> (
          (* No incumbent within the ablation budget (the joint MILP of
             the biggest fabrics is normally decomposed per-context by
             Remap, never solved whole). Certify presolve∘postsolve on
             the LP relaxation instead: solve the REDUCED LP, map the
             point back, and exact-check it against the ORIGINAL
             model's rows, bounds and objective. *)
          let sp =
            {
              Simplex.default_params with
              Simplex.budget = Budget.create ~deadline_s:120.0 ();
            }
          in
          match Simplex.solve ~params:sp (Presolve.reduced p) with
          | Simplex.Optimal sol -> (
            let x = Presolve.postsolve p sol.Simplex.values in
            match
              Certify.solution ~relaxation:true model { sol with Simplex.values = x }
            with
            | Certify.Certified ->
              incr certified;
              Printf.printf "%-5s certified via LP-relaxation postsolve\n%!" name
            | v ->
              Printf.printf "%-5s LP certify FAILED: %s\n%!" name
                (Format.asprintf "%a" Certify.pp_verdict v))
          | Simplex.Infeasible ->
            (* Integrality-based reductions may legitimately leave an
               LP-infeasible reduced problem when the joint MILP has
               no integer point (several Freeze-mode formulations are
               proven infeasible); this is a claim about the ORIGINAL
               instance, so cross-check it with the plain solver. *)
            (match res_off with
            | Milp.Infeasible ->
              incr certified;
              Printf.printf "%-5s reduced LP infeasible; plain solver agrees the MILP is\n%!"
                name
            | Milp.Feasible _ ->
              incr status_mismatches;
              Printf.printf
                "%-5s STATUS MISMATCH: reduced LP infeasible but plain solver found a point\n%!"
                name
            | Milp.Unknown ->
              Printf.printf
                "%-5s reduced LP infeasible; plain solver unresolved within budget\n%!"
                name)
          | s ->
            Printf.printf "%-5s reduced LP did not reach optimality (%s)\n%!" name
              (match s with
              | Simplex.Unbounded -> "unbounded"
              | Simplex.Iteration_limit -> "iteration limit"
              | Simplex.Deadline -> "deadline"
              | Simplex.Fault f -> "fault: " ^ f
              | Simplex.Infeasible | Simplex.Optimal _ -> assert false)));
        table :=
          [|
            name;
            Printf.sprintf "%dx%d" rows0 vars0;
            string_of_int nnz0;
            string_of_int r.Presolve.rows_removed;
            string_of_int (r.Presolve.vars_fixed + r.Presolve.vars_substituted);
            string_of_int (r.Presolve.nnz_removed - r.Presolve.nnz_fillin);
            Printf.sprintf "%d>%d" s_off.Milp.nodes s_on.Milp.nodes;
            Printf.sprintf "%d>%d" s_off.Milp.lp_iterations s_on.Milp.lp_iterations;
            Printf.sprintf "%.3f" pre_dt;
          |]
          :: !table)
    designs;
  print_endline
    (Ascii_table.render
       ~header:
         [|
           "bench"; "rows x vars"; "nnz"; "-rows"; "-vars"; "nnz net"; "nodes off>on";
           "iters off>on"; "presolve s";
         |]
       (List.rev !table));
  Format.printf "aggregate: %a@.per-rule:@.  @[<v>%a@]@." Presolve.pp_reductions !agg
    Presolve.pp_per_rule !agg;
  Printf.printf "certified %d/%d original-space solutions, %d status mismatches\n%!"
    !certified !attempted !status_mismatches

(* ---------- smoke-lp: cold vs. warm branch & bound ---------- *)

(* One mid-size Eq.(3)-shaped MILP solved twice with identical
   parameters except [warm_start] — machine-readable trajectory record
   in BENCH_lp.json. The generator mirrors the formulation-(3)
   structure presolve exploits: one-hot assignment rows where frozen
   critical-path operations have a single candidate (singleton rows
   whose fixings cascade through the capacity rows) and contested
   operations only two, per-(ctx,PE) capacity rows, tight per-PE
   stress knapsacks, per-PE wear-bookkeeping variables (continuous,
   defined by one equality each — implied-free), and Eq.(5)
   displacement rows over path-endpoint pairs, some clique-redundant
   and some tight enough to strengthen. *)
let bench_smoke_lp () =
  header "smoke-lp: presolve + warm-started B&B on an Eq.(3)-shaped MILP";
  let contexts = 6 and ops = 10 and npes = 16 in
  let side = 4 in
  (* npes = side * side *)
  let grid_disp a b = abs ((a mod side) - (b mod side)) + abs ((a / side) - (b / side)) in
  let seed = ref 987654321 in
  let rand n =
    seed := ((1103515245 * !seed) + 12345) land 0x3FFFFFFF;
    !seed mod n
  in
  let lp = LpModel.create () in
  let stress_terms = Array.make npes [] in
  let cap = Hashtbl.create 64 in
  let obj = ref LpExpr.zero in
  let total_stress = ref 0.0 in
  (* cands.(ctx).(op) = (pe, var, displacement from home) list *)
  let cands = Array.init contexts (fun _ -> Array.make ops []) in
  (* Homes form a per-context permutation, so "every op at home" is a
     feasible witness for the assignment + capacity rows (and, at zero
     displacement, for every path row); [home_load] makes the stress
     budget cover that witness too. *)
  let home_load = Array.make npes 0.0 in
  let base_perm = Array.init npes (fun i -> i) in
  for i = npes - 1 downto 1 do
    let j = rand (i + 1) in
    let t = base_perm.(i) in
    base_perm.(i) <- base_perm.(j);
    base_perm.(j) <- t
  done;
  for ctx = 0 to contexts - 1 do
    (* Rotating one base permutation spreads the home load evenly
       across PEs, as the paper's rotation scheduler does. *)
    let perm = Array.init npes (fun i -> base_perm.((i + (3 * ctx)) mod npes)) in
    for op = 0 to ops - 1 do
      let st_op = 0.5 +. (float_of_int (rand 100) /. 100.0) in
      total_stress := !total_stress +. st_op;
      (* Frozen ops keep their single (home) candidate; contested ops
         have two; the rest four — Table I's mix of pinned
         critical-path operations and movable ones. *)
      let ncand = match rand 10 with 0 | 1 -> 1 | 2 | 3 -> 2 | _ -> 4 in
      let home = perm.(op) in
      home_load.(home) <- home_load.(home) +. st_op;
      let terms = ref [] in
      let used = Array.make npes false in
      for c = 0 to ncand - 1 do
        let pe = ref (if c = 0 then home else rand npes) in
        while used.(!pe) do
          pe := (!pe + 1) mod npes
        done;
        used.(!pe) <- true;
        let v = LpModel.add_binary ~name:(Printf.sprintf "x_%d_%d_%d" ctx op !pe) lp in
        terms := LpExpr.var v :: !terms;
        cands.(ctx).(op) <- (!pe, v, grid_disp !pe home) :: cands.(ctx).(op);
        stress_terms.(!pe) <- (st_op, v) :: stress_terms.(!pe);
        let key = (ctx, !pe) in
        let cur = try Hashtbl.find cap key with Not_found -> [] in
        Hashtbl.replace cap key (v :: cur);
        obj := LpExpr.add_term !obj (float_of_int (rand 1000) /. 1000.0) v
      done;
      ignore (LpModel.add_constraint lp (LpExpr.sum !terms) LpModel.Eq 1.0)
    done
  done;
  List.iter
    (fun (_, vs) ->
      match vs with
      | [] | [ _ ] -> ()
      | vs ->
        ignore
          (LpModel.add_constraint lp (LpExpr.sum (List.map LpExpr.var vs)) LpModel.Le 1.0))
    (List.sort
       (fun (a, _) (b, _) -> compare a b)
       (Hashtbl.fold (fun k vs acc -> (k, vs) :: acc) cap []));
  (* Tight budgets force fractional LP vertices, hence real branching;
     covering the all-at-home witness keeps the instance feasible. *)
  let budget =
    Float.max
      (!total_stress /. float_of_int npes *. 1.35)
      (Array.fold_left Float.max 0.0 home_load)
  in
  for pe = 0 to npes - 1 do
    match stress_terms.(pe) with
    | [] -> ()
    | terms ->
      let lhs = LpExpr.sum (List.map (fun (c, v) -> LpExpr.var ~coef:c v) terms) in
      ignore (LpModel.add_constraint lp lhs LpModel.Le budget)
  done;
  (* Per-PE wear bookkeeping: s_pe = accumulated stress, one defining
     equality each, lightly priced in the objective. Unbudgeted (the
     knapsacks above already bound the load), so each s_pe is
     implied-free and presolve substitutes it away. *)
  for pe = 0 to npes - 1 do
    match stress_terms.(pe) with
    | [] -> ()
    | terms ->
      let s =
        LpModel.add_var ~name:(Printf.sprintf "wear_%d" pe) ~lb:0.0 ~ub:100.0
          ~kind:LpModel.Continuous lp
      in
      let lhs =
        LpExpr.sub
          (LpExpr.sum (List.map (fun (c, v) -> LpExpr.var ~coef:c v) terms))
          (LpExpr.var s)
      in
      ignore (LpModel.add_constraint lp lhs LpModel.Eq 0.0);
      obj := LpExpr.add_term !obj 0.01 s
  done;
  (* Eq.(5) displacement rows over path-endpoint pairs (op 2i, 2i+1):
     each candidate contributes its displacement from home. Even
     pairs get a generous budget — redundant once the one-hot cliques
     cap each endpoint's contribution at its worst single candidate —
     odd pairs a tight one that excludes the worst combinations
     (probing and coefficient strengthening territory). *)
  let n_path_rows = ref 0 in
  for ctx = 0 to contexts - 1 do
    for pair = 0 to (ops / 2) - 1 do
      let u = 2 * pair and v = (2 * pair) + 1 in
      let dterms =
        List.concat_map
          (fun (_, x, d) -> if d > 0 then [ (float_of_int d, x) ] else [])
          (cands.(ctx).(u) @ cands.(ctx).(v))
      in
      let max_disp l =
        List.fold_left (fun a (_, _, d) -> max a d) 0 l
      in
      let du = max_disp cands.(ctx).(u) and dv = max_disp cands.(ctx).(v) in
      if dterms <> [] && du + dv > 0 then begin
        let budget =
          if pair mod 2 = 0 then float_of_int (du + dv) (* clique-redundant *)
          else float_of_int (max 1 (max du dv + 1 - (rand 2))) (* tight *)
        in
        ignore
          (LpModel.add_constraint lp
             (LpExpr.sum (List.map (fun (c, x) -> LpExpr.var ~coef:c x) dterms))
             LpModel.Le budget);
        incr n_path_rows
      end
    done
  done;
  LpModel.set_objective lp LpModel.Minimize !obj;
  Printf.printf
    "instance: %d vars (%d wear), %d rows (%d path), per-PE budget %.3f\n%!"
    (LpModel.num_vars lp) npes (LpModel.num_constraints lp) !n_path_rows budget;
  let run ?(presolve = true) ?(label = "") warm =
    (* Cuts and heuristics are benchmarked in their own ablation below;
       keep the presolve/warm legs measuring exactly what they always
       did. *)
    let params =
      {
        Milp.default_params with
        Milp.node_limit = 400;
        first_solution = false;
        warm_start = warm;
        presolve;
        cuts = Cuts.off;
        heuristics = Heuristics.off;
      }
    in
    let (result, stats), dt = time_it (fun () -> Milp.solve_with_stats ~params lp) in
    let objective =
      match result with Milp.Feasible sol -> sol.Agingfp_lp.Simplex.objective | _ -> nan
    in
    Printf.printf "%-6s %-28s %6.3fs | %s\n%!"
      (if label <> "" then label else if warm then "warm" else "cold")
      (Format.asprintf "%a" Milp.pp_result result)
      dt
      (Format.asprintf "%a" Milp.pp_stats stats);
    (objective, stats, dt)
  in
  (* Presolve ablation first: the same cold solve with the pass off. *)
  let nopre_obj, nopre_stats, nopre_dt = run ~presolve:false ~label:"nopre" false in
  let cold_obj, cold_stats, cold_dt = run false in
  let warm_obj, warm_stats, warm_dt = run true in
  if abs_float (nopre_obj -. cold_obj) > 1e-6 then
    Printf.printf "WARNING: presolve changed the optimum (%.6f vs %.6f)\n" nopre_obj
      cold_obj;
  Printf.printf "presolve ablation: %d -> %d nodes, %d -> %d LP iterations (%.3fs -> %.3fs)\n%!"
    nopre_stats.Milp.nodes cold_stats.Milp.nodes nopre_stats.Milp.lp_iterations
    cold_stats.Milp.lp_iterations nopre_dt cold_dt;
  Format.printf "per-rule: @[<v>%a@]@."
    Agingfp_lp.Presolve.pp_per_rule cold_stats.Milp.presolve;
  let row label (stats : Milp.stats) dt obj =
    [|
      label;
      string_of_int stats.Milp.nodes;
      string_of_int stats.Milp.warm_solves;
      string_of_int stats.Milp.cold_solves;
      string_of_int stats.Milp.lp_iterations;
      Printf.sprintf "%.3f" dt;
      Printf.sprintf "%.4f" obj;
    |]
  in
  print_endline
    (Ascii_table.render
       ~header:[| "mode"; "nodes"; "warm"; "cold"; "LP iters"; "seconds"; "objective" |]
       [ row "cold" cold_stats cold_dt cold_obj; row "warm" warm_stats warm_dt warm_obj ]);
  if abs_float (cold_obj -. warm_obj) > 1e-6 then
    Printf.printf "WARNING: cold and warm objectives differ (%.6f vs %.6f)\n" cold_obj
      warm_obj;
  if warm_stats.Milp.warm_solves = 0 then
    Printf.printf "WARNING: warm run performed no warm solves\n";
  (* Cut separation + heuristic seeding ablation on the same instance
     and the same warm search: separation family legs with heuristics
     off, then the full stack. Every leg must land on the same
     optimum — cuts are accelerations, not relaxations. *)
  header "smoke-lp: Gomory/cover separation + diving/pump ablation";
  let run_cuts label cuts heuristics =
    let params =
      {
        Milp.default_params with
        Milp.node_limit = 400;
        first_solution = false;
        cuts;
        heuristics;
      }
    in
    let (result, stats), dt = time_it (fun () -> Milp.solve_with_stats ~params lp) in
    let objective =
      match result with Milp.Feasible sol -> sol.Agingfp_lp.Simplex.objective | _ -> nan
    in
    (label, objective, stats, dt)
  in
  let cut_legs =
    [
      run_cuts "off" Cuts.off Heuristics.off;
      run_cuts "gomory" { Cuts.default_config with Cuts.cover = false } Heuristics.off;
      run_cuts "cover" { Cuts.default_config with Cuts.gomory = false } Heuristics.off;
      run_cuts "both" Cuts.default_config Heuristics.off;
      run_cuts "both+heur" Cuts.default_config Heuristics.default_config;
    ]
  in
  let jgap g = if Float.is_finite g then Printf.sprintf "%.4f" g else "null" in
  print_endline
    (Ascii_table.render
       ~header:
         [|
           "cuts"; "nodes"; "LP iters"; "separated"; "active"; "aged"; "heur";
           "root gap closed"; "seconds"; "objective";
         |]
       (List.map
          (fun (label, obj, (s : Milp.stats), dt) ->
            [|
              label;
              string_of_int s.Milp.nodes;
              string_of_int s.Milp.lp_iterations;
              string_of_int s.Milp.cuts_separated;
              string_of_int s.Milp.cuts_active;
              string_of_int s.Milp.cuts_aged_out;
              string_of_int s.Milp.heuristic_incumbents;
              jgap s.Milp.root_gap_closed;
              Printf.sprintf "%.3f" dt;
              Printf.sprintf "%.4f" obj;
            |])
          cut_legs));
  List.iter
    (fun (label, obj, _, _) ->
      if abs_float (obj -. cold_obj) > 1e-6 then
        Printf.printf "WARNING: cuts leg %s changed the optimum (%.6f vs %.6f)\n" label
          obj cold_obj)
    cut_legs;
  (match List.rev cut_legs with
  | (_, _, full_stats, _) :: _ ->
    if full_stats.Milp.nodes >= warm_stats.Milp.nodes && warm_stats.Milp.nodes > 1 then
      Printf.printf "WARNING: full cut+heuristic stack did not reduce nodes (%d vs %d)\n"
        full_stats.Milp.nodes warm_stats.Milp.nodes;
    (match
       List.find_opt (fun (l, _, _, _) -> l = "both") cut_legs
     with
    | Some (_, _, s, _)
      when Float.is_finite s.Milp.root_gap_closed && s.Milp.root_gap_closed <= 0.0 ->
      Printf.printf "WARNING: cut rounds closed none of the root gap\n"
    | _ -> ())
  | [] -> ());
  (* Kernel scenario: the same instance solved with the dense
     reference basis inverse and with the sparse LU kernel. Both use
     the warm-started B&B; only [lp_params.kernel] differs. Per-pivot
     time is the honest metric — total seconds also move with node
     ordering noise, pivots don't. *)
  header "smoke-lp: dense reference vs sparse LU basis kernel";
  let run_kernel kind =
    let params =
      {
        Milp.default_params with
        Milp.lp_params = { Milp.default_params.Milp.lp_params with Simplex.kernel = kind };
        node_limit = 400;
        first_solution = false;
      }
    in
    let (result, stats), dt = time_it (fun () -> Milp.solve_with_stats ~params lp) in
    let objective =
      match result with Milp.Feasible sol -> sol.Agingfp_lp.Simplex.objective | _ -> nan
    in
    (objective, stats, dt)
  in
  let dense_obj, dense_stats, dense_dt = run_kernel Basis.Dense in
  let sparse_obj, sparse_stats, sparse_dt = run_kernel Basis.Sparse_lu in
  let per_pivot_us dt (stats : Milp.stats) =
    dt /. float_of_int (max 1 stats.Milp.lp_iterations) *. 1e6
  in
  let kernel_row label (stats : Milp.stats) dt obj =
    [|
      label;
      string_of_int stats.Milp.lp_iterations;
      Printf.sprintf "%.3f" dt;
      Printf.sprintf "%.3f" (per_pivot_us dt stats);
      string_of_int stats.Milp.refactorizations;
      string_of_int stats.Milp.eta_updates;
      string_of_int stats.Milp.fill_in;
      Printf.sprintf "%.4f" obj;
    |]
  in
  print_endline
    (Ascii_table.render
       ~header:
         [|
           "kernel"; "LP iters"; "seconds"; "us/pivot"; "refactor"; "etas"; "peak fill";
           "objective";
         |]
       [
         kernel_row "dense" dense_stats dense_dt dense_obj;
         kernel_row "sparse-lu" sparse_stats sparse_dt sparse_obj;
       ]);
  Printf.printf "kernel speedup %.2fx wall, %.2fx per pivot, fill %d -> %d nnz\n%!"
    (dense_dt /. sparse_dt)
    (per_pivot_us dense_dt dense_stats /. per_pivot_us sparse_dt sparse_stats)
    dense_stats.Milp.fill_in sparse_stats.Milp.fill_in;
  if abs_float (dense_obj -. sparse_obj) > 1e-6 then
    Printf.printf "WARNING: dense and sparse objectives differ (%.6f vs %.6f)\n" dense_obj
      sparse_obj;
  (* Deadline scenario: the remap ladder under a hard wall-clock
     budget. Latency distribution (the robustness claim is about the
     tail, hence p99) plus which rung each run ended on. *)
  header "smoke-lp: deadline-bounded remap ladder";
  (* Small enough to bind on B18, large enough that one uninterruptible
     unit of work (a context pack, the final audit) fits the 2x margin. *)
  let deadline_s = 0.5 in
  let runs_per_design = if !quick then 5 else 15 in
  (* B18 (16x16, 16 contexts) cannot finish its full MILP in 0.25s,
     so the tail of the distribution exercises the ladder for real. *)
  let deadline_designs =
    [ Benchmarks.tiny () ]
    @ List.filter_map
        (fun n -> Option.map Benchmarks.generate (Benchmarks.find n))
        [ "B4"; "B18" ]
  in
  let rung_counts = Hashtbl.create 8 in
  let samples = ref [] in
  List.iter
    (fun design ->
      let baseline = Placer.aging_unaware design in
      let params =
        { Remap.default_params with Remap.deadline_s = Some deadline_s }
      in
      for _ = 1 to runs_per_design do
        let r, dt =
          time_it (fun () -> Remap.solve ~params ~mode:Rotation.Freeze design baseline)
        in
        samples := dt :: !samples;
        let key = Remap.rung_to_string r.Remap.rung in
        Hashtbl.replace rung_counts key
          (1 + try Hashtbl.find rung_counts key with Not_found -> 0)
      done)
    deadline_designs;
  let sorted = Array.of_list !samples in
  Array.sort Float.compare sorted;
  let percentile p =
    let n = Array.length sorted in
    sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))
  in
  let p50 = percentile 0.50 and p99 = percentile 0.99 in
  let rung_rows =
    [ "full-milp"; "relax-and-fix"; "lp-rounding"; "heuristic"; "baseline" ]
    |> List.map (fun r ->
           (r, try Hashtbl.find rung_counts r with Not_found -> 0))
  in
  Printf.printf "deadline %.2fs, %d runs over %d designs: p50 %.3fs, p99 %.3fs, max %.3fs\n"
    deadline_s (Array.length sorted)
    (List.length deadline_designs)
    p50 p99
    sorted.(Array.length sorted - 1);
  List.iter (fun (r, n) -> if n > 0 then Printf.printf "  rung %-13s %d\n" r n) rung_rows;
  if sorted.(Array.length sorted - 1) > 2.0 *. deadline_s then
    Printf.printf "WARNING: a run exceeded twice the deadline\n";
  (* Parallel scenario: the same Eq.(3)-shaped MILP under the
     domain-parallel branch & bound at 1/2/4 domains, plus the suite
     fan-out (independent benchmarks on the pool). Speedups are
     reported next to [domains_available] — on a single-core host the
     honest expectation is ~1.0x, and the scenario then checks
     correctness (identical optimal objective) rather than scaling. *)
  header "smoke-lp: domain-parallel branch & bound scaling";
  let domains_available = Domain.recommended_domain_count () in
  let run_jobs jobs =
    (* Node headroom well past what either search order needs, so every
       leg runs to proven optimality and the objectives must coincide
       exactly; best-of-3 wall time filters OS scheduling noise, which
       dominates when domains outnumber cores. *)
    let params =
      {
        Milp.default_params with
        Milp.node_limit = 4_000;
        first_solution = false;
        jobs;
      }
    in
    let one () =
      let (result, _), dt = time_it (fun () -> Milp.solve_with_stats ~params lp) in
      let objective =
        match result with Milp.Feasible sol -> sol.Agingfp_lp.Simplex.objective | _ -> nan
      in
      (dt, objective)
    in
    let legs = List.init 3 (fun _ -> one ()) in
    let dt = List.fold_left (fun a (t, _) -> min a t) infinity legs in
    let objective = snd (List.hd legs) in
    List.iter
      (fun (_, o) ->
        if abs_float (o -. objective) > 1e-6 then
          Printf.printf "WARNING: jobs=%d repetitions disagree (%.6f vs %.6f)\n" jobs o
            objective)
      legs;
    Printf.printf "  jobs=%d  %6.3fs (best of 3)  objective %.4f\n%!" jobs dt objective;
    (jobs, dt, objective)
  in
  let milp_legs = List.map run_jobs [ 1; 2; 4 ] in
  let _, base_dt, base_obj = List.hd milp_legs in
  List.iter
    (fun (j, _, obj) ->
      if abs_float (obj -. base_obj) > 1e-6 then
        Printf.printf "WARNING: jobs=%d objective differs (%.6f vs %.6f)\n" j obj base_obj)
    milp_legs;
  let suite_designs =
    [ Benchmarks.tiny () ]
    @ List.filter_map
        (fun n -> Option.map Benchmarks.generate (Benchmarks.find n))
        [ "B1"; "B4" ]
  in
  let suite_tasks =
    Array.of_list
      (List.map
         (fun design () ->
           let baseline = Placer.aging_unaware design in
           ignore (Remap.solve ~mode:Rotation.Freeze design baseline))
         suite_designs)
  in
  let suite_run jobs =
    let _, dt =
      time_it (fun () ->
          if jobs = 1 then Array.iter (fun f -> f ()) suite_tasks
          else Pool.run (Pool.get jobs) suite_tasks)
    in
    Printf.printf "  suite fan-out jobs=%d  %6.3fs (%d benchmarks)\n%!" jobs dt
      (Array.length suite_tasks);
    dt
  in
  let suite_1 = suite_run 1 in
  let suite_4 = suite_run 4 in
  Printf.printf
    "domains available: %d; B&B speedup at 4 domains %.2fx; suite fan-out %.2fx\n%!"
    domains_available
    (base_dt /. (let _, dt, _ = List.nth milp_legs 2 in dt))
    (suite_1 /. suite_4);
  (* Tree scenario: the explicit-node search itself. Traversal orders
     and branching rules must all land on the same optimum at
     mip_gap = 0; a 1e-3 gap tolerance should stop earlier with a
     certified incumbent; and the gap-at-time curves show how fast
     each job count closes the dual gap under a hard deadline. *)
  header "smoke-lp: explicit tree search — traversal, branching, gap termination";
  let module UBudget = Agingfp_util.Budget in
  (* Traversal/branching comparisons need a real tree: with root cuts
     the instance closes in a handful of nodes and every leg looks the
     same. *)
  let tree_params =
    {
      Milp.default_params with
      Milp.node_limit = 100_000;
      first_solution = false;
      cuts = Cuts.off;
      heuristics = Heuristics.off;
    }
  in
  let run_tree ?(params = tree_params) label =
    let (result, stats), dt = time_it (fun () -> Milp.solve_with_stats ~params lp) in
    let objective =
      match result with Milp.Feasible sol -> sol.Agingfp_lp.Simplex.objective | _ -> nan
    in
    Printf.printf "  %-24s %6.3fs  %6d nodes  stop %-10s gap %-8s objective %.4f\n%!"
      label dt stats.Milp.nodes
      (UBudget.stop_reason_to_string stats.Milp.stop)
      (if Float.is_finite stats.Milp.gap then Printf.sprintf "%.2g" stats.Milp.gap
       else "inf")
      objective;
    (objective, stats, dt)
  in
  let traversal_legs =
    List.map
      (fun t ->
        let o, s, dt =
          run_tree
            ~params:{ tree_params with Milp.traversal = t }
            (Node_store.strategy_to_string t)
        in
        (Node_store.strategy_to_string t, o, s, dt))
      [ Node_store.Dfs; Node_store.Best_first; Node_store.Hybrid ]
  in
  let branching_legs =
    List.map
      (fun b ->
        let o, s, dt =
          run_tree
            ~params:{ tree_params with Milp.branching = b }
            (Brancher.rule_to_string b)
        in
        (Brancher.rule_to_string b, o, s, dt))
      [ Brancher.Most_fractional; Brancher.Pseudocost ]
  in
  let _, ref_obj, _, _ = List.hd traversal_legs in
  List.iter
    (fun (l, o, _, _) ->
      if abs_float (o -. ref_obj) > 1e-6 then
        Printf.printf "WARNING: %s objective differs (%.6f vs %.6f)\n" l o ref_obj)
    (traversal_legs @ branching_legs);
  let gaptol = 1e-3 in
  let gap_obj, gap_run_stats, gap_dt =
    run_tree ~params:{ tree_params with Milp.mip_gap = gaptol } "mip-gap 1e-3"
  in
  (match gap_run_stats.Milp.stop with
  | UBudget.Gap_limit when gap_run_stats.Milp.gap > gaptol ->
    Printf.printf "WARNING: gap-limit stop with gap %.3g above the tolerance\n"
      gap_run_stats.Milp.gap
  | _ -> ());
  if
    Float.is_finite ref_obj
    && abs_float (gap_obj -. ref_obj)
       > gaptol *. Float.max 1.0 (abs_float ref_obj) +. 1e-9
  then
    Printf.printf "WARNING: gap-limit objective drifted past the tolerance (%.6f vs %.6f)\n"
      gap_obj ref_obj;
  let deadlines = if !quick then [ 0.01; 0.05 ] else [ 0.005; 0.01; 0.025; 0.05; 0.1 ] in
  let gap_curves =
    List.map
      (fun jobs ->
        let curve =
          List.map
            (fun t ->
              let params =
                {
                  tree_params with
                  Milp.jobs;
                  budget = UBudget.create ~deadline_s:t ();
                }
              in
              let (_, stats), dt = time_it (fun () -> Milp.solve_with_stats ~params lp) in
              (t, stats.Milp.gap, stats.Milp.nodes,
               float_of_int stats.Milp.nodes /. Float.max dt 1e-6))
            deadlines
        in
        Printf.printf "  gap-at-time jobs=%d: %s\n%!" jobs
          (String.concat "  "
             (List.map
                (fun (t, g, n, _) ->
                  Printf.sprintf "%.3fs->%s(%dn)" t
                    (if Float.is_finite g then Printf.sprintf "%.2g" g else "inf")
                    n)
                curve));
        (jobs, curve))
      [ 1; 2; 4 ]
  in
  let json_leg (stats : Milp.stats) dt =
    Printf.sprintf
      "{\"seconds\": %.4f, \"nodes\": %d, \"lp_iterations\": %d, \"warm_solves\": %d, \
       \"cold_solves\": %d}"
      dt stats.Milp.nodes stats.Milp.lp_iterations stats.Milp.warm_solves
      stats.Milp.cold_solves
  in
  let json_kernel (stats : Milp.stats) dt =
    Printf.sprintf
      "{\"seconds\": %.4f, \"lp_iterations\": %d, \"us_per_pivot\": %.4f, \
       \"refactorizations\": %d, \"drift_refreshes\": %d, \"eta_updates\": %d, \
       \"peak_fill_nnz\": %d}"
      dt stats.Milp.lp_iterations (per_pivot_us dt stats) stats.Milp.refactorizations
      stats.Milp.drift_refreshes stats.Milp.eta_updates stats.Milp.fill_in
  in
  let tree_json =
    let jf g = if Float.is_finite g then Printf.sprintf "%.6g" g else "null" in
    let leg (l, o, (s : Milp.stats), dt) =
      Printf.sprintf
        "{\"name\": \"%s\", \"seconds\": %.4f, \"nodes\": %d, \"lp_iterations\": %d, \
         \"objective\": %.4f, \"gap\": %s}"
        l dt s.Milp.nodes s.Milp.lp_iterations o (jf s.Milp.gap)
    in
    Printf.sprintf
      "{\"traversals\": [%s],\n\
      \          \"branching\": [%s],\n\
      \          \"gap_limit\": {\"mip_gap\": %.4g, \"seconds\": %.4f, \"nodes\": %d, \
       \"stop\": \"%s\", \"gap\": %s, \"objective\": %.4f},\n\
      \          \"gap_at_time\": [%s]}"
      (String.concat ", " (List.map leg traversal_legs))
      (String.concat ", " (List.map leg branching_legs))
      gaptol gap_dt gap_run_stats.Milp.nodes
      (UBudget.stop_reason_to_string gap_run_stats.Milp.stop)
      (jf gap_run_stats.Milp.gap) gap_obj
      (String.concat ", "
         (List.map
            (fun (jobs, curve) ->
              Printf.sprintf "{\"jobs\": %d, \"curve\": [%s]}" jobs
                (String.concat ", "
                   (List.map
                      (fun (t, g, n, nps) ->
                        Printf.sprintf
                          "{\"deadline_s\": %.4f, \"gap\": %s, \"nodes\": %d, \
                           \"nodes_per_s\": %.1f}"
                          t (jf g) n nps)
                      curve)))
            gap_curves))
  in
  let cuts_json =
    let jf g = if Float.is_finite g then Printf.sprintf "%.6g" g else "null" in
    let leg (label, obj, (s : Milp.stats), dt) =
      Printf.sprintf
        "\"%s\": {\"seconds\": %.4f, \"nodes\": %d, \"lp_iterations\": %d, \
         \"cuts_separated\": %d, \"cuts_active\": %d, \"cuts_aged_out\": %d, \
         \"heuristic_incumbents\": %d, \"root_gap_closed\": %s, \"objective\": %.4f}"
        label dt s.Milp.nodes s.Milp.lp_iterations s.Milp.cuts_separated
        s.Milp.cuts_active s.Milp.cuts_aged_out s.Milp.heuristic_incumbents
        (jf s.Milp.root_gap_closed) obj
    in
    Printf.sprintf "{%s}" (String.concat ",\n           " (List.map leg cut_legs))
  in
  let oc = open_out "BENCH_lp.json" in
  let p = cold_stats.Milp.presolve in
  let per_rule_json =
    String.concat ", "
      (List.filter_map
         (fun (name, r) ->
           if r.Agingfp_lp.Presolve.applications = 0 then None
           else
             Some
               (Printf.sprintf
                  "\"%s\": {\"applications\": %d, \"rows\": %d, \"vars\": %d, \
                   \"coeffs\": %d}"
                  name r.Agingfp_lp.Presolve.applications
                  r.Agingfp_lp.Presolve.rows_touched r.Agingfp_lp.Presolve.vars_touched
                  r.Agingfp_lp.Presolve.coeffs_touched))
         p.Agingfp_lp.Presolve.per_rule)
  in
  Printf.fprintf oc
    "{\n\
    \  \"instance\": {\"binaries\": %d, \"rows\": %d},\n\
    \  \"presolve\": {\"rounds\": %d, \"rows_removed\": %d, \"vars_fixed\": %d, \
     \"vars_substituted\": %d, \"bounds_tightened\": %d, \"coeffs_strengthened\": %d, \
     \"probe_fixings\": %d, \"nnz_removed\": %d, \"nnz_fillin\": %d,\n\
    \               \"ablation\": {\"nodes_off\": %d, \"nodes_on\": %d, \
     \"lp_iterations_off\": %d, \"lp_iterations_on\": %d, \"seconds_off\": %.4f, \
     \"seconds_on\": %.4f},\n\
    \               \"per_rule\": {%s}},\n\
    \  \"cold\": %s,\n\
    \  \"warm\": %s,\n\
    \  \"cuts\": %s,\n\
    \  \"speedup\": %.3f,\n\
    \  \"iteration_ratio\": %.3f,\n\
    \  \"kernel\": {\"dense\": %s,\n\
    \             \"sparse_lu\": %s,\n\
    \             \"wall_speedup\": %.3f, \"pivot_speedup\": %.3f},\n\
    \  \"deadline\": {\"deadline_s\": %.3f, \"runs\": %d, \"p50_s\": %.4f, \"p99_s\": \
     %.4f, \"max_s\": %.4f, \"rungs\": {%s}},\n\
    \  \"parallel\": {\"domains_available\": %d,\n\
    \               \"milp\": [%s],\n\
    \               \"suite\": {\"benchmarks\": %d, \"jobs1_s\": %.4f, \"jobs4_s\": \
     %.4f, \"speedup\": %.3f}},\n\
    \  \"tree\": %s\n\
     }\n"
    (LpModel.num_vars lp) (LpModel.num_constraints lp)
    p.Agingfp_lp.Presolve.rounds p.Agingfp_lp.Presolve.rows_removed
    p.Agingfp_lp.Presolve.vars_fixed p.Agingfp_lp.Presolve.vars_substituted
    p.Agingfp_lp.Presolve.bounds_tightened p.Agingfp_lp.Presolve.coeffs_strengthened
    p.Agingfp_lp.Presolve.probe_fixings p.Agingfp_lp.Presolve.nnz_removed
    p.Agingfp_lp.Presolve.nnz_fillin nopre_stats.Milp.nodes
    cold_stats.Milp.nodes nopre_stats.Milp.lp_iterations
    cold_stats.Milp.lp_iterations nopre_dt cold_dt per_rule_json
    (json_leg cold_stats cold_dt) (json_leg warm_stats warm_dt) cuts_json
    (cold_dt /. warm_dt)
    (float_of_int cold_stats.Milp.lp_iterations
    /. float_of_int (max 1 warm_stats.Milp.lp_iterations))
    (json_kernel dense_stats dense_dt)
    (json_kernel sparse_stats sparse_dt)
    (dense_dt /. sparse_dt)
    (per_pivot_us dense_dt dense_stats /. per_pivot_us sparse_dt sparse_stats)
    deadline_s (Array.length sorted) p50 p99
    sorted.(Array.length sorted - 1)
    (String.concat ", "
       (List.map (fun (r, n) -> Printf.sprintf "\"%s\": %d" r n) rung_rows))
    domains_available
    (String.concat ", "
       (List.map
          (fun (j, dt, obj) ->
            Printf.sprintf
              "{\"jobs\": %d, \"seconds\": %.4f, \"speedup_vs_1\": %.3f, \"objective\": \
               %.4f}"
              j dt (base_dt /. dt) obj)
          milp_legs))
    (Array.length suite_tasks) suite_1 suite_4 (suite_1 /. suite_4) tree_json;
  close_out oc;
  Printf.printf "wrote BENCH_lp.json (speedup %.2fx, iteration ratio %.2fx)\n%!"
    (cold_dt /. warm_dt)
    (float_of_int cold_stats.Milp.lp_iterations
    /. float_of_int (max 1 warm_stats.Milp.lp_iterations))

(* ---------- driver ---------- *)

(* ---------- serve: the remap daemon under load ---------- *)

(* Drives the Table-I mix through a loopback client against a live
   `agingfp serve` daemon and writes BENCH_serve.json: per-benchmark
   cold/warm service latency (client-measured, end to end), sustained
   concurrent throughput, the shed rate of an undersized instance at
   capacity, the warm-cache hit ratio, and an audit sweep across every
   injected fault class. The headline robustness claims: p99 stays
   within the per-request deadline, repeats hit the warm cache, and no
   response anywhere in the run carries an unaudited floorplan. *)
let bench_serve () =
  let module Server = Agingfp_serve.Server in
  let module Client = Agingfp_serve.Client in
  let module Inject = Agingfp_serve.Inject in
  header "serve: remap daemon service latency";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let contains haystack needle =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    n = 0 || go 0
  in
  let deadline_s = 0.6 in
  let mix =
    (("tiny", Benchmarks.tiny ())
    :: (Array.to_list Benchmarks.table1
       |> List.filter (fun (s : Benchmarks.spec) -> (not !quick) || s.Benchmarks.dim <= 8)
       |> List.map (fun (s : Benchmarks.spec) ->
              (s.Benchmarks.bname, Benchmarks.generate s))))
    |> List.map (fun (name, d) -> (name, Serial.design_to_string d))
  in
  let config =
    {
      Server.default_config with
      Server.port = 0;
      workers = 2;
      queue_capacity = 32;
      cache_capacity = 64;
    }
  in
  let server = Server.create ~config () in
  let th = Thread.create Server.run server in
  let port = Server.port server in
  let path = Printf.sprintf "/remap?deadline=%g" deadline_s in
  let post ?(path = path) body =
    match Client.request ~host:"127.0.0.1" ~port ~body path with
    | Ok r -> r
    | Error msg ->
      Printf.printf "WARNING: request failed: %s\n%!" msg;
      { Client.status = 0; headers = []; body = "" }
  in
  let audited = ref 0 and unaudited = ref 0 in
  let note_audit (r : Client.response) =
    (* Every response that carries a floorplan must say so and be
       audited; errors are exempt but counted separately. *)
    if r.Client.status = 200 || r.Client.status = 503 then
      if
        contains r.Client.body "\"audit_ok\":true"
        || Client.header "x-agingfp-audit" r = Some "pass"
      then incr audited
      else incr unaudited
  in
  (* Phase 1: cold + warm pass per benchmark, serially, with the
     client clock as the latency reference. *)
  let rows =
    List.map
      (fun (name, body) ->
        let cold, cold_s = time_it (fun () -> post body) in
        let warm, warm_s = time_it (fun () -> post body) in
        note_audit cold;
        note_audit warm;
        let rung (r : Client.response) =
          Option.value ~default:"?" (Client.header "x-agingfp-rung" r)
        in
        let cache (r : Client.response) =
          Option.value ~default:"?" (Client.header "x-agingfp-cache" r)
        in
        Printf.printf "  %-5s cold %6.3fs (%-13s) warm %6.3fs (%-13s %s)\n%!" name cold_s
          (rung cold) warm_s (rung warm) (cache warm);
        (name, cold_s, warm_s, rung cold, rung warm, cache warm))
      mix
  in
  let latencies =
    List.concat_map (fun (_, c, w, _, _, _) -> [ c; w ]) rows |> Array.of_list
  in
  Array.sort Float.compare latencies;
  let percentile p =
    let n = Array.length latencies in
    latencies.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))
  in
  let p50 = percentile 0.50
  and p99 = percentile 0.99
  and worst = latencies.(Array.length latencies - 1) in
  let warm_hits =
    List.length (List.filter (fun (_, _, _, _, _, c) -> c = "hit") rows)
  in
  let hit_ratio = float_of_int warm_hits /. float_of_int (List.length rows) in
  Printf.printf
    "mix of %d designs, deadline %.2fs: p50 %.3fs p99 %.3fs max %.3fs, warm hit ratio \
     %.2f\n%!"
    (List.length mix) deadline_s p50 p99 worst hit_ratio;
  if p99 > deadline_s then Printf.printf "WARNING: p99 exceeds the request deadline\n%!";
  if hit_ratio < 0.99 then Printf.printf "WARNING: warm repeats missed the cache\n%!";
  (* Phase 2: sustained concurrent throughput on the smallest designs
     (the service overhead dominates there, which is the point). *)
  let sustained_n = if !quick then 20 else 80 in
  let client_threads = 4 in
  let small =
    List.filteri (fun i _ -> i < 3) mix |> List.map snd |> Array.of_list
  in
  let sustained = Array.make sustained_n 0.0 in
  let next = Atomic.make 0 in
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < sustained_n then begin
        let r, dt = time_it (fun () -> post small.(i mod Array.length small)) in
        note_audit r;
        sustained.(i) <- dt;
        go ()
      end
    in
    go ()
  in
  let _, sustained_wall =
    time_it (fun () ->
        let ts = List.init client_threads (fun _ -> Thread.create worker ()) in
        List.iter Thread.join ts)
  in
  Array.sort Float.compare sustained;
  let spct p =
    sustained.(min (sustained_n - 1) (int_of_float (ceil (p *. float_of_int sustained_n)) - 1))
  in
  let req_per_s = float_of_int sustained_n /. sustained_wall in
  Printf.printf
    "sustained: %d requests over %d client threads in %.2fs = %.1f req/s (p50 %.3fs p99 \
     %.3fs)\n%!"
    sustained_n client_threads sustained_wall req_per_s (spct 0.50) (spct 0.99);
  (* Phase 3: fault sweep — every class armed at full probability for
     a few requests; the run passes when nothing unaudited escapes and
     the daemon keeps serving afterwards. *)
  let fault_classes =
    [
      ("raise", { Inject.none with Inject.seed = 11; p_worker_raise = 1.0 });
      ("poison", { Inject.none with Inject.seed = 11; p_cache_poison = 1.0 });
      ("expire", { Inject.none with Inject.seed = 11; p_mid_deadline = 1.0 });
      ("slow", { Inject.none with Inject.seed = 11; slow_write_delay_s = 0.02 });
    ]
  in
  let tiny_body = List.assoc "tiny" mix in
  let fault_rows =
    List.map
      (fun (cls, spec) ->
        let statuses =
          Inject.with_spec spec (fun () ->
              List.init 3 (fun _ ->
                  let r =
                    if spec.Inject.slow_write_delay_s > 0.0 then
                      match
                        Client.request ~host:"127.0.0.1" ~port ~body:tiny_body
                          ~slow_write_delay_s:spec.Inject.slow_write_delay_s path
                      with
                      | Ok r -> r
                      | Error _ -> { Client.status = 0; headers = []; body = "" }
                    else post tiny_body
                  in
                  note_audit r;
                  r.Client.status))
        in
        let after = post tiny_body in
        note_audit after;
        Printf.printf "  fault %-6s statuses %s; serves %d afterwards\n%!" cls
          (String.concat "," (List.map string_of_int statuses))
          after.Client.status;
        (cls, statuses, after.Client.status))
      fault_classes
  in
  (* Phase 4: shed rate of a deliberately undersized instance (1
     worker, queue of 1) under a concurrent burst. *)
  let small_config =
    { config with Server.workers = 1; queue_capacity = 1 }
  in
  let small_server = Server.create ~config:small_config () in
  let small_th = Thread.create Server.run small_server in
  let small_port = Server.port small_server in
  let burst_n = if !quick then 16 else 48 in
  let served = Atomic.make 0 and shed = Atomic.make 0 and other = Atomic.make 0 in
  let burst_worker () =
    for _ = 1 to burst_n / 8 do
      match
        Client.request ~host:"127.0.0.1" ~port:small_port ~body:tiny_body path
      with
      | Ok r ->
        if r.Client.status = 429 then Atomic.incr shed
        else if r.Client.status = 200 || r.Client.status = 503 then Atomic.incr served
        else Atomic.incr other
      | Error _ -> Atomic.incr other
    done
  in
  let ts = List.init 8 (fun _ -> Thread.create burst_worker ()) in
  List.iter Thread.join ts;
  let shed_rate = float_of_int (Atomic.get shed) /. float_of_int burst_n in
  Printf.printf
    "overload (1 worker, queue 1): %d requests -> %d served, %d shed (rate %.2f), %d \
     other\n%!"
    burst_n (Atomic.get served) (Atomic.get shed) shed_rate (Atomic.get other);
  Server.request_stop small_server;
  Thread.join small_th;
  (* Server-side counters, embedded verbatim (the body is JSON). *)
  let stats_body =
    match Client.request ~meth:"GET" ~host:"127.0.0.1" ~port "/stats" with
    | Ok r when r.Client.status = 200 -> r.Client.body
    | _ -> ""
  in
  Server.request_stop server;
  Thread.join th;
  Printf.printf "faults: %d audited floorplan responses, %d unaudited\n%!" !audited
    !unaudited;
  if !unaudited > 0 then Printf.printf "WARNING: unaudited responses escaped\n%!";
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc "{\n  \"deadline_s\": %g,\n  \"mix\": [\n" deadline_s;
  List.iteri
    (fun i (name, c, w, rc, rw, cache) ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"cold_s\": %.4f, \"warm_s\": %.4f, \"cold_rung\": \
         \"%s\", \"warm_rung\": \"%s\", \"warm_cache\": \"%s\"}%s\n"
        name c w rc rw cache
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"p50_s\": %.4f,\n  \"p99_s\": %.4f,\n  \"max_s\": %.4f,\n" p50 p99
    worst;
  Printf.fprintf oc "  \"p99_within_deadline\": %b,\n" (p99 <= deadline_s);
  Printf.fprintf oc "  \"warm_hit_ratio\": %.4f,\n" hit_ratio;
  Printf.fprintf oc
    "  \"sustained\": {\"requests\": %d, \"client_threads\": %d, \"seconds\": %.3f, \
     \"req_per_s\": %.2f, \"p50_s\": %.4f, \"p99_s\": %.4f},\n"
    sustained_n client_threads sustained_wall req_per_s (spct 0.50) (spct 0.99);
  Printf.fprintf oc
    "  \"overload\": {\"requests\": %d, \"served\": %d, \"shed\": %d, \"shed_rate\": \
     %.3f},\n"
    burst_n (Atomic.get served) (Atomic.get shed) shed_rate;
  Printf.fprintf oc "  \"faults\": {\n";
  List.iteri
    (fun i (cls, statuses, after) ->
      Printf.fprintf oc "    \"%s\": {\"statuses\": [%s], \"serves_after\": %d}%s\n" cls
        (String.concat ", " (List.map string_of_int statuses))
        after
        (if i = List.length fault_rows - 1 then "" else ","))
    fault_rows;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"audited_responses\": %d,\n  \"unaudited_responses\": %d,\n"
    !audited !unaudited;
  Printf.fprintf oc "  \"server_stats\": %s\n}\n"
    (if stats_body = "" then "null" else stats_body);
  close_out oc;
  Printf.printf "wrote BENCH_serve.json (%.1f req/s sustained, p99 %.3fs vs deadline \
                 %.2fs)\n%!"
    req_per_s p99 deadline_s

let all_experiments =
  [
    ("table1", bench_table1);
    ("fig2a", bench_fig2a);
    ("fig2b", bench_fig2b);
    ("fig4", bench_fig4);
    ("fig5", bench_fig5);
    ("ablation-ilp", bench_ablation_ilp);
    ("ablation-naive", bench_ablation_naive);
    ("ablation-encoding", bench_ablation_encoding);
    ("ablation-decomp", bench_ablation_decomp);
    ("ablation-related", bench_ablation_related);
    ("ablation-lifetime", bench_ablation_lifetime);
    ("ablation-nbti", bench_ablation_nbti);
    ("ablation-routing", bench_ablation_routing);
    ("table1-seeds", bench_table1_seeds);
    ("smoke-lp", bench_smoke_lp);
    ("presolve", bench_presolve);
    ("serve", bench_serve);
    ("micro", bench_micro);
  ]

(* Logs reporters are not domain-safe; the parallel scenarios log from
   pool domains, so serialize the whole report path. *)
let mutex_reporter inner =
  let m = Mutex.create () in
  {
    Logs.report =
      (fun src level ~over k msgf ->
        Mutex.lock m;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock m)
          (fun () -> inner.Logs.report src level ~over k msgf));
  }

let () =
  Logs.set_reporter (mutex_reporter (Logs.format_reporter ()));
  Logs.set_level (Some Logs.Error);
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if a = "--quick" then begin
          quick := true;
          false
        end
        else true)
      args
  in
  let selected =
    match args with
    | [] -> all_experiments
    | names ->
      List.map
        (fun name ->
          match List.assoc_opt name all_experiments with
          | Some f -> (name, f)
          | None ->
            Printf.eprintf "unknown experiment %S; known: %s\n" name
              (String.concat ", " (List.map fst all_experiments));
            exit 2)
        names
  in
  let t0 = Unix.gettimeofday () in
  List.iter (fun (_, f) -> f ()) selected;
  Printf.printf "\ntotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)
