(* The remap daemon: `agingfp serve`.

   Architecture (DESIGN.md §15): one acceptor thread owns the listen
   socket and does nothing but admit connections into a bounded queue
   (so a slow or hostile client can never stall admission); a fixed
   set of worker loops — run as one long-lived [Pool] batch, so the
   submitting thread itself is one of the workers — pop connections
   and do the read/parse/solve/respond work; a self-pipe plus an
   atomic stop flag implement the SIGTERM/SIGINT drain. Robustness
   contract: every response that carries a floorplan passed the
   independent {!Audit}; everything else is a structured error with
   the right status code; the daemon itself survives any client input
   and any injected fault ({!Inject}). *)

open Agingfp_cgrra
module Remap = Agingfp_floorplan.Remap
module Audit = Agingfp_floorplan.Audit
module Rotation = Agingfp_floorplan.Rotation
module Placer = Agingfp_place.Placer
module Thermal = Agingfp_thermal.Model
module Nbti = Agingfp_aging.Nbti
module Budget = Agingfp_util.Budget
module Pool = Agingfp_util.Pool
module Invariant = Agingfp_util.Invariant
module Json = Agingfp_lintcode.Json

let src = Logs.Src.create "agingfp.serve" ~doc:"Remap daemon"

module Log = (val Logs.src_log src : Logs.LOG)

(* ---------- configuration ---------- *)

type config = {
  host : string;
  port : int;  (* 0 = ephemeral; read the bound port with {!port} *)
  workers : int;
  queue_capacity : int;  (* admission queue bound; beyond it, 429 *)
  default_deadline_s : float;
  max_deadline_s : float;
  max_total_ops : int;  (* semantic admission bound after parsing *)
  max_dim : int;
  cache_capacity : int;
  limits : Http.limits;
  remap_params : Remap.params;  (* deadline_s/jobs overridden per request *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    workers = 2;
    queue_capacity = 16;
    default_deadline_s = 2.0;
    max_deadline_s = 60.0;
    max_total_ops = 20_000;
    max_dim = 32;
    cache_capacity = 32;
    limits = Http.default_limits;
    remap_params = Remap.default_params;
  }

(* ---------- server state ---------- *)

(* A warm-cache entry. The digests restate the key so a checked-out
   entry can be validated against the request that claimed it — the
   defence the cache-poisoning injection exercises. [design_digest]
   is mutable purely so {!Inject.poison_cache} has something real to
   corrupt. *)
type entry = {
  mutable design_digest : string;
  baseline_digest : string;
  warm : Remap.warm;
}

type job = { fd : Unix.file_descr; arrived : Budget.t (* stopwatch *) }

type counters = {
  mutable accepted : int;
  mutable served : int;  (* 200s *)
  mutable degraded : int;  (* 503s carrying the audited baseline *)
  mutable shed : int;  (* 429s *)
  mutable client_errors : int;  (* 4xx except 408/429 *)
  mutable timeouts : int;  (* 408s *)
  mutable internal_errors : int;  (* 500s, including injected *)
  mutable drained : int;  (* queued connections answered 503 during drain *)
  mutable ewma_service_s : float;
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stop : bool Atomic.t;
  queue : job Queue.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  cache : entry Cache.t;
  (* dim -> factorized steady-state solver; find/replace only, never
     iterated, so no order sensitivity. *)
  thermal : (int, float array -> float array) Hashtbl.t;
  tmutex : Mutex.t;
  stats : counters;
  smutex : Mutex.t;
  pool : Pool.t;
}

let validate_config c =
  if c.workers < 1 || c.workers > 64 then
    Invariant.invalid ~where:"Server.create" "workers must be in [1, 64]";
  if c.queue_capacity < 1 then
    Invariant.invalid ~where:"Server.create" "queue capacity must be positive";
  if c.default_deadline_s <= 0.0 || c.max_deadline_s <= 0.0 then
    Invariant.invalid ~where:"Server.create" "deadlines must be positive";
  if c.cache_capacity < 1 then
    Invariant.invalid ~where:"Server.create" "cache capacity must be positive"

let create ?(config = default_config) () =
  validate_config config;
  let addr =
    match
      Unix.getaddrinfo config.host (string_of_int config.port)
        [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_PASSIVE ]
    with
    | ai :: _ -> ai.Unix.ai_addr
    | [] -> raise (Sys_error (Printf.sprintf "cannot resolve host %S" config.host))
  in
  let listen_fd = Unix.socket ~cloexec:true (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (match
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd addr;
     Unix.listen listen_fd 64
   with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close listen_fd with Unix.Unix_error (_, _, _) -> ());
    raise
      (Sys_error
         (Printf.sprintf "cannot listen on %s:%d: %s" config.host config.port
            (Unix.error_message e))));
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  {
    config;
    listen_fd;
    bound_port;
    wake_r;
    wake_w;
    stop = Atomic.make false;
    queue = Queue.create ();
    qmutex = Mutex.create ();
    qcond = Condition.create ();
    cache = Cache.create ~capacity:config.cache_capacity;
    thermal = Hashtbl.create 4;
    tmutex = Mutex.create ();
    stats =
      {
        accepted = 0;
        served = 0;
        degraded = 0;
        shed = 0;
        client_errors = 0;
        timeouts = 0;
        internal_errors = 0;
        drained = 0;
        ewma_service_s = 0.05;
      };
    smutex = Mutex.create ();
    pool = Pool.create ~domains:config.workers;
  }

let port t = t.bound_port

(* Async-signal-safe: an atomic store, a pool flag flip and one write
   to the self-pipe. The mutex-held condition broadcast that makes the
   drain prompt happens in the acceptor thread, in normal context. *)
let request_stop t =
  Atomic.set t.stop true;
  Pool.request_stop t.pool;
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error (_, _, _) -> ()

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let bump t f = with_lock t.smutex (fun () -> f t.stats)

let note_service t dt =
  with_lock t.smutex (fun () ->
      t.stats.ewma_service_s <- (0.7 *. t.stats.ewma_service_s) +. (0.3 *. dt))

(* ---------- JSON plumbing ---------- *)

let stop_reason_of trail =
  List.fold_left
    (fun acc (s : Remap.degradation_step) -> Budget.worst acc s.Remap.reason)
    Budget.Optimal trail

let error_body status message =
  Json.to_string
    (Json.Obj
       [
         ("status", Json.Str "error");
         ("code", Json.Int status);
         ("message", Json.Str message);
       ])

let respond_error ?(headers = []) t fd (e : Http.error) =
  bump t (fun s ->
      match e.Http.status with
      | 408 -> s.timeouts <- s.timeouts + 1
      | 500 -> s.internal_errors <- s.internal_errors + 1
      | _ -> s.client_errors <- s.client_errors + 1);
  Http.write_response ~headers ~status:e.Http.status ~content_type:"application/json"
    ~body:(error_body e.Http.status e.Http.message)
    fd

let stats_json t =
  let c = Cache.stats t.cache in
  let f = Inject.fired () in
  let qlen = with_lock t.qmutex (fun () -> Queue.length t.queue) in
  let snap = with_lock t.smutex (fun () ->
      let s = t.stats in
      (s.accepted, s.served, s.degraded, s.shed, s.client_errors, s.timeouts,
       s.internal_errors, s.drained, s.ewma_service_s))
  in
  let accepted, served, degraded, shed, client_errors, timeouts, internal_errors,
      drained, ewma = snap
  in
  Json.to_string
    (Json.Obj
       [
         ("status", Json.Str "ok");
         ("workers", Json.Int t.config.workers);
         ("queue_capacity", Json.Int t.config.queue_capacity);
         ("queue_len", Json.Int qlen);
         ("accepted", Json.Int accepted);
         ("served", Json.Int served);
         ("degraded", Json.Int degraded);
         ("shed", Json.Int shed);
         ("client_errors", Json.Int client_errors);
         ("timeouts", Json.Int timeouts);
         ("internal_errors", Json.Int internal_errors);
         ("drained", Json.Int drained);
         ("ewma_service_s", Json.Float ewma);
         ( "cache",
           Json.Obj
             [
               ("size", Json.Int c.Cache.size);
               ("capacity", Json.Int c.Cache.capacity);
               ("hits", Json.Int c.Cache.hits);
               ("misses", Json.Int c.Cache.misses);
               ("evictions", Json.Int c.Cache.evictions);
               ("poisoned", Json.Int c.Cache.poisoned);
             ] );
         ( "inject",
           Json.Obj
             [
               ("worker_raises", Json.Int f.Inject.worker_raises);
               ("cache_poisons", Json.Int f.Inject.cache_poisons);
               ("mid_deadlines", Json.Int f.Inject.mid_deadlines);
             ] );
       ])

(* ---------- request handling ---------- *)

let param name (req : Http.request) =
  match List.assoc_opt name req.Http.query with
  | Some v -> Some v
  | None -> Http.header ("x-agingfp-" ^ name) req.Http.headers

(* Split the body into the design section and an optional trailing
   mapping section (a line equal to the mapping header starts it). *)
let split_body body =
  let lines = String.split_on_char '\n' body in
  let rec split acc = function
    | [] -> (List.rev acc, None)
    | l :: rest when String.trim l = "agingfp-mapping v1" ->
      (List.rev acc, Some (String.concat "\n" (l :: rest)))
    | l :: rest -> split (l :: acc) rest
  in
  let design_lines, mapping = split [] lines in
  (String.concat "\n" design_lines, mapping)

let thermal_solver t dim =
  with_lock t.tmutex (fun () ->
      match Hashtbl.find_opt t.thermal dim with
      | Some f -> f
      | None ->
        let f = Thermal.steady_solver ~dim () in
        Hashtbl.replace t.thermal dim f;
        f)

(* Worst-PE MTTF through the cached per-dim factorization (the warm
   path [Mttf.of_mapping] cannot use, since it re-factorizes per
   call). *)
let mttf_s t design mapping =
  let dim = Fabric.dim (Design.fabric design) in
  let solve = thermal_solver t dim in
  let p = Thermal.default_params in
  let nctx = float_of_int (Design.num_contexts design) in
  let duty = Array.map (fun s -> s /. nctx) (Stress.accumulated design mapping) in
  let power = Array.map (fun d -> p.Thermal.p_leak +. (p.Thermal.p_active *. d)) duty in
  let temps = solve power in
  let worst = ref infinity in
  Array.iteri
    (fun pe d ->
      if d > 0.0 then worst := Float.min !worst (Nbti.time_to_fail ~temp_k:temps.(pe) d))
    duty;
  !worst

let float_param name ~default ~max_v req =
  match param name req with
  | None -> Ok default
  | Some v -> (
    match float_of_string_opt v with
    | Some d when Float.is_finite d && d > 0.0 && d <= max_v -> Ok d
    | _ ->
      Error
        {
          Http.status = 400;
          message = Printf.sprintf "bad %s %S (want a float in (0, %g])" name v max_v;
        })

let mode_param req =
  match param "mode" req with
  | None | Some "freeze" -> Ok Rotation.Freeze
  | Some "rotate" -> Ok Rotation.Rotate
  | Some m -> Error { Http.status = 400; message = Printf.sprintf "bad mode %S (freeze|rotate)" m }

(* The epilogue margin reserved on top of [Remap]'s own shave: JSON
   assembly, the MTTF solves and the response write all happen after
   the solver's last budget poll, the ladder itself may overshoot by
   one cooperative checkpoint, and the client measures its deadline
   against the whole round trip — so the solve gets 90% of what is
   left after queueing, minus a fixed epilogue allowance. *)
let serve_margin deadline = 0.04 +. (0.10 *. deadline)

let handle_remap t fd ~arrived ~queue_wait (req : Http.request) =
  let ( let* ) r k = match r with Ok v -> k v | Error e -> respond_error t fd e in
  let* deadline =
    float_param "deadline" ~default:t.config.default_deadline_s
      ~max_v:t.config.max_deadline_s req
  in
  let* mode = mode_param req in
  let design_text, mapping_text = split_body req.Http.body in
  let* design =
    match Serial.design_of_string design_text with
    | Ok d -> Ok d
    | Error msg -> Error { Http.status = 400; message = "bad design: " ^ msg }
  in
  let* () =
    if Design.total_ops design > t.config.max_total_ops then
      Error
        {
          Http.status = 413;
          message =
            Printf.sprintf "design has %d ops, admission limit is %d"
              (Design.total_ops design) t.config.max_total_ops;
        }
    else if Fabric.dim (Design.fabric design) > t.config.max_dim then
      Error
        {
          Http.status = 413;
          message =
            Printf.sprintf "fabric dimension %d exceeds admission limit %d"
              (Fabric.dim (Design.fabric design))
              t.config.max_dim;
        }
    else Ok ()
  in
  let* baseline =
    match mapping_text with
    | None -> Ok (Placer.aging_unaware design)
    | Some text -> (
      match Serial.mapping_of_string text with
      | Error msg -> Error { Http.status = 400; message = "bad mapping: " ^ msg }
      | Ok m -> (
        match Mapping.validate design m with
        | Ok () -> Ok m
        | Error msg ->
          Error { Http.status = 400; message = "mapping does not fit design: " ^ msg }))
  in
  (* Warm-state checkout, keyed on the canonical serialization (body
     whitespace must not split the key space). *)
  let design_digest = Digest.to_hex (Digest.string (Serial.design_to_string design)) in
  let baseline_digest =
    Digest.to_hex (Digest.string (Serial.mapping_to_string baseline))
  in
  let key = design_digest ^ ":" ^ baseline_digest in
  let warm, cache_status =
    match Cache.take t.cache key with
    | None -> (Remap.new_warm (), "miss")
    | Some e ->
      if Inject.poison_cache () then e.design_digest <- "poisoned:" ^ e.design_digest;
      if e.design_digest = design_digest && e.baseline_digest = baseline_digest then
        (e.warm, "hit")
      else begin
        (* The entry does not match the key that produced it: corrupted
           store or digest collision. Discard, count, solve cold. *)
        Log.warn (fun k -> k "cache entry failed validation; discarding");
        Cache.note_poisoned t.cache;
        (Remap.new_warm (), "miss")
      end
  in
  (* Per-request budget: whatever the client's deadline leaves after
     everything already spent since admission — queueing, reading the
     request, parsing, the baseline placement — plus the epilogue
     margin. Never refuse outright — a near-zero budget just falls
     down the ladder to the audited baseline in a few checkpoints. *)
  let remaining = deadline -. Budget.elapsed_s arrived -. serve_margin deadline in
  let remaining = if Inject.collapse_deadline () then 0.001 else Float.max 0.001 remaining in
  let params =
    { t.config.remap_params with Remap.deadline_s = Some remaining; jobs = 1 }
  in
  Inject.worker_checkpoint ~where:"serve.worker";
  let watch = Budget.create () in
  let result = Remap.solve ~warm ~params ~mode design baseline in
  let solve_s = Budget.elapsed_s watch in
  note_service t solve_s;
  Cache.put t.cache key { design_digest; baseline_digest; warm };
  if not (Audit.ok result.Remap.audit) then begin
    (* Audited-or-nothing: a floorplan that failed its audit is never
       shipped, whatever rung produced it. *)
    Log.err (fun k -> k "%s: audit failed; refusing to respond with floorplan"
        (Design.name design));
    respond_error t fd
      { Http.status = 500; message = "result failed its audit; no floorplan shipped" }
  end
  else begin
    let stop_reason = stop_reason_of result.Remap.degradation in
    let deadline_forced =
      result.Remap.rung = Remap.Baseline
      && (not result.Remap.improved)
      && List.exists
           (fun (s : Remap.degradation_step) ->
             match s.Remap.reason with Budget.Deadline -> true | _ -> false)
           result.Remap.degradation
    in
    let status = if deadline_forced then 503 else 200 in
    let mapping_text = Serial.mapping_to_string result.Remap.mapping in
    let improvement =
      if result.Remap.improved then
        mttf_s t design result.Remap.mapping /. mttf_s t design baseline
      else 1.0
    in
    let headers =
      [
        ("X-Agingfp-Rung", Remap.rung_to_string result.Remap.rung);
        ("X-Agingfp-Cache", cache_status);
        ("X-Agingfp-Audit", "pass");
      ]
      @ (if deadline_forced then [ ("Retry-After", "1") ] else [])
    in
    bump t (fun s ->
        if deadline_forced then s.degraded <- s.degraded + 1 else s.served <- s.served + 1);
    match param "format" req with
    | Some "mapping" ->
      (* Raw floorplan for tool-chain consumers: the mapping text as
         the body, result metadata in headers. *)
      Http.write_response ~headers ~status ~content_type:"text/plain" ~body:mapping_text
        fd
    | _ ->
      let body =
        Json.to_string
          (Json.Obj
             [
               ("status", Json.Str (if deadline_forced then "degraded" else "ok"));
               ("design", Json.Str (Design.name design));
               ("mode", Json.Str (match mode with Rotation.Freeze -> "freeze" | Rotation.Rotate -> "rotate"));
               ("rung", Json.Str (Remap.rung_to_string result.Remap.rung));
               ("improved", Json.Bool result.Remap.improved);
               ("audit_ok", Json.Bool true);
               ("stop_reason", Json.Str (Budget.stop_reason_to_string stop_reason));
               ( "degradation",
                 Json.List
                   (List.map
                      (fun (s : Remap.degradation_step) ->
                        Json.Obj
                          [
                            ("rung", Json.Str (Remap.rung_to_string s.Remap.rung));
                            ( "reason",
                              Json.Str (Budget.stop_reason_to_string s.Remap.reason) );
                            ("detail", Json.Str s.Remap.detail);
                          ])
                      result.Remap.degradation) );
               (* JSON has no inf/nan: Null when no branch & bound ran
                  (or nothing was proven), numbers otherwise. *)
               ( "gap",
                 if Float.is_finite result.Remap.gap then Json.Float result.Remap.gap
                 else Json.Null );
               ( "dual_bound",
                 if Float.is_finite result.Remap.dual_bound then
                   Json.Float result.Remap.dual_bound
                 else Json.Null );
               ( "rung_stats",
                 Json.List
                   (List.map
                      (fun (rung, (s : Agingfp_lp.Milp.stats)) ->
                        Json.Obj
                          [
                            ("rung", Json.Str (Remap.rung_to_string rung));
                            ("nodes", Json.Int s.Agingfp_lp.Milp.nodes);
                            ( "lp_iterations",
                              Json.Int s.Agingfp_lp.Milp.lp_iterations );
                            ("warm_solves", Json.Int s.Agingfp_lp.Milp.warm_solves);
                            ("cold_solves", Json.Int s.Agingfp_lp.Milp.cold_solves);
                            ( "cuts_separated",
                              Json.Int s.Agingfp_lp.Milp.cuts_separated );
                            ("cuts_active", Json.Int s.Agingfp_lp.Milp.cuts_active);
                            ( "cuts_aged_out",
                              Json.Int s.Agingfp_lp.Milp.cuts_aged_out );
                            ( "heuristic_incumbents",
                              Json.Int s.Agingfp_lp.Milp.heuristic_incumbents );
                            (* nan whenever this rung ran no root
                               separation phase — same Null convention
                               as gap/dual_bound above. *)
                            ( "root_gap_closed",
                              if Float.is_finite s.Agingfp_lp.Milp.root_gap_closed
                              then Json.Float s.Agingfp_lp.Milp.root_gap_closed
                              else Json.Null );
                          ])
                      result.Remap.rung_stats) );
               ("st_target", Json.Float result.Remap.st_target);
               ("st_lower_bound", Json.Float result.Remap.st_lower_bound);
               ("st_up", Json.Float result.Remap.st_up);
               ("baseline_cpd_ns", Json.Float result.Remap.baseline_cpd_ns);
               ("new_cpd_ns", Json.Float result.Remap.new_cpd_ns);
               ("mttf_improvement", Json.Float improvement);
               ("cache", Json.Str cache_status);
               ("queue_wait_s", Json.Float queue_wait);
               ("solve_s", Json.Float solve_s);
               ("deadline_s", Json.Float deadline);
               ("mapping", Json.Str mapping_text);
             ])
      in
      Http.write_response ~headers ~status ~content_type:"application/json" ~body fd
  end

let handle t job =
  let queue_wait = Budget.elapsed_s job.arrived in
  match Http.read_request t.config.limits job.fd with
  | Error e -> respond_error t job.fd e
  | Ok req -> (
    match (req.Http.meth, req.Http.path) with
    | "GET", "/healthz" ->
      Http.write_response ~status:200 ~content_type:"application/json"
        ~body:(Json.to_string (Json.Obj [ ("status", Json.Str "ok") ]))
        job.fd
    | "GET", "/stats" ->
      Http.write_response ~status:200 ~content_type:"application/json"
        ~body:(stats_json t) job.fd
    | "POST", "/remap" -> (
      try handle_remap t job.fd ~arrived:job.arrived ~queue_wait req with
      | Inject.Injected where ->
        respond_error t job.fd
          { Http.status = 500; message = "injected worker fault at " ^ where }
      | Invariant.Violation msg ->
        respond_error t job.fd { Http.status = 500; message = msg }
      | e ->
        respond_error t job.fd { Http.status = 500; message = Printexc.to_string e })
    | _, ("/healthz" | "/stats" | "/remap") ->
      respond_error t job.fd
        { Http.status = 405; message = "method not allowed on " ^ req.Http.path }
    | _, path ->
      respond_error t job.fd { Http.status = 404; message = "no such endpoint " ^ path })

(* A queued connection that the drain overtook: answer something
   honest and cheap instead of parsing and solving. *)
let decline t job =
  bump t (fun s -> s.drained <- s.drained + 1);
  Http.write_response
    ~headers:[ ("Retry-After", "1") ]
    ~status:503 ~content_type:"application/json"
    ~body:(error_body 503 "server draining")
    job.fd

let close_quietly fd = try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

(* ---------- admission ---------- *)

let retry_after_s t =
  let qlen, ewma =
    ( with_lock t.qmutex (fun () -> Queue.length t.queue),
      with_lock t.smutex (fun () -> t.stats.ewma_service_s) )
  in
  let est = float_of_int (qlen + 1) *. ewma /. float_of_int t.config.workers in
  max 1 (min 30 (int_of_float (Float.ceil est)))

let admit t fd =
  bump t (fun s -> s.accepted <- s.accepted + 1);
  (* Per-read socket timeout so no single recv can park a worker; the
     whole-request bound is [limits.read_timeout_s]. Response writes
     time out too (slow readers). *)
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO
       (Float.min 1.0 t.config.limits.Http.read_timeout_s);
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0
   with Unix.Unix_error (_, _, _) -> ());
  let verdict =
    with_lock t.qmutex (fun () ->
        if Atomic.get t.stop then `Draining
        else if Queue.length t.queue >= t.config.queue_capacity then `Shed
        else begin
          Queue.push { fd; arrived = Budget.create () } t.queue;
          Condition.signal t.qcond;
          `Queued
        end)
  in
  match verdict with
  | `Queued -> ()
  | `Draining ->
    decline t { fd; arrived = Budget.create () };
    close_quietly fd
  | `Shed ->
    (* Explicit load shedding: tell the client when to come back.
       Writing from the acceptor is safe — the response is tiny and
       SO_SNDTIMEO bounds a pathological peer. *)
    bump t (fun s -> s.shed <- s.shed + 1);
    let retry = retry_after_s t in
    Http.write_response
      ~headers:[ ("Retry-After", string_of_int retry) ]
      ~status:429 ~content_type:"application/json"
      ~body:(error_body 429 "admission queue full")
      fd;
    close_quietly fd

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stop then ()
    else
      match Unix.select [ t.listen_fd; t.wake_r ] [] [] 1.0 with
      | readable, _, _ ->
        if Atomic.get t.stop then ()
        else begin
          if List.mem t.listen_fd readable then (
            match Unix.accept ~cloexec:true t.listen_fd with
            | fd, _ -> admit t fd
            | exception
                Unix.Unix_error
                  ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              -> ());
          loop ()
        end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ();
  (* Stop accepting immediately; then deliver the reliable wakeup the
     signal handler could not (broadcast under the queue lock). *)
  close_quietly t.listen_fd;
  with_lock t.qmutex (fun () -> Condition.broadcast t.qcond)

(* ---------- worker loop + lifecycle ---------- *)

let worker_loop t =
  let rec loop () =
    let job =
      with_lock t.qmutex (fun () ->
          let rec wait () =
            if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
            else if Atomic.get t.stop then None
            else begin
              Condition.wait t.qcond t.qmutex;
              wait ()
            end
          in
          wait ())
    in
    match job with
    | None -> ()
    | Some job ->
      (* In-flight work finishes under its own budget; work that was
         still queued when the drain started is declined cheaply. *)
      (try if Atomic.get t.stop then decline t job else handle t job
       with e ->
         (* Last-ditch: the worker loop itself must survive anything. *)
         Log.err (fun k -> k "worker: escaped exception %s" (Printexc.to_string e));
         bump t (fun s -> s.internal_errors <- s.internal_errors + 1));
      close_quietly job.fd;
      loop ()
  in
  loop ()

(* Run the daemon until {!request_stop}. The calling thread becomes
   one of the workers (the pool's submitter helps execute its own
   batch), the acceptor runs on a systhread, and the drain leaves no
   orphaned domain: workers exit when the queue is dry and stop is
   set, the pool is shut down and deregistered, and any connection
   that raced into the queue after the last worker left is answered
   503 and closed. *)
let run t =
  (* Process-wide by necessity: a peer that disappears mid-write must
     surface as EPIPE on the socket (swallowed by {!Http.write_all}),
     not as a process-killing SIGPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let acceptor = Thread.create accept_loop t in
  Pool.run t.pool (Array.init t.config.workers (fun _ () -> worker_loop t));
  Thread.join acceptor;
  let leftovers =
    with_lock t.qmutex (fun () ->
        let js = List.of_seq (Queue.to_seq t.queue) in
        Queue.clear t.queue;
        js)
  in
  List.iter
    (fun job ->
      decline t job;
      close_quietly job.fd)
    leftovers;
  Pool.shutdown t.pool;
  close_quietly t.wake_r;
  close_quietly t.wake_w;
  Log.info (fun k -> k "drained: %d connections declined during shutdown" t.stats.drained)
