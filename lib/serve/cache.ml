(* LRU warm-state cache with checkout semantics.

   The server's warm state (assembled simplex bases, per-fabric
   thermal factorizations) is mutable and belongs to one domain at a
   time, so a plain get/put LRU would hand the same simplex state to
   two concurrent workers. [take] therefore *removes* the entry on
   hit — the worker owns it exclusively until it [put]s it back — and
   a concurrent request for the same key simply misses and solves
   cold. Recency is a doubly-linked list walked only through its
   endpoints (no Hashtbl iteration anywhere, so eviction order is
   deterministic by construction). All operations are mutex-guarded:
   workers on different domains share one cache. *)

type 'a node = {
  key : string;
  value : 'a;
  mutable prev : 'a node option; (* towards most-recent *)
  mutable next : 'a node option; (* towards least-recent *)
}

type 'a t = {
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option; (* most recently used *)
  mutable tail : 'a node option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable poisoned : int;
  mutex : Mutex.t;
}

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  poisoned : int;
}

let create ~capacity =
  if capacity < 1 then
    Agingfp_util.Invariant.invalid ~where:"Cache.create" "capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    poisoned = 0;
    mutex = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Unlink [n] from the recency list. Caller holds the mutex. *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

(* Push [n] as most-recent. Caller holds the mutex. *)
let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let size t = locked t (fun () -> Hashtbl.length t.table)

(* Checkout: on hit the entry is removed and owned by the caller until
   it is [put] back; a concurrent [take] of the same key misses. *)
let take t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n ->
        unlink t n;
        Hashtbl.remove t.table key;
        t.hits <- t.hits + 1;
        Some n.value
      | None ->
        t.misses <- t.misses + 1;
        None)

(* Insert (or re-insert after checkout) as most-recent; evicts the
   least-recent entry when over capacity. Re-putting a key that was
   raced back in keeps the newest value and counts the displaced one
   as an eviction. *)
let put t key value =
  locked t (fun () ->
      (match Hashtbl.find_opt t.table key with
      | Some old ->
        unlink t old;
        Hashtbl.remove t.table key;
        t.evictions <- t.evictions + 1
      | None -> ());
      let n = { key; value; prev = None; next = None } in
      push_front t n;
      Hashtbl.replace t.table key n;
      if Hashtbl.length t.table > t.capacity then
        match t.tail with
        | Some lru ->
          unlink t lru;
          Hashtbl.remove t.table lru.key;
          t.evictions <- t.evictions + 1
        | None -> ())

(* A checked-out entry failed validation and was discarded instead of
   re-inserted; the counter feeds /stats and the poisoning tests. *)
let note_poisoned t = locked t (fun () -> t.poisoned <- t.poisoned + 1)

let stats t =
  locked t (fun () ->
      {
        size = Hashtbl.length t.table;
        capacity = t.capacity;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        poisoned = t.poisoned;
      })
