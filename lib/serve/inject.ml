(* Seeded fault injection for the server layer, mirroring
   [Lp.Faults]: a process-global armed spec, Bernoulli draws that only
   consume randomness at positive probability (enabling one class does
   not shift another class's stream), and per-class fired counters the
   tests assert against. Unlike the solver injector this one is read
   from several worker domains at once, so draws are mutex-guarded.

   Classes:
   - [raise]  — a worker explodes mid-request; the server must answer
                a structured 500 and keep serving.
   - [poison] — a warm-cache entry is corrupted at checkout; the
                server must detect the bad entry, discard it and solve
                cold.
   - [expire] — the request's remaining deadline collapses to ~0 just
                before the solve; the ladder must fall through to the
                audited baseline (503), never hang or ship unaudited.
   - [slow]   — consumed by the loopback client, which dribbles the
                request bytes to emulate a slow-loris peer; the server
                must cut the read off with a 408. *)

module Rng = Agingfp_util.Rng

exception Injected of string

type spec = {
  seed : int;
  p_worker_raise : float;
  p_cache_poison : float;
  p_mid_deadline : float;
  slow_write_delay_s : float;
      (* client-side: delay between dribbled writes; 0 = off *)
}

let none =
  {
    seed = 0;
    p_worker_raise = 0.0;
    p_cache_poison = 0.0;
    p_mid_deadline = 0.0;
    slow_write_delay_s = 0.0;
  }

type fired = {
  worker_raises : int;
  cache_poisons : int;
  mid_deadlines : int;
}

let no_fired = { worker_raises = 0; cache_poisons = 0; mid_deadlines = 0 }

type injector = { spec : spec; rng : Rng.t; mutable counts : fired }

let state : injector option ref = ref None
let armed = ref false
let mutex = Mutex.create ()

let install spec =
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      if spec = none then begin
        state := None;
        armed := false
      end
      else begin
        state := Some { spec; rng = Rng.create spec.seed; counts = no_fired };
        armed := true
      end)

let clear () =
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      state := None;
      armed := false)

let active () = !armed

let fired () =
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () -> match !state with Some i -> i.counts | None -> no_fired)

let with_spec spec f =
  install spec;
  Fun.protect ~finally:clear f

let spec () =
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () -> match !state with Some i -> i.spec | None -> none)

(* A Bernoulli draw only consumes randomness when the probability is
   positive, so enabling one fault class does not shift another
   class's stream. Caller holds the mutex. *)
let draw inj p = p > 0.0 && Rng.float inj.rng 1.0 < p

let with_injector f =
  if not !armed then false
  else begin
    Mutex.lock mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mutex)
      (fun () -> match !state with Some inj -> f inj | None -> false)
  end

let worker_checkpoint ~where =
  let fire =
    with_injector (fun inj ->
        if draw inj inj.spec.p_worker_raise then begin
          inj.counts <- { inj.counts with worker_raises = inj.counts.worker_raises + 1 };
          true
        end
        else false)
  in
  if fire then raise (Injected where)

let poison_cache () =
  with_injector (fun inj ->
      if draw inj inj.spec.p_cache_poison then begin
        inj.counts <- { inj.counts with cache_poisons = inj.counts.cache_poisons + 1 };
        true
      end
      else false)

let collapse_deadline () =
  with_injector (fun inj ->
      if draw inj inj.spec.p_mid_deadline then begin
        inj.counts <- { inj.counts with mid_deadlines = inj.counts.mid_deadlines + 1 };
        true
      end
      else false)

(* ---------- CLI spec syntax ---------- *)

let to_string s =
  Printf.sprintf "seed=%d,raise=%g,poison=%g,expire=%g,slow=%g" s.seed s.p_worker_raise
    s.p_cache_poison s.p_mid_deadline s.slow_write_delay_s

let of_string str =
  let parse_field spec field =
    let field = String.trim field in
    if field = "" then Ok spec
    else
      match String.index_opt field '=' with
      | None -> Error (Printf.sprintf "bad fault field %S (want key=value)" field)
      | Some i -> (
        let key = String.trim (String.sub field 0 i) in
        let value = String.trim (String.sub field (i + 1) (String.length field - i - 1)) in
        let prob k =
          match float_of_string_opt value with
          | Some p when p >= 0.0 && p <= 1.0 -> Ok (k p)
          | _ ->
            Error
              (Printf.sprintf "fault key %s wants a probability in [0,1], got %S" key
                 value)
        in
        match key with
        | "seed" -> (
          match int_of_string_opt value with
          | Some seed -> Ok { spec with seed }
          | None -> Error (Printf.sprintf "fault key seed wants an integer, got %S" value))
        | "slow" -> (
          match float_of_string_opt value with
          | Some d when d >= 0.0 -> Ok { spec with slow_write_delay_s = d }
          | _ ->
            Error (Printf.sprintf "fault key slow wants a non-negative delay, got %S" value)
          )
        | "raise" -> prob (fun p -> { spec with p_worker_raise = p })
        | "poison" -> prob (fun p -> { spec with p_cache_poison = p })
        | "expire" -> prob (fun p -> { spec with p_mid_deadline = p })
        | _ ->
          Error
            (Printf.sprintf
               "unknown fault key %S (known: seed, raise, poison, expire, slow)" key))
  in
  List.fold_left
    (fun acc field -> Result.bind acc (fun spec -> parse_field spec field))
    (Ok none)
    (String.split_on_char ',' str)
