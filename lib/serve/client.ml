(* Loopback HTTP client for tests and `bench serve`.

   Deliberately small: one request per connection ([Connection:
   close]), the response is read to EOF. The [slow_write_delay_s]
   knob dribbles the request out a few bytes at a time — the
   slow-loris emulation the server's read budget must defeat. *)

type response = {
  status : int;
  headers : (string * string) list;  (* names lowercased *)
  body : string;
}

let header name r = Http.header name r.headers

let sock_timeout fd timeout_s =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Dribble [s] out [burst] bytes at a time with a pause between
   writes; used only when emulating a misbehaving peer. *)
let write_slow fd s ~delay_s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let burst = 16 in
  let rec go off =
    if off < n then begin
      let w = Unix.write fd b off (min burst (n - off)) in
      Thread.delay delay_s;
      go (off + w)
    end
  in
  go 0

let read_to_eof fd =
  let buf = Bytes.create 4096 in
  let acc = Buffer.create 4096 in
  let rec go () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> Buffer.contents acc
    | n ->
      Buffer.add_subbytes acc buf 0 n;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) -> Buffer.contents acc
  in
  go ()

let parse_response text =
  match Http.header_end text with
  | None -> Error "no header terminator in response"
  | Some (eoh, body_start) -> (
    let block = String.sub text 0 eoh in
    match Http.split_lines block with
    | [] -> Error "empty response"
    | status_line :: header_lines -> (
      match String.split_on_char ' ' status_line with
      | _http :: code :: _ -> (
        match int_of_string_opt code with
        | None -> Error (Printf.sprintf "bad status line %S" status_line)
        | Some status ->
          let headers =
            List.filter_map
              (fun l -> match Http.parse_header l with Ok h -> Some h | Error _ -> None)
              header_lines
          in
          let body = String.sub text body_start (String.length text - body_start) in
          Ok { status; headers; body })
      | _ -> Error (Printf.sprintf "bad status line %S" status_line)))

let request ?(meth = "POST") ?(headers = []) ?(body = "") ?(timeout_s = 30.0)
    ?(slow_write_delay_s = 0.0) ~host ~port path =
  match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
  with
  | [] -> Error (Printf.sprintf "cannot resolve %s:%d" host port)
  | ai :: _ -> (
    let fd = Unix.socket ai.Unix.ai_family ai.Unix.ai_socktype 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
      (fun () ->
        match
          sock_timeout fd timeout_s;
          Unix.connect fd ai.Unix.ai_addr
        with
        | () ->
          let b = Buffer.create (String.length body + 256) in
          Printf.bprintf b "%s %s HTTP/1.1\r\n" meth path;
          Printf.bprintf b "Host: %s:%d\r\n" host port;
          Printf.bprintf b "Content-Length: %d\r\n" (String.length body);
          List.iter (fun (k, v) -> Printf.bprintf b "%s: %s\r\n" k v) headers;
          Buffer.add_string b "Connection: close\r\n\r\n";
          Buffer.add_string b body;
          let text = Buffer.contents b in
          (try
             if slow_write_delay_s > 0.0 then write_slow fd text ~delay_s:slow_write_delay_s
             else write_all fd text
           with Unix.Unix_error (_, _, _) ->
             (* The server may legitimately cut us off mid-write (shed,
                timeout); whatever response it managed to send is still
                worth reading. *)
             ());
          parse_response (read_to_eof fd)
        | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "connect %s:%d: %s" host port (Unix.error_message e))))
