(* Minimal hardened HTTP/1.1 framing over stdlib [Unix] sockets.

   Only what the remap daemon needs: read one request with hard limits
   on header size, header count, body size and total read time, and
   write one [Connection: close] response. Every malformed, truncated,
   oversized or dawdling input maps to a structured {!error} with the
   right status code — nothing in here raises on bad peer behaviour,
   so a worker can never be killed by a client. *)

module Budget = Agingfp_util.Budget

type limits = {
  max_header_bytes : int;  (* whole request line + header block *)
  max_headers : int;
  max_body_bytes : int;
  read_timeout_s : float;  (* budget for reading the entire request *)
}

let default_limits =
  {
    max_header_bytes = 8 * 1024;
    max_headers = 64;
    max_body_bytes = 4 * 1024 * 1024;
    read_timeout_s = 10.0;
  }

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;  (* names lowercased *)
  body : string;
}

type error = { status : int; message : string }

let reason_phrase = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 411 -> "Length Required"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let err status fmt = Printf.ksprintf (fun message -> Error { status; message }) fmt

(* ---------- reading ---------- *)

(* One [Unix.read], classified. [`Timeout] covers both SO_RCVTIMEO
   expiry (EAGAIN/EWOULDBLOCK) and the overall read budget; any other
   socket error reads as the peer going away. *)
let read_chunk ~budget fd buf =
  if Budget.expired budget then `Timeout
  else
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> `Eof
    | n -> `Data n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      if Budget.expired budget then `Timeout else `Again
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Again
    | exception Unix.Unix_error (_, _, _) -> `Eof

(* Scan for the end of the header block: CRLFCRLF, tolerating bare
   LFLF from hand-rolled clients. Returns (end_of_headers, body_start). *)
let header_end s =
  let n = String.length s in
  let rec scan i =
    if i >= n then None
    else if s.[i] = '\n' then
      if i + 1 < n && s.[i + 1] = '\n' then Some (i, i + 2)
      else if i + 2 < n && s.[i + 1] = '\r' && s.[i + 2] = '\n' then Some (i, i + 3)
      else scan (i + 1)
    else scan (i + 1)
  in
  scan 0

let split_lines block =
  String.split_on_char '\n' block
  |> List.map (fun l ->
         let l = if String.length l > 0 && l.[String.length l - 1] = '\r' then
             String.sub l 0 (String.length l - 1)
           else l
         in
         l)
  |> List.filter (fun l -> l <> "")

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let percent_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      (match s.[i] with
      | '+' ->
        Buffer.add_char b ' ';
        go (i + 1)
      | '%' when i + 2 < n -> (
        match (hex_val s.[i + 1], hex_val s.[i + 2]) with
        | Some h, Some l ->
          Buffer.add_char b (Char.chr ((h * 16) + l));
          go (i + 3)
        | _ ->
          Buffer.add_char b '%';
          go (i + 1))
      | c ->
        Buffer.add_char b c;
        go (i + 1))
    end
  in
  go 0;
  Buffer.contents b

let parse_query q =
  String.split_on_char '&' q
  |> List.filter_map (fun kv ->
         if kv = "" then None
         else
           match String.index_opt kv '=' with
           | None -> Some (percent_decode kv, "")
           | Some i ->
             Some
               ( percent_decode (String.sub kv 0 i),
                 percent_decode (String.sub kv (i + 1) (String.length kv - i - 1)) ))

let parse_request_line line =
  match String.split_on_char ' ' line |> List.filter (fun w -> w <> "") with
  | [ meth; target; version ]
    when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
    let path, query =
      match String.index_opt target '?' with
      | None -> (target, [])
      | Some i ->
        ( String.sub target 0 i,
          parse_query (String.sub target (i + 1) (String.length target - i - 1)) )
    in
    Ok (meth, path, query)
  | _ -> err 400 "malformed request line %S" line

let parse_header line =
  match String.index_opt line ':' with
  | None -> err 400 "malformed header %S" line
  | Some i ->
    Ok
      ( String.lowercase_ascii (String.trim (String.sub line 0 i)),
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let header name headers = List.assoc_opt (String.lowercase_ascii name) headers

(* Read one full request under [limits]. The caller is expected to
   have set SO_RCVTIMEO so individual reads unblock; the overall
   budget bounds the sum (slow-loris: many tiny writes each under the
   socket timeout still hit the request budget). *)
let read_request limits fd =
  let budget = Budget.create ~deadline_s:limits.read_timeout_s () in
  let chunk = Bytes.create 4096 in
  let acc = Buffer.create 1024 in
  (* Phase 1: the header block. *)
  let rec read_headers () =
    match header_end (Buffer.contents acc) with
    | Some (eoh, body_start) -> Ok (eoh, body_start)
    | None ->
      if Buffer.length acc > limits.max_header_bytes then
        err 431 "header block exceeds %d bytes" limits.max_header_bytes
      else (
        match read_chunk ~budget fd chunk with
        | `Data n ->
          Buffer.add_subbytes acc chunk 0 n;
          read_headers ()
        | `Again -> read_headers ()
        | `Timeout -> err 408 "request header not received within %.3fs" limits.read_timeout_s
        | `Eof ->
          if Buffer.length acc = 0 then err 400 "empty request"
          else err 400 "connection closed mid-header")
  in
  Result.bind (read_headers ()) (fun (eoh, body_start) ->
      let text = Buffer.contents acc in
      let block = String.sub text 0 eoh in
      match split_lines block with
      | [] -> err 400 "empty request"
      | request_line :: header_lines ->
        if List.length header_lines > limits.max_headers then
          err 431 "more than %d headers" limits.max_headers
        else
          Result.bind (parse_request_line request_line) (fun (meth, path, query) ->
              let rec collect acc = function
                | [] -> Ok (List.rev acc)
                | l :: rest ->
                  Result.bind (parse_header l) (fun h -> collect (h :: acc) rest)
              in
              Result.bind (collect [] header_lines) (fun headers ->
                  (* Phase 2: the body, framed by Content-Length. *)
                  let clen =
                    match header "content-length" headers with
                    | None -> Ok 0
                    | Some v -> (
                      match int_of_string_opt v with
                      | Some n when n >= 0 -> Ok n
                      | _ -> err 400 "bad Content-Length %S" v)
                  in
                  Result.bind clen (fun clen ->
                      if meth = "POST" && header "content-length" headers = None then
                        err 411 "POST requires Content-Length"
                      else if clen > limits.max_body_bytes then
                        err 413 "body of %d bytes exceeds limit %d" clen
                          limits.max_body_bytes
                      else begin
                        let body = Buffer.create (min clen 65536) in
                        Buffer.add_string body
                          (String.sub text body_start (String.length text - body_start));
                        let rec read_body () =
                          if Buffer.length body >= clen then
                            Ok (Buffer.sub body 0 clen)
                          else (
                            match read_chunk ~budget fd chunk with
                            | `Data n ->
                              Buffer.add_subbytes body chunk 0 n;
                              read_body ()
                            | `Again -> read_body ()
                            | `Timeout ->
                              err 408 "request body not received within %.3fs"
                                limits.read_timeout_s
                            | `Eof ->
                              err 400 "connection closed after %d of %d body bytes"
                                (Buffer.length body) clen)
                        in
                        Result.map
                          (fun body -> { meth; path; query; headers; body })
                          (read_body ())
                      end))))

(* ---------- writing ---------- *)

(* Best-effort full write: the peer may have gone away (EPIPE,
   ECONNRESET) or be too slow (SO_SNDTIMEO -> EAGAIN); response
   delivery is never worth crashing a worker over. *)
let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) -> ()
  in
  go 0

let write_response ?(headers = []) ~status ~content_type ~body fd =
  let b = Buffer.create (String.length body + 256) in
  Printf.bprintf b "HTTP/1.1 %d %s\r\n" status (reason_phrase status);
  Printf.bprintf b "Content-Type: %s\r\n" content_type;
  Printf.bprintf b "Content-Length: %d\r\n" (String.length body);
  Printf.bprintf b "Connection: close\r\n";
  List.iter (fun (k, v) -> Printf.bprintf b "%s: %s\r\n" k v) headers;
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  write_all fd (Buffer.contents b)
