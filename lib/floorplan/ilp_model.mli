(** Builder for the paper's formulation (3).

    Variables: one binary [OP_ijk] per (context i, operation j,
    candidate PE k). Constraints:

    - assignment: every unfrozen operation binds to exactly one PE;
    - capacity: at most one operation per PE per context;
    - stress budget: each PE's accumulated stress (committed + frozen
      + newly assigned) stays within [st_target];
    - path wire-length budgets (Eq. 5) in one of two encodings.

    The [Displacement] encoding bounds each monitored path's wire
    length by its reference length plus the endpoint displacements
    (triangle inequality — conservative, one row per path). The
    [Exact_abs] encoding introduces auxiliary |Δx|,|Δy| variables per
    hop and is exact but larger. [Hybrid] (the default) uses
    displacement rows everywhere they can possibly be satisfied and
    falls back to exact rows for the (rare) paths whose reference
    positions already exceed the budget after critical-path
    rotation. *)

open Agingfp_cgrra

type encoding = Displacement | Exact_abs | Hybrid

type objective = Null | Min_displacement
(** [Null] is the paper's "ObjFunc: Null"; [Min_displacement] keeps
    re-binding local, which empirically spares the post-remap CPD
    check. Either way the formulation's feasibility set is
    unchanged. *)

type instance

val build :
  ?encoding:encoding ->
  ?objective:objective ->
  Design.t ->
  baseline:Mapping.t ->
  st_target:float ->
  candidates:Candidates.t ->
  monitored:Paths.budgeted list array ->
  contexts:int list ->
  committed:float array ->
  instance
(** [committed] is per-PE stress already accounted for outside this
    instance: frozen pins of every context plus contexts solved
    earlier in a per-context decomposition. *)

val model : instance -> Agingfp_lp.Model.t

val extract : instance -> values:(int -> float) -> Mapping.t -> Mapping.t
(** Overwrite the modeled contexts of the given mapping with the
    solved assignment (frozen pins included). Binaries are rounded to
    the nearest candidate; the caller revalidates the mapping. *)

val var : instance -> ctx:int -> op:int -> pe:int -> int option
(** The binary's model variable, when (ctx, op, pe) was instantiated. *)

val num_binaries : instance -> int
val num_rows : instance -> int

val stress_budget_rows : instance -> (int * int) list
(** [(pe, row)] pairs of the stress-budget constraints. *)

val set_st_target : instance -> st_target:float -> committed:float array -> unit
(** Rewrite the stress-budget right-hand sides for a new [st_target]
    and committed-load vector. ST_target and [committed] only ever
    enter the formulation through these RHS values, so an instance can
    be rebudgeted in place across Algorithm 1's Δ-relaxation attempts
    (and its assembled {!Agingfp_lp.Simplex.state} warm-restarted via
    [Simplex.set_rhs] + [Simplex.reoptimize]). *)
