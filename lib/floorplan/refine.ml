open Agingfp_cgrra
module Analysis = Agingfp_timing.Analysis

type params = { max_moves : int; neighbourhood : int }

let default_params = { max_moves = 400; neighbourhood = 4 }

type stats = { moves_accepted : int; st_before : float; st_after : float }

let improve ?(params = default_params) ?(budget = Agingfp_util.Budget.unlimited) ?initial
    design ~baseline_cpd ~frozen ~monitored mapping =
  let npes = Fabric.num_pes (Design.fabric design) in
  let ncontexts = Design.num_contexts design in
  let arrays = Array.init ncontexts (fun c -> Mapping.context_array mapping c) in
  (* Occupancy and accumulated stress, maintained incrementally; the
     optional initial wear offsets shift the leveling objective. *)
  let occupant = Array.make_matrix ncontexts npes (-1) in
  let acc = match initial with None -> Array.make npes 0.0 | Some w -> Array.copy w in
  for ctx = 0 to ncontexts - 1 do
    Array.iteri
      (fun op pe ->
        occupant.(ctx).(pe) <- op;
        acc.(pe) <- acc.(pe) +. Stress.op_stress design ~ctx ~op)
      arrays.(ctx)
  done;
  let is_frozen = Array.init ncontexts (fun c -> Array.make (Array.length arrays.(c)) false) in
  Array.iteri
    (fun ctx pins -> List.iter (fun (op, _) -> is_frozen.(ctx).(op) <- true) pins)
    frozen;
  (* Which monitored paths run through an op. *)
  let paths_of =
    Array.init ncontexts (fun c -> Array.make (Array.length arrays.(c)) [])
  in
  Array.iteri
    (fun ctx budgeted ->
      List.iter
        (fun (b : Paths.budgeted) ->
          Array.iter
            (fun op -> paths_of.(ctx).(op) <- b :: paths_of.(ctx).(op))
            b.Paths.path.Analysis.nodes)
        budgeted)
    monitored;
  let fabric = Design.fabric design in
  let path_wire ctx (b : Paths.budgeted) =
    let nodes = b.Paths.path.Analysis.nodes in
    let total = ref 0 in
    for i = 0 to Array.length nodes - 2 do
      total :=
        !total
        + Fabric.distance fabric arrays.(ctx).(nodes.(i)) arrays.(ctx).(nodes.(i + 1))
    done;
    !total
  in
  let budgets_ok ctx op =
    List.for_all (fun b -> path_wire ctx b <= b.Paths.wire_budget) paths_of.(ctx).(op)
  in
  let st_before = Array.fold_left max 0.0 acc in
  let blacklist = Hashtbl.create 256 in
  let global_max () = Array.fold_left max 0.0 acc in
  let accepted = ref 0 in
  let continue = ref true in
  (* Each iteration re-runs a full CPD analysis, the dominant cost on
     large designs — so the budget is polled here, once per move. *)
  while
    !continue && !accepted < params.max_moves
    && not (Agingfp_util.Budget.expired budget)
  do
    let cur_max = global_max () in
    (* Hottest PEs first. *)
    let hot =
      List.init npes (fun pe -> pe)
      |> List.filter (fun pe -> acc.(pe) > 0.0)
      |> List.sort (fun a b -> Float.compare acc.(b) acc.(a))
      |> List.filteri (fun i _ -> i < params.neighbourhood)
    in
    (* Best move: (score, ctx, op, from, to). Score is the pair
       (new stress of the touched pair's max, squared-sum delta) —
       strictly smaller is better. *)
    let best = ref None in
    List.iter
      (fun pe ->
        for ctx = 0 to ncontexts - 1 do
          let op = occupant.(ctx).(pe) in
          if op >= 0 && not is_frozen.(ctx).(op) then begin
            let st_op = Stress.op_stress design ~ctx ~op in
            if st_op > 0.0 then
              for q = 0 to npes - 1 do
                if occupant.(ctx).(q) < 0 && not (Hashtbl.mem blacklist (ctx, op, q))
                then begin
                  let new_to = acc.(q) +. st_op in
                  (* The move must not create a new hotspot as bad as
                     the current one. *)
                  if new_to < cur_max -. 1e-12 then begin
                    let ss_delta =
                      (((acc.(pe) -. st_op) ** 2.0) +. (new_to ** 2.0))
                      -. ((acc.(pe) ** 2.0) +. (acc.(q) ** 2.0))
                    in
                    let score = (new_to, ss_delta) in
                    let better =
                      match !best with
                      | None -> ss_delta < -1e-12
                      | Some (bscore, _, _, _, _) -> compare score bscore < 0
                    in
                    if better then best := Some (score, ctx, op, pe, q)
                  end
                end
              done
          end
        done)
      hot;
    match !best with
    | None -> continue := false
    | Some (_, ctx, op, from_pe, to_pe) ->
      let st_op = Stress.op_stress design ~ctx ~op in
      let apply a b =
        arrays.(ctx).(op) <- b;
        occupant.(ctx).(a) <- -1;
        occupant.(ctx).(b) <- op;
        acc.(a) <- acc.(a) -. st_op;
        acc.(b) <- acc.(b) +. st_op
      in
      apply from_pe to_pe;
      let timing_clean =
        budgets_ok ctx op
        &&
        let m = Mapping.of_arrays arrays in
        Analysis.cpd design m <= baseline_cpd +. 1e-9
      in
      if timing_clean then incr accepted
      else begin
        apply to_pe from_pe;
        Hashtbl.replace blacklist (ctx, op, to_pe) ()
      end
  done;
  let result = Mapping.of_arrays arrays in
  (match Mapping.validate design result with
  | Ok () -> ()
  | Error msg ->
    Agingfp_util.Invariant.fail ~where:"Refine.improve" "produced invalid mapping: %s"
      msg);
  ( result,
    { moves_accepted = !accepted; st_before; st_after = Array.fold_left max 0.0 acc } )
