(** Algorithm 1: the aging-aware re-mapping design flow.

    Pipeline (paper §V):
    + Step 1 — binary search for the accumulated-stress lower bound
      [ST_target], executing the delay-unaware relaxation of (3);
    + Step 2.1 — critical-path constraint generation ({!Rotation});
    + Step 2.2 — path wire-length budgets ({!Paths});
    + Step 2.3 — iterate the two-step MILP, relaxing [ST_target] by Δ
      until a floorplan exists {e and} the exact re-computed CPD does
      not exceed the original CPD.

    Two solve strategies: [Monolithic] builds one MILP over all
    contexts (the paper's formulation verbatim); [Per_context] solves
    contexts sequentially against residual per-PE stress budgets —
    the scaling decomposition of DESIGN.md §5. [Auto] picks by
    problem size. *)

open Agingfp_cgrra

type strategy = Monolithic | Per_context | Auto

type step1_method =
  | Greedy_pack     (** best-fit-decreasing feasibility probe (fast) *)
  | Exact_matching  (** Hopcroft–Karp perfect matching per context —
                        exact given earlier contexts' commitments *)
  | Milp_relax      (** the paper's two-step MILP on the delay-unaware model *)

type params = {
  seed : int;
  encoding : Ilp_model.encoding;
  objective : Ilp_model.objective;
  strategy : strategy;
  step1 : step1_method;
  candidate_params : Candidates.params;
  path_params : Paths.params;
  milp : Agingfp_lp.Milp.params;
  bisect_iters : int;
  delta_steps : int;   (** Δ = (ST_up − lower bound) / delta_steps *)
  max_outer : int;     (** bound on Δ-relaxation iterations *)
  monolithic_var_limit : int;  (** Auto: monolithic below this many binaries *)
  refine : bool;
      (** run the {!Refine} local-search post-pass on success (an
          extension beyond the paper; disable to reproduce the bare
          Algorithm 1) *)
  refine_params : Refine.params;
  certify : bool;
      (** re-verify every optimal LP point and MILP result in exact
          rational arithmetic ({!Agingfp_lp.Certify}) as the flow
          runs; rejections are logged and counted in
          {!certification}. Off by default. *)
  deadline_s : float option;
      (** wall-clock deadline for the whole solve (monotonic clock).
          On expiry the degradation ladder descends to ever cheaper
          machinery and, at worst, returns the audited baseline —
          {!solve} never hangs past the deadline by more than one
          cooperative checkpoint interval. [None] (default) reproduces
          the unbounded behaviour. *)
  jobs : int;
      (** Domains used inside one solve. [1] (the default) is the
          classic sequential pipeline. [jobs > 1] parallelizes the two
          independent fan-out points on a {!Agingfp_util.Pool}: the
          Δ-relaxation ladder evaluates a window of ST_target attempts
          concurrently and keeps the lowest acceptable one, and the
          per-context strategy solves every context's ILP
          speculatively before a sequential validate-and-commit pass
          (falling back to the sequential per-context solve whenever a
          speculative assignment no longer fits the committed stress).
          Results still pass the same {!Audit} gate; they may differ
          from the sequential floorplan only in which equally-audited
          mapping is found first. Values [< 1] are treated as [1]. *)
}

val default_params : params

(** {2 Degradation ladder}

    Every solve walks a fixed ladder of machineries, each under a
    slice of the remaining budget: the full two-step MILP, a
    node-capped relax-and-fix, LP-guided rounding without branch &
    bound, an LP-free greedy packer, and finally the unmodified
    baseline mapping (always audit-clean, since its budget is the
    baseline's own maximum stress). A rung is accepted only if its
    floorplan passes the independent {!Audit}; the rung that produced
    the returned mapping and every downgrade on the way are reported
    in the {!result}. *)

type rung =
  | Full_milp      (** LP + structured rounding + two-step MILP, full node budget *)
  | Relax_and_fix  (** same, branch & bound node-capped hard *)
  | Lp_rounding    (** LP-guided structured rounding only *)
  | Heuristic      (** best-fit-decreasing packing; no LP machinery at all *)
  | Baseline       (** the input mapping, unchanged *)

val pp_rung : Format.formatter -> rung -> unit
val rung_to_string : rung -> string

type degradation_step = {
  rung : rung;  (** the rung that was degraded {e from} *)
  reason : Agingfp_util.Budget.stop_reason;
  detail : string;  (** human-readable context, e.g. which fallback fired *)
}

val pp_degradation_step : Format.formatter -> degradation_step -> unit

type result = {
  mapping : Mapping.t;
  st_target : float;      (** final accepted budget *)
  st_lower_bound : float; (** Step 1 result *)
  st_up : float;          (** baseline max accumulated stress *)
  outer_iterations : int;
  baseline_cpd_ns : float;
  new_cpd_ns : float;
  improved : bool;
      (** false when every attempt failed and the baseline mapping is
          returned unchanged *)
  audit : Audit.report;
      (** independent re-check of the returned floorplan against
          formulation (3)'s semantics — run on every result, MILP
          untrusted; a failed audit is logged as an error *)
  rung : rung;  (** the ladder rung that produced [mapping] *)
  degradation : degradation_step list;
      (** chronological downgrades recorded on the way to [rung];
          empty when the full machinery succeeded undisturbed *)
  gap : float;
      (** worst (largest) finite relative optimality gap reported by
          any branch & bound run inside the ladder: [0.0] when every
          B&B that ran proved optimality, [<= mip_gap] when searches
          stopped on {!Agingfp_util.Budget.Gap_limit}, [nan] when no
          B&B ran at all (rounding succeeded without it, or the flow
          never got that far) *)
  dual_bound : float;
      (** the most recent finite global dual bound those runs
          reported, in the MILP's objective space; [nan] when none *)
  rung_stats : (rung * Agingfp_lp.Milp.stats) list;
      (** solver work per ladder rung attempted, in ladder order: every
          LP relaxation and B&B inside a rung (including speculative
          parallel tasks) accumulates into its entry, so summing
          [nodes]/[lp_iterations] across entries reproduces the
          {!Agingfp_lp.Milp.cumulative} delta of the ladder (Step 1's
          bisection solves excluded — they run before the ladder) *)
}

(** {2 Solution certification}

    Cumulative counters over the exact-rational certificates checked
    while [certify] was set, mirroring {!Agingfp_lp.Milp.cumulative};
    the CLI's [remap --certify] reports them. *)

type certification_stats = {
  lp_checked : int;  (** optimal LP relaxation points verified *)
  milp_checked : int;  (** MILP results verified *)
  rejected : int;
  failures : string list;  (** most recent rejections, newest first *)
}

val reset_certification : unit -> unit
val certification : unit -> certification_stats

val step1_lower_bound :
  ?params:params -> ?budget:Agingfp_util.Budget.t -> Design.t -> Mapping.t -> float
(** The delay-unaware [ST_target] lower bound (Algorithm 1 line 2).
    When [budget] expires mid-bisection the current feasible upper
    end is returned — looser, never wrong. *)

val build_formulation :
  ?params:params -> mode:Rotation.mode -> Design.t -> Mapping.t ->
  Ilp_model.instance * float
(** The full formulation-(3) instance (all contexts) the flow would
    solve first, budgeted at the Step-1 lower bound, plus that bound —
    the model [agingfp export-lp] writes and [agingfp lint] checks. *)

(** {2 Warm state across solves}

    Assembled simplex states survive one {!solve} call and warm-start
    the next — the payoff when the {e same} (design, baseline, params)
    triple is solved repeatedly, as in `agingfp serve`'s fleet
    re-submission path. *)

type warm
(** Opaque warm-solve state: one solver cache per
    {!Rotation.mode} (Freeze and Rotate build structurally different
    instances). Must not be shared by two concurrent solves — simplex
    states belong to one domain at a time. Correctness never depends
    on its contents: cached instances are rebudgeted consistently with
    their own structure and every result still passes the independent
    {!Audit}. *)

val new_warm : unit -> warm

val solve :
  ?warm:warm -> ?params:params -> mode:Rotation.mode -> Design.t -> Mapping.t -> result
(** Run the full flow against an aging-unaware baseline mapping. The
    returned mapping is always valid and its CPD never exceeds the
    baseline CPD. [Rotate] is the complete method: it also evaluates
    the identity (freeze) orientation and keeps whichever floorplan
    levels stress further, so Rotate is never worse than Freeze. *)

val solve_both :
  ?warm:warm -> ?params:params -> Design.t -> Mapping.t -> result * result
(** [(freeze, rotate)] sharing the Step-1 search and the freeze run —
    what Table I reports per benchmark, at roughly half the cost of
    two independent {!solve} calls. *)
