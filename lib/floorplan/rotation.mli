(** Critical-path constraint generation (Algorithm 1, step 2.1).

    In [Freeze] mode every operation on a context's critical path(s)
    is pinned to its original PE. In [Rotate] mode each context is
    rigidly re-oriented — one of the 8 unique orientations of
    Fig. 4a, plus an in-bounds translation — so that the critical
    paths of different contexts overlap on as few PEs as possible;
    the critical-path operations are then pinned at their re-oriented
    positions. Rigid re-orientation preserves every pairwise
    Manhattan distance, so all path delays (critical or not) are
    exactly preserved, and the re-oriented context is a sound
    reference floorplan for the MILP's candidate and displacement
    geometry.

    Orientation selection follows the paper's balance rule: all
    distinct when the context count is at most 8, otherwise each
    orientation is used either ⌊C/8⌋ or ⌊C/8⌋+1 times (exactly C/8
    when 8 divides C). Among allowed orientations the planner
    greedily minimizes accumulated critical-path overlap, with seeded
    random tie-breaking. *)

open Agingfp_cgrra

type mode = Freeze | Rotate

type plan = (int * int) list array
(** Per context: the frozen (op, pe) pairs. *)

val critical_ops : Design.t -> Mapping.t -> ctx:int -> int list
(** Distinct operations lying on some critical path of the context. *)

val freeze_plan : Design.t -> Mapping.t -> plan
(** All critical operations pinned to their original PEs. *)

val rotate_reference : ?seed:int -> Design.t -> Mapping.t -> Mapping.t * plan
(** The re-oriented reference mapping (every context rigidly
    transformed) and the pins of the critical operations at their
    re-oriented positions. The reference mapping is valid and has
    exactly the baseline's CPD. *)

val reference : ?seed:int -> mode -> Design.t -> Mapping.t -> Mapping.t * plan
(** [Freeze] keeps the baseline as reference with original-position
    pins; [Rotate] is {!rotate_reference}. *)

val plan : ?seed:int -> mode -> Design.t -> Mapping.t -> plan
(** Pins only, discarding the reference mapping. *)

val allowed_orientation_counts : contexts:int -> int * int
(** [(lo, hi)] usage bounds per orientation implied by the paper's
    rule (see above); [(0, 1)] when [contexts <= 8]. *)
