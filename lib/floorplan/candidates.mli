(** Candidate-PE pruning for the MILP binaries.

    Instantiating [OP_ijk] for every PE k reproduces the paper's full
    formulation but does not scale without CPLEX; the path-delay
    constraints themselves bound how far a monitored operation can
    move, so candidates outside that radius are provably useless
    (DESIGN.md §5). Within the radius the set is capped: the
    operation's original PE, its nearest free PEs, and the
    least-stressed PEs of the baseline floorplan (the targets stress
    leveling actually wants). *)

open Agingfp_cgrra

type params = {
  max_candidates : int;  (** cap per operation (0 = unlimited) *)
  unmonitored_radius : int;
      (** move radius for ops on no monitored path; the post-remap
          CPD check (Algorithm 1 line 12) guards these *)
}

val default_params : params
(** max_candidates = 14, unmonitored_radius = whole fabric (a large
    constant clamped to the fabric diameter). *)

type t
(** Candidate sets for one remapping problem. *)

val build :
  ?budget:Agingfp_util.Budget.t ->
  ?params:params ->
  Design.t ->
  Mapping.t ->
  frozen:Rotation.plan ->
  monitored:Paths.budgeted list array ->
  t
(** When [budget] (default unlimited) expires mid-build, the remaining
    operations receive the trivial radius-0 candidate set — still
    structurally valid, so the deadline-bounded caller can keep
    degrading gracefully instead of blocking on the full
    O(ops × PEs log PEs) generation. *)

val get : t -> ctx:int -> op:int -> int list
(** Candidate PEs for an unfrozen operation (always contains its
    original PE unless a frozen op claimed it); the singleton pin for
    a frozen one. *)

val is_frozen : t -> ctx:int -> op:int -> bool

val radius : t -> ctx:int -> op:int -> int
(** The slack-derived move radius used for this op. *)
