(** Independent audit of a finished remap against the paper's
    semantics — formulation (3) and Algorithm 1's acceptance rules —
    without trusting the MILP layer at all.

    Where {!Ilp_model} encodes assignment, stress-budget and
    path-length rows for the solver, this module re-derives each
    requirement directly from the {!Agingfp_cgrra.Design.t}, the
    mapping and the rotation plan:

    - every operation of every context is bound to exactly one
      in-range PE, and no PE hosts two operations of one context;
    - every critical-path pin of the rotation plan is honoured
      (frozen ops sit at their planned — possibly re-oriented — PEs);
    - every monitored near-critical path is within its Eq. (5)
      wire-length budget;
    - the recomputed CPD does not exceed the baseline CPD (the
      paper's "zero CPD increase" claim, re-checked with the full
      timing analysis);
    - per-PE accumulated stress stays within the reported ST_target.

    [Remap.solve] runs this on every result; [agingfp remap
    --certify] surfaces it on the CLI. *)

open Agingfp_cgrra

type code =
  | Invalid_mapping  (** Shape/range/occupancy violation. *)
  | Frozen_pin_moved
  | Path_over_budget
  | Cpd_increased
  | Stress_over_budget

type violation = { code : code; where : string; message : string }

type report = {
  violations : violation list;
  cpd_ns : float;  (** Recomputed CPD of the audited mapping. *)
  baseline_cpd_ns : float;
  max_stress : float;  (** Recomputed max per-PE accumulated stress. *)
  st_target : float;
  pins_checked : int;
  paths_checked : int;
}

val ok : report -> bool

val run :
  ?tol:float ->
  Design.t ->
  baseline_cpd:float ->
  st_target:float ->
  frozen:Rotation.plan ->
  monitored:Paths.budgeted list array ->
  Mapping.t ->
  report
(** [tol] (default [1e-6]) absorbs float round-off in the CPD and
    stress comparisons only; the structural checks (occupancy, pins,
    wire lengths — all integer) are exact. *)

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> report -> unit
(** Multi-line summary: verdict, recomputed figures, violations. *)
