(** The primary (monolithic, unrelaxed) ILP of paper §V.A.

    Minimizes the maximum accumulated stress directly — binaries for
    {e every} (operation, PE) pair, no candidate pruning, no LP
    pre-mapping — subject to assignment, capacity, frozen critical
    paths and exact path-delay rows. The paper reports that this
    formulation "does not scale well" (no solution within 5 days on
    larger benchmarks); the [ablation-ilp] bench reproduces that
    scaling cliff against the two-step MILP on instances small enough
    for both to finish. *)

open Agingfp_cgrra

type result = {
  mapping : Mapping.t option;  (** [None] when the budget ran out *)
  max_stress : float;          (** objective value when solved *)
  binaries : int;
  rows : int;
  stats : Agingfp_lp.Milp.stats;  (** presolve reductions + search counters *)
}

val solve :
  ?milp:Agingfp_lp.Milp.params ->
  ?freeze_critical:bool ->
  Design.t ->
  Mapping.t ->
  result
(** Solve the primary ILP against a baseline mapping.
    [freeze_critical] (default true) pins critical-path operations as
    constraint (2) of the paper requires. *)
