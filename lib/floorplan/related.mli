(** Related-work aging-mitigation strategies, for comparison benches.

    The paper's §I/§IV position its contribution against two families
    of prior CGRRA techniques; both are reproduced here so the
    comparison can be run rather than cited:

    - {b Module diversification} (Zhang et al. [4], [8]): keep the
      original floorplan but periodically swap between a small set of
      rigidly transformed configurations. Each configuration has
      exactly the baseline CPD (rigid transforms preserve all wire
      lengths), and the effective per-PE duty is the average over the
      set — stress is time-shared, not re-optimized.
    - {b Rotation cycling} (Gu et al. [10]): the same idea with the
      full set of 8 orientations.

    Both return the effective duty profile; MTTF follows via
    {!Agingfp_aging.Mttf.of_duty}. Neither strategy can beat leveling
    the floorplan itself when spare PEs exist — which is the paper's
    argument, and the [ablation-related] bench shows it. *)

open Agingfp_cgrra

val configurations : Design.t -> Mapping.t -> n:int -> Mapping.t list
(** Up to [n] (at most 8) rigidly transformed, in-bounds copies of the
    baseline floorplan — the original orientation first. All have the
    baseline's CPD exactly. *)

val effective_duty : Design.t -> Mapping.t list -> float array
(** Per-PE duty averaged over equal time shares of the given
    configurations. *)

val module_diversification_duty : Design.t -> Mapping.t -> float array
(** Two-configuration swap, as in module diversification. *)

val rotation_cycling_duty : Design.t -> Mapping.t -> float array
(** Swap across all 8 orientations, as in rotation-based mapping. *)
