open Agingfp_cgrra
module Coord = Agingfp_util.Coord

(* Rigidly transform the whole mapping by [o] with one global
   translation, so every configuration's accumulated stress map is an
   isometric copy of the baseline's (the configuration is "the same
   floorplan, re-oriented", as module diversification swaps whole
   configurations). Returns None when the footprint cannot be
   translated in bounds (cannot happen on square fabrics, kept for
   safety). *)
let transform_mapping design mapping o =
  let fabric = Design.fabric design in
  let dim = Fabric.dim fabric in
  let transformed =
    Array.init (Design.num_contexts design) (fun ctx ->
        let row = Mapping.context_array mapping ctx in
        Array.map
          (fun pe -> Coord.transform o (Fabric.coord_of_pe fabric pe))
          row)
  in
  let all = Array.to_list transformed |> Array.concat |> Array.to_list in
  if all = [] then Some (Mapping.copy mapping)
  else begin
    let mn, mx = Coord.bounding_box all in
    let ext = Coord.sub mx mn in
    if ext.Coord.x >= dim || ext.Coord.y >= dim then None
    else begin
      let arrays =
        Array.map
          (Array.map (fun p -> Fabric.pe_of_coord fabric (Coord.sub p mn)))
          transformed
      in
      Some (Mapping.of_arrays arrays)
    end
  end

let configurations design mapping ~n =
  let n = max 1 (min 8 n) in
  let rec collect i acc =
    if i >= 8 || List.length acc >= n then List.rev acc
    else begin
      match transform_mapping design mapping Coord.all_orientations.(i) with
      | Some m when Mapping.validate design m = Ok () -> collect (i + 1) (m :: acc)
      | Some _ | None -> collect (i + 1) acc
    end
  in
  collect 0 []

let effective_duty design configs =
  let npes = Fabric.num_pes (Design.fabric design) in
  let acc = Array.make npes 0.0 in
  let k = float_of_int (List.length configs) in
  let c = float_of_int (Design.num_contexts design) in
  List.iter
    (fun m ->
      Array.iteri
        (fun pe s -> acc.(pe) <- acc.(pe) +. (s /. (c *. k)))
        (Stress.accumulated design m))
    configs;
  acc

let module_diversification_duty design mapping =
  effective_duty design (configurations design mapping ~n:2)

let rotation_cycling_duty design mapping =
  effective_duty design (configurations design mapping ~n:8)
