open Agingfp_cgrra
module Expr = Agingfp_lp.Expr
module Model = Agingfp_lp.Model
module Milp = Agingfp_lp.Milp
module Analysis = Agingfp_timing.Analysis

type result = {
  mapping : Mapping.t option;
  max_stress : float;
  binaries : int;
  rows : int;
  stats : Milp.stats;
}

let solve ?(milp = { Milp.default_params with node_limit = 400; first_solution = false })
    ?(freeze_critical = true) design baseline =
  let fabric = Design.fabric design in
  let npes = Fabric.num_pes fabric in
  let ncontexts = Design.num_contexts design in
  let frozen =
    if freeze_critical then Rotation.freeze_plan design baseline
    else Array.make ncontexts []
  in
  let monitored = Paths.monitored design baseline in
  (* Unlimited candidates: every PE for every unfrozen operation. *)
  let cand_params = { Candidates.max_candidates = 0; unmonitored_radius = 4 * npes } in
  let candidates = Candidates.build ~params:cand_params design baseline ~frozen ~monitored in
  let committed = Array.make npes 0.0 in
  Array.iteri
    (fun ctx pins ->
      List.iter
        (fun (op, pe) -> committed.(pe) <- committed.(pe) +. Stress.op_stress design ~ctx ~op)
        pins)
    frozen;
  let lp = Model.create () in
  let t_var = Model.add_var ~name:"max_stress" lp in
  let vars = Hashtbl.create 4096 in
  let nbin = ref 0 in
  let stress_terms = Array.make npes [] in
  for ctx = 0 to ncontexts - 1 do
    let dfg = Design.context design ctx in
    let capacity = Array.make npes [] in
    for op = 0 to Dfg.num_ops dfg - 1 do
      if not (Candidates.is_frozen candidates ~ctx ~op) then begin
        let st_op = Stress.op_stress design ~ctx ~op in
        let terms =
          List.map
            (fun pe ->
              let v = Model.add_binary lp in
              incr nbin;
              Hashtbl.replace vars (ctx, op, pe) v;
              stress_terms.(pe) <- (st_op, v) :: stress_terms.(pe);
              capacity.(pe) <- v :: capacity.(pe);
              Expr.var v)
            (Candidates.get candidates ~ctx ~op)
        in
        ignore (Model.add_constraint lp (Expr.sum terms) Model.Eq 1.0)
      end
    done;
    Array.iter
      (fun vs ->
        match vs with
        | [] | [ _ ] -> ()
        | vs -> ignore (Model.add_constraint lp (Expr.sum (List.map Expr.var vs)) Model.Le 1.0))
      capacity
  done;
  (* Σ st·x − t ≤ −committed(pe): t dominates every accumulated load. *)
  for pe = 0 to npes - 1 do
    let lhs =
      Expr.sub
        (Expr.sum (List.map (fun (c, v) -> Expr.var ~coef:c v) stress_terms.(pe)))
        (Expr.var t_var)
    in
    ignore (Model.add_constraint lp lhs Model.Le (-.committed.(pe)))
  done;
  (* Exact path-delay rows (Eq. 5), |Δx| + |Δy| per hop. *)
  let coord_expr ctx op axis =
    if Candidates.is_frozen candidates ~ctx ~op then begin
      let pe = List.hd (Candidates.get candidates ~ctx ~op) in
      let c = Fabric.coord_of_pe fabric pe in
      Expr.const
        (float_of_int (match axis with `X -> c.Agingfp_util.Coord.x | `Y -> c.Agingfp_util.Coord.y))
    end
    else
      Expr.sum
        (List.map
           (fun pe ->
             let c = Fabric.coord_of_pe fabric pe in
             let v =
               float_of_int (match axis with `X -> c.Agingfp_util.Coord.x | `Y -> c.Agingfp_util.Coord.y)
             in
             if v = 0.0 then Expr.zero else Expr.var ~coef:v (Hashtbl.find vars (ctx, op, pe)))
           (Candidates.get candidates ~ctx ~op))
  in
  Array.iteri
    (fun ctx budgeted ->
      List.iter
        (fun (b : Paths.budgeted) ->
          let nodes = b.Paths.path.Analysis.nodes in
          let total = ref Expr.zero in
          for i = 0 to Array.length nodes - 2 do
            List.iter
              (fun axis ->
                let w = Model.add_var ~lb:0.0 lp in
                let cu = coord_expr ctx nodes.(i) axis
                and cv = coord_expr ctx nodes.(i + 1) axis in
                ignore (Model.add_constraint lp (Expr.sub (Expr.sub cu cv) (Expr.var w)) Model.Le 0.0);
                ignore (Model.add_constraint lp (Expr.sub (Expr.sub cv cu) (Expr.var w)) Model.Le 0.0);
                total := Expr.add !total (Expr.var w))
              [ `X; `Y ]
          done;
          ignore (Model.add_constraint lp !total Model.Le (float_of_int b.Paths.wire_budget)))
        budgeted)
    monitored;
  Model.set_objective lp Model.Minimize (Expr.var t_var);
  let rows = Model.num_constraints lp in
  match Milp.solve_with_stats ~params:milp lp with
  | Milp.Feasible sol, stats ->
    let arrays =
      Array.init ncontexts (fun ctx ->
          let dfg = Design.context design ctx in
          Array.init (Dfg.num_ops dfg) (fun op ->
              if Candidates.is_frozen candidates ~ctx ~op then
                List.hd (Candidates.get candidates ~ctx ~op)
              else begin
                let best = ref (-1) and best_v = ref neg_infinity in
                List.iter
                  (fun pe ->
                    let v = sol.Agingfp_lp.Simplex.values.(Hashtbl.find vars (ctx, op, pe)) in
                    if v > !best_v then begin
                      best := pe;
                      best_v := v
                    end)
                  (Candidates.get candidates ~ctx ~op);
                !best
              end))
    in
    {
      mapping = Some (Mapping.of_arrays arrays);
      max_stress = sol.Agingfp_lp.Simplex.values.(t_var);
      binaries = !nbin;
      rows;
      stats;
    }
  | (Milp.Infeasible | Milp.Unknown), stats ->
    { mapping = None; max_stress = nan; binaries = !nbin; rows; stats }
