open Agingfp_cgrra
module Analysis = Agingfp_timing.Analysis
module Coord = Agingfp_util.Coord
module Rng = Agingfp_util.Rng

type mode = Freeze | Rotate

type plan = (int * int) list array

let critical_ops design mapping ~ctx =
  let paths = Analysis.critical_paths design mapping ~ctx in
  List.sort_uniq Int.compare
    (List.concat_map (fun (p : Analysis.path) -> Array.to_list p.Analysis.nodes) paths)

let freeze_plan design mapping =
  Array.init (Design.num_contexts design) (fun ctx ->
      List.map
        (fun op -> (op, Mapping.pe_of mapping ~ctx ~op))
        (critical_ops design mapping ~ctx))

let allowed_orientation_counts ~contexts =
  let lo = contexts / 8 in
  let hi = if contexts mod 8 = 0 then max lo 1 else lo + 1 in
  if contexts <= 8 then (0, 1) else (lo, hi)

(* Rigidly transform coordinates by [o]; returns the origin-normalized
   shape and its extent. Rigidity preserves every pairwise Manhattan
   distance, hence every path delay of the context. *)
let oriented_shape o coords =
  let transformed = Coord.transform_all o coords in
  let normalized, _ = Coord.normalize transformed in
  let _, ext = Coord.bounding_box normalized in
  (normalized, ext)

let rotate_reference ?(seed = 77) design mapping =
  let fabric = Design.fabric design in
  let dim = Fabric.dim fabric in
  let contexts = Design.num_contexts design in
  let rng = Rng.create seed in
  let _, hi = allowed_orientation_counts ~contexts in
  let used = Array.make 8 0 in
  (* Greedy overlap minimization: contexts in descending critical-op
     count; [claims] counts how often each PE hosts a pinned critical
     op so far. *)
  let claims = Array.make (Fabric.num_pes fabric) 0 in
  let ctx_critical = Array.init contexts (fun ctx -> critical_ops design mapping ~ctx) in
  let order = Array.init contexts (fun i -> i) in
  Array.sort
    (fun a b -> Int.compare (List.length ctx_critical.(b)) (List.length ctx_critical.(a)))
    order;
  let ref_arrays =
    Array.init contexts (fun ctx -> Mapping.context_array mapping ctx)
  in
  let pins = Array.make contexts [] in
  Array.iter
    (fun ctx ->
      let dfg = Design.context design ctx in
      let n = Dfg.num_ops dfg in
      if n = 0 then pins.(ctx) <- []
      else begin
        let all_ops = List.init n (fun i -> i) in
        let coords =
          List.map (fun op -> Fabric.coord_of_pe fabric (Mapping.pe_of mapping ~ctx ~op)) all_ops
        in
        let crit = ctx_critical.(ctx) in
        let is_crit = Array.make n false in
        List.iter (fun op -> is_crit.(op) <- true) crit;
        let orig_min, _ = Coord.bounding_box coords in
        (* Sweep allowed orientations x in-bounds translations of the
           whole context; cost = pinned-PE overlap of the critical
           ops, tie-broken by smallest displacement of the shape. *)
        let best = ref None in
        for oi = 0 to 7 do
          if used.(oi) < hi then begin
            let o = Coord.all_orientations.(oi) in
            let shape, ext = oriented_shape o coords in
            for ox = 0 to dim - 1 - ext.Coord.x do
              for oy = 0 to dim - 1 - ext.Coord.y do
                let off = Coord.make ox oy in
                let cost = ref 0 in
                List.iteri
                  (fun i p ->
                    if is_crit.(i) then begin
                      let pe = Fabric.pe_of_coord fabric (Coord.add p off) in
                      cost := !cost + claims.(pe)
                    end)
                  shape;
                let disturb = abs (ox - orig_min.Coord.x) + abs (oy - orig_min.Coord.y) in
                let key = (!cost, disturb) in
                let better =
                  match !best with
                  | None -> true
                  | Some (bk, _, _, _) ->
                    compare key bk < 0
                    || (compare key bk = 0 && Rng.bool rng)
                  in
                if better then best := Some (key, oi, shape, off)
              done
            done
          end
        done;
        match !best with
        | None ->
          Agingfp_util.Invariant.fail ~where:"Rotation.rotate_reference"
            "no orientation available"
        | Some (_, oi, shape, off) ->
          used.(oi) <- used.(oi) + 1;
          List.iteri
            (fun i p ->
              let pe = Fabric.pe_of_coord fabric (Coord.add p off) in
              ref_arrays.(ctx).(i) <- pe;
              if is_crit.(i) then claims.(pe) <- claims.(pe) + 1)
            shape;
          pins.(ctx) <- List.map (fun op -> (op, ref_arrays.(ctx).(op))) crit
      end)
    order;
  let reference = Mapping.of_arrays ref_arrays in
  (match Mapping.validate design reference with
  | Ok () -> ()
  | Error msg ->
    Agingfp_util.Invariant.fail ~where:"Rotation.rotate_reference"
      "invalid reference: %s" msg);
  (reference, pins)

let reference ?seed mode design mapping =
  match mode with
  | Freeze -> (Mapping.copy mapping, freeze_plan design mapping)
  | Rotate -> rotate_reference ?seed design mapping

let plan ?seed mode design mapping = snd (reference ?seed mode design mapping)
