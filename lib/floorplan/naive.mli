(** Delay-unaware naive spreading — the strawman of paper §IV.

    "Intuitively, this could be achieved by spreading the PE usage as
    much as possible. This naïve approach, however, can cause
    significant delay increase due to longer wire lengths."

    This module implements that strawman: a best-fit-decreasing
    balancer that minimizes the maximum accumulated stress while
    completely ignoring path delays. The [ablation-naive] bench uses
    it to demonstrate the CPD blow-up that motivates the paper's
    delay-aware formulation. *)

open Agingfp_cgrra

val spread : ?seed:int -> Design.t -> Mapping.t -> Mapping.t
(** Rebind every operation to level accumulated stress; the result is
    a valid mapping with (near-)minimal max stress and arbitrary
    wire lengths. *)
