(** Lifetime simulation with optional periodic wear-aware re-mapping.

    The paper produces one static aging-aware floorplan. A natural
    extension (and the regime its related work [3], [8] operates in)
    is to re-map {e periodically}, steering each epoch's stress away
    from the PEs that already accumulated the most wear. This module
    simulates a device's life in epochs:

    - per epoch, every PE accumulates stress time
      [duty * epoch_seconds] under the epoch's mapping (Eq. (1)'s
      [ST] is additive in time);
    - V_th shift follows Eq. (1) on the accumulated stress with the
      epoch's steady-state temperature;
    - the device fails in the epoch where some PE's shift crosses the
      failure threshold (position within the epoch interpolated by
      inverting Eq. (1));
    - a [Periodic] strategy may produce a new delay-clean mapping at
      each epoch boundary, seeing the accumulated wear.

    All re-mapping strategies built here preserve the no-CPD-increase
    guarantee (they move through {!Refine} with the baseline CPD and
    path budgets as guards). *)

open Agingfp_cgrra

type strategy =
  | Static of Mapping.t
  | Periodic of (epoch:int -> wear:float array -> Mapping.t)
      (** [wear] is the accumulated stress time per PE, in seconds. *)

type outcome = {
  failed_at_years : float option;  (** None = survived the horizon *)
  epochs_run : int;
  final_max_shift_v : float;
  final_wear : float array;
}

val simulate :
  ?nbti:Agingfp_aging.Nbti.params ->
  ?thermal:Agingfp_thermal.Model.params ->
  Design.t ->
  epochs:int ->
  epoch_years:float ->
  strategy ->
  outcome

val wear_aware_strategy :
  ?refine_params:Refine.params ->
  Design.t ->
  baseline:Mapping.t ->
  start:Mapping.t ->
  strategy
(** A [Periodic] strategy: each epoch starts from [start] (typically
    the aging-aware floorplan) and re-levels against the normalized
    accumulated wear using {!Refine.improve}, guarded by [baseline]'s
    CPD and path budgets. *)
