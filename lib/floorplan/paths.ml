open Agingfp_cgrra
module Analysis = Agingfp_timing.Analysis

type budgeted = { path : Analysis.path; wire_budget : int; baseline_wire : int }

type params = { within : float; max_paths : int }

let default_params = { within = 0.2; max_paths = 48 }

let budget_of_path design mapping ~cpd path =
  let chars = Design.chars design in
  let pe_delay = Analysis.pe_delay_sum design path in
  let budget_ns = cpd -. pe_delay in
  let uwd = chars.Chars.unit_wire_delay_ns in
  let wire_budget = int_of_float (floor ((budget_ns /. uwd) +. 1e-9)) in
  let baseline_wire = Analysis.wire_length design mapping path in
  (* The baseline mapping meets the CPD by definition, so its wire
     usage never exceeds the budget. *)
  let wire_budget = max wire_budget baseline_wire in
  { path; wire_budget; baseline_wire }

let monitored ?(params = default_params) design mapping =
  let cpd = Analysis.cpd design mapping in
  Array.init (Design.num_contexts design) (fun ctx ->
      let paths =
        Analysis.monitored_paths design mapping ~ctx ~within:params.within
          ~max_paths:params.max_paths ()
      in
      List.map (budget_of_path design mapping ~cpd) paths)

let slack b = b.wire_budget - b.baseline_wire
