open Agingfp_cgrra
module Analysis = Agingfp_timing.Analysis
module Nbti = Agingfp_aging.Nbti
module Thermal = Agingfp_thermal.Model

type strategy =
  | Static of Mapping.t
  | Periodic of (epoch:int -> wear:float array -> Mapping.t)

type outcome = {
  failed_at_years : float option;
  epochs_run : int;
  final_max_shift_v : float;
  final_wear : float array;
}

let year_seconds = 3.156e7

let simulate ?nbti ?thermal design ~epochs ~epoch_years strategy =
  let nbti_params = match nbti with Some p -> p | None -> Nbti.default_params in
  let npes = Fabric.num_pes (Design.fabric design) in
  let contexts = float_of_int (Design.num_contexts design) in
  let epoch_s = epoch_years *. year_seconds in
  let fail_shift = nbti_params.Nbti.fail_frac *. nbti_params.Nbti.vth0 in
  (* Accumulated stress time per PE, in seconds. *)
  let wear = Array.make npes 0.0 in
  let max_shift = ref 0.0 in
  let failed_at = ref None in
  let epoch = ref 0 in
  (while !failed_at = None && !epoch < epochs do
    let mapping =
      match strategy with
      | Static m -> m
      | Periodic f -> f ~epoch:!epoch ~wear:(Array.copy wear)
    in
    let duty =
      Array.map (fun s -> s /. contexts) (Stress.accumulated design mapping)
    in
    let temps = Thermal.pe_temperatures ?params:thermal design mapping in
    (* Shift of PE i at accumulated stress S (seconds), Eq. (1):
       shift = A * S^n * exp(-Ea/kT) * Vth0. *)
    let shift_of pe s =
      if s <= 0.0 then 0.0
      else
        nbti_params.Nbti.a_nbti
        *. (s ** nbti_params.Nbti.n_exp)
        *. exp (-.nbti_params.Nbti.ea_ev /. (Nbti.boltzmann_ev *. temps.(pe)))
        *. nbti_params.Nbti.vth0
    in
    (* Advance one epoch, detecting the first in-epoch failure. *)
    let earliest_fail = ref infinity in
    for pe = 0 to npes - 1 do
      let s_end = wear.(pe) +. (duty.(pe) *. epoch_s) in
      let shift_end = shift_of pe s_end in
      if shift_end >= fail_shift && duty.(pe) > 0.0 then begin
        (* Invert Eq. (1) for the in-epoch failure time. *)
        let arrhenius =
          exp (-.nbti_params.Nbti.ea_ev /. (Nbti.boltzmann_ev *. temps.(pe)))
        in
        let s_fail =
          (nbti_params.Nbti.fail_frac /. (nbti_params.Nbti.a_nbti *. arrhenius))
          ** (1.0 /. nbti_params.Nbti.n_exp)
        in
        let dt = (s_fail -. wear.(pe)) /. duty.(pe) in
        let dt = max 0.0 dt in
        earliest_fail := min !earliest_fail dt
      end
    done;
    if !earliest_fail < infinity then begin
      failed_at :=
        Some (((float_of_int !epoch *. epoch_s) +. !earliest_fail) /. year_seconds);
      (* Account wear up to the failure instant. *)
      for pe = 0 to npes - 1 do
        wear.(pe) <- wear.(pe) +. (duty.(pe) *. !earliest_fail)
      done
    end
    else
      for pe = 0 to npes - 1 do
        wear.(pe) <- wear.(pe) +. (duty.(pe) *. epoch_s)
      done;
    for pe = 0 to npes - 1 do
      max_shift := max !max_shift (shift_of pe wear.(pe))
    done;
    incr epoch
  done
  [@codelint.allow "budget-poll"
    "epoch-bounded simulation: the loop runs at most [epochs] iterations \
     and each iteration is O(npes)"]);
  {
    failed_at_years = !failed_at;
    epochs_run = !epoch;
    final_max_shift_v = !max_shift;
    final_wear = wear;
  }

let wear_aware_strategy ?refine_params design ~baseline ~start =
  let baseline_cpd = Analysis.cpd design baseline in
  let frozen = Rotation.freeze_plan design start in
  let monitored = Paths.monitored design baseline in
  let contexts = float_of_int (Design.num_contexts design) in
  Periodic
    (fun ~epoch:_ ~wear ->
      (* Normalize wear (seconds of stress) into the same unit as one
         round of accumulated context stress, so the refiner weighs
         past wear against the stress the next epoch will add. *)
      let total = Array.fold_left ( +. ) 0.0 wear in
      if total <= 0.0 then start
      else begin
        let scale = contexts /. Agingfp_util.Stats.fmax wear in
        let initial = Array.map (fun w -> w *. scale) wear in
        let refined, _ =
          Refine.improve ?params:refine_params ~initial design ~baseline_cpd ~frozen
            ~monitored start
        in
        refined
      end)
