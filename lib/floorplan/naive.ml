open Agingfp_cgrra
module Rng = Agingfp_util.Rng

let spread ?(seed = 31) design _baseline =
  let rng = Rng.create seed in
  let npes = Fabric.num_pes (Design.fabric design) in
  let committed = Array.make npes 0.0 in
  let arrays =
    Array.init (Design.num_contexts design) (fun ctx ->
        Array.make (Dfg.num_ops (Design.context design ctx)) (-1))
  in
  (* Longest-processing-time-first over all contexts: heaviest ops
     grab the globally least-loaded PE still free in their context. *)
  let all_ops =
    Array.of_list
      (List.concat_map
         (fun ctx ->
           List.init
             (Dfg.num_ops (Design.context design ctx))
             (fun op -> (ctx, op, Stress.op_stress design ~ctx ~op)))
         (List.init (Design.num_contexts design) (fun i -> i)))
  in
  Rng.shuffle rng all_ops;
  Array.sort (fun (_, _, a) (_, _, b) -> Float.compare b a) all_ops;
  let used = Array.init (Design.num_contexts design) (fun _ -> Array.make npes false) in
  Array.iter
    (fun (ctx, op, st_op) ->
      let best = ref (-1) in
      for pe = 0 to npes - 1 do
        if (not used.(ctx).(pe)) && (!best < 0 || committed.(pe) < committed.(!best)) then
          best := pe
      done;
      arrays.(ctx).(op) <- !best;
      used.(ctx).(!best) <- true;
      committed.(!best) <- committed.(!best) +. st_op)
    all_ops;
  let mapping = Mapping.of_arrays arrays in
  (match Mapping.validate design mapping with
  | Ok () -> ()
  | Error msg ->
    Agingfp_util.Invariant.fail ~where:"Naive.spread" "produced invalid mapping: %s"
      msg);
  mapping
