open Agingfp_cgrra
module Analysis = Agingfp_timing.Analysis
module Milp = Agingfp_lp.Milp
module Simplex = Agingfp_lp.Simplex
module Analyze = Agingfp_lp.Analyze
module Certify = Agingfp_lp.Certify
module Budget = Agingfp_util.Budget
module Pool = Agingfp_util.Pool
module Invariant = Agingfp_util.Invariant
module Faults = Agingfp_lp.Faults

let src = Logs.Src.create "agingfp.remap" ~doc:"Aging-aware remapping"

module Log = (val Logs.src_log src : Logs.LOG)

type strategy = Monolithic | Per_context | Auto

type step1_method = Greedy_pack | Exact_matching | Milp_relax

type params = {
  seed : int;
  encoding : Ilp_model.encoding;
  objective : Ilp_model.objective;
  strategy : strategy;
  step1 : step1_method;
  candidate_params : Candidates.params;
  path_params : Paths.params;
  milp : Milp.params;
  bisect_iters : int;
  delta_steps : int;
  max_outer : int;
  monolithic_var_limit : int;
  refine : bool;
  refine_params : Refine.params;
  certify : bool;
  deadline_s : float option;
  jobs : int;
}

let default_params =
  {
    seed = 20200310;
    encoding = Ilp_model.Hybrid;
    objective = Ilp_model.Min_displacement;
    strategy = Auto;
    step1 = Greedy_pack;
    candidate_params = Candidates.default_params;
    path_params = Paths.default_params;
    milp = { Milp.default_params with node_limit = 120 };
    bisect_iters = 8;
    delta_steps = 16;
    max_outer = 24;
    monolithic_var_limit = 1200;
    refine = true;
    refine_params = Refine.default_params;
    certify = false;
    deadline_s = None;
    jobs = 1;
  }

(* ---------- degradation ladder ---------- *)

type rung = Full_milp | Relax_and_fix | Lp_rounding | Heuristic | Baseline

let rung_to_string = function
  | Full_milp -> "full-milp"
  | Relax_and_fix -> "relax-and-fix"
  | Lp_rounding -> "lp-rounding"
  | Heuristic -> "heuristic"
  | Baseline -> "baseline"

let pp_rung ppf r = Format.pp_print_string ppf (rung_to_string r)

type degradation_step = {
  rung : rung;
  reason : Budget.stop_reason;
  detail : string;
}

let pp_degradation_step ppf s =
  Format.fprintf ppf "%a: %a — %s" pp_rung s.rung Budget.pp_stop_reason s.reason
    s.detail

type result = {
  mapping : Mapping.t;
  st_target : float;
  st_lower_bound : float;
  st_up : float;
  outer_iterations : int;
  baseline_cpd_ns : float;
  new_cpd_ns : float;
  improved : bool;
  audit : Audit.report;
  rung : rung;
  degradation : degradation_step list;
  gap : float;
  dual_bound : float;
  rung_stats : (rung * Milp.stats) list;
}

(* ---------- solution certification (Lp.Certify) ---------- *)

type certification_stats = {
  lp_checked : int;
  milp_checked : int;
  rejected : int;
  failures : string list;
}

let no_certification =
  { lp_checked = 0; milp_checked = 0; rejected = 0; failures = [] }

(* Certification tallies are fed from pool tasks when [jobs > 1]. *)
let cert = ref no_certification
let cert_mutex = Mutex.create ()

let with_cert f =
  Mutex.lock cert_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cert_mutex) f

let reset_certification () = with_cert (fun () -> cert := no_certification)
let certification () = with_cert (fun () -> !cert)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let note_certificate ~kind verdict =
  with_cert (fun () ->
      let c = !cert in
      let c =
        match kind with
        | `Lp -> { c with lp_checked = c.lp_checked + 1 }
        | `Milp -> { c with milp_checked = c.milp_checked + 1 }
      in
      match verdict with
      | Certify.Certified | Certify.Unsupported _ -> cert := c
      | Certify.Rejected msgs ->
        let failure = String.concat "; " msgs in
        Log.err (fun k -> k "solution certificate rejected: %s" failure);
        cert :=
          { c with rejected = c.rejected + 1; failures = take 8 (failure :: c.failures) })

let empty_plan design : Rotation.plan = Array.make (Design.num_contexts design) []

let frozen_stress design (plan : Rotation.plan) =
  let acc = Array.make (Fabric.num_pes (Design.fabric design)) 0.0 in
  Array.iteri
    (fun ctx pins ->
      List.iter
        (fun (op, pe) -> acc.(pe) <- acc.(pe) +. Stress.op_stress design ~ctx ~op)
        pins)
    plan;
  acc

(* ---------- greedy feasibility probe / structured rounding ---------- *)

(* Best-fit-decreasing packing of the unfrozen ops of [ctx] under the
   residual budgets, optionally guided by LP values. Mutates
   [committed] and [assignment] on success only. Polls [budget] every
   few ops: the packer used to be the largest uninterruptible unit in
   the pipeline and the main source of deadline overshoot. An expired
   budget reads as packing failure, which every caller already treats
   as "stop and degrade". *)
let pack_context ?(budget = Budget.unlimited) design ~candidates ~st_target ~committed
    ~lp_value ctx assignment =
  let dfg = Design.context design ctx in
  let n = Dfg.num_ops dfg in
  let npes = Array.length committed in
  (* Working copy of the residual budgets; committed is only updated
     on success. occupant maps PE -> op (-1 free, -2 frozen pin). *)
  let resid = Array.copy committed in
  let occupant = Array.make npes (-1) in
  for op = 0 to n - 1 do
    if Candidates.is_frozen candidates ~ctx ~op then
      occupant.(List.hd (Candidates.get candidates ~ctx ~op)) <- -2
  done;
  let order = Array.init n (fun i -> i) in
  let stress op = Stress.op_stress design ~ctx ~op in
  Array.sort (fun a b -> Float.compare (stress b) (stress a)) order;
  let local = Array.make n (-1) in
  let fits op pe = resid.(pe) +. stress op <= st_target +. 1e-9 in
  let place op pe =
    local.(op) <- pe;
    occupant.(pe) <- op;
    resid.(pe) <- resid.(pe) +. stress op
  in
  let unplace op pe =
    local.(op) <- -1;
    occupant.(pe) <- -1;
    resid.(pe) <- resid.(pe) -. stress op
  in
  let try_direct op =
    let best = ref (-1) in
    let best_key = ref (neg_infinity, neg_infinity) in
    List.iter
      (fun pe ->
        if occupant.(pe) = -1 && fits op pe then begin
          (* Prefer high LP value, then low residual load. *)
          let key = (lp_value op pe, -.resid.(pe)) in
          if compare key !best_key > 0 then begin
            best := pe;
            best_key := key
          end
        end)
      (Candidates.get candidates ~ctx ~op);
    if !best < 0 then false
    else begin
      place op !best;
      true
    end
  in
  (* One-level ejection chain: free one of [op]'s candidate PEs by
     relocating its (lighter, non-frozen) occupant to another of that
     occupant's own candidates. Essential at high fabric utilization,
     where the stress-aware candidate sets overlap heavily. *)
  let try_eject op =
    let rec scan = function
      | [] -> false
      | pe :: rest ->
        let victim = occupant.(pe) in
        if victim < 0 then scan rest
        else begin
          unplace victim pe;
          (* Reserve the freed PE so the victim cannot re-take it. *)
          occupant.(pe) <- -3;
          if not (fits op pe) then begin
            occupant.(pe) <- -1;
            place victim pe;
            scan rest
          end
          else if try_direct victim then begin
            occupant.(pe) <- -1;
            place op pe;
            true
          end
          else begin
            occupant.(pe) <- -1;
            place victim pe;
            scan rest
          end
        end
    in
    scan (Candidates.get candidates ~ctx ~op)
  in
  let ok = ref true in
  let placed = ref 0 in
  Array.iter
    (fun op ->
      if !ok && not (Candidates.is_frozen candidates ~ctx ~op) then begin
        incr placed;
        if !placed land 7 = 0 && Budget.expired budget then ok := false
        else if not (try_direct op || try_eject op) then ok := false
      end)
    order;
  if not !ok then false
  else begin
    for op = 0 to n - 1 do
      if Candidates.is_frozen candidates ~ctx ~op then
        assignment.(op) <- List.hd (Candidates.get candidates ~ctx ~op)
      else assignment.(op) <- local.(op)
    done;
    for op = 0 to n - 1 do
      if not (Candidates.is_frozen candidates ~ctx ~op) then
        committed.(assignment.(op)) <- committed.(assignment.(op)) +. stress op
    done;
    true
  end

(* ---------- warm-started solver cache ---------- *)

(* ST_target and the committed loads only enter formulation (3)
   through the stress-budget RHS, so across Algorithm 1's Δ-relaxation
   attempts (and the ST_target bisection of Step 1's Milp_relax probe)
   each instance is built and assembled once; later attempts rebudget
   the rows in place and warm-restart the simplex from the previous
   basis. *)
type solver_cache = {
  mutable mono : (Ilp_model.instance * Simplex.state) option;
  per_ctx : (int, Ilp_model.instance * Simplex.state) Hashtbl.t;
}

let new_cache () = { mono = None; per_ctx = Hashtbl.create 8 }

(* Warm state carried across repeated solves of the {e same}
   (design, baseline, params) triple — the server's re-submission
   path. One solver cache per mode, because Freeze and Rotate build
   structurally different instances (the reference geometry differs).
   Reuse is sound even when budget pressure made an earlier build see
   a different candidate set: a cached instance is only ever
   rebudgeted through [set_st_target] (consistent with its own
   structure), stale LP guidance merely steers the rounding, and every
   floorplan still passes [Mapping.validate] + the independent audit.
   A warm value must not be shared by two concurrent solves — simplex
   states belong to one domain at a time. *)
type warm = {
  freeze_cache : solver_cache ref;
  rotate_cache : solver_cache ref;
}

let new_warm () =
  { freeze_cache = ref (new_cache ()); rotate_cache = ref (new_cache ()) }

(* In debug builds every freshly built Eq. (3) instance is linted
   before its first solve; errors surface loudly, advisory findings go
   to the debug log. *)
let lint_instance inst =
  match Logs.Src.level src with
  | Some Logs.Debug ->
    List.iter
      (fun (d : Analyze.diagnostic) ->
        match d.Analyze.severity with
        | Analyze.Error -> Log.err (fun k -> k "lint: %a" Analyze.pp_diagnostic d)
        | Analyze.Warning | Analyze.Info ->
          Log.debug (fun k -> k "lint: %a" Analyze.pp_diagnostic d))
      (Analyze.lint (Ilp_model.model inst))
  | _ -> ()

(* Rebudget a cached instance + state and re-solve its LP relaxation
   warm; on a cache miss, [build] makes the instance and the first
   solve runs cold. Feeds the global Milp counters either way, and
   reports the same delta to [stats_note] so the caller can attribute
   the work to a ladder rung. When [certify] is set, any optimal point
   is re-verified in exact arithmetic against the (rebudgeted) model
   before it is trusted. *)
let cached_lp_solve ~certify ~budget ~stats_note ~get ~set ~build ~st_target ~committed =
  let inst, st, fresh =
    match get () with
    | Some (inst, st) ->
      Ilp_model.set_st_target inst ~st_target ~committed;
      List.iter
        (fun (pe, row) -> Simplex.set_rhs st row (st_target -. committed.(pe)))
        (Ilp_model.stress_budget_rows inst);
      (inst, st, false)
    | None ->
      let inst = build () in
      lint_instance inst;
      let st = Simplex.assemble (Ilp_model.model inst) in
      set (inst, st);
      (inst, st, true)
  in
  (* The cached state may have been assembled under an earlier (or no)
     budget; every solve runs under the caller's current slice. *)
  Simplex.set_budget st budget;
  let s0 = Simplex.state_stats st in
  let status = if fresh then Simplex.solve_state st else Simplex.reoptimize st in
  let s1 = Simplex.state_stats st in
  let warm = s1.Simplex.warm_solves > s0.Simplex.warm_solves in
  let iterations = s1.Simplex.lp_iterations - s0.Simplex.lp_iterations in
  Milp.note_lp_solve ~warm ~iterations
    ~refactorizations:(s1.Simplex.refactorizations - s0.Simplex.refactorizations)
    ~eta_updates:(s1.Simplex.eta_updates - s0.Simplex.eta_updates)
    ~fill_in:s1.Simplex.fill_in
    ~drift_refreshes:(s1.Simplex.drift_refreshes - s0.Simplex.drift_refreshes) ();
  stats_note ~milp:false
    {
      Milp.zero_stats with
      Milp.warm_solves = (if warm then 1 else 0);
      cold_solves = (if warm then 0 else 1);
      lp_iterations = iterations;
      refactorizations = s1.Simplex.refactorizations - s0.Simplex.refactorizations;
      eta_updates = s1.Simplex.eta_updates - s0.Simplex.eta_updates;
      fill_in = s1.Simplex.fill_in;
      drift_refreshes = s1.Simplex.drift_refreshes - s0.Simplex.drift_refreshes;
    };
  (match status with
  | Simplex.Optimal sol when certify ->
    (* [set_st_target] keeps the instance's model current, so the
       relaxation (integrality waived) is checked against exactly the
       constraints the solver claims to have satisfied. *)
    note_certificate ~kind:`Lp
      (Certify.solution ~relaxation:true (Ilp_model.model inst) sol)
  | _ -> ());
  (inst, status)

(* Why an LP relaxation was unusable, as a degradation reason.
   [Unbounded] on formulation (3) — bounded binaries — can only mean a
   broken model or a corrupted solver state, so it is a fault, not a
   budget condition. *)
let lp_cut_reason = function
  | Simplex.Iteration_limit -> Budget.Iteration_limit
  | Simplex.Deadline -> Budget.Deadline
  | Simplex.Fault msg -> Budget.Fault msg
  | Simplex.Unbounded -> Budget.Fault "unbounded LP relaxation"
  | Simplex.Infeasible | Simplex.Optimal _ -> Budget.Optimal

(* The MILP machinery a ladder rung is allowed to use; [None] means no
   branch & bound at all. *)
let milp_params_for params ~budget = function
  | Full_milp -> Some { params.milp with Milp.budget }
  | Relax_and_fix ->
    (* The cheap-MILP rung: same two-step scheme, hard-capped search. *)
    Some
      { params.milp with Milp.node_limit = min params.milp.Milp.node_limit 16; budget }
  | Lp_rounding | Heuristic | Baseline -> None

(* Exact wire-length check of the monitored paths for one context. *)
let paths_ok design mapping monitored ctx =
  List.for_all
    (fun (b : Paths.budgeted) ->
      Analysis.wire_length design mapping b.Paths.path <= b.Paths.wire_budget)
    monitored.(ctx)

(* ---------- per-context MILP solve ---------- *)

let solve_context params design baseline ~candidates ~monitored ~st_target ~committed
    ~cache ~budget ~machinery ~note ~stats_note ctx current =
  (* Fast path: LP relaxation + structured rounding; fall back to the
     paper's two-step MILP when rounding misses or breaks a path
     budget. The ladder's [machinery] caps what this is allowed to
     cost: [Heuristic] skips the LP entirely, [Lp_rounding] skips the
     branch & bound. *)
  let try_rounding lp_value =
    let committed' = Array.copy committed in
    let dfg = Design.context design ctx in
    let assignment = Array.make (Dfg.num_ops dfg) (-1) in
    if pack_context ~budget design ~candidates ~st_target ~committed:committed' ~lp_value
         ctx assignment
    then begin
      let arrays =
        Array.init (Design.num_contexts design) (fun c ->
            if c = ctx then assignment else Mapping.context_array current c)
      in
      let mapping = Mapping.of_arrays arrays in
      if paths_ok design mapping monitored ctx then begin
        Array.blit committed' 0 committed 0 (Array.length committed);
        Some mapping
      end
      else None
    end
    else None
  in
  if machinery = Heuristic then try_rounding (fun _ _ -> 0.0)
  else begin
    let inst, lp_status =
      cached_lp_solve ~certify:params.certify ~budget ~stats_note
        ~get:(fun () -> Hashtbl.find_opt cache.per_ctx ctx)
        ~set:(fun entry -> Hashtbl.replace cache.per_ctx ctx entry)
        ~build:(fun () ->
          Ilp_model.build ~encoding:params.encoding ~objective:params.objective design
            ~baseline ~st_target ~candidates ~monitored ~contexts:[ ctx ] ~committed)
        ~st_target ~committed
    in
    let lp_model = Ilp_model.model inst in
    match lp_status with
    | Simplex.Infeasible ->
      (* The residual budget cannot host this context at all. *)
      None
    | (Simplex.Unbounded | Simplex.Iteration_limit | Simplex.Deadline | Simplex.Fault _)
      as s ->
      (* No usable relaxation — not the same thing as infeasible.
         Record the downgrade and try the unguided packer, which needs
         no LP at all. *)
      note (lp_cut_reason s)
        (Format.asprintf "per-context LP relaxation unusable (%a); unguided rounding"
           Simplex.pp_status s);
      try_rounding (fun _ _ -> 0.0)
    | Simplex.Optimal sol -> (
      (* Guide the rounding pass with the fractional relaxation. *)
      let lp_value op pe =
        match Ilp_model.var inst ~ctx ~op ~pe with
        | Some v -> sol.Agingfp_lp.Simplex.values.(v)
        | None -> 0.0
      in
      match try_rounding lp_value with
      | Some mapping -> Some mapping
      | None when Ilp_model.num_binaries inst > 2400 ->
        (* On very large per-context models a failed attempt must stay
           cheap (Algorithm 1 simply relaxes ST_target by Δ and retries,
           and the refinement pass recovers leveling quality afterwards).
           With presolve + warm-started nodes the B&B fallback is cheap
           enough to double the eligibility threshold of the cold-solve
           era. *)
        None
      | None -> (
        match milp_params_for params ~budget machinery with
        | None -> None
        | Some milp_params -> (
          (* Branch & bound re-solves an LP per node; keep the
             per-context fallback budget small — Δ-relaxation plus
             refinement recover quality more cheaply than deep
             search. *)
          let fallback_params =
            { milp_params with Milp.node_limit = min milp_params.Milp.node_limit 24 }
          in
          let milp_result, milp_stats =
            Milp.relax_and_fix_with_stats ~params:fallback_params lp_model
          in
          stats_note ~milp:true milp_stats;
          if params.certify then
            note_certificate ~kind:`Milp (Certify.result lp_model milp_result);
          (match (milp_result, milp_stats.Milp.stop) with
          | Milp.Feasible _, _ | _, Budget.Optimal -> ()
          | _, reason -> note reason "per-context branch & bound cut short");
          match milp_result with
          | Milp.Feasible sol ->
            let mapping =
              Ilp_model.extract inst
                ~values:(fun v -> sol.Agingfp_lp.Simplex.values.(v))
                current
            in
            if not (paths_ok design mapping monitored ctx) then None
            else begin
              (* Commit the assigned stress. *)
              let dfg = Design.context design ctx in
              for op = 0 to Dfg.num_ops dfg - 1 do
                if not (Candidates.is_frozen candidates ~ctx ~op) then begin
                  let pe = Mapping.pe_of mapping ~ctx ~op in
                  committed.(pe) <- committed.(pe) +. Stress.op_stress design ~ctx ~op
                end
              done;
              Some mapping
            end
          | Milp.Infeasible | Milp.Unknown -> None)))
  end

(* ---------- whole-design attempt at one ST_target ---------- *)

let context_order design candidates =
  let order = Array.init (Design.num_contexts design) (fun i -> i) in
  let weight ctx =
    let dfg = Design.context design ctx in
    let acc = ref 0.0 in
    for op = 0 to Dfg.num_ops dfg - 1 do
      if not (Candidates.is_frozen candidates ~ctx ~op) then
        acc := !acc +. Stress.op_stress design ~ctx ~op
    done;
    !acc
  in
  let weights = Array.map weight order in
  Array.sort (fun a b -> Float.compare weights.(b) weights.(a)) order;
  order

let estimate_binaries design candidates =
  let total = ref 0 in
  for ctx = 0 to Design.num_contexts design - 1 do
    let dfg = Design.context design ctx in
    for op = 0 to Dfg.num_ops dfg - 1 do
      if not (Candidates.is_frozen candidates ~ctx ~op) then
        total := !total + List.length (Candidates.get candidates ~ctx ~op)
    done
  done;
  !total

let attempt ?cache ?(budget = Budget.unlimited) ?(machinery = Full_milp)
    ?(note = fun _ _ -> ()) ?(stats_note = fun ~milp:_ _ -> ()) params design baseline
    ~candidates ~monitored ~frozen ~st_target =
  let cache = match cache with Some c -> c | None -> new_cache () in
  let monolithic =
    match params.strategy with
    | Monolithic -> true
    | Per_context -> false
    | Auto -> estimate_binaries design candidates <= params.monolithic_var_limit
  in
  let committed = frozen_stress design frozen in
  let all_contexts = List.init (Design.num_contexts design) (fun i -> i) in
  let all_paths_ok mapping =
    List.for_all (fun ctx -> paths_ok design mapping monitored ctx) all_contexts
  in
  (* Sequential LP-guided rounding over every context; shared by both
     strategies as the fast integerization path. A failed context is
     promoted to the front and the pass retried — sequential packing
     order, not joint infeasibility, is the usual culprit. *)
  let round_pass lp_value order =
    let committed' = Array.copy committed in
    let arrays =
      Array.init (Design.num_contexts design) (fun c -> Mapping.context_array baseline c)
    in
    let failed = ref (-1) in
    Array.iter
      (fun ctx ->
        if !failed < 0 then
          if
            Budget.expired budget
            || not
                 (pack_context ~budget design ~candidates ~st_target ~committed:committed'
                    ~lp_value:(lp_value ctx) ctx arrays.(ctx))
          then failed := ctx)
      order;
    if !failed >= 0 then Error !failed
    else begin
      let mapping = Mapping.of_arrays arrays in
      if all_paths_ok mapping then Ok mapping else Error (-1)
    end
  in
  let round_all lp_value =
    let base_order = context_order design candidates in
    let rec retry order tries =
      match round_pass lp_value order with
      | Ok mapping -> Some mapping
      | Error failed ->
        if tries = 0 || failed < 0 || Budget.expired budget then None
        else begin
          let promoted =
            Array.of_list
              (failed :: List.filter (fun c -> c <> failed) (Array.to_list order))
          in
          retry promoted (tries - 1)
        end
    in
    retry base_order 2
  in
  if machinery = Heuristic then
    (* LP-free rung: pure best-fit-decreasing packing over every
       context — immune to any fault or budget pressure in the LP
       layer. *)
    round_all (fun _ _ _ -> 0.0)
  else if monolithic then (
    let inst, lp_status =
      cached_lp_solve ~certify:params.certify ~budget ~stats_note
        ~get:(fun () -> cache.mono)
        ~set:(fun entry -> cache.mono <- Some entry)
        ~build:(fun () ->
          Ilp_model.build ~encoding:params.encoding ~objective:params.objective design
            ~baseline ~st_target ~candidates ~monitored ~contexts:all_contexts ~committed)
        ~st_target ~committed
    in
    let lp_model = Ilp_model.model inst in
    match lp_status with
    | Simplex.Infeasible -> None
    | (Simplex.Unbounded | Simplex.Iteration_limit | Simplex.Deadline | Simplex.Fault _)
      as s ->
      (* Historically a silent fallback; the downgrade to unguided
         rounding is now logged and lands in the degradation trail. *)
      note (lp_cut_reason s)
        (Format.asprintf "monolithic LP relaxation unusable (%a); unguided rounding"
           Simplex.pp_status s);
      round_all (fun _ _ _ -> 0.0)
    | Simplex.Optimal sol -> (
      let lp_value ctx op pe =
        match Ilp_model.var inst ~ctx ~op ~pe with
        | Some v -> sol.Agingfp_lp.Simplex.values.(v)
        | None -> 0.0
      in
      match round_all lp_value with
      | Some mapping -> Some mapping
      | None -> (
        match milp_params_for params ~budget machinery with
        | None -> None
        | Some milp_params -> (
          let milp_result, milp_stats =
            Milp.relax_and_fix_with_stats ~params:milp_params lp_model
          in
          stats_note ~milp:true milp_stats;
          if params.certify then
            note_certificate ~kind:`Milp (Certify.result lp_model milp_result);
          (match (milp_result, milp_stats.Milp.stop) with
          | Milp.Feasible _, _ | _, Budget.Optimal -> ()
          | _, reason -> note reason "monolithic branch & bound cut short");
          match milp_result with
          | Milp.Feasible sol ->
            let mapping =
              Ilp_model.extract inst
                ~values:(fun v -> sol.Agingfp_lp.Simplex.values.(v))
                baseline
            in
            if all_paths_ok mapping then Some mapping else None
          | Milp.Infeasible | Milp.Unknown -> None))))
  else begin
    let pass order =
      let committed' = Array.copy committed in
      let current = ref baseline in
      let failed = ref (-1) in
      Array.iter
        (fun ctx ->
          if !failed < 0 then begin
            if Budget.expired budget then failed := ctx
            else
              match
                solve_context params design baseline ~candidates ~monitored ~st_target
                  ~committed:committed' ~cache ~budget ~machinery ~note ~stats_note ctx
                  !current
              with
              | Some mapping -> current := mapping
              | None -> failed := ctx
          end)
        order;
      if !failed < 0 then Ok !current else Error !failed
    in
    (* Parallel variant: solve every context speculatively against the
       phase-start committed loads (each task owns a fresh cache,
       committed copy and note collector — nothing warm crosses a
       domain), then commit sequentially in pass order, re-validating
       each speculative assignment against the stress actually
       committed by earlier contexts. Path budgets need no re-check:
       a context's monitored paths depend only on its own assignment.
       A speculative result that no longer fits falls back to the
       ordinary sequential solve for that context, so the parallel
       pass is never less capable than the sequential one. *)
    let jobs = max 1 params.jobs in
    let pass_parallel order =
      let n_ctx = Array.length order in
      let pool = Pool.get jobs in
      (* Wave arithmetic must use the pool's effective size — [get]
         clamps oversubscribed requests to the core count. *)
      let eff = Pool.size pool in
      let waves = max 1 ((n_ctx + eff - 1) / eff) in
      (* Per-task budget slice: with [eff] domains the batch runs in
         about [waves] sequential waves, so each task may fairly spend
         that fraction of the remaining time. *)
      let task_budget =
        if Budget.is_unlimited budget then budget
        else Budget.slice budget ~fraction:(1.0 /. float_of_int waves)
      in
      let speculative =
        Pool.map_budgeted pool ~budget
          (fun ctx ->
            let notes = ref [] in
            let note_local reason detail = notes := (reason, detail) :: !notes in
            let stats = ref [] in
            let stats_local ~milp s = stats := (milp, s) :: !stats in
            let committed_spec = Array.copy committed in
            let cache_spec = new_cache () in
            let r =
              solve_context params design baseline ~candidates ~monitored ~st_target
                ~committed:committed_spec ~cache:cache_spec ~budget:task_budget
                ~machinery ~note:note_local ~stats_note:stats_local ctx baseline
            in
            ( Option.map (fun m -> Mapping.context_array m ctx) r,
              List.rev !notes,
              List.rev !stats ))
          order
      in
      (* Solver-work accounting is unconditional — every speculative
         task burned its nodes and pivots whether or not its result is
         committed below — so the stats replay covers all completed
         tasks up front; the qualitative [note]s replay only for
         contexts the commit loop actually reaches. *)
      Array.iter
        (function
          | Some (_, _, stats) -> List.iter (fun (m, s) -> stats_note ~milp:m s) stats
          | None -> ())
        speculative;
      let committed' = Array.copy committed in
      let current = ref baseline in
      let failed = ref (-1) in
      Array.iteri
        (fun i ctx ->
          if !failed < 0 then begin
            if Budget.expired budget then failed := ctx
            else begin
              let fallback () =
                match
                  solve_context params design baseline ~candidates ~monitored ~st_target
                    ~committed:committed' ~cache ~budget ~machinery ~note ~stats_note ctx
                    !current
                with
                | Some mapping -> current := mapping
                | None -> failed := ctx
              in
              match speculative.(i) with
              | None -> fallback ()
              | Some (spec, notes, _) -> (
                List.iter (fun (r, d) -> note r d) notes;
                match spec with
                | None -> fallback ()
                | Some assignment ->
                  let dfg = Design.context design ctx in
                  let add = Array.make (Array.length committed') 0.0 in
                  for op = 0 to Dfg.num_ops dfg - 1 do
                    if not (Candidates.is_frozen candidates ~ctx ~op) then begin
                      let pe = assignment.(op) in
                      add.(pe) <- add.(pe) +. Stress.op_stress design ~ctx ~op
                    end
                  done;
                  let fits = ref true in
                  Array.iteri
                    (fun pe extra ->
                      if extra > 0.0 && committed'.(pe) +. extra > st_target +. 1e-9 then
                        fits := false)
                    add;
                  if not !fits then fallback ()
                  else begin
                    Array.iteri
                      (fun pe extra -> committed'.(pe) <- committed'.(pe) +. extra)
                      add;
                    let arrays =
                      Array.init (Design.num_contexts design) (fun c ->
                          if c = ctx then assignment else Mapping.context_array !current c)
                    in
                    current := Mapping.of_arrays arrays
                  end)
            end
          end)
        order;
      if !failed < 0 then Ok !current else Error !failed
    in
    let do_pass = if jobs > 1 then pass_parallel else pass in
    let rec retry order tries =
      match do_pass order with
      | Ok mapping -> Some mapping
      | Error failed ->
        if tries = 0 || Budget.expired budget then None
        else begin
          let promoted =
            Array.of_list
              (failed :: List.filter (fun c -> c <> failed) (Array.to_list order))
          in
          retry promoted (tries - 1)
        end
    in
    retry (context_order design candidates) 2
  end

(* ---------- Step 1: ST_target lower bound ---------- *)

let step1_lower_bound ?(params = default_params) ?(budget = Budget.unlimited) design
    baseline =
  let st_up = Stress.max_accumulated design baseline in
  let st_low = Stress.mean_accumulated design baseline in
  if st_up -. st_low < 1e-9 then st_up
  else begin
    let frozen = empty_plan design in
    let monitored = Array.make (Design.num_contexts design) [] in
    (* Step 1 is delay-unaware: every PE is a legal target, so the
       feasibility probe must not inherit the delay-driven candidate
       cap (capped, overlapping sets make high-utilization instances
       spuriously infeasible and collapse the bound to ST_up). *)
    let step1_cand_params =
      { params.candidate_params with Candidates.max_candidates = 0 }
    in
    let candidates =
      Candidates.build ~budget ~params:step1_cand_params design baseline ~frozen
        ~monitored
    in
    (* One warm-started solver cache across the whole bisection — only
       the stress-budget RHS moves between probes. *)
    let milp_relax_cache = new_cache () in
    let feasible st =
      match params.step1 with
      | Exact_matching ->
        (* Per context, "each unfrozen op gets a distinct PE within the
           residual budget" is a bipartite perfect-matching question —
           exact given the committed loads of earlier contexts. *)
        let npes = Fabric.num_pes (Design.fabric design) in
        let committed = Array.make npes 0.0 in
        let ok = ref true in
        for ctx = 0 to Design.num_contexts design - 1 do
          (* An expired probe claims infeasible: the bisection keeps its
             lo-infeasible/hi-feasible invariant and merely returns a
             looser (never wrong) bound. *)
          if !ok && Budget.expired budget then ok := false;
          if !ok then begin
            let dfg = Design.context design ctx in
            let n = Dfg.num_ops dfg in
            let g = Agingfp_util.Bipartite.create ~n_left:n ~n_right:npes in
            (* Prefer lightly-loaded PEs: adjacency in committed order. *)
            let pe_order = Array.init npes (fun i -> i) in
            Array.sort (fun a b -> Float.compare committed.(a) committed.(b)) pe_order;
            for op = 0 to n - 1 do
              let st_op = Stress.op_stress design ~ctx ~op in
              Array.iter
                (fun pe ->
                  if committed.(pe) +. st_op <= st +. 1e-9 then
                    Agingfp_util.Bipartite.add_edge g op pe)
                pe_order
            done;
            let m = Agingfp_util.Bipartite.solve g in
            if Agingfp_util.Bipartite.matching_size m < n then ok := false
            else
              Array.iteri
                (fun op pe ->
                  committed.(pe) <-
                    committed.(pe) +. Stress.op_stress design ~ctx ~op)
                m
          end
        done;
        !ok
      | Greedy_pack ->
        let committed = Array.make (Fabric.num_pes (Design.fabric design)) 0.0 in
        let ok = ref true in
        for ctx = 0 to Design.num_contexts design - 1 do
          if !ok then begin
            let dfg = Design.context design ctx in
            let assignment = Array.make (Dfg.num_ops dfg) (-1) in
            if
              not
                (pack_context ~budget design ~candidates ~st_target:st ~committed
                   ~lp_value:(fun _ _ -> 0.0) ctx assignment)
            then ok := false
          end
        done;
        !ok
      | Milp_relax ->
        attempt ~cache:milp_relax_cache ~budget
          { params with strategy = Auto }
          design baseline ~candidates ~monitored ~frozen ~st_target:st
        <> None
    in
    (* Invariant: lo infeasible, hi feasible. Stopping the bisection
       early (budget) keeps that invariant, so the bound returned is
       merely looser, never wrong. *)
    if feasible st_low then st_low
    else begin
      let lo = ref st_low and hi = ref st_up in
      for _ = 1 to params.bisect_iters do
        if not (Budget.expired budget) then begin
          let mid = 0.5 *. (!lo +. !hi) in
          if feasible mid then hi := mid else lo := mid
        end
      done;
      !hi
    end
  end

(* One-stop construction of the full Eq. (3) instance the flow would
   solve first, at the Step-1 ST_target lower bound — shared by the
   CLI's export-lp and lint commands. *)
let build_formulation ?(params = default_params) ~mode design baseline =
  let reference, frozen = Rotation.reference ~seed:params.seed mode design baseline in
  let monitored = Paths.monitored ~params:params.path_params design baseline in
  let candidates =
    Candidates.build ~params:params.candidate_params design reference ~frozen ~monitored
  in
  let committed = frozen_stress design frozen in
  (* Same budget floor as the main loop's first attempt: below the
     stress the frozen pins alone commit, the stress rows of their PEs
     are infeasible by bounds before the solver even starts. *)
  let lb = step1_lower_bound ~params design baseline in
  let st_target = max lb (Array.fold_left max 0.0 committed) in
  let inst =
    Ilp_model.build ~encoding:params.encoding ~objective:params.objective design
      ~baseline:reference ~st_target ~candidates ~monitored
      ~contexts:(List.init (Design.num_contexts design) (fun i -> i))
      ~committed
  in
  (inst, st_target)

(* ---------- Algorithm 1 main loop ---------- *)

(* Two stop reasons are "the same kind of downgrade" for trail
   deduplication — a 24-attempt Δ loop under a fault storm must not
   flood the trail with one entry per attempt. *)
let same_reason_class a b =
  match (a, b) with
  | Budget.Optimal, Budget.Optimal
  | Budget.Gap_limit, Budget.Gap_limit
  | Budget.Deadline, Budget.Deadline
  | Budget.Node_limit, Budget.Node_limit
  | Budget.Iteration_limit, Budget.Iteration_limit
  | Budget.Fault _, Budget.Fault _ -> true
  | _ -> false

let solve_with_plan ?cache params design baseline ~budget ~baseline_cpd ~st_up ~lb
    ~reference ~frozen =
  let monitored = Paths.monitored ~params:params.path_params design baseline in
  let candidates =
    Candidates.build ~budget ~params:params.candidate_params design reference ~frozen
      ~monitored
  in
  let floor_stress = Array.fold_left max 0.0 (frozen_stress design frozen) in
  let delta = max ((st_up -. lb) /. float_of_int params.delta_steps) (0.01 *. st_up +. 1e-9) in
  let start = max lb floor_stress in
  let trail = ref [] in
  (* Per-rung solver-work accounting and the bound/gap evidence of the
     branch & bound runs. Every LP relaxation and every B&B inside the
     ladder reports its stats delta here (parallel paths collect
     locally and replay on this domain), so per-rung sums match the
     process-wide {!Milp.cumulative} deltas of the ladder — Step 1 and
     concurrent unrelated solves excluded. [gap]/[dual_bound] only
     listen to real B&B runs ([milp:true]): a bare LP relaxation
     proves nothing about integer optimality. *)
  let milp_trail = ref [] in
  let gap_obs = ref nan in
  let dual_obs = ref nan in
  let observe_stats machinery ~milp s =
    (match !milp_trail with
    | (r, acc) :: rest when r = machinery ->
      milp_trail := (r, Milp.add_stats acc s) :: rest
    | rest -> milp_trail := (machinery, s) :: rest);
    if milp then begin
      if Float.is_finite s.Milp.gap then
        gap_obs :=
          (if Float.is_nan !gap_obs then s.Milp.gap else Float.max !gap_obs s.Milp.gap);
      if Float.is_finite s.Milp.dual_bound then dual_obs := s.Milp.dual_bound
    end
  in
  let note_step rung reason detail =
    if
      not
        (List.exists
           (fun (s : degradation_step) -> s.rung = rung && same_reason_class s.reason reason)
           !trail)
    then begin
      Log.warn (fun k ->
          k "%s: degradation [%a] %a — %s" (Design.name design) pp_rung rung
            Budget.pp_stop_reason reason detail);
      trail := !trail @ [ { rung; reason; detail } ]
    end
  in
  (* Δ-relaxation attempts differ only in ST_target, i.e. in the
     stress-budget RHS: one cache serves the entire ladder warm. After
     an injected fault the cached simplex states are suspect and the
     cache is dropped wholesale. A caller-provided ref (from a {!warm}
     value) additionally carries the assembled states across whole
     solves; the poisoning reset then propagates to the holder. *)
  let cache = match cache with Some c -> c | None -> ref (new_cache ()) in
  (* One ladder rung: the Δ-relaxation loop restricted to [machinery],
     bounded by [rbudget]. [Error Budget.Optimal] means the loop ran
     to natural exhaustion — weaker LP-based machinery cannot do
     better, so the ladder jumps to the LP-free rung. Any other
     [Error] is a budget/fault cut that the next (cheaper) rung may
     survive. *)
  let run_rung machinery rbudget =
    let note reason detail = note_step machinery reason detail in
    let jobs = max 1 params.jobs in
    (* Accept-or-relax check shared by both ladder shapes: a candidate
       floorplan wins only if it validates and keeps the CPD. *)
    let acceptable mapping =
      match Mapping.validate design mapping with
      | Error msg ->
        (* A solver bug must not end the search; relax and retry. *)
        Log.err (fun k -> k "invalid remapped floorplan: %s" msg);
        None
      | Ok () ->
        let new_cpd = Analysis.cpd design mapping in
        if new_cpd <= baseline_cpd +. 1e-9 then Some new_cpd
        else begin
          Log.debug (fun k ->
              k "CPD check failed (%.3f > %.3f); relaxing ST_target" new_cpd baseline_cpd);
          None
        end
    in
    let rec loop st iter =
      if iter > params.max_outer then Error Budget.Optimal
      else if Budget.expired rbudget then Error (Budget.status rbudget)
      else if jobs > 1 then begin
        (* Δ-window fan-out: the next [window] ST_target attempts are
           independent by construction (each is a fresh build at its
           own ST), so evaluate them concurrently and keep the
           lowest-ST acceptable floorplan — the same floorplan the
           sequential ladder would have accepted first. Each task gets
           a fresh cache (warm simplex states are domain-local) and a
           local note collector replayed in ST order afterwards. *)
        (* Speculative ST attempts beyond the pool's effective
           parallelism only burn budget serially; size the window to
           what actually runs concurrently. *)
        let window =
          min (Pool.effective_jobs jobs) (params.max_outer - iter + 1)
        in
        let sts = Array.init window (fun i -> st +. (float_of_int i *. delta)) in
        Log.debug (fun k ->
            k "%s: [%a] attempts %d..%d with ST_target %.3f..%.3f (up %.3f)"
              (Design.name design) pp_rung machinery iter
              (iter + window - 1)
              sts.(0)
              sts.(window - 1)
              st_up);
        let pool = Pool.get jobs in
        let outcomes =
          Pool.map_budgeted pool ~budget:rbudget
            (fun st_i ->
              let notes = ref [] in
              let cut = ref Budget.Optimal in
              let note_cut reason detail =
                cut := Budget.worst !cut reason;
                notes := (reason, detail) :: !notes
              in
              let stats = ref [] in
              let stats_local ~milp s = stats := (milp, s) :: !stats in
              let r =
                attempt ~cache:(new_cache ()) ~budget:rbudget ~machinery ~note:note_cut
                  ~stats_note:stats_local params design reference ~candidates ~monitored
                  ~frozen ~st_target:st_i
              in
              (r, !cut, List.rev !notes, List.rev !stats))
            sts
        in
        Array.iter
          (function
            | None -> ()
            | Some (_, _, notes, stats) ->
              List.iter (fun (m, s) -> observe_stats machinery ~milp:m s) stats;
              List.iter (fun (r, d) -> note r d) notes)
          outcomes;
        let rec pick i =
          if i >= window then None
          else
            match outcomes.(i) with
            | Some (Some mapping, _, _, _) -> (
              match acceptable mapping with
              | Some new_cpd -> Some (mapping, sts.(i), iter + i, new_cpd)
              | None -> pick (i + 1))
            | _ -> pick (i + 1)
        in
        match pick 0 with
        | Some success -> Ok success
        | None -> (
          let fault =
            Array.fold_left
              (fun acc o ->
                match (acc, o) with
                | None, Some (_, (Budget.Fault _ as f), _, _) -> Some f
                | acc, _ -> acc)
              None outcomes
          in
          match fault with
          | Some f ->
            (* The machinery of this rung is actively misbehaving;
               descending beats hammering it for max_outer attempts. *)
            Error f
          | None -> loop (st +. (float_of_int window *. delta)) (iter + window))
      end
      else begin
        Log.debug (fun k ->
            k "%s: [%a] attempt %d with ST_target = %.3f (up %.3f)" (Design.name design)
              pp_rung machinery iter st st_up);
        let cut = ref Budget.Optimal in
        let note_cut reason detail =
          cut := Budget.worst !cut reason;
          note reason detail
        in
        match
          attempt ~cache:!cache ~budget:rbudget ~machinery ~note:note_cut
            ~stats_note:(observe_stats machinery) params design reference ~candidates
            ~monitored ~frozen ~st_target:st
        with
        | Some mapping -> (
          match acceptable mapping with
          | Some new_cpd -> Ok (mapping, st, iter, new_cpd)
          | None -> loop (st +. delta) (iter + 1))
        | None -> (
          match !cut with
          | Budget.Fault _ as f ->
            (* The machinery of this rung is actively misbehaving;
               descending beats hammering it for max_outer attempts. *)
            Error f
          | _ -> loop (st +. delta) (iter + 1))
      end
    in
    try loop start 1
    with Faults.Injected where ->
      (* The exception may have unwound through a half-pivoted simplex
         state; nothing in the cache can be trusted warm any more. *)
      cache := new_cache ();
      Error (Budget.Fault where)
  in
  (* Refine + audit a rung's floorplan. A floorplan that fails its
     audit is discarded and the ladder descends — the contract is
     audited-or-baseline, never an unaudited "success". *)
  let finish rung (mapping, st, iters, new_cpd) =
    let mapping, new_cpd =
      if not params.refine || Budget.expired budget then (mapping, new_cpd)
      else begin
        (* Greedy post-pass: shave the hotspot further under the same
           timing guards. Never worse than the MILP floorplan. Runs
           under the whole solve's budget: a rung that succeeds just
           before the deadline gets a correspondingly short pass. *)
        let refined, stats =
          Refine.improve ~params:params.refine_params ~budget design ~baseline_cpd
            ~frozen ~monitored mapping
        in
        if stats.Refine.moves_accepted = 0 then (mapping, new_cpd)
        else (refined, Analysis.cpd design refined)
      end
    in
    let audit = Audit.run design ~baseline_cpd ~st_target:st ~frozen ~monitored mapping in
    if Audit.ok audit then
      Some
        {
          mapping;
          st_target = st;
          st_lower_bound = lb;
          st_up;
          outer_iterations = iters;
          baseline_cpd_ns = baseline_cpd;
          new_cpd_ns = new_cpd;
          improved = true;
          audit;
          rung;
          degradation = !trail;
          gap = !gap_obs;
          dual_bound = !dual_obs;
          rung_stats = List.rev !milp_trail;
        }
    else begin
      Log.err (fun k -> k "%s: %a" (Design.name design) Audit.pp audit);
      note_step rung (Budget.Fault "audit rejected floorplan")
        "independent audit rejected the rung's floorplan";
      None
    end
  in
  let rec descend = function
    | [] -> None
    | machinery :: rest -> (
      let rungs_left = List.length rest + 1 in
      let rbudget =
        if Budget.is_unlimited budget then budget
        else Budget.slice budget ~fraction:(1.0 /. float_of_int rungs_left)
      in
      match run_rung machinery rbudget with
      | Ok success -> (
        match finish machinery success with
        | Some result -> Some result
        | None -> descend rest)
      | Error Budget.Optimal ->
        note_step machinery Budget.Optimal
          "no delay-clean floorplan at any Δ-relaxed ST_target";
        (* Natural failure: every weaker LP-based rung solves a subset
           of this rung's search, so only the LP-free packer — immune
           to a systematically lying LP layer — is still worth a
           try. *)
        if machinery = Heuristic then None else descend [ Heuristic ]
      | Error reason ->
        note_step machinery reason "rung cut short; descending";
        descend rest)
  in
  match descend [ Full_milp; Relax_and_fix; Lp_rounding; Heuristic ] with
  | Some result -> result
  | None ->
    Log.warn (fun k ->
        k "%s: no delay-clean aging-aware floorplan found; keeping baseline"
          (Design.name design));
    (* The baseline carries no pins (in Rotate mode its ops do not sit
       at the re-oriented positions) and its budget is ST_up, so its
       audit holds by construction — the ladder's floor really is
       unconditional. A failed baseline audit is a pipeline bug; it is
       reported loudly and carried in the result for the CLI/tests to
       act on. *)
    let audit =
      Audit.run design ~baseline_cpd ~st_target:st_up ~frozen:(empty_plan design)
        ~monitored baseline
    in
    if not (Audit.ok audit) then
      Log.err (fun k -> k "%s: %a" (Design.name design) Audit.pp audit);
    {
      mapping = baseline;
      st_target = st_up;
      st_lower_bound = lb;
      st_up;
      outer_iterations = params.max_outer;
      baseline_cpd_ns = baseline_cpd;
      new_cpd_ns = baseline_cpd;
      improved = false;
      audit;
      rung = Baseline;
      degradation = !trail;
      gap = !gap_obs;
      dual_bound = !dual_obs;
      rung_stats = List.rev !milp_trail;
    }

let run_mode ?warm params design baseline ~budget ~baseline_cpd ~st_up ~lb m =
  (* The reference floorplan: the baseline itself (Freeze), or each
     context rigidly re-oriented (Rotate) — identical path delays
     either way. All candidate/displacement geometry is relative to
     the reference; CPD acceptance is always against the baseline. *)
  let reference, frozen = Rotation.reference ~seed:params.seed m design baseline in
  let cache =
    Option.map
      (fun w ->
        match m with
        | Rotation.Freeze -> w.freeze_cache
        | Rotation.Rotate -> w.rotate_cache)
      warm
  in
  solve_with_plan ?cache params design baseline ~budget ~baseline_cpd ~st_up ~lb
    ~reference ~frozen

let budget_of_params params =
  match params.deadline_s with
  | None -> Budget.unlimited
  | Some d ->
    (* Reserve an epilogue margin for the mandatory final audit and
       result assembly, which run after the last budget poll: the
       working deadline is shaved by 5% (capped at 50 ms, floored at
       2 ms) so the wall-clock the caller observes stays within the
       deadline it asked for — smoke-lp recorded p99 at 0.5006 s
       against 0.500 s without this. *)
    let margin = Float.max 0.002 (Float.min (0.05 *. d) 0.05) in
    Budget.create ~deadline_s:(Float.max (d /. 2.0) (d -. margin)) ()

(* Fraction of the overall deadline granted to the Step-1 bisection;
   the ladder gets whatever it leaves. *)
let step1_fraction = 0.15

let solve_both ?warm ?(params = default_params) design baseline =
  (match Mapping.validate design baseline with
  | Ok () -> ()
  | Error msg -> Invariant.invalid ~where:"Remap.solve_both" "invalid baseline: %s" msg);
  let budget = budget_of_params params in
  let baseline_cpd = Analysis.cpd design baseline in
  let st_up = Stress.max_accumulated design baseline in
  let lb =
    step1_lower_bound ~params
      ~budget:(Budget.slice budget ~fraction:step1_fraction)
      design baseline
  in
  let frozen_res =
    run_mode ?warm params design baseline
      ~budget:(Budget.slice budget ~fraction:0.5)
      ~baseline_cpd ~st_up ~lb Rotation.Freeze
  in
  let rotated =
    run_mode ?warm params design baseline ~budget ~baseline_cpd ~st_up ~lb
      Rotation.Rotate
  in
  (* The complete method: rotation widens the search space, but a
     particular re-orientation can still lose to the identity
     orientation; keep whichever floorplan levels stress further
     (Table I's Rotate column is never worse than Freeze). *)
  let score r = Stress.max_accumulated design r.mapping in
  let rotate_best =
    if score rotated <= score frozen_res +. 1e-9 then rotated else frozen_res
  in
  (frozen_res, rotate_best)

let solve ?warm ?(params = default_params) ~mode design baseline =
  match mode with
  | Rotation.Freeze ->
    (match Mapping.validate design baseline with
    | Ok () -> ()
    | Error msg -> Invariant.invalid ~where:"Remap.solve" "invalid baseline: %s" msg);
    let budget = budget_of_params params in
    let baseline_cpd = Analysis.cpd design baseline in
    let st_up = Stress.max_accumulated design baseline in
    let lb =
      step1_lower_bound ~params
        ~budget:(Budget.slice budget ~fraction:step1_fraction)
        design baseline
    in
    run_mode ?warm params design baseline ~budget ~baseline_cpd ~st_up ~lb
      Rotation.Freeze
  | Rotation.Rotate -> snd (solve_both ?warm ~params design baseline)
