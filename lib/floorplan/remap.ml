open Agingfp_cgrra
module Analysis = Agingfp_timing.Analysis
module Milp = Agingfp_lp.Milp
module Simplex = Agingfp_lp.Simplex
module Analyze = Agingfp_lp.Analyze
module Certify = Agingfp_lp.Certify

let src = Logs.Src.create "agingfp.remap" ~doc:"Aging-aware remapping"

module Log = (val Logs.src_log src : Logs.LOG)

type strategy = Monolithic | Per_context | Auto

type step1_method = Greedy_pack | Exact_matching | Milp_relax

type params = {
  seed : int;
  encoding : Ilp_model.encoding;
  objective : Ilp_model.objective;
  strategy : strategy;
  step1 : step1_method;
  candidate_params : Candidates.params;
  path_params : Paths.params;
  milp : Milp.params;
  bisect_iters : int;
  delta_steps : int;
  max_outer : int;
  monolithic_var_limit : int;
  refine : bool;
  refine_params : Refine.params;
  certify : bool;
}

let default_params =
  {
    seed = 20200310;
    encoding = Ilp_model.Hybrid;
    objective = Ilp_model.Min_displacement;
    strategy = Auto;
    step1 = Greedy_pack;
    candidate_params = Candidates.default_params;
    path_params = Paths.default_params;
    milp = { Milp.default_params with node_limit = 120 };
    bisect_iters = 8;
    delta_steps = 16;
    max_outer = 24;
    monolithic_var_limit = 1200;
    refine = true;
    refine_params = Refine.default_params;
    certify = false;
  }

type result = {
  mapping : Mapping.t;
  st_target : float;
  st_lower_bound : float;
  st_up : float;
  outer_iterations : int;
  baseline_cpd_ns : float;
  new_cpd_ns : float;
  improved : bool;
  audit : Audit.report;
}

(* ---------- solution certification (Lp.Certify) ---------- *)

type certification_stats = {
  lp_checked : int;
  milp_checked : int;
  rejected : int;
  failures : string list;
}

let no_certification =
  { lp_checked = 0; milp_checked = 0; rejected = 0; failures = [] }

let cert = ref no_certification

let reset_certification () = cert := no_certification
let certification () = !cert

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let note_certificate ~kind verdict =
  let c = !cert in
  let c =
    match kind with
    | `Lp -> { c with lp_checked = c.lp_checked + 1 }
    | `Milp -> { c with milp_checked = c.milp_checked + 1 }
  in
  match verdict with
  | Certify.Certified | Certify.Unsupported _ -> cert := c
  | Certify.Rejected msgs ->
    let failure = String.concat "; " msgs in
    Log.err (fun k -> k "solution certificate rejected: %s" failure);
    cert :=
      { c with rejected = c.rejected + 1; failures = take 8 (failure :: c.failures) }

let empty_plan design : Rotation.plan = Array.make (Design.num_contexts design) []

let frozen_stress design (plan : Rotation.plan) =
  let acc = Array.make (Fabric.num_pes (Design.fabric design)) 0.0 in
  Array.iteri
    (fun ctx pins ->
      List.iter
        (fun (op, pe) -> acc.(pe) <- acc.(pe) +. Stress.op_stress design ~ctx ~op)
        pins)
    plan;
  acc

(* ---------- greedy feasibility probe / structured rounding ---------- *)

(* Best-fit-decreasing packing of the unfrozen ops of [ctx] under the
   residual budgets, optionally guided by LP values. Mutates
   [committed] and [assignment] on success only. *)
let pack_context design ~candidates ~st_target ~committed ~lp_value ctx assignment =
  let dfg = Design.context design ctx in
  let n = Dfg.num_ops dfg in
  let npes = Array.length committed in
  (* Working copy of the residual budgets; committed is only updated
     on success. occupant maps PE -> op (-1 free, -2 frozen pin). *)
  let resid = Array.copy committed in
  let occupant = Array.make npes (-1) in
  for op = 0 to n - 1 do
    if Candidates.is_frozen candidates ~ctx ~op then
      occupant.(List.hd (Candidates.get candidates ~ctx ~op)) <- -2
  done;
  let order = Array.init n (fun i -> i) in
  let stress op = Stress.op_stress design ~ctx ~op in
  Array.sort (fun a b -> Float.compare (stress b) (stress a)) order;
  let local = Array.make n (-1) in
  let fits op pe = resid.(pe) +. stress op <= st_target +. 1e-9 in
  let place op pe =
    local.(op) <- pe;
    occupant.(pe) <- op;
    resid.(pe) <- resid.(pe) +. stress op
  in
  let unplace op pe =
    local.(op) <- -1;
    occupant.(pe) <- -1;
    resid.(pe) <- resid.(pe) -. stress op
  in
  let try_direct op =
    let best = ref (-1) in
    let best_key = ref (neg_infinity, neg_infinity) in
    List.iter
      (fun pe ->
        if occupant.(pe) = -1 && fits op pe then begin
          (* Prefer high LP value, then low residual load. *)
          let key = (lp_value op pe, -.resid.(pe)) in
          if compare key !best_key > 0 then begin
            best := pe;
            best_key := key
          end
        end)
      (Candidates.get candidates ~ctx ~op);
    if !best < 0 then false
    else begin
      place op !best;
      true
    end
  in
  (* One-level ejection chain: free one of [op]'s candidate PEs by
     relocating its (lighter, non-frozen) occupant to another of that
     occupant's own candidates. Essential at high fabric utilization,
     where the stress-aware candidate sets overlap heavily. *)
  let try_eject op =
    let rec scan = function
      | [] -> false
      | pe :: rest ->
        let victim = occupant.(pe) in
        if victim < 0 then scan rest
        else begin
          unplace victim pe;
          (* Reserve the freed PE so the victim cannot re-take it. *)
          occupant.(pe) <- -3;
          if not (fits op pe) then begin
            occupant.(pe) <- -1;
            place victim pe;
            scan rest
          end
          else if try_direct victim then begin
            occupant.(pe) <- -1;
            place op pe;
            true
          end
          else begin
            occupant.(pe) <- -1;
            place victim pe;
            scan rest
          end
        end
    in
    scan (Candidates.get candidates ~ctx ~op)
  in
  let ok = ref true in
  Array.iter
    (fun op ->
      if !ok && not (Candidates.is_frozen candidates ~ctx ~op) then
        if not (try_direct op || try_eject op) then ok := false)
    order;
  if not !ok then false
  else begin
    for op = 0 to n - 1 do
      if Candidates.is_frozen candidates ~ctx ~op then
        assignment.(op) <- List.hd (Candidates.get candidates ~ctx ~op)
      else assignment.(op) <- local.(op)
    done;
    for op = 0 to n - 1 do
      if not (Candidates.is_frozen candidates ~ctx ~op) then
        committed.(assignment.(op)) <- committed.(assignment.(op)) +. stress op
    done;
    true
  end

(* ---------- warm-started solver cache ---------- *)

(* ST_target and the committed loads only enter formulation (3)
   through the stress-budget RHS, so across Algorithm 1's Δ-relaxation
   attempts (and the ST_target bisection of Step 1's Milp_relax probe)
   each instance is built and assembled once; later attempts rebudget
   the rows in place and warm-restart the simplex from the previous
   basis. *)
type solver_cache = {
  mutable mono : (Ilp_model.instance * Simplex.state) option;
  per_ctx : (int, Ilp_model.instance * Simplex.state) Hashtbl.t;
}

let new_cache () = { mono = None; per_ctx = Hashtbl.create 8 }

(* In debug builds every freshly built Eq. (3) instance is linted
   before its first solve; errors surface loudly, advisory findings go
   to the debug log. *)
let lint_instance inst =
  match Logs.Src.level src with
  | Some Logs.Debug ->
    List.iter
      (fun (d : Analyze.diagnostic) ->
        match d.Analyze.severity with
        | Analyze.Error -> Log.err (fun k -> k "lint: %a" Analyze.pp_diagnostic d)
        | Analyze.Warning | Analyze.Info ->
          Log.debug (fun k -> k "lint: %a" Analyze.pp_diagnostic d))
      (Analyze.lint (Ilp_model.model inst))
  | _ -> ()

(* Rebudget a cached instance + state and re-solve its LP relaxation
   warm; on a cache miss, [build] makes the instance and the first
   solve runs cold. Feeds the global Milp counters either way. When
   [certify] is set, any optimal point is re-verified in exact
   arithmetic against the (rebudgeted) model before it is trusted. *)
let cached_lp_solve ~certify ~get ~set ~build ~st_target ~committed =
  let inst, st, fresh =
    match get () with
    | Some (inst, st) ->
      Ilp_model.set_st_target inst ~st_target ~committed;
      List.iter
        (fun (pe, row) -> Simplex.set_rhs st row (st_target -. committed.(pe)))
        (Ilp_model.stress_budget_rows inst);
      (inst, st, false)
    | None ->
      let inst = build () in
      lint_instance inst;
      let st = Simplex.assemble (Ilp_model.model inst) in
      set (inst, st);
      (inst, st, true)
  in
  let s0 = Simplex.state_stats st in
  let status = if fresh then Simplex.solve_state st else Simplex.reoptimize st in
  let s1 = Simplex.state_stats st in
  Milp.note_lp_solve
    ~warm:(s1.Simplex.warm_solves > s0.Simplex.warm_solves)
    ~iterations:(s1.Simplex.lp_iterations - s0.Simplex.lp_iterations);
  (match status with
  | Simplex.Optimal sol when certify ->
    (* [set_st_target] keeps the instance's model current, so the
       relaxation (integrality waived) is checked against exactly the
       constraints the solver claims to have satisfied. *)
    note_certificate ~kind:`Lp
      (Certify.solution ~relaxation:true (Ilp_model.model inst) sol)
  | _ -> ());
  (inst, status)

(* Exact wire-length check of the monitored paths for one context. *)
let paths_ok design mapping monitored ctx =
  List.for_all
    (fun (b : Paths.budgeted) ->
      Analysis.wire_length design mapping b.Paths.path <= b.Paths.wire_budget)
    monitored.(ctx)

(* ---------- per-context MILP solve ---------- *)

let solve_context params design baseline ~candidates ~monitored ~st_target ~committed
    ~cache ctx current =
  (* Fast path: LP relaxation + structured rounding; fall back to the
     paper's two-step MILP when rounding misses or breaks a path
     budget. *)
  let inst, lp_status =
    cached_lp_solve ~certify:params.certify
      ~get:(fun () -> Hashtbl.find_opt cache.per_ctx ctx)
      ~set:(fun entry -> Hashtbl.replace cache.per_ctx ctx entry)
      ~build:(fun () ->
        Ilp_model.build ~encoding:params.encoding ~objective:params.objective design
          ~baseline ~st_target ~candidates ~monitored ~contexts:[ ctx ] ~committed)
      ~st_target ~committed
  in
  let lp_model = Ilp_model.model inst in
  let try_rounding lp_value =
    let committed' = Array.copy committed in
    let dfg = Design.context design ctx in
    let assignment = Array.make (Dfg.num_ops dfg) (-1) in
    if pack_context design ~candidates ~st_target ~committed:committed' ~lp_value ctx
         assignment
    then begin
      let arrays =
        Array.init (Design.num_contexts design) (fun c ->
            if c = ctx then assignment else Mapping.context_array current c)
      in
      let mapping = Mapping.of_arrays arrays in
      if paths_ok design mapping monitored ctx then begin
        Array.blit committed' 0 committed 0 (Array.length committed);
        Some mapping
      end
      else None
    end
    else None
  in
  match lp_status with
  | Agingfp_lp.Simplex.Infeasible
  | Agingfp_lp.Simplex.Unbounded
  | Agingfp_lp.Simplex.Iteration_limit ->
    (* The residual budget cannot host this context at all. *)
    None
  | Agingfp_lp.Simplex.Optimal sol -> (
    (* Guide the rounding pass with the fractional relaxation. *)
    let lp_value op pe =
      match Ilp_model.var inst ~ctx ~op ~pe with
      | Some v -> sol.Agingfp_lp.Simplex.values.(v)
      | None -> 0.0
    in
    match try_rounding lp_value with
    | Some mapping -> Some mapping
    | None when Ilp_model.num_binaries inst > 2400 ->
      (* On very large per-context models a failed attempt must stay
         cheap (Algorithm 1 simply relaxes ST_target by Δ and retries,
         and the refinement pass recovers leveling quality afterwards).
         With presolve + warm-started nodes the B&B fallback is cheap
         enough to double the eligibility threshold of the cold-solve
         era. *)
      None
    | None -> (
    (* Branch & bound re-solves an LP per node; keep the per-context
       fallback budget small — Δ-relaxation plus refinement recover
       quality more cheaply than deep search. *)
    let fallback_params =
      { params.milp with Milp.node_limit = min params.milp.Milp.node_limit 24 }
    in
    let milp_result = Milp.relax_and_fix ~params:fallback_params lp_model in
    if params.certify then
      note_certificate ~kind:`Milp (Certify.result lp_model milp_result);
    match milp_result with
    | Milp.Feasible sol ->
      let mapping =
        Ilp_model.extract inst ~values:(fun v -> sol.Agingfp_lp.Simplex.values.(v)) current
      in
      if not (paths_ok design mapping monitored ctx) then None
      else begin
        (* Commit the assigned stress. *)
        let dfg = Design.context design ctx in
        for op = 0 to Dfg.num_ops dfg - 1 do
          if not (Candidates.is_frozen candidates ~ctx ~op) then begin
            let pe = Mapping.pe_of mapping ~ctx ~op in
            committed.(pe) <- committed.(pe) +. Stress.op_stress design ~ctx ~op
          end
        done;
        Some mapping
      end
    | Milp.Infeasible | Milp.Unknown -> None))

(* ---------- whole-design attempt at one ST_target ---------- *)

let context_order design candidates =
  let order = Array.init (Design.num_contexts design) (fun i -> i) in
  let weight ctx =
    let dfg = Design.context design ctx in
    let acc = ref 0.0 in
    for op = 0 to Dfg.num_ops dfg - 1 do
      if not (Candidates.is_frozen candidates ~ctx ~op) then
        acc := !acc +. Stress.op_stress design ~ctx ~op
    done;
    !acc
  in
  let weights = Array.map weight order in
  Array.sort (fun a b -> Float.compare weights.(b) weights.(a)) order;
  order

let estimate_binaries design candidates =
  let total = ref 0 in
  for ctx = 0 to Design.num_contexts design - 1 do
    let dfg = Design.context design ctx in
    for op = 0 to Dfg.num_ops dfg - 1 do
      if not (Candidates.is_frozen candidates ~ctx ~op) then
        total := !total + List.length (Candidates.get candidates ~ctx ~op)
    done
  done;
  !total

let attempt ?cache params design baseline ~candidates ~monitored ~frozen ~st_target =
  let cache = match cache with Some c -> c | None -> new_cache () in
  let monolithic =
    match params.strategy with
    | Monolithic -> true
    | Per_context -> false
    | Auto -> estimate_binaries design candidates <= params.monolithic_var_limit
  in
  let committed = frozen_stress design frozen in
  let all_contexts = List.init (Design.num_contexts design) (fun i -> i) in
  let all_paths_ok mapping =
    List.for_all (fun ctx -> paths_ok design mapping monitored ctx) all_contexts
  in
  (* Sequential LP-guided rounding over every context; shared by both
     strategies as the fast integerization path. A failed context is
     promoted to the front and the pass retried — sequential packing
     order, not joint infeasibility, is the usual culprit. *)
  let round_pass lp_value order =
    let committed' = Array.copy committed in
    let arrays =
      Array.init (Design.num_contexts design) (fun c -> Mapping.context_array baseline c)
    in
    let failed = ref (-1) in
    Array.iter
      (fun ctx ->
        if !failed < 0 then
          if
            not
              (pack_context design ~candidates ~st_target ~committed:committed'
                 ~lp_value:(lp_value ctx) ctx arrays.(ctx))
          then failed := ctx)
      order;
    if !failed >= 0 then Error !failed
    else begin
      let mapping = Mapping.of_arrays arrays in
      if all_paths_ok mapping then Ok mapping else Error (-1)
    end
  in
  let round_all lp_value =
    let base_order = context_order design candidates in
    let rec retry order tries =
      match round_pass lp_value order with
      | Ok mapping -> Some mapping
      | Error failed ->
        if tries = 0 || failed < 0 then None
        else begin
          let promoted =
            Array.of_list
              (failed :: List.filter (fun c -> c <> failed) (Array.to_list order))
          in
          retry promoted (tries - 1)
        end
    in
    retry base_order 2
  in
  if monolithic then (
    let inst, lp_status =
      cached_lp_solve ~certify:params.certify
        ~get:(fun () -> cache.mono)
        ~set:(fun entry -> cache.mono <- Some entry)
        ~build:(fun () ->
          Ilp_model.build ~encoding:params.encoding ~objective:params.objective design
            ~baseline ~st_target ~candidates ~monitored ~contexts:all_contexts ~committed)
        ~st_target ~committed
    in
    let lp_model = Ilp_model.model inst in
    match lp_status with
    | Agingfp_lp.Simplex.Infeasible -> None
    | Agingfp_lp.Simplex.Unbounded | Agingfp_lp.Simplex.Iteration_limit ->
      round_all (fun _ _ _ -> 0.0)
    | Agingfp_lp.Simplex.Optimal sol -> (
      let lp_value ctx op pe =
        match Ilp_model.var inst ~ctx ~op ~pe with
        | Some v -> sol.Agingfp_lp.Simplex.values.(v)
        | None -> 0.0
      in
      match round_all lp_value with
      | Some mapping -> Some mapping
      | None -> (
        let milp_result = Milp.relax_and_fix ~params:params.milp lp_model in
        if params.certify then
          note_certificate ~kind:`Milp (Certify.result lp_model milp_result);
        match milp_result with
        | Milp.Feasible sol ->
          let mapping =
            Ilp_model.extract inst
              ~values:(fun v -> sol.Agingfp_lp.Simplex.values.(v))
              baseline
          in
          if all_paths_ok mapping then Some mapping else None
        | Milp.Infeasible | Milp.Unknown -> None)))
  else begin
    let pass order =
      let committed' = Array.copy committed in
      let current = ref baseline in
      let failed = ref (-1) in
      Array.iter
        (fun ctx ->
          if !failed < 0 then begin
            match
              solve_context params design baseline ~candidates ~monitored ~st_target
                ~committed:committed' ~cache ctx !current
            with
            | Some mapping -> current := mapping
            | None -> failed := ctx
          end)
        order;
      if !failed < 0 then Ok !current else Error !failed
    in
    let rec retry order tries =
      match pass order with
      | Ok mapping -> Some mapping
      | Error failed ->
        if tries = 0 then None
        else begin
          let promoted =
            Array.of_list
              (failed :: List.filter (fun c -> c <> failed) (Array.to_list order))
          in
          retry promoted (tries - 1)
        end
    in
    retry (context_order design candidates) 2
  end

(* ---------- Step 1: ST_target lower bound ---------- *)

let step1_lower_bound ?(params = default_params) design baseline =
  let st_up = Stress.max_accumulated design baseline in
  let st_low = Stress.mean_accumulated design baseline in
  if st_up -. st_low < 1e-9 then st_up
  else begin
    let frozen = empty_plan design in
    let monitored = Array.make (Design.num_contexts design) [] in
    (* Step 1 is delay-unaware: every PE is a legal target, so the
       feasibility probe must not inherit the delay-driven candidate
       cap (capped, overlapping sets make high-utilization instances
       spuriously infeasible and collapse the bound to ST_up). *)
    let step1_cand_params =
      { params.candidate_params with Candidates.max_candidates = 0 }
    in
    let candidates =
      Candidates.build ~params:step1_cand_params design baseline ~frozen ~monitored
    in
    (* One warm-started solver cache across the whole bisection — only
       the stress-budget RHS moves between probes. *)
    let milp_relax_cache = new_cache () in
    let feasible st =
      match params.step1 with
      | Exact_matching ->
        (* Per context, "each unfrozen op gets a distinct PE within the
           residual budget" is a bipartite perfect-matching question —
           exact given the committed loads of earlier contexts. *)
        let npes = Fabric.num_pes (Design.fabric design) in
        let committed = Array.make npes 0.0 in
        let ok = ref true in
        for ctx = 0 to Design.num_contexts design - 1 do
          if !ok then begin
            let dfg = Design.context design ctx in
            let n = Dfg.num_ops dfg in
            let g = Agingfp_util.Bipartite.create ~n_left:n ~n_right:npes in
            (* Prefer lightly-loaded PEs: adjacency in committed order. *)
            let pe_order = Array.init npes (fun i -> i) in
            Array.sort (fun a b -> Float.compare committed.(a) committed.(b)) pe_order;
            for op = 0 to n - 1 do
              let st_op = Stress.op_stress design ~ctx ~op in
              Array.iter
                (fun pe ->
                  if committed.(pe) +. st_op <= st +. 1e-9 then
                    Agingfp_util.Bipartite.add_edge g op pe)
                pe_order
            done;
            let m = Agingfp_util.Bipartite.solve g in
            if Agingfp_util.Bipartite.matching_size m < n then ok := false
            else
              Array.iteri
                (fun op pe ->
                  committed.(pe) <-
                    committed.(pe) +. Stress.op_stress design ~ctx ~op)
                m
          end
        done;
        !ok
      | Greedy_pack ->
        let committed = Array.make (Fabric.num_pes (Design.fabric design)) 0.0 in
        let ok = ref true in
        for ctx = 0 to Design.num_contexts design - 1 do
          if !ok then begin
            let dfg = Design.context design ctx in
            let assignment = Array.make (Dfg.num_ops dfg) (-1) in
            if
              not
                (pack_context design ~candidates ~st_target:st ~committed
                   ~lp_value:(fun _ _ -> 0.0) ctx assignment)
            then ok := false
          end
        done;
        !ok
      | Milp_relax ->
        attempt ~cache:milp_relax_cache
          { params with strategy = Auto }
          design baseline ~candidates ~monitored ~frozen ~st_target:st
        <> None
    in
    (* Invariant: lo infeasible, hi feasible. *)
    if feasible st_low then st_low
    else begin
      let lo = ref st_low and hi = ref st_up in
      for _ = 1 to params.bisect_iters do
        let mid = 0.5 *. (!lo +. !hi) in
        if feasible mid then hi := mid else lo := mid
      done;
      !hi
    end
  end

(* One-stop construction of the full Eq. (3) instance the flow would
   solve first, at the Step-1 ST_target lower bound — shared by the
   CLI's export-lp and lint commands. *)
let build_formulation ?(params = default_params) ~mode design baseline =
  let reference, frozen = Rotation.reference ~seed:params.seed mode design baseline in
  let monitored = Paths.monitored ~params:params.path_params design baseline in
  let candidates =
    Candidates.build ~params:params.candidate_params design reference ~frozen ~monitored
  in
  let committed = frozen_stress design frozen in
  (* Same budget floor as the main loop's first attempt: below the
     stress the frozen pins alone commit, the stress rows of their PEs
     are infeasible by bounds before the solver even starts. *)
  let lb = step1_lower_bound ~params design baseline in
  let st_target = max lb (Array.fold_left max 0.0 committed) in
  let inst =
    Ilp_model.build ~encoding:params.encoding ~objective:params.objective design
      ~baseline:reference ~st_target ~candidates ~monitored
      ~contexts:(List.init (Design.num_contexts design) (fun i -> i))
      ~committed
  in
  (inst, st_target)

(* ---------- Algorithm 1 main loop ---------- *)

let solve_with_plan params design baseline ~baseline_cpd ~st_up ~lb ~reference ~frozen =
  let monitored = Paths.monitored ~params:params.path_params design baseline in
  let candidates =
    Candidates.build ~params:params.candidate_params design reference ~frozen ~monitored
  in
  let floor_stress = Array.fold_left max 0.0 (frozen_stress design frozen) in
  let delta = max ((st_up -. lb) /. float_of_int params.delta_steps) (0.01 *. st_up +. 1e-9) in
  let start = max lb floor_stress in
  (* Δ-relaxation attempts differ only in ST_target, i.e. in the
     stress-budget RHS: one cache serves the entire loop warm. *)
  let cache = new_cache () in
  let rec loop st iter =
    if iter > params.max_outer then None
    else begin
      Log.debug (fun k ->
          k "%s: attempt %d with ST_target = %.3f (up %.3f)" (Design.name design) iter st
            st_up);
      match
        attempt ~cache params design reference ~candidates ~monitored ~frozen ~st_target:st
      with
      | Some mapping -> (
        match Mapping.validate design mapping with
        | Error msg ->
          (* A solver bug must not end the search; relax and retry. *)
          Log.err (fun k -> k "invalid remapped floorplan: %s" msg);
          loop (st +. delta) (iter + 1)
        | Ok () ->
          let new_cpd = Analysis.cpd design mapping in
          if new_cpd <= baseline_cpd +. 1e-9 then Some (mapping, st, iter, new_cpd)
          else begin
            Log.debug (fun k ->
                k "CPD check failed (%.3f > %.3f); relaxing ST_target" new_cpd baseline_cpd);
            loop (st +. delta) (iter + 1)
          end)
      | None -> loop (st +. delta) (iter + 1)
    end
  in
  (* Every result — improved or baseline fallback — is audited against
     the paper's semantics without trusting the MILP layer. A failed
     audit is a pipeline bug; it is reported loudly and carried in the
     result for the CLI/tests to act on. *)
  let audited audit =
    if not (Audit.ok audit) then
      Log.err (fun k -> k "%s: %a" (Design.name design) Audit.pp audit);
    audit
  in
  match loop start 1 with
  | Some (mapping, st, iters, new_cpd) ->
    let mapping, new_cpd =
      if not params.refine then (mapping, new_cpd)
      else begin
        (* Greedy post-pass: shave the hotspot further under the same
           timing guards. Never worse than the MILP floorplan. *)
        let refined, stats =
          Refine.improve ~params:params.refine_params design ~baseline_cpd ~frozen
            ~monitored mapping
        in
        if stats.Refine.moves_accepted = 0 then (mapping, new_cpd)
        else (refined, Analysis.cpd design refined)
      end
    in
    let audit =
      audited
        (Audit.run design ~baseline_cpd ~st_target:st ~frozen ~monitored mapping)
    in
    {
      mapping;
      st_target = st;
      st_lower_bound = lb;
      st_up;
      outer_iterations = iters;
      baseline_cpd_ns = baseline_cpd;
      new_cpd_ns = new_cpd;
      improved = true;
      audit;
    }
  | None ->
    Log.warn (fun k ->
        k "%s: no delay-clean aging-aware floorplan found; keeping baseline"
          (Design.name design));
    (* The baseline carries no pins (in Rotate mode its ops do not sit
       at the re-oriented positions) and its budget is ST_up. *)
    let audit =
      audited
        (Audit.run design ~baseline_cpd ~st_target:st_up
           ~frozen:(empty_plan design) ~monitored baseline)
    in
    {
      mapping = baseline;
      st_target = st_up;
      st_lower_bound = lb;
      st_up;
      outer_iterations = params.max_outer;
      baseline_cpd_ns = baseline_cpd;
      new_cpd_ns = baseline_cpd;
      improved = false;
      audit;
    }

let run_mode params design baseline ~baseline_cpd ~st_up ~lb m =
  (* The reference floorplan: the baseline itself (Freeze), or each
     context rigidly re-oriented (Rotate) — identical path delays
     either way. All candidate/displacement geometry is relative to
     the reference; CPD acceptance is always against the baseline. *)
  let reference, frozen = Rotation.reference ~seed:params.seed m design baseline in
  solve_with_plan params design baseline ~baseline_cpd ~st_up ~lb ~reference ~frozen

let solve_both ?(params = default_params) design baseline =
  (match Mapping.validate design baseline with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Remap.solve_both: invalid baseline: " ^ msg));
  let baseline_cpd = Analysis.cpd design baseline in
  let st_up = Stress.max_accumulated design baseline in
  let lb = step1_lower_bound ~params design baseline in
  let frozen_res = run_mode params design baseline ~baseline_cpd ~st_up ~lb Rotation.Freeze in
  let rotated = run_mode params design baseline ~baseline_cpd ~st_up ~lb Rotation.Rotate in
  (* The complete method: rotation widens the search space, but a
     particular re-orientation can still lose to the identity
     orientation; keep whichever floorplan levels stress further
     (Table I's Rotate column is never worse than Freeze). *)
  let score r = Stress.max_accumulated design r.mapping in
  let rotate_best =
    if score rotated <= score frozen_res +. 1e-9 then rotated else frozen_res
  in
  (frozen_res, rotate_best)

let solve ?(params = default_params) ~mode design baseline =
  match mode with
  | Rotation.Freeze ->
    (match Mapping.validate design baseline with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Remap.solve: invalid baseline: " ^ msg));
    let baseline_cpd = Analysis.cpd design baseline in
    let st_up = Stress.max_accumulated design baseline in
    let lb = step1_lower_bound ~params design baseline in
    run_mode params design baseline ~baseline_cpd ~st_up ~lb Rotation.Freeze
  | Rotation.Rotate -> snd (solve_both ~params design baseline)
