(** Path delay constraint generation (Algorithm 1, step 2.2).

    Every monitored timing path receives a wire-length budget derived
    from Eq. (5):

    {v Σ wire_length(OP) <= (CPD - Σ PEdelay(OP)) / unit_wire_delay v}

    where CPD is the {e original} design critical path delay. The
    monitored set is the paper's default filter: paths whose baseline
    delay is within 20% of the CPD, found by best-first longest-path
    enumeration, capped per context. *)

open Agingfp_cgrra
module Analysis := Agingfp_timing.Analysis

type budgeted = {
  path : Analysis.path;
  wire_budget : int;
      (** max total Manhattan wire length allowed on this path *)
  baseline_wire : int;
      (** wire length under the baseline mapping; always <= budget *)
}

type params = {
  within : float;       (** monitor paths within this fraction of CPD *)
  max_paths : int;      (** cap per context *)
}

val default_params : params
(** within = 0.2, max_paths = 48. *)

val budget_of_path : Design.t -> Mapping.t -> cpd:float -> Analysis.path -> budgeted
(** Budget for one explicit path under the given original CPD. *)

val monitored : ?params:params -> Design.t -> Mapping.t -> budgeted list array
(** Per-context budgeted monitored paths of the baseline mapping. *)

val slack : budgeted -> int
(** [wire_budget - baseline_wire]: how much extra wire the path can
    absorb — 0 for critical paths. *)
