open Agingfp_cgrra
module Expr = Agingfp_lp.Expr
module Model = Agingfp_lp.Model
module Analysis = Agingfp_timing.Analysis

type encoding = Displacement | Exact_abs | Hybrid

type objective = Null | Min_displacement

type instance = {
  lp : Model.t;
  design : Design.t;
  contexts : int list;
  candidates : Candidates.t;
  frozen_pins : (int * int) list array;  (* ctx -> (op, pe) *)
  vars : (int * int * int, int) Hashtbl.t;  (* (ctx, op, pe) -> var *)
  nbin : int;
  stress_rows : (int * int) list;  (* (pe, row) of the stress-budget rows *)
}

let model t = t.lp

let var t ~ctx ~op ~pe = Hashtbl.find_opt t.vars (ctx, op, pe)

let num_binaries t = t.nbin
let num_rows t = Model.num_constraints t.lp

let stress_budget_rows t = t.stress_rows

(* ST_target and the committed loads enter the formulation only through
   the stress-budget right-hand sides, so Algorithm 1's Δ-relaxation
   loop can move the budget without rebuilding the instance. *)
let set_st_target t ~st_target ~committed =
  List.iter
    (fun (pe, row) -> Model.set_rhs t.lp row (st_target -. committed.(pe)))
    t.stress_rows

(* Reference position of an op: its frozen pin when pinned, otherwise
   its baseline PE. Displacement is measured against the baseline PE
   (pins have zero displacement by construction). *)
let build ?(encoding = Hybrid) ?(objective = Min_displacement) design ~baseline
    ~st_target ~candidates ~monitored ~contexts ~committed =
  let lp = Model.create () in
  let fabric = Design.fabric design in
  let npes = Fabric.num_pes fabric in
  let vars = Hashtbl.create 4096 in
  let nbin = ref 0 in
  let frozen_pins =
    Array.init (Design.num_contexts design) (fun ctx ->
        if not (List.mem ctx contexts) then []
        else begin
          let dfg = Design.context design ctx in
          let acc = ref [] in
          for op = Dfg.num_ops dfg - 1 downto 0 do
            if Candidates.is_frozen candidates ~ctx ~op then
              acc := (op, List.hd (Candidates.get candidates ~ctx ~op)) :: !acc
          done;
          !acc
        end)
  in
  let frozen_pe_of = Hashtbl.create 64 in
  List.iter
    (fun ctx ->
      List.iter (fun (op, pe) -> Hashtbl.replace frozen_pe_of (ctx, op) pe) frozen_pins.(ctx))
    contexts;
  (* Binaries + assignment rows. *)
  let stress_terms = Array.make npes [] in
  let capacity_terms = Hashtbl.create 256 in  (* (ctx, pe) -> vars *)
  List.iter
    (fun ctx ->
      let dfg = Design.context design ctx in
      for op = 0 to Dfg.num_ops dfg - 1 do
        if not (Candidates.is_frozen candidates ~ctx ~op) then begin
          let st_op = Stress.op_stress design ~ctx ~op in
          let cands = Candidates.get candidates ~ctx ~op in
          let terms =
            List.map
              (fun pe ->
                let v = Model.add_binary ~name:(Printf.sprintf "x_%d_%d_%d" ctx op pe) lp in
                incr nbin;
                Hashtbl.replace vars (ctx, op, pe) v;
                stress_terms.(pe) <- (st_op, v) :: stress_terms.(pe);
                let key = (ctx, pe) in
                let cur = try Hashtbl.find capacity_terms key with Not_found -> [] in
                Hashtbl.replace capacity_terms key (v :: cur);
                Expr.var v)
              cands
          in
          ignore
            (Model.add_constraint
               ~name:(Printf.sprintf "assign_c%d_op%d" ctx op)
               lp (Expr.sum terms) Model.Eq 1.0)
        end
      done)
    contexts;
  (* Capacity: one op per PE per context. Rows are emitted in sorted
     (ctx, pe) order: Hashtbl bucket order depends on the hash seed,
     and row order steers simplex tie-breaking, so iterating the table
     directly would leak the seed into the chosen floorplan. *)
  List.iter
    (fun ((ctx, pe), vs) ->
      match vs with
      | [] | [ _ ] -> ()
      | vs ->
        ignore
          (Model.add_constraint
             ~name:(Printf.sprintf "cap_c%d_pe%d" ctx pe)
             lp (Expr.sum (List.map Expr.var vs)) Model.Le 1.0))
    (List.sort
       (fun (a, _) (b, _) -> compare a b)
       (Hashtbl.fold (fun k vs acc -> (k, vs) :: acc) capacity_terms []));
  (* Stress budget per PE. *)
  let stress_rows = ref [] in
  for pe = 0 to npes - 1 do
    match stress_terms.(pe) with
    | [] -> ()
    | terms ->
      let lhs = Expr.sum (List.map (fun (c, v) -> Expr.var ~coef:c v) terms) in
      let row =
        Model.add_constraint
          ~name:(Printf.sprintf "stress_pe%d" pe)
          lp lhs Model.Le (st_target -. committed.(pe))
      in
      stress_rows := (pe, row) :: !stress_rows
  done;
  (* Geometry helpers. *)
  let coord pe = Fabric.coord_of_pe fabric pe in
  let ref_pe ctx op =
    match Hashtbl.find_opt frozen_pe_of (ctx, op) with
    | Some pe -> pe
    | None -> Mapping.pe_of baseline ~ctx ~op
  in
  let displacement_expr ctx op =
    (* Σ_k dist(baseline, k) x_k ; zero for frozen ops. *)
    if Candidates.is_frozen candidates ~ctx ~op then Expr.zero
    else begin
      let orig = Mapping.pe_of baseline ~ctx ~op in
      Expr.sum
        (List.map
           (fun pe ->
             let d = Fabric.distance fabric orig pe in
             if d = 0 then Expr.zero
             else Expr.var ~coef:(float_of_int d) (Hashtbl.find vars (ctx, op, pe)))
           (Candidates.get candidates ~ctx ~op))
    end
  in
  let coord_expr ctx op axis =
    (* Linear expression of the op's x (or y) coordinate. *)
    match Hashtbl.find_opt frozen_pe_of (ctx, op) with
    | Some pe ->
      let c = coord pe in
      Expr.const (float_of_int (match axis with `X -> c.Agingfp_util.Coord.x | `Y -> c.Agingfp_util.Coord.y))
    | None ->
      Expr.sum
        (List.map
           (fun pe ->
             let c = coord pe in
             let v = float_of_int (match axis with `X -> c.Agingfp_util.Coord.x | `Y -> c.Agingfp_util.Coord.y) in
             if v = 0.0 then Expr.zero
             else Expr.var ~coef:v (Hashtbl.find vars (ctx, op, pe)))
           (Candidates.get candidates ~ctx ~op))
  in
  (* Path rows. *)
  let path_id = ref 0 in
  let add_exact_path ctx (b : Paths.budgeted) =
    let nodes = b.Paths.path.Analysis.nodes in
    let total = ref Expr.zero in
    for i = 0 to Array.length nodes - 2 do
      let u = nodes.(i) and v = nodes.(i + 1) in
      List.iter
        (fun axis ->
          let w = Model.add_var ~lb:0.0 lp in
          let cu = coord_expr ctx u axis and cv = coord_expr ctx v axis in
          (* w >= cu - cv  and  w >= cv - cu *)
          ignore
            (Model.add_constraint lp (Expr.sub (Expr.sub cu cv) (Expr.var w)) Model.Le 0.0);
          ignore
            (Model.add_constraint lp (Expr.sub (Expr.sub cv cu) (Expr.var w)) Model.Le 0.0);
          total := Expr.add !total (Expr.var w))
        [ `X; `Y ]
    done;
    ignore
      (Model.add_constraint
         ~name:(Printf.sprintf "path_c%d_p%d" ctx !path_id)
         lp !total Model.Le (float_of_int b.Paths.wire_budget))
  in
  let add_displacement_path ~fallback ctx (b : Paths.budgeted) =
    let nodes = b.Paths.path.Analysis.nodes in
    let n = Array.length nodes in
    (* Reference wire length with frozen pins applied. *)
    let ref_wl = ref 0 in
    for i = 0 to n - 2 do
      ref_wl := !ref_wl + Fabric.distance fabric (ref_pe ctx nodes.(i)) (ref_pe ctx nodes.(i + 1))
    done;
    let rhs = b.Paths.wire_budget - !ref_wl in
    if rhs < 0 && fallback then
      (* Conservative bound cannot hold even with zero displacement:
         fall back to the exact encoding for this path. *)
      add_exact_path ctx b
    else begin
      let lhs = ref Expr.zero in
      Array.iteri
        (fun i op ->
          let c = if i = 0 || i = n - 1 then 1.0 else 2.0 in
          lhs := Expr.add !lhs (Expr.scale c (displacement_expr ctx op)))
        nodes;
      ignore
        (Model.add_constraint
           ~name:(Printf.sprintf "path_c%d_p%d" ctx !path_id)
           lp !lhs Model.Le (float_of_int rhs))
    end
  in
  List.iter
    (fun ctx ->
      List.iter
        (fun b ->
          incr path_id;
          match encoding with
          | Displacement -> add_displacement_path ~fallback:false ctx b
          | Exact_abs -> add_exact_path ctx b
          | Hybrid -> add_displacement_path ~fallback:true ctx b)
        monitored.(ctx))
    contexts;
  (* Objective. *)
  (match objective with
  | Null -> Model.set_objective lp Model.Minimize Expr.zero
  | Min_displacement ->
    let total = ref Expr.zero in
    List.iter
      (fun ctx ->
        let dfg = Design.context design ctx in
        for op = 0 to Dfg.num_ops dfg - 1 do
          total := Expr.add !total (displacement_expr ctx op)
        done)
      contexts;
    Model.set_objective lp Model.Minimize !total);
  { lp; design; contexts; candidates; frozen_pins; vars; nbin = !nbin;
    stress_rows = !stress_rows }

let extract t ~values base_mapping =
  let arrays =
    Array.init (Design.num_contexts t.design) (fun c -> Mapping.context_array base_mapping c)
  in
  List.iter
    (fun ctx ->
      let dfg = Design.context t.design ctx in
      for op = 0 to Dfg.num_ops dfg - 1 do
        let pe =
          if Candidates.is_frozen t.candidates ~ctx ~op then
            List.hd (Candidates.get t.candidates ~ctx ~op)
          else begin
            let best = ref (-1) and best_v = ref neg_infinity in
            List.iter
              (fun cand ->
                let v = values (Hashtbl.find t.vars (ctx, op, cand)) in
                if v > !best_v then begin
                  best := cand;
                  best_v := v
                end)
              (Candidates.get t.candidates ~ctx ~op);
            !best
          end
        in
        arrays.(ctx).(op) <- pe
      done)
    t.contexts;
  Mapping.of_arrays arrays
