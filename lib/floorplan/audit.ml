open Agingfp_cgrra
module Analysis = Agingfp_timing.Analysis

type code =
  | Invalid_mapping
  | Frozen_pin_moved
  | Path_over_budget
  | Cpd_increased
  | Stress_over_budget

type violation = { code : code; where : string; message : string }

type report = {
  violations : violation list;
  cpd_ns : float;
  baseline_cpd_ns : float;
  max_stress : float;
  st_target : float;
  pins_checked : int;
  paths_checked : int;
}

let ok r = r.violations = []

let code_label = function
  | Invalid_mapping -> "invalid-mapping"
  | Frozen_pin_moved -> "frozen-pin-moved"
  | Path_over_budget -> "path-over-budget"
  | Cpd_increased -> "cpd-increased"
  | Stress_over_budget -> "stress-over-budget"

let pp_violation ppf v =
  Format.fprintf ppf "%s[%s]: %s" (code_label v.code) v.where v.message

let pp ppf r =
  if ok r then
    Format.fprintf ppf
      "audit clean: CPD %.3f <= %.3f ns, max stress %.4f <= ST_target %.4f, %d \
       pins, %d paths"
      r.cpd_ns r.baseline_cpd_ns r.max_stress r.st_target r.pins_checked
      r.paths_checked
  else begin
    Format.fprintf ppf "audit FAILED (%d violation%s):" (List.length r.violations)
      (if List.length r.violations = 1 then "" else "s");
    List.iter (fun v -> Format.fprintf ppf "@\n  %a" pp_violation v) r.violations
  end

let run ?(tol = 1e-6) design ~baseline_cpd ~st_target ~frozen ~monitored mapping =
  let violations = ref [] in
  let add code where fmt =
    Format.kasprintf
      (fun message -> violations := { code; where; message } :: !violations)
      fmt
  in
  let fabric = Design.fabric design in
  let npes = Fabric.num_pes fabric in
  let nctx = Design.num_contexts design in
  (* -- Structure: every op on exactly one in-range PE, one op per PE
        per context. Checked directly on the context arrays rather
        than through [Mapping.validate] so the audit does not lean on
        the code path under test. -- *)
  let structurally_sound = ref true in
  if Mapping.num_contexts mapping <> nctx then begin
    structurally_sound := false;
    add Invalid_mapping "shape" "mapping has %d contexts, design has %d"
      (Mapping.num_contexts mapping) nctx
  end
  else
    for ctx = 0 to nctx - 1 do
      let dfg = Design.context design ctx in
      let arr = Mapping.context_array mapping ctx in
      if Array.length arr <> Dfg.num_ops dfg then begin
        structurally_sound := false;
        add Invalid_mapping
          (Printf.sprintf "ctx %d" ctx)
          "context maps %d ops, DFG has %d" (Array.length arr) (Dfg.num_ops dfg)
      end
      else begin
        let owner = Array.make npes (-1) in
        Array.iteri
          (fun op pe ->
            if pe < 0 || pe >= npes then begin
              structurally_sound := false;
              add Invalid_mapping
                (Printf.sprintf "ctx %d op %d" ctx op)
                "PE %d out of range [0, %d)" pe npes
            end
            else if owner.(pe) >= 0 then
              add Invalid_mapping
                (Printf.sprintf "ctx %d op %d" ctx op)
                "PE %d already hosts op %d of the same context" pe owner.(pe)
            else owner.(pe) <- op)
          arr
      end
    done;
  if not !structurally_sound then
    (* Timing/stress recomputation would index out of bounds on a
       malformed mapping; report what we have. *)
    {
      violations = List.rev !violations;
      cpd_ns = nan;
      baseline_cpd_ns = baseline_cpd;
      max_stress = nan;
      st_target;
      pins_checked = 0;
      paths_checked = 0;
    }
  else begin
    (* -- Critical-path pins (modulo the chosen rotation: [frozen]
          already holds the re-oriented positions in Rotate mode). -- *)
    let pins = ref 0 in
    Array.iteri
      (fun ctx pin_list ->
        List.iter
          (fun (op, pe) ->
            incr pins;
            let actual = Mapping.pe_of mapping ~ctx ~op in
            if actual <> pe then
              add Frozen_pin_moved
                (Printf.sprintf "ctx %d op %d" ctx op)
                "frozen at PE %d but mapped to PE %d" pe actual)
          pin_list)
      frozen;
    (* -- Monitored path budgets (Eq. 5): integer wire lengths,
          recomputed from scratch. -- *)
    let paths = ref 0 in
    Array.iteri
      (fun ctx budgeted ->
        if ctx < nctx then
          List.iteri
            (fun i (b : Paths.budgeted) ->
              incr paths;
              let wl = Analysis.wire_length design mapping b.Paths.path in
              if wl > b.Paths.wire_budget then
                add Path_over_budget
                  (Printf.sprintf "ctx %d path %d" ctx i)
                  "wire length %d exceeds budget %d (baseline %d)" wl
                  b.Paths.wire_budget b.Paths.baseline_wire)
            budgeted)
      monitored;
    (* -- CPD: full recomputation, Algorithm 1 line 12. -- *)
    let cpd = Analysis.cpd design mapping in
    if cpd > baseline_cpd +. tol then
      add Cpd_increased "design" "remapped CPD %.6f ns exceeds baseline %.6f ns"
        cpd baseline_cpd;
    (* -- Per-PE accumulated stress vs the reported ST_target. -- *)
    let acc = Stress.accumulated design mapping in
    let max_stress = Array.fold_left Float.max 0.0 acc in
    Array.iteri
      (fun pe s ->
        if s > st_target +. tol then
          add Stress_over_budget
            (Printf.sprintf "pe %d" pe)
            "accumulated stress %.6f exceeds ST_target %.6f" s st_target)
      acc;
    {
      violations = List.rev !violations;
      cpd_ns = cpd;
      baseline_cpd_ns = baseline_cpd;
      max_stress;
      st_target;
      pins_checked = !pins;
      paths_checked = !paths;
    }
  end
