(** Local-search post-pass on an aging-aware floorplan.

    The MILP accepts the first delay-clean floorplan at the current
    [ST_target]; a few hundred greedy relocations can usually shave
    the worst PE further. Each move takes an operation off a
    maximally-stressed PE and re-binds it to a free PE of its context,
    accepting only moves that

    - strictly reduce the maximum accumulated stress (ties broken by
      the second-highest, lexicographically),
    - keep every monitored path within its Eq. (5) wire budget, and
    - keep the exact design CPD at most the baseline CPD.

    Frozen (critical-path) operations never move, so the refinement
    preserves all Algorithm 1 guarantees. *)

open Agingfp_cgrra

type params = {
  max_moves : int;       (** accepted-move budget *)
  neighbourhood : int;   (** how many of the hottest PEs to pull from *)
}

val default_params : params
(** 400 moves, 4 hottest PEs. *)

type stats = {
  moves_accepted : int;
  st_before : float;
  st_after : float;
}

val improve :
  ?params:params ->
  ?budget:Agingfp_util.Budget.t ->
  ?initial:float array ->
  Design.t ->
  baseline_cpd:float ->
  frozen:Rotation.plan ->
  monitored:Paths.budgeted list array ->
  Mapping.t ->
  Mapping.t * stats
(** Returns a mapping that is never worse than the input. [initial]
    adds a fixed per-PE wear offset to the leveling objective — the
    lifetime simulator uses it to re-balance against stress already
    accumulated in earlier operating epochs. [budget] is polled once
    per move (each move re-runs a full CPD analysis, the dominant
    cost): on expiry the pass stops and returns the moves accepted so
    far, never exceeding the deadline by more than one move. *)
