open Agingfp_cgrra

type params = { max_candidates : int; unmonitored_radius : int }

let default_params = { max_candidates = 14; unmonitored_radius = 1_000 }

type t = {
  sets : int list array array;
  frozen : bool array array;
  radii : int array array;
}

let build ?(budget = Agingfp_util.Budget.unlimited) ?(params = default_params) design
    mapping ~frozen ~monitored =
  let fabric = Design.fabric design in
  (* Cooperative deadline checkpointing: candidate generation is
     O(ops * PEs log PEs) and used to be the largest uninterruptible
     unit of a deadline-bounded solve. Once [budget] expires the
     remaining ops get the trivial radius-0 neighbourhood — still a
     valid candidate structure (every op keeps a home), built in
     negligible time; the caller's own expiry checks then descend the
     degradation ladder before these sets are ever solved against. *)
  let expired = ref false in
  let ops_seen = ref 0 in
  let checkpoint () =
    incr ops_seen;
    if (not !expired) && !ops_seen land 7 = 0 && Agingfp_util.Budget.expired budget then
      expired := true
  in
  let baseline_acc = Stress.accumulated design mapping in
  let ncontexts = Design.num_contexts design in
  let sets = Array.init ncontexts (fun c -> Array.make (Dfg.num_ops (Design.context design c)) []) in
  let frozen_flags =
    Array.init ncontexts (fun c -> Array.make (Dfg.num_ops (Design.context design c)) false)
  in
  let radii =
    Array.init ncontexts (fun c ->
        Array.make (Dfg.num_ops (Design.context design c)) params.unmonitored_radius)
  in
  let diameter = 2 * (Fabric.dim fabric - 1) in
  for ctx = 0 to ncontexts - 1 do
    let dfg = Design.context design ctx in
    let n = Dfg.num_ops dfg in
    (* Frozen pins. *)
    let frozen_pe = Array.make n (-1) in
    List.iter
      (fun (op, pe) ->
        frozen_pe.(op) <- pe;
        frozen_flags.(ctx).(op) <- true)
      frozen.(ctx);
    let frozen_pes = List.map snd frozen.(ctx) in
    let is_frozen_pe = Array.make (Fabric.num_pes fabric) false in
    List.iter (fun pe -> is_frozen_pe.(pe) <- true) frozen_pes;
    (* Slack-derived radius: an interior op's displacement counts
       twice on a path, so half the path slack bounds its useful
       move; take the min over the monitored paths through the op. *)
    List.iter
      (fun (b : Paths.budgeted) ->
        let s = Paths.slack b in
        let r = max 1 s in
        Array.iter
          (fun op -> radii.(ctx).(op) <- min radii.(ctx).(op) r)
          b.Paths.path.Agingfp_timing.Analysis.nodes)
      monitored.(ctx);
    for op = 0 to n - 1 do
      checkpoint ();
      if frozen_flags.(ctx).(op) then sets.(ctx).(op) <- [ frozen_pe.(op) ]
      else begin
        let orig = Mapping.pe_of mapping ~ctx ~op in
        let r = if !expired then 0 else min radii.(ctx).(op) diameter in
        radii.(ctx).(op) <- r;
        (* When a DFG neighbour is pinned (possibly far away after
           critical-path rotation), the op must be able to follow it,
           or the shared path budgets become unsatisfiable. *)
        let near_pins =
          List.concat_map
            (fun nb ->
              if frozen_flags.(ctx).(nb) then Fabric.pes_within fabric frozen_pe.(nb) 2
              else [])
            (Dfg.preds dfg op @ Dfg.succs dfg op)
        in
        let pool =
          List.sort_uniq Int.compare (Fabric.pes_within fabric orig r @ near_pins)
        in
        let pool = List.filter (fun pe -> not is_frozen_pe.(pe)) pool in
        let pool = List.filter (fun pe -> pe <> orig) pool in
        (* Pin-adjacent PEs are force-included past the cap. *)
        let forced =
          List.sort_uniq Int.compare
            (List.filter (fun pe -> (not is_frozen_pe.(pe)) && pe <> orig) near_pins)
        in
        let pool = List.filter (fun pe -> not (List.mem pe forced)) pool in
        let chosen =
          if params.max_candidates <= 0 || List.length pool + 1 <= params.max_candidates
          then pool
          else begin
            let k = params.max_candidates - 1 in
            let k_near = max 1 (k / 3) in
            let by_dist =
              List.stable_sort
                (fun a b ->
                  Int.compare (Fabric.distance fabric orig a) (Fabric.distance fabric orig b))
                pool
            in
            let rec take n = function
              | [] -> []
              | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
            in
            let near = take k_near by_dist in
            let by_stress =
              List.stable_sort
                (fun a b ->
                  let c = Float.compare baseline_acc.(a) baseline_acc.(b) in
                  if c <> 0 then c
                  else
                    Int.compare (Fabric.distance fabric orig a) (Fabric.distance fabric orig b))
                pool
            in
            let cool = take (k - List.length near) (List.filter (fun pe -> not (List.mem pe near)) by_stress) in
            near @ cool
          end
        in
        let chosen = forced @ chosen in
        let final = if is_frozen_pe.(orig) then chosen else orig :: chosen in
        let final =
          (* A fully-frozen neighbourhood would otherwise leave the op
             homeless; widen to the nearest free PEs of the fabric. *)
          if final <> [] then final
          else begin
            let all_free =
              List.filter
                (fun pe -> not is_frozen_pe.(pe))
                (Fabric.pes_within fabric orig diameter)
            in
            let rec take n = function
              | [] -> []
              | x :: tl -> if n = 0 then [] else x :: take (n - 1) tl
            in
            take (max 1 params.max_candidates) all_free
          end
        in
        sets.(ctx).(op) <- final
      end
    done
  done;
  { sets; frozen = frozen_flags; radii }

let get t ~ctx ~op = t.sets.(ctx).(op)

let is_frozen t ~ctx ~op = t.frozen.(ctx).(op)

let radius t ~ctx ~op = t.radii.(ctx).(op)
