(** Graphviz DOT export for inspection and documentation.

    [dfg] renders one context's dataflow graph (ALU ops as boxes, DMU
    ops as diamonds, I/O as ellipses). [floorplan] renders the fabric
    as a grid cluster with each cell labelled by the operations bound
    to it across contexts and colored by accumulated stress. *)

val dfg : ?name:string -> Dfg.t -> string

val floorplan : Design.t -> Mapping.t -> string

val write_file : string -> string -> (unit, string) result
(** Generic text-to-file helper for the exports above. *)
