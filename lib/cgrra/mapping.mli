(** Operation-to-PE binding for every context — a floorplan.

    The paper's decision object: the aging-unaware flow produces one,
    and the MILP re-mapping produces a better one. A mapping is valid
    when every operation sits on an in-range PE and no two operations
    of the same context share a PE (a PE executes at most one
    operation per clock cycle). *)

type t

val create : (int -> int -> int) -> Design.t -> t
(** [create f design] builds the mapping with [f ctx op] as the PE of
    operation [op] in context [ctx]. *)

val of_arrays : int array array -> t
(** Takes ownership of a copy. *)

val pe_of : t -> ctx:int -> op:int -> int

val set : t -> ctx:int -> op:int -> pe:int -> t
(** Functional update (copies the touched context only). *)

val copy : t -> t

val num_contexts : t -> int
val context_array : t -> int -> int array
(** Copy of the op→PE array for one context. *)

val validate : Design.t -> t -> (unit, string) result
(** Shape, range and one-op-per-PE-per-context checks. *)

val equal : t -> t -> bool

val used_pes : t -> ctx:int -> int list
(** Sorted distinct PEs used by a context. *)

val pp : Format.formatter -> t -> unit
