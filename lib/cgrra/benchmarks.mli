(** The 27-benchmark suite of Table I.

    The paper's B1–B27 are proprietary C benchmarks characterized only
    by their context count, fabric size and total PE (operation)
    count. This module regenerates synthetic designs that match those
    observables exactly, deterministically from a per-benchmark seed
    (see DESIGN.md §2 for the substitution rationale).

    Generated DFGs are layered DAGs whose depth respects the single-
    cycle-per-context timing budget: every source-to-sink path engages
    at most one DMU-class operation, so path delays fit the 5 ns clock
    with realistic wire slack — the same property HLS context division
    enforces on the real device. *)

type usage = Low | Medium | High

type spec = {
  bname : string;
  contexts : int;
  dim : int;            (** fabric is [dim × dim] *)
  total_ops : int;      (** Table I "PE #" *)
  usage : usage;
  paper_freeze : float; (** Table I MTTF increase, Freeze column *)
  paper_rotate : float; (** Table I MTTF increase, Rotate column *)
}

val table1 : spec array
(** All 27 rows of Table I in benchmark order B1..B27. *)

val find : string -> spec option
(** Look up a spec by name, e.g. ["B14"]. *)

val usage_to_string : usage -> string

val generate : ?seed:int -> spec -> Design.t
(** Deterministic synthesis of a design matching [spec]. The default
    seed is derived from the benchmark name so that repeated runs and
    different processes agree. The result satisfies
    [Design.total_ops = spec.total_ops] and fits the fabric. *)

val tiny : unit -> Design.t
(** A 4-context 4×4 toy design mirroring Fig. 2a — used by tests,
    examples and the quickstart. *)
