(** Per-context dataflow graph.

    Each context executes one DFG in a single clock cycle; nodes are
    operations bound to PEs and edges are PE-to-PE wires. Timing paths
    (§V.B of the paper) run from graph sources (primary inputs) to
    sinks (primary outputs). *)

type t

val create : ops:Op.t array -> edges:(int * int) list -> t
(** Node [i] is [ops.(i)]; edges are (producer, consumer) pairs.
    @raise Invalid_argument on out-of-range endpoints, self edges,
    duplicate edges or cycles. *)

val num_ops : t -> int
val num_edges : t -> int

val op : t -> int -> Op.t
val ops : t -> Op.t array
(** A copy of the node array. *)

val preds : t -> int -> int list
val succs : t -> int -> int list

val sources : t -> int list
(** Nodes with no predecessors — path start points. *)

val sinks : t -> int list
(** Nodes with no successors — path end points. *)

val topological_order : t -> int array

val iter_edges : t -> (int -> int -> unit) -> unit

val pp : Format.formatter -> t -> unit
