(** Operations executed by CGRRA processing elements.

    A PE contains an Arithmetic Logic Unit (ALU) and a Data
    Manipulation Unit (DMU); every scheduled operation engages one of
    the two, and the engaged unit's combinational delay determines
    both the contribution to path delay and the stress rate (duty
    cycle) of the PE in that context (paper §III). *)

type unit_kind = Alu | Dmu

type kind =
  | Add
  | Sub
  | Mul
  | And_
  | Or_
  | Xor_
  | Cmp           (** comparison / relational *)
  | Shift         (** barrel shift — data manipulation *)
  | Mux           (** select — data manipulation *)
  | Pack          (** bit-field pack/unpack — data manipulation *)
  | Load
  | Store
  | Fused         (** an ALU op chained into the DMU of the same PE —
                      produced by technology mapping (the STP PE holds
                      both units in series) *)
  | Input         (** primary-input port op *)
  | Output        (** primary-output port op *)

type t = { id : int; kind : kind; bitwidth : int }

val make : id:int -> kind:kind -> bitwidth:int -> t

val unit_of_kind : kind -> unit_kind
(** Which PE unit the operation engages. Arithmetic and logic map to
    the ALU; shifts, selects, packing and memory-port data movement
    map to the DMU. I/O port ops are modelled as (cheap) DMU usage. *)

val all_kinds : kind array

val kind_to_string : kind -> string

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string}. *)

val is_io : kind -> bool

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
