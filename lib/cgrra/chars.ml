type t = {
  alu_delay_ns : float;
  dmu_delay_ns : float;
  io_delay_ns : float;
  clock_period_ns : float;
  unit_wire_delay_ns : float;
}

let default =
  {
    alu_delay_ns = 0.87;
    dmu_delay_ns = 3.14;
    io_delay_ns = 0.30;
    clock_period_ns = 5.0;
    unit_wire_delay_ns = 0.12;
  }

(* Relative effort of each operation class on its engaged unit. The
   paper characterizes one ALU and one DMU figure; the class factor
   models the spread between a logic op and a multiply without
   departing from those anchors. *)
let class_factor (kind : Op.kind) =
  match kind with
  | Op.Mul -> 1.35
  | Op.Add | Op.Sub | Op.Cmp -> 1.0
  | Op.And_ | Op.Or_ | Op.Xor_ -> 0.7
  | Op.Shift -> 1.0
  | Op.Mux -> 0.75
  | Op.Pack -> 0.85
  | Op.Load | Op.Store -> 1.0
  | Op.Fused -> 1.0
  | Op.Input | Op.Output -> 1.0

let bitwidth_factor bw = 0.75 +. (0.25 *. float_of_int bw /. 32.0)

let pe_delay_ns t (op : Op.t) =
  if Op.is_io op.Op.kind then t.io_delay_ns
  else begin
    let base =
      match op.Op.kind with
      (* A fused op runs the ALU and the DMU of one PE in series. *)
      | Op.Fused -> t.alu_delay_ns +. t.dmu_delay_ns
      | _ -> (
        match Op.unit_of_kind op.Op.kind with
        | Op.Alu -> t.alu_delay_ns
        | Op.Dmu -> t.dmu_delay_ns)
    in
    base *. class_factor op.Op.kind *. bitwidth_factor op.Op.bitwidth
  end

let stress_rate t op =
  let sr = pe_delay_ns t op /. t.clock_period_ns in
  if sr > 1.0 then 1.0 else sr

let wire_delay_ns t len = t.unit_wire_delay_ns *. float_of_int len
