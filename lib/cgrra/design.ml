module Invariant = Agingfp_util.Invariant
type t = {
  name : string;
  fabric : Fabric.t;
  contexts : Dfg.t array;
  chars : Chars.t;
}

let create ?(chars = Chars.default) ~name ~fabric contexts =
  if Array.length contexts = 0 then Invariant.invalid ~where:"Design.create" "no contexts";
  Array.iter
    (fun dfg ->
      if Dfg.num_ops dfg > Fabric.num_pes fabric then
        Invariant.invalid ~where:"Design.create" "context larger than fabric")
    contexts;
  { name; fabric; contexts; chars }

let name t = t.name
let fabric t = t.fabric
let chars t = t.chars
let num_contexts t = Array.length t.contexts
let context t i = t.contexts.(i)
let contexts t = Array.copy t.contexts

let total_ops t = Array.fold_left (fun acc d -> acc + Dfg.num_ops d) 0 t.contexts

let utilization t =
  float_of_int (total_ops t)
  /. (float_of_int (num_contexts t) *. float_of_int (Fabric.num_pes t.fabric))

let pp ppf t =
  Format.fprintf ppf "%s: %a, %d contexts, %d ops (util %.1f%%)" t.name Fabric.pp
    t.fabric (num_contexts t) (total_ops t)
    (100.0 *. utilization t)
