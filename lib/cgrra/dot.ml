let shape_of (o : Op.t) =
  if Op.is_io o.Op.kind then "ellipse"
  else match Op.unit_of_kind o.Op.kind with Op.Alu -> "box" | Op.Dmu -> "diamond"

let dfg ?(name = "dfg") d =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "digraph %s {\n  rankdir=TB;\n  node [fontsize=10];\n" name;
  Array.iter
    (fun (o : Op.t) ->
      Printf.bprintf buf "  n%d [label=\"%s#%d\\n<%d>\" shape=%s];\n" o.Op.id
        (Op.kind_to_string o.Op.kind) o.Op.id o.Op.bitwidth (shape_of o))
    (Dfg.ops d);
  Dfg.iter_edges d (fun u v -> Printf.bprintf buf "  n%d -> n%d;\n" u v);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let floorplan design mapping =
  let fabric = Design.fabric design in
  let dim = Fabric.dim fabric in
  let acc = Stress.accumulated design mapping in
  let max_acc = max 1e-9 (Array.fold_left max 0.0 acc) in
  let occupants = Array.make (Fabric.num_pes fabric) [] in
  for ctx = Design.num_contexts design - 1 downto 0 do
    let dfg = Design.context design ctx in
    for op = 0 to Dfg.num_ops dfg - 1 do
      let pe = Mapping.pe_of mapping ~ctx ~op in
      occupants.(pe) <- Printf.sprintf "c%d:%d" ctx op :: occupants.(pe)
    done
  done;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "graph floorplan {\n  node [shape=box fontsize=9];\n";
  for pe = 0 to Fabric.num_pes fabric - 1 do
    let c = Fabric.coord_of_pe fabric pe in
    let heat = int_of_float (9.0 *. acc.(pe) /. max_acc) in
    let label =
      if occupants.(pe) = [] then Printf.sprintf "PE%d" pe
      else Printf.sprintf "PE%d\\n%s" pe (String.concat " " occupants.(pe))
    in
    Printf.bprintf buf
      "  pe%d [label=\"%s\" pos=\"%d,%d!\" style=filled fillcolor=\"/blues9/%d\"];\n" pe
      label c.Agingfp_util.Coord.x (dim - 1 - c.Agingfp_util.Coord.y) (max 1 heat)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path contents =
  try
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc contents);
    Ok ()
  with Sys_error msg -> Error msg
