(** The CGRRA fabric: a [dim × dim] grid of processing elements.

    PEs are identified by dense integer ids in row-major order;
    geometric reasoning converts to {!Agingfp_util.Coord.t}. The paper
    evaluates square fabrics (4×4, 8×8, 16×16). *)

type t

val create : dim:int -> t
(** A square [dim × dim] fabric. *)

val dim : t -> int
val num_pes : t -> int

val coord_of_pe : t -> int -> Agingfp_util.Coord.t
val pe_of_coord : t -> Agingfp_util.Coord.t -> int
(** @raise Invalid_argument if the coordinate is out of bounds. *)

val in_bounds : t -> Agingfp_util.Coord.t -> bool

val distance : t -> int -> int -> int
(** Manhattan distance between two PEs, in PE pitches. *)

val pes_within : t -> int -> int -> int list
(** [pes_within t pe r] lists all PE ids at Manhattan distance ≤ [r]
    from [pe], ordered by distance then id — candidate sets for the
    pruned MILP formulation. *)

val center : t -> Agingfp_util.Coord.t

val pp : Format.formatter -> t -> unit
