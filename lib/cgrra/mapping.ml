type t = int array array

let create f design =
  Array.init (Design.num_contexts design) (fun c ->
      Array.init (Dfg.num_ops (Design.context design c)) (fun o -> f c o))

let of_arrays arrays = Array.map Array.copy arrays

let pe_of t ~ctx ~op = t.(ctx).(op)

let set t ~ctx ~op ~pe =
  Array.mapi
    (fun c row ->
      if c = ctx then begin
        let row' = Array.copy row in
        row'.(op) <- pe;
        row'
      end
      else row)
    t

let copy t = Array.map Array.copy t

let num_contexts t = Array.length t

let context_array t c = Array.copy t.(c)

let validate design t =
  let fabric = Design.fabric design in
  let npes = Fabric.num_pes fabric in
  if Array.length t <> Design.num_contexts design then
    Error "mapping context count mismatch"
  else begin
    let err = ref None in
    Array.iteri
      (fun c row ->
        if !err = None then begin
          let dfg = Design.context design c in
          if Array.length row <> Dfg.num_ops dfg then
            err := Some (Printf.sprintf "context %d: op count mismatch" c)
          else begin
            let seen = Array.make npes (-1) in
            Array.iteri
              (fun o pe ->
                if !err = None then
                  if pe < 0 || pe >= npes then
                    err := Some (Printf.sprintf "context %d op %d: PE %d out of range" c o pe)
                  else if seen.(pe) >= 0 then
                    err :=
                      Some
                        (Printf.sprintf "context %d: ops %d and %d share PE %d" c
                           seen.(pe) o pe)
                  else seen.(pe) <- o)
              row
          end
        end)
      t;
    match !err with None -> Ok () | Some msg -> Error msg
  end

let equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun r1 r2 -> r1 = r2) a b

let used_pes t ~ctx = List.sort_uniq Int.compare (Array.to_list t.(ctx))

let pp ppf t =
  Array.iteri
    (fun c row ->
      if c > 0 then Format.pp_print_newline ppf ();
      Format.fprintf ppf "ctx %d:" c;
      Array.iteri (fun o pe -> Format.fprintf ppf " %d->%d" o pe) row)
    t
