module Ascii_table = Agingfp_util.Ascii_table

let op_stress design ~ctx ~op =
  let dfg = Design.context design ctx in
  Chars.stress_rate (Design.chars design) (Dfg.op dfg op)

let per_context design mapping =
  let npes = Fabric.num_pes (Design.fabric design) in
  Array.init (Design.num_contexts design) (fun c ->
      let map = Array.make npes 0.0 in
      let dfg = Design.context design c in
      for o = 0 to Dfg.num_ops dfg - 1 do
        let pe = Mapping.pe_of mapping ~ctx:c ~op:o in
        map.(pe) <- map.(pe) +. op_stress design ~ctx:c ~op:o
      done;
      map)

let accumulated design mapping =
  let npes = Fabric.num_pes (Design.fabric design) in
  let acc = Array.make npes 0.0 in
  Array.iter
    (fun ctx_map -> Array.iteri (fun pe s -> acc.(pe) <- acc.(pe) +. s) ctx_map)
    (per_context design mapping);
  acc

let max_accumulated design mapping =
  Array.fold_left max 0.0 (accumulated design mapping)

let mean_accumulated design mapping =
  let acc = accumulated design mapping in
  Array.fold_left ( +. ) 0.0 acc /. float_of_int (Array.length acc)

let heatmap design mapping =
  let fabric = Design.fabric design in
  let acc = accumulated design mapping in
  Ascii_table.render_grid ~w:(Fabric.dim fabric) ~h:(Fabric.dim fabric) (fun x y ->
      let pe = Fabric.pe_of_coord fabric (Agingfp_util.Coord.make x y) in
      if acc.(pe) = 0.0 then "." else Printf.sprintf "%.2f" acc.(pe))
