module Invariant = Agingfp_util.Invariant
type unit_kind = Alu | Dmu

type kind =
  | Add
  | Sub
  | Mul
  | And_
  | Or_
  | Xor_
  | Cmp
  | Shift
  | Mux
  | Pack
  | Load
  | Store
  | Fused
  | Input
  | Output

type t = { id : int; kind : kind; bitwidth : int }

let make ~id ~kind ~bitwidth =
  if bitwidth <= 0 then Invariant.invalid ~where:"Op.make" "bitwidth must be positive";
  { id; kind; bitwidth }

let unit_of_kind = function
  | Add | Sub | Mul | And_ | Or_ | Xor_ | Cmp -> Alu
  | Shift | Mux | Pack | Load | Store | Fused | Input | Output -> Dmu

let all_kinds =
  [|
    Add; Sub; Mul; And_; Or_; Xor_; Cmp; Shift; Mux; Pack; Load; Store; Fused; Input;
    Output;
  |]

let kind_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | And_ -> "and"
  | Or_ -> "or"
  | Xor_ -> "xor"
  | Cmp -> "cmp"
  | Shift -> "shift"
  | Mux -> "mux"
  | Pack -> "pack"
  | Load -> "load"
  | Store -> "store"
  | Fused -> "fused"
  | Input -> "input"
  | Output -> "output"

let kind_of_string s =
  Array.find_opt (fun k -> kind_to_string k = s) all_kinds

let is_io = function Input | Output -> true | _ -> false

let pp ppf t = Format.fprintf ppf "%s#%d<%d>" (kind_to_string t.kind) t.id t.bitwidth

let equal a b = a.id = b.id && a.kind = b.kind && a.bitwidth = b.bitwidth
