module Coord = Agingfp_util.Coord

module Invariant = Agingfp_util.Invariant
type t = { dim : int }

let create ~dim =
  if dim <= 0 then Invariant.invalid ~where:"Fabric.create" "dim must be positive";
  { dim }

let dim t = t.dim
let num_pes t = t.dim * t.dim

let coord_of_pe t pe =
  if pe < 0 || pe >= num_pes t then Invariant.invalid ~where:"Fabric.coord_of_pe" "out of range";
  Coord.make (pe mod t.dim) (pe / t.dim)

let in_bounds t (c : Coord.t) =
  c.Coord.x >= 0 && c.Coord.x < t.dim && c.Coord.y >= 0 && c.Coord.y < t.dim

let pe_of_coord t c =
  if not (in_bounds t c) then Invariant.invalid ~where:"Fabric.pe_of_coord" "out of bounds";
  (c.Coord.y * t.dim) + c.Coord.x

let distance t a b = Coord.manhattan (coord_of_pe t a) (coord_of_pe t b)

let pes_within t pe r =
  let c = coord_of_pe t pe in
  let acc = ref [] in
  for q = num_pes t - 1 downto 0 do
    if Coord.manhattan c (coord_of_pe t q) <= r then acc := q :: !acc
  done;
  List.stable_sort
    (fun a b ->
      let da = distance t pe a and db = distance t pe b in
      if da <> db then Int.compare da db else Int.compare a b)
    !acc

let center t = Coord.make (t.dim / 2) (t.dim / 2)

let pp ppf t = Format.fprintf ppf "fabric %dx%d (%d PEs)" t.dim t.dim (num_pes t)
