module Rng = Agingfp_util.Rng

module Invariant = Agingfp_util.Invariant
type usage = Low | Medium | High

type spec = {
  bname : string;
  contexts : int;
  dim : int;
  total_ops : int;
  usage : usage;
  paper_freeze : float;
  paper_rotate : float;
}

let usage_to_string = function Low -> "low" | Medium -> "medium" | High -> "high"

let row bname contexts dim total_ops usage paper_freeze paper_rotate =
  { bname; contexts; dim; total_ops; usage; paper_freeze; paper_rotate }

(* Table I verbatim: (contexts, fabric) × {low, medium, high} with the
   paper's PE counts and reported MTTF-increase factors. *)
let table1 =
  [|
    row "B1" 4 4 24 Low 1.94 1.94;
    row "B2" 4 8 79 Low 2.17 2.17;
    row "B3" 4 16 192 Low 2.26 2.28;
    row "B4" 8 4 44 Low 2.77 2.80;
    row "B5" 8 8 142 Low 2.69 2.89;
    row "B6" 8 16 534 Low 2.93 3.39;
    row "B7" 16 4 88 Low 3.76 3.85;
    row "B8" 16 8 259 Low 3.19 3.79;
    row "B9" 16 16 1011 Low 3.35 3.73;
    row "B10" 4 4 35 Medium 1.67 1.67;
    row "B11" 4 8 148 Medium 1.44 1.82;
    row "B12" 4 16 451 Medium 1.54 1.77;
    row "B13" 8 4 62 Medium 2.05 2.36;
    row "B14" 8 8 280 Medium 1.97 2.84;
    row "B15" 8 16 1101 Medium 1.93 2.97;
    row "B16" 16 4 147 Medium 2.89 3.18;
    row "B17" 16 8 531 Medium 2.62 2.94;
    row "B18" 16 16 2165 Medium 2.39 3.08;
    row "B19" 4 4 52 High 1.18 1.52;
    row "B20" 4 8 175 High 1.27 1.70;
    row "B21" 4 16 554 High 1.76 2.00;
    row "B22" 8 4 87 High 1.56 2.06;
    row "B23" 8 8 327 High 1.48 1.98;
    row "B24" 8 16 1521 High 1.59 2.05;
    row "B25" 16 4 193 High 1.61 2.06;
    row "B26" 16 8 737 High 1.95 2.31;
    row "B27" 16 16 3089 High 2.07 2.44;
  |]

let find name = Array.find_opt (fun s -> s.bname = name) table1

(* Split [total] ops across [contexts] contexts: even base, ±20%
   jitter, clamped to the fabric capacity, with the residue spread
   over contexts that still have room. *)
let context_sizes rng ~contexts ~capacity ~total =
  if total > contexts * capacity then
    Invariant.invalid ~where:"Benchmarks.context_sizes" "design does not fit fabric";
  if total < 3 * contexts then
    Invariant.invalid ~where:"Benchmarks.context_sizes" "need at least 3 ops per context";
  let base = total / contexts in
  let sizes =
    Array.init contexts (fun _ ->
        let jitter = (base / 5) + 1 in
        let s = base - jitter + Rng.int rng ((2 * jitter) + 1) in
        max 3 (min capacity s))
  in
  (* Repair the sum. *)
  let diff () = total - Array.fold_left ( + ) 0 sizes in
  let idx = ref 0 in
  while diff () <> 0 do
    let d = diff () in
    let i = !idx mod contexts in
    if d > 0 && sizes.(i) < capacity then sizes.(i) <- sizes.(i) + 1
    else if d < 0 && sizes.(i) > 3 then sizes.(i) <- sizes.(i) - 1;
    incr idx
  done;
  sizes

let alu_kinds = [| Op.Add; Op.Sub; Op.Mul; Op.And_; Op.Or_; Op.Xor_; Op.Cmp |]
let dmu_kinds = [| Op.Shift; Op.Mux; Op.Pack; Op.Load; Op.Store |]
let bitwidths = [| 8; 16; 24; 32 |]

(* One context's DFG: a layered DAG
     inputs -> compute layer(s) -> outputs
   with exactly one DMU-heavy compute layer so every path engages at
   most one DMU op and fits the clock period. *)
let gen_context rng ~num_ops =
  let n_in = max 1 (num_ops / 5) in
  let n_out = max 1 (num_ops / 7) in
  let n_mid = num_ops - n_in - n_out in
  let n_layers = if n_mid <= 4 then 1 else if n_mid <= 24 then 2 else 3 in
  let mid_sizes = Array.make n_layers (n_mid / n_layers) in
  mid_sizes.(0) <- mid_sizes.(0) + (n_mid mod n_layers);
  let dmu_layer = Rng.int rng n_layers in
  (* Build node list layer by layer. *)
  let next_id = ref 0 in
  let fresh kind bw =
    let id = !next_id in
    incr next_id;
    Op.make ~id ~kind ~bitwidth:bw
  in
  let input_layer =
    Array.to_list (Array.init n_in (fun _ -> fresh Op.Input (Rng.pick rng bitwidths)))
  in
  let mid_layers =
    Array.to_list
      (Array.mapi
         (fun l size ->
           Array.to_list
             (Array.init size (fun _ ->
                  let kind =
                    if l = dmu_layer then Rng.pick rng dmu_kinds
                    else Rng.pick rng alu_kinds
                  in
                  fresh kind (Rng.pick rng bitwidths))))
         mid_sizes)
  in
  let output_layer =
    Array.to_list (Array.init n_out (fun _ -> fresh Op.Output (Rng.pick rng bitwidths)))
  in
  let layers = input_layer :: (mid_layers @ [ output_layer ]) in
  let ops =
    Array.of_list (List.concat layers)
  in
  (* Edges: every non-source op draws 1-2 predecessors from the
     previous layer; then every op without a successor (other than
     outputs) feeds a random node of the next layer. *)
  let edges = Hashtbl.create (Array.length ops * 2) in
  let add_edge u v = if not (Hashtbl.mem edges (u, v)) then Hashtbl.add edges (u, v) () in
  let rec wire = function
    | [] | [ _ ] -> ()
    | prev :: (cur :: _ as rest) ->
      let prev_arr = Array.of_list (List.map (fun (o : Op.t) -> o.Op.id) prev) in
      List.iter
        (fun (o : Op.t) ->
          let npred = 1 + Rng.int rng 2 in
          for _ = 1 to npred do
            add_edge (Rng.pick rng prev_arr) o.Op.id
          done)
        cur;
      (* Give dangling producers a consumer. *)
      let cur_arr = Array.of_list (List.map (fun (o : Op.t) -> o.Op.id) cur) in
      Array.iter
        (fun u ->
          let has_succ =
            (Hashtbl.fold (fun (a, _) () acc -> acc || a = u) edges false
            [@codelint.allow "det-order"
              "commutative (||) accumulation: any fold order yields the same \
               boolean"])
          in
          if not has_succ then add_edge u (Rng.pick rng cur_arr))
        prev_arr;
      wire rest
  in
  wire layers;
  (* Hashtbl.fold order depends on the (possibly randomized) hash
     seed; sort so a generator seed always yields the same DFG —
     edge order feeds Dfg succs/preds and from there placement and
     path enumeration tie-breaking. *)
  Dfg.create ~ops
    ~edges:(List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) edges []))

let seed_of_name name =
  (* Stable small hash of the benchmark name. *)
  let h = ref 5381 in
  String.iter (fun c -> h := (!h * 33) + Char.code c) name;
  !h land 0xFFFFFF

let generate ?seed spec =
  let seed = match seed with Some s -> s | None -> seed_of_name spec.bname in
  let rng = Rng.create seed in
  let fabric = Fabric.create ~dim:spec.dim in
  let sizes =
    context_sizes rng ~contexts:spec.contexts ~capacity:(Fabric.num_pes fabric)
      ~total:spec.total_ops
  in
  let contexts = Array.map (fun num_ops -> gen_context rng ~num_ops) sizes in
  Design.create ~name:spec.bname ~fabric contexts

let tiny () =
  let spec = row "tiny" 4 4 28 Low 0.0 0.0 in
  generate ~seed:7 spec
