let buf_addf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let design_to_string design =
  let buf = Buffer.create 4096 in
  buf_addf buf "agingfp-design v1\n";
  buf_addf buf "name %s\n" (Design.name design);
  buf_addf buf "fabric %d\n" (Fabric.dim (Design.fabric design));
  let c = Design.chars design in
  buf_addf buf "chars %.9g %.9g %.9g %.9g %.9g\n" c.Chars.alu_delay_ns c.Chars.dmu_delay_ns
    c.Chars.io_delay_ns c.Chars.clock_period_ns c.Chars.unit_wire_delay_ns;
  buf_addf buf "contexts %d\n" (Design.num_contexts design);
  for i = 0 to Design.num_contexts design - 1 do
    let dfg = Design.context design i in
    buf_addf buf "context %d ops %d edges %d\n" i (Dfg.num_ops dfg) (Dfg.num_edges dfg);
    Array.iter
      (fun (o : Op.t) ->
        buf_addf buf "op %d %s %d\n" o.Op.id (Op.kind_to_string o.Op.kind) o.Op.bitwidth)
      (Dfg.ops dfg);
    Dfg.iter_edges dfg (fun u v -> buf_addf buf "edge %d %d\n" u v)
  done;
  buf_addf buf "end\n";
  Buffer.contents buf

(* ---------- reader ---------- *)

exception Parse_error of int * string

let failf line fmt = Printf.ksprintf (fun msg -> raise (Parse_error (line, msg))) fmt

type reader = { lines : string array; mutable pos : int }

let next r =
  let rec skip () =
    if r.pos >= Array.length r.lines then failf r.pos "unexpected end of input"
    else begin
      let line = String.trim r.lines.(r.pos) in
      r.pos <- r.pos + 1;
      if line = "" then skip () else (line, r.pos)
    end
  in
  skip ()

let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let int_of line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> failf line "expected integer, got %S" s

let float_of line s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> failf line "expected number, got %S" s

(* Device characterization values must be finite and non-negative:
   [nan]/[inf] parse as floats but would poison every downstream
   delay/stress computation, and this is untrusted network input by
   the time `agingfp serve` feeds it here. *)
let char_of line s =
  let v = float_of line s in
  if not (Float.is_finite v) || v < 0.0 then
    failf line "characterization values must be finite and non-negative, got %S" s;
  v

(* Counts drive [Array.init]/[List.init]: a negative or absurd value
   must become a [Parse_error] at this line, not an [Invalid_argument]
   or a multi-gigabyte allocation attempt. *)
let max_ops_per_context = 100_000
let max_edges_per_context = 1_000_000

let count_of line ~what ~limit s =
  let v = int_of line s in
  if v < 0 || v > limit then failf line "%s out of range [0, %d]" what limit;
  v

let design_of_string_exn text =
  let r = { lines = Array.of_list (String.split_on_char '\n' text); pos = 0 } in
    let header, ln = next r in
    if header <> "agingfp-design v1" then failf ln "unknown design header %S" header;
    let name_line, ln = next r in
    let name =
      match words name_line with
      | "name" :: rest when rest <> [] -> String.concat " " rest
      | _ -> failf ln "expected 'name <string>'"
    in
    let fabric_line, ln = next r in
    let dim =
      match words fabric_line with
      | [ "fabric"; d ] -> int_of ln d
      | _ -> failf ln "expected 'fabric <dim>'"
    in
    if dim <= 0 || dim > 1024 then failf ln "fabric dimension out of range";
    let chars_line, ln = next r in
    let chars =
      match words chars_line with
      | [ "chars"; a; d; io; clk; uw ] ->
        {
          Chars.alu_delay_ns = char_of ln a;
          dmu_delay_ns = char_of ln d;
          io_delay_ns = char_of ln io;
          clock_period_ns = char_of ln clk;
          unit_wire_delay_ns = char_of ln uw;
        }
      | _ -> failf ln "expected 'chars <5 numbers>'"
    in
    let contexts_line, ln = next r in
    let ncontexts =
      match words contexts_line with
      | [ "contexts"; n ] -> int_of ln n
      | _ -> failf ln "expected 'contexts <count>'"
    in
    if ncontexts <= 0 || ncontexts > 4096 then failf ln "context count out of range";
    let contexts =
      Array.init ncontexts (fun expect ->
          let ctx_line, ln = next r in
          let nops, nedges =
            match words ctx_line with
            | [ "context"; i; "ops"; n; "edges"; m ] ->
              if int_of ln i <> expect then failf ln "context index mismatch";
              ( count_of ln ~what:"op count" ~limit:max_ops_per_context n,
                count_of ln ~what:"edge count" ~limit:max_edges_per_context m )
            | _ -> failf ln "expected 'context <i> ops <n> edges <m>'"
          in
          let ops =
            Array.init nops (fun expect_id ->
                let op_line, ln = next r in
                match words op_line with
                | [ "op"; id; kind; bw ] ->
                  let id = int_of ln id in
                  if id <> expect_id then failf ln "op id mismatch";
                  let kind =
                    match Op.kind_of_string kind with
                    | Some k -> k
                    | None -> failf ln "unknown op kind %S" kind
                  in
                  (try Op.make ~id ~kind ~bitwidth:(int_of ln bw)
                   with Invalid_argument msg -> failf ln "bad op: %s" msg)
                | _ -> failf ln "expected 'op <id> <kind> <bitwidth>'")
          in
          let edges =
            List.init nedges (fun _ ->
                let edge_line, ln = next r in
                match words edge_line with
                | [ "edge"; u; v ] -> (int_of ln u, int_of ln v)
                | _ -> failf ln "expected 'edge <from> <to>'")
          in
          try Dfg.create ~ops ~edges
          with Invalid_argument msg -> failf ln "bad context: %s" msg)
    in
    let end_line, ln = next r in
    if end_line <> "end" then failf ln "expected 'end'";
    (try Design.create ~chars ~name ~fabric:(Fabric.create ~dim) contexts
     with Invalid_argument msg -> failf ln "invalid design: %s" msg)

let design_of_string text =
  try Ok (design_of_string_exn text)
  with Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)

(* ---------- mappings ---------- *)

let mapping_to_string mapping =
  let buf = Buffer.create 1024 in
  buf_addf buf "agingfp-mapping v1\n";
  buf_addf buf "contexts %d\n" (Mapping.num_contexts mapping);
  for c = 0 to Mapping.num_contexts mapping - 1 do
    let row = Mapping.context_array mapping c in
    buf_addf buf "context %d %d\n" c (Array.length row);
    buf_addf buf "%s\n"
      (String.concat " " (Array.to_list (Array.map string_of_int row)))
  done;
  buf_addf buf "end\n";
  Buffer.contents buf

let mapping_of_string text =
  let r = { lines = Array.of_list (String.split_on_char '\n' text); pos = 0 } in
  try
    let header, ln = next r in
    if header <> "agingfp-mapping v1" then failf ln "unknown mapping header %S" header;
    let contexts_line, ln = next r in
    let ncontexts =
      match words contexts_line with
      | [ "contexts"; n ] -> int_of ln n
      | _ -> failf ln "expected 'contexts <count>'"
    in
    if ncontexts <= 0 || ncontexts > 4096 then failf ln "context count out of range";
    let arrays =
      Array.init ncontexts (fun expect ->
          let ctx_line, ln = next r in
          let nops =
            match words ctx_line with
            | [ "context"; i; n ] ->
              if int_of ln i <> expect then failf ln "context index mismatch";
              count_of ln ~what:"op count" ~limit:max_ops_per_context n
            | _ -> failf ln "expected 'context <i> <n>'"
          in
          let row_line, ln = next r in
          let pes = List.map (int_of ln) (words row_line) in
          if List.length pes <> nops then failf ln "expected %d PEs" nops;
          Array.of_list pes)
    in
    let end_line, ln = next r in
    if end_line <> "end" then failf ln "expected 'end'";
    Ok (Mapping.of_arrays arrays)
  with
  | Parse_error (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  (* Belt and braces for untrusted input: any constructor that slips
     an [Invalid_argument] through still reads as a parse failure,
     never an exception escaping to the caller. *)
  | Invalid_argument msg -> Error (Printf.sprintf "line %d: %s" r.pos msg)

(* ---------- files ---------- *)

let write_file path contents =
  try
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc contents);
    Ok ()
  with Sys_error msg -> Error msg

let read_file path =
  try Ok (In_channel.with_open_text path In_channel.input_all)
  with Sys_error msg -> Error msg

let save_design path design = write_file path (design_to_string design)

let load_design path = Result.bind (read_file path) design_of_string

let save_mapping path mapping = write_file path (mapping_to_string mapping)

let load_mapping path = Result.bind (read_file path) mapping_of_string
