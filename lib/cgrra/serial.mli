(** Plain-text serialization of designs and floorplans.

    A stable, line-oriented format so that floorplans can be produced
    by one tool invocation and consumed by another (e.g. place once,
    re-map many times, archive the accepted floorplan next to the
    bitstream). The format is versioned; readers reject unknown
    versions with a useful error.

    Design format sketch:
    {v
    agingfp-design v1
    name <string>
    fabric <dim>
    chars <alu_ns> <dmu_ns> <io_ns> <clock_ns> <unit_wire_ns>
    contexts <count>
    context <index> ops <n> edges <m>
    op <id> <kind> <bitwidth>
    edge <from> <to>
    end
    v}

    Mappings serialize per context as a PE list in operation order. *)

exception Parse_error of int * string
(** [(line, message)]. The [_of_string] readers catch it and return
    [Error]; it is exported so CLI-level handlers can classify a parse
    failure that escapes through other code paths distinctly from
    generic exceptions. *)

val design_to_string : Design.t -> string

val design_of_string : string -> (Design.t, string) result
(** Errors carry a line number. Round-trip law:
    [design_of_string (design_to_string d)] reproduces [d] up to
    physical equality of contents. *)

val design_of_string_exn : string -> Design.t
(** Raising variant of {!design_of_string} ({!Parse_error}) — for
    callers like the CLI whose top-level handler classifies failure
    by exception rather than by message string. Hardened for
    untrusted input: {!Parse_error} is the {e only} exception that
    escapes — counts are bounds-checked before any allocation,
    characterization values must be finite and non-negative, and
    constructor [Invalid_argument]s are rewritten to parse errors
    with a line number. *)

val mapping_to_string : Mapping.t -> string

val mapping_of_string : string -> (Mapping.t, string) result
(** The result is shape-checked only on read; validate against the
    intended design with {!Mapping.validate}. *)

val save_design : string -> Design.t -> (unit, string) result
val load_design : string -> (Design.t, string) result
val save_mapping : string -> Mapping.t -> (unit, string) result
val load_mapping : string -> (Mapping.t, string) result
