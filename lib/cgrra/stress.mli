(** Stress-time accounting (paper §III).

    The stress rate of an operation is its engaged-unit duty cycle;
    the accumulated stress time of a PE is the sum of the stress
    rates of the operations bound to it over all contexts. The PE
    with the highest accumulated stress bounds the device MTTF. *)

val per_context : Design.t -> Mapping.t -> float array array
(** [per_context d m] is a [contexts × PEs] matrix of stress times
    (duty-cycle units, one clock cycle per context). *)

val accumulated : Design.t -> Mapping.t -> float array
(** Per-PE accumulated stress over all contexts — the quantity the
    MILP budget [ST_target] constrains. *)

val max_accumulated : Design.t -> Mapping.t -> float
(** The paper's [ST_up]: the highest accumulated stress of any PE. *)

val mean_accumulated : Design.t -> Mapping.t -> float
(** The paper's [ST_low]: total stress averaged over all fabric PEs. *)

val op_stress : Design.t -> ctx:int -> op:int -> float
(** [ST(OP_ij)]: the stress an operation contributes wherever bound. *)

val heatmap : Design.t -> Mapping.t -> string
(** ASCII rendering of the accumulated stress map (Fig. 2a style). *)
