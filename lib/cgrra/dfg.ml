module Invariant = Agingfp_util.Invariant
type t = {
  ops : Op.t array;
  preds : int list array;
  succs : int list array;
  topo : int array;
}

let compute_topo n preds succs =
  (* Kahn's algorithm; detects cycles. *)
  let indeg = Array.map List.length preds in
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let order = Array.make n (-1) in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order.(!k) <- u;
    incr k;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      succs.(u)
  done;
  if !k <> n then Invariant.invalid ~where:"Dfg.create" "graph has a cycle";
  order

let create ~ops ~edges =
  let n = Array.length ops in
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  let seen = Hashtbl.create (List.length edges) in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        Invariant.invalid ~where:"Dfg.create" "edge endpoint out of range";
      if u = v then Invariant.invalid ~where:"Dfg.create" "self edge";
      if Hashtbl.mem seen (u, v) then Invariant.invalid ~where:"Dfg.create" "duplicate edge";
      Hashtbl.add seen (u, v) ();
      succs.(u) <- v :: succs.(u);
      preds.(v) <- u :: preds.(v))
    edges;
  let topo = compute_topo n preds succs in
  { ops; preds; succs; topo }

let num_ops t = Array.length t.ops

let num_edges t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.succs

let op t i = t.ops.(i)
let ops t = Array.copy t.ops

let preds t i = t.preds.(i)
let succs t i = t.succs.(i)

let sources t =
  let acc = ref [] in
  for i = num_ops t - 1 downto 0 do
    if t.preds.(i) = [] then acc := i :: !acc
  done;
  !acc

let sinks t =
  let acc = ref [] in
  for i = num_ops t - 1 downto 0 do
    if t.succs.(i) = [] then acc := i :: !acc
  done;
  !acc

let topological_order t = Array.copy t.topo

let iter_edges t f =
  Array.iteri (fun u vs -> List.iter (fun v -> f u v) vs) t.succs

let pp ppf t =
  Format.fprintf ppf "dfg: %d ops, %d edges" (num_ops t) (num_edges t)
