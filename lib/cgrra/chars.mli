(** Device characterization: delays, clock, wire model.

    Default numbers follow the paper (§III and §V.B): ALU delay
    0.87 ns, DMU delay 3.14 ns, HLS target frequency 200 MHz (5 ns
    clock). The unit wire delay is the buffered-wire proportionality
    constant between Manhattan length (in PE pitches) and delay. *)

type t = {
  alu_delay_ns : float;
  dmu_delay_ns : float;
  io_delay_ns : float;      (** port ops: small pass-through delay *)
  clock_period_ns : float;
  unit_wire_delay_ns : float;  (** delay per PE-pitch of buffered wire *)
}

val default : t
(** ALU 0.87 ns, DMU 3.14 ns, clock 5 ns (200 MHz), I/O 0.30 ns,
    unit wire delay 0.12 ns per PE pitch. *)

val pe_delay_ns : t -> Op.t -> float
(** Combinational delay of the engaged PE unit. The characterized
    ALU/DMU figure is scaled by operation class (a multiply engages
    the ALU longer than a logic op) and bitwidth, reflecting the
    paper's remark that different operations of different bitwidths
    produce different stress times. *)

val stress_rate : t -> Op.t -> float
(** Duty cycle SR = engaged-unit delay / clock period (paper §III).
    Always in (0, 1] for a well-formed characterization. *)

val wire_delay_ns : t -> int -> float
(** [wire_delay_ns t len] is the buffered-wire delay of a route of
    Manhattan length [len] (in PE pitches). *)
