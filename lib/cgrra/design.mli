(** A complete multi-context design: fabric + one DFG per context +
    device characterization.

    This is the object handed from the "commercial flow" stand-in
    (HLS + placer) to the aging-aware floorplanner. *)

type t

val create : ?chars:Chars.t -> name:string -> fabric:Fabric.t -> Dfg.t array -> t
(** [create ~name ~fabric contexts] — @raise Invalid_argument if any
    context has more operations than the fabric has PEs, or there are
    no contexts. [chars] defaults to {!Chars.default}. *)

val name : t -> string
val fabric : t -> Fabric.t
val chars : t -> Chars.t
val num_contexts : t -> int
val context : t -> int -> Dfg.t
val contexts : t -> Dfg.t array

val total_ops : t -> int
(** Σ over contexts of the context's operation count — the paper's
    "PE#" column in Table I. *)

val utilization : t -> float
(** [total_ops / (num_contexts * num_pes)] — the fabric usage rate
    that Table I's super-columns (low/medium/high) are bucketed by. *)

val pp : Format.formatter -> t -> unit
