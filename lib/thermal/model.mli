(** Compact grid thermal model — the HotSpot 6.0 stand-in.

    Each PE is an RC node with a lateral conductance to its four grid
    neighbours and a vertical conductance through the package to
    ambient. Steady state solves the system [G T = P + g_v T_amb]
    through one reusable sparse LU factorization of [G]
    ({!steady_solver}); a transient forward-Euler mode is provided for
    completeness. Because a context switch happens every clock cycle
    (ns) while thermal time constants are ms, the steady-state input
    is the time-averaged power over all contexts (DESIGN.md §6). *)

open Agingfp_cgrra

type params = {
  ambient_k : float;       (** ambient/package temperature, Kelvin *)
  g_vertical : float;      (** PE-to-ambient conductance, W/K *)
  g_lateral : float;       (** PE-to-neighbour conductance, W/K *)
  p_active : float;        (** PE power at 100% duty, W *)
  p_leak : float;          (** idle leakage power, W *)
  capacitance : float;     (** per-node thermal capacitance, J/K *)
}

val default_params : params

val power_map : ?params:params -> Design.t -> Mapping.t -> float array
(** Per-PE time-averaged power: [p_leak + p_active * duty], where
    duty is the accumulated stress divided by the context count. *)

val steady_state : ?params:params -> dim:int -> float array -> float array
(** [steady_state ~dim power] returns per-PE steady temperatures (K)
    on a [dim × dim] grid. [power] has [dim * dim] entries. *)

val steady_solver :
  ?params:params -> dim:int -> unit -> float array -> float array
(** [steady_solver ~dim ()] factorizes the conductance matrix once and
    returns a solver closure: each application is one pair of
    triangular solves. {!per_context_temperatures} uses it to share a
    single factor across all per-context solves. *)

val transient :
  ?params:params ->
  dim:int ->
  power:float array ->
  t0:float array ->
  dt:float ->
  int ->
  float array
(** [transient ~dim ~power ~t0 ~dt steps] runs forward Euler from
    initial temperatures [t0]. [dt] must
    satisfy the stability bound [dt < C / (4 g_lateral + g_vertical)];
    @raise Invalid_argument otherwise. *)

val pe_temperatures : ?params:params -> Design.t -> Mapping.t -> float array
(** Convenience: power map from the mapping's stress profile, then
    steady state. This is the per-PE temperature used in the MTTF
    computation (paper §III). *)

val per_context_temperatures :
  ?params:params -> Design.t -> Mapping.t -> float array array
(** A thermal map per context (as HotSpot produces in the paper's
    flow): steady state under each context's own power profile. *)

val heatmap : dim:int -> float array -> string
(** ASCII rendering in °C. *)
