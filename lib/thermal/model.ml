open Agingfp_cgrra
module Matrix = Agingfp_linalg.Matrix
module Solve = Agingfp_linalg.Solve
module Ascii_table = Agingfp_util.Ascii_table

module Invariant = Agingfp_util.Invariant
type params = {
  ambient_k : float;
  g_vertical : float;
  g_lateral : float;
  p_active : float;
  p_leak : float;
  capacitance : float;
}

let default_params =
  {
    ambient_k = 318.15;      (* 45 C package *)
    g_vertical = 0.005;      (* ~35 K rise for a fully active PE *)
    g_lateral = 0.010;
    p_active = 0.16;
    p_leak = 0.012;
    capacitance = 0.02;
  }

let neighbours dim i =
  let x = i mod dim and y = i / dim in
  List.filter_map
    (fun (dx, dy) ->
      let nx = x + dx and ny = y + dy in
      if nx >= 0 && nx < dim && ny >= 0 && ny < dim then Some ((ny * dim) + nx) else None)
    [ (1, 0); (-1, 0); (0, 1); (0, -1) ]

let conductance_matrix params dim =
  let n = dim * dim in
  let g = Matrix.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    Matrix.add_to g i i params.g_vertical;
    List.iter
      (fun j ->
        Matrix.add_to g i i params.g_lateral;
        Matrix.add_to g i j (-.params.g_lateral))
      (neighbours dim i)
  done;
  g

(* The conductance matrix depends only on [params] and [dim], so one
   sparse LU factorization serves every steady-state solve on the same
   grid — the per-context path below re-solves it num_contexts times. *)
let steady_solver ?(params = default_params) ~dim () =
  let n = dim * dim in
  let g = conductance_matrix params dim in
  let f = Solve.factorize g in
  fun power ->
    if Array.length power <> n then Invariant.invalid ~where:"Thermal.steady_state" "power size mismatch";
    let rhs = Array.map (fun p -> p +. (params.g_vertical *. params.ambient_k)) power in
    Solve.solve_factored f rhs

let steady_state ?(params = default_params) ~dim power =
  steady_solver ~params ~dim () power

let transient ?(params = default_params) ~dim ~power ~t0 ~dt steps =
  let n = dim * dim in
  if Array.length power <> n || Array.length t0 <> n then
    Invariant.invalid ~where:"Thermal.transient" "size mismatch";
  let stability = params.capacitance /. ((4.0 *. params.g_lateral) +. params.g_vertical) in
  if dt >= stability then Invariant.invalid ~where:"Thermal.transient" "dt violates stability bound";
  let t = Array.copy t0 in
  let next = Array.make n 0.0 in
  for _ = 1 to steps do
    for i = 0 to n - 1 do
      let flow_out = params.g_vertical *. (t.(i) -. params.ambient_k) in
      let lateral =
        List.fold_left
          (fun acc j -> acc +. (params.g_lateral *. (t.(i) -. t.(j))))
          0.0 (neighbours dim i)
      in
      next.(i) <- t.(i) +. (dt /. params.capacitance *. (power.(i) -. flow_out -. lateral))
    done;
    Array.blit next 0 t 0 n
  done;
  t

let power_map ?(params = default_params) design mapping =
  let acc = Stress.accumulated design mapping in
  let c = float_of_int (Design.num_contexts design) in
  Array.map (fun s -> params.p_leak +. (params.p_active *. (s /. c))) acc

let pe_temperatures ?(params = default_params) design mapping =
  let dim = Fabric.dim (Design.fabric design) in
  steady_state ~params ~dim (power_map ~params design mapping)

let per_context_temperatures ?(params = default_params) design mapping =
  let dim = Fabric.dim (Design.fabric design) in
  let solve = steady_solver ~params ~dim () in
  Array.map
    (fun ctx_stress ->
      let power = Array.map (fun s -> params.p_leak +. (params.p_active *. s)) ctx_stress in
      solve power)
    (Stress.per_context design mapping)

let heatmap ~dim temps =
  Ascii_table.render_grid ~w:dim ~h:dim (fun x y ->
      Printf.sprintf "%5.1f" (temps.((y * dim) + x) -. 273.15))
