open Agingfp_cgrra

type graph = Graph.t = { ops : Op.t array; edges : (int * int) list }

(* Elaboration result for one expression: either a graph node or a
   folded compile-time constant. *)
type value = Node of int | Const of int

let kind_of_binop (op : Ast.binop) : Op.kind =
  match op with
  | Ast.Add -> Op.Add
  | Ast.Sub -> Op.Sub
  | Ast.Mul -> Op.Mul
  | Ast.And -> Op.And_
  | Ast.Or -> Op.Or_
  | Ast.Xor -> Op.Xor_
  | Ast.Shl | Ast.Shr -> Op.Shift
  | Ast.Lt | Ast.Gt | Ast.Eq -> Op.Cmp

let fold_binop (op : Ast.binop) a b =
  match op with
  | Ast.Add -> a + b
  | Ast.Sub -> a - b
  | Ast.Mul -> a * b
  | Ast.And -> a land b
  | Ast.Or -> a lor b
  | Ast.Xor -> a lxor b
  | Ast.Shl -> a lsl min b 62
  | Ast.Shr -> a asr min b 62
  | Ast.Lt -> if a < b then 1 else 0
  | Ast.Gt -> if a > b then 1 else 0
  | Ast.Eq -> if a = b then 1 else 0

let const_width v =
  let v = abs v in
  let rec bits acc n = if n = 0 then max acc 8 else bits (acc + 1) (n lsr 1) in
  min 32 (bits 0 v)

exception Elab_error of string

let elaborate program =
  let nodes = ref [] in
  let nnodes = ref 0 in
  let edges = ref [] in
  let widths = Hashtbl.create 64 in
  let env = Hashtbl.create 64 in
  let fresh kind bw preds =
    let id = !nnodes in
    incr nnodes;
    nodes := Op.make ~id ~kind ~bitwidth:bw :: !nodes;
    Hashtbl.replace widths id bw;
    (* An op consuming the same value on both operands is one wire. *)
    List.iter
      (fun p -> edges := (p, id) :: !edges)
      (List.sort_uniq Int.compare preds);
    id
  in
  let width_of = function Node id -> Hashtbl.find widths id | Const v -> const_width v in
  let rec eval expr =
    match expr with
    | Ast.Int v -> Const v
    | Ast.Var name -> (
      match Hashtbl.find_opt env name with
      | Some v -> v
      | None -> raise (Elab_error (Printf.sprintf "undefined name %s" name)))
    | Ast.Binop (op, a, b) -> (
      match (eval a, eval b) with
      | Const x, Const y -> Const (fold_binop op x y)
      | (va, vb) -> (
        let bw = max (width_of va) (width_of vb) in
        let preds =
          List.filter_map (function Node id -> Some id | Const _ -> None) [ va; vb ]
        in
        Node (fresh (kind_of_binop op) bw preds)))
    | Ast.Select (c, a, b) -> (
      match eval c with
      | Const v -> if v <> 0 then eval a else eval b
      | Node cid -> (
        let va = eval a and vb = eval b in
        let bw = max (width_of va) (width_of vb) in
        let preds =
          cid :: List.filter_map (function Node id -> Some id | Const _ -> None) [ va; vb ]
        in
        Node (fresh Op.Mux bw preds)))
  in
  try
    List.iter
      (fun stmt ->
        match stmt with
        | Ast.Input (name, bw) ->
          if Hashtbl.mem env name then
            raise (Elab_error (Printf.sprintf "duplicate name %s" name));
          Hashtbl.replace env name (Node (fresh Op.Input bw []))
        | Ast.Let (name, expr) ->
          if Hashtbl.mem env name then
            raise (Elab_error (Printf.sprintf "duplicate name %s" name));
          Hashtbl.replace env name (eval expr)
        | Ast.Output (name, expr) -> (
          if Hashtbl.mem env name then
            raise (Elab_error (Printf.sprintf "duplicate name %s" name));
          match eval expr with
          | Const _ -> raise (Elab_error (Printf.sprintf "output %s is a constant" name))
          | Node id ->
            let bw = Hashtbl.find widths id in
            Hashtbl.replace env name (Node (fresh Op.Output bw [ id ]))))
      program;
    if !nnodes = 0 then Error "empty program"
    else begin
      let has_output =
        List.exists (fun (o : Op.t) -> o.Op.kind = Op.Output) !nodes
      in
      if not has_output then Error "program has no outputs"
      else Ok { Graph.ops = Array.of_list (List.rev !nodes); edges = List.rev !edges }
    end
  with Elab_error msg -> Error msg

let schedule ?(chars = Chars.default) ?(wire_estimate = 1.5) ~fabric ~name graph =
  let n = Array.length graph.ops in
  let capacity = Fabric.num_pes fabric in
  let budget = chars.Chars.clock_period_ns in
  let hop = wire_estimate *. chars.Chars.unit_wire_delay_ns in
  let preds = Array.make n [] in
  List.iter (fun (u, v) -> preds.(v) <- u :: preds.(v)) graph.edges;
  (* Kahn topological order over the whole program graph. *)
  let succs = Array.make n [] in
  List.iter (fun (u, v) -> succs.(u) <- v :: succs.(u)) graph.edges;
  let indeg = Array.map List.length preds in
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let topo = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    topo := u :: !topo;
    incr seen;
    List.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      succs.(u)
  done;
  if !seen <> n then Error "dataflow graph has a cycle"
  else begin
    let topo = List.rev !topo in
    let ctx_of = Array.make n (-1) in
    let arrival = Array.make n 0.0 in
    let count = Hashtbl.create 16 in
    let ctx_count c = try Hashtbl.find count c with Not_found -> 0 in
    let error = ref None in
    List.iter
      (fun op ->
        if !error = None then begin
          let delay = Chars.pe_delay_ns chars graph.ops.(op) in
          let earliest =
            List.fold_left (fun acc p -> max acc ctx_of.(p)) 0 preds.(op)
          in
          (* First context where both the PE budget and the timing
             budget hold. Predecessors in earlier contexts are
             registered, contributing no combinational delay. *)
          let rec place c =
            if c > earliest + n then begin
              error := Some "operation chain does not fit any context";
              ()
            end
            else begin
              let arr =
                List.fold_left
                  (fun acc p ->
                    if ctx_of.(p) = c then max acc (arrival.(p) +. hop) else acc)
                  0.0 preds.(op)
                +. delay
              in
              if arr > budget && arr > delay then place (c + 1)
              else if arr > budget then
                error := Some "single operation exceeds the clock period"
              else if ctx_count c >= capacity then place (c + 1)
              else begin
                ctx_of.(op) <- c;
                arrival.(op) <- arr;
                Hashtbl.replace count c (ctx_count c + 1)
              end
            end
          in
          place earliest
        end)
      topo;
    match !error with
    | Some msg -> Error msg
    | None ->
      let ncontexts = 1 + Array.fold_left max 0 ctx_of in
      (* Renumber ops per context and keep only intra-context edges. *)
      let local_id = Array.make n (-1) in
      let per_ctx_ops = Array.make ncontexts [] in
      List.iter
        (fun op ->
          let c = ctx_of.(op) in
          per_ctx_ops.(c) <- op :: per_ctx_ops.(c))
        (List.rev topo);
      let contexts =
        Array.mapi
          (fun c members ->
            let members = Array.of_list members in
            Array.iteri (fun i op -> local_id.(op) <- i) members;
            let ops =
              Array.mapi
                (fun i op ->
                  let o = graph.ops.(op) in
                  Op.make ~id:i ~kind:o.Op.kind ~bitwidth:o.Op.bitwidth)
                members
            in
            let edges =
              List.filter_map
                (fun (u, v) ->
                  if ctx_of.(u) = c && ctx_of.(v) = c then
                    Some (local_id.(u), local_id.(v))
                  else None)
                graph.edges
            in
            Dfg.create ~ops ~edges)
          per_ctx_ops
      in
      Ok (Design.create ~chars ~name ~fabric contexts)
  end

let compile ?chars ?(techmap = false) ~fabric ~name source =
  match Parser.parse source with
  | Error msg -> Error msg
  | Ok program -> (
    match elaborate program with
    | Error msg -> Error msg
    | Ok graph ->
      let graph = if techmap then fst (Techmap.fuse graph) else graph in
      schedule ?chars ~fabric ~name graph)
