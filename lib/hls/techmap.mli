(** Technology mapping onto the PE micro-architecture.

    The STP-style PE contains an ALU feeding a DMU in series, so an
    arithmetic operation whose only consumer is a data-manipulation
    operation can execute inside a single PE in one cycle (the paper's
    Phase 1 includes exactly this "technology mapping onto the PEs").
    Fusing such pairs reduces the operation count — hence PE demand
    and inter-PE wires — at the cost of a longer per-PE engaged path
    (the fused op stresses both units).

    The pass is a greedy, non-overlapping rewrite over the
    whole-program dataflow graph, applied between elaboration and
    scheduling. *)

val fuse : Graph.t -> Graph.t * int
(** [fuse g] merges every ALU-class node whose single consumer is a
    (non-fused) DMU-class compute node into that consumer, which
    becomes an {!Op.Fused} node inheriting both operand sets. Returns
    the rewritten graph and the number of pairs fused. Node ids are
    re-densified. *)

val fusible_pairs : Graph.t -> (int * int) list
(** The (producer, consumer) pairs {!fuse} would merge — exposed for
    reports and tests. *)
