open Agingfp_cgrra

type t = { ops : Op.t array; edges : (int * int) list }

let _ = fun (t : t) -> t.ops
