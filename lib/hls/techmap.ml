open Agingfp_cgrra

let is_alu_compute (o : Op.t) =
  (not (Op.is_io o.Op.kind)) && Op.unit_of_kind o.Op.kind = Op.Alu

let is_dmu_compute (o : Op.t) =
  (not (Op.is_io o.Op.kind))
  && Op.unit_of_kind o.Op.kind = Op.Dmu
  && o.Op.kind <> Op.Fused

let fusible_pairs (g : Graph.t) =
  let n = Array.length g.Graph.ops in
  let succs = Array.make n [] in
  List.iter (fun (u, v) -> succs.(u) <- v :: succs.(u)) g.Graph.edges;
  let taken = Array.make n false in
  let pairs = ref [] in
  for u = 0 to n - 1 do
    if (not taken.(u)) && is_alu_compute g.Graph.ops.(u) then begin
      match succs.(u) with
      | [ v ] when (not taken.(v)) && is_dmu_compute g.Graph.ops.(v) ->
        taken.(u) <- true;
        taken.(v) <- true;
        pairs := (u, v) :: !pairs
      | _ -> ()
    end
  done;
  List.rev !pairs

let fuse (g : Graph.t) =
  let pairs = fusible_pairs g in
  if pairs = [] then (g, 0)
  else begin
    let n = Array.length g.Graph.ops in
    (* producer -> consumer it melts into; consumers become Fused. *)
    let melted_into = Array.make n (-1) in
    let becomes_fused = Array.make n false in
    List.iter
      (fun (u, v) ->
        melted_into.(u) <- v;
        becomes_fused.(v) <- true)
      pairs;
    (* Dense renumbering of surviving nodes. *)
    let new_id = Array.make n (-1) in
    let next = ref 0 in
    for i = 0 to n - 1 do
      if melted_into.(i) < 0 then begin
        new_id.(i) <- !next;
        incr next
      end
    done;
    let ops =
      Array.of_list
        (List.filter_map
           (fun i ->
             if melted_into.(i) < 0 then begin
               let o = g.Graph.ops.(i) in
               let kind = if becomes_fused.(i) then Op.Fused else o.Op.kind in
               Some (Op.make ~id:new_id.(i) ~kind ~bitwidth:o.Op.bitwidth)
             end
             else None)
           (List.init n (fun i -> i)))
    in
    (* Re-target edges: the producer's inputs feed the fused node; the
       producer->consumer edge disappears. *)
    let target i = if melted_into.(i) >= 0 then melted_into.(i) else i in
    let edges =
      List.filter_map
        (fun (u, v) ->
          let v' = target v in
          let u' = target u in
          if u' = v' then None (* the melted edge itself *)
          else Some (new_id.(u'), new_id.(v')))
        g.Graph.edges
    in
    let edges = List.sort_uniq compare edges in
    ({ Graph.ops; edges }, List.length pairs)
  end
