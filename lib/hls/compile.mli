(** Elaboration + scheduling: the HLS phase of the paper's flow.

    [elaborate] lowers a parsed program to one whole-program dataflow
    graph (constant folding included — literals configure operations
    rather than occupying PEs). [schedule] then divides it into
    contexts under the two resources that define a multi-context
    CGRRA: PE count per context, and the single-cycle path-delay
    budget ("the number of contexts is determined by the desired
    latency of the circuit and vice versa", §II). Values crossing a
    context boundary are held in PE registers, so a consumer in a
    later context starts a fresh combinational path. *)

open Agingfp_cgrra

type graph = Graph.t = {
  ops : Op.t array;
  edges : (int * int) list;  (** producer → consumer *)
}

val elaborate : Ast.program -> (graph, string) result
(** Errors: undefined or duplicated names, outputs of constants,
    empty programs. *)

val schedule :
  ?chars:Chars.t ->
  ?wire_estimate:float ->
  fabric:Fabric.t ->
  name:string ->
  graph ->
  (Design.t, string) result
(** Resource- and timing-constrained list scheduling.
    [wire_estimate] (default 1.5) is the assumed Manhattan hop length
    used while budgeting intra-context paths before placement.
    Fails when a single operation chain cannot fit any context. *)

val compile :
  ?chars:Chars.t ->
  ?techmap:bool ->
  fabric:Fabric.t ->
  name:string ->
  string ->
  (Design.t, string) result
(** Parse, elaborate, optionally technology-map ({!Techmap.fuse},
    [techmap] defaults to false) and schedule a source string. *)
