(** Recursive-descent parser for the behavioural DSL.

    Syntax (one statement per [;]):
    {v
      input  x : 16;          // bitwidth optional, default 32
      let    t = x * 3 + y;
      output o = t >> 2;
      // line comments
    v}

    Operators by increasing precedence: [?:], [|], [^], [&],
    [< > ==], [<< >>], [+ -], [*]; parentheses as usual. *)

val parse : string -> (Ast.program, string) result
(** Errors carry a line number and a short description. *)
