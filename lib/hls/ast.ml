type binop = Add | Sub | Mul | And | Or | Xor | Shl | Shr | Lt | Gt | Eq

type expr =
  | Int of int
  | Var of string
  | Binop of binop * expr * expr
  | Select of expr * expr * expr

type stmt = Input of string * int | Let of string * expr | Output of string * expr

type program = stmt list

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt -> "<"
  | Gt -> ">"
  | Eq -> "=="

let rec pp_expr ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Var v -> Format.pp_print_string ppf v
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_to_string op) pp_expr b
  | Select (c, a, b) -> Format.fprintf ppf "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b

let pp_stmt ppf = function
  | Input (n, w) -> Format.fprintf ppf "input %s : %d;" n w
  | Let (n, e) -> Format.fprintf ppf "let %s = %a;" n pp_expr e
  | Output (n, e) -> Format.fprintf ppf "output %s = %a;" n pp_expr e

let pp_program ppf p =
  List.iteri
    (fun i s ->
      if i > 0 then Format.pp_print_newline ppf ();
      pp_stmt ppf s)
    p
