(** The whole-program dataflow graph shared by elaboration,
    technology mapping and scheduling. *)

open Agingfp_cgrra

type t = {
  ops : Op.t array;
  edges : (int * int) list;  (** producer → consumer *)
}
