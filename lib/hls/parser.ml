type token =
  | Tident of string
  | Tint of int
  | Tinput
  | Tlet
  | Toutput
  | Tcolon
  | Tsemi
  | Tcomma
  | Teq        (* = *)
  | Teqeq      (* == *)
  | Tplus
  | Tminus
  | Tstar
  | Tamp
  | Tbar
  | Tcaret
  | Tlt
  | Tgt
  | Tshl
  | Tshr
  | Tquestion
  | Tlparen
  | Trparen
  | Teof

exception Error of string

let fail line msg = raise (Error (Printf.sprintf "line %d: %s" line msg))

(* ---------- lexer ---------- *)

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let emit t = tokens := (t, !line) :: !tokens in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    (match c with
    | ' ' | '\t' | '\r' -> incr i
    | '\n' ->
      incr line;
      incr i
    | '/' when peek 1 = Some '/' ->
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    | '0' .. '9' ->
      let start = !i in
      while !i < n && (match src.[!i] with '0' .. '9' -> true | _ -> false) do
        incr i
      done;
      emit (Tint (int_of_string (String.sub src start (!i - start))))
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
      let start = !i in
      while
        !i < n
        && match src.[!i] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false
      do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      emit
        (match word with
        | "input" -> Tinput
        | "let" -> Tlet
        | "output" -> Toutput
        | _ -> Tident word)
    | ';' ->
      emit Tsemi;
      incr i
    | ',' ->
      emit Tcomma;
      incr i
    | ':' ->
      emit Tcolon;
      incr i
    | '?' ->
      emit Tquestion;
      incr i
    | '(' ->
      emit Tlparen;
      incr i
    | ')' ->
      emit Trparen;
      incr i
    | '+' ->
      emit Tplus;
      incr i
    | '-' ->
      emit Tminus;
      incr i
    | '*' ->
      emit Tstar;
      incr i
    | '&' ->
      emit Tamp;
      incr i
    | '|' ->
      emit Tbar;
      incr i
    | '^' ->
      emit Tcaret;
      incr i
    | '=' when peek 1 = Some '=' ->
      emit Teqeq;
      i := !i + 2
    | '=' ->
      emit Teq;
      incr i
    | '<' when peek 1 = Some '<' ->
      emit Tshl;
      i := !i + 2
    | '<' ->
      emit Tlt;
      incr i
    | '>' when peek 1 = Some '>' ->
      emit Tshr;
      i := !i + 2
    | '>' ->
      emit Tgt;
      incr i
    | c -> fail !line (Printf.sprintf "unexpected character %C" c))
  done;
  emit Teof;
  List.rev !tokens

(* ---------- parser ---------- *)

type state = { mutable toks : (token * int) list }

let current st = match st.toks with [] -> (Teof, 0) | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: tl -> st.toks <- tl

let expect st tok msg =
  let t, ln = current st in
  if t = tok then advance st else fail ln msg

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let cond = parse_or st in
  match current st with
  | Tquestion, _ ->
    advance st;
    let a = parse_expr st in
    (match current st with
    | Tcolon, _ ->
      advance st;
      let b = parse_expr st in
      Ast.Select (cond, a, b)
    | _, ln -> fail ln "expected ':' in conditional")
  | _ -> cond

and parse_or st =
  let rec loop acc =
    match current st with
    | Tbar, _ ->
      advance st;
      loop (Ast.Binop (Ast.Or, acc, parse_xor st))
    | _ -> acc
  in
  loop (parse_xor st)

and parse_xor st =
  let rec loop acc =
    match current st with
    | Tcaret, _ ->
      advance st;
      loop (Ast.Binop (Ast.Xor, acc, parse_and st))
    | _ -> acc
  in
  loop (parse_and st)

and parse_and st =
  let rec loop acc =
    match current st with
    | Tamp, _ ->
      advance st;
      loop (Ast.Binop (Ast.And, acc, parse_cmp st))
    | _ -> acc
  in
  loop (parse_cmp st)

and parse_cmp st =
  let lhs = parse_shift st in
  match current st with
  | Tlt, _ ->
    advance st;
    Ast.Binop (Ast.Lt, lhs, parse_shift st)
  | Tgt, _ ->
    advance st;
    Ast.Binop (Ast.Gt, lhs, parse_shift st)
  | Teqeq, _ ->
    advance st;
    Ast.Binop (Ast.Eq, lhs, parse_shift st)
  | _ -> lhs

and parse_shift st =
  let rec loop acc =
    match current st with
    | Tshl, _ ->
      advance st;
      loop (Ast.Binop (Ast.Shl, acc, parse_add st))
    | Tshr, _ ->
      advance st;
      loop (Ast.Binop (Ast.Shr, acc, parse_add st))
    | _ -> acc
  in
  loop (parse_add st)

and parse_add st =
  let rec loop acc =
    match current st with
    | Tplus, _ ->
      advance st;
      loop (Ast.Binop (Ast.Add, acc, parse_mul st))
    | Tminus, _ ->
      advance st;
      loop (Ast.Binop (Ast.Sub, acc, parse_mul st))
    | _ -> acc
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop acc =
    match current st with
    | Tstar, _ ->
      advance st;
      loop (Ast.Binop (Ast.Mul, acc, parse_primary st))
    | _ -> acc
  in
  loop (parse_primary st)

and parse_primary st =
  match current st with
  | Tint v, _ ->
    advance st;
    Ast.Int v
  | Tident v, _ ->
    advance st;
    Ast.Var v
  | Tlparen, _ ->
    advance st;
    let e = parse_expr st in
    expect st Trparen "expected ')'";
    e
  | Tminus, _ ->
    (* Unary minus on a literal only. *)
    advance st;
    (match current st with
    | Tint v, _ ->
      advance st;
      Ast.Int (-v)
    | _, ln -> fail ln "unary '-' applies to literals only")
  | _, ln -> fail ln "expected expression"

let parse_stmt st =
  match current st with
  | Tinput, _ ->
    advance st;
    let rec names acc =
      match current st with
      | Tident n, _ ->
        advance st;
        let width =
          match current st with
          | Tcolon, _ ->
            advance st;
            (match current st with
            | Tint w, ln ->
              advance st;
              if w <= 0 || w > 64 then fail ln "bitwidth out of range";
              w
            | _, ln -> fail ln "expected bitwidth")
          | _ -> 32
        in
        let acc = Ast.Input (n, width) :: acc in
        (match current st with
        | Tcomma, _ ->
          advance st;
          names acc
        | _ -> acc)
      | _, ln -> fail ln "expected input name"
    in
    let decls = List.rev (names []) in
    expect st Tsemi "expected ';'";
    decls
  | Tlet, _ ->
    advance st;
    (match current st with
    | Tident n, _ ->
      advance st;
      expect st Teq "expected '='";
      let e = parse_expr st in
      expect st Tsemi "expected ';'";
      [ Ast.Let (n, e) ]
    | _, ln -> fail ln "expected identifier after 'let'")
  | Toutput, _ ->
    advance st;
    (match current st with
    | Tident n, _ ->
      advance st;
      expect st Teq "expected '='";
      let e = parse_expr st in
      expect st Tsemi "expected ';'";
      [ Ast.Output (n, e) ]
    | _, ln -> fail ln "expected identifier after 'output'")
  | _, ln -> fail ln "expected 'input', 'let' or 'output'"

let parse src =
  try
    let st = { toks = tokenize src } in
    let rec loop acc =
      match current st with
      | Teof, _ -> List.rev acc
      | _ -> loop (List.rev_append (parse_stmt st) acc)
    in
    Ok (loop [])
  with Error msg -> Result.Error msg
