(** Abstract syntax of the behavioural input language.

    A deliberately small, synthesizable subset of C expressions —
    straight-line dataflow over declared inputs, intermediate [let]
    bindings and [output] assignments — mirroring the ANSI-C entry
    point of the paper's CAD flow (Fig. 1, Fig. 3). *)

type binop =
  | Add
  | Sub
  | Mul
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Gt
  | Eq

type expr =
  | Int of int                      (** literal, folded into ops *)
  | Var of string
  | Binop of binop * expr * expr
  | Select of expr * expr * expr    (** c ? a : b — a DMU mux *)

type stmt =
  | Input of string * int           (** name, bitwidth *)
  | Let of string * expr
  | Output of string * expr

type program = stmt list

val pp_expr : Format.formatter -> expr -> unit
val pp_program : Format.formatter -> program -> unit
