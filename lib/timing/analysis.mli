(** Static timing analysis on placed contexts — the stand-in for the
    paper's "commercial timing analysis tool".

    Path delay follows Eq. (4): the sum of PE-internal delays along
    the path plus buffered-wire delays, each wire delay being the
    unit wire delay times the Manhattan distance between the driver
    PE and the load PE on the path. Only the driver→load hop on the
    path of interest matters (fanout shielding, §V.B). *)

open Agingfp_cgrra

type path = {
  ctx : int;
  nodes : int array;  (** DFG node ids, source to sink *)
  delay_ns : float;   (** total path delay under the analyzed mapping *)
}

val node_delay : Design.t -> ctx:int -> op:int -> float
(** PE-internal delay of one operation. *)

val pe_delay_sum : Design.t -> path -> float
(** Σ PEdelay over the path's operations (mapping-independent). *)

val wire_length : Design.t -> Mapping.t -> path -> int
(** Total Manhattan wire length along the path, in PE pitches. *)

val path_delay : Design.t -> Mapping.t -> path -> float
(** Recompute the delay of [path]'s node sequence under a (possibly
    different) mapping. *)

val context_cpd : Design.t -> Mapping.t -> int -> float
(** Longest source→sink path delay within one context (DAG DP). *)

val cpd : Design.t -> Mapping.t -> float
(** Critical path delay of the design: the max over contexts —
    the paper's CPD. *)

val k_longest : Design.t -> Mapping.t -> ctx:int -> ?min_delay:float -> int -> path list
(** [k_longest d m ~ctx k] enumerates up to [k] source→sink paths of
    context [ctx] in exact non-increasing delay order (best-first
    search with an exact completion bound — the "Dijkstra" path
    filter of Algorithm 1 step 2.2). Stops early when path delay
    drops below [min_delay]. *)

val monitored_paths :
  Design.t -> Mapping.t -> ctx:int -> ?within:float -> ?max_paths:int -> unit -> path list
(** The paper's default path filter: all paths whose delay is within
    [within] (default 0.2, i.e. 20%) of the design CPD, capped at
    [max_paths] (default 64) per context. *)

val critical_paths : Design.t -> Mapping.t -> ctx:int -> path list
(** Paths achieving the context CPD (within a 1e-9 tolerance). *)

val pp_path : Format.formatter -> path -> unit
