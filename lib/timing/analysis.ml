open Agingfp_cgrra
module Heap = Agingfp_util.Heap

type path = { ctx : int; nodes : int array; delay_ns : float }

let node_delay design ~ctx ~op =
  Chars.pe_delay_ns (Design.chars design) (Dfg.op (Design.context design ctx) op)

let wire_ns design len = Chars.wire_delay_ns (Design.chars design) len

let hop_length design mapping ~ctx u v =
  let fabric = Design.fabric design in
  Fabric.distance fabric
    (Mapping.pe_of mapping ~ctx ~op:u)
    (Mapping.pe_of mapping ~ctx ~op:v)

let pe_delay_sum design path =
  Array.fold_left
    (fun acc op -> acc +. node_delay design ~ctx:path.ctx ~op)
    0.0 path.nodes

let wire_length design mapping path =
  let acc = ref 0 in
  for i = 0 to Array.length path.nodes - 2 do
    acc := !acc + hop_length design mapping ~ctx:path.ctx path.nodes.(i) path.nodes.(i + 1)
  done;
  !acc

let path_delay design mapping path =
  pe_delay_sum design path +. wire_ns design (wire_length design mapping path)

(* Longest delay from each node to any sink, inclusive of the node's
   own PE delay: the exact completion bound for best-first search. *)
let delay_to_sink design mapping ctx =
  let dfg = Design.context design ctx in
  let n = Dfg.num_ops dfg in
  let f = Array.make n 0.0 in
  let topo = Dfg.topological_order dfg in
  for i = n - 1 downto 0 do
    let v = topo.(i) in
    let own = node_delay design ~ctx ~op:v in
    let best =
      List.fold_left
        (fun acc s ->
          let d = wire_ns design (hop_length design mapping ~ctx v s) +. f.(s) in
          max acc d)
        0.0 (Dfg.succs dfg v)
    in
    f.(v) <- own +. best
  done;
  f

let context_cpd design mapping ctx =
  let dfg = Design.context design ctx in
  let f = delay_to_sink design mapping ctx in
  List.fold_left (fun acc s -> max acc f.(s)) 0.0 (Dfg.sources dfg)

let cpd design mapping =
  let acc = ref 0.0 in
  for c = 0 to Design.num_contexts design - 1 do
    acc := max !acc (context_cpd design mapping c)
  done;
  !acc

(* Best-first enumeration of source→sink paths in non-increasing
   delay order. A state is a reversed node prefix with [g] the delay
   accumulated strictly before its head, and [bound = g + f(head)]
   the exact best completion. *)
type search_state = { bound : float; g : float; rev_nodes : int list; head : int }

let k_longest design mapping ~ctx ?(min_delay = neg_infinity) k =
  let dfg = Design.context design ctx in
  let f = delay_to_sink design mapping ctx in
  let heap = Heap.create (fun a b -> Float.compare b.bound a.bound) in
  List.iter
    (fun s -> Heap.push heap { bound = f.(s); g = 0.0; rev_nodes = [ s ]; head = s })
    (Dfg.sources dfg);
  let out = ref [] in
  let count = ref 0 in
  let continue = ref true in
  while !continue && !count < k do
    match Heap.pop heap with
    | None -> continue := false
    | Some st ->
      if st.bound < min_delay then continue := false
      else begin
        match Dfg.succs dfg st.head with
        | [] ->
          (* The head is a sink: the bound is the exact path delay. *)
          out :=
            {
              ctx;
              nodes = Array.of_list (List.rev st.rev_nodes);
              delay_ns = st.bound;
            }
            :: !out;
          incr count
        | succs ->
          let own = node_delay design ~ctx ~op:st.head in
          List.iter
            (fun s ->
              let g' =
                st.g +. own +. wire_ns design (hop_length design mapping ~ctx st.head s)
              in
              Heap.push heap
                { bound = g' +. f.(s); g = g'; rev_nodes = s :: st.rev_nodes; head = s })
            succs
      end
  done;
  List.rev !out

let monitored_paths design mapping ~ctx ?(within = 0.2) ?(max_paths = 64) () =
  let design_cpd = cpd design mapping in
  let min_delay = (1.0 -. within) *. design_cpd in
  k_longest design mapping ~ctx ~min_delay max_paths

let critical_paths design mapping ~ctx =
  let ctx_cpd = context_cpd design mapping ctx in
  let paths = k_longest design mapping ~ctx ~min_delay:(ctx_cpd -. 1e-9) 64 in
  List.filter (fun p -> p.delay_ns >= ctx_cpd -. 1e-9) paths

let pp_path ppf p =
  Format.fprintf ppf "ctx %d [%s] %.3f ns" p.ctx
    (String.concat "->" (Array.to_list (Array.map string_of_int p.nodes)))
    p.delay_ns
