(** Sparse LU factorization with approximate-Markowitz pivoting,
    triangular solves, and product-form (eta) updates.

    The basis kernel of the revised simplex ({!Agingfp_lp} wraps it
    behind [Basis]) and the factor-once/solve-many path of the thermal
    steady-state model. Columns are eliminated left-looking in
    increasing-count order; within a column the pivot row is the
    sparsest row whose magnitude is within a relative threshold of the
    largest, trading bounded pivot growth against fill.

    A factorization [t] represents an [n × n] matrix [A] given by
    columns. {!ftran} solves [A x = b]; {!btran} solves [Aᵀ y = c].
    {!update} replaces one column by appending a product-form eta
    spike; the factors themselves are immutable until the next
    {!factorize}, which also discards the eta file. *)

type t

exception Singular
(** Raised by {!factorize} when no acceptable pivot remains in a
    column, and by {!update} on a (numerically) zero spike pivot. *)

val create : int -> t
(** [create n] allocates a factorization object for [n × n] matrices.
    Nothing is factored yet; the solves raise [Invalid_argument] until
    the first {!factorize}. *)

val dim : t -> int

val factorize : t -> col:(int -> int array * float array) -> unit
(** [factorize t ~col] (re)factors the matrix whose column [j] is the
    sparse vector [col j] ([row indices], [coefficients]); the arrays
    are only read during the call. Resets the eta file.
    @raise Singular if the matrix is (numerically) singular. *)

val ftran : t -> float array -> unit
(** [ftran t b] solves [A x = b] in place: [b] enters indexed by row
    and leaves holding [x] indexed by column, eta file applied. *)

val btran : t -> float array -> unit
(** [btran t c] solves [Aᵀ y = c] in place: [c] enters indexed by
    column and leaves holding [y] indexed by row. *)

val update : t -> r:int -> w:float array -> unit
(** [update t ~r ~w] records the replacement of column [r], where [w]
    is the ftran image [A⁻¹ a] of the incoming column (dense, length
    [n]). @raise Singular if [|w.(r)|] is below the pivot tolerance. *)

(** {1 Kernel accounting} *)

val fill : t -> int
(** Nonzeros stored by the current factors (L + U including the
    diagonal); [0] before the first factorization. *)

val eta_count : t -> int
(** Eta spikes since the last {!factorize}. *)

val eta_nnz : t -> int
(** Total nonzeros across the current eta file. *)

val total_etas : t -> int
(** Eta updates over the lifetime of [t]. *)

val factor_count : t -> int
(** Number of {!factorize} calls on [t]. *)

(** {1 Dense-matrix convenience} *)

val of_matrix : Matrix.t -> t
(** Factorize a dense square matrix (nonzeros are extracted
    column-wise). @raise Singular as {!factorize}. *)

val solve : t -> float array -> float array
(** [solve t b] returns [x] with [A x = b]; [b] is not modified. *)

val solve_transposed : t -> float array -> float array
(** [solve_transposed t c] returns [y] with [Aᵀ y = c]. *)
