module Invariant = Agingfp_util.Invariant
exception Singular

let eps = 1e-12

let lu a0 b =
  let n = Matrix.rows a0 in
  if Matrix.cols a0 <> n then Invariant.invalid ~where:"Solve.lu" "matrix not square";
  if Array.length b <> n then Invariant.invalid ~where:"Solve.lu" "size mismatch";
  let a = Matrix.copy a0 in
  let x = Array.copy b in
  for k = 0 to n - 1 do
    (* Partial pivoting: bring the largest |entry| of column k to row k. *)
    let piv = ref k in
    for i = k + 1 to n - 1 do
      if abs_float (Matrix.get a i k) > abs_float (Matrix.get a !piv k) then piv := i
    done;
    if abs_float (Matrix.get a !piv k) < eps then raise Singular;
    if !piv <> k then begin
      Matrix.swap_rows a k !piv;
      let t = x.(k) in
      x.(k) <- x.(!piv);
      x.(!piv) <- t
    end;
    let akk = Matrix.get a k k in
    for i = k + 1 to n - 1 do
      let f = Matrix.get a i k /. akk in
      if not (Float.equal f 0.0) then begin
        Matrix.axpy_row a ~src:k ~dst:i (-.f);
        x.(i) <- x.(i) -. (f *. x.(k))
      end
    done
  done;
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Matrix.get a i j *. x.(j))
    done;
    x.(i) <- !acc /. Matrix.get a i i
  done;
  x

let cholesky a b =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then Invariant.invalid ~where:"Solve.cholesky" "matrix not square";
  if Array.length b <> n then Invariant.invalid ~where:"Solve.cholesky" "size mismatch";
  let l = Matrix.create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref (Matrix.get a i j) in
      for k = 0 to j - 1 do
        acc := !acc -. (Matrix.get l i k *. Matrix.get l j k)
      done;
      if i = j then begin
        if !acc <= 0.0 then raise Singular;
        Matrix.set l i j (sqrt !acc)
      end
      else Matrix.set l i j (!acc /. Matrix.get l j j)
    done
  done;
  (* Forward substitution: L y = b. *)
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let acc = ref b.(i) in
    for k = 0 to i - 1 do
      acc := !acc -. (Matrix.get l i k *. y.(k))
    done;
    y.(i) <- !acc /. Matrix.get l i i
  done;
  (* Back substitution: L^T x = y. *)
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for k = i + 1 to n - 1 do
      acc := !acc -. (Matrix.get l k i *. x.(k))
    done;
    x.(i) <- !acc /. Matrix.get l i i
  done;
  x

let gauss_seidel ?(max_iter = 10_000) ?(tol = 1e-9) a b =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then Invariant.invalid ~where:"Solve.gauss_seidel" "matrix not square";
  if Array.length b <> n then Invariant.invalid ~where:"Solve.gauss_seidel" "size mismatch";
  let x = Array.make n 0.0 in
  let rec iterate iter =
    if iter >= max_iter then x
    else begin
      let delta = ref 0.0 in
      for i = 0 to n - 1 do
        let acc = ref b.(i) in
        for j = 0 to n - 1 do
          if j <> i then acc := !acc -. (Matrix.get a i j *. x.(j))
        done;
        let aii = Matrix.get a i i in
        if abs_float aii < eps then raise Singular;
        let xi = !acc /. aii in
        delta := max !delta (abs_float (xi -. x.(i)));
        x.(i) <- xi
      done;
      if !delta < tol then x else iterate (iter + 1)
    end
  in
  iterate 0

(* Factor-once/solve-many path on the sparse LU kernel: the thermal
   model re-solves one conductance matrix against many power vectors
   (per-context HotSpot-style solves), so the O(n^3)-ish elimination
   must not be repeated per right-hand side. *)

type factor = Lu.t

let factorize a =
  if Matrix.cols a <> Matrix.rows a then Invariant.invalid ~where:"Solve.factorize" "matrix not square";
  try Lu.of_matrix a with Lu.Singular -> raise Singular

let solve_factored f b =
  if Array.length b <> Lu.dim f then Invariant.invalid ~where:"Solve.solve_factored" "size mismatch";
  try Lu.solve f b with Lu.Singular -> raise Singular

let residual_norm a x b =
  let ax = Matrix.mul_vec a x in
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := max !acc (abs_float (v -. b.(i)))) ax;
  !acc
