(** Linear system solvers for the compact thermal model.

    The thermal conductance matrix is symmetric positive definite, so
    Cholesky is the primary path; LU with partial pivoting covers the
    general case; Gauss–Seidel offers an iterative alternative for
    large grids. *)

exception Singular
(** Raised when a factorization encounters a (numerically) zero pivot. *)

val lu : Matrix.t -> float array -> float array
(** [lu a b] solves [a x = b] by LU with partial pivoting. [a] must be
    square; it is not modified. @raise Singular on singular input. *)

val cholesky : Matrix.t -> float array -> float array
(** [cholesky a b] solves [a x = b] for symmetric positive-definite
    [a]. @raise Singular if [a] is not positive definite. *)

val gauss_seidel :
  ?max_iter:int -> ?tol:float -> Matrix.t -> float array -> float array
(** Iterative solve; converges for diagonally dominant systems such as
    grid Laplacians. Defaults: [max_iter = 10_000], [tol = 1e-9]
    (max-norm of the residual update). *)

val residual_norm : Matrix.t -> float array -> float array -> float
(** [residual_norm a x b] is [max_i |(a x - b)_i|]. *)
