(** Linear system solvers for the compact thermal model.

    The thermal steady state is solved through a reusable sparse
    {!Lu} factorization ({!factorize} / {!solve_factored}); dense LU
    with partial pivoting and Cholesky remain as independent reference
    paths (the kernel test-suite cross-checks {!Lu} against them), and
    Gauss–Seidel offers an iterative alternative for large grids. *)

exception Singular
(** Raised when a factorization encounters a (numerically) zero pivot. *)

val lu : Matrix.t -> float array -> float array
(** [lu a b] solves [a x = b] by LU with partial pivoting. [a] must be
    square; it is not modified. @raise Singular on singular input. *)

val cholesky : Matrix.t -> float array -> float array
(** [cholesky a b] solves [a x = b] for symmetric positive-definite
    [a]. @raise Singular if [a] is not positive definite. *)

val gauss_seidel :
  ?max_iter:int -> ?tol:float -> Matrix.t -> float array -> float array
(** Iterative solve; converges for diagonally dominant systems such as
    grid Laplacians. Defaults: [max_iter = 10_000], [tol = 1e-9]
    (max-norm of the residual update). *)

val residual_norm : Matrix.t -> float array -> float array -> float
(** [residual_norm a x b] is [max_i |(a x - b)_i|]. *)

(** {1 Reusable factorizations}

    Built on the sparse {!Lu} kernel: factor a matrix once, then solve
    against many right-hand sides — the thermal model's per-context
    steady-state solves share one conductance factorization. *)

type factor

val factorize : Matrix.t -> factor
(** @raise Singular on (numerically) singular input. *)

val solve_factored : factor -> float array -> float array
(** [solve_factored f b] solves [a x = b] for the matrix [a] captured
    by [f]; [b] is not modified. *)
