module Invariant = Agingfp_util.Invariant
type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then Invariant.invalid ~where:"Matrix.create" "non-positive size";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let identity n =
  let m = create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    m.data.((i * n) + i) <- 1.0
  done;
  m

let of_arrays arr =
  let rows = Array.length arr in
  if rows = 0 then Invariant.invalid ~where:"Matrix.of_arrays" "empty";
  let cols = Array.length arr.(0) in
  if cols = 0 then Invariant.invalid ~where:"Matrix.of_arrays" "empty row";
  let m = create ~rows ~cols in
  Array.iteri
    (fun i row ->
      if Array.length row <> cols then Invariant.invalid ~where:"Matrix.of_arrays" "ragged rows";
      Array.blit row 0 m.data (i * cols) cols)
    arr;
  m

let rows m = m.rows
let cols m = m.cols

let get m i j = m.data.((i * m.cols) + j)
let set m i j v = m.data.((i * m.cols) + j) <- v
let add_to m i j v = m.data.((i * m.cols) + j) <- m.data.((i * m.cols) + j) +. v

let copy m = { m with data = Array.copy m.data }

let mul_vec m v =
  if Array.length v <> m.cols then Invariant.invalid ~where:"Matrix.mul_vec" "size mismatch";
  Array.init m.rows (fun i ->
      let base = i * m.cols in
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (m.data.(base + j) *. v.(j))
      done;
      !acc)

let transpose m =
  let r = create ~rows:m.cols ~cols:m.rows in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      set r j i (get m i j)
    done
  done;
  r

let pp ppf m =
  for i = 0 to m.rows - 1 do
    if i > 0 then Format.pp_print_newline ppf ();
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.pp_print_string ppf " ";
      Format.fprintf ppf "%10.4f" (get m i j)
    done
  done

let row m i = Array.sub m.data (i * m.cols) m.cols

let swap_rows m i j =
  if i <> j then
    for k = 0 to m.cols - 1 do
      let t = get m i k in
      set m i k (get m j k);
      set m j k t
    done

let scale_row m i a =
  let base = i * m.cols in
  for k = 0 to m.cols - 1 do
    m.data.(base + k) <- m.data.(base + k) *. a
  done

let axpy_row m ~src ~dst a =
  if not (Float.equal a 0.0) then begin
    let sb = src * m.cols and db = dst * m.cols in
    for k = 0 to m.cols - 1 do
      m.data.(db + k) <- m.data.(db + k) +. (a *. m.data.(sb + k))
    done
  end
