(** Dense row-major float matrices.

    Sized for the thermal solver (a few hundred nodes) and the simplex
    tableau; not a general-purpose BLAS. *)

type t

val create : rows:int -> cols:int -> t
(** Zero-filled matrix. *)

val identity : int -> t

val of_arrays : float array array -> t
(** Copies its input; rows must be non-empty and of equal length. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val add_to : t -> int -> int -> float -> unit
(** [add_to m i j v] is [set m i j (get m i j +. v)]. *)

val copy : t -> t

val mul_vec : t -> float array -> float array
(** Matrix–vector product; the vector length must equal [cols]. *)

val transpose : t -> t

val pp : Format.formatter -> t -> unit

val row : t -> int -> float array
(** Copy of row [i]. *)

val swap_rows : t -> int -> int -> unit

val scale_row : t -> int -> float -> unit

val axpy_row : t -> src:int -> dst:int -> float -> unit
(** [axpy_row m ~src ~dst a] adds [a * row src] to [row dst]. *)
