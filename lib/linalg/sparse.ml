(* Compressed sparse vectors and a stamped scatter–gather workspace.

   The LU kernel and the simplex basis wrapper move data between two
   representations: compressed (index/value pairs, the storage form of
   factor columns and eta vectors) and dense-with-occupancy (a float
   array plus a touched list, the working form during elimination and
   triangular solves). The workspace uses generation stamps instead of
   a cleared boolean mask so that clearing costs O(nnz touched), not
   O(n). *)

type vec = {
  mutable nnz : int;
  mutable idx : int array;
  mutable vals : float array;
}

let create ?(cap = 8) () =
  let cap = max cap 1 in
  { nnz = 0; idx = Array.make cap 0; vals = Array.make cap 0.0 }

let clear v = v.nnz <- 0
let length v = v.nnz

let ensure v extra =
  let need = v.nnz + extra in
  if need > Array.length v.idx then begin
    let cap = max need (2 * Array.length v.idx) in
    let idx = Array.make cap 0 and vals = Array.make cap 0.0 in
    Array.blit v.idx 0 idx 0 v.nnz;
    Array.blit v.vals 0 vals 0 v.nnz;
    v.idx <- idx;
    v.vals <- vals
  end

let push v i x =
  ensure v 1;
  v.idx.(v.nnz) <- i;
  v.vals.(v.nnz) <- x;
  v.nnz <- v.nnz + 1

let iter f v =
  for k = 0 to v.nnz - 1 do
    f v.idx.(k) v.vals.(k)
  done

let of_dense ?(tol = 0.0) a =
  let v = create () in
  Array.iteri (fun i x -> if abs_float x > tol then push v i x) a;
  v

let to_dense v n =
  let a = Array.make n 0.0 in
  iter (fun i x -> a.(i) <- x) v;
  a

(* ---------- scatter–gather workspace ---------- *)

type workspace = {
  x : float array;          (* dense values; only valid where stamped *)
  stamp : int array;        (* stamp.(i) = gen  <=>  slot i is live *)
  touched : int array;      (* live indices, in touch order *)
  mutable ntouched : int;
  mutable gen : int;
}

let workspace n =
  {
    x = Array.make (max n 1) 0.0;
    stamp = Array.make (max n 1) (-1);
    touched = Array.make (max n 1) 0;
    ntouched = 0;
    gen = 0;
  }

let reset ws =
  ws.gen <- ws.gen + 1;
  ws.ntouched <- 0

let touch ws i =
  if ws.stamp.(i) <> ws.gen then begin
    ws.stamp.(i) <- ws.gen;
    ws.x.(i) <- 0.0;
    ws.touched.(ws.ntouched) <- i;
    ws.ntouched <- ws.ntouched + 1
  end

let set ws i v =
  touch ws i;
  ws.x.(i) <- v

let add ws i v =
  touch ws i;
  ws.x.(i) <- ws.x.(i) +. v

let get ws i = if ws.stamp.(i) = ws.gen then ws.x.(i) else 0.0
let is_live ws i = ws.stamp.(i) = ws.gen

let iter_live ws f =
  for k = 0 to ws.ntouched - 1 do
    let i = ws.touched.(k) in
    f i ws.x.(i)
  done

let scatter ws v =
  reset ws;
  iter (fun i x -> set ws i x) v

let gather ?(tol = 0.0) ws v =
  clear v;
  for k = 0 to ws.ntouched - 1 do
    let i = ws.touched.(k) in
    let x = ws.x.(i) in
    if abs_float x > tol then push v i x
  done
