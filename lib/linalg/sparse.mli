(** Compressed sparse vectors and a stamped scatter–gather workspace.

    Storage form for LU factor columns and simplex eta vectors, plus
    the dense-with-occupancy working form used during elimination and
    triangular solves. The workspace clears in O(touched) via
    generation stamps, not O(n). *)

type vec = {
  mutable nnz : int;
  mutable idx : int array;   (** indices of the first [nnz] entries *)
  mutable vals : float array; (** values matching [idx] *)
}
(** Growable compressed vector. Entries [0 .. nnz-1] are live; index
    order is insertion order (not necessarily sorted). *)

val create : ?cap:int -> unit -> vec
val clear : vec -> unit

val length : vec -> int
(** Number of stored entries. *)

val push : vec -> int -> float -> unit
(** Append one entry, growing the backing arrays as needed. *)

val iter : (int -> float -> unit) -> vec -> unit

val of_dense : ?tol:float -> float array -> vec
(** Entries with [|x| > tol] (default [0.0]). *)

val to_dense : vec -> int -> float array

(** {1 Scatter–gather workspace} *)

type workspace

val workspace : int -> workspace
(** Workspace over index domain [0 .. n-1]. *)

val reset : workspace -> unit
(** Invalidate all live slots (O(1): bumps the generation stamp). *)

val touch : workspace -> int -> unit
(** Make slot [i] live with value [0.0] if it is not live already. *)

val set : workspace -> int -> float -> unit
val add : workspace -> int -> float -> unit

val get : workspace -> int -> float
(** [0.0] for non-live slots. *)

val is_live : workspace -> int -> bool

val iter_live : workspace -> (int -> float -> unit) -> unit
(** Iterate the live entries in touch order (duplicates impossible). *)

val scatter : workspace -> vec -> unit
(** [reset] then copy the vector's entries in. *)

val gather : ?tol:float -> workspace -> vec -> unit
(** Overwrite [vec] with the live entries whose [|x| > tol]. *)
