(* Sparse LU factorization for simplex bases and repeated linear
   solves.

   The factorization is left-looking over a column ordering chosen by
   increasing column count, with threshold row pivoting that prefers
   the sparsest eligible row — an approximate Markowitz rule: the
   column order bounds the fill a column can generate, the row choice
   trades a bounded loss of the largest pivot (relative threshold
   [row_threshold]) against row sparsity.

   P A Q = L U with L unit lower triangular. Factor storage:
   - [lcols.(k)]: the multipliers of step [k], indexed by ORIGINAL row
     (rows eliminated at later steps);
   - [ucols.(j)]: the U entries of step [j], indexed by STEP [k < j];
   - [p]/[pinv]: step <-> original row; [q]: step -> original column.

   Basis changes are absorbed as product-form eta spikes: replacing
   column [r] by [a] with [w = A^-1 a] multiplies the factored matrix
   on the right by an elementary matrix E (identity with column [r]
   set to [w]), so ftran appends E^-1 and btran prepends E^-T. Etas
   accumulate until the owner refactorizes. *)

module Invariant = Agingfp_util.Invariant

exception Singular

let pivot_tol = 1e-11
let row_threshold = 0.1

type eta = {
  e_pos : int;             (* column (position) replaced *)
  e_piv : float;           (* spike value at [e_pos] *)
  e_spike : Sparse.vec;    (* spike entries excluding [e_pos] *)
}

type t = {
  n : int;
  lcols : Sparse.vec array;
  ucols : Sparse.vec array;
  udiag : float array;
  p : int array;
  pinv : int array;
  q : int array;
  mutable etas : eta array;
  mutable neta : int;
  mutable eta_nnz : int;
  ws : Sparse.workspace;
  sol : float array;         (* step-space scratch for the solves *)
  mutable factored : bool;
  mutable nfactor : int;     (* factorizations performed *)
  mutable total_etas : int;  (* eta updates over the lifetime *)
}

let create n =
  if n < 0 then Invariant.invalid ~where:"Lu.create" "negative dimension";
  let cap = max n 1 in
  {
    n;
    lcols = Array.init cap (fun _ -> Sparse.create ());
    ucols = Array.init cap (fun _ -> Sparse.create ());
    udiag = Array.make cap 0.0;
    p = Array.make cap 0;
    pinv = Array.make cap (-1);
    q = Array.make cap 0;
    etas = [||];
    neta = 0;
    eta_nnz = 0;
    ws = Sparse.workspace n;
    sol = Array.make cap 0.0;
    factored = false;
    nfactor = 0;
    total_etas = 0;
  }

let dim t = t.n
let eta_count t = t.neta
let eta_nnz t = t.eta_nnz
let total_etas t = t.total_etas
let factor_count t = t.nfactor

let fill t =
  if not t.factored then 0
  else begin
    let acc = ref t.n in
    for k = 0 to t.n - 1 do
      acc := !acc + Sparse.length t.lcols.(k) + Sparse.length t.ucols.(k)
    done;
    !acc
  end

let factorize t ~col =
  let n = t.n in
  let crows = Array.make (max n 1) [||] in
  let ccoefs = Array.make (max n 1) [||] in
  for j = 0 to n - 1 do
    let rows, coefs = col j in
    if Array.length rows <> Array.length coefs then
      Invariant.invalid ~where:"Lu.factorize" "ragged column";
    crows.(j) <- rows;
    ccoefs.(j) <- coefs
  done;
  (* Approximate Markowitz: eliminate thin columns first... *)
  let order = Array.init n (fun j -> j) in
  Array.sort
    (fun a b -> compare (Array.length crows.(a)) (Array.length crows.(b)))
    order;
  (* ...and, within a column, prefer pivot rows with few occupants. *)
  let rcount = Array.make (max n 1) 0 in
  for j = 0 to n - 1 do
    Array.iter (fun r -> rcount.(r) <- rcount.(r) + 1) crows.(j)
  done;
  Array.fill t.pinv 0 (max n 1) (-1);
  t.neta <- 0;
  t.eta_nnz <- 0;
  let ws = t.ws in
  for step = 0 to n - 1 do
    let j = order.(step) in
    t.q.(step) <- j;
    Sparse.reset ws;
    let rows = crows.(j) and coefs = ccoefs.(j) in
    for k = 0 to Array.length rows - 1 do
      Sparse.add ws rows.(k) coefs.(k)
    done;
    let uc = t.ucols.(step) in
    Sparse.clear uc;
    (* Left-looking elimination: updates from step k can only create
       fill in rows pivoted after k, so a sequential scan in step
       order sees every live pivot-row entry exactly once. *)
    for k = 0 to step - 1 do
      let pk = t.p.(k) in
      if Sparse.is_live ws pk then begin
        let v = Sparse.get ws pk in
        if not (Float.equal v 0.0) then begin
          Sparse.push uc k v;
          Sparse.iter (fun i lv -> Sparse.add ws i (-.(v *. lv))) t.lcols.(k)
        end
      end
    done;
    (* Threshold Markowitz pivot among the unpivoted rows. *)
    let vmax = ref 0.0 in
    Sparse.iter_live ws (fun i x ->
        if t.pinv.(i) < 0 then begin
          let a = abs_float x in
          if a > !vmax then vmax := a
        end);
    if !vmax < pivot_tol then raise Singular;
    let cutoff = row_threshold *. !vmax in
    let best = ref (-1) and best_count = ref max_int and best_mag = ref 0.0 in
    Sparse.iter_live ws (fun i x ->
        if t.pinv.(i) < 0 then begin
          let a = abs_float x in
          if
            a >= cutoff
            && (rcount.(i) < !best_count
               || (rcount.(i) = !best_count && a > !best_mag))
          then begin
            best := i;
            best_count := rcount.(i);
            best_mag := a
          end
        end);
    let r = !best in
    t.p.(step) <- r;
    t.pinv.(r) <- step;
    let d = Sparse.get ws r in
    t.udiag.(step) <- d;
    let lc = t.lcols.(step) in
    Sparse.clear lc;
    Sparse.iter_live ws (fun i x ->
        if i <> r && t.pinv.(i) < 0 && not (Float.equal x 0.0) then Sparse.push lc i (x /. d))
  done;
  t.factored <- true;
  t.nfactor <- t.nfactor + 1

let check_ready t name v =
  if not t.factored then Invariant.invalid ~where:name "not factorized";
  if Array.length v < t.n then Invariant.invalid ~where:name "vector too short"

(* Solve A x = b in place: [b] enters in row space, leaves in column
   (position) space. *)
let ftran t b =
  check_ready t "Lu.ftran" b;
  let n = t.n in
  for k = 0 to n - 1 do
    let v = b.(t.p.(k)) in
    if not (Float.equal v 0.0) then
      Sparse.iter (fun i lv -> b.(i) <- b.(i) -. (v *. lv)) t.lcols.(k)
  done;
  let z = t.sol in
  for j = n - 1 downto 0 do
    let zj = b.(t.p.(j)) /. t.udiag.(j) in
    z.(j) <- zj;
    if not (Float.equal zj 0.0) then
      Sparse.iter (fun k uv -> b.(t.p.(k)) <- b.(t.p.(k)) -. (uv *. zj)) t.ucols.(j)
  done;
  for j = 0 to n - 1 do
    b.(t.q.(j)) <- z.(j)
  done;
  for e = 0 to t.neta - 1 do
    let eta = t.etas.(e) in
    let tv = b.(eta.e_pos) /. eta.e_piv in
    b.(eta.e_pos) <- tv;
    if not (Float.equal tv 0.0) then
      Sparse.iter (fun i wv -> b.(i) <- b.(i) -. (wv *. tv)) eta.e_spike
  done

(* Solve A^T y = c in place: [c] enters in column (position) space,
   leaves in row space. *)
let btran t c =
  check_ready t "Lu.btran" c;
  let n = t.n in
  for e = t.neta - 1 downto 0 do
    let eta = t.etas.(e) in
    let s = ref 0.0 in
    Sparse.iter (fun i wv -> s := !s +. (wv *. c.(i))) eta.e_spike;
    c.(eta.e_pos) <- (c.(eta.e_pos) -. !s) /. eta.e_piv
  done;
  let z = t.sol in
  for j = 0 to n - 1 do
    let s = ref c.(t.q.(j)) in
    Sparse.iter (fun k uv -> s := !s -. (uv *. z.(k))) t.ucols.(j);
    z.(j) <- !s /. t.udiag.(j)
  done;
  for k = n - 1 downto 0 do
    let s = ref z.(k) in
    Sparse.iter (fun i lv -> s := !s -. (lv *. z.(t.pinv.(i)))) t.lcols.(k);
    z.(k) <- !s
  done;
  for k = 0 to n - 1 do
    c.(t.p.(k)) <- z.(k)
  done

let push_eta t eta =
  if t.neta >= Array.length t.etas then begin
    let cap = max 8 (2 * Array.length t.etas) in
    let etas = Array.make cap eta in
    Array.blit t.etas 0 etas 0 t.neta;
    t.etas <- etas
  end;
  t.etas.(t.neta) <- eta;
  t.neta <- t.neta + 1

(* Record the replacement of column [r] by a column whose ftran image
   is [w] (position space, dense). *)
let update t ~r ~w =
  check_ready t "Lu.update" w;
  let piv = w.(r) in
  if abs_float piv < pivot_tol then raise Singular;
  let spike = Sparse.create () in
  for i = 0 to t.n - 1 do
    if i <> r && not (Float.equal w.(i) 0.0) then Sparse.push spike i w.(i)
  done;
  push_eta t { e_pos = r; e_piv = piv; e_spike = spike };
  t.eta_nnz <- t.eta_nnz + 1 + Sparse.length spike;
  t.total_etas <- t.total_etas + 1

(* ---------- dense-matrix convenience (thermal / Solve) ---------- *)

let of_matrix a =
  let n = Matrix.rows a in
  if Matrix.cols a <> n then Invariant.invalid ~where:"Lu.of_matrix" "matrix not square";
  let t = create n in
  factorize t ~col:(fun j ->
      let rows = ref [] and coefs = ref [] in
      for i = n - 1 downto 0 do
        let v = Matrix.get a i j in
        if not (Float.equal v 0.0) then begin
          rows := i :: !rows;
          coefs := v :: !coefs
        end
      done;
      (Array.of_list !rows, Array.of_list !coefs));
  t

let solve t b =
  if Array.length b <> t.n then Invariant.invalid ~where:"Lu.solve" "size mismatch";
  let x = Array.copy b in
  ftran t x;
  x

let solve_transposed t c =
  if Array.length c <> t.n then Invariant.invalid ~where:"Lu.solve_transposed" "size mismatch";
  let y = Array.copy c in
  btran t y;
  y
