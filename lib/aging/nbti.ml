module Invariant = Agingfp_util.Invariant
type params = {
  a_nbti : float;
  n_exp : float;
  ea_ev : float;
  vth0 : float;
  fail_frac : float;
}

let boltzmann_ev = 8.617333262e-5

let default_params =
  { a_nbti = 0.0204; n_exp = 0.25; ea_ev = 0.10; vth0 = 0.45; fail_frac = 0.10 }

let vth_shift ?(params = default_params) ~duty ~temp_k time_s =
  if duty < 0.0 || time_s < 0.0 then Invariant.invalid ~where:"Nbti.vth_shift" "negative input";
  if duty = 0.0 || time_s = 0.0 then 0.0
  else
    params.a_nbti
    *. ((duty *. time_s) ** params.n_exp)
    *. exp (-.params.ea_ev /. (boltzmann_ev *. temp_k))
    *. params.vth0

let time_to_fail ?(params = default_params) ~temp_k duty =
  if duty < 0.0 then Invariant.invalid ~where:"Nbti.time_to_fail" "negative duty";
  if duty = 0.0 then infinity
  else begin
    (* fail_frac = a * (duty * t)^n * exp(-Ea/kT)  =>
       t = (fail_frac / (a * exp(-Ea/kT)))^(1/n) / duty *)
    let arrhenius = exp (-.params.ea_ev /. (boltzmann_ev *. temp_k)) in
    let base = params.fail_frac /. (params.a_nbti *. arrhenius) in
    (base ** (1.0 /. params.n_exp)) /. duty
  end

let shift_curve ?(params = default_params) ~duty ~temp_k times_s =
  Array.map (fun t -> vth_shift ~params ~duty ~temp_k t) times_s
