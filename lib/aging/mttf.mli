(** Mean Time To Failure of a floorplanned design (paper §III).

    The device fails when its worst PE fails; a PE's failure time
    follows the NBTI model under the PE's effective duty cycle
    (accumulated stress / context count) and its steady-state
    temperature from the thermal model. *)

open Agingfp_cgrra

type breakdown = {
  mttf_s : float;          (** device MTTF in seconds *)
  critical_pe : int;       (** the PE that fails first *)
  critical_duty : float;
  critical_temp_k : float;
}

val of_mapping :
  ?nbti:Nbti.params ->
  ?thermal:Agingfp_thermal.Model.params ->
  Design.t ->
  Mapping.t ->
  breakdown
(** Min over PEs of the NBTI failure time. PEs with zero stress never
    fail; a design whose every PE is idle reports [infinity]. *)

val of_mapping_paper_variant :
  ?nbti:Nbti.params ->
  ?thermal:Agingfp_thermal.Model.params ->
  Design.t ->
  Mapping.t ->
  breakdown
(** The paper's §III procedure verbatim: pick the PE with the maximum
    temperature and evaluate its failure time (rather than minimizing
    over PEs). Exposed for comparison; the two variants agree when
    the hottest PE is also the most stressed, which is the common
    case. *)

val of_duty :
  ?nbti:Nbti.params ->
  ?thermal:Agingfp_thermal.Model.params ->
  Design.t ->
  float array ->
  breakdown
(** MTTF of an arbitrary per-PE duty profile (used for time-shared
    strategies such as module diversification, where the effective
    duty is an average over several configurations). Temperatures are
    computed from the duty-implied power map. *)

val improvement :
  ?nbti:Nbti.params ->
  ?thermal:Agingfp_thermal.Model.params ->
  Design.t ->
  baseline:Mapping.t ->
  remapped:Mapping.t ->
  float
(** MTTF increase factor — the quantity Table I reports. *)
