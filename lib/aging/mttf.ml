open Agingfp_cgrra
module Thermal = Agingfp_thermal.Model

type breakdown = {
  mttf_s : float;
  critical_pe : int;
  critical_duty : float;
  critical_temp_k : float;
}

let duties design mapping =
  let acc = Stress.accumulated design mapping in
  let c = float_of_int (Design.num_contexts design) in
  Array.map (fun s -> s /. c) acc

let of_mapping ?nbti ?thermal design mapping =
  let duty = duties design mapping in
  let temps = Thermal.pe_temperatures ?params:thermal design mapping in
  let best = ref { mttf_s = infinity; critical_pe = -1; critical_duty = 0.0; critical_temp_k = 0.0 } in
  Array.iteri
    (fun pe d ->
      if d > 0.0 then begin
        let t = Nbti.time_to_fail ?params:nbti ~temp_k:temps.(pe) d in
        if t < !best.mttf_s then
          best := { mttf_s = t; critical_pe = pe; critical_duty = d; critical_temp_k = temps.(pe) }
      end)
    duty;
  !best

let of_mapping_paper_variant ?nbti ?thermal design mapping =
  let duty = duties design mapping in
  let temps = Thermal.pe_temperatures ?params:thermal design mapping in
  let hottest = ref 0 in
  Array.iteri (fun pe t -> if t > temps.(!hottest) then hottest := pe) temps;
  let pe = !hottest in
  {
    mttf_s = Nbti.time_to_fail ?params:nbti ~temp_k:temps.(pe) duty.(pe);
    critical_pe = pe;
    critical_duty = duty.(pe);
    critical_temp_k = temps.(pe);
  }

let of_duty ?nbti ?thermal design duty =
  let params =
    match thermal with Some p -> p | None -> Thermal.default_params
  in
  let dim = Fabric.dim (Design.fabric design) in
  let power =
    Array.map
      (fun d -> params.Thermal.p_leak +. (params.Thermal.p_active *. d))
      duty
  in
  let temps = Thermal.steady_state ~params ~dim power in
  let best =
    ref { mttf_s = infinity; critical_pe = -1; critical_duty = 0.0; critical_temp_k = 0.0 }
  in
  Array.iteri
    (fun pe d ->
      if d > 0.0 then begin
        let t = Nbti.time_to_fail ?params:nbti ~temp_k:temps.(pe) d in
        if t < !best.mttf_s then
          best := { mttf_s = t; critical_pe = pe; critical_duty = d; critical_temp_k = temps.(pe) }
      end)
    duty;
  !best

let improvement ?nbti ?thermal design ~baseline ~remapped =
  let before = of_mapping ?nbti ?thermal design baseline in
  let after = of_mapping ?nbti ?thermal design remapped in
  after.mttf_s /. before.mttf_s
