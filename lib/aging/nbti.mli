(** NBTI threshold-voltage degradation — Eq. (1) of the paper:

    {v V_th_shift(t) = A_NBTI * (SR * t)^n * exp(-Ea / kT) * V_th0 v}

    where [SR] is the effective duty cycle of the transistor (the
    PE's accumulated stress divided by the context count), [n] the
    fabrication time exponent, [Ea] the activation energy and [T]
    the PE temperature. Failure is declared when the shift reaches
    [fail_frac * V_th0] (10% in the paper, citing Srinivasan et
    al.). *)

type params = {
  a_nbti : float;     (** technology-dependent prefactor *)
  n_exp : float;      (** time exponent n, typically 0.16–0.25 *)
  ea_ev : float;      (** activation energy in eV *)
  vth0 : float;       (** starting threshold voltage, V *)
  fail_frac : float;  (** failing V_th shift as a fraction of vth0 *)
}

val default_params : params
(** n = 0.25, Ea = 0.10 eV, fail at 10% shift; [a_nbti] calibrated so
    a fully-stressed PE at 80 °C fails after roughly a decade. *)

val boltzmann_ev : float
(** k in eV/K. *)

val vth_shift : ?params:params -> duty:float -> temp_k:float -> float -> float
(** [vth_shift ~duty ~temp_k time_s] is the shift (V) after [time_s] seconds of operation
    at the given duty cycle and temperature. *)

val time_to_fail : ?params:params -> temp_k:float -> float -> float
(** [time_to_fail ~temp_k duty] solves Eq. (1) for the time at which
    the shift reaches the failure fraction. [infinity] when
    [duty = 0]. *)

val shift_curve :
  ?params:params -> duty:float -> temp_k:float -> float array -> float array
(** Sampled V_th shift trajectory — the curves of Fig. 2b. *)
