(** Island-style inter-PE routing with negotiated congestion
    (PathFinder-lite) — the routing half of the "Musketeer P&R"
    stand-in.

    The floorplanner reasons about wires as buffered Manhattan
    segments; this router checks that abstraction against a physical
    channel model: the fabric's routing graph has one bidirectional
    channel per pair of adjacent PEs with a fixed track capacity, and
    every DFG edge of every context is a two-pin net (contexts are
    time-multiplexed, so each context is routed against its own copy
    of the channels).

    Routing iterates rip-up-and-reroute with Dijkstra under
    PathFinder-style costs (base + present-congestion penalty +
    accumulated history), until no channel is over capacity or the
    iteration budget runs out. *)

open Agingfp_cgrra

type params = {
  capacity : int;        (** tracks per channel (default 4) *)
  max_iterations : int;  (** rip-up/re-route rounds (default 24) *)
  present_factor : float; (** penalty per unit of present overuse *)
  history_factor : float; (** penalty accumulation per round *)
}

val default_params : params

type net = {
  ctx : int;
  src_op : int;
  dst_op : int;
  src_pe : int;
  dst_pe : int;
}

type result = {
  nets : net array;
  routes : int array array;   (** per net: PE-cell path, src..dst *)
  overused_channels : int;    (** channels above capacity at the end *)
  max_channel_usage : int;
  total_routed_length : int;  (** channel segments used, all nets *)
  total_manhattan : int;      (** lower bound: sum of Manhattan distances *)
  iterations : int;
}

val route_context : ?params:params -> Design.t -> Mapping.t -> ctx:int -> result
(** Route every DFG edge of one context. Zero-length nets (should not
    occur in valid mappings) are rejected with [Invalid_argument]. *)

val route_all : ?params:params -> Design.t -> Mapping.t -> result array
(** One result per context. *)

val detour_factor : result -> float
(** [total_routed_length / total_manhattan]; 1.0 = every net routed on
    a shortest path. 0 nets yields 1.0. *)

val routed_cpd : Design.t -> result array -> float
(** Re-evaluate the design CPD with each hop's wire delay taken from
    its routed length rather than the Manhattan estimate. *)
