open Agingfp_cgrra
module Coord = Agingfp_util.Coord
module Heap = Agingfp_util.Heap

module Invariant = Agingfp_util.Invariant
type params = {
  capacity : int;
  max_iterations : int;
  present_factor : float;
  history_factor : float;
}

let default_params =
  { capacity = 4; max_iterations = 24; present_factor = 2.0; history_factor = 0.4 }

type net = { ctx : int; src_op : int; dst_op : int; src_pe : int; dst_pe : int }

type result = {
  nets : net array;
  routes : int array array;
  overused_channels : int;
  max_channel_usage : int;
  total_routed_length : int;
  total_manhattan : int;
  iterations : int;
}

(* Channel ids: horizontal segments first (between (x,y) and (x+1,y)),
   then vertical ones (between (x,y) and (x,y+1)). *)
let num_channels dim = 2 * dim * (dim - 1)

let channel_of dim a b =
  let ax = a mod dim and ay = a / dim in
  let bx = b mod dim and by = b / dim in
  if ay = by && abs (ax - bx) = 1 then (ay * (dim - 1)) + min ax bx
  else if ax = bx && abs (ay - by) = 1 then
    (dim * (dim - 1)) + (min ay by * dim) + ax
  else Invariant.invalid ~where:"Router.channel_of" "cells not adjacent"

let neighbours dim cell =
  let x = cell mod dim and y = cell / dim in
  List.filter_map
    (fun (dx, dy) ->
      let nx = x + dx and ny = y + dy in
      if nx >= 0 && nx < dim && ny >= 0 && ny < dim then Some ((ny * dim) + nx) else None)
    [ (1, 0); (-1, 0); (0, 1); (0, -1) ]

(* Dijkstra from src to dst under the current channel costs. *)
let shortest_path dim cost src dst =
  let n = dim * dim in
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  let heap = Heap.create (fun (a, _) (b, _) -> Float.compare a b) in
  dist.(src) <- 0.0;
  Heap.push heap (0.0, src);
  let finished = ref false in
  while not (!finished || Heap.is_empty heap) do
    match Heap.pop heap with
    | None -> finished := true
    | Some (d, u) ->
      if u = dst then finished := true
      else if d <= dist.(u) +. 1e-12 then
        List.iter
          (fun v ->
            let c = d +. cost (channel_of dim u v) in
            if c < dist.(v) -. 1e-12 then begin
              dist.(v) <- c;
              pred.(v) <- u;
              Heap.push heap (c, v)
            end)
          (neighbours dim u)
  done;
  if dist.(dst) = infinity then None
  else begin
    let rec walk acc cell = if cell = src then cell :: acc else walk (cell :: acc) pred.(cell) in
    Some (Array.of_list (walk [] dst))
  end

let route_channels dim route =
  let acc = ref [] in
  for i = 0 to Array.length route - 2 do
    acc := channel_of dim route.(i) route.(i + 1) :: !acc
  done;
  !acc

let route_context ?(params = default_params) design mapping ~ctx =
  let fabric = Design.fabric design in
  let dim = Fabric.dim fabric in
  let dfg = Design.context design ctx in
  let nets = ref [] in
  Dfg.iter_edges dfg (fun u v ->
      let src_pe = Mapping.pe_of mapping ~ctx ~op:u in
      let dst_pe = Mapping.pe_of mapping ~ctx ~op:v in
      if src_pe = dst_pe then
        Invariant.invalid ~where:"Router.route_context" "zero-length net (ops share a PE)";
      nets := { ctx; src_op = u; dst_op = v; src_pe; dst_pe } :: !nets);
  let nets = Array.of_list (List.rev !nets) in
  (* Longest nets first: they have the fewest detour options. *)
  let order = Array.init (Array.length nets) (fun i -> i) in
  Array.sort
    (fun a b ->
      Int.compare
        (Fabric.distance fabric nets.(b).src_pe nets.(b).dst_pe)
        (Fabric.distance fabric nets.(a).src_pe nets.(a).dst_pe))
    order;
  let nch = num_channels dim in
  let usage = Array.make nch 0 in
  let history = Array.make nch 0.0 in
  let routes = Array.make (Array.length nets) [||] in
  let cost ch =
    let over = usage.(ch) + 1 - params.capacity in
    1.0
    +. (if over > 0 then params.present_factor *. float_of_int over else 0.0)
    +. history.(ch)
  in
  let iterations = ref 0 in
  let converged = ref false in
  while (not !converged) && !iterations < params.max_iterations do
    incr iterations;
    Array.iter
      (fun i ->
        let net = nets.(i) in
        (* Rip up, then re-route under current congestion. *)
        List.iter (fun ch -> usage.(ch) <- usage.(ch) - 1) (route_channels dim routes.(i));
        (match shortest_path dim cost net.src_pe net.dst_pe with
        | Some route -> routes.(i) <- route
        | None ->
          Agingfp_util.Invariant.fail ~where:"Router.route" "grid disconnected");
        List.iter (fun ch -> usage.(ch) <- usage.(ch) + 1) (route_channels dim routes.(i)))
      order;
    let overused = ref false in
    Array.iteri
      (fun ch u ->
        if u > params.capacity then begin
          overused := true;
          history.(ch) <-
            history.(ch) +. (params.history_factor *. float_of_int (u - params.capacity))
        end)
      usage;
    if not !overused then converged := true
  done;
  let overused_channels =
    Array.fold_left (fun acc u -> if u > params.capacity then acc + 1 else acc) 0 usage
  in
  let total_routed_length =
    Array.fold_left (fun acc r -> acc + max 0 (Array.length r - 1)) 0 routes
  in
  let total_manhattan =
    Array.fold_left
      (fun acc (n : net) -> acc + Fabric.distance fabric n.src_pe n.dst_pe)
      0 nets
  in
  {
    nets;
    routes;
    overused_channels;
    max_channel_usage = Array.fold_left max 0 usage;
    total_routed_length;
    total_manhattan;
    iterations = !iterations;
  }

let route_all ?params design mapping =
  Array.init (Design.num_contexts design) (fun ctx -> route_context ?params design mapping ~ctx)

let detour_factor r =
  if r.total_manhattan = 0 then 1.0
  else float_of_int r.total_routed_length /. float_of_int r.total_manhattan

let routed_cpd design results =
  let chars = Design.chars design in
  let cpd = ref 0.0 in
  Array.iteri
    (fun ctx (r : result) ->
      let dfg = Design.context design ctx in
      (* Routed length per DFG edge of this context. *)
      let lengths = Hashtbl.create 64 in
      Array.iteri
        (fun i (n : net) ->
          Hashtbl.replace lengths (n.src_op, n.dst_op) (Array.length r.routes.(i) - 1))
        r.nets;
      let n = Dfg.num_ops dfg in
      let arrive = Array.make n 0.0 in
      Array.iter
        (fun v ->
          let own = Chars.pe_delay_ns chars (Dfg.op dfg v) in
          let best =
            List.fold_left
              (fun acc p ->
                let len = try Hashtbl.find lengths (p, v) with Not_found -> 0 in
                max acc (arrive.(p) +. Chars.wire_delay_ns chars len))
              0.0 (Dfg.preds dfg v)
          in
          arrive.(v) <- own +. best)
        (Dfg.topological_order dfg);
      Array.iter (fun d -> cpd := max !cpd d) arrive)
    results;
  !cpd
