(** Aging-unaware baseline placement — the stand-in for the
    commercial Musketeer P&R flow (paper Phase 1).

    Each context is placed independently: a greedy corner-packing
    constructive pass followed by simulated annealing that minimizes
    a compactness + wirelength cost. Like the commercial tool, the
    result concentrates operations in the same fabric corner in every
    context, which is precisely the stress-accumulation behaviour the
    aging-aware re-mapping then repairs (Fig. 2a, top row). *)

open Agingfp_cgrra

type params = {
  seed : int;
  sa_moves : int;        (** annealing moves per context *)
  start_temp : float;
  cooling : float;       (** geometric factor per temperature step *)
  moves_per_temp : int;
  corner_weight : float; (** compactness pull toward the origin corner *)
  wire_weight : float;
}

val default_params : params

val greedy : ?seed:int -> Design.t -> Mapping.t
(** Constructive corner packing: operations in topological order grab
    the free PE minimizing distance to their placed predecessors plus
    a corner bias and a small per-context tie-breaking noise (real
    netlists never yield pixel-identical context layouts). Always
    valid. *)

val anneal : ?params:params -> Design.t -> Mapping.t -> Mapping.t
(** Simulated-annealing refinement of a valid mapping (relocations
    and swaps within each context). Deterministic given [params.seed]. *)

val aging_unaware : ?params:params -> Design.t -> Mapping.t
(** [greedy] followed by [anneal] — the paper's baseline floorplan. *)

val context_cost : Design.t -> Mapping.t -> int -> float
(** The cost the annealer optimizes for one context (corner
    compactness + total wirelength), exposed for tests and benches. *)
