open Agingfp_cgrra
module Rng = Agingfp_util.Rng
module Coord = Agingfp_util.Coord

let src = Logs.Src.create "agingfp.place" ~doc:"Baseline placer"

module Log = (val Logs.src_log src : Logs.LOG)

type params = {
  seed : int;
  sa_moves : int;
  start_temp : float;
  cooling : float;
  moves_per_temp : int;
  corner_weight : float;
  wire_weight : float;
}

let default_params =
  {
    seed = 20061;
    sa_moves = 20_000;
    start_temp = 4.0;
    cooling = 0.92;
    moves_per_temp = 200;
    corner_weight = 1.0;
    wire_weight = 2.0;
  }

(* ---------- constructive pass ---------- *)

let greedy ?(seed = 1913) design =
  let fabric = Design.fabric design in
  let npes = Fabric.num_pes fabric in
  Mapping.of_arrays
    (Array.init (Design.num_contexts design) (fun c ->
         let dfg = Design.context design c in
         let rng = Rng.create (seed + (c * 6151)) in
         (* Small per-context tie-breaking noise: real per-context
            netlists never produce pixel-identical layouts, and without
            it every context's critical path stacks on the same corner
            PEs, which no commercial placer exhibits. *)
         let noise = Array.init npes (fun _ -> Rng.int rng 3) in
         let n = Dfg.num_ops dfg in
         let assignment = Array.make n (-1) in
         let free = Array.make npes true in
         let corner_bias pe =
           let p = Fabric.coord_of_pe fabric pe in
           p.Coord.x + p.Coord.y
         in
         Array.iter
           (fun o ->
             let placed_preds =
               List.filter_map
                 (fun u -> if assignment.(u) >= 0 then Some assignment.(u) else None)
                 (Dfg.preds dfg o)
             in
             let score pe =
               let pull =
                 List.fold_left
                   (fun acc q -> acc + Fabric.distance fabric pe q)
                   0 placed_preds
               in
               (* Weight the predecessor pull above the corner bias so
                  connected ops stay adjacent. *)
               (4 * pull) + corner_bias pe + noise.(pe)
             in
             let best = ref (-1) in
             let best_score = ref max_int in
             for pe = 0 to npes - 1 do
               if free.(pe) then begin
                 let s = score pe in
                 if s < !best_score then begin
                   best := pe;
                   best_score := s
                 end
               end
             done;
             assignment.(o) <- !best;
             free.(!best) <- false)
           (Dfg.topological_order dfg);
         assignment))

(* ---------- simulated annealing ---------- *)

(* Cost terms for one context, maintained incrementally:
   - corner compactness: sum over used PEs of (x + y)
   - wirelength: sum over DFG edges of Manhattan length. *)

let context_cost design mapping c =
  let fabric = Design.fabric design in
  let dfg = Design.context design c in
  let corner = ref 0 in
  for o = 0 to Dfg.num_ops dfg - 1 do
    let p = Fabric.coord_of_pe fabric (Mapping.pe_of mapping ~ctx:c ~op:o) in
    corner := !corner + p.Coord.x + p.Coord.y
  done;
  let wire = ref 0 in
  Dfg.iter_edges dfg (fun u v ->
      wire :=
        !wire
        + Fabric.distance fabric
            (Mapping.pe_of mapping ~ctx:c ~op:u)
            (Mapping.pe_of mapping ~ctx:c ~op:v));
  (default_params.corner_weight *. float_of_int !corner)
  +. (default_params.wire_weight *. float_of_int !wire)

let anneal_context params design c assignment =
  let fabric = Design.fabric design in
  let dfg = Design.context design c in
  let n = Dfg.num_ops dfg in
  let npes = Fabric.num_pes fabric in
  if n = 0 then assignment
  else begin
    let rng = Rng.create (params.seed + (c * 7919)) in
    let occupant = Array.make npes (-1) in
    Array.iteri (fun o pe -> occupant.(pe) <- o) assignment;
    let corner_of pe =
      let p = Fabric.coord_of_pe fabric pe in
      float_of_int (p.Coord.x + p.Coord.y)
    in
    (* Incremental cost of the edges incident to one op. *)
    let incident_wire o pe =
      let d q = Fabric.distance fabric pe assignment.(q) in
      let acc = ref 0 in
      List.iter (fun u -> acc := !acc + d u) (Dfg.preds dfg o);
      List.iter (fun v -> acc := !acc + d v) (Dfg.succs dfg o);
      !acc
    in
    let op_cost o pe =
      (params.corner_weight *. corner_of pe)
      +. (params.wire_weight *. float_of_int (incident_wire o pe))
    in
    let temp = ref params.start_temp in
    let moves_done = ref 0 in
    while !moves_done < params.sa_moves do
      for _ = 1 to params.moves_per_temp do
        if !moves_done < params.sa_moves then begin
          incr moves_done;
          let o = Rng.int rng n in
          let old_pe = assignment.(o) in
          let new_pe = Rng.int rng npes in
          if new_pe <> old_pe then begin
            let other = occupant.(new_pe) in
            let delta =
              if other < 0 then op_cost o new_pe -. op_cost o old_pe
              else begin
                (* Swap: evaluate both ops in both positions. Edges
                   between o and other are counted symmetrically
                   before and after, so the delta is still exact. *)
                let before = op_cost o old_pe +. op_cost other new_pe in
                assignment.(o) <- new_pe;
                assignment.(other) <- old_pe;
                let after = op_cost o new_pe +. op_cost other old_pe in
                assignment.(o) <- old_pe;
                assignment.(other) <- new_pe;
                after -. before
              end
            in
            let accept =
              delta <= 0.0
              || Rng.float rng 1.0 < exp (-.delta /. !temp)
            in
            if accept then begin
              if other < 0 then begin
                assignment.(o) <- new_pe;
                occupant.(old_pe) <- -1;
                occupant.(new_pe) <- o
              end
              else begin
                assignment.(o) <- new_pe;
                assignment.(other) <- old_pe;
                occupant.(new_pe) <- o;
                occupant.(old_pe) <- other
              end
            end
          end
        end
      done;
      temp := !temp *. params.cooling;
      if !temp < 0.01 then temp := 0.01
    done;
    assignment
  end

let anneal ?(params = default_params) design mapping =
  let arrays =
    Array.init (Design.num_contexts design) (fun c ->
        anneal_context params design c (Mapping.context_array mapping c))
  in
  let result = Mapping.of_arrays arrays in
  (match Mapping.validate design result with
  | Ok () -> ()
  | Error msg ->
    Agingfp_util.Invariant.fail ~where:"Placer.anneal" "produced invalid mapping: %s"
      msg);
  result

let aging_unaware ?(params = default_params) design =
  let m = anneal ~params design (greedy ~seed:params.seed design) in
  let clock = (Design.chars design).Chars.clock_period_ns in
  let cpd = Agingfp_timing.Analysis.cpd design m in
  if cpd > clock then
    Log.info (fun k ->
        k "%s: baseline CPD %.2f ns exceeds the %.2f ns clock target" (Design.name design)
          cpd clock);
  m
