(* Minimal JSON emitter shared by `codelint --json` and
   `agingfp lint --json`, so code diagnostics and model diagnostics
   speak one structured convention without pulling in a JSON
   dependency. Emission only — the one consumer that reads findings
   back (codelint's baseline) uses a line-oriented format instead. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
    (* JSON has no inf/nan tokens; clamp to null like most emitters. *)
    if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.17g" f)
    else Buffer.add_string b "null"
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        emit b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\":";
        emit b v)
      fields;
    Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 256 in
  emit b t;
  Buffer.contents b
