(* Codelint: a compiler-libs AST analyzer that enforces the repo's own
   coding invariants — the conventions PRs 2/3/5 introduced by hand and
   nothing checked mechanically since:

   - pool-capture  closures handed to [Util.Pool] must not mutate
                   captured refs / mutable fields / Hashtbls without a
                   Mutex or Atomic in the same scope (heuristic race
                   detector; per-index array-slot writes are the blessed
                   pattern and deliberately not flagged);
   - budget-poll   while-loops and large self-recursive functions in
                   solver modules must poll [Util.Budget] on some path;
   - no-failwith   library code raises through [Util.Invariant]
                   ([Invariant.fail] / [Invariant.invalid]), never bare
                   [failwith]/[invalid_arg]/[assert false];
   - det-order     [Hashtbl.fold]/[iter] results must pass through an
                   explicit sort before they can reach an output, and
                   solver code must not read ambient entropy
                   ([Random.self_init], wall-clock time);
   - float-eq      numeric code must use [Float.equal]/[Float.compare]
                   instead of polymorphic [=]/[compare] on floats.

   Everything is purely syntactic (Parsetree, no typing), so each rule
   is a heuristic: false positives are expected and waived explicitly
   with [@codelint.allow "rule-id" "justification"] so every waiver is
   visible in the diff. A waiver without a justification string is
   itself a finding. *)

open Parsetree

type severity = Error | Warning

type finding = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let severity_label = function Error -> "error" | Warning -> "warning"

(* Stable rule ids, also the vocabulary accepted by [@codelint.allow]. *)
let rules : (string * string) list =
  [
    ( "pool-capture",
      "closure given to Util.Pool mutates captured mutable state without a \
       Mutex/Atomic in scope" );
    ( "budget-poll",
      "long-running loop in a solver module never polls Util.Budget" );
    ( "no-failwith",
      "library code raises failwith/invalid_arg/assert false instead of \
       Util.Invariant" );
    ( "det-order",
      "Hashtbl iteration order, Random.self_init or wall-clock time can \
       leak into outputs" );
    ("float-eq", "polymorphic =/compare applied to floats in numeric code");
    ( "waiver",
      "malformed [@codelint.allow] attribute (unknown rule or missing \
       justification)" );
    ("parse-error", "source file failed to parse");
  ]

let known_rule id = List.mem_assoc id rules

type config = {
  lib_prefixes : string list;  (* no-failwith scope *)
  solver_prefixes : string list;  (* budget-poll + wall-clock scope *)
  numeric_prefixes : string list;  (* float-eq scope *)
  recursion_threshold : int;
      (* budget-poll only fires on a self-recursive binding whose body
         has at least this many expression nodes: tiny structural
         helpers terminate by construction, the B&B / refinement /
         Δ-window drivers do not. *)
}

let default_config =
  {
    lib_prefixes = [ "lib/" ];
    solver_prefixes = [ "lib/lp/"; "lib/floorplan/" ];
    numeric_prefixes = [ "lib/lp/"; "lib/linalg/" ];
    recursion_threshold = 100;
  }

(* ---------- path scoping ---------- *)

let normalize_path file =
  let file =
    if String.length file > 1 && String.sub file 0 2 = "./" then
      String.sub file 2 (String.length file - 2)
    else file
  in
  String.map (fun c -> if c = '\\' then '/' else c) file

let in_scope prefixes file =
  List.exists (fun p -> String.starts_with ~prefix:p file) prefixes

(* ---------- small parsetree helpers ---------- *)

let ident_parts (lid : Longident.t) =
  match lid with
  | Lident n -> ([], n)
  | Ldot (p, n) -> (
    (match Longident.flatten p with parts -> (parts, n) | exception _ -> ([], n)))
  | Lapply _ -> ([], "")

let last_module lid =
  match ident_parts lid with
  | [], _ -> None
  | parts, _ -> Some (List.nth parts (List.length parts - 1))

let ident_name lid = snd (ident_parts lid)

(* [qualified ~modules ~names lid]: the final component is one of
   [names] and the innermost module qualifier is one of [modules]
   (e.g. Hashtbl.fold, Stdlib.Hashtbl.fold, MyHashtbl via alias is
   missed — syntactic analysis). *)
let qualified ~modules ~names lid =
  List.mem (ident_name lid) names
  && match last_module lid with Some m -> List.mem m modules | None -> false

(* Bare or Stdlib-qualified: failwith, Stdlib.failwith, compare, ... *)
let stdlib_ident ~names lid =
  List.mem (ident_name lid) names
  && match last_module lid with None -> true | Some m -> m = "Stdlib"

let rec head_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some txt
  | Pexp_apply (f, _) -> head_ident f
  | _ -> None

let loc_line (loc : Location.t) = loc.loc_start.pos_lnum
let loc_col (loc : Location.t) = loc.loc_start.pos_cnum - loc.loc_start.pos_bol

exception Found

(* True when some sub-expression of [e] (including [e]) satisfies [p]. *)
let expr_exists p e =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          if p e then raise Found;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  try
    it.expr it e;
    false
  with Found -> true

let expr_size e =
  let n = ref 0 in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          incr n;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !n

(* Every name bound by any pattern inside [e] (fun args, lets, match
   arms, for indices). Over-approximates lexical scope — good enough to
   separate closure-local state from captured state. *)
let bound_names_in e =
  let acc = Hashtbl.create 16 in
  let record (p : pattern) =
    match p.ppat_desc with
    | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
      Hashtbl.replace acc txt ()
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          record p;
          Ast_iterator.default_iterator.pat it p);
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_for (p, _, _, _, _) -> record p
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  acc

(* ---------- rule predicates ---------- *)

let is_budget_mention e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match last_module txt with
    | Some "Budget" -> true
    | _ ->
      let n = ident_name txt in
      n = "expired" || n = "checkpoint" || n = "poll"
      ||
      (let lower = String.lowercase_ascii n in
       let sub = "budget" in
       let ln = String.length lower and ls = String.length sub in
       let rec scan i =
         i + ls <= ln && (String.sub lower i ls = sub || scan (i + 1))
       in
       scan 0))
  | _ -> false

let mentions_budget e = expr_exists is_budget_mention e

(* Mutex/Atomic "in the same scope": any mention of the synchronization
   vocabulary inside the same closure suppresses pool-capture. *)
let is_sync_mention e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match last_module txt with
    | Some ("Mutex" | "Atomic" | "Semaphore" | "Condition") -> true
    | _ ->
      let n = String.lowercase_ascii (ident_name txt) in
      n = "locked" || n = "lock" || n = "protect" || n = "with_lock")
  | _ -> false

let mentions_sync e = expr_exists is_sync_mention e

let hashtbl_mutators =
  [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]

(* Captured-state mutations inside [e]: (name, loc, what) for
   [name := _], [name.field <- _] and [Hashtbl.replace name ...] where
   [name] is not bound anywhere inside [e] itself. Array/Bytes element
   writes are deliberately exempt: per-index disjoint slots are the
   pool's documented result-recording pattern. *)
let captured_mutations e =
  let bound = bound_names_in e in
  let muts = ref [] in
  let target_name t =
    match head_ident t with
    | Some (Longident.Lident n) when not (Hashtbl.mem bound n) -> Some n
    | _ -> None
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_setfield (t, _, _) -> (
            match target_name t with
            | Some n -> muts := (n, e.pexp_loc, "mutable field") :: !muts
            | None -> ())
          | Pexp_apply
              ({ pexp_desc = Pexp_ident { txt = Lident ":="; _ }; _ },
               (_, lhs) :: _) -> (
            match target_name lhs with
            | Some n -> muts := (n, e.pexp_loc, "ref cell") :: !muts
            | None -> ())
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, tbl) :: _)
            when qualified ~modules:[ "Hashtbl" ] ~names:hashtbl_mutators txt
            -> (
            match target_name tbl with
            | Some n -> muts := (n, e.pexp_loc, "Hashtbl") :: !muts
            | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  List.rev !muts

let float_idents =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float"; "min_float" ]

let float_ops =
  [ "+."; "-."; "*."; "/."; "**"; "~-."; "abs_float"; "sqrt"; "float_of_int" ]

(* Syntactically-evident floatness; typing is unavailable, so only
   literals, the float constants, float arithmetic and Float.* results
   count. *)
let floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } -> stdlib_ident ~names:float_idents txt
  | Pexp_apply (f, _) -> (
    match head_ident f with
    | Some lid -> (
      stdlib_ident ~names:float_ops lid
      ||
      match last_module lid with
      | Some "Float" -> ident_name lid <> "to_int"
      | _ -> false)
    | None -> false)
  | Pexp_constraint
      (_, { ptyp_desc = Ptyp_constr ({ txt = Lident "float"; _ }, []); _ }) ->
    true
  | _ -> false

let sort_names = [ "sort"; "sort_uniq"; "stable_sort"; "fast_sort" ]

let is_sort_head e =
  match head_ident e with
  | Some lid -> qualified ~modules:[ "List"; "Array" ] ~names:sort_names lid
  | None -> false

(* The fold result is considered order-safe when an enclosing
   application sorts it: [List.sort cmp (Hashtbl.fold ...)] or
   [Hashtbl.fold ... |> List.sort_uniq cmp |> ...]. *)
let sorted_by_ancestor ancestors =
  List.exists
    (fun a ->
      match a.pexp_desc with
      | Pexp_apply (f, args) ->
        is_sort_head f || List.exists (fun (_, arg) -> is_sort_head arg) args
      | _ -> false)
    ancestors

(* ---------- waivers ---------- *)

type waiver = { w_rule : string; w_from : int; w_to : int }

let string_const e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* Accepted payload shapes:
     [@codelint.allow "rule-id" "justification"]   (application)
     [@codelint.allow ("rule-id", "justification")] (tuple)
     [@codelint.allow "rule-id"]                    (missing justification
                                                     -> waiver finding) *)
let parse_allow_payload = function
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
    match e.pexp_desc with
    | Pexp_constant (Pconst_string (s, _, _)) -> `No_justification s
    | Pexp_tuple [ a; b ] -> (
      match (string_const a, string_const b) with
      | Some r, Some j -> `Ok (r, j)
      | _ -> `Malformed)
    | Pexp_apply (f, [ (_, arg) ]) -> (
      match (string_const f, string_const arg) with
      | Some r, Some j -> `Ok (r, j)
      | _ -> `Malformed)
    | _ -> `Malformed)
  | _ -> `Malformed

let is_allow_attr (a : attribute) = a.attr_name.txt = "codelint.allow"

(* ---------- the analysis ---------- *)

let lint_structure ?(config = default_config) ~file str =
  let file = normalize_path file in
  let findings = ref [] in
  let waivers = ref [] in
  let emit ?(severity = Error) rule loc fmt =
    Printf.ksprintf
      (fun message ->
        findings :=
          {
            rule;
            severity;
            file;
            line = loc_line loc;
            col = loc_col loc;
            message;
          }
          :: !findings)
      fmt
  in
  let lib_scope = in_scope config.lib_prefixes file in
  let solver_scope = in_scope config.solver_prefixes file in
  let numeric_scope = in_scope config.numeric_prefixes file in

  (* -- pass 1: waiver spans (and waiver hygiene findings) ------------ *)
  let add_waiver ~from_line ~to_line (a : attribute) =
    match parse_allow_payload a.attr_payload with
    | `Ok (rule, j) ->
      if not (known_rule rule) then
        emit "waiver" a.attr_loc "[@codelint.allow] names unknown rule `%s`"
          rule
      else if String.trim j = "" then
        emit "waiver" a.attr_loc
          "[@codelint.allow \"%s\"] has an empty justification" rule
      else waivers := { w_rule = rule; w_from = from_line; w_to = to_line } :: !waivers
    | `No_justification rule ->
      emit "waiver" a.attr_loc
        "[@codelint.allow \"%s\"] lacks a justification string (use \
         [@codelint.allow \"%s\" \"why this is safe\"])"
        rule rule
    | `Malformed ->
      emit "waiver" a.attr_loc
        "malformed [@codelint.allow] payload: expected a rule id and a \
         justification string"
  in
  let collect_attrs ~loc attrs =
    List.iter
      (fun a ->
        if is_allow_attr a then
          add_waiver ~from_line:(loc_line loc)
            ~to_line:loc.Location.loc_end.pos_lnum a)
      attrs
  in
  let waiver_it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          collect_attrs ~loc:e.pexp_loc e.pexp_attributes;
          Ast_iterator.default_iterator.expr it e);
      value_binding =
        (fun it vb ->
          collect_attrs ~loc:vb.pvb_loc vb.pvb_attributes;
          Ast_iterator.default_iterator.value_binding it vb);
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_attribute a when is_allow_attr a ->
            (* Floating [@@@codelint.allow ...]: rest of the file. *)
            (match parse_allow_payload a.attr_payload with
            | `Ok (rule, j) ->
              if not (known_rule rule) then
                emit "waiver" a.attr_loc
                  "[@codelint.allow] names unknown rule `%s`" rule
              else if String.trim j = "" then
                emit "waiver" a.attr_loc
                  "[@codelint.allow \"%s\"] has an empty justification" rule
              else
                waivers :=
                  { w_rule = rule; w_from = loc_line a.attr_loc; w_to = max_int }
                  :: !waivers
            | `No_justification rule ->
              emit "waiver" a.attr_loc
                "[@codelint.allow \"%s\"] lacks a justification string" rule
            | `Malformed ->
              emit "waiver" a.attr_loc
                "malformed [@codelint.allow] payload: expected a rule id and \
                 a justification string")
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it si);
    }
  in
  waiver_it.structure waiver_it str;

  (* -- pass 2: rules ------------------------------------------------- *)
  let check_rec_bindings vbs =
    let names =
      List.filter_map
        (fun vb ->
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } -> Some txt
          | _ -> None)
        vbs
    in
    List.iter
      (fun vb ->
        let body = vb.pvb_expr in
        let self_call =
          expr_exists
            (fun e ->
              match e.pexp_desc with
              | Pexp_ident { txt = Lident n; _ } -> List.mem n names
              | _ -> false)
            body
        in
        if
          self_call
          && expr_size body >= config.recursion_threshold
          && not (mentions_budget body)
        then
          emit "budget-poll" vb.pvb_loc
            "self-recursive solver loop `%s` (%d nodes) has no \
             Util.Budget checkpoint on any path"
            (match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } -> txt
            | _ -> "_")
            (expr_size body))
      vbs
  in
  let ancestors = ref [] in
  let check_expr e =
    (match e.pexp_desc with
    (* ---- no-failwith ---- *)
    | Pexp_ident { txt; loc }
      when lib_scope && stdlib_ident ~names:[ "failwith"; "invalid_arg" ] txt ->
      emit "no-failwith" loc
        "`%s` in library code: raise through Util.Invariant (%s) so failures \
         carry a structured `where`"
        (ident_name txt)
        (if ident_name txt = "failwith" then "Invariant.fail"
         else "Invariant.invalid")
    | Pexp_assert
        { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
      when lib_scope ->
      emit "no-failwith" e.pexp_loc
        "`assert false` in library code: use Invariant.fail with a message \
         naming the impossible state"
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt = raise_id; _ }; _ },
         [ (_, { pexp_desc = Pexp_construct ({ txt = exn_id; _ }, _); _ }) ])
      when lib_scope
           && stdlib_ident ~names:[ "raise"; "raise_notrace" ] raise_id
           && stdlib_ident ~names:[ "Failure"; "Invalid_argument" ] exn_id ->
      emit "no-failwith" e.pexp_loc
        "`raise (%s _)` in library code: raise through Util.Invariant instead"
        (ident_name exn_id)
    (* ---- budget-poll: while loops ---- *)
    | Pexp_while (cond, body) when solver_scope ->
      if not (mentions_budget cond || mentions_budget body) then
        emit "budget-poll" e.pexp_loc
          "while-loop in a solver module has no Util.Budget checkpoint in \
           its condition or body"
    (* ---- budget-poll: recursive lets inside expressions ---- *)
    | Pexp_let (Recursive, vbs, _) when solver_scope -> check_rec_bindings vbs
    (* ---- det-order / float-eq / pool-capture via applications ---- *)
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      (* Hashtbl.fold / Hashtbl.iter without a sorting ancestor. *)
      if qualified ~modules:[ "Hashtbl" ] ~names:[ "fold"; "iter" ] txt then begin
        if not (sorted_by_ancestor !ancestors) then
          emit "det-order" e.pexp_loc
            "`Hashtbl.%s` result is not passed through an explicit sort: \
             bucket order depends on the hash seed and can leak into outputs"
            (ident_name txt)
      end;
      (* Polymorphic comparison on floats. *)
      (if
         numeric_scope
         && stdlib_ident ~names:[ "="; "<>"; "=="; "!="; "compare" ] txt
       then
         match args with
         | [ (_, a); (_, b) ] when floatish a || floatish b ->
           emit "float-eq" e.pexp_loc
             "polymorphic `%s` on a float operand: use Float.equal / \
              Float.compare (NaN-explicit, monomorphic)"
             (ident_name txt)
         | _ -> ());
      (* Pool closures mutating captured state. *)
      if
        qualified ~modules:[ "Pool" ]
          ~names:[ "map"; "map_budgeted"; "run"; "submit" ]
          txt
      then
        List.iter
          (fun (_, arg) ->
            if not (mentions_sync arg) then
              List.iter
                (fun (name, loc, what) ->
                  emit "pool-capture" loc
                    "closure given to Pool.%s mutates captured %s `%s` with \
                     no Mutex/Atomic in scope: parallel tasks race on it"
                    (ident_name txt) what name)
                (captured_mutations arg))
          args)
    (* ---- det-order: ambient entropy ---- *)
    | Pexp_ident { txt; loc }
      when qualified ~modules:[ "Random" ] ~names:[ "self_init" ] txt ->
      emit "det-order" loc
        "`Random.self_init` makes runs irreproducible: thread Util.Rng seeds \
         instead"
    | Pexp_ident { txt; loc }
      when solver_scope
           && (qualified ~modules:[ "Unix" ] ~names:[ "gettimeofday"; "time" ]
                 txt
              || qualified ~modules:[ "Sys" ] ~names:[ "time" ] txt) ->
      emit "det-order" loc
        "wall-clock time in a solver module: use Util.Budget's monotonic \
         clock so deadlines and outputs stay reproducible"
    | _ -> ())
  in
  let rule_it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          check_expr e;
          ancestors := e :: !ancestors;
          Ast_iterator.default_iterator.expr it e;
          ancestors := List.tl !ancestors);
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_value (Recursive, vbs) when solver_scope ->
            check_rec_bindings vbs
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it si);
    }
  in
  rule_it.structure rule_it str;

  (* -- apply waivers ------------------------------------------------- *)
  let waived f =
    f.rule <> "waiver"
    && List.exists
         (fun w -> w.w_rule = f.rule && w.w_from <= f.line && f.line <= w.w_to)
         !waivers
  in
  List.filter (fun f -> not (waived f)) (List.rev !findings)
  |> List.sort (fun a b ->
         match compare a.line b.line with 0 -> compare a.col b.col | c -> c)

let lint_string ?config ~file src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  match Parse.implementation lexbuf with
  | str -> lint_structure ?config ~file str
  | exception exn ->
    [
      {
        rule = "parse-error";
        severity = Error;
        file = normalize_path file;
        line = 1;
        col = 0;
        message = Printexc.to_string exn;
      };
    ]

let lint_file ?config path =
  match Pparse.parse_implementation ~tool_name:"codelint" path with
  | str -> lint_structure ?config ~file:path str
  | exception exn ->
    [
      {
        rule = "parse-error";
        severity = Error;
        file = normalize_path path;
        line = 1;
        col = 0;
        message = Printexc.to_string exn;
      };
    ]

(* ---------- rendering ---------- *)

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s: %s" f.file f.line f.col
    (severity_label f.severity) f.rule f.message

let finding_json f =
  Json.Obj
    [
      ("rule", Json.Str f.rule);
      ("severity", Json.Str (severity_label f.severity));
      ("file", Json.Str f.file);
      ("line", Json.Int f.line);
      ("col", Json.Int f.col);
      ("message", Json.Str f.message);
    ]

let findings_json fs =
  Json.Obj
    [
      ("tool", Json.Str "codelint");
      ("findings", Json.List (List.map finding_json fs));
      ("errors",
       Json.Int (List.length (List.filter (fun f -> f.severity = Error) fs)));
    ]
