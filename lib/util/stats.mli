(** Small numeric summaries used by reports and benches. *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val geomean : float array -> float
(** Geometric mean of positive values; 0 for the empty array. *)

val max_by : ('a -> float) -> 'a array -> 'a
(** Element maximizing [f]; raises [Invalid_argument] on empty input. *)

val fmax : float array -> float
val fmin : float array -> float

val stddev : float array -> float
(** Population standard deviation; 0 for arrays of length < 2. *)

val histogram : bins:int -> float array -> (float * int) array
(** [histogram ~bins xs] returns [(lower_edge, count)] pairs covering
    [\[min xs, max xs\]]. Empty input yields an empty array. *)
