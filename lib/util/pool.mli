(** Fixed-size work-sharing domain pool.

    The solver stack is embarrassingly parallel at three levels —
    branch & bound subtrees, independent per-context ILPs, and the
    Table-I benchmark sweep — and OCaml 5 domains are the unit of
    hardware parallelism. Spawning a domain costs milliseconds, so a
    pool is created once ({!create} or the memoizing {!get}) and
    reused for every batch.

    Submission model: a batch of tasks is pushed to the pool and the
    {e submitting thread participates} in executing it (work sharing).
    This makes nested submission safe — a task running on a pool
    worker may submit another batch to the same pool and will at worst
    execute that batch entirely by itself — and it means a pool of
    size 1 degenerates to plain sequential execution with no
    synchronization surprises.

    Contracts:

    - {e Deterministic result ordering}: results land at the index of
      their input, whatever order tasks were executed in.
    - {e Exception capture}: a raising task does not poison the batch;
      every other task still runs, then the first exception (in input
      order) is re-raised with its original backtrace.
    - {e Budget integration}: {!map_budgeted} checks the budget before
      {e starting} each task; once the budget expires the remaining
      tasks are drained unrun ([None]) and whatever completed is
      returned best-effort. Running tasks are never interrupted — they
      poll the same budget at their own checkpoints.

    Tasks must not share mutable solver state across domains
    (a {!Agingfp_lp.Simplex.state} belongs to one domain at a time);
    give each task its own state, and seed any randomness from an
    explicitly {!Rng.split} generator so runs stay reproducible at a
    fixed pool size. *)

type t

val create : domains:int -> t
(** [create ~domains] makes a pool that executes batches on [domains]
    threads of control in total: the submitter plus [domains - 1]
    spawned worker domains. [domains <= 1] spawns nothing.
    Raises [Invalid_argument] if [domains < 1] or [domains > 128]. *)

val get : ?clamp:bool -> int -> t
(** [get domains] is a process-global memoized pool — the "spawn once,
    reuse everywhere" entry point used by [Milp.params.jobs] and the
    suite driver. Pools obtained this way are shut down automatically
    at exit.

    By default the requested size is clamped to
    {!default_jobs}[ ()]: running more domains than cores
    oversubscribes the scheduler and measured 0.27x on a 1-core host,
    so oversubscription must be asked for explicitly with
    [~clamp:false]. Callers still see their requested batch
    structure — only the number of spawned domains shrinks; {!size}
    reports the effective value. *)

val effective_jobs : int -> int
(** [effective_jobs jobs] is the domain count {!get} would actually
    use: [jobs] clamped to [[1, default_jobs ()]]. Use it for wave
    arithmetic that must match the pool's real parallelism. *)

val size : t -> int
(** Total domains (including the submitter) batches are spread over. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [--jobs 0] resolves
    to. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f xs] applies [f] to every element concurrently;
    [(map pool f xs).(i)] is [f xs.(i)]. Re-raises the first (by
    index) captured exception after the whole batch has settled. *)

val map_budgeted :
  t -> budget:Budget.t -> ('a -> 'b) -> 'a array -> 'b option array
(** Like {!map}, but each task start polls [budget]: tasks not yet
    started when it expires are skipped and report [None]. Exceptions
    from tasks that did run are still re-raised. *)

val run : t -> (unit -> unit) array -> unit
(** [run pool bodies] executes every body concurrently and returns
    when all have finished — the building block for worker-loop
    parallelism (parallel branch & bound runs one node-pump per
    domain). Exception policy as {!map}. *)

val request_stop : t -> unit
(** Async-signal-safe stop request: a single atomic store, no locks,
    no allocation — the one {!t} operation a signal handler may call.
    Marks the pool as stopping (idle workers notice at their next
    wakeup, {!get} stops handing the pool out); the actual drain must
    still be performed by {!shutdown} from normal context. *)

val shutdown : t -> unit
(** Join the worker domains and, for pools obtained through {!get},
    drop them from the process-global registry so a later {!get}
    builds a fresh pool and the at-exit sweep never walks a dead one.
    Idempotent, and safe to call concurrently from several threads
    (whoever wins joins the workers; everyone else is a no-op).
    Submitting to a shut-down pool executes sequentially on the
    caller. *)
