(* Work-sharing domain pool. One mutex/condition pair guards the whole
   pool; tasks are claimed under the lock but executed outside it, and
   the submitter helps execute its own batch, so nested submission
   cannot deadlock: a waiter only ever blocks on tasks that some other
   thread is actively running. *)

type batch = {
  tasks : (int -> unit) array; (* each records its own result by index *)
  mutable next : int;          (* next unclaimed task (under pool mutex) *)
  mutable completed : int;     (* finished tasks (under pool mutex) *)
}

type t = {
  mutex : Mutex.t;
  work : Condition.t;   (* workers: a batch gained unclaimed tasks / stop *)
  settled : Condition.t; (* submitters: some batch made progress *)
  mutable batches : batch list;
  mutable stop : bool;
  (* Lock-free mirror of [stop] for {!request_stop}: signal handlers
     must not take [mutex] (the interrupted thread may hold it), so
     they flip this atomic instead and the drain completes later in
     normal context ({!shutdown}). Workers read it in their wait
     predicate, [stop] proper stays mutex-guarded. *)
  stop_requested : bool Atomic.t;
  mutable workers : unit Domain.t list;
  domains : int;
}

let size t = t.domains

let default_jobs () = Domain.recommended_domain_count ()

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Claim one task from any live batch. Called with the mutex held. *)
let try_claim t =
  let rec scan = function
    | [] -> None
    | b :: rest ->
      if b.next < Array.length b.tasks then begin
        let i = b.next in
        b.next <- i + 1;
        Some (b, i)
      end
      else scan rest
  in
  scan t.batches

(* Execute a claimed task outside the lock, then book completion. *)
let execute t b i =
  b.tasks.(i) i;
  locked t (fun () ->
      b.completed <- b.completed + 1;
      if b.completed = Array.length b.tasks then begin
        t.batches <- List.filter (fun b' -> b' != b) t.batches;
        Condition.broadcast t.settled
      end)

let worker_loop t () =
  let rec loop () =
    let claimed =
      locked t (fun () ->
          let rec wait () =
            match try_claim t with
            | Some _ as c -> c
            | None ->
              if t.stop || Atomic.get t.stop_requested then None
              else begin
                Condition.wait t.work t.mutex;
                wait ()
              end
          in
          wait ())
    in
    match claimed with
    | None -> ()
    | Some (b, i) ->
      execute t b i;
      loop ()
  in
  loop ()

let create ~domains =
  if domains < 1 || domains > 128 then Invariant.invalid ~where:"Pool.create" "domains must be in [1, 128]";
  let t =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      settled = Condition.create ();
      batches = [];
      stop = false;
      stop_requested = Atomic.make false;
      workers = [];
      domains;
    }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (worker_loop t));
  t

(* Async-signal-safe stop request: one atomic store, no locks, no
   allocation. Idle workers are not woken (a reliable wakeup needs the
   mutex-held broadcast below); they observe the flag at their next
   wakeup, and {!shutdown} — called from normal context during the
   drain — delivers the broadcast that makes termination prompt. *)
let request_stop t = Atomic.set t.stop_requested true

(* Join the worker domains. Idempotent and safe to race: whichever
   caller wins the lock takes the worker list, everyone else joins
   nothing. Registry deregistration lives in [shutdown] below, once
   the registry exists. *)
let drain t =
  Atomic.set t.stop_requested true;
  let workers =
    locked t (fun () ->
        let ws = t.workers in
        t.workers <- [];
        t.stop <- true;
        Condition.broadcast t.work;
        ws)
  in
  List.iter Domain.join workers

(* Submit a batch and help execute it until every task has settled. *)
let submit t tasks =
  let n = Array.length tasks in
  if n = 0 then ()
  else begin
    let b = { tasks; next = 0; completed = 0 } in
    locked t (fun () ->
        t.batches <- t.batches @ [ b ];
        Condition.broadcast t.work);
    let rec help () =
      let claimed =
        locked t (fun () ->
            let rec wait () =
              if b.completed = Array.length b.tasks then `Done
              else if b.next < Array.length b.tasks then begin
                let i = b.next in
                b.next <- i + 1;
                `Task i
              end
              else begin
                (* All claimed, some still running on other domains:
                   help any OTHER live batch rather than idling (keeps
                   nested submitters honest), else wait. *)
                match try_claim t with
                | Some (b', i) -> `Other (b', i)
                | None ->
                  Condition.wait t.settled t.mutex;
                  wait ()
              end
            in
            wait ())
      in
      match claimed with
      | `Done -> ()
      | `Task i ->
        execute t b i;
        help ()
      | `Other (b', i) ->
        execute t b' i;
        help ()
    in
    help ()
  end

(* Shared result plumbing: run [f] over every index, capturing per-task
   exceptions; re-raise the first one (by input index) once settled. *)
let run_indexed t n f =
  let exns = Array.make n None in
  let tasks =
    Array.init n (fun i _ ->
        match f i with
        | () -> ()
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          exns.(i) <- Some (e, bt))
  in
  submit t tasks;
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    exns

let map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run_indexed t n (fun i -> results.(i) <- Some (f xs.(i)));
    Array.map
      (function
        | Some r -> r
        | None -> Invariant.fail ~where:"Pool.map" "task settled without a result (run_indexed re-raises)")
      results
  end

let map_budgeted t ~budget f xs =
  let n = Array.length xs in
  let results = Array.make n None in
  if n > 0 then
    run_indexed t n (fun i ->
        (* Drain, don't start: an expired budget skips the task; tasks
           already running poll the same budget at their own
           checkpoints. *)
        if not (Budget.expired budget) then results.(i) <- Some (f xs.(i)));
  results

let run t bodies = run_indexed t (Array.length bodies) (fun i -> bodies.(i) ())

(* ---------- memoized process-global pools ---------- *)

let registry : (int, t) Hashtbl.t = Hashtbl.create 4
let registry_mutex = Mutex.create ()
let cleanup_registered = ref false

let effective_jobs jobs = max 1 (min jobs (default_jobs ()))

(* Full drain plus registry deregistration, so a long-running daemon
   can shut pools down and re-[get] fresh ones without the at_exit
   sweep ever walking a dead pool. [drain] and the registry edit take
   their locks strictly in sequence, never nested, so this cannot
   deadlock against [get] or the at_exit sweep. *)
let shutdown t =
  drain t;
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) (fun () ->
      match Hashtbl.find_opt registry t.domains with
      | Some p when p == t -> Hashtbl.remove registry t.domains
      | _ -> ())

let get ?(clamp = true) domains =
  let domains = if clamp then effective_jobs domains else max 1 domains in
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) (fun () ->
      match Hashtbl.find_opt registry domains with
      | Some t when not (t.stop || Atomic.get t.stop_requested) -> t
      | _ ->
        let t = create ~domains in
        Hashtbl.replace registry domains t;
        if not !cleanup_registered then begin
          cleanup_registered := true;
          (* Leaving worker domains blocked on a condition variable at
             process exit is undefined behaviour; drain them. *)
          at_exit (fun () ->
              let pools =
                Mutex.lock registry_mutex;
                Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex)
                  (fun () ->
                    (Hashtbl.fold (fun _ p acc -> p :: acc) registry []
                    [@codelint.allow "det-order"
                      "every registered pool is shut down; drain order is \
                       irrelevant"]))
              in
              List.iter shutdown pools)
        end;
        t)
