(** Uniform reporting of broken internal invariants.

    Pipeline stages (rotation planning, refinement, placement, …) used
    to signal "impossible" states with bare [failwith], which loses the
    failing module and prints inconsistently next to audit and lint
    diagnostics. [Invariant.fail] raises a dedicated exception whose
    message always carries the violating module/function, so invariant
    breakage reports the same way everywhere. *)

exception Violation of string
(** The payload is the full formatted message, including [where]. *)

val message : where:string -> string -> string
(** [message ~where what] is the canonical ["invariant violated in
    <where>: <what>"] rendering. *)

val fail : where:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [fail ~where fmt ...] raises {!Violation} with the formatted
    message. [where] names the module or function whose invariant
    broke, e.g. ["Rotation.freeze_plan"]. *)

val invalid : where:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [invalid ~where fmt ...] raises [Invalid_argument] with message
    ["<where>: <what>"] — the repo's single sanctioned spelling of a
    public-API precondition failure. Unlike {!fail} (an internal bug),
    [invalid] blames the caller, so it keeps the stdlib
    [Invalid_argument] contract; codelint's no-failwith rule rejects
    bare [invalid_arg] in lib/ in favour of this wrapper. *)
