exception Violation of string

let message ~where what = Printf.sprintf "invariant violated in %s: %s" where what

let fail ~where fmt =
  Format.kasprintf (fun what -> raise (Violation (message ~where what))) fmt

let () =
  Printexc.register_printer (function
    | Violation msg -> Some msg
    | _ -> None)
