exception Violation of string

let message ~where what = Printf.sprintf "invariant violated in %s: %s" where what

let fail ~where fmt =
  Format.kasprintf (fun what -> raise (Violation (message ~where what))) fmt

(* Public-API precondition failures. Callers keep the stdlib
   [Invalid_argument] contract (message "where: what", exactly what the
   bare [invalid_arg] sites used to produce), but every raise goes
   through this module so codelint's no-failwith rule can insist on a
   structured `where` everywhere in lib/. *)
let invalid ~where fmt =
  Format.kasprintf
    (fun what ->
      (invalid_arg [@codelint.allow "no-failwith"
                     "this is the sanctioned wrapper the rule points to"])
        (where ^ ": " ^ what))
    fmt

let () =
  Printexc.register_printer (function
    | Violation msg -> Some msg
    | _ -> None)
