(** Minimal imperative binary heap, parameterized by a comparison.

    Used as a max-priority queue by the K-longest-path enumerator and
    the placer. [create cmp] orders elements so that [pop] returns the
    {e smallest} under [cmp]; pass a reversed comparison for a
    max-heap. *)

type 'a t

val create : ('a -> 'a -> int) -> 'a t

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the minimum element, or [None] when empty. *)

val peek : 'a t -> 'a option

val size : 'a t -> int

val is_empty : 'a t -> bool
