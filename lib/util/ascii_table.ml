type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ?align ~header rows =
  let ncols = Array.length header in
  let align =
    match align with Some a -> a | None -> Array.make ncols Right
  in
  if Array.length align <> ncols then
    Invariant.invalid ~where:"Ascii_table.render" "align/header length mismatch";
  let full_rows =
    List.map
      (fun row ->
        let n = Array.length row in
        if n > ncols then Invariant.invalid ~where:"Ascii_table.render" "row too wide";
        Array.init ncols (fun i -> if i < n then row.(i) else ""))
      rows
  in
  let widths = Array.map String.length header in
  List.iter
    (fun row ->
      Array.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    full_rows;
  let line row =
    String.concat "  " (Array.to_list (Array.mapi (fun i c -> pad align.(i) widths.(i) c) row))
  in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (line header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  List.iter
    (fun row ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (line row))
    full_rows;
  Buffer.contents buf

let render_grid ~w ~h cell =
  let cells = Array.init h (fun y -> Array.init w (fun x -> cell x y)) in
  let width =
    Array.fold_left
      (fun acc row -> Array.fold_left (fun a c -> max a (String.length c)) acc row)
      1 cells
  in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun y row ->
      if y > 0 then Buffer.add_char buf '\n';
      Array.iteri
        (fun x c ->
          if x > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf (pad Right width c))
        row)
    cells;
  Buffer.contents buf
