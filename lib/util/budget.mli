(** Cooperative solve budgets: wall-clock deadlines plus operation
    allowances.

    The solver stack (simplex, presolve, branch & bound, the remap
    ladder) has no preemption; every loop instead polls a {!t} at its
    checkpoints — once per simplex pivot, presolve round, B&B node,
    Δ-relaxation attempt — and unwinds cleanly when the budget is
    gone. A budget combines

    - an absolute {e wall-clock deadline} against a monotonic clock
      (never the system time-of-day clock, which can jump), and
    - an optional {e allowance} of abstract operations (LP iterations,
      nodes), spent explicitly by the owner.

    Budgets form a tree: {!slice} and {!with_deadline} derive child
    budgets that can only be stricter than their parent — a child's
    deadline never exceeds the parent's, and allowance spending
    propagates upward — so handing a pipeline stage "its share" of the
    remaining time cannot break the caller's overall bound.

    Every solve entry point reports {e why} it stopped with a
    {!stop_reason}; [Optimal] means the budget was not the binding
    constraint. *)

type t

type stop_reason =
  | Optimal          (** ran to completion; the budget did not bind *)
  | Gap_limit
      (** stopped early with a certified incumbent: the relative
          optimality gap reached the requested tolerance (branch &
          bound's [mip_gap]). A successful stop, not a budget cut —
          barely more severe than [Optimal]. *)
  | Deadline         (** wall-clock deadline reached *)
  | Node_limit       (** branch & bound node allowance exhausted *)
  | Iteration_limit  (** simplex iteration allowance exhausted *)
  | Fault of string  (** aborted by a solver fault (see {!Agingfp_lp.Faults}) *)

val pp_stop_reason : Format.formatter -> stop_reason -> unit
val stop_reason_to_string : stop_reason -> string

val worst : stop_reason -> stop_reason -> stop_reason
(** The more severe of two reasons ([Fault] > [Deadline] >
    [Iteration_limit] > [Node_limit] > [Gap_limit] > [Optimal]) —
    aggregating many component solves keeps the reason that taints the
    aggregate most. *)

val unlimited : t
(** Never expires. The default for every solver entry point, so
    callers that do not care about deadlines see exactly the old
    behaviour. *)

val create : ?clock:(unit -> int64) -> ?deadline_s:float -> ?allowance:int -> unit -> t
(** [create ~deadline_s ()] starts the clock now. [clock] (monotonic
    nanoseconds; defaults to [CLOCK_MONOTONIC]) exists for tests that
    need a deterministic fake clock. [allowance], when given, is an
    abstract operation budget drained with {!spend}. Omitting both
    limits yields a budget equivalent to {!unlimited}. *)

val slice : t -> fraction:float -> t
(** [slice parent ~fraction] is a child budget whose deadline is [now
    + fraction * remaining parent] (clamped to the parent's own
    deadline). A slice of an unbounded parent is unbounded. The child
    carries no own allowance but spending on it still drains the
    parent's. *)

val with_deadline : t -> deadline_s:float -> t
(** [with_deadline parent ~deadline_s] is a child expiring after
    [deadline_s] seconds from now, or at the parent's deadline,
    whichever comes first. *)

val spend : t -> int -> unit
(** Drain [n] units from this budget's allowance and every ancestor's. *)

val expired : t -> bool
(** True once the deadline has passed or any allowance (own or
    inherited) is exhausted. Cheap enough to poll once per simplex
    iteration. *)

val status : t -> stop_reason
(** [Optimal] while the budget still has room, otherwise the binding
    constraint: [Deadline], or [Iteration_limit] when an allowance ran
    dry. *)

val is_unlimited : t -> bool
(** True when neither this budget nor any ancestor carries a deadline
    or an allowance — checkpoints can skip clock reads entirely. *)

val remaining_s : t -> float
(** Seconds until the effective (own or inherited) deadline;
    [infinity] when unbounded, [0.] once expired. *)

val elapsed_s : t -> float
(** Seconds since this budget was created. *)
