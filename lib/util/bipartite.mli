(** Maximum bipartite matching (Hopcroft–Karp).

    Used by the floorplanner's delay-unaware feasibility probe: within
    one context, "every operation gets a distinct PE whose residual
    stress budget accepts it" is exactly a perfect-matching question
    on the operation/PE bipartite graph. *)

type t

val create : n_left:int -> n_right:int -> t

val add_edge : t -> int -> int -> unit
(** [add_edge t l r] — edges may be added in any order; duplicates are
    harmless. @raise Invalid_argument on out-of-range endpoints. *)

val solve : t -> int array
(** Maximum-cardinality matching; the result maps each left vertex to
    its matched right vertex or [-1]. Runs in O(E √V). Adjacency is
    explored in insertion order, so callers can bias which right
    vertices are preferred by adding the preferred edges first. *)

val matching_size : int array -> int
(** Number of matched left vertices in a {!solve} result. *)
