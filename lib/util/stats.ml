let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = Array.fold_left (fun a x -> a +. log x) 0.0 xs in
    exp (acc /. float_of_int n)
  end

let max_by f xs =
  if Array.length xs = 0 then Invariant.invalid ~where:"Stats.max_by" "empty array";
  let best = ref xs.(0) in
  let best_v = ref (f xs.(0)) in
  for i = 1 to Array.length xs - 1 do
    let v = f xs.(i) in
    if v > !best_v then begin
      best := xs.(i);
      best_v := v
    end
  done;
  !best

let fmax xs = Array.fold_left max neg_infinity xs
let fmin xs = Array.fold_left min infinity xs

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int n)
  end

let histogram ~bins xs =
  if Array.length xs = 0 then [||]
  else begin
    let lo = fmin xs and hi = fmax xs in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
    let counts = Array.make bins 0 in
    Array.iter
      (fun x ->
        let i = int_of_float ((x -. lo) /. width) in
        let i = if i >= bins then bins - 1 else i in
        counts.(i) <- counts.(i) + 1)
      xs;
    Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts
  end
