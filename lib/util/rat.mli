(** Exact arbitrary-precision dyadic rational arithmetic.

    Every finite IEEE-754 double is exactly [m * 2^e] for integers [m]
    and [e], and the certificate checks in {!module:Agingfp_lp} only
    ever add, subtract and multiply values originating from floats — a
    ring that dyadic rationals are closed under. Representing numbers
    as [sign * mag * 2^exp] with an arbitrary-precision magnitude
    therefore gives exact arithmetic with no external bignum
    dependency and no gcd normalization.

    All operations are exact; there is no rounding anywhere. *)

type t
(** An exact dyadic rational. Structurally normalized: comparisons via
    {!compare}/{!equal} are semantic equality. *)

val zero : t
val one : t

val of_int : int -> t

val of_float : float -> t
(** Exact conversion — every finite float is a dyadic rational.
    @raise Invalid_argument on [nan] or infinities. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val min : t -> t -> t
val max : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_integer : t -> bool

val to_float : t -> float
(** Nearest double (correct to within one ulp of the top 60 bits of
    the magnitude; used only for diagnostics, never for decisions). *)

val to_string : t -> string
(** Exact decimal representation: an integer, or ["n/d"] with [d] a
    power of two. *)

val pp : Format.formatter -> t -> unit
