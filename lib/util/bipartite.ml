type t = {
  n_left : int;
  n_right : int;
  adj : int list array;  (* reversed insertion order; reversed back in solve *)
}

let create ~n_left ~n_right =
  if n_left < 0 || n_right < 0 then Invariant.invalid ~where:"Bipartite.create" "negative size";
  { n_left; n_right; adj = Array.make (max 1 n_left) [] }

let add_edge t l r =
  if l < 0 || l >= t.n_left || r < 0 || r >= t.n_right then
    Invariant.invalid ~where:"Bipartite.add_edge" "endpoint out of range";
  t.adj.(l) <- r :: t.adj.(l)

let infinity_dist = max_int

(* Hopcroft-Karp: repeated BFS layering + DFS augmentation along
   shortest alternating paths. *)
let solve t =
  let adj = Array.map List.rev t.adj in
  let match_l = Array.make (max 1 t.n_left) (-1) in
  let match_r = Array.make (max 1 t.n_right) (-1) in
  let dist = Array.make (max 1 t.n_left) infinity_dist in
  let queue = Queue.create () in
  let bfs () =
    Queue.clear queue;
    let found = ref false in
    for l = 0 to t.n_left - 1 do
      if match_l.(l) = -1 then begin
        dist.(l) <- 0;
        Queue.add l queue
      end
      else dist.(l) <- infinity_dist
    done;
    while not (Queue.is_empty queue) do
      let l = Queue.pop queue in
      List.iter
        (fun r ->
          match match_r.(r) with
          | -1 -> found := true
          | l' ->
            if dist.(l') = infinity_dist then begin
              dist.(l') <- dist.(l) + 1;
              Queue.add l' queue
            end)
        adj.(l)
    done;
    !found
  in
  let rec dfs l =
    let rec try_edges = function
      | [] ->
        dist.(l) <- infinity_dist;
        false
      | r :: rest -> (
        match match_r.(r) with
        | -1 ->
          match_l.(l) <- r;
          match_r.(r) <- l;
          true
        | l' ->
          if dist.(l') = dist.(l) + 1 && dfs l' then begin
            match_l.(l) <- r;
            match_r.(r) <- l;
            true
          end
          else try_edges rest)
    in
    try_edges adj.(l)
  in
  while bfs () do
    for l = 0 to t.n_left - 1 do
      if match_l.(l) = -1 then ignore (dfs l)
    done
  done;
  if t.n_left = 0 then [||] else match_l

let matching_size m = Array.fold_left (fun acc r -> if r >= 0 then acc + 1 else acc) 0 m
