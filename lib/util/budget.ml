type stop_reason =
  | Optimal
  | Gap_limit
  | Deadline
  | Node_limit
  | Iteration_limit
  | Fault of string

let stop_reason_to_string = function
  | Optimal -> "optimal"
  | Gap_limit -> "gap-limit"
  | Deadline -> "deadline"
  | Node_limit -> "node-limit"
  | Iteration_limit -> "iteration-limit"
  | Fault msg -> "fault: " ^ msg

let pp_stop_reason ppf r = Format.pp_print_string ppf (stop_reason_to_string r)

let severity = function
  | Optimal -> 0
  | Gap_limit -> 1
  | Node_limit -> 2
  | Iteration_limit -> 3
  | Deadline -> 4
  | Fault _ -> 5

let worst a b = if severity b > severity a then b else a

(* Domain safety: the deadline is immutable after creation and the
   clock is monotonic, so [expired]/[remaining_s] may be polled from
   any domain; the allowance is atomic so parallel workers spending on
   a shared budget never lose updates. *)
type t = {
  clock : unit -> int64;
  created_ns : int64;
  deadline_ns : int64 option;  (* absolute, on [clock]'s timeline *)
  allowance : int Atomic.t option;
  parent : t option;
}

(* CLOCK_MONOTONIC via bechamel's no-alloc stub; Unix.gettimeofday is
   wall time and can jump under NTP, which would turn deadlines into
   lies exactly when the machine is under load. *)
let monotonic_now () = Monotonic_clock.now ()

let unlimited =
  {
    clock = monotonic_now;
    created_ns = 0L;
    deadline_ns = None;
    allowance = None;
    parent = None;
  }

let create ?(clock = monotonic_now) ?deadline_s ?allowance () =
  let now = clock () in
  let deadline_ns =
    match deadline_s with
    | None -> None
    | Some s ->
      if s < 0.0 then Invariant.invalid ~where:"Budget.create" "negative deadline";
      Some (Int64.add now (Int64.of_float (s *. 1e9)))
  in
  { clock; created_ns = now; deadline_ns; allowance = Option.map Atomic.make allowance;
    parent = None }

let min_deadline a b =
  match (a, b) with
  | None, d | d, None -> d
  | Some x, Some y -> Some (if Int64.compare x y <= 0 then x else y)

(* The effective deadline is the tightest along the ancestor chain;
   children are built with it pre-folded so [expired] never walks the
   chain for the clock check. *)
let effective_deadline t = t.deadline_ns

let with_deadline parent ~deadline_s =
  if deadline_s < 0.0 then Invariant.invalid ~where:"Budget.with_deadline" "negative deadline";
  let now = parent.clock () in
  let own = Int64.add now (Int64.of_float (deadline_s *. 1e9)) in
  {
    clock = parent.clock;
    created_ns = now;
    deadline_ns = min_deadline (Some own) (effective_deadline parent);
    allowance = None;
    parent = Some parent;
  }

let slice parent ~fraction =
  if fraction <= 0.0 then Invariant.invalid ~where:"Budget.slice" "fraction must be positive";
  match effective_deadline parent with
  | None ->
    { clock = parent.clock;
      created_ns = parent.clock ();
      deadline_ns = None;
      allowance = None;
      parent = Some parent;
    }
  | Some dl ->
    let now = parent.clock () in
    let remaining = Int64.to_float (Int64.sub dl now) in
    let own =
      if remaining <= 0.0 then now
      else Int64.add now (Int64.of_float (fraction *. remaining))
    in
    {
      clock = parent.clock;
      created_ns = now;
      deadline_ns = min_deadline (Some own) (Some dl);
      allowance = None;
      parent = Some parent;
    }

let rec spend t n =
  (match t.allowance with
  | Some a -> ignore (Atomic.fetch_and_add a (-n))
  | None -> ());
  match t.parent with Some p -> spend p n | None -> ()

let rec allowance_dry t =
  (match t.allowance with Some a -> Atomic.get a <= 0 | None -> false)
  || (match t.parent with Some p -> allowance_dry p | None -> false)

let rec has_allowance t =
  t.allowance <> None
  || (match t.parent with Some p -> has_allowance p | None -> false)

let deadline_passed t =
  match t.deadline_ns with
  | None -> false
  | Some dl -> Int64.compare (t.clock ()) dl >= 0

let expired t = allowance_dry t || deadline_passed t

let status t =
  if allowance_dry t then Iteration_limit
  else if deadline_passed t then Deadline
  else Optimal

let is_unlimited t = t.deadline_ns = None && not (has_allowance t)

let remaining_s t =
  match t.deadline_ns with
  | None -> infinity
  | Some dl -> max 0.0 (Int64.to_float (Int64.sub dl (t.clock ())) *. 1e-9)

let elapsed_s t = Int64.to_float (Int64.sub (t.clock ()) t.created_ns) *. 1e-9
