(** Integer 2-D coordinates on the CGRRA fabric grid.

    The fabric is a [w × h] grid; coordinates are zero-based with [x]
    the column and [y] the row. All geometric reasoning in the
    floorplanner (Manhattan wire length, the 8 critical-path
    orientations) lives here. *)

type t = { x : int; y : int }

val make : int -> int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val manhattan : t -> t -> int
(** Manhattan distance |x1-x2| + |y1-y2| — the paper's wire-length
    measure (Eq. 5). *)

val add : t -> t -> t
val sub : t -> t -> t

(** The 8 unique orientations of a planar shape (Fig. 4a): identity,
    three clockwise rotations, and the mirror of each. *)
type orientation =
  | R0            (** original *)
  | R90           (** 90° clockwise *)
  | R180          (** 180° *)
  | R270          (** 270° clockwise *)
  | MR0           (** mirrored about the y-axis *)
  | MR90
  | MR180
  | MR270

val all_orientations : orientation array

val orientation_to_string : orientation -> string

val transform : orientation -> t -> t
(** [transform o p] applies [o] about the origin. Rotations are
    clockwise in screen coordinates (y grows downward). The result may
    have negative components; callers re-translate into the fabric. *)

val transform_all : orientation -> t list -> t list

val normalize : t list -> t list * t
(** [normalize ps] translates [ps] so the bounding-box corner is the
    origin; returns the translated points and the applied offset
    (subtract it to undo). *)

val bounding_box : t list -> t * t
(** [(min, max)] corners of a non-empty list. *)
