(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the library (benchmark generation,
    simulated annealing, rotation selection) draws from an explicit [t]
    so that all experiments are reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
