(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the library (benchmark generation,
    simulated annealing, rotation selection) draws from an explicit [t]
    so that all experiments are reproducible from a seed.

    Domain contract: a [t] is a single mutable cursor and must never
    be shared across domains — concurrent draws race on the state and
    destroy reproducibility. Parallel work ({!Pool}) instead derives
    one generator per task {e before} the fan-out with {!split} /
    {!split_n}: the derived streams are determined entirely by the
    parent seed and the task index, so a run is reproducible at any
    fixed [--jobs] regardless of execution order. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val split_n : t -> int -> t array
(** [split_n t n] is [n] independent generators split off [t] in
    sequence — the pre-fan-out idiom for giving each parallel task its
    own deterministic stream ([(split_n t n).(i)] depends only on
    [t]'s state and [i], never on task scheduling). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
