(* Exact dyadic rationals: sign * mag * 2^exp with an
   arbitrary-precision magnitude. Magnitudes are little-endian arrays
   of base-2^30 limbs so limb products stay well inside OCaml's 63-bit
   native ints. Normal form: mag is odd (trailing zero bits are folded
   into exp) and the top limb is nonzero; zero is {sign = 0; mag = [||];
   exp = 0}. Normal form makes structural field-wise comparison a
   semantic one. *)

let base_bits = 30
let base = 1 lsl base_bits
let mask = base - 1

(* -------------------------------------------------------------------
   Magnitude (unsigned bignum) primitives.
   ------------------------------------------------------------------- *)

let mag_zero : int array = [||]
let mag_is_zero m = Array.length m = 0

let mag_trim a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let mag_of_int n =
  (* n >= 0 *)
  if n = 0 then mag_zero
  else begin
    let l = ref [] and n = ref n in
    while !n > 0 do
      l := (!n land mask) :: !l;
      n := !n lsr base_bits
    done;
    Array.of_list (List.rev !l)
  end

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Int.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let n = Stdlib.max la lb + 1 in
  let r = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s =
      (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry
    in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  mag_trim r

(* Requires a >= b. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  mag_trim r

let mag_mul a b =
  if mag_is_zero a || mag_is_zero b then mag_zero
  else begin
    let la = Array.length a and lb = Array.length b in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          (* ai * b.(j) < 2^60; sum < 2^62: no native-int overflow. *)
          let t = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- t land mask;
          carry := t lsr base_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let t = r.(!k) + !carry in
          r.(!k) <- t land mask;
          carry := t lsr base_bits;
          incr k
        done
      end
    done;
    mag_trim r
  end

let mag_shift_left a k =
  if mag_is_zero a || k = 0 then a
  else begin
    let words = k / base_bits and bits = k mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + words + 1) 0 in
    if bits = 0 then Array.blit a 0 r words la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let t = (a.(i) lsl bits) lor !carry in
        r.(words + i) <- t land mask;
        carry := t lsr base_bits
      done;
      r.(words + la) <- !carry
    end;
    mag_trim r
  end

(* Exact use only: callers shift out known-zero low bits. *)
let mag_shift_right a k =
  if mag_is_zero a || k = 0 then a
  else begin
    let words = k / base_bits and bits = k mod base_bits in
    let la = Array.length a in
    if words >= la then mag_zero
    else begin
      let n = la - words in
      let r = Array.make n 0 in
      if bits = 0 then Array.blit a words r 0 n
      else
        for i = 0 to n - 1 do
          let lo = a.(words + i) lsr bits in
          let hi =
            if words + i + 1 < la then
              (a.(words + i + 1) lsl (base_bits - bits)) land mask
            else 0
          in
          r.(i) <- lo lor hi
        done;
      mag_trim r
    end
  end

let mag_trailing_zeros a =
  if mag_is_zero a then 0
  else begin
    let i = ref 0 in
    while a.(!i) = 0 do
      incr i
    done;
    let d = a.(!i) in
    let b = ref 0 in
    while d land (1 lsl !b) = 0 do
      incr b
    done;
    (!i * base_bits) + !b
  end

(* d in [2, 2^30): cur < 2^60, no overflow. *)
let mag_divmod_small a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let r = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!r lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (mag_trim q, !r)

let mag_to_decimal a =
  if mag_is_zero a then "0"
  else begin
    let chunks = ref [] in
    let cur = ref a in
    while not (mag_is_zero !cur) do
      let q, r = mag_divmod_small !cur 1_000_000_000 in
      chunks := r :: !chunks;
      cur := q
    done;
    match !chunks with
    | [] -> "0"
    | hd :: tl ->
      String.concat "" (string_of_int hd :: List.map (Printf.sprintf "%09d") tl)
  end

(* -------------------------------------------------------------------
   Dyadic rationals.
   ------------------------------------------------------------------- *)

type t = { sign : int; mag : int array; exp : int }

let zero = { sign = 0; mag = mag_zero; exp = 0 }

let make sign mag exp =
  if sign = 0 || mag_is_zero mag then zero
  else begin
    let tz = mag_trailing_zeros mag in
    { sign; mag = mag_shift_right mag tz; exp = exp + tz }
  end

let of_int n =
  if n = 0 then zero
  else if n = min_int then
    (* abs min_int overflows; min_int is even, so halve it exactly. *)
    make (-1) (mag_of_int (-(n / 2))) 1
  else make (if n < 0 then -1 else 1) (mag_of_int (Stdlib.abs n)) 0

let one = of_int 1

let of_float f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite ->
    Invariant.invalid ~where:"Rat.of_float" "not a finite value"
  | Float.FP_zero -> zero
  | Float.FP_normal | Float.FP_subnormal ->
    (* f = m * 2^e with 0.5 <= |m| < 1, so |m| * 2^53 is an exact
       integer in [2^52, 2^53) — within native-int range. *)
    let m, e = Float.frexp f in
    let mi = int_of_float (ldexp (Float.abs m) 53) in
    make (if f < 0.0 then -1 else 1) (mag_of_int mi) (e - 53)

let neg a = { a with sign = -a.sign }
let abs a = { a with sign = Stdlib.abs a.sign }

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else begin
    (* Align both magnitudes to the smaller exponent. *)
    let e = Stdlib.min a.exp b.exp in
    let ma = mag_shift_left a.mag (a.exp - e) in
    let mb = mag_shift_left b.mag (b.exp - e) in
    if a.sign = b.sign then make a.sign (mag_add ma mb) e
    else begin
      match mag_compare ma mb with
      | 0 -> zero
      | c when c > 0 -> make a.sign (mag_sub ma mb) e
      | _ -> make b.sign (mag_sub mb ma) e
    end
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else make (a.sign * b.sign) (mag_mul a.mag b.mag) (a.exp + b.exp)

let sign a = a.sign

let compare a b =
  if a.sign <> b.sign then Int.compare a.sign b.sign else (sub a b).sign

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let is_integer a = a.sign = 0 || a.exp >= 0

let to_float a =
  if a.sign = 0 then 0.0
  else begin
    (* The top three limbs carry >= 60 significant bits — more than a
       double can hold — so the result is correct to within one ulp.
       Both exponents are applied in one ldexp so no intermediate can
       overflow before the final scaling. *)
    let la = Array.length a.mag in
    let lo = Stdlib.max 0 (la - 3) in
    let acc = ref 0.0 in
    for i = la - 1 downto lo do
      acc := (!acc *. float_of_int base) +. float_of_int a.mag.(i)
    done;
    float_of_int a.sign *. ldexp !acc ((lo * base_bits) + a.exp)
  end

let to_string a =
  if a.sign = 0 then "0"
  else begin
    let s = if a.sign < 0 then "-" else "" in
    if a.exp >= 0 then s ^ mag_to_decimal (mag_shift_left a.mag a.exp)
    else
      let denom = mag_shift_left (mag_of_int 1) (-a.exp) in
      s ^ mag_to_decimal a.mag ^ "/" ^ mag_to_decimal denom
  end

let pp ppf a = Format.pp_print_string ppf (to_string a)
