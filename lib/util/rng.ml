type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = next_int64 t in
  { state = s }

let split_n t n =
  if n < 0 then Invariant.invalid ~where:"Rng.split_n" "negative count";
  Array.init n (fun _ -> split t)

let int t bound =
  if bound <= 0 then Invariant.invalid ~where:"Rng.int" "bound must be positive";
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, scaled to [0, 1). *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then Invariant.invalid ~where:"Rng.pick" "empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
