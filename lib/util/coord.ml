type t = { x : int; y : int }

let make x y = { x; y }

let equal a b = a.x = b.x && a.y = b.y

let compare a b =
  let c = Int.compare a.x b.x in
  if c <> 0 then c else Int.compare a.y b.y

let pp ppf { x; y } = Format.fprintf ppf "(%d,%d)" x y

let manhattan a b = abs (a.x - b.x) + abs (a.y - b.y)

let add a b = { x = a.x + b.x; y = a.y + b.y }
let sub a b = { x = a.x - b.x; y = a.y - b.y }

type orientation = R0 | R90 | R180 | R270 | MR0 | MR90 | MR180 | MR270

let all_orientations = [| R0; R90; R180; R270; MR0; MR90; MR180; MR270 |]

let orientation_to_string = function
  | R0 -> "R0"
  | R90 -> "R90"
  | R180 -> "R180"
  | R270 -> "R270"
  | MR0 -> "MR0"
  | MR90 -> "MR90"
  | MR180 -> "MR180"
  | MR270 -> "MR270"

let rotate90 { x; y } = { x = -y; y = x }
let mirror { x; y } = { x = -x; y }

let transform o p =
  match o with
  | R0 -> p
  | R90 -> rotate90 p
  | R180 -> rotate90 (rotate90 p)
  | R270 -> rotate90 (rotate90 (rotate90 p))
  | MR0 -> mirror p
  | MR90 -> rotate90 (mirror p)
  | MR180 -> rotate90 (rotate90 (mirror p))
  | MR270 -> rotate90 (rotate90 (rotate90 (mirror p)))

let transform_all o ps = List.map (transform o) ps

let bounding_box = function
  | [] -> Invariant.invalid ~where:"Coord.bounding_box" "empty list"
  | p :: ps ->
    let mn = List.fold_left (fun acc q -> { x = min acc.x q.x; y = min acc.y q.y }) p ps in
    let mx = List.fold_left (fun acc q -> { x = max acc.x q.x; y = max acc.y q.y }) p ps in
    (mn, mx)

let normalize ps =
  let mn, _ = bounding_box ps in
  (List.map (fun p -> sub p mn) ps, mn)
