(** Plain-text table rendering for benchmark harness output.

    Renders a header row plus data rows with column-width alignment,
    mirroring the layout of the paper's Table I in terminal output. *)

type align = Left | Right

val render :
  ?align:align array ->
  header:string array ->
  string array list ->
  string
(** [render ~header rows] pads every column to its widest cell and
    joins rows with a separator line below the header. Rows shorter
    than the header are padded with empty cells; longer rows raise
    [Invalid_argument]. Default alignment is [Right] for every
    column. *)

val render_grid : w:int -> h:int -> (int -> int -> string) -> string
(** [render_grid ~w ~h cell] renders an [w × h] grid (row 0 on top)
    with every cell padded to the widest cell string — used for stress
    and thermal heatmaps (Fig. 2a). *)
