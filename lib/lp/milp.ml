let src = Logs.Src.create "agingfp.milp" ~doc:"Branch and bound MILP"

module Log = (val Logs.src_log src : Logs.LOG)
module Budget = Agingfp_util.Budget
module Invariant = Agingfp_util.Invariant

type result = Feasible of Simplex.solution | Infeasible | Unknown

type params = {
  lp_params : Simplex.params;
  node_limit : int;
  integrality_tol : float;
  first_solution : bool;
  presolve : bool;
  warm_start : bool;
  budget : Budget.t;
  jobs : int;
  mip_gap : float;
  traversal : Node_store.strategy;
  branching : Brancher.rule;
  cuts : Cuts.config;
  heuristics : Heuristics.config;
}

let default_params =
  {
    lp_params = Simplex.default_params;
    node_limit = 2000;
    integrality_tol = 1e-6;
    first_solution = true;
    presolve = true;
    warm_start = true;
    budget = Budget.unlimited;
    jobs = 1;
    mip_gap = 0.0;
    traversal = Node_store.Hybrid;
    branching = Brancher.Pseudocost;
    cuts = Cuts.default_config;
    heuristics = Heuristics.default_config;
  }

type stats = {
  presolve : Presolve.reductions;
  nodes : int;
  warm_solves : int;
  cold_solves : int;
  lp_iterations : int;
  refactorizations : int;
  eta_updates : int;
  fill_in : int;
  drift_refreshes : int;
  dual_bound : float;
  gap : float;
  stop : Budget.stop_reason;
  cuts_separated : int;
  cuts_active : int;
  cuts_aged_out : int;
  heuristic_incumbents : int;
  root_gap_closed : float;
}

let zero_stats =
  {
    presolve = Presolve.no_reductions;
    nodes = 0;
    warm_solves = 0;
    cold_solves = 0;
    lp_iterations = 0;
    refactorizations = 0;
    eta_updates = 0;
    fill_in = 0;
    drift_refreshes = 0;
    dual_bound = Float.nan;
    gap = 0.0;
    stop = Budget.Optimal;
    cuts_separated = 0;
    cuts_active = 0;
    cuts_aged_out = 0;
    heuristic_incumbents = 0;
    root_gap_closed = Float.nan;
  }

let worst_stop = Budget.worst

let add_stats a b =
  {
    presolve = Presolve.add_reductions a.presolve b.presolve;
    nodes = a.nodes + b.nodes;
    warm_solves = a.warm_solves + b.warm_solves;
    cold_solves = a.cold_solves + b.cold_solves;
    lp_iterations = a.lp_iterations + b.lp_iterations;
    refactorizations = a.refactorizations + b.refactorizations;
    eta_updates = a.eta_updates + b.eta_updates;
    (* Fill is a footprint, not a flow: aggregate the peak. *)
    fill_in = max a.fill_in b.fill_in;
    drift_refreshes = a.drift_refreshes + b.drift_refreshes;
    (* Dual bounds of different models are not comparable; keep the
       most recent solve's (aggregation order is chronological). *)
    dual_bound = (if Float.is_nan b.dual_bound then a.dual_bound else b.dual_bound);
    (* The aggregate is only as certified as its loosest member. *)
    gap = Float.max a.gap b.gap;
    stop = worst_stop a.stop b.stop;
    cuts_separated = a.cuts_separated + b.cuts_separated;
    cuts_active = a.cuts_active + b.cuts_active;
    cuts_aged_out = a.cuts_aged_out + b.cuts_aged_out;
    heuristic_incumbents = a.heuristic_incumbents + b.heuristic_incumbents;
    (* Like dual_bound: per-model, keep the most recent solve's. *)
    root_gap_closed =
      (if Float.is_nan b.root_gap_closed then a.root_gap_closed else b.root_gap_closed);
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d nodes, %d warm / %d cold LP solves, %d LP iterations, gap %g (dual bound %g), \
     stop %a; cuts: %d separated, %d active, %d aged out (root gap closed %g); \
     heuristics: %d incumbents; kernel: %d refactorizations (%d drift), %d eta updates, \
     peak fill %d; presolve: %a"
    s.nodes s.warm_solves s.cold_solves s.lp_iterations s.gap s.dual_bound
    Budget.pp_stop_reason s.stop s.cuts_separated s.cuts_active s.cuts_aged_out
    s.root_gap_closed s.heuristic_incumbents s.refactorizations s.drift_refreshes
    s.eta_updates s.fill_in Presolve.pp_reductions s.presolve

(* Cumulative counters across all solves since the last reset — the
   remap pipeline runs many MILPs/LPs per floorplan, and the CLI
   [--stats] flag and benches report the aggregate. Parallel remap
   tasks accumulate from several domains, hence the mutex. *)
let cum = ref zero_stats
let cum_mutex = Mutex.create ()

let with_cum f =
  Mutex.lock cum_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cum_mutex) f

let reset_cumulative () = with_cum (fun () -> cum := zero_stats)
let cumulative () = with_cum (fun () -> !cum)
let accumulate s = with_cum (fun () -> cum := add_stats !cum s)

let note_lp_solve ?(refactorizations = 0) ?(eta_updates = 0) ?(fill_in = 0)
    ?(drift_refreshes = 0) ~warm ~iterations () =
  accumulate
    {
      zero_stats with
      warm_solves = (if warm then 1 else 0);
      cold_solves = (if warm then 0 else 1);
      lp_iterations = iterations;
      refactorizations;
      eta_updates;
      fill_in;
      drift_refreshes;
    }

let pp_result ppf = function
  | Feasible s -> Format.fprintf ppf "feasible (obj = %g)" s.objective
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unknown -> Format.pp_print_string ppf "unknown (budget exhausted)"

let solution_sign dir = match dir with Model.Minimize -> 1.0 | Model.Maximize -> -1.0

(* ---------- tree search ---------- *)

module Pool = Agingfp_util.Pool

(* Strong-branching probes seed pseudocosts only this close to the
   root (deeper nodes inherit reliable averages from their ancestors'
   observations) and only for this many unreliable candidates per
   node — each probe costs two warm LP solves. *)
let strong_branch_depth = 2
let strong_branch_width = 4

(* Relative optimality gap of [primal] against [dual], both in
   minimize-sign space. [infinity] while nothing is proven (the root
   is still open), [0] once the tree is drained. *)
let rel_gap ~primal ~dual =
  if Float.is_finite dual then
    let scale = Float.max (Float.max (Float.abs primal) (Float.abs dual)) 1e-9 in
    Float.max 0.0 ((primal -. dual) /. scale)
  else if dual > 0.0 then 0.0
  else infinity

(* One search engine for every traversal and every [jobs] count: an
   explicit {!Node_store} tree pumped by [jobs] workers. The shared
   presolved [model] is never mutated: every worker owns a private
   model copy and a private assembled solver state, so warm bases stay
   domain-local (a [Simplex.state] must not cross domains). The
   incumbent, node counter, brancher state and stop bookkeeping live
   under one mutex; [jobs = 1] runs the identical code on the calling
   domain with no pool involved, so sequential solves stay
   deterministic and pool-free.

   Soundness of the shared-incumbent prune: a node whose inherited
   dual bound is not strictly better than the incumbent cannot contain
   a strictly better integer point, so closing it unexplored never
   changes the optimal objective — only the node count.

   Soundness of gap termination: {!Node_store.dual_bound} is a valid
   bound on every integer point still reachable (open and in-flight
   subtrees), and every closed subtree is dominated by the incumbent;
   so once [(primal - dual) / scale <= mip_gap] the incumbent is
   certified within the tolerance of the global optimum. *)
let tree_search ~params ~sign ~int_vars ~lp_params ~jobs model =
  let n_vars = Model.num_vars model in
  let root_lb = Array.init n_vars (Model.var_lb model) in
  let root_ub = Array.init n_vars (Model.var_ub model) in
  (* Cutting-plane infrastructure, shared across workers. The pool and
     every Gomory shift see only ROOT (presolved) bounds, never
     node-tightened branching bounds, so each admitted cut is valid for
     the whole tree and can be appended to any worker's state. *)
  let cut_cfg = params.cuts in
  let cuts_on = Cuts.enabled cut_cfg && int_vars <> [] in
  let pool = Cuts.create_pool cut_cfg in
  let base_rows = Model.num_constraints model in
  let int_mark = Array.make (max 1 n_vars) false in
  List.iter (fun v -> int_mark.(v) <- true) int_vars;
  let is_binary v = int_mark.(v) && root_lb.(v) >= -1e-9 && root_ub.(v) <= 1.0 +. 1e-9 in
  let model_terms = Array.make (max 1 base_rows) [] in
  let model_rel = Array.make (max 1 base_rows) Model.Le in
  let model_rhs = Array.make (max 1 base_rows) 0.0 in
  for i = 0 to base_rows - 1 do
    let lhs, rel, rhs = Model.constraint_row model i in
    model_terms.(i) <- Expr.terms lhs;
    model_rel.(i) <- rel;
    model_rhs.(i) <- rhs
  done;
  let cover_rows =
    List.init base_rows (fun i -> (i, model_terms.(i), model_rel.(i), model_rhs.(i)))
  in
  (* Root-phase bookkeeping for the gap-closed statistic: sign-space
     root objective before the first separation round and after the
     last one. *)
  let root_obj0 = ref None in
  let root_obj1 = ref None in
  let heur_found = ref 0 in
  let heur_on = Heuristics.enabled params.heuristics && int_vars <> [] in
  let mx = Mutex.create () in
  let cond = Condition.create () in
  let store = Node_store.create ~workers:jobs in
  ignore
    (Node_store.add store ~parent:(-1) ~depth:0 ~bound:neg_infinity ~fixes:[]
       ~branch:None);
  let brancher = Brancher.create params.branching ~nvars:n_vars in
  let nodes = ref 0 in
  let incumbent = ref None in
  let halt = ref false in
  let budget_hit = ref false in
  let stop = ref Budget.Optimal in
  let locked f =
    Mutex.lock mx;
    Fun.protect ~finally:(fun () -> Mutex.unlock mx) f
  in
  (* Callees below run with [mx] held. *)
  let note_stop r = stop := worst_stop !stop r in
  let give_up reason =
    budget_hit := true;
    note_stop reason;
    halt := true
  in
  (* [better_bound] compares in minimize-sign space (node bounds);
     [better] takes a raw model-space objective. Mixing the two
     double-applies [sign] and mis-prunes Maximize searches. *)
  let better_bound b =
    match !incumbent with
    | None -> true
    | Some (s : Simplex.solution) -> b < (sign *. s.objective) -. 1e-9
  in
  let better obj = better_bound (sign *. obj) in
  let gap_reached () =
    params.mip_gap > 0.0
    &&
    match !incumbent with
    | None -> false
    | Some (s : Simplex.solution) ->
      rel_gap ~primal:(sign *. s.objective) ~dual:(Node_store.dual_bound store)
      <= params.mip_gap
  in
  (* Pop the next node to expand. A node abandoned by a budget stop is
     deliberately never [finish]ed: its bound keeps anchoring the
     global dual bound, so an interrupted search never overstates what
     it proved. *)
  let rec take wid =
    if !halt then None
    else
      match Node_store.take store ~wid params.traversal with
      | Some n ->
        if Budget.expired params.budget then begin
          give_up (Budget.status params.budget);
          None
        end
        else if !nodes >= params.node_limit then begin
          give_up Budget.Node_limit;
          None
        end
        else if not (better_bound n.Node_store.bound) then begin
          (* Pruned by the incumbent: closed without LP work. *)
          Node_store.finish store ~wid;
          take wid
        end
        else if gap_reached () then begin
          note_stop Budget.Gap_limit;
          halt := true;
          None
        end
        else begin
          incr nodes;
          Some n
        end
      | None ->
        if Node_store.active_count store = 0 then None
        else begin
          Condition.wait cond mx;
          take wid
        end
  in
  let worker_stats = Array.make jobs None in
  let worker wid () =
    let wmodel = Model.copy model in
    let extra_rows = if cuts_on then cut_cfg.Cuts.max_cuts else 0 in
    let wst = Simplex.assemble ~params:lp_params ~extra_rows wmodel in
    let solved_once = ref false in
    let applied = ref [] in
    (* Worker-local mirror of the shared pool. Cut [id] lives at row
       [base_rows + id] in every worker state (cuts are append-only and
       applied in id order), and each worker keeps a private copy of
       the cut's terms so separation never touches the pool outside the
       lock. *)
    let wcut_terms = Array.make (max 1 extra_rows) [] in
    let wcut_rhs = Array.make (max 1 extra_rows) 0.0 in
    let wcut_enforced = Array.make (max 1 extra_rows) true in
    let wn_cuts = ref 0 in
    let sync_cuts () =
      if cuts_on then begin
        let news, flags =
          locked (fun () ->
              let k = Cuts.size pool in
              ( Array.init (k - !wn_cuts) (fun t ->
                    let c = Cuts.get pool (!wn_cuts + t) in
                    (c.Cuts.terms, c.Cuts.rhs)),
                Cuts.active_flags pool ))
        in
        Array.iter
          (fun (terms, rhs) ->
            ignore (Simplex.add_row wst ~terms ~rel:Model.Le ~rhs);
            wcut_terms.(!wn_cuts) <- terms;
            wcut_rhs.(!wn_cuts) <- rhs;
            wcut_enforced.(!wn_cuts) <- true;
            incr wn_cuts)
          news;
        for id = 0 to !wn_cuts - 1 do
          let want = flags.(id) in
          if want <> wcut_enforced.(id) then begin
            Simplex.set_row_enforced wst (base_rows + id) want;
            wcut_enforced.(id) <- want
          end
        done
      end
    in
    let row_terms i = if i < base_rows then model_terms.(i) else wcut_terms.(i - base_rows) in
    let row_rhs i = if i < base_rows then model_rhs.(i) else wcut_rhs.(i - base_rows) in
    let row_rel i = if i < base_rows then model_rel.(i) else Model.Le in
    (* One separation round at the current optimum: collect violated
       Gomory and cover candidates, offer the most violated to the
       shared pool, then append whatever the pool holds that this state
       does not (including other workers' cuts). Returns the number of
       rows added to [wst]. *)
    let separate_round (sol : Simplex.solution) =
      let before = !wn_cuts in
      let gom =
        if cut_cfg.Cuts.gomory then
          Cuts.separate_gomory ~st:wst
            ~is_int:(fun v -> int_mark.(v))
            ~global_lb:root_lb ~global_ub:root_ub ~row_terms ~row_rhs ~row_rel
            ~max_cuts:cut_cfg.Cuts.max_per_round ~min_violation:cut_cfg.Cuts.min_violation
        else []
      in
      let cov =
        if cut_cfg.Cuts.cover then
          Cuts.separate_cover ~model_rows:cover_rows ~is_binary ~global_lb:root_lb
            ~global_ub:root_ub ~values:sol.Simplex.values
            ~max_cuts:cut_cfg.Cuts.max_per_round ~min_violation:cut_cfg.Cuts.min_violation
        else []
      in
      let cands =
        List.filteri
          (fun i _ -> i < cut_cfg.Cuts.max_per_round)
          (List.stable_sort
             (fun (_, _, _, va) (_, _, _, vb) -> Float.compare vb va)
             (gom @ cov))
      in
      locked (fun () ->
          List.iter
            (fun (provenance, terms, rhs, _) ->
              ignore (Cuts.admit pool ~provenance ~terms ~rhs))
            cands);
      sync_cuts ();
      !wn_cuts - before
    in
    (* Separation rounds: append violated cuts, dual-simplex repair on
       the warm basis, repeat. [Infeasible] is a sound node closure —
       every pooled cut is valid for the integer hull, so a
       cut-infeasible LP contains no integer point. Any other
       non-optimal status keeps the previous (weaker but still valid)
       relaxation optimum; the stale rows stay harmlessly enforced. *)
    let rec cut_loop rounds (sol : Simplex.solution) =
      if rounds <= 0 || Budget.expired params.budget then Some sol
      else if separate_round sol = 0 then Some sol
      else
        match Simplex.reoptimize wst with
        | Simplex.Optimal sol' -> cut_loop (rounds - 1) sol'
        | Simplex.Infeasible -> None
        | Simplex.Unbounded | Simplex.Iteration_limit | Simplex.Deadline
        | Simplex.Fault _ -> Some sol
    in
    (* Root primal heuristics (diving + feasibility pump) on this
       worker's own state, under a sliced budget. Outcomes have already
       passed Model.check_feasible; install whichever beat the
       incumbent. *)
    let run_root_heuristics (sol : Simplex.solution) =
      if heur_on && not (Budget.expired params.budget) then begin
        let hbudget =
          if Budget.is_unlimited params.budget then Budget.unlimited
          else
            Budget.slice params.budget
              ~fraction:params.heuristics.Heuristics.budget_fraction
        in
        Simplex.set_budget wst hbudget;
        let hres =
          Heuristics.run params.heuristics ~model:wmodel ~st:wst ~int_vars ~budget:hbudget
            ~relaxed:sol
        in
        Simplex.set_budget wst lp_params.Simplex.budget;
        List.iter
          (fun (o : Heuristics.outcome) ->
            locked (fun () ->
                if better o.Heuristics.objective then begin
                  incumbent :=
                    Some
                      {
                        Simplex.values = o.Heuristics.values;
                        objective = o.Heuristics.objective;
                        iterations = 0;
                      };
                  incr heur_found;
                  Log.debug (fun k ->
                      k "heuristic incumbent (%s): objective %g" o.Heuristics.source
                        o.Heuristics.objective);
                  if params.first_solution then halt := true
                end))
          hres.Heuristics.found
      end
    in
    let enter (n : Node_store.node) =
      (* Reset whatever the previous node changed, then apply this
         node's path root-first so the deepest branching wins when a
         variable was branched on twice. *)
      List.iter
        (fun (v, _, _) ->
          Model.set_bounds wmodel v ~lb:root_lb.(v) ~ub:root_ub.(v);
          Simplex.set_var_bounds wst v ~lb:root_lb.(v) ~ub:root_ub.(v))
        !applied;
      List.iter
        (fun (v, lb, ub) ->
          Model.set_bounds wmodel v ~lb ~ub;
          Simplex.set_var_bounds wst v ~lb ~ub)
        (List.rev n.Node_store.fixes);
      applied := n.Node_store.fixes
    in
    let close_node () =
      locked (fun () ->
          Node_store.finish store ~wid;
          Condition.broadcast cond)
    in
    (* Strong-branching probe: bound [v] one way, reoptimize from the
       node's basis, undo. Returns the sign-space objective
       degradation ([1e12] when the probe proves that child
       infeasible — the strongest possible split), or [None] when the
       probe LP could not finish; the bounds are restored either way
       and the next [enter]/reoptimize recovers from whatever basis
       the probe left behind. *)
    let probe ~(sol : Simplex.solution) v dir =
      let lb = Model.var_lb wmodel v and ub = Model.var_ub wmodel v in
      let x = sol.Simplex.values.(v) in
      (match dir with
      | Node_store.Down ->
        Simplex.set_var_bounds wst v ~lb ~ub:(Float.of_int (int_of_float (floor x)))
      | Node_store.Up ->
        Simplex.set_var_bounds wst v ~lb:(Float.of_int (int_of_float (ceil x))) ~ub);
      let status = Simplex.reoptimize wst in
      Simplex.set_var_bounds wst v ~lb ~ub;
      match status with
      | Simplex.Optimal s -> Some ((sign *. s.objective) -. (sign *. sol.objective))
      | Simplex.Infeasible -> Some 1e12
      | Simplex.Unbounded | Simplex.Iteration_limit | Simplex.Deadline
      | Simplex.Fault _ -> None
    in
    let process (n : Node_store.node) =
      enter n;
      (* Pick up cuts other workers admitted since this worker's last
         node, plus any activity flips from pool aging. *)
      sync_cuts ();
      let status =
        if (not !solved_once) || not params.warm_start then Simplex.solve_state wst
        else Simplex.reoptimize wst
      in
      solved_once := true;
      match status with
      | Simplex.Infeasible -> close_node ()
      | Simplex.Unbounded ->
        Log.warn (fun k -> k "unbounded LP relaxation during branch & bound");
        close_node ()
      | Simplex.Iteration_limit -> locked (fun () -> give_up Budget.Iteration_limit)
      | Simplex.Deadline -> locked (fun () -> give_up Budget.Deadline)
      | Simplex.Fault msg ->
        (* A faulted solver state cannot be trusted for siblings; stop
           the whole search and keep the incumbent found so far. *)
        locked (fun () -> give_up (Budget.Fault msg))
      | Simplex.Optimal sol0 -> (
        let at_root = n.Node_store.depth = 0 in
        if at_root then begin
          locked (fun () ->
              if !root_obj0 = None then root_obj0 := Some (sign *. sol0.objective));
          (* In feasibility mode (first_solution) the incumbent IS the
             goal: pump/dive straight away and skip the dual-bound work
             below if something lands. *)
          if params.first_solution then run_root_heuristics sol0
        end;
        let rounds =
          if (not cuts_on) || locked (fun () -> !halt) then 0
          else if at_root then cut_cfg.Cuts.max_rounds_root
          else if n.Node_store.depth <= cut_cfg.Cuts.node_depth then
            cut_cfg.Cuts.max_rounds_node
          else 0
        in
        match cut_loop rounds sol0 with
        | None ->
          (* The cut rows made this node's LP infeasible: since pooled
             cuts are globally valid, the node holds no integer point. *)
          close_node ()
        | Some sol ->
        if at_root then begin
          locked (fun () -> root_obj1 := Some (sign *. sol.objective));
          if not params.first_solution then run_root_heuristics sol
        end;
        if cuts_on && !wn_cuts > 0 then
          locked (fun () -> Cuts.observe pool (fun v -> sol.Simplex.values.(v)));
        let obj = sign *. sol.objective in
        let candidates =
          Brancher.fractional ~integrality_tol:params.integrality_tol int_vars
            sol.Simplex.values
        in
        let action =
          locked (fun () ->
              (* This node's own relaxation is one free pseudocost
                 observation of the branching that created it. *)
              (match n.Node_store.branch with
              | Some b when Float.is_finite n.Node_store.bound ->
                Brancher.observe brancher ~var:b.Node_store.var ~dir:b.Node_store.dir
                  ~frac:b.Node_store.frac ~delta:(obj -. n.Node_store.bound)
              | _ -> ());
              if not (better sol.objective) then `Close
              else
                match candidates with
                | [] -> `Incumbent
                | _ :: _ ->
                  (* Probes pay off only when the dual bound matters:
                     a feasibility dive (first_solution) skips them. *)
                  let probes =
                    if
                      params.first_solution
                      || n.Node_store.depth >= strong_branch_depth
                    then []
                    else
                      List.filteri
                        (fun i _ -> i < strong_branch_width)
                        (List.filter
                           (fun (v, _) -> Brancher.unreliable brancher ~var:v)
                           candidates)
                  in
                  `Branch probes)
        in
        (match action with
        | `Close -> close_node ()
        | `Incumbent ->
          locked (fun () ->
              (* Re-check under the lock: a sibling worker may have
                 landed a better incumbent since the decision. *)
              if better sol.objective then begin
                incumbent := Some { sol with Simplex.values = Array.copy sol.values };
                if params.first_solution then halt := true
              end;
              Node_store.finish store ~wid;
              Condition.broadcast cond)
        | `Branch probes ->
          (* Strong-branching probes run outside the lock on this
             worker's private solver state. *)
          let observations =
            List.concat_map
              (fun (v, x) ->
                let obs dir frac =
                  match probe ~sol v dir with
                  | Some delta -> [ (v, dir, frac, delta) ]
                  | None -> []
                in
                let fdown = x -. floor x in
                obs Node_store.Down fdown @ obs Node_store.Up (1.0 -. fdown))
              probes
          in
          locked (fun () ->
              List.iter
                (fun (v, dir, frac, delta) ->
                  Brancher.observe brancher ~var:v ~dir ~frac ~delta)
                observations;
              match Brancher.select brancher candidates with
              | None -> Node_store.finish store ~wid (* unreachable: candidates <> [] *)
              | Some v ->
                let x = sol.Simplex.values.(v) in
                let lb = Model.var_lb wmodel v and ub = Model.var_ub wmodel v in
                let fdown = x -. floor x in
                let child dir fix frac =
                  ignore
                    (Node_store.add store ~parent:n.Node_store.id
                       ~depth:(n.Node_store.depth + 1) ~bound:obj
                       ~fixes:(fix :: n.Node_store.fixes)
                       ~branch:(Some { Node_store.var = v; dir; frac }))
                in
                let down_fix = (v, lb, Float.of_int (int_of_float (floor x))) in
                let up_fix = (v, Float.of_int (int_of_float (ceil x)), ub) in
                (* Far child first, near child second: the near child
                   gets the larger id, so LIFO diving (Dfs and
                   Hybrid's plunge) explores the child nearest the
                   relaxed value first — the old solver's dive
                   order. *)
                if fdown > 0.5 then begin
                  child Node_store.Down down_fix fdown;
                  child Node_store.Up up_fix (1.0 -. fdown)
                end
                else begin
                  child Node_store.Up up_fix (1.0 -. fdown);
                  child Node_store.Down down_fix fdown
                end;
                Node_store.finish store ~wid;
                Condition.broadcast cond)))
    in
    let rec loop () =
      match locked (fun () -> take wid) with
      | None -> ()
      | Some n ->
        (try process n
         with Faults.Injected where -> locked (fun () -> give_up (Budget.Fault where)));
        loop ()
    in
    Fun.protect
      ~finally:(fun () ->
        (* A worker dying for any reason must release the others. *)
        locked (fun () ->
            halt := true;
            Condition.broadcast cond);
        worker_stats.(wid) <- Some (Simplex.state_stats wst))
      loop
  in
  if jobs > 1 then begin
    let pool = Pool.get jobs in
    Pool.run pool (Array.init jobs (fun wid () -> worker wid ()))
  end
  else worker 0 ();
  (* The frontier left behind is exactly what was not proven: its
     minimum is the global dual bound. A drained tree proves the
     incumbent optimal (or the model infeasible). *)
  let frontier = Node_store.dual_bound store in
  let dual_sign =
    match !incumbent with
    | Some (s : Simplex.solution) when (not (Float.is_finite frontier)) && frontier > 0.0
      ->
      sign *. s.objective
    | _ -> frontier
  in
  let gap =
    match !incumbent with
    | None -> if (not (Float.is_finite dual_sign)) && dual_sign > 0.0 then 0.0 else infinity
    | Some s -> rel_gap ~primal:(sign *. s.objective) ~dual:dual_sign
  in
  let kernel =
    Array.fold_left
      (fun acc -> function
        | None -> acc
        | Some (s : Simplex.state_stats) ->
          {
            acc with
            warm_solves = acc.warm_solves + s.warm_solves;
            cold_solves = acc.cold_solves + s.cold_solves;
            lp_iterations = acc.lp_iterations + s.lp_iterations;
            refactorizations = acc.refactorizations + s.refactorizations;
            eta_updates = acc.eta_updates + s.eta_updates;
            fill_in = max acc.fill_in s.fill_in;
            drift_refreshes = acc.drift_refreshes + s.drift_refreshes;
          })
      zero_stats worker_stats
  in
  (* Audit-grade guarantee: the incumbent must satisfy every cut ever
     admitted — active or aged out — exactly, in rational arithmetic.
     A violation means a separation bug produced an invalid inequality
     and the "optimum" cannot be trusted; fail loudly with the cut's
     provenance rather than return it. *)
  (match !incumbent with
  | Some (s : Simplex.solution) when cuts_on && Cuts.size pool > 0 ->
    let vals = Array.copy s.Simplex.values in
    List.iter (fun v -> vals.(v) <- Float.round vals.(v)) int_vars;
    (match Cuts.check_all pool (fun v -> vals.(v)) with
    | Ok () -> ()
    | Error msg ->
      Invariant.fail ~where:"Milp.tree_search" "incumbent violates pooled cut: %s" msg)
  | _ -> ());
  let pstats = Cuts.pool_stats pool in
  let root_gap_closed =
    match (!root_obj0, !root_obj1, !incumbent) with
    | Some o0, Some o1, Some (s : Simplex.solution) when cuts_on ->
      let denom = (sign *. s.objective) -. o0 in
      if denom > 1e-9 then begin
        (* Clamp rounding noise only: a genuinely negative ratio would
           mean separation LOOSENED the relaxation, which valid cut
           rows cannot do — let it surface instead of hiding it. *)
        let r = (o1 -. o0) /. denom in
        if r < 0.0 && r > -1e-9 then 0.0 else Float.min 1.0 r
      end
      else Float.nan
    | _ -> Float.nan
  in
  ( !incumbent,
    !budget_hit,
    {
      kernel with
      nodes = !nodes;
      stop = !stop;
      dual_bound = sign *. dual_sign;
      gap;
      cuts_separated = pstats.Cuts.separated;
      cuts_active = pstats.Cuts.active;
      cuts_aged_out = pstats.Cuts.aged_out;
      heuristic_incumbents = !heur_found;
      root_gap_closed;
    } )

let solve_with_stats ?(params = default_params) model0 =
  let dir, obj0 = Model.objective model0 in
  let sign = solution_sign dir in
  let presolved =
    if params.presolve then
      match
        Presolve.run ~budget:params.budget ~integrality_tol:params.integrality_tol model0
      with
      | Presolve.Proven_infeasible msg ->
        Log.debug (fun k -> k "presolve proved infeasibility: %s" msg);
        Error msg
      | Presolve.Reduced p -> Ok (Some p)
    else Ok None
  in
  match presolved with
  | Error _ ->
    let s = { zero_stats with presolve = Presolve.no_reductions } in
    accumulate s;
    (Infeasible, s)
  | Ok pre ->
    let model, reductions =
      match pre with
      | Some p -> (Presolve.reduced p, Presolve.reductions p)
      | None -> (Model.copy model0, Presolve.no_reductions)
    in
    let int_vars = Model.integer_vars model in
    let lp_params =
      if Budget.is_unlimited params.budget then params.lp_params
      else { params.lp_params with Simplex.budget = params.budget }
    in
    let jobs = max 1 params.jobs in
    let incumbent, budget_hit, search =
      tree_search ~params ~sign ~int_vars ~lp_params ~jobs model
    in
    let stats = { search with presolve = reductions } in
    accumulate stats;
    let result =
      match incumbent with
      | Some sol ->
        (* Lift back to the original variable space and round every
           integer variable to an exact integral value — a relaxation
           solution within integrality_tol (e.g. 0.9999993) must not
           leak fractional binaries downstream. *)
        let values =
          match pre with Some p -> Presolve.postsolve p sol.values | None -> sol.values
        in
        List.iter (fun v -> values.(v) <- Float.round values.(v)) (Model.integer_vars model0);
        let objective = Expr.eval (fun v -> values.(v)) obj0 in
        Feasible { values; objective; iterations = sol.iterations }
      | None -> if budget_hit then Unknown else Infeasible
    in
    (result, stats)

let solve ?params model0 = fst (solve_with_stats ?params model0)

let relax_and_fix_with_stats ?(threshold = 0.95) ?(params = default_params) model0 =
  (* The root relaxation is counted both in the returned per-call stats
     (folded in below) and in the global cumulative counters (via
     note_lp_solve), so the two accountings agree. *)
  let root_stats ~iterations = { zero_stats with cold_solves = 1; lp_iterations = iterations } in
  let lp_params =
    if Budget.is_unlimited params.budget then params.lp_params
    else { params.lp_params with Simplex.budget = params.budget }
  in
  let root_status =
    try Simplex.solve ~params:lp_params model0
    with Faults.Injected where -> Simplex.Fault where
  in
  match root_status with
  | Simplex.Infeasible ->
    note_lp_solve ~warm:false ~iterations:0 ();
    (Infeasible, root_stats ~iterations:0)
  | Simplex.Unbounded | Simplex.Iteration_limit ->
    note_lp_solve ~warm:false ~iterations:0 ();
    (Unknown, { (root_stats ~iterations:0) with gap = infinity })
  | Simplex.Deadline ->
    note_lp_solve ~warm:false ~iterations:0 ();
    (Unknown, { (root_stats ~iterations:0) with stop = Budget.Deadline; gap = infinity })
  | Simplex.Fault msg ->
    note_lp_solve ~warm:false ~iterations:0 ();
    (Unknown, { (root_stats ~iterations:0) with stop = Budget.Fault msg; gap = infinity })
  | Simplex.Optimal relaxed ->
    note_lp_solve ~warm:false ~iterations:relaxed.iterations ();
    let int_vars = Model.integer_vars model0 in
    let fixed = Model.copy model0 in
    let nfixed = ref 0 in
    List.iter
      (fun v ->
        if relaxed.values.(v) > threshold && Model.var_ub fixed v >= 1.0 then begin
          Model.fix_var fixed v 1.0;
          incr nfixed
        end)
      int_vars;
    Log.debug (fun k ->
        k "relax-and-fix: pre-mapped %d of %d binaries" !nfixed (List.length int_vars));
    let validate = function
      | Feasible sol as r ->
        (match Model.check_feasible model0 (fun v -> sol.values.(v)) with
        | Ok () -> r
        | Error msg ->
          Log.err (fun k -> k "relax-and-fix produced invalid solution: %s" msg);
          Unknown)
      | r -> r
    in
    let root = root_stats ~iterations:relaxed.iterations in
    (match solve_with_stats ~params fixed with
    | Feasible sol, stats -> (validate (Feasible sol), add_stats root stats)
    | (Infeasible | Unknown), stats ->
      (* The aggressive pre-mapping can over-constrain; retry without it. *)
      let r, stats' = solve_with_stats ~params model0 in
      (validate r, add_stats root (add_stats stats stats')))

let relax_and_fix ?threshold ?params model0 =
  fst (relax_and_fix_with_stats ?threshold ?params model0)
