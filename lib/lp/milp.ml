let src = Logs.Src.create "agingfp.milp" ~doc:"Branch and bound MILP"

module Log = (val Logs.src_log src : Logs.LOG)

type result = Feasible of Simplex.solution | Infeasible | Unknown

type params = {
  lp_params : Simplex.params;
  node_limit : int;
  integrality_tol : float;
  first_solution : bool;
}

let default_params =
  {
    lp_params = Simplex.default_params;
    node_limit = 2000;
    integrality_tol = 1e-6;
    first_solution = true;
  }

let pp_result ppf = function
  | Feasible s -> Format.fprintf ppf "feasible (obj = %g)" s.objective
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unknown -> Format.pp_print_string ppf "unknown (budget exhausted)"

(* Most fractional integer variable, or None if all integral. *)
let fractional_var params int_vars (sol : Simplex.solution) =
  let best = ref None in
  let best_frac = ref params.integrality_tol in
  List.iter
    (fun v ->
      let x = sol.values.(v) in
      let frac = abs_float (x -. Float.round x) in
      if frac > !best_frac then begin
        best := Some v;
        best_frac := frac
      end)
    int_vars;
  !best

let solution_sign dir = match dir with Model.Minimize -> 1.0 | Model.Maximize -> -1.0

let solve ?(params = default_params) model0 =
  let model = Model.copy model0 in
  let int_vars = Model.integer_vars model in
  let dir, _ = Model.objective model in
  let sign = solution_sign dir in
  let nodes = ref 0 in
  let incumbent = ref None in
  let budget_hit = ref false in
  let better obj =
    match !incumbent with
    | None -> true
    | Some (s : Simplex.solution) -> sign *. obj < (sign *. s.objective) -. 1e-9
  in
  (* DFS; bounds are mutated on [model] and restored on unwind. *)
  let rec node () =
    if !nodes >= params.node_limit then budget_hit := true
    else begin
      incr nodes;
      match Simplex.solve ~params:params.lp_params model with
      | Simplex.Infeasible -> ()
      | Simplex.Unbounded ->
        (* An unbounded relaxation of a bounded-binary model signals a
           modelling error; treat the node as hopeless. *)
        Log.warn (fun k -> k "unbounded LP relaxation during branch & bound")
      | Simplex.Iteration_limit -> budget_hit := true
      | Simplex.Optimal sol ->
        if not (better sol.objective) then ()
        else begin
          match fractional_var params int_vars sol with
          | None -> incumbent := Some sol
          | Some v ->
            let x = sol.values.(v) in
            let lb = Model.var_lb model v and ub = Model.var_ub model v in
            let explore_down () =
              Model.set_bounds model v ~lb ~ub:(Float.of_int (int_of_float (floor x)));
              node ();
              Model.set_bounds model v ~lb ~ub
            in
            let explore_up () =
              Model.set_bounds model v ~lb:(Float.of_int (int_of_float (ceil x))) ~ub;
              node ();
              Model.set_bounds model v ~lb ~ub
            in
            let stop () = params.first_solution && !incumbent <> None in
            (* Explore the child nearest the relaxed value first. *)
            if x -. floor x > 0.5 then begin
              explore_up ();
              if not (stop ()) then explore_down ()
            end
            else begin
              explore_down ();
              if not (stop ()) then explore_up ()
            end
        end
    end
  in
  node ();
  match !incumbent with
  | Some sol -> Feasible sol
  | None -> if !budget_hit then Unknown else Infeasible

let relax_and_fix ?(threshold = 0.95) ?(params = default_params) model0 =
  match Simplex.solve ~params:params.lp_params model0 with
  | Simplex.Infeasible -> Infeasible
  | Simplex.Unbounded | Simplex.Iteration_limit -> Unknown
  | Simplex.Optimal relaxed ->
    let int_vars = Model.integer_vars model0 in
    let fixed = Model.copy model0 in
    let nfixed = ref 0 in
    List.iter
      (fun v ->
        if relaxed.values.(v) > threshold && Model.var_ub fixed v >= 1.0 then begin
          Model.fix_var fixed v 1.0;
          incr nfixed
        end)
      int_vars;
    Log.debug (fun k ->
        k "relax-and-fix: pre-mapped %d of %d binaries" !nfixed (List.length int_vars));
    let validate = function
      | Feasible sol as r ->
        (match Model.check_feasible model0 (fun v -> sol.values.(v)) with
        | Ok () -> r
        | Error msg ->
          Log.err (fun k -> k "relax-and-fix produced invalid solution: %s" msg);
          Unknown)
      | r -> r
    in
    (match solve ~params fixed with
    | Feasible sol -> validate (Feasible sol)
    | Infeasible | Unknown ->
      (* The aggressive pre-mapping can over-constrain; retry without it. *)
      validate (solve ~params model0))
