let src = Logs.Src.create "agingfp.milp" ~doc:"Branch and bound MILP"

module Log = (val Logs.src_log src : Logs.LOG)
module Budget = Agingfp_util.Budget

type result = Feasible of Simplex.solution | Infeasible | Unknown

type params = {
  lp_params : Simplex.params;
  node_limit : int;
  integrality_tol : float;
  first_solution : bool;
  presolve : bool;
  warm_start : bool;
  budget : Budget.t;
  jobs : int;
}

let default_params =
  {
    lp_params = Simplex.default_params;
    node_limit = 2000;
    integrality_tol = 1e-6;
    first_solution = true;
    presolve = true;
    warm_start = true;
    budget = Budget.unlimited;
    jobs = 1;
  }

type stats = {
  presolve : Presolve.reductions;
  nodes : int;
  warm_solves : int;
  cold_solves : int;
  lp_iterations : int;
  refactorizations : int;
  eta_updates : int;
  fill_in : int;
  drift_refreshes : int;
  stop : Budget.stop_reason;
}

let zero_stats =
  {
    presolve = Presolve.no_reductions;
    nodes = 0;
    warm_solves = 0;
    cold_solves = 0;
    lp_iterations = 0;
    refactorizations = 0;
    eta_updates = 0;
    fill_in = 0;
    drift_refreshes = 0;
    stop = Budget.Optimal;
  }

let worst_stop = Budget.worst

let add_stats a b =
  {
    presolve = Presolve.add_reductions a.presolve b.presolve;
    nodes = a.nodes + b.nodes;
    warm_solves = a.warm_solves + b.warm_solves;
    cold_solves = a.cold_solves + b.cold_solves;
    lp_iterations = a.lp_iterations + b.lp_iterations;
    refactorizations = a.refactorizations + b.refactorizations;
    eta_updates = a.eta_updates + b.eta_updates;
    (* Fill is a footprint, not a flow: aggregate the peak. *)
    fill_in = max a.fill_in b.fill_in;
    drift_refreshes = a.drift_refreshes + b.drift_refreshes;
    stop = worst_stop a.stop b.stop;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "%d nodes, %d warm / %d cold LP solves, %d LP iterations, stop %a; kernel: %d \
     refactorizations (%d drift), %d eta updates, peak fill %d; presolve: %a"
    s.nodes s.warm_solves s.cold_solves s.lp_iterations Budget.pp_stop_reason s.stop
    s.refactorizations s.drift_refreshes s.eta_updates s.fill_in
    Presolve.pp_reductions s.presolve

(* Cumulative counters across all solves since the last reset — the
   remap pipeline runs many MILPs/LPs per floorplan, and the CLI
   [--stats] flag and benches report the aggregate. Parallel remap
   tasks accumulate from several domains, hence the mutex. *)
let cum = ref zero_stats
let cum_mutex = Mutex.create ()

let with_cum f =
  Mutex.lock cum_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cum_mutex) f

let reset_cumulative () = with_cum (fun () -> cum := zero_stats)
let cumulative () = with_cum (fun () -> !cum)
let accumulate s = with_cum (fun () -> cum := add_stats !cum s)

let note_lp_solve ?(refactorizations = 0) ?(eta_updates = 0) ?(fill_in = 0)
    ?(drift_refreshes = 0) ~warm ~iterations () =
  accumulate
    {
      zero_stats with
      warm_solves = (if warm then 1 else 0);
      cold_solves = (if warm then 0 else 1);
      lp_iterations = iterations;
      refactorizations;
      eta_updates;
      fill_in;
      drift_refreshes;
    }

let pp_result ppf = function
  | Feasible s -> Format.fprintf ppf "feasible (obj = %g)" s.objective
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unknown -> Format.pp_print_string ppf "unknown (budget exhausted)"

(* Most fractional integer variable, or None if all integral. *)
let fractional_var params int_vars (sol : Simplex.solution) =
  let best = ref None in
  let best_frac = ref params.integrality_tol in
  List.iter
    (fun v ->
      let x = sol.values.(v) in
      let frac = abs_float (x -. Float.round x) in
      if frac > !best_frac then begin
        best := Some v;
        best_frac := frac
      end)
    int_vars;
  !best

let solution_sign dir = match dir with Model.Minimize -> 1.0 | Model.Maximize -> -1.0

(* ---------- parallel branch & bound ---------- *)

module Pool = Agingfp_util.Pool

(* An open node is represented relative to the root: the bound changes
   accumulated on the path down (most recent first) plus the parent's
   relaxation objective, which prunes the node against the shared
   incumbent before any LP work is spent on it. *)
type pnode = { fixes : (int * float * float) list; bound : float option }

(* Search the tree with [jobs] domains pumping a shared LIFO node
   queue. The shared presolved [model] is never mutated: every worker
   owns a private model copy and a private assembled solver state, so
   warm bases stay domain-local (a [Simplex.state] must not cross
   domains). The incumbent, node counter and stop bookkeeping live
   under one mutex.

   Soundness of the shared-incumbent prune: a node whose parent
   relaxation is not strictly better than the incumbent cannot contain
   a strictly better integer point, so dropping it never changes the
   optimal objective — only the node count. Same argument as the
   sequential post-solve prune, applied one level earlier. *)
let parallel_search ~params ~sign ~int_vars ~lp_params ~jobs model =
  let n_vars = Model.num_vars model in
  let root_lb = Array.init n_vars (Model.var_lb model) in
  let root_ub = Array.init n_vars (Model.var_ub model) in
  let mx = Mutex.create () in
  let cond = Condition.create () in
  let queue = ref [ { fixes = []; bound = None } ] in
  let active = ref 0 in
  let nodes = ref 0 in
  let incumbent = ref None in
  let halt = ref false in
  let budget_hit = ref false in
  let stop = ref Budget.Optimal in
  let locked f =
    Mutex.lock mx;
    Fun.protect ~finally:(fun () -> Mutex.unlock mx) f
  in
  (* Callees below run with [mx] held. *)
  let note_stop r = stop := worst_stop !stop r in
  let give_up reason =
    budget_hit := true;
    note_stop reason;
    halt := true
  in
  let better obj =
    match !incumbent with
    | None -> true
    | Some (s : Simplex.solution) -> sign *. obj < (sign *. s.objective) -. 1e-9
  in
  let rec take () =
    if !halt then None
    else
      match !queue with
      | n :: rest ->
        queue := rest;
        incr active;
        Some n
      | [] ->
        if !active = 0 then None
        else begin
          Condition.wait cond mx;
          take ()
        end
  in
  let worker_stats = Array.make jobs None in
  let worker wid () =
    let wmodel = Model.copy model in
    let wst = Simplex.assemble ~params:lp_params wmodel in
    let solved_once = ref false in
    let applied = ref [] in
    let enter n =
      (* Reset whatever the previous node changed, then apply this
         node's path root-first so the deepest branching wins when a
         variable was branched on twice. *)
      List.iter
        (fun (v, _, _) ->
          Model.set_bounds wmodel v ~lb:root_lb.(v) ~ub:root_ub.(v);
          Simplex.set_var_bounds wst v ~lb:root_lb.(v) ~ub:root_ub.(v))
        !applied;
      List.iter
        (fun (v, lb, ub) ->
          Model.set_bounds wmodel v ~lb ~ub;
          Simplex.set_var_bounds wst v ~lb ~ub)
        (List.rev n.fixes);
      applied := n.fixes
    in
    let process n =
      let proceed =
        locked (fun () ->
            if !halt then false
            else if Budget.expired params.budget then begin
              give_up (Budget.status params.budget);
              false
            end
            else if !nodes >= params.node_limit then begin
              give_up Budget.Node_limit;
              false
            end
            else
              match n.bound with
              | Some b when not (better b) -> false (* pruned by incumbent *)
              | _ ->
                incr nodes;
                true)
      in
      if proceed then begin
        enter n;
        let status =
          if (not !solved_once) || not params.warm_start then Simplex.solve_state wst
          else Simplex.reoptimize wst
        in
        solved_once := true;
        match status with
        | Simplex.Infeasible -> ()
        | Simplex.Unbounded ->
          Log.warn (fun k -> k "unbounded LP relaxation during branch & bound")
        | Simplex.Iteration_limit -> locked (fun () -> give_up Budget.Iteration_limit)
        | Simplex.Deadline -> locked (fun () -> give_up Budget.Deadline)
        | Simplex.Fault msg ->
          (* Same contract as the sequential search: a faulted solver
             state cannot be trusted for siblings; stop the whole
             search and keep the incumbent found so far. *)
          locked (fun () -> give_up (Budget.Fault msg))
        | Simplex.Optimal sol ->
          locked (fun () ->
              if better sol.objective then begin
                match fractional_var params int_vars sol with
                | None ->
                  incumbent := Some { sol with Simplex.values = Array.copy sol.values };
                  if params.first_solution then halt := true
                | Some v ->
                  let x = sol.values.(v) in
                  let lb = Model.var_lb wmodel v and ub = Model.var_ub wmodel v in
                  let down =
                    { fixes = (v, lb, Float.of_int (int_of_float (floor x))) :: n.fixes;
                      bound = Some sol.objective }
                  in
                  let up =
                    { fixes = (v, Float.of_int (int_of_float (ceil x)), ub) :: n.fixes;
                      bound = Some sol.objective }
                  in
                  (* LIFO: push the child nearest the relaxed value
                     last-popped-first, mirroring the sequential dive
                     order. *)
                  let first, second = if x -. floor x > 0.5 then (up, down) else (down, up) in
                  queue := first :: second :: !queue;
                  Condition.broadcast cond
              end)
      end
    in
    let rec loop () =
      match locked take with
      | None -> ()
      | Some n ->
        (try process n
         with Faults.Injected where -> locked (fun () -> give_up (Budget.Fault where)));
        locked (fun () ->
            decr active;
            Condition.broadcast cond);
        loop ()
    in
    Fun.protect
      ~finally:(fun () ->
        (* A worker dying for any reason must release the others. *)
        locked (fun () ->
            halt := true;
            Condition.broadcast cond);
        worker_stats.(wid) <- Some (Simplex.state_stats wst))
      loop
  in
  let pool = Pool.get jobs in
  Pool.run pool (Array.init jobs (fun wid () -> worker wid ()));
  let kernel =
    Array.fold_left
      (fun acc -> function
        | None -> acc
        | Some (s : Simplex.state_stats) ->
          {
            acc with
            warm_solves = acc.warm_solves + s.warm_solves;
            cold_solves = acc.cold_solves + s.cold_solves;
            lp_iterations = acc.lp_iterations + s.lp_iterations;
            refactorizations = acc.refactorizations + s.refactorizations;
            eta_updates = acc.eta_updates + s.eta_updates;
            fill_in = max acc.fill_in s.fill_in;
            drift_refreshes = acc.drift_refreshes + s.drift_refreshes;
          })
      zero_stats worker_stats
  in
  (!incumbent, !budget_hit, { kernel with nodes = !nodes; stop = !stop })

let solve_with_stats ?(params = default_params) model0 =
  let dir, obj0 = Model.objective model0 in
  let sign = solution_sign dir in
  let presolved =
    if params.presolve then
      match
        Presolve.run ~budget:params.budget ~integrality_tol:params.integrality_tol model0
      with
      | Presolve.Proven_infeasible msg ->
        Log.debug (fun k -> k "presolve proved infeasibility: %s" msg);
        Error msg
      | Presolve.Reduced p -> Ok (Some p)
    else Ok None
  in
  match presolved with
  | Error _ ->
    let s = { zero_stats with presolve = Presolve.no_reductions } in
    accumulate s;
    (Infeasible, s)
  | Ok pre ->
    let model, reductions =
      match pre with
      | Some p -> (Presolve.reduced p, Presolve.reductions p)
      | None -> (Model.copy model0, Presolve.no_reductions)
    in
    let int_vars = Model.integer_vars model in
    let lp_params =
      if Budget.is_unlimited params.budget then params.lp_params
      else { params.lp_params with Simplex.budget = params.budget }
    in
    let jobs = max 1 params.jobs in
    let incumbent, budget_hit, search =
      if jobs > 1 then parallel_search ~params ~sign ~int_vars ~lp_params ~jobs model
      else begin
    let st = Simplex.assemble ~params:lp_params model in
    let nodes = ref 0 in
    let incumbent = ref None in
    let budget_hit = ref false in
    let stop = ref Budget.Optimal in
    let note_stop r = stop := worst_stop !stop r in
    let better obj =
      match !incumbent with
      | None -> true
      | Some (s : Simplex.solution) -> sign *. obj < (sign *. s.objective) -. 1e-9
    in
    (* DFS; bounds are mutated in place (both on the reduced model and
       the assembled solver state) and restored on unwind. Node 1 runs
       a cold solve; every later node re-optimizes the warm state from
       its parent's basis. *)
    let fault_hit () = match !stop with Budget.Fault _ -> true | _ -> false in
    let rec node () =
      if fault_hit () then ()
      else if Budget.expired params.budget then begin
        budget_hit := true;
        note_stop (Budget.status params.budget)
      end
      else if !nodes >= params.node_limit then begin
        budget_hit := true;
        note_stop Budget.Node_limit
      end
      else begin
        incr nodes;
        let status =
          if !nodes = 1 || not params.warm_start then Simplex.solve_state st
          else Simplex.reoptimize st
        in
        match status with
        | Simplex.Infeasible -> ()
        | Simplex.Unbounded ->
          (* An unbounded relaxation of a bounded-binary model signals a
             modelling error; treat the node as hopeless. *)
          Log.warn (fun k -> k "unbounded LP relaxation during branch & bound")
        | Simplex.Iteration_limit ->
          budget_hit := true;
          note_stop Budget.Iteration_limit
        | Simplex.Deadline ->
          budget_hit := true;
          note_stop Budget.Deadline
        | Simplex.Fault msg ->
          (* Prune this subtree but keep searching siblings is unsafe —
             the solver state may carry the fault's damage. Stop the
             whole search and return the best incumbent so far. *)
          budget_hit := true;
          note_stop (Budget.Fault msg)
        | Simplex.Optimal sol ->
          if not (better sol.objective) then ()
          else begin
            match fractional_var params int_vars sol with
            | None -> incumbent := Some sol
            | Some v ->
              let x = sol.values.(v) in
              let lb = Model.var_lb model v and ub = Model.var_ub model v in
              let set_bounds ~lb ~ub =
                Model.set_bounds model v ~lb ~ub;
                Simplex.set_var_bounds st v ~lb ~ub
              in
              let explore_down () =
                set_bounds ~lb ~ub:(Float.of_int (int_of_float (floor x)));
                node ();
                set_bounds ~lb ~ub
              in
              let explore_up () =
                set_bounds ~lb:(Float.of_int (int_of_float (ceil x))) ~ub;
                node ();
                set_bounds ~lb ~ub
              in
              let stop () = params.first_solution && !incumbent <> None in
              (* Explore the child nearest the relaxed value first. *)
              if x -. floor x > 0.5 then begin
                explore_up ();
                if not (stop ()) then explore_down ()
              end
              else begin
                explore_down ();
                if not (stop ()) then explore_up ()
              end
          end
      end
    in
    (try node ()
     with Faults.Injected where ->
       (* An injected mid-solve exception must not lose the incumbent:
          the supervision contract is best-effort-so-far, never
          nothing. *)
       budget_hit := true;
       note_stop (Budget.Fault where));
    let sstats = Simplex.state_stats st in
    ( !incumbent,
      !budget_hit,
      {
        zero_stats with
        nodes = !nodes;
        warm_solves = sstats.warm_solves;
        cold_solves = sstats.cold_solves;
        lp_iterations = sstats.lp_iterations;
        refactorizations = sstats.refactorizations;
        eta_updates = sstats.eta_updates;
        fill_in = sstats.fill_in;
        drift_refreshes = sstats.drift_refreshes;
        stop = !stop;
      } )
      end
    in
    let stats = { search with presolve = reductions } in
    accumulate stats;
    let result =
      match incumbent with
      | Some sol ->
        (* Lift back to the original variable space and round every
           integer variable to an exact integral value — a relaxation
           solution within integrality_tol (e.g. 0.9999993) must not
           leak fractional binaries downstream. *)
        let values =
          match pre with Some p -> Presolve.postsolve p sol.values | None -> sol.values
        in
        List.iter (fun v -> values.(v) <- Float.round values.(v)) (Model.integer_vars model0);
        let objective = Expr.eval (fun v -> values.(v)) obj0 in
        Feasible { values; objective; iterations = sol.iterations }
      | None -> if budget_hit then Unknown else Infeasible
    in
    (result, stats)

let solve ?params model0 = fst (solve_with_stats ?params model0)

let relax_and_fix_with_stats ?(threshold = 0.95) ?(params = default_params) model0 =
  (* The root relaxation is counted both in the returned per-call stats
     (folded in below) and in the global cumulative counters (via
     note_lp_solve), so the two accountings agree. *)
  let root_stats ~iterations = { zero_stats with cold_solves = 1; lp_iterations = iterations } in
  let lp_params =
    if Budget.is_unlimited params.budget then params.lp_params
    else { params.lp_params with Simplex.budget = params.budget }
  in
  let root_status =
    try Simplex.solve ~params:lp_params model0
    with Faults.Injected where -> Simplex.Fault where
  in
  match root_status with
  | Simplex.Infeasible ->
    note_lp_solve ~warm:false ~iterations:0 ();
    (Infeasible, root_stats ~iterations:0)
  | Simplex.Unbounded | Simplex.Iteration_limit ->
    note_lp_solve ~warm:false ~iterations:0 ();
    (Unknown, root_stats ~iterations:0)
  | Simplex.Deadline ->
    note_lp_solve ~warm:false ~iterations:0 ();
    (Unknown, { (root_stats ~iterations:0) with stop = Budget.Deadline })
  | Simplex.Fault msg ->
    note_lp_solve ~warm:false ~iterations:0 ();
    (Unknown, { (root_stats ~iterations:0) with stop = Budget.Fault msg })
  | Simplex.Optimal relaxed ->
    note_lp_solve ~warm:false ~iterations:relaxed.iterations ();
    let int_vars = Model.integer_vars model0 in
    let fixed = Model.copy model0 in
    let nfixed = ref 0 in
    List.iter
      (fun v ->
        if relaxed.values.(v) > threshold && Model.var_ub fixed v >= 1.0 then begin
          Model.fix_var fixed v 1.0;
          incr nfixed
        end)
      int_vars;
    Log.debug (fun k ->
        k "relax-and-fix: pre-mapped %d of %d binaries" !nfixed (List.length int_vars));
    let validate = function
      | Feasible sol as r ->
        (match Model.check_feasible model0 (fun v -> sol.values.(v)) with
        | Ok () -> r
        | Error msg ->
          Log.err (fun k -> k "relax-and-fix produced invalid solution: %s" msg);
          Unknown)
      | r -> r
    in
    let root = root_stats ~iterations:relaxed.iterations in
    (match solve_with_stats ~params fixed with
    | Feasible sol, stats -> (validate (Feasible sol), add_stats root stats)
    | (Infeasible | Unknown), stats ->
      (* The aggressive pre-mapping can over-constrain; retry without it. *)
      let r, stats' = solve_with_stats ~params model0 in
      (validate r, add_stats root (add_stats stats stats')))

let relax_and_fix ?threshold ?params model0 =
  fst (relax_and_fix_with_stats ?threshold ?params model0)
