(* Cutting planes for the Eq. (3) MILPs: Gomory mixed-integer cuts
   read off the warm simplex tableau, lifted knapsack cover cuts from
   the capacity rows, and the pool that manages their life cycle.

   Soundness discipline (the part worth being paranoid about): every
   cut emitted here must be valid for the INTEGER hull of the root
   (presolved) model, not merely for the node relaxation it was
   separated at — the pool shares cuts across the whole tree and
   across workers. Concretely:

   - Gomory shifts use the GLOBAL variable bounds supplied by the
     caller, never the node-tightened branching bounds. The tableau
     identity x_B(r) + Σ ā_j x_j = const holds for any x satisfying
     the row system, so rewriting it over globally non-negative
     shifted variables x̃_j = x_j − l_j (or u_j − x_j) keeps every
     step of the mixed-integer rounding argument globally valid.
   - Slack variables substitute through their defining row equation
     s_i = b_i − a_i·x, which holds identically — even for a
     deactivated cut row, whose inequality remains valid for the
     integer hull although the LP no longer enforces it.
   - Dropping a numerically tiny coefficient relaxes the right-hand
     side by the term's worst case over the global box (or keeps the
     term when that box is unbounded); we never silently strengthen.
   - Every finished cut gets a small right-hand-side safety margin,
     and the incumbent is re-checked against all generated cuts in
     exact rational arithmetic ({!check_all}) before a solve reports
     success. *)

module Invariant = Agingfp_util.Invariant
module Rat = Agingfp_util.Rat

type provenance = Gomory of { basic_var : int } | Cover of { row : int }

let pp_provenance ppf = function
  | Gomory { basic_var } -> Format.fprintf ppf "gomory(basic x%d)" basic_var
  | Cover { row } -> Format.fprintf ppf "cover(row %d)" row

type cut = {
  id : int;
  provenance : provenance;
  terms : (int * float) list; (* structural space, sorted by var, Le sense *)
  rhs : float;
}

let pp_cut ppf c =
  let pp_term ppf (v, a) = Format.fprintf ppf "%+g x%d" a v in
  Format.fprintf ppf "#%d %a:%a <= %g" c.id pp_provenance c.provenance
    (fun ppf -> List.iter (Format.fprintf ppf " %a" pp_term))
    c.terms c.rhs

type config = {
  gomory : bool;
  cover : bool;
  max_rounds_root : int;
  max_rounds_node : int;
  node_depth : int;
  max_cuts : int;
  max_per_round : int;
  min_violation : float;
  age_limit : int;
}

let default_config =
  {
    gomory = true;
    cover = true;
    max_rounds_root = 10;
    max_rounds_node = 2;
    node_depth = 4;
    max_cuts = 96;
    max_per_round = 16;
    min_violation = 1e-6;
    age_limit = 8;
  }

let off = { default_config with gomory = false; cover = false }
let enabled c = c.gomory || c.cover

(* ---------- cut pool ---------- *)

type entry = {
  cut : cut;
  mutable active : bool;
  mutable age : int; (* consecutive observations with positive slack *)
  mutable binding_rounds : int;
}

type pool = {
  config : config;
  mutable entries : entry array;
  mutable len : int;
  seen : (string, unit) Hashtbl.t;
  mutable n_aged_out : int;
  mutable n_reactivated : int;
}

let create_pool config =
  {
    config;
    entries = [||];
    len = 0;
    seen = Hashtbl.create 64;
    n_aged_out = 0;
    n_reactivated = 0;
  }

let pool_config p = p.config
let size p = p.len

let entry p id =
  if id < 0 || id >= p.len then Invariant.invalid ~where:"Cuts.get" "bad cut id %d" id;
  p.entries.(id)

let get p id = (entry p id).cut
let is_active p id = (entry p id).active
let active_flags p = Array.init p.len (fun id -> p.entries.(id).active)

let key terms rhs =
  let b = Buffer.create 64 in
  List.iter (fun (v, c) -> Buffer.add_string b (Printf.sprintf "%d:%.14g;" v c)) terms;
  Buffer.add_string b (Printf.sprintf "<=%.14g" rhs);
  Buffer.contents b

(* Admit a separated cut: deduplicated against everything ever seen,
   rejected when the pool (= the reserved row capacity of the worker
   states) is full. Returns the new cut's id. *)
let admit p ~provenance ~terms ~rhs =
  if p.len >= p.config.max_cuts then None
  else begin
    let k = key terms rhs in
    if Hashtbl.mem p.seen k then None
    else begin
      Hashtbl.add p.seen k ();
      let cut = { id = p.len; provenance; terms; rhs } in
      let e = { cut; active = true; age = 0; binding_rounds = 0 } in
      if Array.length p.entries = p.len then begin
        let cap = max 16 (2 * Array.length p.entries) in
        let arr = Array.make cap e in
        Array.blit p.entries 0 arr 0 p.len;
        p.entries <- arr
      end;
      p.entries.(p.len) <- e;
      p.len <- p.len + 1;
      Some cut.id
    end
  end

let eval_terms terms value =
  List.fold_left (fun acc (v, c) -> acc +. (c *. value v)) 0.0 terms

(* Activity-based aging, fed one LP optimum at a time: an active cut
   with positive slack ages; once it exceeds the configured limit it
   is deactivated (its row is relaxed in the worker states, it never
   binds again unless re-violated). An inactive cut violated by the
   current point re-enters the active set. *)
let observe p value =
  let slack_tol = 1e-7 in
  for id = 0 to p.len - 1 do
    let e = p.entries.(id) in
    let slack = e.cut.rhs -. eval_terms e.cut.terms value in
    if e.active then
      if slack > slack_tol then begin
        e.age <- e.age + 1;
        if e.age > p.config.age_limit then begin
          e.active <- false;
          p.n_aged_out <- p.n_aged_out + 1
        end
      end
      else begin
        e.age <- 0;
        e.binding_rounds <- e.binding_rounds + 1
      end
    else if slack < -.p.config.min_violation then begin
      e.active <- true;
      e.age <- 0;
      p.n_reactivated <- p.n_reactivated + 1
    end
  done

type pool_stats = {
  separated : int;
  active : int;
  aged_out : int;
  reactivated : int;
}

let pool_stats p =
  let active = ref 0 in
  for id = 0 to p.len - 1 do
    if p.entries.(id).active then incr active
  done;
  { separated = p.len; active = !active; aged_out = p.n_aged_out; reactivated = p.n_reactivated }

(* ---------- Gomory mixed-integer separation ---------- *)

type shift = Sh_fixed of float | Sh_lb of float | Sh_ub of float

exception Reject

(* One candidate: basis position [pos] holding integer structural
   [bc]. Returns the finished structural-space Le cut with its
   violation at the current point, or raises [Reject]. *)
let gomory_of_row ~st ~is_int ~global_lb ~global_ub ~row_terms ~row_rhs ~row_rel ~pos ~bc =
  let n = Simplex.structural_count st in
  let cap = Simplex.row_capacity st in
  let mrows = Simplex.num_rows st in
  let alpha = Simplex.tableau_row st ~pos in
  let xb = Simplex.column_value st bc in
  (* The tableau identity x_bc + Σ ā_j x_j = K; K recovered from the
     current point, which satisfies it. *)
  let kconst = ref xb in
  let shifted =
    List.map
      (fun (j, a) ->
        let cur = Simplex.column_value st j in
        kconst := !kconst +. (a *. cur);
        let lo, hi, integer =
          if j < n then (global_lb.(j), global_ub.(j), is_int j)
          else if j < n + cap then begin
            let i = j - n in
            if i >= mrows then (0.0, 0.0, false)
            else
              match row_rel i with
              | Model.Le -> (0.0, infinity, false)
              | Model.Ge -> (neg_infinity, 0.0, false)
              | Model.Eq -> (0.0, 0.0, false)
          end
          else (0.0, 0.0, false) (* artificial: locked at 0 *)
        in
        let shift =
          if hi -. lo <= 1e-12 then Sh_fixed lo
          else if lo > neg_infinity then
            if hi < infinity then if cur -. lo <= hi -. cur then Sh_lb lo else Sh_ub hi
            else Sh_lb lo
          else if hi < infinity then Sh_ub hi
          else raise Reject (* free column: no globally valid shift *)
        in
        (j, a, shift, integer))
      alpha
  in
  (* Shifted right-hand side and its fractional part. *)
  let bbar =
    List.fold_left
      (fun acc (_, a, s, _) ->
        match s with
        | Sh_fixed v -> acc -. (a *. v)
        | Sh_lb l -> acc -. (a *. l)
        | Sh_ub u -> acc -. (a *. u))
      !kconst shifted
  in
  let f0 = bbar -. floor bbar in
  if f0 < 0.01 || f0 > 0.99 then raise Reject;
  (* Accumulate the >=-sense cut over structural variables,
     substituting slack columns through their defining rows. *)
  let coef = Array.make n 0.0 in
  let touched = ref [] in
  let rhs_ge = ref 1.0 in
  let add_struct v c =
    if not (Float.equal c 0.0) then begin
      touched := v :: !touched;
      coef.(v) <- coef.(v) +. c
    end
  in
  let add_col j c =
    if j < n then add_struct j c
    else begin
      let i = j - n in
      (* s_i = b_i − a_i·x identically, so c·s_i trades for a constant
         and structural terms. Valid for cut rows too. *)
      rhs_ge := !rhs_ge -. (c *. row_rhs i);
      List.iter (fun (v, av) -> add_struct v (-.c *. av)) (row_terms i)
    end
  in
  let gamma_of a' integer =
    if integer then begin
      let fj = a' -. floor a' in
      if fj <= f0 then fj /. f0 else (1.0 -. fj) /. (1.0 -. f0)
    end
    else if a' >= 0.0 then a' /. f0
    else -.a' /. (1.0 -. f0)
  in
  List.iter
    (fun (j, a, s, integer) ->
      match s with
      | Sh_fixed _ -> ()
      | Sh_lb l ->
        (* An integer shifted variable stays integer only over an
           integral bound; otherwise fall back to the continuous
           (weaker but valid) coefficient. *)
        let int_ok = integer && abs_float (l -. Float.round l) <= 1e-9 in
        let g = gamma_of a int_ok in
        if g > 1e-13 then begin
          add_col j g;
          rhs_ge := !rhs_ge +. (g *. l)
        end
      | Sh_ub u ->
        let int_ok = integer && abs_float (u -. Float.round u) <= 1e-9 in
        let g = gamma_of (-.a) int_ok in
        if g > 1e-13 then begin
          add_col j (-.g);
          rhs_ge := !rhs_ge -. (g *. u)
        end)
    shifted;
  (* Flip to Le sense and clean up. *)
  let vars = List.sort_uniq compare !touched in
  let items =
    List.filter_map
      (fun v ->
        let c = -.coef.(v) in
        if Float.equal c 0.0 then None else Some (v, c))
      vars
  in
  let rhs_le = ref (-. !rhs_ge) in
  let maxc = List.fold_left (fun acc (_, c) -> Float.max acc (abs_float c)) 0.0 items in
  if maxc < 1e-12 || not (Float.is_finite maxc) then raise Reject;
  let scale = 1.0 /. maxc in
  let items = List.map (fun (v, c) -> (v, c *. scale)) items in
  rhs_le := !rhs_le *. scale;
  (* Drop tiny coefficients with a worst-case rhs relaxation over the
     global box; an unbounded box forces a reject rather than an
     invalid drop. *)
  let kept =
    List.filter
      (fun (v, c) ->
        if abs_float c >= 1e-7 then true
        else begin
          let lo = global_lb.(v) and hi = global_ub.(v) in
          let worst = if c > 0.0 then c *. lo else c *. hi in
          if Float.is_finite worst then begin
            rhs_le := !rhs_le -. worst;
            false
          end
          else raise Reject
        end)
      items
  in
  if kept = [] then raise Reject;
  if not (Float.is_finite !rhs_le) then raise Reject;
  (* Safety margin: give every cut a hair of slack so float round-off
     in the derivation can never cut off an integer-feasible point the
     exact audit would accept. *)
  rhs_le := !rhs_le +. (1e-9 *. (1.0 +. abs_float !rhs_le));
  let viol =
    List.fold_left (fun acc (v, c) -> acc +. (c *. Simplex.column_value st v)) 0.0 kept
    -. !rhs_le
  in
  (Gomory { basic_var = bc }, kept, !rhs_le, viol)

let separate_gomory ~st ~is_int ~global_lb ~global_ub ~row_terms ~row_rhs ~row_rel
    ~max_cuts ~min_violation =
  let n = Simplex.structural_count st in
  let mrows = Simplex.num_rows st in
  (* Candidate rows: integer structural basics with fractional value,
     most fractional first (deterministic tie-break on the variable). *)
  let cands = ref [] in
  for pos = 0 to mrows - 1 do
    let bc = Simplex.basis_column st pos in
    if bc >= 0 && bc < n && is_int bc then begin
      let xv = Simplex.column_value st bc in
      let fr = xv -. floor xv in
      if fr > 0.01 && fr < 0.99 then cands := (abs_float (fr -. 0.5), pos, bc) :: !cands
    end
  done;
  let cands =
    List.sort
      (fun (d1, _, v1) (d2, _, v2) ->
        match Float.compare d1 d2 with 0 -> compare v1 v2 | c -> c)
      !cands
  in
  let out = ref [] in
  List.iter
    (fun (_, pos, bc) ->
      match
        gomory_of_row ~st ~is_int ~global_lb ~global_ub ~row_terms ~row_rhs ~row_rel ~pos
          ~bc
      with
      | exception Reject -> ()
      | (_, _, _, viol) as c -> if viol > min_violation then out := c :: !out)
    cands;
  let out =
    List.sort
      (fun (p1, _, _, v1) (p2, _, _, v2) ->
        match Float.compare v2 v1 with 0 -> compare p1 p2 | c -> c)
      !out
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: tl -> x :: take (k - 1) tl
  in
  take max_cuts out

(* ---------- lifted knapsack cover separation ---------- *)

(* Normalize a model row into knapsack form Σ c_v x_v <= b over
   positive-coefficient binaries, pushing everything else to the
   right-hand side at its worst case over the global box. *)
let knapsack_of_row ~is_binary ~global_lb ~global_ub terms rhs =
  let b = ref rhs in
  let items = ref [] in
  try
    List.iter
      (fun (v, c) ->
        if Float.equal c 0.0 then ()
        else if is_binary v then
          if c > 0.0 then items := (v, c) :: !items else b := !b -. c
        else begin
          let lo = global_lb.(v) and hi = global_ub.(v) in
          let mn = if c > 0.0 then c *. lo else c *. hi in
          if Float.is_finite mn then b := !b -. mn else raise Exit
        end)
      terms;
    if !items = [] then None else Some (List.rev !items, !b)
  with Exit -> None

let cover_of_knapsack ~values ~row items b =
  let total = List.fold_left (fun acc (_, c) -> acc +. c) 0.0 items in
  if total <= b +. 1e-7 then None
  else begin
    (* Greedy cover: most fractional-active items first. *)
    let by_val =
      List.sort
        (fun (v1, _) (v2, _) ->
          match Float.compare values.(v2) values.(v1) with
          | 0 -> compare v1 v2
          | c -> c)
        items
    in
    let weight = ref 0.0 in
    let cover = ref [] in
    (try
       List.iter
         (fun (v, c) ->
           cover := (v, c) :: !cover;
           weight := !weight +. c;
           if !weight > b +. 1e-7 then raise Exit)
         by_val
     with Exit -> ());
    if !weight <= b +. 1e-7 then None
    else begin
      (* Minimalize: drop light items whose removal keeps the cover. *)
      let asc =
        List.sort
          (fun (v1, c1) (v2, c2) ->
            match Float.compare c1 c2 with 0 -> compare v1 v2 | c -> c)
          !cover
      in
      let kept = ref [] in
      List.iter
        (fun (v, c) ->
          if !weight -. c > b +. 1e-7 then weight := !weight -. c
          else kept := (v, c) :: !kept)
        asc;
      let cover = !kept in
      let size = List.length cover in
      if size < 1 then None
      else begin
        let amax = List.fold_left (fun acc (_, c) -> Float.max acc c) 0.0 cover in
        let in_cover v = List.exists (fun (v', _) -> v' = v) cover in
        (* Extended lifting: any item at least as heavy as the cover's
           heaviest can join with coefficient 1. *)
        let ext =
          List.filter (fun (v, c) -> (not (in_cover v)) && c >= amax -. 1e-12) items
        in
        let members = List.map fst cover @ List.map fst ext in
        let members = List.sort_uniq compare members in
        let rhs = float_of_int (size - 1) in
        let terms = List.map (fun v -> (v, 1.0)) members in
        let viol = List.fold_left (fun acc v -> acc +. values.(v)) 0.0 members -. rhs in
        Some (Cover { row }, terms, rhs, viol)
      end
    end
  end

let separate_cover ~model_rows ~is_binary ~global_lb ~global_ub ~values ~max_cuts
    ~min_violation =
  let out = ref [] in
  List.iter
    (fun (row, terms, rel, rhs) ->
      let knaps =
        match rel with
        | Model.Le -> [ (terms, rhs) ]
        | Model.Ge -> [ (List.map (fun (v, c) -> (v, -.c)) terms, -.rhs) ]
        | Model.Eq -> []
      in
      List.iter
        (fun (terms, rhs) ->
          match knapsack_of_row ~is_binary ~global_lb ~global_ub terms rhs with
          | None -> ()
          | Some (items, b) -> (
            match cover_of_knapsack ~values ~row items b with
            | Some ((_, _, _, viol) as c) when viol > min_violation -> out := c :: !out
            | _ -> ()))
        knaps)
    model_rows;
  let out =
    List.sort
      (fun (p1, _, _, v1) (p2, _, _, v2) ->
        match Float.compare v2 v1 with 0 -> compare p1 p2 | c -> c)
      !out
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: tl -> x :: take (k - 1) tl
  in
  take max_cuts out

(* ---------- exact rational audit ---------- *)

let check ?(tol = 1e-6) cut value =
  let q = Rat.of_float in
  let lhs =
    List.fold_left
      (fun acc (v, c) -> Rat.add acc (Rat.mul (q c) (q (value v))))
      Rat.zero cut.terms
  in
  let bound = Rat.add (q cut.rhs) (q tol) in
  if Rat.compare lhs bound <= 0 then Ok ()
  else
    Error
      (Format.asprintf
         "cut #%d (%a) cuts off the solution: lhs = %s > rhs %g (+ tol %g)" cut.id
         pp_provenance cut.provenance (Rat.to_string lhs) cut.rhs tol)

let check_all ?tol p value =
  let result = ref (Ok ()) in
  (try
     for id = 0 to p.len - 1 do
       match check ?tol p.entries.(id).cut value with
       | Ok () -> ()
       | Error _ as e ->
         result := e;
         raise Exit
     done
   with Exit -> ());
  !result
