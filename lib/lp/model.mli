(** Mutable MILP model builder.

    A model is a set of bounded variables (continuous or integer),
    linear constraints and an optional linear objective. The builder
    mirrors the structure of formulation (3) in the paper: binaries
    [OP_ijk] with assignment, stress-budget and path-length rows. *)

type t

type relation = Le | Ge | Eq

type kind = Continuous | Integer
(** [Integer] restricted to [{0,1}] bounds gives the paper's binary
    [OP_ijk] variables. *)

type direction = Minimize | Maximize

val create : unit -> t

val add_var :
  ?name:string -> ?lb:float -> ?ub:float -> ?kind:kind -> t -> int
(** Fresh variable index. Defaults: [lb = 0.], [ub = infinity],
    [kind = Continuous]. [lb] may be [neg_infinity]. *)

val add_binary : ?name:string -> t -> int
(** Integer variable with bounds [0, 1]. *)

val add_constraint : ?name:string -> t -> Expr.t -> relation -> float -> int
(** [add_constraint m lhs rel rhs] adds [lhs rel rhs]; the constant
    term of [lhs] is folded into [rhs]. Returns the row index. [name]
    is kept for diagnostics ({!row_name}) and LP-format labels. *)

val set_objective : t -> direction -> Expr.t -> unit
(** Default objective is [Minimize zero] — the paper's "ObjFunc: Null"
    feasibility form. The constant term is reported back in objective
    values but does not affect optimization. *)

val fix_var : t -> int -> float -> unit
(** Pin a variable by setting both bounds — used for frozen
    critical-path operations and the two-step pre-mapping. *)

val set_bounds : t -> int -> lb:float -> ub:float -> unit

val set_rhs : t -> int -> float -> unit
(** Replace the right-hand side of an existing row — used by the
    Δ-relaxation loop to move the stress budget without rebuilding the
    model. *)

(** {2 Accessors (consumed by the solver)} *)

val num_vars : t -> int
val num_constraints : t -> int
val var_lb : t -> int -> float
val var_ub : t -> int -> float
val var_kind : t -> int -> kind
val var_name : t -> int -> string

val row_name : t -> int -> string
(** [""] when the row was added without a name. *)

val objective : t -> direction * Expr.t
val constraint_row : t -> int -> Expr.t * relation * float
val iter_constraints : t -> (int -> Expr.t -> relation -> float -> unit) -> unit
val integer_vars : t -> int list

val copy : t -> t
(** Deep copy; branching in the MILP search mutates bounds on copies. *)

val check_feasible : ?tol:float -> t -> (int -> float) -> (unit, string) result
(** Validate a full assignment against bounds, integrality and every
    constraint. [tol] defaults to [1e-6]. The [Error] carries a
    human-readable description of the first violation. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: variable/constraint/integer counts. *)
