(* Root-node primal heuristics: diving and the Fischetti–Glover–Lodi
   feasibility pump. Both run on the SAME warm simplex state the tree
   search will use — the whole point is to hand branch & bound an
   incumbent before node 1, so every node from the first bound
   comparison on can prune against it.

   Contract with the caller: the state is borrowed. Diving saves and
   restores every variable bound it fixes; the pump overrides the
   objective through {!Simplex.set_cost} and restores it with
   {!Simplex.reset_cost}. The basis is left wherever the last LP
   finished — callers re-optimize anyway. Candidate incumbents are
   only reported after passing {!Model.check_feasible} on the
   presolved model, so a heuristic bug can degrade into "found
   nothing", never into an infeasible incumbent. *)

module Budget = Agingfp_util.Budget

type config = {
  diving : bool;
  pump : bool;
  max_dive_lps : int;
  pump_max_iters : int;
  budget_fraction : float;
}

let default_config =
  { diving = true; pump = true; max_dive_lps = 200; pump_max_iters = 60; budget_fraction = 0.25 }

let off = { default_config with diving = false; pump = false }
let enabled c = c.diving || c.pump

type outcome = { values : float array; objective : float; source : string }
type result = { found : outcome list; lps : int }

let round_check ~model ~obj_expr ~int_vars ~source values =
  let values = Array.copy values in
  List.iter (fun v -> values.(v) <- Float.round values.(v)) int_vars;
  match Model.check_feasible model (fun v -> values.(v)) with
  | Ok () ->
    Some { values; objective = Expr.eval (fun v -> values.(v)) obj_expr; source }
  | Error _ -> None

(* Least-fractional candidate: the variable closest to integrality is
   fixed first — propagation stays cheap and the dive rarely needs the
   opposite-rounding retry. Deterministic tie-break on the index. *)
let pick_fractional ~int_vars (sol : Simplex.solution) =
  let bestv = ref (-1) in
  let bestd = ref infinity in
  List.iter
    (fun v ->
      let x = sol.Simplex.values.(v) in
      let d = abs_float (x -. Float.round x) in
      if d > 1e-6 && (d < !bestd -. 1e-12 || (d < !bestd +. 1e-12 && (!bestv < 0 || v < !bestv)))
      then begin
        bestv := v;
        bestd := d
      end)
    int_vars;
  if !bestv < 0 then None else Some (!bestv, sol.Simplex.values.(!bestv))

let dive config ~model ~obj_expr ~st ~int_vars ~budget ~relaxed =
  let saved = ref [] in
  let lps = ref 0 in
  let outcome = ref None in
  let rec step (sol : Simplex.solution) =
    if Budget.expired budget || !lps >= config.max_dive_lps then ()
    else
      match pick_fractional ~int_vars sol with
      | None ->
        outcome := round_check ~model ~obj_expr ~int_vars ~source:"diving" sol.Simplex.values
      | Some (v, x) ->
        let lb0, ub0 = Simplex.column_bounds st v in
        let lo = ceil (lb0 -. 1e-9) and hi = floor (ub0 +. 1e-9) in
        if lo > hi then ()
        else begin
          saved := (v, lb0, ub0) :: !saved;
          let r = Float.max lo (Float.min hi (Float.round x)) in
          Simplex.set_var_bounds st v ~lb:r ~ub:r;
          incr lps;
          match Simplex.reoptimize st with
          | Simplex.Optimal sol' -> step sol'
          | _ ->
            (* Fixing toward the rounding failed: one retry on the
               other integer neighbour, then give up on this dive. *)
            let alt = if r -. x > 0.0 then r -. 1.0 else r +. 1.0 in
            if
              alt >= lo -. 1e-9
              && alt <= hi +. 1e-9
              && !lps < config.max_dive_lps
              && not (Budget.expired budget)
            then begin
              Simplex.set_var_bounds st v ~lb:alt ~ub:alt;
              incr lps;
              match Simplex.reoptimize st with
              | Simplex.Optimal sol' -> step sol'
              | _ -> ()
            end
        end
  in
  step relaxed;
  List.iter (fun (v, lb, ub) -> Simplex.set_var_bounds st v ~lb ~ub) !saved;
  (!outcome, !lps)

(* Feasibility pump: alternate an L1-distance LP with rounding. The
   distance objective to the rounded target x̃ over integer variables
   at their bounds is linear — +1 when x̃ sits at the lower bound,
   −1 at the upper (constants dropped); targets strictly inside their
   range contribute nothing. Cycles are broken by flipping the
   integers that disagree most with the LP point, a deterministic
   stand-in for the classic randomized perturbation. *)
let pump config ~model ~obj_expr ~st ~int_vars ~budget ~(relaxed : Simplex.solution) =
  let lps = ref 0 in
  let outcome = ref None in
  let xt = Array.copy relaxed.Simplex.values in
  List.iter (fun v -> xt.(v) <- Float.round xt.(v)) int_vars;
  let clamp v =
    let lb, ub = Simplex.column_bounds st v in
    xt.(v) <- Float.max lb (Float.min ub xt.(v))
  in
  List.iter clamp int_vars;
  let seen = Hashtbl.create 32 in
  let key () =
    let b = Buffer.create 64 in
    List.iter (fun v -> Buffer.add_string b (Printf.sprintf "%d," (int_of_float xt.(v)))) int_vars;
    Buffer.contents b
  in
  (* The initial rounding may already be feasible (the paper's null
     objective makes this common) — check before pumping. *)
  let direct = Array.copy relaxed.Simplex.values in
  List.iter (fun v -> direct.(v) <- xt.(v)) int_vars;
  (match Model.check_feasible model (fun v -> direct.(v)) with
  | Ok () ->
    outcome :=
      Some
        { values = direct; objective = Expr.eval (fun v -> direct.(v)) obj_expr; source = "pump" }
  | Error _ -> ());
  let rec iterate it =
    if !outcome <> None || it >= config.pump_max_iters || Budget.expired budget then ()
    else begin
      let cost =
        List.filter_map
          (fun v ->
            let lb, ub = Simplex.column_bounds st v in
            let t = xt.(v) in
            if t <= lb +. 1e-9 then Some (v, 1.0)
            else if t >= ub -. 1e-9 then Some (v, -1.0)
            else None)
          int_vars
      in
      Simplex.set_cost st cost;
      incr lps;
      match Simplex.reoptimize st with
      | Simplex.Optimal sol ->
        let dist =
          List.fold_left
            (fun acc v ->
              acc +. abs_float (sol.Simplex.values.(v) -. Float.round sol.Simplex.values.(v)))
            0.0 int_vars
        in
        if dist < 1e-6 then
          outcome := round_check ~model ~obj_expr ~int_vars ~source:"pump" sol.Simplex.values
        else begin
          List.iter (fun v -> xt.(v) <- Float.round sol.Simplex.values.(v)) int_vars;
          List.iter clamp int_vars;
          let k = key () in
          if Hashtbl.mem seen k then begin
            (* Cycle: flip the (2 + it mod 5) integers furthest from
               their rounded value, deterministically. *)
            let scored =
              List.map (fun v -> (abs_float (sol.Simplex.values.(v) -. xt.(v)), v)) int_vars
            in
            let scored =
              List.sort
                (fun (d1, v1) (d2, v2) ->
                  match Float.compare d2 d1 with 0 -> compare v1 v2 | c -> c)
                scored
            in
            let nflip = 2 + (it mod 5) in
            List.iteri
              (fun i (_, v) ->
                if i < nflip then begin
                  let lb, ub = Simplex.column_bounds st v in
                  let flipped =
                    if sol.Simplex.values.(v) > xt.(v) then xt.(v) +. 1.0 else xt.(v) -. 1.0
                  in
                  if flipped >= lb -. 1e-9 && flipped <= ub +. 1e-9 then xt.(v) <- flipped
                end)
              scored
          end
          else Hashtbl.add seen k ();
          iterate (it + 1)
        end
      | _ -> ()
    end
  in
  iterate 0;
  Simplex.reset_cost st;
  (!outcome, !lps)

let run config ~model ~st ~int_vars ~budget ~relaxed =
  let _, obj_expr = Model.objective model in
  let found = ref [] in
  let lps = ref 0 in
  if config.diving && not (Budget.expired budget) then begin
    let o, k = dive config ~model ~obj_expr ~st ~int_vars ~budget ~relaxed in
    lps := !lps + k;
    match o with Some o -> found := o :: !found | None -> ()
  end;
  if config.pump && not (Budget.expired budget) then begin
    let o, k = pump config ~model ~obj_expr ~st ~int_vars ~budget ~relaxed in
    lps := !lps + k;
    match o with Some o -> found := o :: !found | None -> ()
  end;
  { found = List.rev !found; lps = !lps }
