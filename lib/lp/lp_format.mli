(** CPLEX LP-format export.

    Serializes a {!Model.t} in the textual LP format understood by
    CPLEX, Gurobi, GLPK, SCIP, lp_solve and HiGHS, so any model built
    by this library — in particular the paper's formulation (3) — can
    be inspected by hand or cross-checked against an external solver
    (the paper's own setup was CPLEX via PuLP). *)

val to_string : Model.t -> string
(** Sections emitted: objective ([Minimize]/[Maximize]), [Subject To],
    [Bounds] (only for variables whose bounds differ from the default
    [0 <= x]), [General]/[Binary] for integer variables, [End].
    Variables are named [x0], [x1], … by index; rows are labelled with
    their sanitized {!Model.row_name} when one was given, [c0], [c1],
    … otherwise. *)

val write_file : string -> Model.t -> (unit, string) result

val of_string : string -> (Model.t, string) result
(** Parse the LP-format subset emitted by {!to_string} (plus common
    variations: [<]/[>] relations, [st], [Integer] section headers,
    [\ ] comments, range bounds). Variable kinds, bounds, relations
    and row labels are reconstructed; when every variable follows the
    writer's [x<index>] naming, original variable indices are
    recovered exactly. Coefficients survive up to the writer's
    [%.12g] float printing. *)

val read_file : string -> (Model.t, string) result
(** {!of_string} on the contents of a file. *)
