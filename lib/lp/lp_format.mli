(** CPLEX LP-format export.

    Serializes a {!Model.t} in the textual LP format understood by
    CPLEX, Gurobi, GLPK, SCIP, lp_solve and HiGHS, so any model built
    by this library — in particular the paper's formulation (3) — can
    be inspected by hand or cross-checked against an external solver
    (the paper's own setup was CPLEX via PuLP). *)

val to_string : Model.t -> string
(** Sections emitted: objective ([Minimize]/[Maximize]), [Subject To],
    [Bounds] (only for variables whose bounds differ from the default
    [0 <= x]), [General]/[Binary] for integer variables, [End].
    Variables are named [x0], [x1], … by index; a sanitized model
    name comment is included when variables were named. *)

val write_file : string -> Model.t -> (unit, string) result
