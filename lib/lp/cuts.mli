(** Cutting planes for the MILP core: Gomory mixed-integer cuts from
    the warm simplex tableau, lifted knapsack cover cuts from the
    Eq. (3) capacity structure, and the pool that manages their life
    cycle across the branch & bound tree.

    Every cut produced here is valid for the integer hull of the
    {e root} (presolved) model — Gomory shifts use the global variable
    bounds supplied by the caller rather than node-tightened branching
    bounds, and slack substitution goes through the defining row
    equations — so the pool can share cuts between tree nodes and
    workers. Validity is enforced twice: numerically at separation
    time (worst-case right-hand-side relaxation for dropped
    coefficients, a small safety margin on every cut) and exactly at
    the incumbent via {!check_all} in rational arithmetic. *)

type provenance =
  | Gomory of { basic_var : int }
      (** Derived from the tableau row where structural [basic_var]
          sat basic at a fractional value. *)
  | Cover of { row : int }
      (** Lifted minimal cover of (a knapsack relaxation of) model row
          [row]. *)

val pp_provenance : Format.formatter -> provenance -> unit

type cut = {
  id : int;           (** pool index; worker row = base rows + id *)
  provenance : provenance;
  terms : (int * float) list;
      (** structural-variable space, sorted by variable *)
  rhs : float;        (** sense is always [terms <= rhs] *)
}

val pp_cut : Format.formatter -> cut -> unit

(** {1 Configuration} *)

type config = {
  gomory : bool;
  cover : bool;
  max_rounds_root : int;  (** separation rounds at the root *)
  max_rounds_node : int;  (** separation rounds per eligible tree node *)
  node_depth : int;       (** separate only at nodes of depth <= this *)
  max_cuts : int;
      (** pool capacity — also the row slots reserved per worker state *)
  max_per_round : int;    (** admitted cuts per separation round *)
  min_violation : float;  (** violation needed to accept / reactivate *)
  age_limit : int;
      (** consecutive slack observations before deactivation *)
}

val default_config : config
val off : config
(** Both families disabled; [enabled off = false]. *)

val enabled : config -> bool

(** {1 Cut pool}

    The pool owns every cut ever admitted. Cuts are append-only — a
    cut's [id] doubles as its row offset in the worker LP states, so
    slots are never reclaimed; deactivation relaxes the row instead
    ({!Simplex.set_row_enforced}). Under [jobs > 1] the caller guards
    pool access with the tree mutex. *)

type pool

val create_pool : config -> pool
val pool_config : pool -> config

val size : pool -> int
(** Cuts ever admitted (active + aged out). *)

val get : pool -> int -> cut
val is_active : pool -> int -> bool

val active_flags : pool -> bool array
(** Snapshot of per-cut activity, indexed by id — what workers diff
    against to lazily enforce/relax their own cut rows. *)

val admit :
  pool -> provenance:provenance -> terms:(int * float) list -> rhs:float -> int option
(** Admit a separated cut. [None] when the pool is at capacity or the
    cut duplicates one already seen (exact term/rhs match). *)

val observe : pool -> (int -> float) -> unit
(** Feed one LP optimum to the aging machinery: active cuts with slack
    age (and deactivate past [age_limit]); inactive cuts violated by
    the point reactivate. *)

type pool_stats = {
  separated : int;   (** cuts ever admitted *)
  active : int;      (** currently active *)
  aged_out : int;    (** deactivations (lifetime count) *)
  reactivated : int; (** reactivations of aged-out cuts *)
}

val pool_stats : pool -> pool_stats

(** {1 Separation} *)

val separate_gomory :
  st:Simplex.state ->
  is_int:(int -> bool) ->
  global_lb:float array ->
  global_ub:float array ->
  row_terms:(int -> (int * float) list) ->
  row_rhs:(int -> float) ->
  row_rel:(int -> Model.relation) ->
  max_cuts:int ->
  min_violation:float ->
  (provenance * (int * float) list * float * float) list
(** Gomory mixed-integer cuts from the current optimal basis of [st]:
    one candidate per integer structural variable basic at a
    fractional value, most fractional first. [global_lb]/[global_ub]
    are the root bounds the shifts use; [row_terms]/[row_rhs]/[row_rel]
    describe every live row (model rows and appended cut rows) for
    slack substitution. Returns [(provenance, terms, rhs, violation)]
    in decreasing violation order, at most [max_cuts], each violated
    by more than [min_violation] at the current point. *)

val separate_cover :
  model_rows:(int * (int * float) list * Model.relation * float) list ->
  is_binary:(int -> bool) ->
  global_lb:float array ->
  global_ub:float array ->
  values:float array ->
  max_cuts:int ->
  min_violation:float ->
  (provenance * (int * float) list * float * float) list
(** Lifted minimal-cover cuts from knapsack relaxations of the given
    model rows ([Le] directly, [Ge] negated; non-binary terms pushed
    to the right-hand side at their worst case over the global box).
    Same result convention as {!separate_gomory}. *)

(** {1 Exact audit} *)

val check : ?tol:float -> cut -> (int -> float) -> (unit, string) result
(** Exact rational check that the assignment satisfies the cut within
    [tol] (default [1e-6]): Σ c_v·x_v ≤ rhs + tol evaluated in
    {!Agingfp_util.Rat}. The [Error] names the cut and its
    provenance. *)

val check_all : ?tol:float -> pool -> (int -> float) -> (unit, string) result
(** {!check} over every cut ever admitted (active or aged out) —
    validity does not expire with activity. First violation wins. *)
