(** Root-node primal heuristics for the MILP core: diving and the
    Fischetti–Glover–Lodi feasibility pump.

    Both heuristics run on the warm simplex state the tree search
    itself will use, under a strict sub-budget, before node 1 — their
    job is to seed the incumbent so that gap termination and
    incumbent pruning are live from the first bound comparison.

    The state is borrowed and restored: diving undoes every bound it
    fixed, the pump restores the model objective via
    {!Simplex.reset_cost}. The basis is left wherever the last
    heuristic LP finished (callers re-optimize anyway). Candidate
    incumbents are reported only after passing
    {!Model.check_feasible} on the presolved model — a heuristic
    failure degrades into "found nothing", never into an infeasible
    incumbent. *)

type config = {
  diving : bool;
  pump : bool;
  max_dive_lps : int;     (** LP re-solve cap for one dive *)
  pump_max_iters : int;   (** pump rounding/solve alternations *)
  budget_fraction : float;
      (** share of the solve budget the caller should slice off for
          the heuristic phase (consumed by {!Milp}) *)
}

val default_config : config
val off : config
val enabled : config -> bool

type outcome = {
  values : float array; (** integral on the integer variables *)
  objective : float;    (** model objective at [values] *)
  source : string;      (** ["diving"] or ["pump"] *)
}

type result = {
  found : outcome list; (** audit-checked candidates, in run order *)
  lps : int;            (** heuristic LP solves consumed *)
}

val run :
  config ->
  model:Model.t ->
  st:Simplex.state ->
  int_vars:int list ->
  budget:Agingfp_util.Budget.t ->
  relaxed:Simplex.solution ->
  result
(** Run the enabled heuristics from the root LP optimum [relaxed].
    [model] is the presolved model (used for feasibility checking and
    the objective); [budget] is the heuristic sub-budget — the caller
    slices it from the solve budget and restores the state's budget
    afterwards. *)
