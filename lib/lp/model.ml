module Invariant = Agingfp_util.Invariant
type relation = Le | Ge | Eq

type kind = Continuous | Integer

type direction = Minimize | Maximize

type var_info = {
  mutable lb : float;
  mutable ub : float;
  vkind : kind;
  name : string;
}

type row = { lhs : Expr.t; rel : relation; rhs : float; rname : string }

type t = {
  mutable vars : var_info array;
  mutable nvars : int;
  mutable rows : row array;
  mutable nrows : int;
  mutable obj_dir : direction;
  mutable obj : Expr.t;
}

let create () =
  {
    vars = Array.make 16 { lb = 0.; ub = 0.; vkind = Continuous; name = "" };
    nvars = 0;
    rows = Array.make 16 { lhs = Expr.zero; rel = Eq; rhs = 0.; rname = "" };
    nrows = 0;
    obj_dir = Minimize;
    obj = Expr.zero;
  }

let grow_vars m =
  if m.nvars = Array.length m.vars then begin
    let bigger = Array.make (2 * m.nvars) m.vars.(0) in
    Array.blit m.vars 0 bigger 0 m.nvars;
    m.vars <- bigger
  end

let grow_rows m =
  if m.nrows = Array.length m.rows then begin
    let bigger = Array.make (2 * m.nrows) m.rows.(0) in
    Array.blit m.rows 0 bigger 0 m.nrows;
    m.rows <- bigger
  end

let add_var ?(name = "") ?(lb = 0.0) ?(ub = infinity) ?(kind = Continuous) m =
  if lb > ub then Invariant.invalid ~where:"Model.add_var" "lb > ub";
  grow_vars m;
  let id = m.nvars in
  m.vars.(id) <- { lb; ub; vkind = kind; name };
  m.nvars <- id + 1;
  id

let add_binary ?name m = add_var ?name ~lb:0.0 ~ub:1.0 ~kind:Integer m

let add_constraint ?(name = "") m lhs rel rhs =
  grow_rows m;
  let c = Expr.constant lhs in
  let lhs = Expr.sub lhs (Expr.const c) in
  let id = m.nrows in
  m.rows.(id) <- { lhs; rel; rhs = rhs -. c; rname = name };
  m.nrows <- id + 1;
  id

let set_objective m dir e =
  m.obj_dir <- dir;
  m.obj <- e

let fix_var m v x =
  let info = m.vars.(v) in
  info.lb <- x;
  info.ub <- x

let set_rhs m i rhs =
  if i < 0 || i >= m.nrows then Invariant.invalid ~where:"Model.set_rhs" "bad row";
  m.rows.(i) <- { m.rows.(i) with rhs }

let set_bounds m v ~lb ~ub =
  if lb > ub then Invariant.invalid ~where:"Model.set_bounds" "lb > ub";
  let info = m.vars.(v) in
  info.lb <- lb;
  info.ub <- ub

let num_vars m = m.nvars
let num_constraints m = m.nrows
let var_lb m v = m.vars.(v).lb
let var_ub m v = m.vars.(v).ub
let var_kind m v = m.vars.(v).vkind
let var_name m v = m.vars.(v).name
let row_name m i = m.rows.(i).rname
let objective m = (m.obj_dir, m.obj)

let constraint_row m i =
  let r = m.rows.(i) in
  (r.lhs, r.rel, r.rhs)

let iter_constraints m f =
  for i = 0 to m.nrows - 1 do
    let r = m.rows.(i) in
    f i r.lhs r.rel r.rhs
  done

let integer_vars m =
  let acc = ref [] in
  for v = m.nvars - 1 downto 0 do
    match m.vars.(v).vkind with Integer -> acc := v :: !acc | Continuous -> ()
  done;
  !acc

let copy m =
  let nv = max 16 m.nvars in
  let vars =
    Array.init nv (fun i ->
        if i < m.nvars then { m.vars.(i) with lb = m.vars.(i).lb }
        else { lb = 0.; ub = 0.; vkind = Continuous; name = "" })
  in
  let nr = max 16 m.nrows in
  let rows =
    Array.init nr (fun i ->
        if i < m.nrows then m.rows.(i)
        else { lhs = Expr.zero; rel = Eq; rhs = 0.; rname = "" })
  in
  { m with vars; rows }

let check_feasible ?(tol = 1e-6) m assignment =
  let violation = ref None in
  (try
     for v = 0 to m.nvars - 1 do
       let x = assignment v in
       let info = m.vars.(v) in
       if x < info.lb -. tol || x > info.ub +. tol then begin
         violation :=
           Some
             (Printf.sprintf "var %d (%s) = %g outside [%g, %g]" v info.name x
                info.lb info.ub);
         raise Exit
       end;
       (match info.vkind with
       | Integer ->
         if abs_float (x -. Float.round x) > tol then begin
           violation := Some (Printf.sprintf "var %d (%s) = %g not integral" v info.name x);
           raise Exit
         end
       | Continuous -> ())
     done;
     for i = 0 to m.nrows - 1 do
       let r = m.rows.(i) in
       let v = Expr.eval assignment r.lhs in
       let ok =
         match r.rel with
         | Le -> v <= r.rhs +. tol
         | Ge -> v >= r.rhs -. tol
         | Eq -> abs_float (v -. r.rhs) <= tol
       in
       if not ok then begin
         violation :=
           Some
             (Printf.sprintf "constraint %d: lhs = %g, rel %s, rhs = %g" i v
                (match r.rel with Le -> "<=" | Ge -> ">=" | Eq -> "=")
                r.rhs);
         raise Exit
       end
     done
   with Exit -> ());
  match !violation with None -> Ok () | Some msg -> Error msg

let pp_stats ppf m =
  let nint = List.length (integer_vars m) in
  Format.fprintf ppf "model: %d vars (%d integer), %d constraints" m.nvars nint
    m.nrows
