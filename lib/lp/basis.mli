(** Abstract simplex basis kernel: factorize / ftran / btran / update.

    The revised simplex never forms [B⁻¹] itself; it asks this module
    to (re)factorize the current basis, map vectors through [B⁻¹]
    (ftran) and [B⁻ᵀ] (btran), and absorb one column replacement per
    pivot ([update]). Two implementations are selectable per solver
    state via {!Simplex.params}:

    - {!Sparse_lu} (default): {!Agingfp_linalg.Lu} — sparse LU with
      approximate-Markowitz pivoting and a product-form eta file;
    - {!Dense}: the explicit dense inverse of the pre-kernel solver,
      retained as the reference path for equivalence testing and the
      bench kernel scenario.

    The kernel also carries the counters surfaced by
    {!Simplex.state_stats}. *)

type kind = Dense | Sparse_lu

val pp_kind : Format.formatter -> kind -> unit

exception Singular
(** A factorization or update met a (numerically) zero pivot. *)

type t

val create : kind -> int -> t
(** [create kind m] for an [m]-row basis. No factorization yet. *)

val kind : t -> kind
val dim : t -> int

val resize : t -> int -> unit
(** [resize t m'] changes the basis dimension in place — the cut
    separator appends rows to a live state and needs the kernel to
    follow. Any live factorization is invalidated (the owner must call
    {!factorize} before the next ftran/btran); the lifetime counters
    are preserved so solver statistics stay cumulative. No-op when the
    dimension is unchanged. *)

val factorize : t -> col:(int -> int array * float array) -> unit
(** [factorize t ~col] factors the basis whose position [i] holds the
    sparse column [col i]. Discards any pending eta updates.
    @raise Singular *)

val ftran : t -> float array -> unit
(** In place: row-space vector in, [B⁻¹ v] in basis-position space
    out. *)

val btran : t -> float array -> unit
(** In place: basis-position-space vector in, [B⁻ᵀ v] in row space
    out. *)

val btran_unit : t -> int -> float array -> unit
(** [btran_unit t r out] writes row [r] of [B⁻¹] into [out] — the
    pricing row of the dual ratio test. *)

val update : t -> r:int -> w:float array -> unit
(** Replace the basis column in position [r], where [w = B⁻¹ A_e] is
    the ftran image of the entering column. @raise Singular *)

(** {1 Kernel accounting} *)

val refactorizations : t -> int
(** {!factorize} calls. *)

val eta_count : t -> int
(** Updates absorbed since the last {!factorize} — the refactorization
    policy's eta-file length. *)

val eta_updates : t -> int
(** Lifetime {!update} count. *)

val fill_in : t -> int
(** Nonzeros held by the live factors plus the eta file ([m²] for the
    dense kernel). *)

val drift_refreshes : t -> int
(** Refactorizations that were forced by measured residual drift; the
    owning solver calls {!note_drift_refresh} when that is the
    trigger. *)

val note_drift_refresh : t -> unit
