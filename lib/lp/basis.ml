(* Abstract simplex basis kernel.

   Two interchangeable implementations behind one factorize / ftran /
   btran / update interface:

   - [Sparse_lu] (the default): the sparse LU kernel from
     {!Agingfp_linalg.Lu} — approximate-Markowitz factorization plus a
     product-form eta file, O(nnz) per solve/update.
   - [Dense]: the explicit dense inverse the solver used before the
     kernel refactor, kept as the reference implementation the
     equivalence property tests (and the bench kernel scenario)
     compare against — O(m²) per update.

   The kernel also owns the accounting the solver surfaces through
   [Simplex.state_stats]: factorization count, eta updates, fill of
   the live factors, and how many refactorizations were forced by
   measured residual drift (the counter itself is bumped by the
   simplex, which is the layer that measures ‖B x_B − b‖∞). *)

module Invariant = Agingfp_util.Invariant

module Lu = Agingfp_linalg.Lu

type kind = Dense | Sparse_lu

exception Singular

let pp_kind ppf = function
  | Dense -> Format.pp_print_string ppf "dense"
  | Sparse_lu -> Format.pp_print_string ppf "sparse-lu"

type impl =
  | D of { binv : float array array; scratch : float array }
  | S of Lu.t

type t = {
  mutable m : int;
  mutable impl : impl;
  mutable n_factor : int;
  mutable n_eta : int;          (* updates since the last factorize *)
  mutable total_eta : int;
  mutable n_drift : int;
  mutable last_fill : int;
}

let create kind m =
  if m < 0 then Invariant.invalid ~where:"Basis.create" "negative dimension";
  let cap = max m 1 in
  let impl =
    match kind with
    | Dense -> D { binv = Array.make_matrix cap cap 0.0; scratch = Array.make cap 0.0 }
    | Sparse_lu -> S (Lu.create m)
  in
  { m; impl; n_factor = 0; n_eta = 0; total_eta = 0; n_drift = 0; last_fill = 0 }

let kind t = match t.impl with D _ -> Dense | S _ -> Sparse_lu
let dim t = t.m

(* Grow (or shrink) the basis dimension in place. The live factors are
   invalidated — the owner must [factorize] before the next solve —
   but the lifetime counters survive, so [Simplex.state_stats] keeps
   accounting across cut-row appends. *)
let resize t m' =
  if m' < 0 then Invariant.invalid ~where:"Basis.resize" "negative dimension";
  if m' <> t.m then begin
    (match t.impl with
    | D { binv; _ } ->
      let cap = Array.length binv in
      if m' > cap then begin
        let cap' = max m' (2 * cap) in
        t.impl <-
          D { binv = Array.make_matrix cap' cap' 0.0; scratch = Array.make cap' 0.0 }
      end
    | S _ -> t.impl <- S (Lu.create m'));
    t.m <- m';
    t.n_eta <- 0;
    t.last_fill <- 0
  end

(* ---------- dense reference implementation ---------- *)

(* Explicit inverse by Gauss–Jordan with partial pivoting — the exact
   routine the pre-kernel solver ran as [refactor_binv]. *)
let dense_factorize d m ~col =
  let binv = d in
  let bmat = Array.make_matrix (max m 1) (max m 1) 0.0 in
  for i = 0 to m - 1 do
    let rows, coefs = col i in
    for k = 0 to Array.length rows - 1 do
      bmat.(rows.(k)).(i) <- coefs.(k)
    done
  done;
  let inv = Array.make_matrix (max m 1) (max m 1) 0.0 in
  for i = 0 to m - 1 do
    inv.(i).(i) <- 1.0
  done;
  for k = 0 to m - 1 do
    let piv = ref k in
    for i = k + 1 to m - 1 do
      if abs_float bmat.(i).(k) > abs_float bmat.(!piv).(k) then piv := i
    done;
    if abs_float bmat.(!piv).(k) < 1e-11 then raise Singular;
    if !piv <> k then begin
      let t = bmat.(k) in
      bmat.(k) <- bmat.(!piv);
      bmat.(!piv) <- t;
      let t = inv.(k) in
      inv.(k) <- inv.(!piv);
      inv.(!piv) <- t
    end;
    let d = bmat.(k).(k) in
    for c = 0 to m - 1 do
      bmat.(k).(c) <- bmat.(k).(c) /. d;
      inv.(k).(c) <- inv.(k).(c) /. d
    done;
    for i = 0 to m - 1 do
      if i <> k then begin
        let f = bmat.(i).(k) in
        if not (Float.equal f 0.0) then
          for c = 0 to m - 1 do
            bmat.(i).(c) <- bmat.(i).(c) -. (f *. bmat.(k).(c));
            inv.(i).(c) <- inv.(i).(c) -. (f *. inv.(k).(c))
          done
      end
    done
  done;
  for i = 0 to m - 1 do
    Array.blit inv.(i) 0 binv.(i) 0 m
  done

(* ---------- kernel interface ---------- *)

let factorize t ~col =
  (match t.impl with
  | D { binv; _ } -> dense_factorize binv t.m ~col
  | S lu -> ( try Lu.factorize lu ~col with Lu.Singular -> raise Singular));
  t.n_factor <- t.n_factor + 1;
  t.n_eta <- 0;
  t.last_fill <- (match t.impl with D _ -> t.m * t.m | S lu -> Lu.fill lu)

(* v := B^-1 v (row space in, basis-position space out), in place. *)
let ftran t v =
  match t.impl with
  | S lu -> if t.m > 0 then Lu.ftran lu v
  | D { binv; scratch } ->
    let m = t.m in
    for i = 0 to m - 1 do
      let row = binv.(i) in
      let acc = ref 0.0 in
      for r = 0 to m - 1 do
        acc := !acc +. (row.(r) *. v.(r))
      done;
      scratch.(i) <- !acc
    done;
    Array.blit scratch 0 v 0 m

(* v := B^-T v (basis-position space in, row space out), in place. *)
let btran t v =
  match t.impl with
  | S lu -> if t.m > 0 then Lu.btran lu v
  | D { binv; scratch } ->
    let m = t.m in
    Array.fill scratch 0 m 0.0;
    for i = 0 to m - 1 do
      let cb = v.(i) in
      if not (Float.equal cb 0.0) then begin
        let row = binv.(i) in
        for k = 0 to m - 1 do
          scratch.(k) <- scratch.(k) +. (cb *. row.(k))
        done
      end
    done;
    Array.blit scratch 0 v 0 m

(* out := row r of B^-1, i.e. the btran image of the r-th unit vector
   — what the dual ratio test prices candidate columns against. *)
let btran_unit t r out =
  match t.impl with
  | D { binv; _ } -> Array.blit binv.(r) 0 out 0 t.m
  | S lu ->
    Array.fill out 0 t.m 0.0;
    out.(r) <- 1.0;
    Lu.btran lu out

(* Replace the basis column in position r; w = B^-1 A_entering. *)
let update t ~r ~w =
  (match t.impl with
  | S lu -> ( try Lu.update lu ~r ~w with Lu.Singular -> raise Singular)
  | D { binv; _ } ->
    let m = t.m in
    let wr = w.(r) in
    if abs_float wr < 1e-11 then raise Singular;
    let row_r = binv.(r) in
    for k = 0 to m - 1 do
      row_r.(k) <- row_r.(k) /. wr
    done;
    for i = 0 to m - 1 do
      if i <> r && not (Float.equal w.(i) 0.0) then begin
        let f = w.(i) in
        let row_i = binv.(i) in
        for k = 0 to m - 1 do
          row_i.(k) <- row_i.(k) -. (f *. row_r.(k))
        done
      end
    done);
  t.n_eta <- t.n_eta + 1;
  t.total_eta <- t.total_eta + 1

let note_drift_refresh t = t.n_drift <- t.n_drift + 1

(* ---------- accounting ---------- *)

let refactorizations t = t.n_factor
let eta_count t = t.n_eta
let eta_updates t = t.total_eta
let drift_refreshes t = t.n_drift

let fill_in t =
  match t.impl with
  | D _ -> t.last_fill
  | S lu -> t.last_fill + Lu.eta_nnz lu
