(** Exact, independent certification of solver output.

    PR 1's warm-started simplex shipped with soundness bugs that could
    certify an infeasible point as optimal; this module is the trust
    layer that catches that class of failure. Every check re-derives
    its verdict from the {e original} model using
    {!Agingfp_util.Rat} exact dyadic-rational arithmetic — float
    round-off in the solver cannot hide a violation, and the checker
    shares no code with the simplex.

    Tolerances are still honoured (the solver only promises residuals
    within [tol]), but the comparison [residual <= tol] itself is
    exact: a residual of [tol + 2^-80] is rejected. *)

type verdict =
  | Certified
  | Rejected of string list
      (** Every violated bound/row/integrality/objective check, in
          model order. *)
  | Unsupported of string
      (** The claim could not be checked (e.g. an infeasible verdict
          with no certificate available). *)

val solution :
  ?tol:float -> ?relaxation:bool -> Model.t -> Simplex.solution -> verdict
(** Certify a claimed-feasible point against [model]: finite values,
    variable bounds, integrality of integer variables (skipped when
    [relaxation] is [true] — LP relaxations of MILPs are legitimately
    fractional), every constraint row, and agreement of the reported
    objective with the exact re-evaluation. [tol] defaults to the
    solver's feasibility tolerance [1e-6]. *)

val cuts : ?tol:float -> Cuts.pool -> Simplex.solution -> verdict
(** Certify a claimed integer-feasible point against every cut the
    pool ever admitted — active or aged out; validity does not expire
    with pool activity. Each cut [Σ c_v·x_v <= rhs] is evaluated in
    exact rational arithmetic, independently of the float arithmetic
    the separators used; a violation beyond [tol] (default [1e-6]) is
    reported with the cut's provenance (the tableau row or model row
    it came from). Expects the point in the same variable space the
    pool was built in (the presolved model for pools from
    {!Milp.solve}). *)

val result : ?tol:float -> Model.t -> Milp.result -> verdict
(** Certify a {!Milp.result}. [Feasible] delegates to {!solution};
    [Infeasible] is accepted only when a single-row bound certificate
    proves it (see {!find_bound_certificate}), otherwise
    [Unsupported]; [Unknown] is [Unsupported]. *)

val farkas : Model.t -> float array -> verdict
(** [farkas model y] checks a Farkas infeasibility certificate: with
    one multiplier per row ([y.(i) >= 0] for [Le] rows, [<= 0] for
    [Ge], free for [Eq]), the aggregated inequality
    [sum_i y_i (a_i . x) <= sum_i y_i b_i] is valid for every feasible
    [x]; if the exact infimum of the left side over the variable box
    exceeds the right side, the model is proven infeasible.
    [Certified] means the certificate is valid (the model is
    infeasible); [Rejected] lists why the certificate fails to prove
    it. All arithmetic is exact. *)

val find_bound_certificate : Model.t -> int option
(** Scan for a single row that the variable box alone proves
    unsatisfiable — the one-multiplier Farkas special case. Exact; no
    tolerance is applied, so a hit is an unconditional infeasibility
    proof. *)

val pp_verdict : Format.formatter -> verdict -> unit
