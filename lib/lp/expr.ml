module Imap = Map.Make (Int)

type t = { coefs : float Imap.t; constant : float }

let zero = { coefs = Imap.empty; constant = 0.0 }

let const c = { coefs = Imap.empty; constant = c }

let var ?(coef = 1.0) v =
  if Float.equal coef 0.0 then zero
  else { coefs = Imap.singleton v coef; constant = 0.0 }

let merge_coef a b =
  let s = a +. b in
  if Float.equal s 0.0 then None else Some s

let add e1 e2 =
  {
    coefs =
      Imap.union (fun _ a b -> merge_coef a b) e1.coefs e2.coefs;
    constant = e1.constant +. e2.constant;
  }

let scale a e =
  if Float.equal a 0.0 then zero
  else { coefs = Imap.map (fun c -> a *. c) e.coefs; constant = a *. e.constant }

let sub e1 e2 = add e1 (scale (-1.0) e2)

let add_term e c v = add e (var ~coef:c v)

let sum es = List.fold_left add zero es

let constant e = e.constant

let coef e v = match Imap.find_opt v e.coefs with Some c -> c | None -> 0.0

let terms e = Imap.bindings e.coefs

let eval assignment e =
  Imap.fold (fun v c acc -> acc +. (c *. assignment v)) e.coefs e.constant

let pp ppf e =
  let first = ref true in
  Imap.iter
    (fun v c ->
      if !first then first := false else Format.pp_print_string ppf " + ";
      Format.fprintf ppf "%g*x%d" c v)
    e.coefs;
  if (not (Float.equal e.constant 0.0)) || !first then begin
    if not !first then Format.pp_print_string ppf " + ";
    Format.fprintf ppf "%g" e.constant
  end
