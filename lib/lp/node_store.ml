(* Explicit branch & bound tree: every open node carries its parent
   link, depth and the dual bound inherited from its parent's LP
   relaxation, so the store can answer the two questions the old
   LIFO-of-fix-lists could not:

   - "which node next?" under a pluggable traversal strategy (depth
     first, best first, or a plunge-then-jump hybrid), and
   - "what is the global dual bound?" — the minimum (in minimize-sign
     space) over every open and in-flight node, which is what turns an
     incumbent into a certified bounded-suboptimality result.

   The store is a plain data structure: callers serialize access (the
   search holds one mutex around every call). Two lazy-deletion heaps
   index the same open set — one in LIFO order for diving, one in
   (bound, id) order for best-first — and every heap key ends with the
   node id, so traversal order is a pure function of the insertion
   sequence: no hashtable iteration order, no physical addresses, no
   ambient entropy. *)

module Heap = Agingfp_util.Heap

type strategy = Dfs | Best_first | Hybrid

let strategy_to_string = function
  | Dfs -> "dfs"
  | Best_first -> "best-first"
  | Hybrid -> "hybrid"

let strategy_of_string = function
  | "dfs" -> Some Dfs
  | "best-first" | "best_first" | "best" -> Some Best_first
  | "hybrid" -> Some Hybrid
  | _ -> None

let pp_strategy ppf s = Format.pp_print_string ppf (strategy_to_string s)

type dir = Down | Up

type branch = { var : int; dir : dir; frac : float }

type node = {
  id : int;
  parent : int;  (* -1 for the root *)
  depth : int;
  bound : float;
      (* dual bound in minimize-sign space: the parent's LP relaxation
         objective ([neg_infinity] at the root, where nothing is
         proven yet). *)
  fixes : (int * float * float) list;  (* path bound changes, deepest first *)
  branch : branch option;  (* how this node was split off its parent *)
}

(* LIFO for diving: the newest node (largest id) first. *)
let cmp_dfs (a : int) (b : int) = Int.compare b a

(* Best bound first; node id breaks ties deterministically. *)
let cmp_best (ba, ia) (bb, ib) =
  match Float.compare ba bb with 0 -> Int.compare ia ib | c -> c

type t = {
  mutable next_id : int;
  open_tbl : (int, node) Hashtbl.t;  (* queued, not yet taken *)
  dfs : int Heap.t;
  best : (float * int) Heap.t;
  active : bool array;  (* per-worker: currently expanding a node *)
  active_bound : float array;
  mutable last_expanded : int;  (* parent id of the most recent children *)
}

let create ~workers =
  {
    next_id = 0;
    open_tbl = Hashtbl.create 64;
    dfs = Heap.create cmp_dfs;
    best = Heap.create cmp_best;
    active = Array.make (max 1 workers) false;
    active_bound = Array.make (max 1 workers) infinity;
    last_expanded = -1;
  }

let add t ~parent ~depth ~bound ~fixes ~branch =
  let id = t.next_id in
  t.next_id <- id + 1;
  let n = { id; parent; depth; bound; fixes; branch } in
  Hashtbl.replace t.open_tbl id n;
  Heap.push t.dfs id;
  Heap.push t.best (bound, id);
  t.last_expanded <- parent;
  id

let open_count t = Hashtbl.length t.open_tbl

let active_count t = Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 t.active

(* Skip heap entries whose node has already been taken through the
   other heap; stale tops are discarded permanently (a node never
   re-enters the open set under the same id). *)
let rec dfs_top t =
  match Heap.peek t.dfs with
  | None -> None
  | Some id -> (
    match Hashtbl.find_opt t.open_tbl id with
    | Some n -> Some n
    | None ->
      ignore (Heap.pop t.dfs);
      dfs_top t)

let rec best_top t =
  match Heap.peek t.best with
  | None -> None
  | Some (_, id) -> (
    match Hashtbl.find_opt t.open_tbl id with
    | Some n -> Some n
    | None ->
      ignore (Heap.pop t.best);
      best_top t)

let claim t ~wid (n : node) =
  Hashtbl.remove t.open_tbl n.id;
  t.active.(wid) <- true;
  t.active_bound.(wid) <- n.bound;
  Some n

let take t ~wid strategy =
  match strategy with
  | Dfs -> ( match dfs_top t with None -> None | Some n -> claim t ~wid n)
  | Best_first -> ( match best_top t with None -> None | Some n -> claim t ~wid n)
  | Hybrid -> (
    (* Plunge while the dive is alive: prefer a child of the node
       whose children were pushed last (that is exactly the DFS top
       when the dive continues). When the dive dies — the last
       expansion produced no surviving children — jump to the best
       dual bound. *)
    match dfs_top t with
    | Some n when n.parent = t.last_expanded -> claim t ~wid n
    | _ -> ( match best_top t with None -> None | Some n -> claim t ~wid n))

let finish t ~wid =
  t.active.(wid) <- false;
  t.active_bound.(wid) <- infinity

(* Global dual bound in minimize-sign space: the minimum over open and
   in-flight nodes. [infinity] once the tree is drained — every leaf
   was closed, so the incumbent (if any) is proven optimal. *)
let dual_bound t =
  let opened = match best_top t with None -> infinity | Some n -> n.bound in
  Array.fold_left Float.min opened t.active_bound
