(** Explicit branch & bound node tree with a global dual bound.

    Stores the open frontier of a B&B search as real nodes — parent
    link, depth, path bound-changes and the dual bound inherited from
    the parent's LP relaxation — indexed by two lazy-deletion heaps so
    the search can pop nodes depth-first, best-bound-first, or with a
    plunge-then-jump hybrid, and can always read the global dual bound
    (the minimum over open and in-flight nodes) needed for
    optimality-gap termination.

    Determinism: every heap key ends with the node id (assigned in
    creation order), so traversal is a pure function of the insertion
    sequence — independent of hash seeds ([OCAMLRUNPARAM=R]) and of
    physical addresses. The store itself is not thread-safe; the
    search serializes access under its incumbent mutex. *)

type strategy =
  | Dfs         (** newest node first: the classic diving search *)
  | Best_first  (** lowest dual bound first (ties: oldest node) *)
  | Hybrid
      (** plunge like [Dfs] while the current dive keeps producing
          children, jump to the best-bound node when it dies — depth
          first's quick incumbents with best first's bound growth *)

val strategy_to_string : strategy -> string
val strategy_of_string : string -> strategy option
val pp_strategy : Format.formatter -> strategy -> unit

type dir = Down | Up

type branch = {
  var : int;    (** branching variable *)
  dir : dir;    (** which side of the split this node is *)
  frac : float;
      (** fractional distance rounded away in this direction at the
          parent's relaxation (pseudocost denominator) *)
}

type node = {
  id : int;
  parent : int;  (** [-1] for the root *)
  depth : int;
  bound : float;
      (** dual bound in minimize-sign space — the parent's LP
          relaxation objective; [neg_infinity] at the root *)
  fixes : (int * float * float) list;
      (** [(var, lb, ub)] bound changes on the path from the root,
          deepest first *)
  branch : branch option;  (** how this node was split off its parent *)
}

type t

val create : workers:int -> t
(** A store tracking in-flight nodes for [workers] concurrent
    consumers (worker ids [0 .. workers-1]). *)

val add :
  t ->
  parent:int ->
  depth:int ->
  bound:float ->
  fixes:(int * float * float) list ->
  branch:branch option ->
  int
(** Enqueue a node; returns its id (creation order, the deterministic
    tie-break key). *)

val take : t -> wid:int -> strategy -> node option
(** Pop the next node under [strategy] and mark it in-flight for
    worker [wid] (its bound keeps anchoring {!dual_bound} until
    {!finish}). [None] when the open set is empty — in-flight nodes of
    other workers may still produce children. *)

val finish : t -> wid:int -> unit
(** Close worker [wid]'s in-flight node: it was solved and either
    pruned, integral, infeasible, or its children were {!add}ed. Not
    calling this (search aborted mid-node) conservatively keeps the
    node's bound in {!dual_bound}. *)

val open_count : t -> int
val active_count : t -> int

val dual_bound : t -> float
(** Global dual bound in minimize-sign space: the minimum over every
    open and in-flight node. [infinity] when the tree is drained (the
    incumbent, if any, is proven optimal). Monotone non-decreasing
    over a run: children inherit their parent's relaxation objective,
    which is never below the parent's own bound. *)
