module Rat = Agingfp_util.Rat

type verdict = Certified | Rejected of string list | Unsupported of string

let q = Rat.of_float

let pp_verdict ppf = function
  | Certified -> Format.pp_print_string ppf "certified"
  | Rejected msgs ->
    Format.fprintf ppf "rejected (%d violation%s): %s" (List.length msgs)
      (if List.length msgs = 1 then "" else "s")
      (String.concat "; " msgs)
  | Unsupported msg -> Format.fprintf ppf "unsupported: %s" msg

let vname m v =
  match Model.var_name m v with "" -> Printf.sprintf "x%d" v | s -> s

let rname m r =
  match Model.row_name m r with "" -> Printf.sprintf "c%d" r | s -> s

let rel_label = function Model.Le -> "<=" | Model.Ge -> ">=" | Model.Eq -> "="

let solution ?(tol = 1e-6) ?(relaxation = false) model (sol : Simplex.solution) =
  let n = Model.num_vars model in
  if Array.length sol.values < n then
    Rejected
      [
        Printf.sprintf "solution has %d values but the model has %d variables"
          (Array.length sol.values) n;
      ]
  else begin
    let tolq = q tol in
    let viols = ref [] in
    let add msg = viols := msg :: !viols in
    let finite = Array.make n true in
    (* Variable box and integrality. *)
    for v = 0 to n - 1 do
      let x = sol.values.(v) in
      if not (Float.is_finite x) then begin
        finite.(v) <- false;
        add (Printf.sprintf "var `%s` = %g is not finite" (vname model v) x)
      end
    done;
    for v = 0 to n - 1 do
      if finite.(v) then begin
        let x = sol.values.(v) in
        let xq = q x in
        let lb = Model.var_lb model v and ub = Model.var_ub model v in
        if Float.is_nan lb || Float.is_nan ub then
          add (Printf.sprintf "var `%s` has a NaN bound" (vname model v))
        else begin
          if Float.is_finite lb && Rat.compare xq (Rat.sub (q lb) tolq) < 0 then
            add
              (Printf.sprintf "var `%s` = %.17g violates lower bound %.17g"
                 (vname model v) x lb);
          if Float.is_finite ub && Rat.compare xq (Rat.add (q ub) tolq) > 0 then
            add
              (Printf.sprintf "var `%s` = %.17g violates upper bound %.17g"
                 (vname model v) x ub)
        end;
        if (not relaxation) && Model.var_kind model v = Model.Integer then begin
          let r = Float.round x in
          if Rat.compare (Rat.abs (Rat.sub xq (q r))) tolq > 0 then
            add
              (Printf.sprintf "integer var `%s` = %.17g is fractional"
                 (vname model v) x)
        end
      end
    done;
    (* Constraint rows, residuals computed exactly. *)
    Model.iter_constraints model (fun r lhs rel rhs ->
        let terms = Expr.terms lhs in
        if List.for_all (fun (v, _) -> v >= n || finite.(v)) terms then begin
          let lhsq =
            List.fold_left
              (fun acc (v, c) -> Rat.add acc (Rat.mul (q c) (q sol.values.(v))))
              (q (Expr.constant lhs)) terms
          in
          let rhsq = q rhs in
          let ok =
            match rel with
            | Model.Le -> Rat.compare lhsq (Rat.add rhsq tolq) <= 0
            | Model.Ge -> Rat.compare lhsq (Rat.sub rhsq tolq) >= 0
            | Model.Eq ->
              Rat.compare (Rat.abs (Rat.sub lhsq rhsq)) tolq <= 0
          in
          if not ok then
            add
              (Printf.sprintf
                 "row `%s`: exact lhs %s violates %s %.17g (residual %.3g)"
                 (rname model r) (Rat.to_string lhsq) (rel_label rel) rhs
                 (Rat.to_float (Rat.sub lhsq rhsq)))
        end);
    (* Objective agreement. *)
    let _, obj = Model.objective model in
    let obj_terms = Expr.terms obj in
    if
      Float.is_finite sol.objective
      && List.for_all (fun (v, _) -> v < n && finite.(v)) obj_terms
    then begin
      let objq =
        List.fold_left
          (fun acc (v, c) -> Rat.add acc (Rat.mul (q c) (q sol.values.(v))))
          (q (Expr.constant obj)) obj_terms
      in
      let slack = Rat.mul tolq (Rat.max Rat.one (Rat.abs objq)) in
      if Rat.compare (Rat.abs (Rat.sub objq (q sol.objective))) slack > 0 then
        add
          (Printf.sprintf
             "reported objective %.17g disagrees with exact re-evaluation %s"
             sol.objective (Rat.to_string objq))
    end
    else if not (Float.is_finite sol.objective) then
      add (Printf.sprintf "reported objective %g is not finite" sol.objective);
    match List.rev !viols with [] -> Certified | vs -> Rejected vs
  end

(* Cutting planes claim validity for the integer hull: any
   integer-feasible point — in particular the incumbent — must satisfy
   every cut ever admitted, active or aged out. The evaluation below is
   exact and independent of the float arithmetic the separators used;
   [tol] only relaxes the final comparison, exactly as in {!solution}. *)
let cuts ?(tol = 1e-6) pool (sol : Simplex.solution) =
  let viols = ref [] in
  let add m = viols := m :: !viols in
  let tolq = q tol in
  for id = 0 to Cuts.size pool - 1 do
    let c = Cuts.get pool id in
    let out_of_range =
      List.exists (fun (v, _) -> v < 0 || v >= Array.length sol.values) c.Cuts.terms
    in
    if out_of_range then
      add (Printf.sprintf "cut %d references a variable outside the solution" id)
    else if
      List.exists (fun (v, _) -> not (Float.is_finite sol.values.(v))) c.Cuts.terms
    then add (Printf.sprintf "cut %d is evaluated at a non-finite value" id)
    else begin
      let lhs =
        List.fold_left
          (fun acc (v, coef) -> Rat.add acc (Rat.mul (q coef) (q sol.values.(v))))
          Rat.zero c.Cuts.terms
      in
      if Rat.compare lhs (Rat.add (q c.Cuts.rhs) tolq) > 0 then
        add
          (Format.asprintf "cut %d (%a): exact activity %s exceeds rhs %.17g" id
             Cuts.pp_provenance c.Cuts.provenance (Rat.to_string lhs) c.Cuts.rhs)
    end
  done;
  match List.rev !viols with [] -> Certified | vs -> Rejected vs

(* Exact activity range of [terms] over the variable box; [None] means
   unbounded in that direction (or a NaN bound made it unknowable). *)
let exact_activity model terms =
  let lo = ref (Some Rat.zero) and hi = ref (Some Rat.zero) in
  let push acc cq bound =
    match !acc with
    | None -> ()
    | Some a ->
      if Float.is_finite bound then acc := Some (Rat.add a (Rat.mul cq (q bound)))
      else acc := None
  in
  List.iter
    (fun (v, c) ->
      let lb = Model.var_lb model v and ub = Model.var_ub model v in
      let cq = q c in
      if c > 0.0 then begin
        push lo cq lb;
        push hi cq ub
      end
      else begin
        push lo cq ub;
        push hi cq lb
      end)
    terms;
  (!lo, !hi)

let find_bound_certificate model =
  let found = ref None in
  (try
     Model.iter_constraints model (fun r lhs rel rhs ->
         let lo, hi = exact_activity model (Expr.terms lhs) in
         let rhsq = q rhs in
         let above_lo =
           match lo with Some l -> Rat.compare l rhsq > 0 | None -> false
         in
         let below_hi =
           match hi with Some h -> Rat.compare h rhsq < 0 | None -> false
         in
         let infeasible =
           match rel with
           | Model.Le -> above_lo
           | Model.Ge -> below_hi
           | Model.Eq -> above_lo || below_hi
         in
         if infeasible then begin
           found := Some r;
           raise Exit
         end)
   with Exit -> ());
  !found

let farkas model y =
  let m = Model.num_constraints model in
  if Array.length y <> m then
    Rejected
      [
        Printf.sprintf "certificate has %d multipliers but the model has %d rows"
          (Array.length y) m;
      ]
  else begin
    let viols = ref [] in
    let add msg = viols := msg :: !viols in
    Array.iteri
      (fun i yi -> if not (Float.is_finite yi) then
          add (Printf.sprintf "multiplier y_%d = %g is not finite" i yi))
      y;
    if !viols <> [] then Rejected (List.rev !viols)
    else begin
      (* Sign conditions: multiplying [a.x <= b] by y >= 0 (resp.
         [>=] by y <= 0) preserves [<=], so the aggregation below is a
         valid inequality for every feasible point. *)
      let beta = ref Rat.zero in
      let coefs : (int, Rat.t) Hashtbl.t = Hashtbl.create 64 in
      Model.iter_constraints model (fun i lhs rel rhs ->
          let yi = y.(i) in
          if not (Float.equal yi 0.0) then begin
            (match rel with
            | Model.Le when yi < 0.0 ->
              add (Printf.sprintf "y_%d = %g < 0 on a <= row" i yi)
            | Model.Ge when yi > 0.0 ->
              add (Printf.sprintf "y_%d = %g > 0 on a >= row" i yi)
            | _ -> ());
            let yq = q yi in
            beta := Rat.add !beta (Rat.mul yq (q rhs));
            List.iter
              (fun (v, c) ->
                let prev =
                  match Hashtbl.find_opt coefs v with
                  | Some r -> r
                  | None -> Rat.zero
                in
                Hashtbl.replace coefs v (Rat.add prev (Rat.mul yq (q c))))
              (Expr.terms lhs)
          end);
      if !viols <> [] then Rejected (List.rev !viols)
      else begin
        (* Exact infimum of the aggregated row over the variable box. *)
        let inf = ref (Some Rat.zero) in
        (Hashtbl.iter
           (fun v cq ->
             if Rat.sign cq <> 0 then begin
               let bound =
                 if Rat.sign cq > 0 then Model.var_lb model v
                 else Model.var_ub model v
               in
               match !inf with
               | None -> ()
               | Some a ->
                 if Float.is_finite bound then
                   inf := Some (Rat.add a (Rat.mul cq (q bound)))
                 else inf := None
             end)
           coefs
         [@codelint.allow "det-order"
           "exact rational accumulation: Rat.add is associative-commutative, \
            so bucket order cannot change the infimum"]);
        match !inf with
        | None ->
          Rejected
            [ "aggregated row is unbounded below over the variable box" ]
        | Some infq ->
          if Rat.compare infq !beta > 0 then Certified
          else
            Rejected
              [
                Printf.sprintf
                  "aggregated inequality is satisfiable: infimum %s <= rhs %s"
                  (Rat.to_string infq) (Rat.to_string !beta);
              ]
      end
    end
  end

let result ?tol model = function
  | Milp.Feasible sol -> solution ?tol model sol
  | Milp.Infeasible -> (
    match find_bound_certificate model with
    | Some _ -> Certified
    | None ->
      Unsupported
        "infeasible verdict carries no certificate and no single row is \
         bound-infeasible")
  | Milp.Unknown -> Unsupported "solver returned unknown (budget exhausted)"
