(** Bounded-variable revised simplex.

    Solves the continuous relaxation of a {!Model.t}: variable bounds
    are handled implicitly (no explicit rows for [0 <= OP_ijk <= 1]),
    which keeps the basis small — the row count is exactly the number
    of model constraints. Infeasibility is detected with a classic
    artificial-variable phase 1; the basis inverse is maintained
    densely with periodic refactorization.

    This is the stand-in for CPLEX's barrier/simplex in the paper's
    flow. It is adequate for the instance sizes produced by the
    candidate-pruned formulations (thousands of columns, around a
    thousand rows). *)

type solution = {
  values : float array;  (** indexed by model variable *)
  objective : float;     (** objective value incl. constant term *)
  iterations : int;
}

type status =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iteration_limit

type params = {
  max_iterations : int;      (** 0 means automatic: [50 * (m + n) + 5000] *)
  feasibility_tol : float;
  optimality_tol : float;
  refactor_every : int;
}

val default_params : params

val solve : ?params:params -> Model.t -> status
(** Solve the LP relaxation (integrality of [Integer] variables is
    ignored). Fixed variables ([lb = ub]) are honoured, so the paper's
    frozen critical-path operations and two-step pre-mapping are
    expressed by {!Model.fix_var} before calling [solve]. *)

val pp_status : Format.formatter -> status -> unit
