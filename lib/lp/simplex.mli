(** Bounded-variable revised simplex.

    Solves the continuous relaxation of a {!Model.t}: variable bounds
    are handled implicitly (no explicit rows for [0 <= OP_ijk <= 1]),
    which keeps the basis small — the row count is exactly the number
    of model constraints. Infeasibility is detected with a classic
    artificial-variable phase 1; the basis is held factorized behind
    the {!Basis} kernel — sparse LU with product-form eta updates by
    default, refactorized when the measured residual drift
    ‖B x_B − b‖∞ exceeds {!params.drift_tol} or the eta file outgrows
    its cap, with the explicit dense inverse selectable as the
    reference implementation ({!params.kernel}).

    Model assembly and optimization are split: {!assemble} builds a
    persistent solver {!state} once, {!solve_state} optimizes it from
    a cold slack/artificial basis, and after bound/RHS edits
    ({!set_var_bounds}, {!set_rhs}) {!reoptimize} recovers the new
    optimum from the previous basis with a dual-simplex-style
    restoration pass — the branch & bound hot path of the Eq. (3)
    MILPs re-solves children without re-running phase 1.

    This is the stand-in for CPLEX's barrier/simplex in the paper's
    flow. It is adequate for the instance sizes produced by the
    candidate-pruned formulations (thousands of columns, around a
    thousand rows). *)

type solution = {
  values : float array;  (** indexed by model variable *)
  objective : float;     (** objective value incl. constant term *)
  iterations : int;
}

type status =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iteration_limit
  | Deadline
      (** The wall-clock budget ({!params.budget}) expired at a pivot
          checkpoint; the state is left consistent for a later warm
          re-solve under a fresh budget. *)
  | Fault of string
      (** The solve was aborted by an injected or caught solver fault
          ({!Faults}); produced by supervision layers that convert a
          mid-solve exception into a status. *)

type params = {
  max_iterations : int;      (** 0 means automatic: [50 * (m + n) + 5000] *)
  feasibility_tol : float;
  optimality_tol : float;
  kernel : Basis.kind;
      (** Basis kernel: {!Basis.Sparse_lu} (default) or the dense
          reference {!Basis.Dense}. *)
  drift_tol : float;
      (** Residual-drift refactorization threshold on ‖B x_B − b‖∞
          (default [1e-6]): the factors are refreshed when the basic
          values they produce measurably stop satisfying the rows,
          not on a blind iteration count. *)
  budget : Agingfp_util.Budget.t;
      (** Cooperative wall-clock/allowance budget, polled once per
          pivot. Defaults to {!Agingfp_util.Budget.unlimited}. *)
}

val default_params : params

val solve : ?params:params -> Model.t -> status
(** Solve the LP relaxation (integrality of [Integer] variables is
    ignored). Fixed variables ([lb = ub]) are honoured, so the paper's
    frozen critical-path operations and two-step pre-mapping are
    expressed by {!Model.fix_var} before calling [solve].

    Equivalent to [solve_state (assemble ?params model)], with a fast
    path for constraint-free models. *)

val pp_status : Format.formatter -> status -> unit

(** {1 Persistent solver state (warm starts)} *)

type state
(** A solver state assembled from one model. The sparse columns are
    built once; variable bounds and row right-hand sides can then be
    edited in place between solves. The state does not alias the
    source {!Model.t} — later edits to the model are not seen. *)

val assemble : ?params:params -> ?extra_rows:int -> Model.t -> state
(** Build the solver state (sparse columns, bounds, RHS) without
    optimizing. [extra_rows] (default 0) reserves slots for rows
    appended later with {!add_row} — the cut separator's working
    space — so an append never reallocates the column store. *)

val solve_state : state -> status
(** Cold solve: rebuild the initial slack/artificial basis for the
    current bounds/RHS and run phase 1 + phase 2. *)

val reoptimize : state -> status
(** Re-optimize after {!set_var_bounds} / {!set_rhs} edits, starting
    from the basis left by the previous [solve_state]/[reoptimize]
    call (dual-simplex-style feasibility restoration, then primal
    cleanup). Falls back to a cold {!solve_state} on the first call
    or on numerical trouble. *)

val set_var_bounds : state -> int -> lb:float -> ub:float -> unit
(** Change the bounds of a structural (model) variable in place.
    Raises [Invalid_argument] if the index is not a structural
    variable or [lb > ub]. *)

val set_rhs : state -> int -> float -> unit
(** Change the right-hand side of constraint row [i] in place. *)

val set_budget : state -> Agingfp_util.Budget.t -> unit
(** Replace the budget polled by subsequent solves on this state —
    the remap pipeline re-uses one assembled state across many
    deadline slices. *)

(** {1 In-place row append (cutting planes)}

    Cut rounds must not pay a full re-assemble: {!add_row} writes one
    inequality into a slot reserved by [assemble ~extra_rows], makes
    its slack basic in the new row (the appended basis is
    block-triangular over the old one, so nonsingularity is
    preserved), and the next {!reoptimize} resizes the kernel,
    refactorizes once, and repairs the — typically bound-violated —
    new slack with the ordinary dual-simplex restoration pass. *)

val num_rows : state -> int
(** Live rows: model constraints plus appended cut rows. *)

val row_capacity : state -> int
(** Total row slots ([num_constraints + extra_rows]). *)

val structural_count : state -> int
(** Structural (model) variable count; column [structural_count + i]
    is the slack of row [i]. *)

val add_row : state -> terms:(int * float) list -> rel:Model.relation -> rhs:float -> int
(** [add_row st ~terms ~rel ~rhs] appends the inequality
    [terms rel rhs] over structural variables and returns its row
    index. Only [Le]/[Ge] rows can be appended; duplicate variables in
    [terms] are coalesced. Raises [Invalid_argument] when capacity is
    exhausted, on non-structural variables, or on non-finite data. *)

val set_row_enforced : state -> int -> bool -> unit
(** Relax ([false]) or re-enforce ([true]) row [i] by freeing /
    restoring its slack bounds. A relaxed row keeps its slot in the
    factorization — no renumbering, warmth preserved — but can never
    bind. This is how the cut pool deactivates aged-out cuts. *)

(** {1 Objective override (primal heuristics)} *)

val set_cost : state -> (int * float) list -> unit
(** Replace the minimized cost vector with the given linear form over
    structural variables (missing variables get cost 0) until
    {!reset_cost}. The feasibility pump solves distance LPs on the
    same warm state this way. Solutions extracted while the override
    is active still report the {e model} objective. *)

val reset_cost : state -> unit
(** Restore the model cost saved by the first {!set_cost}. No-op if no
    override is active. *)

(** {1 Basis introspection (cut separation)}

    Positions are basis rows [0 .. num_rows - 1]; columns are
    [0 .. n-1] structurals, [n .. n + row_capacity - 1] slacks, then
    artificials. Only meaningful on a state holding the factors of its
    last solve (no pending appends). *)

val basis_column : state -> int -> int
(** Column basic in the given row position. *)

val column_position : state -> int -> int
(** Basis position of a column, [-1] when nonbasic. *)

val column_value : state -> int -> float
(** Current value of any column (basic or nonbasic). *)

val column_bounds : state -> int -> float * float
(** Current bounds of any column. *)

val tableau_row : state -> pos:int -> (int * float) list
(** Row [pos] of [B⁻¹A] restricted to nonbasic columns with
    coefficient magnitude above [1e-11] — the raw material of a Gomory
    cut. Raises [Invalid_argument] on a bad position or when rows were
    appended since the last factorization. *)

type state_stats = {
  warm_solves : int;   (** [reoptimize] calls served from the parent basis *)
  cold_solves : int;   (** full phase-1 restarts (incl. warm fallbacks) *)
  lp_iterations : int; (** total simplex pivots/bound flips *)
  refactorizations : int; (** basis kernel factorizations *)
  eta_updates : int;   (** product-form updates absorbed by the kernel *)
  fill_in : int;       (** nonzeros of the live factors + eta file *)
  drift_refreshes : int;
      (** refactorizations forced by measured residual drift *)
}

val state_stats : state -> state_stats
(** Cumulative counters since {!assemble}. *)
