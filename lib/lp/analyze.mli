(** Static linter over {!Model.t} instances.

    Runs before any solve and flags modelling mistakes that the
    simplex/B&B machinery would otherwise turn into confusing
    infeasibility reports or silent garbage: crossed or non-finite
    bounds, empty and duplicate rows, dangling variables, rows already
    decided by the variable box alone, non-binary variables inside
    Eq. (3) one-hot assignment rows, and badly scaled coefficient
    ranges.

    [Error] diagnostics mean the model cannot be (or trivially is not)
    feasible as written; [Warning] means the model is suspicious but
    solvable; [Info] is advisory. A healthy Eq. (3) instance produced
    by {!Agingfp_floorplan.Ilp_model} lints clean of errors — the
    [@lint] CI alias enforces exactly that over every bundled
    benchmark. *)

type severity = Error | Warning | Info

type code =
  | Crossed_bounds  (** [lb > ub] — no assignment can satisfy the box. *)
  | Nonfinite_bound  (** NaN bound, or a [+inf] lb / [-inf] ub. *)
  | Empty_row  (** Row with no terms; [Error] if its rhs contradicts it. *)
  | Duplicate_row  (** Term-for-term identical to an earlier row. *)
  | Dangling_var  (** Appears in no row and not in the objective. *)
  | Row_infeasible_by_bounds
      (** Min/max activity over the variable box already violates the
          row — infeasible before the solver even starts. *)
  | Row_forced_by_bounds
      (** The row is satisfied by every point of the variable box —
          it constrains nothing. *)
  | Nonbinary_in_one_hot
      (** A variable of an Eq-1 unit-coefficient assignment row is not
          a 0/1 integer, breaking the one-hot reading of Eq. (3). *)
  | Coefficient_range
      (** max/min nonzero |coefficient| ratio exceeds the conditioning
          threshold. *)

type diagnostic = {
  severity : severity;
  code : code;
  row : int option;  (** Row index, when the finding is row-local. *)
  var : int option;  (** Variable index, when variable-local. *)
  message : string;  (** Human-readable, includes row/var names. *)
}

type params = {
  tol : float;  (** Feasibility slack for bound-activity tests. *)
  condition_threshold : float;
      (** Coefficient-range ratio above which {!Coefficient_range}
          fires. *)
}

val default_params : params
(** [tol = 1e-9], [condition_threshold = 1e8]. *)

val lint : ?params:params -> Model.t -> diagnostic list
(** Diagnostics in model order (variable findings, then row findings,
    then model-wide summaries). *)

val errors : diagnostic list -> diagnostic list
(** Just the [Error]-severity subset. *)

val severity_label : severity -> string
(** ["error"], ["warning"] or ["info"] — the vocabulary shared with
    codelint's JSON output. *)

val code_label : code -> string
(** Stable kebab-case id for machine consumers, e.g.
    [Row_infeasible_by_bounds] ↦ ["row-infeasible-by-bounds"]. Plays
    the same role as codelint's rule ids in [--json] output. *)

val pp_diagnostic : Format.formatter -> diagnostic -> unit
(** e.g. ["error[row 12 `assign_c0_op3`]: ..."]. *)

val pp_summary : Format.formatter -> diagnostic list -> unit
(** One-line count by severity, e.g. ["2 errors, 1 warning, 4 infos"]. *)
