let src = Logs.Src.create "agingfp.presolve" ~doc:"MILP presolve"

module Log = (val Logs.src_log src : Logs.LOG)

type reductions = {
  rounds : int;
  rows_removed : int;
  singleton_rows : int;
  vars_fixed : int;
  bounds_tightened : int;
  probe_fixings : int;
}

let no_reductions =
  {
    rounds = 0;
    rows_removed = 0;
    singleton_rows = 0;
    vars_fixed = 0;
    bounds_tightened = 0;
    probe_fixings = 0;
  }

let add_reductions a b =
  {
    rounds = a.rounds + b.rounds;
    rows_removed = a.rows_removed + b.rows_removed;
    singleton_rows = a.singleton_rows + b.singleton_rows;
    vars_fixed = a.vars_fixed + b.vars_fixed;
    bounds_tightened = a.bounds_tightened + b.bounds_tightened;
    probe_fixings = a.probe_fixings + b.probe_fixings;
  }

type t = {
  reduced_model : Model.t;
  var_map : int array; (* original var -> reduced var, or -1 if fixed away *)
  fixval : float array;
  n_orig : int;
  stats : reductions;
}

type outcome = Reduced of t | Proven_infeasible of string

let reduced t = t.reduced_model
let reductions t = t.stats
let num_orig_vars t = t.n_orig

let reduced_var t v =
  let j = t.var_map.(v) in
  if j < 0 then None else Some j

let postsolve t values =
  let out = Array.make t.n_orig 0.0 in
  for v = 0 to t.n_orig - 1 do
    let j = t.var_map.(v) in
    out.(v) <- (if j >= 0 then values.(j) else t.fixval.(v))
  done;
  out

exception Infeas of string

(* All thresholds: [feas_tol] guards infeasibility / redundancy
   declarations (conservative), [eps] recognizes exact structure
   (forcing rows, unit coefficients). *)
let feas_tol = 1e-7

let eps = 1e-9

let run ?(budget = Agingfp_util.Budget.unlimited) ?(integrality_tol = 1e-9)
    ?(max_rounds = 10) model =
  let n = Model.num_vars model in
  let m = Model.num_constraints model in
  let lb = Array.init n (Model.var_lb model) in
  let ub = Array.init n (Model.var_ub model) in
  let kind = Array.init n (Model.var_kind model) in
  let live_var = Array.make n true in
  let fixval = Array.make n 0.0 in
  let row_terms = Array.make (max m 1) [] in
  let row_rel = Array.make (max m 1) Model.Le in
  let row_rhs = Array.make (max m 1) 0.0 in
  let row_live = Array.make (max m 1) true in
  let var_rows = Array.make (max n 1) [] in
  Model.iter_constraints model (fun i lhs rel rhs ->
      row_terms.(i) <- Expr.terms lhs;
      row_rel.(i) <- rel;
      row_rhs.(i) <- rhs;
      List.iter (fun (v, _) -> var_rows.(v) <- i :: var_rows.(v)) (Expr.terms lhs));
  let rows_removed = ref 0 in
  let singleton_rows = ref 0 in
  let vars_fixed = ref 0 in
  let bounds_tightened = ref 0 in
  let probe_fixings = ref 0 in
  let changed = ref false in

  (* Minimum activity of [terms] under current bounds: finite part +
     count of infinite contributions (the standard trick to keep
     per-variable residuals O(1)). *)
  let min_activity terms =
    List.fold_left
      (fun (s, k) (v, c) ->
        let contrib = if c > 0.0 then c *. lb.(v) else c *. ub.(v) in
        if contrib = neg_infinity then (s, k + 1) else (s +. contrib, k))
      (0.0, 0) terms
  in
  let max_activity terms =
    List.fold_left
      (fun (s, k) (v, c) ->
        let contrib = if c > 0.0 then c *. ub.(v) else c *. lb.(v) in
        if contrib = infinity then (s, k + 1) else (s +. contrib, k))
      (0.0, 0) terms
  in
  let round_integer_bounds v =
    if kind.(v) = Model.Integer then begin
      let lo = ceil (lb.(v) -. integrality_tol) in
      let hi = floor (ub.(v) +. integrality_tol) in
      if lo > lb.(v) then lb.(v) <- lo;
      if hi < ub.(v) then ub.(v) <- hi
    end
  in
  let substitute v x =
    fixval.(v) <- x;
    live_var.(v) <- false;
    lb.(v) <- x;
    ub.(v) <- x;
    incr vars_fixed;
    changed := true;
    List.iter
      (fun r ->
        if row_live.(r) then begin
          match List.assoc_opt v row_terms.(r) with
          | None -> ()
          | Some c ->
            row_rhs.(r) <- row_rhs.(r) -. (c *. x);
            row_terms.(r) <- List.filter (fun (u, _) -> u <> v) row_terms.(r)
        end)
      var_rows.(v)
  in
  let check_var_consistent v where =
    if lb.(v) > ub.(v) +. feas_tol then
      raise
        (Infeas
           (Printf.sprintf "%s: variable %d (%s) has empty domain [%g, %g]" where v
              (Model.var_name model v) lb.(v) ub.(v)))
  in
  (* Fix any variable whose domain collapsed (integers: to a single
     integer point; continuous: to a sliver). *)
  let fix_collapsed v =
    if live_var.(v) then begin
      round_integer_bounds v;
      check_var_consistent v "bound rounding";
      if kind.(v) = Model.Integer then begin
        if lb.(v) = ub.(v) then substitute v lb.(v)
      end
      else if ub.(v) -. lb.(v) <= eps && lb.(v) > neg_infinity then
        substitute v ((lb.(v) +. ub.(v)) /. 2.0)
    end
  in
  let tighten_ub v x =
    if x < ub.(v) -. eps then begin
      ub.(v) <- x;
      incr bounds_tightened;
      changed := true;
      fix_collapsed v;
      true
    end
    else false
  in
  let tighten_lb v x =
    if x > lb.(v) +. eps then begin
      lb.(v) <- x;
      incr bounds_tightened;
      changed := true;
      fix_collapsed v;
      true
    end
    else false
  in
  let remove_row r = row_live.(r) <- false in

  (* Row rules: empty / singleton / infeasible / redundant / forcing. *)
  let process_row r =
    if row_live.(r) then begin
      let rhs = row_rhs.(r) in
      match row_terms.(r) with
      | [] ->
        let ok =
          match row_rel.(r) with
          | Model.Le -> 0.0 <= rhs +. feas_tol
          | Model.Ge -> 0.0 >= rhs -. feas_tol
          | Model.Eq -> abs_float rhs <= feas_tol
        in
        if not ok then
          raise (Infeas (Printf.sprintf "row %d reduced to 0 %s %g" r
                           (match row_rel.(r) with Model.Le -> "<=" | Model.Ge -> ">=" | Model.Eq -> "=")
                           rhs));
        remove_row r;
        incr rows_removed;
        changed := true
      | [ (v, c) ] ->
        (* Singleton row: absorb into the variable's bounds. *)
        let x = rhs /. c in
        (match row_rel.(r) with
        | Model.Eq ->
          if x < lb.(v) -. feas_tol || x > ub.(v) +. feas_tol then
            raise (Infeas (Printf.sprintf "singleton row %d pins var %d outside its domain" r v));
          if kind.(v) = Model.Integer && abs_float (x -. Float.round x) > 1e-6 then
            raise
              (Infeas
                 (Printf.sprintf "singleton row %d pins integer var %d to fractional %g" r v x));
          substitute v (if kind.(v) = Model.Integer then Float.round x else x)
        | Model.Le ->
          if c > 0.0 then ignore (tighten_ub v x) else ignore (tighten_lb v x);
          check_var_consistent v "singleton row"
        | Model.Ge ->
          if c > 0.0 then ignore (tighten_lb v x) else ignore (tighten_ub v x);
          check_var_consistent v "singleton row");
        remove_row r;
        incr rows_removed;
        incr singleton_rows;
        changed := true
      | terms ->
        let min_fin, min_inf = min_activity terms in
        let max_fin, max_inf = max_activity terms in
        let minact = if min_inf > 0 then neg_infinity else min_fin in
        let maxact = if max_inf > 0 then infinity else max_fin in
        let infeasible =
          match row_rel.(r) with
          | Model.Le -> minact > rhs +. feas_tol
          | Model.Ge -> maxact < rhs -. feas_tol
          | Model.Eq -> minact > rhs +. feas_tol || maxact < rhs -. feas_tol
        in
        if infeasible then
          raise
            (Infeas
               (Printf.sprintf "row %d activity range [%g, %g] excludes rhs %g" r minact
                  maxact rhs));
        let redundant =
          match row_rel.(r) with
          | Model.Le -> maxact <= rhs +. feas_tol
          | Model.Ge -> minact >= rhs -. feas_tol
          | Model.Eq -> maxact <= rhs +. feas_tol && minact >= rhs -. feas_tol
        in
        if redundant then begin
          remove_row r;
          incr rows_removed;
          changed := true
        end
        else begin
          (* Forcing rows: the activity bound meets the rhs exactly, so
             every variable must sit at the bound realizing it. *)
          let forcing_min =
            (row_rel.(r) = Model.Le || row_rel.(r) = Model.Eq)
            && min_inf = 0
            && min_fin >= rhs -. eps
          in
          let forcing_max =
            (row_rel.(r) = Model.Ge || row_rel.(r) = Model.Eq)
            && max_inf = 0
            && max_fin <= rhs +. eps
          in
          if forcing_min then begin
            List.iter (fun (v, c) -> substitute v (if c > 0.0 then lb.(v) else ub.(v))) terms;
            remove_row r;
            incr rows_removed;
            changed := true
          end
          else if forcing_max then begin
            List.iter (fun (v, c) -> substitute v (if c > 0.0 then ub.(v) else lb.(v))) terms;
            remove_row r;
            incr rows_removed;
            changed := true
          end
        end
    end
  in

  (* Activity-based bound tightening over one row. *)
  let tighten_row r =
    if row_live.(r) then begin
      let terms = row_terms.(r) in
      match terms with
      | [] | [ _ ] -> ()
      | _ ->
        let rhs = row_rhs.(r) in
        let min_fin, min_inf = min_activity terms in
        let max_fin, max_inf = max_activity terms in
        List.iter
          (fun (v, c) ->
            if live_var.(v) then begin
              (* <=-direction: x_v restricted by the smallest the rest
                 of the row can be. *)
              if row_rel.(r) = Model.Le || row_rel.(r) = Model.Eq then begin
                let contrib = if c > 0.0 then c *. lb.(v) else c *. ub.(v) in
                let resid_ok =
                  if contrib = neg_infinity then min_inf = 1 else min_inf = 0
                in
                if resid_ok then begin
                  let resid = if contrib = neg_infinity then min_fin else min_fin -. contrib in
                  let x = (rhs -. resid) /. c in
                  if c > 0.0 then ignore (tighten_ub v x) else ignore (tighten_lb v x)
                end
              end;
              (* >=-direction: mirrored with the maximum activity. *)
              if row_rel.(r) = Model.Ge || row_rel.(r) = Model.Eq then begin
                let contrib = if c > 0.0 then c *. ub.(v) else c *. lb.(v) in
                let resid_ok = if contrib = infinity then max_inf = 1 else max_inf = 0 in
                if resid_ok then begin
                  let resid = if contrib = infinity then max_fin else max_fin -. contrib in
                  let x = (rhs -. resid) /. c in
                  if c > 0.0 then ignore (tighten_lb v x) else ignore (tighten_ub v x)
                end
              end
            end)
          terms
    end
  in

  (* Probing on assignment rows (sum of unit-coefficient binaries = 1,
     the Eq. (3) OP_ijk one-hot rows): tentatively set one binary to 1
     — which forces its row-mates to 0 — and scan the rows touched by
     those variables for an activity contradiction. A contradiction
     proves the binary must be 0. *)
  let is_binary v =
    live_var.(v) && kind.(v) = Model.Integer && lb.(v) >= -.eps && ub.(v) <= 1.0 +. eps
  in
  let probe_row r =
    if
      row_live.(r)
      && row_rel.(r) = Model.Eq
      && abs_float (row_rhs.(r) -. 1.0) <= eps
      && List.length row_terms.(r) >= 2
      && List.for_all (fun (v, c) -> abs_float (c -. 1.0) <= eps && is_binary v) row_terms.(r)
    then begin
      let members = List.map fst row_terms.(r) in
      let touched =
        List.sort_uniq compare
          (List.concat_map (fun v -> List.filter (fun r' -> r' <> r && row_live.(r')) var_rows.(v)) members)
      in
      List.iter
        (fun v ->
          if is_binary v then begin
            let forced u = if u = v then Some 1.0 else if List.mem u members then Some 0.0 else None in
            let contradiction =
              List.exists
                (fun r' ->
                  let terms = row_terms.(r') in
                  let lo, lo_inf =
                    List.fold_left
                      (fun (s, k) (u, c) ->
                        match forced u with
                        | Some x -> (s +. (c *. x), k)
                        | None ->
                          let contrib = if c > 0.0 then c *. lb.(u) else c *. ub.(u) in
                          if contrib = neg_infinity then (s, k + 1) else (s +. contrib, k))
                      (0.0, 0) terms
                  in
                  let hi, hi_inf =
                    List.fold_left
                      (fun (s, k) (u, c) ->
                        match forced u with
                        | Some x -> (s +. (c *. x), k)
                        | None ->
                          let contrib = if c > 0.0 then c *. ub.(u) else c *. lb.(u) in
                          if contrib = infinity then (s, k + 1) else (s +. contrib, k))
                      (0.0, 0) terms
                  in
                  let minact = if lo_inf > 0 then neg_infinity else lo in
                  let maxact = if hi_inf > 0 then infinity else hi in
                  match row_rel.(r') with
                  | Model.Le -> minact > row_rhs.(r') +. feas_tol
                  | Model.Ge -> maxact < row_rhs.(r') -. feas_tol
                  | Model.Eq ->
                    minact > row_rhs.(r') +. feas_tol || maxact < row_rhs.(r') -. feas_tol)
                touched
            in
            if contradiction then begin
              incr probe_fixings;
              substitute v 0.0
            end
          end)
        members
    end
  in

  let rounds = ref 0 in
  let outcome =
    try
      (* Initial integer bound sanitation. *)
      for v = 0 to n - 1 do
        fix_collapsed v
      done;
      let continue_ = ref true in
      (* Budget check between fixpoint rounds only: a partial presolve
         is still a valid (just less reduced) problem, so stopping
         early here degrades quality, never correctness. *)
      while !continue_ && !rounds < max_rounds && not (Agingfp_util.Budget.expired budget) do
        incr rounds;
        changed := false;
        for r = 0 to m - 1 do
          process_row r
        done;
        for r = 0 to m - 1 do
          tighten_row r
        done;
        for r = 0 to m - 1 do
          probe_row r
        done;
        continue_ := !changed
      done;
      None
    with Infeas msg -> Some msg
  in
  match outcome with
  | Some msg -> Proven_infeasible msg
  | None ->
    (* Rebuild a compacted model. *)
    let var_map = Array.make n (-1) in
    let reduced_model = Model.create () in
    for v = 0 to n - 1 do
      if live_var.(v) then
        var_map.(v) <-
          Model.add_var reduced_model ~name:(Model.var_name model v) ~lb:lb.(v)
            ~ub:ub.(v) ~kind:kind.(v)
    done;
    (try
       for r = 0 to m - 1 do
         if row_live.(r) then begin
           match row_terms.(r) with
           | [] ->
             (* Became empty during the last substitutions. *)
             let ok =
               match row_rel.(r) with
               | Model.Le -> 0.0 <= row_rhs.(r) +. feas_tol
               | Model.Ge -> 0.0 >= row_rhs.(r) -. feas_tol
               | Model.Eq -> abs_float row_rhs.(r) <= feas_tol
             in
             if not ok then raise (Infeas (Printf.sprintf "row %d contradictory after substitution" r))
           | terms ->
             let lhs =
               List.fold_left (fun e (v, c) -> Expr.add_term e c var_map.(v)) Expr.zero terms
             in
             ignore
               (Model.add_constraint ~name:(Model.row_name model r) reduced_model lhs
                  row_rel.(r) row_rhs.(r))
         end
       done;
       let dir, obj = Model.objective model in
       let fixed_part =
         let acc = ref (Expr.constant obj) in
         for v = 0 to n - 1 do
           if not live_var.(v) then begin
             let c = Expr.coef obj v in
             if c <> 0.0 then acc := !acc +. (c *. fixval.(v))
           end
         done;
         !acc
       in
       let obj' =
         List.fold_left
           (fun e (v, c) -> if live_var.(v) then Expr.add_term e c var_map.(v) else e)
           (Expr.const fixed_part) (Expr.terms obj)
       in
       Model.set_objective reduced_model dir obj';
       let stats =
         {
           rounds = !rounds;
           rows_removed = !rows_removed;
           singleton_rows = !singleton_rows;
           vars_fixed = !vars_fixed;
           bounds_tightened = !bounds_tightened;
           probe_fixings = !probe_fixings;
         }
       in
       Log.debug (fun k ->
           k "presolve: %d rounds, %d rows removed, %d vars fixed, %d bounds tightened"
             stats.rounds stats.rows_removed stats.vars_fixed stats.bounds_tightened);
       Reduced { reduced_model; var_map; fixval; n_orig = n; stats }
     with Infeas msg -> Proven_infeasible msg)
